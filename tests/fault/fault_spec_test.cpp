#include "fault/fault_spec.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/rng.h"

namespace jps::fault {
namespace {

FaultSpec sample_spec() {
  FaultSpec spec;
  spec.events.push_back({FaultKind::kDrift, 100.0, 250.5, 2.75});
  spec.events.push_back({FaultKind::kOutage, 300.0, 340.0, 0.0});
  spec.events.push_back({FaultKind::kCloudSlow, 50.0, 90.0, 3.0});
  spec.events.push_back({FaultKind::kMobileThrottle, 400.0, 800.0, 1.5});
  return spec;
}

TEST(FaultSpec, SerializeParseRoundTripsExactly) {
  const FaultSpec spec = sample_spec();
  const FaultSpec back = FaultSpec::parse(spec.serialize());
  EXPECT_EQ(back.events, spec.events);
  // Including doubles with no short decimal form.
  FaultSpec awkward;
  awkward.events.push_back({FaultKind::kDrift, 0.1, 1.0 / 3.0, 5.85 * 0.3});
  EXPECT_EQ(FaultSpec::parse(awkward.serialize()).events, awkward.events);
}

TEST(FaultSpec, ParseSkipsCommentsAndBlankLines) {
  const FaultSpec spec = FaultSpec::parse(
      "jps-faults v1\n"
      "\n"
      "# a full-line comment\n"
      "  drift 10 20 4.5   # trailing comment\n"
      "outage 30 40\n");
  ASSERT_EQ(spec.events.size(), 2u);
  EXPECT_EQ(spec.events[0].kind, FaultKind::kDrift);
  EXPECT_DOUBLE_EQ(spec.events[0].value, 4.5);
  EXPECT_EQ(spec.events[1].kind, FaultKind::kOutage);
}

TEST(FaultSpec, ParseRejectsMalformedInput) {
  EXPECT_THROW(FaultSpec::parse(""), std::runtime_error);  // no header
  EXPECT_THROW(FaultSpec::parse("jps-faults v2\n"), std::runtime_error);
  EXPECT_THROW(FaultSpec::parse("jps-faults v1\nflood 0 1 2\n"),
               std::runtime_error);  // unknown keyword
  EXPECT_THROW(FaultSpec::parse("jps-faults v1\ndrift 0\n"),
               std::runtime_error);  // bad window
  EXPECT_THROW(FaultSpec::parse("jps-faults v1\ndrift 0 10\n"),
               std::runtime_error);  // missing value
  EXPECT_THROW(FaultSpec::parse("jps-faults v1\noutage 0 10 3\n"),
               std::runtime_error);  // trailing fields
}

TEST(FaultSpec, OfKindFiltersAndSorts) {
  FaultSpec spec;
  spec.events.push_back({FaultKind::kDrift, 500.0, 600.0, 1.0});
  spec.events.push_back({FaultKind::kOutage, 0.0, 10.0, 0.0});
  spec.events.push_back({FaultKind::kDrift, 100.0, 200.0, 2.0});
  const auto drifts = spec.of_kind(FaultKind::kDrift);
  ASSERT_EQ(drifts.size(), 2u);
  EXPECT_DOUBLE_EQ(drifts[0].start_ms, 100.0);
  EXPECT_DOUBLE_EQ(drifts[1].start_ms, 500.0);
}

TEST(FaultSpec, RandomIsSeedDeterministicAndWithinBounds) {
  RandomFaultOptions options;
  options.horizon_ms = 1000.0;
  options.base_mbps = 8.0;
  options.drift_segments = 3;
  options.outages = 2;
  options.cloud_slow_windows = 1;
  options.mobile_throttle_windows = 1;

  util::Rng rng1(42);
  util::Rng rng2(42);
  const FaultSpec a = FaultSpec::random(options, rng1);
  const FaultSpec b = FaultSpec::random(options, rng2);
  EXPECT_EQ(a.events, b.events);

  util::Rng rng3(43);
  EXPECT_NE(FaultSpec::random(options, rng3).events, a.events);

  for (const FaultEvent& e : a.events) {
    EXPECT_GE(e.start_ms, 0.0);
    EXPECT_LE(e.end_ms, options.horizon_ms);
    EXPECT_LT(e.start_ms, e.end_ms);
  }
  for (const FaultEvent& e : a.of_kind(FaultKind::kDrift)) {
    EXPECT_GE(e.value, options.drift_factor_min * options.base_mbps - 1e-9);
    EXPECT_LE(e.value, options.drift_factor_max * options.base_mbps + 1e-9);
  }
  // Windows of one kind never overlap, so the spec always compiles.
  const FaultTimeline timeline(a, net::Channel(options.base_mbps));
  EXPECT_FALSE(timeline.fault_free());
}

TEST(FaultTimeline, CompilesEventsIntoChannelAndFactorWindows) {
  const FaultSpec spec = sample_spec();
  const net::Channel base(8.0, 5.0);
  const FaultTimeline timeline(spec, base);

  EXPECT_FALSE(timeline.fault_free());
  EXPECT_DOUBLE_EQ(timeline.horizon_ms(), 800.0);
  EXPECT_DOUBLE_EQ(timeline.channel().bandwidth_at(150.0), 2.75);
  EXPECT_TRUE(timeline.channel().in_outage(320.0));

  // Factors are EXACTLY 1 outside their windows so fault-free stage
  // durations pass through unchanged.
  EXPECT_EQ(timeline.cloud_factor_at(49.9), 1.0);
  EXPECT_DOUBLE_EQ(timeline.cloud_factor_at(50.0), 3.0);
  EXPECT_EQ(timeline.cloud_factor_at(90.0), 1.0);
  EXPECT_DOUBLE_EQ(timeline.mobile_factor_at(500.0), 1.5);
  EXPECT_EQ(timeline.mobile_factor_at(900.0), 1.0);
}

TEST(FaultTimeline, EmptySpecIsFaultFree) {
  const FaultTimeline timeline(FaultSpec{}, net::Channel(8.0));
  EXPECT_TRUE(timeline.fault_free());
  EXPECT_TRUE(timeline.channel().stationary());
  EXPECT_DOUBLE_EQ(timeline.horizon_ms(), 0.0);
  EXPECT_EQ(timeline.mobile_factor_at(123.0), 1.0);
  EXPECT_EQ(timeline.cloud_factor_at(123.0), 1.0);
}

TEST(FaultTimeline, RejectsInvalidEvents) {
  const net::Channel base(8.0);
  FaultSpec bad_window;
  bad_window.events.push_back({FaultKind::kMobileThrottle, 10.0, 5.0, 2.0});
  EXPECT_THROW(FaultTimeline(bad_window, base), std::invalid_argument);

  FaultSpec bad_factor;
  bad_factor.events.push_back({FaultKind::kCloudSlow, 0.0, 10.0, 0.0});
  EXPECT_THROW(FaultTimeline(bad_factor, base), std::invalid_argument);

  FaultSpec overlap;
  overlap.events.push_back({FaultKind::kDrift, 0.0, 10.0, 1.0});
  overlap.events.push_back({FaultKind::kDrift, 5.0, 15.0, 2.0});
  EXPECT_THROW(FaultTimeline(overlap, base), std::invalid_argument);

  // Different kinds MAY overlap.
  FaultSpec mixed;
  mixed.events.push_back({FaultKind::kDrift, 0.0, 10.0, 1.0});
  mixed.events.push_back({FaultKind::kMobileThrottle, 5.0, 15.0, 2.0});
  EXPECT_NO_THROW(FaultTimeline(mixed, base));
}

}  // namespace
}  // namespace jps::fault
