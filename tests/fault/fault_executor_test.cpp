#include "fault/fault_executor.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "core/planner.h"
#include "core/robust.h"
#include "models/registry.h"
#include "net/channel.h"
#include "profile/device.h"

namespace jps::fault {
namespace {

struct Testbed {
  dnn::Graph graph;
  profile::LatencyModel mobile;
  profile::LatencyModel cloud;
  net::Channel channel;
  partition::ProfileCurve curve;

  explicit Testbed(const std::string& model, double mbps = 5.85)
      : graph(models::build(model)),
        mobile(profile::DeviceProfile::raspberry_pi_4b()),
        cloud(profile::DeviceProfile::cloud_gtx1080()),
        channel(mbps),
        curve(partition::ProfileCurve::build(graph, mobile, channel)) {}
};

FaultSimResult run_under(const Testbed& s, const core::ExecutionPlan& plan,
                         const FaultSpec& spec, const FaultExecOptions& options,
                         std::uint64_t seed = 5, const ReplanFn& replan = {}) {
  const FaultTimeline timeline(spec, s.channel);
  util::Rng rng(seed);
  return simulate_plan_under_faults(s.graph, s.curve, plan, s.mobile, s.cloud,
                                    timeline, options, rng, nullptr, replan);
}

TEST(FaultExecutor, EmptySpecIsBitIdenticalToPlainSimulator) {
  const Testbed s("alexnet");
  const core::Planner planner(s.curve);
  const core::ExecutionPlan plan = planner.plan(core::Strategy::kJPS, 10);

  util::Rng plain_rng(5);
  const sim::SimResult plain =
      sim::simulate_plan(s.graph, s.curve, plan, s.mobile, s.cloud, s.channel,
                         sim::SimOptions{}, plain_rng);
  const FaultSimResult faulty = run_under(s, plan, FaultSpec{}, {});

  EXPECT_FALSE(faulty.stats.any_fault());
  // EXPECT_EQ on the doubles: the fault-aware path must reproduce the
  // stationary simulation bit-for-bit, not just approximately.
  EXPECT_EQ(faulty.sim.makespan, plain.makespan);
  ASSERT_EQ(faulty.sim.jobs.size(), plain.jobs.size());
  for (std::size_t i = 0; i < plain.jobs.size(); ++i) {
    EXPECT_EQ(faulty.sim.jobs[i].comp_end, plain.jobs[i].comp_end) << i;
    EXPECT_EQ(faulty.sim.jobs[i].comm_end, plain.jobs[i].comm_end) << i;
    EXPECT_EQ(faulty.sim.jobs[i].cloud_end, plain.jobs[i].cloud_end) << i;
    EXPECT_EQ(faulty.sim.jobs[i].has_comm, plain.jobs[i].has_comm) << i;
    EXPECT_EQ(faulty.sim.jobs[i].fell_back, false) << i;
  }
}

TEST(FaultExecutor, PermanentOutageDegradesEveryJobToLocal) {
  const Testbed s("alexnet");
  const core::Planner planner(s.curve);
  const int n = 6;
  const core::ExecutionPlan plan = planner.plan(core::Strategy::kCloudOnly, n);

  FaultSpec spec;
  spec.events.push_back({FaultKind::kOutage, 0.0, 1e9, 0.0});
  FaultExecOptions options;
  options.retry.budget = 1;
  const FaultSimResult r = run_under(s, plan, spec, options);

  // Every job offloads, every attempt fails, every job completes locally.
  EXPECT_EQ(r.stats.fallbacks, n);
  EXPECT_EQ(r.stats.retries, n);                  // 1 retry per job
  EXPECT_EQ(r.stats.transfer_failures, 2 * n);    // budget + 1 attempts
  EXPECT_GT(r.stats.backoff_ms, 0.0);
  EXPECT_TRUE(r.stats.any_fault());
  ASSERT_EQ(r.sim.jobs.size(), static_cast<std::size_t>(n));
  for (const sim::SimJobResult& job : r.sim.jobs) {
    EXPECT_TRUE(job.fell_back);
    EXPECT_EQ(job.retries, 1);
    EXPECT_FALSE(job.has_cloud);  // nothing ever reached the cloud
    EXPECT_GT(job.completion(), 0.0);  // no aborts: the job finished
  }
  // The degraded run costs more than the local-only plan would predict
  // never less (it wasted attempts first).
  const core::ExecutionPlan local =
      planner.plan(core::Strategy::kLocalOnly, n);
  EXPECT_GE(r.sim.makespan, local.predicted_makespan - 1e-6);
}

TEST(FaultExecutor, ZeroRetryBudgetFailsStraightToFallback) {
  const Testbed s("alexnet");
  const core::Planner planner(s.curve);
  const core::ExecutionPlan plan = planner.plan(core::Strategy::kCloudOnly, 3);

  FaultSpec spec;
  spec.events.push_back({FaultKind::kOutage, 0.0, 1e9, 0.0});
  FaultExecOptions options;
  options.retry.budget = 0;
  const FaultSimResult r = run_under(s, plan, spec, options);
  EXPECT_EQ(r.stats.retries, 0);
  EXPECT_EQ(r.stats.transfer_failures, 3);
  EXPECT_EQ(r.stats.fallbacks, 3);
  EXPECT_DOUBLE_EQ(r.stats.backoff_ms, 0.0);
}

TEST(FaultExecutor, TransientOutageIsRetriedThroughBackoff) {
  const Testbed s("alexnet");
  const core::Planner planner(s.curve);
  const core::ExecutionPlan plan = planner.plan(core::Strategy::kCloudOnly, 1);

  // The link is down only briefly at the start; exponential backoff walks
  // the retries past the outage and the transfer eventually lands.
  FaultSpec spec;
  spec.events.push_back({FaultKind::kOutage, 0.0, 40.0, 0.0});
  FaultExecOptions options;
  options.retry.budget = 6;
  const FaultSimResult r = run_under(s, plan, spec, options);
  EXPECT_EQ(r.stats.fallbacks, 0);
  EXPECT_GE(r.stats.retries, 1);
  EXPECT_LE(r.stats.retries, 6);
  ASSERT_EQ(r.sim.jobs.size(), 1u);
  EXPECT_FALSE(r.sim.jobs.front().fell_back);
  EXPECT_TRUE(r.sim.jobs.front().has_cloud);  // it did reach the cloud
}

TEST(FaultExecutor, ThrottleWindowScalesComputeExactly) {
  const Testbed s("resnet18");
  const core::Planner planner(s.curve);
  const core::ExecutionPlan plan = planner.plan(core::Strategy::kLocalOnly, 4);

  const FaultSimResult clean = run_under(s, plan, FaultSpec{}, {});
  FaultSpec spec;
  spec.events.push_back({FaultKind::kMobileThrottle, 0.0, 1e9, 2.0});
  const FaultSimResult hot = run_under(s, plan, spec, {});
  // A local-only run inside a x2 throttle window takes exactly twice as
  // long: every stage starts inside the window and scales by the factor.
  EXPECT_NEAR(hot.sim.makespan, 2.0 * clean.sim.makespan,
              1e-9 * hot.sim.makespan);
  EXPECT_GT(hot.stats.throttled_stages, 0);
  EXPECT_TRUE(hot.stats.any_fault());
  EXPECT_EQ(hot.stats.transfer_failures, 0);
}

TEST(FaultExecutor, SameSeedSameTimelineIsBitReproducible) {
  const Testbed s("alexnet");
  const core::Planner planner(s.curve);
  const core::ExecutionPlan plan = planner.plan(core::Strategy::kJPS, 8);

  RandomFaultOptions fo;
  fo.horizon_ms = 3000.0;
  fo.base_mbps = s.channel.bandwidth_mbps();
  util::Rng spec_rng(99);
  const FaultSpec spec = FaultSpec::random(fo, spec_rng);

  FaultExecOptions options;
  options.sim.comp_noise_sigma = 0.05;
  options.sim.comm_noise_sigma = 0.05;
  const FaultSimResult a = run_under(s, plan, spec, options, 7);
  const FaultSimResult b = run_under(s, plan, spec, options, 7);
  EXPECT_EQ(a.sim.makespan, b.sim.makespan);
  EXPECT_EQ(a.stats.retries, b.stats.retries);
  EXPECT_EQ(a.stats.fallbacks, b.stats.fallbacks);
  EXPECT_EQ(a.stats.perturbed_transfers, b.stats.perturbed_transfers);
}

TEST(FaultExecutor, ReplanTriggersUnderSustainedDrift) {
  const Testbed s("alexnet");
  const core::Planner planner(s.curve);
  const core::ExecutionPlan plan = planner.plan(core::Strategy::kJPS, 12);

  FaultSpec spec;  // the uplink collapses to 20% for the whole run
  spec.events.push_back(
      {FaultKind::kDrift, 0.0, 1e9, 0.2 * s.channel.bandwidth_mbps()});
  FaultExecOptions options;
  options.replan.enabled = true;
  const ReplanFn hook =
      make_replan_hook(s.curve, s.channel, core::Strategy::kJPSTuned);
  const FaultSimResult r = run_under(s, plan, spec, options, 5, hook);
  EXPECT_GE(r.stats.replans, 1);
  EXPECT_GT(r.stats.perturbed_transfers, 0);
  for (const sim::SimJobResult& job : r.sim.jobs)
    EXPECT_GT(job.completion(), 0.0);
}

TEST(FaultExecutor, ReplanHookRejectsRobustStrategy) {
  const Testbed s("alexnet");
  EXPECT_THROW(
      (void)make_replan_hook(s.curve, s.channel, core::Strategy::kRobust),
      std::invalid_argument);
}

TEST(FaultMonteCarlo, ValidatesTrials) {
  const Testbed s("alexnet");
  const core::Planner planner(s.curve);
  const core::ExecutionPlan plan = planner.plan(core::Strategy::kJPS, 4);
  FaultMonteCarloOptions options;
  options.trials = 0;
  EXPECT_THROW((void)fault_monte_carlo(s.graph, s.curve, plan, s.mobile,
                                       s.cloud, s.channel, options),
               std::invalid_argument);
}

TEST(FaultMonteCarlo, ThreadCountDoesNotChangeResults) {
  const Testbed s("alexnet");
  const core::Planner planner(s.curve);
  const core::ExecutionPlan plan = planner.plan(core::Strategy::kJPS, 6);

  FaultMonteCarloOptions options;
  options.trials = 21;
  options.seed = 3;
  options.faults.horizon_ms = 3000.0;
  options.faults.outages = 1;

  options.threads = 1;
  const FaultMonteCarloResult serial = fault_monte_carlo(
      s.graph, s.curve, plan, s.mobile, s.cloud, s.channel, options);
  options.threads = 4;
  const FaultMonteCarloResult parallel = fault_monte_carlo(
      s.graph, s.curve, plan, s.mobile, s.cloud, s.channel, options);

  // Per-trial seeded streams: bit-identical aggregates at any concurrency.
  EXPECT_EQ(serial.makespan.mean, parallel.makespan.mean);
  EXPECT_EQ(serial.makespan.p95, parallel.makespan.p95);
  EXPECT_EQ(serial.makespan.max, parallel.makespan.max);
  EXPECT_EQ(serial.fault_rate, parallel.fault_rate);
  EXPECT_EQ(serial.fallback_rate, parallel.fallback_rate);
  EXPECT_EQ(serial.mean_retries, parallel.mean_retries);
  EXPECT_GT(serial.fault_rate, 0.0);  // the traces actually did something
}

}  // namespace
}  // namespace jps::fault
