#include "fault/bandwidth_estimator.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/units.h"

namespace jps::fault {
namespace {

// A transfer of `bytes` at `mbps` plus setup, as the executor observes it.
double duration_for(double mbps, std::uint64_t bytes, double setup_ms) {
  return setup_ms + static_cast<double>(bytes) / util::mbps_to_bytes_per_ms(mbps);
}

TEST(BandwidthEstimator, StartsAtInitialWithZeroDrift) {
  const BandwidthEstimator est(10.0);
  EXPECT_DOUBLE_EQ(est.estimate_mbps(), 10.0);
  EXPECT_DOUBLE_EQ(est.baseline_mbps(), 10.0);
  EXPECT_DOUBLE_EQ(est.drift_ratio(), 0.0);
  EXPECT_FALSE(est.drifted(0.0001));
  EXPECT_EQ(est.observations(), 0);
}

TEST(BandwidthEstimator, ObservationAtTheTruthIsExact) {
  // alpha = 1 makes the estimate the latest observation; the setup latency
  // must be stripped before the rate is computed.
  BandwidthEstimator est(10.0, 1.0);
  est.observe(100'000, duration_for(4.0, 100'000, 8.0), 8.0);
  EXPECT_NEAR(est.estimate_mbps(), 4.0, 1e-9);
  EXPECT_NEAR(est.drift_ratio(), 0.6, 1e-9);
  EXPECT_TRUE(est.drifted(0.25));
  EXPECT_FALSE(est.drifted(0.7));
  EXPECT_EQ(est.observations(), 1);
}

TEST(BandwidthEstimator, EwmaConvergesTowardSustainedRate) {
  BandwidthEstimator est(10.0, 0.3);
  for (int i = 0; i < 40; ++i)
    est.observe(50'000, duration_for(2.0, 50'000, 8.0), 8.0);
  EXPECT_NEAR(est.estimate_mbps(), 2.0, 0.01);
  EXPECT_TRUE(est.drifted(0.25));
}

TEST(BandwidthEstimator, RebaseResetsTheDriftReference) {
  BandwidthEstimator est(10.0, 1.0);
  est.observe(100'000, duration_for(4.0, 100'000, 8.0), 8.0);
  ASSERT_TRUE(est.drifted(0.25));
  est.rebase();
  EXPECT_NEAR(est.baseline_mbps(), 4.0, 1e-9);
  EXPECT_DOUBLE_EQ(est.drift_ratio(), 0.0);
  EXPECT_FALSE(est.drifted(0.25));
}

TEST(BandwidthEstimator, IgnoresDegenerateObservations) {
  BandwidthEstimator est(10.0, 1.0);
  est.observe(0, 20.0, 8.0);       // nothing transferred
  est.observe(50'000, 5.0, 8.0);   // duration <= setup: no serialization
  EXPECT_EQ(est.observations(), 0);
  EXPECT_DOUBLE_EQ(est.estimate_mbps(), 10.0);
}

TEST(BandwidthEstimator, Validation) {
  EXPECT_THROW(BandwidthEstimator(0.0), std::invalid_argument);
  EXPECT_THROW(BandwidthEstimator(10.0, 0.0), std::invalid_argument);
  EXPECT_THROW(BandwidthEstimator(10.0, 1.5), std::invalid_argument);
}

}  // namespace
}  // namespace jps::fault
