#include "args.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

namespace jps::tools {
namespace {

Args make_args(std::vector<std::string> tokens) {
  static std::vector<std::string> storage;  // keep c_str()s alive
  storage = std::move(tokens);
  storage.insert(storage.begin(), "jps_cli");
  std::vector<char*> argv;
  for (auto& s : storage) argv.push_back(s.data());
  return Args(static_cast<int>(argv.size()), argv.data());
}

TEST(Args, CommandAndFlags) {
  const Args args = make_args({"plan", "--model", "alexnet", "--jobs", "42"});
  EXPECT_EQ(args.command(), "plan");
  EXPECT_EQ(args.get("model", "x"), "alexnet");
  EXPECT_EQ(args.get_int("jobs", 0), 42);
  EXPECT_EQ(args.get("missing", "fallback"), "fallback");
  EXPECT_EQ(args.get_int("missing", 7), 7);
}

TEST(Args, BareSwitches) {
  const Args args = make_args({"plan", "--simulate", "--gantt", "--jobs", "3"});
  EXPECT_TRUE(args.has("simulate"));
  EXPECT_TRUE(args.has("gantt"));
  EXPECT_FALSE(args.has("table"));
  EXPECT_EQ(args.get_int("jobs", 0), 3);
}

TEST(Args, SwitchFollowedByFlagStaysBare) {
  // "--simulate --model x": simulate must not swallow "--model".
  const Args args = make_args({"plan", "--simulate", "--model", "vgg16"});
  EXPECT_EQ(args.get("simulate", ""), "true");
  EXPECT_EQ(args.get("model", ""), "vgg16");
}

TEST(Args, EqualsSyntax) {
  const Args args = make_args({"plan", "--model=alexnet", "--jobs=42",
                               "--trace-out=/tmp/a=b.json", "--empty="});
  EXPECT_EQ(args.get("model", "x"), "alexnet");
  EXPECT_EQ(args.get_int("jobs", 0), 42);
  // Only the first '=' splits; the rest belongs to the value.
  EXPECT_EQ(args.get("trace-out", ""), "/tmp/a=b.json");
  // "--key=" is an explicit empty value, not a bare switch.
  EXPECT_TRUE(args.has("empty"));
  EXPECT_EQ(args.get("empty", "fallback"), "");
}

TEST(Args, EqualsSyntaxMixesWithSpaceSyntax) {
  const Args args =
      make_args({"plan", "--model=vgg16", "--jobs", "7", "--simulate"});
  EXPECT_EQ(args.get("model", ""), "vgg16");
  EXPECT_EQ(args.get_int("jobs", 0), 7);
  EXPECT_EQ(args.get("simulate", ""), "true");
}

TEST(Args, Doubles) {
  const Args args = make_args({"plan", "--bandwidth", "5.85"});
  EXPECT_DOUBLE_EQ(args.get_double("bandwidth", 0.0), 5.85);
  EXPECT_DOUBLE_EQ(args.get_double("missing", 1.5), 1.5);
}

TEST(Args, BadNumbersThrow) {
  const Args args = make_args({"plan", "--jobs", "many", "--bandwidth", "fast"});
  EXPECT_THROW((void)args.get_int("jobs", 0), std::invalid_argument);
  EXPECT_THROW((void)args.get_double("bandwidth", 0.0), std::invalid_argument);
}

TEST(Args, NoCommand) {
  const Args args = make_args({});
  EXPECT_EQ(args.command(), "");
}

TEST(Args, TrailingGarbageIsAUsageErrorNotAPrefixParse) {
  // Regression: the tools used unguarded std::stod/stoi, so "--threshold
  // 0.1x" silently ran with 0.1 (stod stops at the 'x') and "--jobs 12q"
  // ran with 12 jobs.  Strict parsing rejects both with a UsageError the
  // tool's main() turns into exit 64 plus a usage message.
  const Args args = make_args({"diff", "--threshold", "0.1x", "--jobs", "12q"});
  EXPECT_THROW((void)args.get_double("threshold", 0.0), UsageError);
  EXPECT_THROW((void)args.get_int("jobs", 0), UsageError);
}

TEST(Args, IntRejectsFractionsAndOverflow) {
  const Args args =
      make_args({"plan", "--jobs", "1.5", "--huge", "99999999999999999999"});
  EXPECT_THROW((void)args.get_int("jobs", 0), UsageError);
  EXPECT_THROW((void)args.get_int("huge", 0), UsageError);
}

TEST(Args, UsageErrorsNameTheFlagAndValue) {
  const Args args = make_args({"plan", "--bandwidth", "fast"});
  try {
    (void)args.get_double("bandwidth", 0.0);
    FAIL() << "expected UsageError";
  } catch (const UsageError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--bandwidth"), std::string::npos) << what;
    EXPECT_NE(what.find("fast"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace jps::tools
