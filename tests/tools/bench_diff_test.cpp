#include "bench_diff.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "util/json.h"

namespace jps::tools::bench_diff {
namespace {

util::Json load_fixture(const std::string& name) {
  const std::string path = std::string(JPS_BENCH_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return util::Json::parse(buffer.str());
}

util::Json minimal_doc(double p95) {
  util::Json metrics = util::Json::object();
  util::Json m = util::Json::object();
  m.set("p50", util::Json(1.0));
  m.set("p95", util::Json(p95));
  m.set("p99", util::Json(p95 * 1.2));
  metrics.set("lat_ms", std::move(m));
  util::Json doc = util::Json::object();
  doc.set("schema", util::Json(kSchema));
  doc.set("name", util::Json("mini"));
  doc.set("metrics", std::move(metrics));
  return doc;
}

TEST(BenchDiff, IdenticalFilesAreClean) {
  const util::Json base = load_fixture("BENCH_fixture_base.json");
  const Report report = compare(base, base);
  EXPECT_FALSE(report.has_regressions());
  EXPECT_TRUE(report.problems.empty());
  EXPECT_EQ(report.exit_code(), kExitOk);
  // Both metrics x three stats compared.
  EXPECT_EQ(report.findings.size(), 6u);
}

TEST(BenchDiff, FlagsInjectedRegression) {
  // The regressed fixture doubles plan_ms p95/p99 while makespan_ms stays
  // within 1%: only the injected regression must fire.
  const util::Json base = load_fixture("BENCH_fixture_base.json");
  const util::Json regressed = load_fixture("BENCH_fixture_regressed.json");
  const Report report = compare(base, regressed);
  EXPECT_TRUE(report.has_regressions());
  EXPECT_EQ(report.exit_code(), kExitRegression);
  for (const Finding& f : report.findings) {
    const bool expected = f.metric == "plan_ms" &&
                          (f.stat == "p95" || f.stat == "p99");
    EXPECT_EQ(f.regression, expected) << f.metric << "." << f.stat;
  }
}

TEST(BenchDiff, ThresholdGatesRegression) {
  const util::Json base = minimal_doc(1.0);
  const util::Json current = minimal_doc(1.15);  // +15%
  Options options;
  options.threshold = 0.20;
  EXPECT_FALSE(compare(base, current, options).has_regressions());
  options.threshold = 0.10;
  EXPECT_TRUE(compare(base, current, options).has_regressions());
}

TEST(BenchDiff, PerMetricOverrideWins) {
  const util::Json base = minimal_doc(1.0);
  const util::Json current = minimal_doc(1.5);  // +50%
  Options options;
  options.threshold = 0.10;
  options.metric_thresholds["lat_ms"] = 0.60;  // loosened for this metric
  EXPECT_FALSE(compare(base, current, options).has_regressions());
}

TEST(BenchDiff, ImprovementIsNotARegression) {
  EXPECT_FALSE(compare(minimal_doc(2.0), minimal_doc(1.0)).has_regressions());
}

TEST(BenchDiff, ZeroBaselineFlagsAnyCost) {
  const Report report = compare(minimal_doc(0.0), minimal_doc(0.5));
  EXPECT_TRUE(report.has_regressions());
}

util::Json throughput_doc(const std::string& metric, double p50) {
  util::Json m = util::Json::object();
  m.set("p50", util::Json(p50));
  util::Json metrics = util::Json::object();
  metrics.set(metric, std::move(m));
  util::Json doc = util::Json::object();
  doc.set("schema", util::Json(kSchema));
  doc.set("name", util::Json("mini"));
  doc.set("metrics", std::move(metrics));
  return doc;
}

TEST(BenchDiff, HigherBetterSuffixFlipsTheComparison) {
  // *_per_sec and *_speedup metrics are throughputs: a DROP regresses, an
  // increase never does — the mirror of the latency default.
  Options options;
  options.stats = {"p50"};
  options.threshold = 0.10;
  for (const char* metric : {"plans_per_sec", "plan_sweep_speedup"}) {
    const util::Json base = throughput_doc(metric, 100.0);
    EXPECT_TRUE(compare(base, throughput_doc(metric, 80.0), options)
                    .has_regressions())
        << metric << " -20%";
    EXPECT_FALSE(compare(base, throughput_doc(metric, 95.0), options)
                     .has_regressions())
        << metric << " -5% in budget";
    EXPECT_FALSE(compare(base, throughput_doc(metric, 300.0), options)
                     .has_regressions())
        << metric << " 3x faster is not a regression";
  }
}

TEST(BenchDiff, ExplicitHigherBetterOptionWins) {
  // A metric without the throughput suffix can still be forced via
  // Options::higher_better (the CLI's --higher-better flag).
  Options options;
  options.stats = {"p50"};
  options.threshold = 0.10;
  const util::Json base = throughput_doc("cache_hit_rate", 0.9);
  const util::Json dropped = throughput_doc("cache_hit_rate", 0.5);
  EXPECT_FALSE(compare(base, dropped, options).has_regressions());
  options.higher_better.insert("cache_hit_rate");
  const Report report = compare(base, dropped, options);
  EXPECT_TRUE(report.has_regressions());
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_TRUE(report.findings[0].higher_better);
  // And the flipped direction tolerates what lower-is-better would flag.
  EXPECT_FALSE(compare(base, throughput_doc("cache_hit_rate", 2.0), options)
                   .has_regressions());
}

TEST(BenchDiff, ZeroThroughputBaselineNeverRegresses) {
  // A zero higher-is-better baseline can only improve; the "was free, now
  // costs" rule is for latencies.
  Options options;
  options.stats = {"p50"};
  EXPECT_FALSE(compare(throughput_doc("plans_per_sec", 0.0),
                       throughput_doc("plans_per_sec", 123.0), options)
                   .has_regressions());
  EXPECT_FALSE(compare(throughput_doc("plans_per_sec", 0.0),
                       throughput_doc("plans_per_sec", 0.0), options)
                   .has_regressions());
}

TEST(BenchDiff, SchemaMismatchesExitTwo) {
  const util::Json good = minimal_doc(1.0);
  util::Json bad_schema = minimal_doc(1.0);
  bad_schema.set("schema", util::Json("jps-bench-v999"));
  EXPECT_EQ(compare(bad_schema, good).exit_code(), kExitSchema);
  EXPECT_EQ(compare(good, bad_schema).exit_code(), kExitSchema);

  util::Json renamed = minimal_doc(1.0);
  renamed.set("name", util::Json("other"));
  EXPECT_EQ(compare(good, renamed).exit_code(), kExitSchema);
}

TEST(BenchDiff, LostMetricIsASchemaProblem) {
  const util::Json base = minimal_doc(1.0);
  util::Json current = minimal_doc(1.0);
  current.set("metrics", util::Json::object());  // metric disappeared
  const Report report = compare(base, current);
  EXPECT_EQ(report.exit_code(), kExitSchema);
  ASSERT_EQ(report.problems.size(), 1u);
  EXPECT_NE(report.problems[0].find("lat_ms"), std::string::npos);
}

TEST(BenchDiff, CustomStatsListRestrictsComparison) {
  const util::Json base = minimal_doc(1.0);
  const util::Json current = minimal_doc(5.0);  // p95/p99 way up, p50 equal
  Options options;
  options.stats = {"p50"};
  const Report report = compare(base, current, options);
  EXPECT_FALSE(report.has_regressions());
  EXPECT_EQ(report.findings.size(), 1u);
}

TEST(BenchDiff, TextReportNamesTheRegression) {
  const Report report = compare(minimal_doc(1.0), minimal_doc(3.0));
  const std::string text = to_text(report);
  EXPECT_NE(text.find("REGRESSION"), std::string::npos);
  EXPECT_NE(text.find("lat_ms.p95"), std::string::npos);
  // Non-verbose output elides in-budget lines; verbose shows all.
  const std::string verbose = to_text(report, true);
  EXPECT_GT(verbose.size(), text.size());
  EXPECT_NE(verbose.find("ok"), std::string::npos);
}

}  // namespace
}  // namespace jps::tools::bench_diff
