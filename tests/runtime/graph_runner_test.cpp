#include "runtime/graph_runner.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dnn/layer.h"
#include "models/zoo.h"

namespace jps::runtime {
namespace {

using dnn::Graph;
using dnn::NodeId;
using dnn::TensorShape;

// A small but representative DAG: conv stem, residual add, two-branch
// concat, global pooling, dense head — every join kind exercised.
Graph make_test_net() {
  Graph g("runtime_test_net");
  NodeId x = g.add(dnn::input(TensorShape::chw(3, 16, 16)));
  x = g.add(dnn::conv2d(8, 3, 1, 1), {x});
  x = g.add(dnn::batch_norm(), {x});
  const NodeId trunk = g.add(dnn::activation(dnn::ActivationKind::kReLU), {x});
  // Residual block.
  NodeId y = g.add(dnn::conv2d(8, 3, 1, 1), {trunk});
  y = g.add(dnn::activation(dnn::ActivationKind::kReLU), {y});
  const NodeId res = g.add(dnn::add(), {trunk, y});
  // Two-branch module.
  const NodeId b1 = g.add(dnn::conv2d(4, 1), {res});
  NodeId b2 = g.add(dnn::pool2d(dnn::PoolKind::kMax, 3, 1, 1), {res});
  b2 = g.add(dnn::conv2d(4, 1), {b2});
  NodeId j = g.add(dnn::concat(), {b1, b2});
  j = g.add(dnn::lrn(), {j});
  j = g.add(dnn::global_avg_pool(), {j});
  j = g.add(dnn::flatten(), {j});
  j = g.add(dnn::dropout(), {j});
  j = g.add(dnn::dense(5), {j});
  (void)g.add(dnn::activation(dnn::ActivationKind::kSoftmax), {j});
  g.infer();
  return g;
}

TEST(GraphRunner, WeightStoreMatchesGraphTotals) {
  const Graph g = make_test_net();
  const WeightStore weights(g, 7);
  EXPECT_EQ(weights.total_parameters(), g.total_params());
}

TEST(GraphRunner, EveryNodeShapeMatchesInference) {
  const Graph g = make_test_net();
  const WeightStore weights(g, 7);
  util::Rng rng(3);
  const std::vector<Tensor> outputs = run_graph(g, random_input(g, rng), weights);
  ASSERT_EQ(outputs.size(), g.size());
  for (NodeId id = 0; id < g.size(); ++id) {
    EXPECT_EQ(outputs[id].shape(), g.info(id).output_shape) << "node " << id;
    for (std::size_t i = 0; i < outputs[id].size(); ++i) {
      ASSERT_TRUE(std::isfinite(outputs[id][i]))
          << "node " << id << " element " << i;
    }
  }
}

TEST(GraphRunner, SoftmaxOutputIsADistribution) {
  const Graph g = make_test_net();
  const WeightStore weights(g, 11);
  util::Rng rng(5);
  const Tensor out = run_graph_output(g, random_input(g, rng), weights);
  EXPECT_EQ(out.shape(), TensorShape::flat(5));
  float sum = 0.0f;
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_GE(out[i], 0.0f);
    sum += out[i];
  }
  EXPECT_NEAR(sum, 1.0f, 1e-4f);
}

TEST(GraphRunner, DeterministicForFixedSeeds) {
  const Graph g = make_test_net();
  const WeightStore w1(g, 42);
  const WeightStore w2(g, 42);
  util::Rng rng1(9);
  util::Rng rng2(9);
  const Tensor a = run_graph_output(g, random_input(g, rng1), w1);
  const Tensor b = run_graph_output(g, random_input(g, rng2), w2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
}

TEST(GraphRunner, DifferentSeedsDiffer) {
  const Graph g = make_test_net();
  const WeightStore w1(g, 1);
  const WeightStore w2(g, 2);
  util::Rng rng1(9);
  util::Rng rng2(9);
  const Tensor a = run_graph_output(g, random_input(g, rng1), w1);
  const Tensor b = run_graph_output(g, random_input(g, rng2), w2);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) any_diff |= a[i] != b[i];
  EXPECT_TRUE(any_diff);
}

TEST(GraphRunner, RunsAZooModelNumerically) {
  // SqueezeNet on a reduced input is too rigid (builders fix 224); use the
  // smallest real zoo-style network instead: a synthetic line DNN.
  models::SyntheticLineSpec spec;
  spec.blocks = 3;
  spec.input_size = 32;
  spec.base_channels = 8;
  spec.fc_sizes = {16, 4};
  dnn::Graph g = models::synthetic_line(spec);
  g.infer();
  const WeightStore weights(g, 3);
  util::Rng rng(1);
  const std::vector<Tensor> outputs = run_graph(g, random_input(g, rng), weights);
  for (NodeId id = 0; id < g.size(); ++id)
    EXPECT_EQ(outputs[id].shape(), g.info(id).output_shape);
}

TEST(GraphRunner, Validation) {
  const Graph g = make_test_net();
  const WeightStore weights(g, 7);
  Tensor wrong(TensorShape::chw(1, 2, 2));
  EXPECT_THROW((void)run_graph(g, wrong, weights), std::invalid_argument);
  EXPECT_THROW((void)weights.weights(999), std::out_of_range);
  dnn::Graph raw("raw");
  (void)raw.add(dnn::input(TensorShape::chw(1, 2, 2)));
  EXPECT_THROW(WeightStore(raw, 1), std::invalid_argument);
}

}  // namespace
}  // namespace jps::runtime
