#include "runtime/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "dnn/layer.h"

namespace jps::runtime {
namespace {

using dnn::TensorShape;

Tensor make_tensor(const TensorShape& shape, std::initializer_list<float> v) {
  Tensor t(shape);
  std::size_t i = 0;
  for (const float x : v) t[i++] = x;
  EXPECT_EQ(i, t.size());
  return t;
}

TEST(Kernels, Conv1x1IdentityCopiesChannel) {
  // One input channel, one output channel, 1x1 kernel with weight 1.
  const auto layer = dnn::conv2d(1, 1, 1, 0, 1, /*bias=*/false);
  const Tensor in = make_tensor(TensorShape::chw(1, 2, 2), {1, 2, 3, 4});
  LayerWeights w;
  w.weights = {1.0f};
  const Tensor out = run_layer(*layer, {{in}}, w);
  for (std::size_t i = 0; i < in.size(); ++i) EXPECT_FLOAT_EQ(out[i], in[i]);
}

TEST(Kernels, Conv3x3HandComputed) {
  // 1 channel 3x3 input, 3x3 kernel of ones, padding 1: center output equals
  // the sum of all 9 elements; corner output the sum of its 2x2 block.
  const auto layer = dnn::conv2d(1, 3, 1, 1, 1, /*bias=*/false);
  const Tensor in =
      make_tensor(TensorShape::chw(1, 3, 3), {1, 2, 3, 4, 5, 6, 7, 8, 9});
  LayerWeights w;
  w.weights.assign(9, 1.0f);
  const Tensor out = run_layer(*layer, {{in}}, w);
  EXPECT_FLOAT_EQ(out.at(0, 1, 1), 45.0f);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 1 + 2 + 4 + 5);
  EXPECT_FLOAT_EQ(out.at(0, 2, 2), 5 + 6 + 8 + 9);
}

TEST(Kernels, ConvBiasAndStride) {
  // 2x2 stride-2 kernel of ones + bias 10 over a 4x4 ramp.
  const auto layer = dnn::conv2d(1, 2, 2, 0, 1, /*bias=*/true);
  Tensor in(TensorShape::chw(1, 4, 4));
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = static_cast<float>(i);
  LayerWeights w;
  w.weights.assign(4, 1.0f);
  w.bias = {10.0f};
  const Tensor out = run_layer(*layer, {{in}}, w);
  EXPECT_EQ(out.shape(), TensorShape::chw(1, 2, 2));
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 0 + 1 + 4 + 5 + 10);
  EXPECT_FLOAT_EQ(out.at(0, 1, 1), 10 + 11 + 14 + 15 + 10);
}

TEST(Kernels, DepthwiseConvKeepsChannelsSeparate) {
  const auto layer = dnn::depthwise_conv2d(1, 1, 0);  // 1x1 depthwise
  const Tensor in = make_tensor(TensorShape::chw(2, 1, 2), {1, 2, 10, 20});
  LayerWeights w;
  w.weights = {3.0f, 5.0f};  // one weight per channel
  const Tensor out = run_layer(*layer, {{in}}, w);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 3.0f);
  EXPECT_FLOAT_EQ(out.at(0, 0, 1), 6.0f);
  EXPECT_FLOAT_EQ(out.at(1, 0, 0), 50.0f);
  EXPECT_FLOAT_EQ(out.at(1, 0, 1), 100.0f);
}

TEST(Kernels, RectConv1x3) {
  const auto layer = dnn::conv2d_rect(1, 1, 3, 0, 1, /*bias=*/false);
  const Tensor in = make_tensor(TensorShape::chw(1, 1, 3), {1, 2, 3});
  LayerWeights w;
  w.weights = {1.0f, 1.0f, 1.0f};
  const Tensor out = run_layer(*layer, {{in}}, w);
  EXPECT_EQ(out.shape(), TensorShape::chw(1, 1, 3));
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 3.0f);   // 0-pad + 1 + 2
  EXPECT_FLOAT_EQ(out.at(0, 0, 1), 6.0f);   // 1 + 2 + 3
  EXPECT_FLOAT_EQ(out.at(0, 0, 2), 5.0f);   // 2 + 3 + 0-pad
}

TEST(Kernels, MaxAndAvgPool) {
  const Tensor in =
      make_tensor(TensorShape::chw(1, 2, 2), {1, 2, 3, 4});
  const LayerWeights none;
  const auto max_pool = dnn::pool2d(dnn::PoolKind::kMax, 2, 2);
  EXPECT_FLOAT_EQ(run_layer(*max_pool, {{in}}, none)[0], 4.0f);
  const auto avg_pool = dnn::pool2d(dnn::PoolKind::kAvg, 2, 2);
  EXPECT_FLOAT_EQ(run_layer(*avg_pool, {{in}}, none)[0], 2.5f);
}

TEST(Kernels, AvgPoolPaddingDividesByWindowCount) {
  // 3x3/1 p1 average at the corner sees only 4 valid elements.
  const Tensor in =
      make_tensor(TensorShape::chw(1, 2, 2), {1, 2, 3, 4});
  const auto pool = dnn::pool2d(dnn::PoolKind::kAvg, 3, 1, 1);
  const LayerWeights none;
  const Tensor out = run_layer(*pool, {{in}}, none);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), (1 + 2 + 3 + 4) / 4.0f);
}

TEST(Kernels, GlobalAvgPool) {
  const Tensor in =
      make_tensor(TensorShape::chw(2, 1, 2), {1, 3, 10, 30});
  const auto gap = dnn::global_avg_pool();
  const LayerWeights none;
  const Tensor out = run_layer(*gap, {{in}}, none);
  EXPECT_FLOAT_EQ(out[0], 2.0f);
  EXPECT_FLOAT_EQ(out[1], 20.0f);
}

TEST(Kernels, DenseMatVec) {
  const auto layer = dnn::dense(2, /*bias=*/true);
  const Tensor in = make_tensor(TensorShape::flat(3), {1, 2, 3});
  LayerWeights w;
  w.weights = {1, 0, 0, /*row 2:*/ 1, 1, 1};
  w.bias = {100, 200};
  const Tensor out = run_layer(*layer, {{in}}, w);
  EXPECT_FLOAT_EQ(out[0], 101.0f);
  EXPECT_FLOAT_EQ(out[1], 206.0f);
}

TEST(Kernels, Activations) {
  const LayerWeights none;
  const Tensor in = make_tensor(TensorShape::flat(3), {-1, 3, 9});
  const auto relu = dnn::activation(dnn::ActivationKind::kReLU);
  const Tensor r = run_layer(*relu, {{in}}, none);
  EXPECT_FLOAT_EQ(r[0], 0.0f);
  EXPECT_FLOAT_EQ(r[2], 9.0f);
  const auto relu6 = dnn::activation(dnn::ActivationKind::kReLU6);
  EXPECT_FLOAT_EQ(run_layer(*relu6, {{in}}, none)[2], 6.0f);
  const auto softmax = dnn::activation(dnn::ActivationKind::kSoftmax);
  const Tensor s = run_layer(*softmax, {{in}}, none);
  float sum = 0.0f;
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_GT(s[i], 0.0f);
    sum += s[i];
  }
  EXPECT_NEAR(sum, 1.0f, 1e-5f);
}

TEST(Kernels, BatchNormAffine) {
  const auto bn = dnn::batch_norm();
  const Tensor in = make_tensor(TensorShape::chw(2, 1, 1), {3, 5});
  LayerWeights w;
  w.weights = {2.0f, 10.0f, /*beta:*/ 1.0f, -1.0f};
  const Tensor out = run_layer(*bn, {{in}}, w);
  EXPECT_FLOAT_EQ(out[0], 7.0f);    // 2*3 + 1
  EXPECT_FLOAT_EQ(out[1], 49.0f);   // 10*5 - 1
}

TEST(Kernels, AddAndConcat) {
  const LayerWeights none;
  const Tensor a = make_tensor(TensorShape::chw(1, 1, 2), {1, 2});
  const Tensor b = make_tensor(TensorShape::chw(1, 1, 2), {10, 20});
  const auto add = dnn::add();
  const Tensor sum = run_layer(*add, {{a, b}}, none);
  EXPECT_FLOAT_EQ(sum[0], 11.0f);
  const auto cat = dnn::concat();
  const Tensor joined = run_layer(*cat, {{a, b}}, none);
  EXPECT_EQ(joined.shape(), TensorShape::chw(2, 1, 2));
  EXPECT_FLOAT_EQ(joined[0], 1.0f);
  EXPECT_FLOAT_EQ(joined[2], 10.0f);
}

TEST(Kernels, WeightCountValidated) {
  const auto layer = dnn::conv2d(1, 1, 1, 0, 1, /*bias=*/false);
  const Tensor in(TensorShape::chw(1, 2, 2));
  LayerWeights wrong;  // missing the single weight
  EXPECT_THROW((void)run_layer(*layer, {{in}}, wrong), std::invalid_argument);
}

TEST(Kernels, InputNodesRejected) {
  const auto layer = dnn::input(TensorShape::chw(1, 1, 1));
  EXPECT_THROW((void)run_layer(*layer, {}, LayerWeights{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace jps::runtime
