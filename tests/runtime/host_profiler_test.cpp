#include "runtime/host_profiler.h"

#include <gtest/gtest.h>

#include "core/planner.h"
#include "models/zoo.h"
#include "net/channel.h"
#include "partition/profile_curve.h"

namespace jps::runtime {
namespace {

dnn::Graph small_net() {
  models::SyntheticLineSpec spec;
  spec.blocks = 4;
  spec.input_size = 32;
  spec.base_channels = 8;
  spec.fc_sizes = {16, 4};
  dnn::Graph g = models::synthetic_line(spec);
  g.infer();
  return g;
}

TEST(HostProfiler, MeasuresEveryLayer) {
  const dnn::Graph g = small_net();
  const auto records = profile_on_host(g);
  ASSERT_EQ(records.size(), g.size());
  EXPECT_DOUBLE_EQ(records[g.source()].median_ms, 0.0);
  double total = 0.0;
  for (const auto& rec : records) {
    EXPECT_GE(rec.median_ms, 0.0);
    total += rec.median_ms;
  }
  EXPECT_GT(total, 0.0) << "real kernels must take measurable time";
}

TEST(HostProfiler, ConvsCostMoreThanActivations) {
  // Real wall-clock sanity: the heaviest conv layer must out-cost the
  // cheapest activation by a wide margin.
  const dnn::Graph g = small_net();
  const auto records = profile_on_host(g);
  double max_conv = 0.0;
  double min_act = 1e300;
  for (dnn::NodeId id = 0; id < g.size(); ++id) {
    if (g.layer(id).kind() == dnn::LayerKind::kConv2d)
      max_conv = std::max(max_conv, records[id].median_ms);
    if (g.layer(id).kind() == dnn::LayerKind::kActivation)
      min_act = std::min(min_act, records[id].median_ms);
  }
  EXPECT_GT(max_conv, min_act);
}

TEST(HostProfiler, EndToEndPlanningOnRealMeasurements) {
  // The full §6.1 loop with nothing analytic in the path: measure real
  // kernels -> lookup table -> profile curve -> JPS plan.
  const dnn::Graph g = small_net();
  const profile::LookupTable table = build_host_lookup_table(g);
  ASSERT_TRUE(table.covers(g));

  const net::Channel channel(10.0);
  const auto curve = partition::ProfileCurve::build(g, table, channel);
  EXPECT_TRUE(curve.is_monotone());
  const core::Planner planner(curve);
  const core::ExecutionPlan plan = planner.plan(core::Strategy::kJPSHull, 8);
  EXPECT_EQ(plan.jobs.size(), 8u);
  EXPECT_GT(plan.predicted_makespan, 0.0);
  // The hull-pair JPS on real measurements dominates local- and cloud-only
  // (the raw ratio rule carries no such guarantee on fast hosts, where the
  // measured compute is tiny next to the modeled channel).
  EXPECT_LE(plan.predicted_makespan,
            planner.plan(core::Strategy::kLocalOnly, 8).predicted_makespan +
                1e-6);
  EXPECT_LE(plan.predicted_makespan,
            planner.plan(core::Strategy::kCloudOnly, 8).predicted_makespan +
                1e-6);
}

TEST(HostProfiler, Validation) {
  const dnn::Graph g = small_net();
  HostProfilerOptions bad;
  bad.trials = 0;
  EXPECT_THROW((void)profile_on_host(g, bad), std::invalid_argument);
}

}  // namespace
}  // namespace jps::runtime
