// Cross-validation between the fuzz seed corpora (fuzz/corpus/*) and the
// jps_lint rule packs: the fuzzers exercise the raw parsers, jps_lint
// runs parse + semantic rules over the same artifact formats, and the two
// must never disagree about what is loadable.
//
//   * a seed jps_lint passes clean MUST be accepted by the raw parser
//     (lint-clean artifacts are machine-loadable, always);
//   * a seed the raw parser rejects MUST carry at least one lint error
//     (the parsers reject nothing lint would bless).
//
// The middle ground — parses, but lint flags a semantic error (e.g. a
// makespan mismatch) — is legal in one direction only: lint is a superset
// of the parser, never the reverse.  The corpora themselves must cover
// both sides, or the gate is vacuous.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/lint_artifact.h"
#include "core/plan_io.h"
#include "fault/fault_spec.h"
#include "profile/lookup_table.h"

namespace fs = std::filesystem;

namespace {

std::vector<fs::path> seeds(const std::string& target) {
  const fs::path dir = fs::path(JPS_FUZZ_CORPUS_DIR) / target;
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

jps::check::DiagnosticList lint(const std::string& text) {
  jps::check::DiagnosticList out;
  jps::check::lint_artifact_text(text, {}, out);
  return out;
}

TEST(FuzzSeedCorpus, FaultSeedsAgreeWithLint) {
  const auto files = seeds("fault_spec");
  ASSERT_FALSE(files.empty());
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  for (const fs::path& file : files) {
    const std::string text = slurp(file);
    bool parses = true;
    try {
      (void)jps::fault::FaultSpec::parse(text);
    } catch (const std::runtime_error&) {
      parses = false;
    }
    const auto diagnostics = lint(text);
    (parses ? accepted : rejected) += 1;
    if (!parses) {
      EXPECT_TRUE(diagnostics.has_errors())
          << file.filename() << ": parser rejects but lint is error-free";
    }
    if (!diagnostics.has_errors()) {
      EXPECT_TRUE(parses)
          << file.filename() << ": lint-clean but FaultSpec::parse throws";
    }
  }
  // The gate means nothing unless the corpus covers both outcomes.
  EXPECT_GT(accepted, 0u);
  EXPECT_GT(rejected, 0u);
}

TEST(FuzzSeedCorpus, PlanSeedsAgreeWithLint) {
  // fuzz/corpus/plan_text mixes two formats on purpose (the fuzzer runs
  // both parsers): jps-plan artifacts, which jps_lint understands, and
  // jps-lookup-table files, which it rejects as L001 — consistent with
  // deserialize_plan rejecting them too.
  const auto files = seeds("plan_text");
  ASSERT_FALSE(files.empty());
  std::size_t plans = 0;
  std::size_t lookups = 0;
  std::size_t rejected = 0;
  for (const fs::path& file : files) {
    const std::string text = slurp(file);
    bool is_plan = true;
    try {
      (void)jps::core::deserialize_plan(text);
    } catch (const std::runtime_error&) {
      is_plan = false;
    }
    bool is_lookup = true;
    try {
      (void)jps::profile::LookupTable::deserialize(text);
    } catch (const std::runtime_error&) {
      is_lookup = false;
    }
    EXPECT_FALSE(is_plan && is_lookup)
        << file.filename() << ": accepted by BOTH parsers (format ambiguity)";
    const auto diagnostics = lint(text);
    if (!is_plan && !is_lookup) {
      ++rejected;
      EXPECT_TRUE(diagnostics.has_errors())
          << file.filename() << ": both parsers reject but lint is clean";
    }
    if (is_lookup) {
      ++lookups;
      EXPECT_TRUE(diagnostics.has_code("L001"))
          << file.filename() << ": lookup tables are not lint artifacts";
    }
    if (!diagnostics.has_errors()) {
      EXPECT_TRUE(is_plan)
          << file.filename() << ": lint-clean but deserialize_plan throws";
    }
    plans += is_plan ? 1 : 0;
  }
  EXPECT_GT(plans, 0u);
  EXPECT_GT(lookups, 0u);
  EXPECT_GT(rejected, 0u);
}

}  // namespace
