// Negative-path coverage for the runtime text parsers: each malformed input
// must surface a STABLE diagnostic code through ParseError, not just "some
// exception".  The happy-path round-trips live in core/plan_io_test.cpp and
// fault/fault_spec_test.cpp.
#include <gtest/gtest.h>

#include <string>

#include "check/diagnostics.h"
#include "core/plan_io.h"
#include "fault/fault_spec.h"

namespace {

using jps::check::ParseError;

std::string code_of_plan_failure(const std::string& text) {
  try {
    (void)jps::core::deserialize_plan(text);
  } catch (const ParseError& e) {
    return e.code();
  }
  return "<no throw>";
}

std::string code_of_fault_failure(const std::string& text) {
  try {
    (void)jps::fault::FaultSpec::parse(text);
  } catch (const ParseError& e) {
    return e.code();
  }
  return "<no throw>";
}

constexpr const char* kValidPlan =
    "jps-plan v1\n"
    "model alexnet\n"
    "strategy JPS\n"
    "comm_heavy 0\n"
    "makespan_ms 250\n"
    "job 0 1 100 50\n"
    "job 1 2 100 50\n";

TEST(PlanNegative, EmptyInputIsP010) {
  EXPECT_EQ(code_of_plan_failure(""), "P010");
}

TEST(PlanNegative, ForeignHeaderIsP010) {
  EXPECT_EQ(code_of_plan_failure("totally not a plan\n"), "P010");
}

TEST(PlanNegative, UnknownVersionStringIsP010) {
  // A future "jps-plan v2" file must be rejected with the version message,
  // not misparsed as v1.
  std::string text = kValidPlan;
  text.replace(text.find("v1"), 2, "v7");
  EXPECT_EQ(code_of_plan_failure(text), "P010");
}

TEST(PlanNegative, TruncatedFileIsP015) {
  // Cut mid-artifact: header survives but strategy and job lines are gone.
  const std::string full = kValidPlan;
  const std::string text = full.substr(0, full.find("strategy"));
  EXPECT_EQ(code_of_plan_failure(text), "P015");
}

TEST(PlanNegative, DuplicateKeysAreP014) {
  std::string text = kValidPlan;
  text.insert(text.find("strategy"), "model vgg16\n");
  EXPECT_EQ(code_of_plan_failure(text), "P014");
}

TEST(PlanNegative, BadJobLineIsP011) {
  std::string text = kValidPlan;
  text.replace(text.find("job 0 1 100 50"), 14, "job 0 1 100 fifty");
  EXPECT_EQ(code_of_plan_failure(text), "P011");
}

TEST(PlanNegative, UnknownStrategyIsP012) {
  std::string text = kValidPlan;
  text.replace(text.find("JPS"), 3, "WARP");
  EXPECT_EQ(code_of_plan_failure(text), "P012");
}

TEST(PlanNegative, AllViolationsReportedTogether) {
  // One pass reports every broken line, not just the first.
  const std::string text =
      "jps-plan v1\n"
      "model alexnet\n"
      "model again\n"
      "strategy WARP\n"
      "priority high\n";
  try {
    (void)jps::core::deserialize_plan(text);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_TRUE(e.diagnostics().has_code("P014"));
    EXPECT_TRUE(e.diagnostics().has_code("P012"));
    EXPECT_TRUE(e.diagnostics().has_code("P013"));
    EXPECT_TRUE(e.diagnostics().has_code("P015"));
  }
}

TEST(PlanNegative, CrlfLineEndingsParseCleanly) {
  // Windows-authored artifacts are legal: trim strips the '\r'.
  std::string text = kValidPlan;
  std::string crlf;
  for (const char c : text) {
    if (c == '\n') crlf += '\r';
    crlf += c;
  }
  const jps::core::ExecutionPlan plan = jps::core::deserialize_plan(crlf);
  EXPECT_EQ(plan.model, "alexnet");
  EXPECT_EQ(plan.jobs.size(), 2u);
}

TEST(FaultNegative, EmptyInputIsF001) {
  EXPECT_EQ(code_of_fault_failure(""), "F001");
}

TEST(FaultNegative, UnknownVersionStringIsF001) {
  EXPECT_EQ(code_of_fault_failure("jps-faults v9\noutage 0 10\n"), "F001");
}

TEST(FaultNegative, UnknownKeywordIsF002) {
  EXPECT_EQ(code_of_fault_failure("jps-faults v1\nmeteor 0 10\n"), "F002");
}

TEST(FaultNegative, TruncatedWindowIsF007) {
  EXPECT_EQ(code_of_fault_failure("jps-faults v1\noutage 100\n"), "F007");
}

TEST(FaultNegative, MissingValueIsF007) {
  EXPECT_EQ(code_of_fault_failure("jps-faults v1\ndrift 0 10\n"), "F007");
}

TEST(FaultNegative, OverlappingOutagesAreF003) {
  EXPECT_EQ(code_of_fault_failure(
                "jps-faults v1\noutage 0 500\noutage 400 800\n"),
            "F003");
}

TEST(FaultNegative, CrlfWithCommentsParsesCleanly) {
  const jps::fault::FaultSpec spec = jps::fault::FaultSpec::parse(
      "jps-faults v1\r\n# comment\r\ndrift 0 500 4.2\r\noutage 600 700\r\n");
  EXPECT_EQ(spec.events.size(), 2u);
  EXPECT_DOUBLE_EQ(spec.events[0].value, 4.2);
}

}  // namespace
