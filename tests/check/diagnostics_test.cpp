#include "check/diagnostics.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "check/lint_artifact.h"

namespace jps::check {
namespace {

TEST(DiagnosticList, CountsAndLookup) {
  DiagnosticList list;
  EXPECT_TRUE(list.empty());
  list.error("P001", "job 0", "cut out of range");
  list.warning("P008", "", "tie-break drift");
  list.error("P005", "", "makespan mismatch");
  EXPECT_FALSE(list.empty());
  EXPECT_EQ(list.error_count(), 2u);
  EXPECT_EQ(list.warning_count(), 1u);
  EXPECT_TRUE(list.has_errors());
  EXPECT_TRUE(list.has_code("P008"));
  EXPECT_FALSE(list.has_code("F003"));
  EXPECT_EQ(list.first_error_code(), "P001");
}

TEST(DiagnosticList, ToStringFormat) {
  Diagnostic d;
  d.severity = Severity::kError;
  d.code = "P001";
  d.location = "job 3";
  d.message = "cut index 99 out of range";
  EXPECT_EQ(to_string(d), "error[P001] job 3: cut index 99 out of range");
  d.severity = Severity::kWarning;
  d.location.clear();
  EXPECT_EQ(to_string(d), "warning[P001]: cut index 99 out of range");
}

TEST(DiagnosticList, MergeAppends) {
  DiagnosticList a;
  a.error("G001", "", "empty");
  DiagnosticList b;
  b.warning("G007", "node 2", "dead node");
  a.merge(b);
  EXPECT_EQ(a.all().size(), 2u);
  EXPECT_TRUE(a.has_code("G007"));
}

TEST(ParseErrorTest, CarriesCodeAndDerivesRuntimeError) {
  DiagnosticList list;
  list.warning("P008", "", "drift");
  list.error("P010", "line 1", "bad header");
  try {
    throw_parse_error_if_any(list, "plan_io");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.code(), "P010");
    EXPECT_EQ(e.diagnostics().error_count(), 1u);
    EXPECT_NE(std::string(e.what()).find("P010"), std::string::npos);
  }
  // Callers that predate the diagnostics layer catch std::runtime_error.
  EXPECT_THROW(throw_parse_error_if_any(list, "plan_io"), std::runtime_error);
}

TEST(ParseErrorTest, WarningsAloneDoNotThrow) {
  DiagnosticList list;
  list.warning("P008", "", "drift");
  EXPECT_NO_THROW(throw_parse_error_if_any(list, "plan_io"));
  EXPECT_NO_THROW(throw_validation_error_if_any(list, "plan_io"));
}

TEST(ValidationErrorTest, CarriesCodeAndDerivesInvalidArgument) {
  DiagnosticList list;
  list.error("F003", "event 1", "overlap");
  EXPECT_THROW(throw_validation_error_if_any(list, "timeline"),
               std::invalid_argument);
  try {
    throw_validation_error_if_any(list, "timeline");
  } catch (const ValidationError& e) {
    EXPECT_EQ(e.code(), "F003");
  }
}

TEST(LintReportJson, EscapesAndCounts) {
  DiagnosticList list;
  list.error("L001", "line 1", "bad \"quote\"");
  const std::string json = lint_report_json({{"a\\b.txt", list}});
  EXPECT_NE(json.find("\"file\":\"a\\\\b.txt\""), std::string::npos);
  EXPECT_NE(json.find("\"code\":\"L001\""), std::string::npos);
  EXPECT_NE(json.find("bad \\\"quote\\\""), std::string::npos);
  EXPECT_NE(json.find("\"errors\":1"), std::string::npos);
  EXPECT_NE(json.find("\"warnings\":0"), std::string::npos);
}

}  // namespace
}  // namespace jps::check
