// Unit tests for the individual rule packs over in-memory artifacts; the
// corpus golden test exercises the same rules end-to-end through files.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "check/lint_curve.h"
#include "check/lint_fault.h"
#include "check/lint_graph.h"
#include "check/lint_plan.h"
#include "dnn/layer.h"
#include "fault/fault_spec.h"
#include "models/registry.h"
#include "net/channel.h"
#include "partition/profile_curve.h"
#include "profile/device.h"
#include "profile/latency_model.h"

namespace jps::check {
namespace {

// ---------------------------------------------------------------- graph pack

TEST(LintGraph, EmptyGraphIsG001) {
  dnn::Graph g("empty");
  DiagnosticList out;
  lint_graph_structure(g, out);
  EXPECT_TRUE(out.has_code("G001"));
}

TEST(LintGraph, TwoInputsIsG002) {
  dnn::Graph g("two-inputs");
  const dnn::NodeId a = g.add(dnn::input(dnn::TensorShape::chw(1, 4, 4)));
  const dnn::NodeId b = g.add(dnn::input(dnn::TensorShape::chw(1, 4, 4)));
  (void)g.add(dnn::add(), {a, b});
  DiagnosticList out;
  lint_graph_structure(g, out);
  EXPECT_TRUE(out.has_code("G002"));
}

TEST(LintGraph, NonInputHeadIsG003AndG004) {
  dnn::Graph g("headless");
  (void)g.add(dnn::activation(dnn::ActivationKind::kReLU));
  DiagnosticList out;
  lint_graph_structure(g, out);
  EXPECT_TRUE(out.has_code("G003"));  // node 0 is not the input
  EXPECT_TRUE(out.has_code("G004"));  // non-input node without predecessors
}

TEST(LintGraph, TwoSinksIsG005) {
  dnn::Graph g("forked");
  const dnn::NodeId x = g.add(dnn::input(dnn::TensorShape::chw(1, 4, 4)));
  (void)g.add(dnn::activation(dnn::ActivationKind::kReLU), {x});
  (void)g.add(dnn::activation(dnn::ActivationKind::kReLU), {x});
  DiagnosticList out;
  lint_graph_structure(g, out);
  EXPECT_TRUE(out.has_code("G005"));
}

TEST(LintGraph, DisconnectedChainWarnsG007) {
  dnn::Graph g("islands");
  const dnn::NodeId x = g.add(dnn::input(dnn::TensorShape::chw(1, 4, 4)));
  (void)g.add(dnn::activation(dnn::ActivationKind::kReLU), {x});
  // Island: a chain with no route back to the input.
  const dnn::NodeId stray =
      g.add(dnn::activation(dnn::ActivationKind::kReLU));
  (void)g.add(dnn::activation(dnn::ActivationKind::kReLU), {stray});
  DiagnosticList out;
  lint_graph_structure(g, out);
  EXPECT_TRUE(out.has_code("G004"));  // the island's head
  EXPECT_TRUE(out.has_code("G007"));
  EXPECT_EQ(out.warning_count(), 2u);  // both island nodes are dead
}

TEST(LintGraph, ShapeMismatchIsG006) {
  dnn::Graph g("mismatch");
  const dnn::NodeId x = g.add(dnn::input(dnn::TensorShape::chw(3, 8, 8)));
  const dnn::NodeId thin = g.add(dnn::conv2d(1, 1, 1, 0), {x});
  (void)g.add(dnn::add(), {x, thin});  // 3x8x8 + 1x8x8 cannot broadcast
  DiagnosticList out;
  lint_graph(g, out);
  EXPECT_TRUE(out.has_code("G006"));
}

TEST(LintGraph, ZooModelsAreClean) {
  for (const std::string& name : models::all_names()) {
    const dnn::Graph g = models::build(name);
    DiagnosticList out;
    lint_graph(g, out);
    EXPECT_TRUE(out.empty()) << name << ": " << out.to_text();
  }
}

// ---------------------------------------------------------------- curve pack

partition::CutPoint cut_fg(double f, double g) {
  partition::CutPoint c;
  c.f = f;
  c.g = g;
  return c;
}

TEST(LintCurve, SingleCutIsC001) {
  const auto curve =
      partition::ProfileCurve::from_candidates("toy", {cut_fg(0.0, 0.0)});
  DiagnosticList out;
  lint_curve(curve, out);
  EXPECT_TRUE(out.has_code("C001"));
}

TEST(LintCurve, NegativeLatencyIsC002) {
  const auto curve = partition::ProfileCurve::from_candidates(
      "toy", {cut_fg(0.0, 10.0), cut_fg(-5.0, 0.0)}, {.cluster = false});
  DiagnosticList out;
  lint_curve(curve, out);
  EXPECT_TRUE(out.has_code("C002"));
}

TEST(LintCurve, IncreasingGIsC004) {
  const auto curve = partition::ProfileCurve::from_candidates(
      "toy", {cut_fg(0.0, 10.0), cut_fg(5.0, 20.0), cut_fg(9.0, 0.0)},
      {.cluster = false});
  DiagnosticList out;
  lint_curve(curve, out);
  EXPECT_TRUE(out.has_code("C004"));
}

TEST(LintCurve, WrongEndpointsAreC005) {
  const auto curve = partition::ProfileCurve::from_candidates(
      "toy", {cut_fg(1.0, 10.0), cut_fg(5.0, 2.0)}, {.cluster = false});
  DiagnosticList out;
  lint_curve(curve, out);
  EXPECT_TRUE(out.has_code("C005"));
}

TEST(LintCurve, BuiltModelCurveIsClean) {
  const dnn::Graph g = models::build("alexnet");
  const profile::LatencyModel mobile(profile::DeviceProfile::raspberry_pi_4b());
  const auto curve =
      partition::ProfileCurve::build(g, mobile, net::Channel(5.85));
  DiagnosticList out;
  lint_curve(curve, out);
  EXPECT_TRUE(out.empty()) << out.to_text();
}

// ----------------------------------------------------------------- plan pack

core::ExecutionPlan one_job_plan(double f, double g, std::size_t cut) {
  core::ExecutionPlan plan;
  plan.model = "toy";
  plan.strategy = core::Strategy::kJPS;
  plan.comm_heavy_count = 0;
  core::JobAssignment a;
  a.job_id = 0;
  a.cut_index = cut;
  plan.jobs.push_back(a);
  sched::Job job;
  job.id = 0;
  job.cut = static_cast<int>(cut);
  job.f = f;
  job.g = g;
  plan.scheduled_jobs.push_back(job);
  plan.predicted_makespan = f + g;  // closed form for one job
  return plan;
}

TEST(LintPlan, CurveMismatchOnFIsX002) {
  const auto curve = partition::ProfileCurve::from_candidates(
      "toy", {cut_fg(0.0, 100.0), cut_fg(50.0, 40.0), cut_fg(120.0, 0.0)});
  PlanLintContext context;
  context.curve = &curve;

  DiagnosticList clean;
  lint_plan(one_job_plan(50.0, 40.0, 1), clean, context);
  EXPECT_TRUE(clean.empty()) << clean.to_text();

  DiagnosticList out;
  lint_plan(one_job_plan(55.0, 40.0, 1), out, context);
  EXPECT_TRUE(out.has_code("X002"));
  EXPECT_TRUE(out.has_errors());
}

TEST(LintPlan, CurveMismatchOnGIsX003Warning) {
  const auto curve = partition::ProfileCurve::from_candidates(
      "toy", {cut_fg(0.0, 100.0), cut_fg(50.0, 40.0), cut_fg(120.0, 0.0)});
  PlanLintContext context;
  context.curve = &curve;
  DiagnosticList out;
  lint_plan(one_job_plan(50.0, 45.0, 1), out, context);
  EXPECT_TRUE(out.has_code("X003"));
  EXPECT_FALSE(out.has_errors());  // g depends on bandwidth: warn, not reject
}

TEST(LintPlan, CutBeyondCurveIsP001) {
  const auto curve = partition::ProfileCurve::from_candidates(
      "toy", {cut_fg(0.0, 100.0), cut_fg(120.0, 0.0)});
  PlanLintContext context;
  context.curve = &curve;
  DiagnosticList out;
  lint_plan(one_job_plan(50.0, 40.0, 7), out, context);
  EXPECT_TRUE(out.has_code("P001"));
}

TEST(LintPlan, InconsistentArraysAreP007) {
  core::ExecutionPlan plan = one_job_plan(10.0, 5.0, 1);
  plan.scheduled_jobs[0].id = 9;  // disagrees with jobs[0].job_id
  DiagnosticList out;
  lint_plan(plan, out);
  EXPECT_TRUE(out.has_code("P007"));
}

TEST(LintPlan, NonFiniteLatencyIsP002) {
  core::ExecutionPlan plan = one_job_plan(10.0, 5.0, 1);
  plan.scheduled_jobs[0].g = std::numeric_limits<double>::quiet_NaN();
  DiagnosticList out;
  lint_plan(plan, out);
  EXPECT_TRUE(out.has_code("P002"));
}

// ---------------------------------------------------------------- fault pack

fault::FaultEvent event(fault::FaultKind kind, double start, double end,
                        double value = 0.0) {
  fault::FaultEvent e;
  e.kind = kind;
  e.start_ms = start;
  e.end_ms = end;
  e.value = value;
  return e;
}

TEST(LintFault, ReportsAllViolationsAtOnce) {
  fault::FaultSpec spec;
  spec.events.push_back(event(fault::FaultKind::kOutage, 0.0, 500.0));
  spec.events.push_back(event(fault::FaultKind::kOutage, 400.0, 800.0));
  spec.events.push_back(event(fault::FaultKind::kDrift, 0.0, 100.0, -3.0));
  spec.events.push_back(event(fault::FaultKind::kCloudSlow, 900.0, 100.0, 2.0));
  DiagnosticList out;
  lint_fault_spec(spec, out);
  EXPECT_TRUE(out.has_code("F003"));
  EXPECT_TRUE(out.has_code("F005"));
  EXPECT_TRUE(out.has_code("F004"));
  EXPECT_EQ(out.error_count(), 3u);
}

TEST(LintFault, DifferentKindsMayOverlap) {
  fault::FaultSpec spec;
  spec.events.push_back(event(fault::FaultKind::kOutage, 0.0, 500.0));
  spec.events.push_back(event(fault::FaultKind::kCloudSlow, 100.0, 400.0, 2.0));
  DiagnosticList out;
  lint_fault_spec(spec, out);
  EXPECT_TRUE(out.empty()) << out.to_text();
}

}  // namespace
}  // namespace jps::check
