#include "check/contracts.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace jps::check {
namespace {

TEST(Contracts, PassingConditionsAreSilent) {
  EXPECT_NO_THROW(JPS_REQUIRE(1 + 1 == 2, "arithmetic"));
  EXPECT_NO_THROW(JPS_ENSURE(true, "trivial"));
  EXPECT_NO_THROW(JPS_INVARIANT(!false, "trivial"));
}

#ifndef JPS_NO_CONTRACTS

TEST(Contracts, RequireThrowsPrecondition) {
  try {
    JPS_REQUIRE(2 < 1, "impossible ordering");
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    EXPECT_STREQ(e.kind(), "precondition");
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("impossible ordering"), std::string::npos);
    EXPECT_NE(what.find("contracts_test.cpp"), std::string::npos);
  }
}

TEST(Contracts, EnsureAndInvariantKinds) {
  try {
    JPS_ENSURE(false, "post");
    FAIL();
  } catch (const ContractViolation& e) {
    EXPECT_STREQ(e.kind(), "postcondition");
  }
  try {
    JPS_INVARIANT(false, "inv");
    FAIL();
  } catch (const ContractViolation& e) {
    EXPECT_STREQ(e.kind(), "invariant");
  }
}

TEST(Contracts, ViolationIsALogicError) {
  EXPECT_THROW(JPS_INVARIANT(false, "x"), std::logic_error);
}

#endif  // JPS_NO_CONTRACTS

}  // namespace
}  // namespace jps::check
