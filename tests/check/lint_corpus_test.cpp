// Golden test over the seeded corpus in tests/check/corpus/ — the same
// artifacts the CI lint job feeds to the jps_lint binary.
//
//   valid/   must produce zero diagnostics
//   broken/  must produce >= 1 error including the code embedded in the
//            filename ("plan_cut_out_of_range.P001.txt" expects P001)
//   warn/    must produce warnings only, including the embedded code
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "check/lint_artifact.h"

namespace fs = std::filesystem;

namespace {

std::vector<fs::path> corpus_files(const std::string& bucket) {
  const fs::path dir = fs::path(JPS_CORPUS_DIR) / bucket;
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

// "plan_cut_out_of_range.P001.txt" -> "P001".
std::string expected_code(const fs::path& file) {
  const std::string stem = file.stem().string();  // drops ".txt"
  const std::size_t dot = stem.rfind('.');
  EXPECT_NE(dot, std::string::npos) << file << ": no embedded code";
  return dot == std::string::npos ? std::string() : stem.substr(dot + 1);
}

jps::check::DiagnosticList lint(const fs::path& file) {
  jps::check::DiagnosticList out;
  jps::check::lint_artifact_file(file.string(), {}, out);
  return out;
}

TEST(LintCorpus, ValidArtifactsAreClean) {
  const auto files = corpus_files("valid");
  ASSERT_FALSE(files.empty());
  for (const fs::path& file : files) {
    const auto out = lint(file);
    EXPECT_TRUE(out.empty())
        << file.filename() << " should be clean:\n" << out.to_text();
  }
}

TEST(LintCorpus, BrokenArtifactsFlagTheirCode) {
  const auto files = corpus_files("broken");
  ASSERT_FALSE(files.empty());
  for (const fs::path& file : files) {
    const auto out = lint(file);
    const std::string code = expected_code(file);
    EXPECT_TRUE(out.has_errors()) << file.filename() << " must be rejected";
    EXPECT_TRUE(out.has_code(code))
        << file.filename() << " should flag " << code << "; got:\n"
        << out.to_text();
  }
}

TEST(LintCorpus, WarnArtifactsWarnWithoutErrors) {
  const auto files = corpus_files("warn");
  ASSERT_FALSE(files.empty());
  for (const fs::path& file : files) {
    const auto out = lint(file);
    const std::string code = expected_code(file);
    EXPECT_FALSE(out.has_errors())
        << file.filename() << " must stay admissible:\n" << out.to_text();
    EXPECT_GT(out.warning_count(), 0u) << file.filename();
    EXPECT_TRUE(out.has_code(code))
        << file.filename() << " should flag " << code << "; got:\n"
        << out.to_text();
  }
}

// Every code referenced by a corpus filename must round-trip through the
// runtime parsers with the SAME code (plans/faults share the rule packs), so
// the corpus can never drift ahead of the library.
TEST(LintCorpus, JsonReportCoversAllBuckets) {
  std::vector<jps::check::FileReport> reports;
  for (const std::string bucket : {"valid", "broken", "warn"}) {
    for (const fs::path& file : corpus_files(bucket)) {
      reports.emplace_back(file.filename().string(), lint(file));
    }
  }
  const std::string json = jps::check::lint_report_json(reports);
  EXPECT_NE(json.find("\"errors\":"), std::string::npos);
  EXPECT_NE(json.find("plan_cut_out_of_range.P001.txt"), std::string::npos);
  EXPECT_NE(json.find("\"code\":\"F003\""), std::string::npos);
}

}  // namespace
