#include "sched/bruteforce.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "util/rng.h"

namespace jps::sched {
namespace {

// A random monotone cut set: f non-decreasing, g non-increasing — the shape
// every clustered profile curve has.
std::vector<CutOption> random_monotone_cuts(util::Rng& rng, int k) {
  std::vector<CutOption> cuts(static_cast<std::size_t>(k));
  double f = 0.0;
  double g = rng.uniform(20.0, 40.0);
  for (auto& c : cuts) {
    c.f = f;
    c.g = g;
    f += rng.uniform(0.1, 5.0);
    g = std::max(0.0, g - rng.uniform(0.1, 8.0));
  }
  cuts.back().g = 0.0;  // local-only endpoint
  return cuts;
}

TEST(AssignmentMakespan, SingleCut) {
  const std::vector<CutOption> cuts{{3.0, 4.0}};
  const std::vector<int> assignment{0, 0};
  // Two identical jobs (3,4): 3 + max(3, 4) + 4 = 11.
  EXPECT_DOUBLE_EQ(assignment_makespan(cuts, assignment), 11.0);
}

TEST(BestPermutation, RejectsLargeInputs) {
  JobList jobs(11);
  EXPECT_THROW((void)best_permutation_makespan(jobs), std::invalid_argument);
}

TEST(BruteforceExact, FindsMixedOptimumOfPaperExample) {
  // Fig. 2: cuts (f=4, g=6) and (f=7, g=2); two jobs.  Mixed partition
  // gives 13, any homogeneous one gives 16.
  const std::vector<CutOption> cuts{{4.0, 6.0}, {7.0, 2.0}};
  const BruteForceResult result = bruteforce_exact(cuts, 2);
  EXPECT_DOUBLE_EQ(result.makespan, 13.0);
  EXPECT_EQ(result.cuts, (std::vector<int>{0, 1}));
  EXPECT_EQ(result.evaluated, 3u);  // multisets {00, 01, 11}
}

TEST(BruteforceExact, EnumerationCountMatchesFormula) {
  // C(n+k-1, k-1) multisets for n jobs over k cuts.
  const std::vector<CutOption> cuts{{0, 5}, {1, 3}, {2, 0}};
  const BruteForceResult result = bruteforce_exact(cuts, 4);
  EXPECT_EQ(result.evaluated, 15u);  // C(6,2)
}

TEST(BruteforceExact, CapGuard) {
  const std::vector<CutOption> cuts(20, CutOption{1.0, 1.0});
  EXPECT_THROW(bruteforce_exact(cuts, 50, /*max_assignments=*/1000),
               std::invalid_argument);
}

TEST(BruteforceExact, Validation) {
  EXPECT_THROW(bruteforce_exact({}, 2), std::invalid_argument);
  const std::vector<CutOption> cuts{{1, 1}};
  EXPECT_THROW(bruteforce_exact(cuts, 0), std::invalid_argument);
}

TEST(BruteforceTwoType, CoversSingleTypeAssignments) {
  // With one cut, the only assignment is all-jobs-at-0.
  const std::vector<CutOption> cuts{{2.0, 3.0}};
  const BruteForceResult result = bruteforce_two_type(cuts, 3);
  EXPECT_EQ(result.cuts, (std::vector<int>{0, 0, 0}));
  EXPECT_DOUBLE_EQ(result.makespan, assignment_makespan(cuts, result.cuts));
}

TEST(BruteforceTwoType, NearOptimalWithVanishingBoundaryGap) {
  // Theorem 5.3's two-type sufficiency is exact only under its stated
  // conditions.  On general monotone cut sets a third cut type can shave
  // the boundary terms f(x1)/g(xn) of Prop. 4.1, but that advantage is
  // O(1/n): measured worst gaps on this distribution are ~14% at n=4 and
  // ~3% at n=32.  Assert the 1.5/n envelope and the exact lower bound.
  util::Rng rng(21);
  for (int trial = 0; trial < 60; ++trial) {
    const int k = static_cast<int>(rng.uniform_int(2, 6));
    const int n = static_cast<int>(rng.uniform_int(1, 7));
    const auto cuts = random_monotone_cuts(rng, k);
    const BruteForceResult exact = bruteforce_exact(cuts, n);
    const BruteForceResult two = bruteforce_two_type(cuts, n);
    EXPECT_GE(two.makespan, exact.makespan - 1e-9)
        << "trial " << trial;  // exact enumerates a superset
    EXPECT_LE(two.makespan,
              exact.makespan * (1.0 + 1.5 / static_cast<double>(n)) + 1e-9)
        << "trial " << trial << " k=" << k << " n=" << n;
  }
}

TEST(BruteforceTwoType, BoundaryGapShrinksWithJobCount) {
  // The same cut set, growing n: the two-type gap must fade (O(1/n)).
  util::Rng rng(22);
  const auto cuts = random_monotone_cuts(rng, 6);
  double gap_small = 0.0;
  double gap_large = 0.0;
  for (const int n : {4, 32}) {
    const BruteForceResult exact = bruteforce_exact(cuts, n, 50'000'000);
    const BruteForceResult two = bruteforce_two_type(cuts, n);
    const double gap = two.makespan / exact.makespan - 1.0;
    (n == 4 ? gap_small : gap_large) = gap;
  }
  EXPECT_LE(gap_large, gap_small + 1e-9);
  EXPECT_LE(gap_large, 0.05);
}

TEST(BruteforceTwoType, NeverWorseThanAnyHomogeneousAssignment) {
  util::Rng rng(31);
  const auto cuts = random_monotone_cuts(rng, 8);
  const int n = 25;
  const BruteForceResult result = bruteforce_two_type(cuts, n);
  for (std::size_t c = 0; c < cuts.size(); ++c) {
    const std::vector<int> homogeneous(static_cast<std::size_t>(n),
                                       static_cast<int>(c));
    EXPECT_LE(result.makespan,
              assignment_makespan(cuts, homogeneous) + 1e-9);
  }
}

TEST(BruteforceTwoType, ResultAssignmentIsConsistent) {
  util::Rng rng(41);
  const auto cuts = random_monotone_cuts(rng, 5);
  const BruteForceResult result = bruteforce_two_type(cuts, 10);
  ASSERT_EQ(result.cuts.size(), 10u);
  EXPECT_NEAR(result.makespan, assignment_makespan(cuts, result.cuts), 1e-9);
  // At most two distinct cut values.
  std::vector<int> distinct = result.cuts;
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()), distinct.end());
  EXPECT_LE(distinct.size(), 2u);
}

}  // namespace
}  // namespace jps::sched
