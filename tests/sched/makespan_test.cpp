#include "sched/makespan.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sched/johnson.h"
#include "util/rng.h"

namespace jps::sched {
namespace {

JobList make_jobs(std::initializer_list<std::pair<double, double>> fg) {
  JobList jobs;
  int id = 0;
  for (const auto& [f, g] : fg)
    jobs.push_back(Job{.id = id++, .cut = -1, .f = f, .g = g});
  return jobs;
}

TEST(Flowshop2, SingleJob) {
  const JobList jobs = make_jobs({{3, 4}});
  EXPECT_DOUBLE_EQ(flowshop2_makespan(jobs), 7.0);
}

TEST(Flowshop2, PipelineOverlaps) {
  // Job 1 comp [0,4], comm [4,10]; job 2 comp [4,11], comm [11,13].
  const JobList jobs = make_jobs({{4, 6}, {7, 2}});
  EXPECT_DOUBLE_EQ(flowshop2_makespan(jobs), 13.0);
  const auto timeline = flowshop2_timeline(jobs);
  ASSERT_EQ(timeline.size(), 2u);
  EXPECT_DOUBLE_EQ(timeline[0].comm_start, 4.0);
  EXPECT_DOUBLE_EQ(timeline[1].comp_start, 4.0);
  EXPECT_DOUBLE_EQ(timeline[1].comm_start, 11.0);
  EXPECT_DOUBLE_EQ(timeline[1].completion(), 13.0);
}

TEST(Flowshop2, CommQueuesBehindPreviousComm) {
  // Job 2's comp finishes early but must wait for the link.
  const JobList jobs = make_jobs({{1, 10}, {1, 5}});
  const auto timeline = flowshop2_timeline(jobs);
  EXPECT_DOUBLE_EQ(timeline[1].comp_end, 2.0);
  EXPECT_DOUBLE_EQ(timeline[1].comm_start, 11.0);  // waits for job 1's comm
  EXPECT_DOUBLE_EQ(flowshop2_makespan(jobs), 16.0);
}

TEST(Flowshop2, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(flowshop2_makespan(JobList{}), 0.0);
}

TEST(Flowshop2, TimelineMatchesMakespan) {
  util::Rng rng(4);
  JobList jobs;
  for (int i = 0; i < 20; ++i)
    jobs.push_back(Job{.id = i,
                       .cut = -1,
                       .f = rng.uniform(0.0, 5.0),
                       .g = rng.uniform(0.0, 5.0)});
  const auto timeline = flowshop2_timeline(jobs);
  double max_completion = 0.0;
  for (const auto& t : timeline)
    max_completion = std::max(max_completion, t.completion());
  EXPECT_DOUBLE_EQ(max_completion, flowshop2_makespan(jobs));
}

TEST(Flowshop3, CloudStageExtendsMakespan) {
  JobList jobs = make_jobs({{4, 6}, {7, 2}});
  for (auto& j : jobs) j.cloud = 1.0;
  EXPECT_DOUBLE_EQ(flowshop3_makespan(jobs), 14.0);  // 13 + trailing cloud
  // With zero cloud time the 3-stage result collapses to the 2-stage one.
  for (auto& j : jobs) j.cloud = 0.0;
  EXPECT_DOUBLE_EQ(flowshop3_makespan(jobs), flowshop2_makespan(jobs));
}

TEST(ClosedForm, MatchesCriticalPathIdentityByHand) {
  // max_k (sum_{i<=k} f_i + sum_{i>=k} g_i): k=1 -> 2+15, k=2 -> 5+6,
  // k=3 -> 11+1.  The maximum (17) sits at k=1 here.
  const JobList jobs = make_jobs({{2, 9}, {3, 5}, {6, 1}});
  EXPECT_DOUBLE_EQ(closed_form_makespan(jobs), 17.0);
  EXPECT_DOUBLE_EQ(flowshop2_makespan(jobs), 17.0);
}

TEST(ClosedForm, InteriorCriticalJobCounterexample) {
  // The regression that motivated the exact sweep: the k=2 term dominates
  // (1+10 f-prefix, 10+1 g-suffix = 22) but the old k-in-{1,n} rendering
  // reported 1 + max(11, 11) + 1 = 13.
  const JobList jobs = make_jobs({{1, 1}, {10, 10}, {1, 1}});
  EXPECT_DOUBLE_EQ(closed_form_makespan(jobs), 22.0);
  EXPECT_DOUBLE_EQ(flowshop2_makespan(jobs), 22.0);
}

TEST(ClosedForm, MatchesRecurrenceOnRandomOrders) {
  // The identity is exact for EVERY order, not only Johnson's: 1000+
  // random job sequences must agree with the flow-shop recurrence.
  util::Rng rng(9);
  for (int trial = 0; trial < 1200; ++trial) {
    JobList jobs;
    const int n = static_cast<int>(rng.uniform_int(1, 12));
    for (int i = 0; i < n; ++i)
      jobs.push_back(Job{.id = i,
                         .cut = -1,
                         .f = rng.uniform(0.0, 10.0),
                         .g = rng.uniform(0.0, 10.0)});
    const double reference = flowshop2_makespan(jobs);
    EXPECT_NEAR(closed_form_makespan(jobs), reference,
                1e-9 * std::max(1.0, reference))
        << "trial " << trial << " n=" << n;
  }
}

TEST(ClosedForm, ExactUnderJohnsonForTwoAdjacentCutTypes) {
  // Proposition 4.1's setting: identical jobs from two adjacent cut types
  // of a monotone curve, Johnson-ordered.  There the k-in-{1,n} special
  // case the paper states coincides with the full identity.
  util::Rng rng(13);
  for (int trial = 0; trial < 200; ++trial) {
    // Random adjacent pair: comm-heavy (f1 < g1) and comp-heavy (f2 >= g2)
    // with f1 <= f2 and g1 >= g2 (monotone curve).
    const double f1 = rng.uniform(0.0, 5.0);
    const double g1 = f1 + rng.uniform(0.1, 5.0);
    const double f2 = f1 + rng.uniform(0.0, 5.0);
    const double g2 = rng.uniform(0.0, std::min(f2, g1));
    JobList jobs;
    const int n1 = static_cast<int>(rng.uniform_int(0, 6));
    const int n2 = static_cast<int>(rng.uniform_int(0, 6));
    if (n1 + n2 == 0) continue;
    for (int i = 0; i < n1; ++i)
      jobs.push_back(Job{.id = i, .cut = 0, .f = f1, .g = g1});
    for (int i = 0; i < n2; ++i)
      jobs.push_back(Job{.id = n1 + i, .cut = 1, .f = f2, .g = g2});
    const JohnsonSchedule s = johnson_order(jobs);
    const JobList ordered = apply_order(jobs, s.order);
    EXPECT_NEAR(closed_form_makespan(ordered), flowshop2_makespan(ordered),
                1e-9)
        << "trial " << trial;
  }
}

TEST(Lanes, MatchJobSpanOverloadsBitwise) {
  // The SoA overloads run the same additions in the same order as the
  // Job-span ones, so on identical sequences the doubles must match
  // bit for bit — that is the contract the batched planner path leans on.
  util::Rng rng(29);
  for (int trial = 0; trial < 200; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(1, 30));
    JobList jobs;
    std::vector<double> f(n), g(n);
    for (int i = 0; i < n; ++i) {
      f[i] = rng.uniform(0.0, 10.0);
      g[i] = rng.uniform(0.0, 10.0);
      jobs.push_back(Job{.id = i, .cut = -1, .f = f[i], .g = g[i]});
    }
    EXPECT_EQ(flowshop2_makespan(f, g), flowshop2_makespan(jobs))
        << "trial " << trial;
    EXPECT_EQ(closed_form_makespan(f, g), closed_form_makespan(jobs))
        << "trial " << trial;
  }
}

TEST(Lanes, RejectMismatchedLengths) {
  const std::vector<double> f = {1.0, 2.0};
  const std::vector<double> g = {3.0};
  EXPECT_THROW(flowshop2_makespan(f, g), std::invalid_argument);
  EXPECT_THROW(closed_form_makespan(f, g), std::invalid_argument);
}

TEST(Lanes, EmptyLanesAreZero) {
  const std::vector<double> none;
  EXPECT_DOUBLE_EQ(flowshop2_makespan(none, none), 0.0);
  EXPECT_DOUBLE_EQ(closed_form_makespan(none, none), 0.0);
}

TEST(TwoTypeFlowshop2, MatchesMaterializedSequenceBitwise) {
  util::Rng rng(31);
  for (int trial = 0; trial < 200; ++trial) {
    const double f_a = rng.uniform(0.0, 10.0);
    const double g_a = rng.uniform(0.0, 10.0);
    const double f_b = rng.uniform(0.0, 10.0);
    const double g_b = rng.uniform(0.0, 10.0);
    const int n_a = static_cast<int>(rng.uniform_int(0, 8));
    const int n_b = static_cast<int>(rng.uniform_int(0, 8));
    JobList jobs;
    for (int i = 0; i < n_a; ++i)
      jobs.push_back(Job{.id = i, .cut = 0, .f = f_a, .g = g_a});
    for (int i = 0; i < n_b; ++i)
      jobs.push_back(Job{.id = n_a + i, .cut = 1, .f = f_b, .g = g_b});
    EXPECT_EQ(two_type_flowshop2_makespan(f_a, g_a, n_a, f_b, g_b, n_b),
              flowshop2_makespan(jobs))
        << "trial " << trial << " n_a=" << n_a << " n_b=" << n_b;
  }
}

TEST(TwoTypeFlowshop2, NegativeAndZeroCountsAreEmptyRuns) {
  EXPECT_DOUBLE_EQ(two_type_flowshop2_makespan(1.0, 2.0, 0, 3.0, 4.0, 0), 0.0);
  EXPECT_DOUBLE_EQ(two_type_flowshop2_makespan(1.0, 2.0, -3, 3.0, 4.0, -1),
                   0.0);
  // One empty run: identical to the pure run of the other type.
  const JobList pure_b = make_jobs({{3, 4}, {3, 4}});
  EXPECT_EQ(two_type_flowshop2_makespan(9.0, 9.0, -2, 3.0, 4.0, 2),
            flowshop2_makespan(pure_b));
}

TEST(AverageBound, MatchesHandComputation) {
  const JobList jobs = make_jobs({{2, 8}, {4, 2}});
  // max(sum f, sum g)/n = max(6, 10)/2 = 5.
  EXPECT_DOUBLE_EQ(average_makespan_bound(jobs), 5.0);
  EXPECT_DOUBLE_EQ(average_makespan_bound(JobList{}), 0.0);
}

TEST(AverageBound, LowerBoundsPerJobMakespan) {
  util::Rng rng(17);
  for (int trial = 0; trial < 100; ++trial) {
    JobList jobs;
    const int n = static_cast<int>(rng.uniform_int(1, 15));
    for (int i = 0; i < n; ++i)
      jobs.push_back(Job{.id = i,
                         .cut = -1,
                         .f = rng.uniform(0.0, 10.0),
                         .g = rng.uniform(0.0, 10.0)});
    const JohnsonSchedule s = johnson_order(jobs);
    const double makespan = flowshop2_makespan(apply_order(jobs, s.order));
    EXPECT_LE(average_makespan_bound(jobs),
              makespan / static_cast<double>(n) + 1e-9);
  }
}

}  // namespace
}  // namespace jps::sched
