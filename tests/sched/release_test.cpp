#include "sched/release.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "sched/johnson.h"
#include "sched/makespan.h"
#include "util/rng.h"

namespace jps::sched {
namespace {

TimedJob make_timed(int id, double f, double g, double release) {
  return TimedJob{Job{.id = id, .cut = -1, .f = f, .g = g}, release};
}

TEST(Release, ZeroReleasesMatchPlainFlowshop) {
  util::Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(1, 10));
    std::vector<TimedJob> timed;
    JobList plain;
    for (int i = 0; i < n; ++i) {
      const double f = rng.uniform(0.0, 10.0);
      const double g = rng.uniform(0.0, 10.0);
      timed.push_back(make_timed(i, f, g, 0.0));
      plain.push_back(timed.back().job);
    }
    EXPECT_NEAR(flowshop2_makespan_released(timed), flowshop2_makespan(plain),
                1e-12);
  }
}

TEST(Release, ComputationWaitsForRelease) {
  const std::vector<TimedJob> jobs{make_timed(0, 2, 3, 10.0)};
  const auto timeline = flowshop2_timeline_released(jobs);
  EXPECT_DOUBLE_EQ(timeline[0].comp_start, 10.0);
  EXPECT_DOUBLE_EQ(flowshop2_makespan_released(jobs), 15.0);
}

TEST(Release, PipelineAcrossArrivals) {
  // Frame every 5 ms; comp 4, comm 6: the link becomes the bottleneck.
  std::vector<TimedJob> jobs;
  for (int i = 0; i < 4; ++i)
    jobs.push_back(make_timed(i, 4, 6, 5.0 * i));
  const auto timeline = flowshop2_timeline_released(jobs);
  // comp: [0,4],[5,9],[10,14],[15,19]; comm chains: [4,10],[10,16],[16,22],[22,28].
  EXPECT_DOUBLE_EQ(timeline[3].comm_end, 28.0);
}

TEST(Release, JohnsonByReleaseOrdering) {
  std::vector<TimedJob> jobs{make_timed(0, 8, 1, 0.0), make_timed(1, 1, 9, 0.0),
                             make_timed(2, 5, 5, 7.0)};
  const auto order = johnson_by_release(jobs);
  // Equal releases 0: Johnson prefers job 1 (min(f1,g0)=1 <= min(f0,g1)=8).
  EXPECT_EQ(order, (std::vector<std::size_t>{1, 0, 2}));
}

TEST(Release, BatchedJohnsonGroupsWindows) {
  std::vector<TimedJob> jobs{
      make_timed(0, 8, 1, 0.0), make_timed(1, 1, 9, 1.0),
      make_timed(2, 9, 2, 20.0), make_timed(3, 2, 8, 21.0)};
  const auto order = batched_johnson(jobs, 10.0);
  // Window [0,10): Johnson -> 1 then 0.  Window [20,30): 3 then 2.
  EXPECT_EQ(order, (std::vector<std::size_t>{1, 0, 3, 2}));
  EXPECT_THROW(batched_johnson(jobs, 0.0), std::invalid_argument);
}

TEST(Release, PoliciesNearPermutationOptimum) {
  util::Rng rng(17);
  for (int trial = 0; trial < 60; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(2, 7));
    std::vector<TimedJob> jobs;
    for (int i = 0; i < n; ++i)
      jobs.push_back(make_timed(i, rng.uniform(0.0, 10.0),
                                rng.uniform(0.0, 10.0),
                                rng.uniform(0.0, 20.0)));
    const double best = best_permutation_makespan_released(jobs);

    auto eval = [&](const std::vector<std::size_t>& order) {
      std::vector<TimedJob> ordered;
      for (const std::size_t idx : order) ordered.push_back(jobs[idx]);
      return flowshop2_makespan_released(ordered);
    };
    const double stream = eval(johnson_by_release(jobs));
    const double batched = eval(batched_johnson(jobs, 10.0));
    EXPECT_GE(stream, best - 1e-9);
    EXPECT_GE(batched, best - 1e-9);
    // Online policies have no look-ahead, so only a coarse band holds on
    // adversarial random instances (worst observed ~1.4x).
    EXPECT_LE(std::min(stream, batched), 1.5 * best) << "trial " << trial;
  }
}

TEST(Release, BatchingHelpsWhenArrivalsCluster) {
  // Two bursts of mixed jobs: batching recovers Johnson's grouping inside
  // each burst, beating strict arrival order.
  std::vector<TimedJob> jobs;
  int id = 0;
  for (const double burst : {0.0, 100.0}) {
    for (int i = 0; i < 4; ++i) {
      // Alternate starting with a COMP-heavy job: strict arrival order then
      // fronts a long computation, which Johnson's grouping avoids.
      const bool comm_heavy = i % 2 == 1;
      jobs.push_back(make_timed(id++, comm_heavy ? 2.0 : 9.0,
                                comm_heavy ? 8.0 : 1.0,
                                burst + 0.1 * i));
    }
  }
  auto eval = [&](const std::vector<std::size_t>& order) {
    std::vector<TimedJob> ordered;
    for (const std::size_t idx : order) ordered.push_back(jobs[idx]);
    return flowshop2_makespan_released(ordered);
  };
  const double stream = eval(johnson_by_release(jobs));
  const double batched = eval(batched_johnson(jobs, 10.0));
  EXPECT_LT(batched, stream);
}

TEST(Release, EmptyInput) {
  EXPECT_DOUBLE_EQ(flowshop2_makespan_released({}), 0.0);
  EXPECT_DOUBLE_EQ(best_permutation_makespan_released({}), 0.0);
  EXPECT_TRUE(johnson_by_release({}).empty());
}

}  // namespace
}  // namespace jps::sched
