#include "sched/johnson.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "sched/bruteforce.h"
#include "sched/makespan.h"
#include "util/rng.h"

namespace jps::sched {
namespace {

JobList make_jobs(std::initializer_list<std::pair<double, double>> fg) {
  JobList jobs;
  int id = 0;
  for (const auto& [f, g] : fg)
    jobs.push_back(Job{.id = id++, .cut = -1, .f = f, .g = g});
  return jobs;
}

TEST(Johnson, SplitsIntoS1AndS2) {
  // f < g -> S1 (ascending f); f >= g -> S2 (descending g).
  const JobList jobs = make_jobs({{5, 1}, {1, 9}, {3, 4}, {8, 2}});
  const JohnsonSchedule s = johnson_order(jobs);
  EXPECT_EQ(s.comm_heavy_count, 2u);
  // S1: jobs 1 (f=1) then 2 (f=3); S2: job 3 (g=2) then 0 (g=1).
  EXPECT_EQ(s.order, (std::vector<std::size_t>{1, 2, 3, 0}));
}

TEST(Johnson, EqualStagesGoToS2) {
  const JobList jobs = make_jobs({{4, 4}});
  const JohnsonSchedule s = johnson_order(jobs);
  EXPECT_EQ(s.comm_heavy_count, 0u);
}

TEST(Johnson, DeterministicTieBreaking) {
  const JobList jobs = make_jobs({{2, 5}, {2, 5}, {2, 5}});
  const JohnsonSchedule s = johnson_order(jobs);
  EXPECT_EQ(s.order, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(Johnson, EmptyJobList) {
  const JobList jobs;
  const JohnsonSchedule s = johnson_order(jobs);
  EXPECT_TRUE(s.order.empty());
}

TEST(Johnson, RejectsNegativeStageLengths) {
  EXPECT_THROW(johnson_order(make_jobs({{-1, 2}})), std::invalid_argument);
  EXPECT_THROW(johnson_order(make_jobs({{1, -2}})), std::invalid_argument);
}

TEST(ApplyOrder, ReordersAndValidates) {
  const JobList jobs = make_jobs({{1, 2}, {3, 4}});
  const std::vector<std::size_t> order{1, 0};
  const JobList reordered = apply_order(jobs, order);
  EXPECT_EQ(reordered[0].id, 1);
  EXPECT_EQ(reordered[1].id, 0);
  EXPECT_THROW(apply_order(jobs, std::vector<std::size_t>{0}),
               std::invalid_argument);
  EXPECT_THROW(apply_order(jobs, std::vector<std::size_t>{0, 9}),
               std::out_of_range);
}

// Classical optimality: Johnson's order achieves the minimum 2-stage
// makespan over all permutations.  Property-tested on random job sets.
class JohnsonOptimality : public ::testing::TestWithParam<int> {};

TEST_P(JohnsonOptimality, MatchesPermutationBruteForce) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 30; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(1, 7));
    JobList jobs;
    for (int i = 0; i < n; ++i) {
      jobs.push_back(Job{.id = i,
                         .cut = -1,
                         .f = rng.uniform(0.0, 10.0),
                         .g = rng.uniform(0.0, 10.0)});
    }
    const JohnsonSchedule s = johnson_order(jobs);
    const double johnson_ms = flowshop2_makespan(apply_order(jobs, s.order));
    const double best_ms = best_permutation_makespan(jobs);
    EXPECT_NEAR(johnson_ms, best_ms, 1e-9)
        << "seed=" << GetParam() << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JohnsonOptimality, ::testing::Range(1, 6));

}  // namespace
}  // namespace jps::sched
