#include "sched/johnson3.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "sched/makespan.h"
#include "util/rng.h"

namespace jps::sched {
namespace {

Job make_job(int id, double f, double g, double cloud) {
  return Job{.id = id, .cut = -1, .f = f, .g = g, .cloud = cloud};
}

TEST(Johnson3, ConditionDetection) {
  // min f (4) >= max g (3): first dominance form.
  JobList a{make_job(0, 4, 3, 1), make_job(1, 5, 2, 1)};
  EXPECT_TRUE(johnson3_condition_holds(a));
  // min cloud (5) >= max g (4): second form.
  JobList b{make_job(0, 1, 4, 5), make_job(1, 2, 3, 6)};
  EXPECT_TRUE(johnson3_condition_holds(b));
  // Neither: middle machine not dominated.
  JobList c{make_job(0, 1, 9, 1), make_job(1, 2, 3, 1)};
  EXPECT_FALSE(johnson3_condition_holds(c));
  EXPECT_TRUE(johnson3_condition_holds(JobList{}));
}

TEST(Johnson3, OptimalUnderDominanceCondition) {
  // Randomized check of the classical optimality guarantee.
  util::Rng rng(5);
  int verified = 0;
  for (int trial = 0; trial < 400; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(2, 6));
    JobList jobs;
    for (int i = 0; i < n; ++i) {
      // Generate with g small so the dominance condition often holds.
      jobs.push_back(make_job(i, rng.uniform(3.0, 10.0), rng.uniform(0.0, 3.0),
                              rng.uniform(0.0, 10.0)));
    }
    if (!johnson3_condition_holds(jobs)) continue;
    ++verified;
    const JohnsonSchedule schedule = johnson3_order(jobs);
    const double ours = flowshop3_makespan(apply_order(jobs, schedule.order));
    const double best = best_permutation_makespan3(jobs);
    EXPECT_NEAR(ours, best, 1e-9) << "trial " << trial;
  }
  EXPECT_GT(verified, 100) << "dominance condition should hold often here";
}

TEST(Johnson3, HeuristicQualityWithoutCondition) {
  // Even without the guarantee, the surrogate order should sit close to the
  // permutation optimum (within 25% on random instances; the one-pass
  // CDS-style surrogate has no constant-factor guarantee).
  util::Rng rng(6);
  for (int trial = 0; trial < 100; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(2, 7));
    JobList jobs;
    for (int i = 0; i < n; ++i)
      jobs.push_back(make_job(i, rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0),
                              rng.uniform(0.0, 10.0)));
    const JohnsonSchedule schedule = johnson3_order(jobs);
    const double ours = flowshop3_makespan(apply_order(jobs, schedule.order));
    const double best = best_permutation_makespan3(jobs);
    EXPECT_LE(ours, 1.25 * best) << "trial " << trial;
    EXPECT_GE(ours, best - 1e-9);
  }
}

TEST(Johnson3, ZeroCloudCollapsesToTwoStageMakespan) {
  // With cloud == 0, the 3-stage recurrence reduces to the 2-stage one for
  // any fixed order (the surrogate ORDER may differ from 2-machine
  // Johnson's, so only the recurrence identity is asserted here).
  util::Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(2, 7));
    JobList jobs;
    for (int i = 0; i < n; ++i)
      jobs.push_back(make_job(i, rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0),
                              0.0));
    const JohnsonSchedule s3 = johnson3_order(jobs);
    const JobList ordered = apply_order(jobs, s3.order);
    EXPECT_NEAR(flowshop3_makespan(ordered), flowshop2_makespan(ordered), 1e-9);
  }
}

TEST(Johnson3, PermutationBaselineGuards) {
  EXPECT_THROW((void)best_permutation_makespan3(JobList(11)), std::invalid_argument);
  EXPECT_DOUBLE_EQ(best_permutation_makespan3(JobList{}), 0.0);
}

}  // namespace
}  // namespace jps::sched
