// Degenerate and failure-injection cases across the stack.
#include <gtest/gtest.h>

#include "core/planner.h"
#include "dnn/layer.h"
#include "models/zoo.h"
#include "net/channel.h"
#include "partition/binary_search.h"
#include "partition/profile_curve.h"
#include "profile/device.h"
#include "profile/latency_model.h"
#include "sim/executor.h"

namespace jps {
namespace {

using dnn::Graph;
using dnn::NodeId;
using dnn::TensorShape;

TEST(EdgeCases, InputOnlyGraph) {
  // A graph that is just the input node: the only cut is simultaneously
  // cloud-only and local-only (f = 0, and g = 0 because cutting at the sink
  // offloads nothing).
  Graph g("input_only");
  (void)g.add(dnn::input(TensorShape::chw(1, 4, 4)));
  g.infer();
  const profile::LatencyModel mobile(profile::DeviceProfile::raspberry_pi_4b());
  const auto curve =
      partition::ProfileCurve::build(g, mobile, net::Channel(1.0));
  ASSERT_EQ(curve.size(), 1u);
  EXPECT_DOUBLE_EQ(curve.f(0), 0.0);
  EXPECT_DOUBLE_EQ(curve.g(0), 0.0);
  const auto decision = partition::binary_search_cut(curve);
  EXPECT_EQ(decision.l_star, 0u);
  const core::Planner planner(curve);
  EXPECT_DOUBLE_EQ(planner.plan(core::Strategy::kJPS, 3).predicted_makespan,
                   0.0);
}

TEST(EdgeCases, TwoNodeGraphPlansAndSimulates) {
  Graph g("tiny");
  NodeId x = g.add(dnn::input(TensorShape::chw(1, 8, 8)));
  (void)g.add(dnn::conv2d(2, 3, 1, 1), {x});
  g.infer();
  const profile::LatencyModel mobile(profile::DeviceProfile::raspberry_pi_4b());
  const profile::LatencyModel cloud(profile::DeviceProfile::cloud_gtx1080());
  const net::Channel channel(10.0);
  const auto curve = partition::ProfileCurve::build(g, mobile, channel);
  EXPECT_EQ(curve.size(), 2u);  // CO and LO
  const core::Planner planner(curve);
  for (const core::Strategy s :
       {core::Strategy::kLocalOnly, core::Strategy::kCloudOnly,
        core::Strategy::kJPS, core::Strategy::kJPSHull,
        core::Strategy::kBruteForce}) {
    const core::ExecutionPlan plan = planner.plan(s, 4);
    util::Rng rng(1);
    sim::SimOptions opt;
    opt.include_cloud = false;
    const sim::SimResult result =
        sim::simulate_plan(g, curve, plan, mobile, cloud, channel, opt, rng);
    EXPECT_NEAR(result.makespan, plan.predicted_makespan,
                1e-6 * plan.predicted_makespan + 1e-9)
        << core::strategy_name(s);
  }
}

TEST(EdgeCases, ExtremeBandwidthsKeepInvariants) {
  dnn::Graph g = models::alexnet();
  g.infer();
  const profile::LatencyModel mobile(profile::DeviceProfile::raspberry_pi_4b());
  for (const double mbps : {1e-3, 1e6}) {
    const auto curve =
        partition::ProfileCurve::build(g, mobile, net::Channel(mbps));
    EXPECT_TRUE(curve.is_monotone());
    const core::Planner planner(curve);
    const double jps =
        planner.plan(core::Strategy::kJPSHull, 10).predicted_makespan;
    const double lo =
        planner.plan(core::Strategy::kLocalOnly, 10).predicted_makespan;
    const double co =
        planner.plan(core::Strategy::kCloudOnly, 10).predicted_makespan;
    EXPECT_LE(jps, std::min(lo, co) + 1e-6) << mbps;
    // Dial-up: local-only wins outright.  Backbone: cloud-only wins.
    if (mbps < 1.0) {
      EXPECT_NEAR(jps, lo, 1e-6 * lo);
    } else {
      EXPECT_LE(jps, 1.2 * co);
    }
  }
}

TEST(EdgeCases, HugeNoiseStillProducesValidTimelines) {
  dnn::Graph g = models::alexnet();
  g.infer();
  const profile::LatencyModel mobile(profile::DeviceProfile::raspberry_pi_4b());
  const profile::LatencyModel cloud(profile::DeviceProfile::cloud_gtx1080());
  const net::Channel channel(5.85);
  const auto curve = partition::ProfileCurve::build(g, mobile, channel);
  const core::Planner planner(curve);
  const core::ExecutionPlan plan = planner.plan(core::Strategy::kJPS, 6);
  sim::SimOptions opt;
  opt.comp_noise_sigma = 1.0;  // wild: ~e^{±1} multipliers
  opt.comm_noise_sigma = 1.0;
  util::Rng rng(9);
  const sim::SimResult result =
      sim::simulate_plan(g, curve, plan, mobile, cloud, channel, opt, rng);
  EXPECT_GT(result.makespan, 0.0);
  double prev_comp = 0.0;
  for (const auto& job : result.jobs) {
    EXPECT_GE(job.comp_start, prev_comp - 1e-9);
    EXPECT_LE(job.comp_start, job.comp_end);
    prev_comp = job.comp_end;
  }
}

}  // namespace
}  // namespace jps
