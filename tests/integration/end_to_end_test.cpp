// Full-system flows: profile -> lookup table on disk -> regression-trained
// channel model -> plan -> simulate, exactly the deployment path of §6.1.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/planner.h"
#include "models/registry.h"
#include "net/channel.h"
#include "partition/general_dag.h"
#include "profile/comm_regression.h"
#include "profile/device.h"
#include "profile/lookup_table.h"
#include "profile/profiler.h"
#include "sim/executor.h"

namespace jps {
namespace {

TEST(EndToEnd, DeploymentPipelineFromProfilingToSimulation) {
  // 1. Profile every paper model on the "device" and persist the table.
  const std::string table_path = ::testing::TempDir() + "/jps_e2e_table.tsv";
  {
    profile::ProfilerOptions opt;
    opt.noise_sigma = 0.03;
    opt.trials = 9;
    const profile::Profiler profiler(profile::DeviceProfile::raspberry_pi_4b(),
                                     opt);
    util::Rng rng(2024);
    profile::LookupTable table;
    for (const auto& name : models::paper_eval_names()) {
      const dnn::Graph g = models::build(name);
      table.add_graph(g, profiler.measure_graph(g, rng));
    }
    table.save(table_path);
  }

  // 2. Scheduler start-up: load the table, train the comm regression.
  const profile::LookupTable table = profile::LookupTable::load(table_path);
  const net::Channel channel = net::Channel::preset_4g();
  util::Rng rng(7);
  const profile::CommRegression comm = profile::CommRegression::train_on_channel(
      channel, 1024, 8u * 1024 * 1024, 24, 0.05, rng);

  // 3. Plan with estimated costs, then 4. execute on the "real" testbed
  // (exact latency model + channel) and check the estimate holds up.
  const profile::LatencyModel mobile(profile::DeviceProfile::raspberry_pi_4b());
  const profile::LatencyModel cloud(profile::DeviceProfile::cloud_gtx1080());
  for (const auto& name : models::paper_eval_names()) {
    const dnn::Graph g = models::build(name);
    ASSERT_TRUE(table.covers(g)) << name;
    const auto estimated_curve = partition::ProfileCurve::build(
        g, [&](dnn::NodeId id) { return table.at(name, id); },
        [&](std::uint64_t bytes) {
          return comm.predict_ms(bytes, channel.bandwidth_mbps());
        });
    const core::Planner planner(estimated_curve);
    const core::ExecutionPlan plan = planner.plan(core::Strategy::kJPS, 25);

    util::Rng sim_rng(99);
    const sim::SimResult result = sim::simulate_plan(
        g, estimated_curve, plan, mobile, cloud, channel, {}, sim_rng);
    // Estimation error (profiling noise + regression) stays within 15%.
    EXPECT_NEAR(result.makespan, plan.predicted_makespan,
                0.15 * plan.predicted_makespan)
        << name;

    // And the plan still beats local-only when executed for real.
    const core::ExecutionPlan lo = planner.plan(core::Strategy::kLocalOnly, 25);
    util::Rng lo_rng(99);
    const sim::SimResult lo_result =
        sim::simulate_plan(g, estimated_curve, lo, mobile, cloud, channel, {},
                           lo_rng);
    EXPECT_LT(result.makespan, lo_result.makespan) << name;
  }
  std::remove(table_path.c_str());
}

TEST(EndToEnd, GeneralCurveImprovesOrMatchesTrunkCurveForGoogLeNet) {
  const dnn::Graph g = models::build("googlenet");
  const profile::LatencyModel mobile(profile::DeviceProfile::raspberry_pi_4b());
  const net::Channel channel = net::Channel::preset_4g();
  const auto mobile_fn = [&](dnn::NodeId id) {
    return mobile.node_time_ms(g, id);
  };
  const auto comm_fn = [&](std::uint64_t bytes) { return channel.time_ms(bytes); };

  const auto trunk = partition::ProfileCurve::build(g, mobile_fn, comm_fn);
  const auto general = partition::build_general_curve(g, mobile_fn, comm_fn);
  const core::Planner trunk_planner(trunk);
  const core::Planner general_planner(general);
  const double trunk_ms =
      trunk_planner.plan(core::Strategy::kJPSTuned, 50).predicted_makespan;
  const double general_ms =
      general_planner.plan(core::Strategy::kJPSTuned, 50).predicted_makespan;
  // Spread cuts only add options, so the general plan cannot be worse.
  EXPECT_LE(general_ms, trunk_ms + 1e-6);
}

TEST(EndToEnd, HeterogeneousDevicesShiftTheCut) {
  // A faster mobile device pushes the optimal cut deeper (more local work).
  const dnn::Graph g = models::build("alexnet");
  const net::Channel channel = net::Channel::preset_4g();
  const profile::LatencyModel slow(profile::DeviceProfile::raspberry_pi_4b());
  const profile::LatencyModel fast(profile::DeviceProfile::midrange_phone());
  const auto curve_slow = partition::ProfileCurve::build(g, slow, channel);
  const auto curve_fast = partition::ProfileCurve::build(g, fast, channel);
  const auto d_slow = partition::binary_search_cut(curve_slow);
  const auto d_fast = partition::binary_search_cut(curve_fast);
  EXPECT_GE(curve_fast.cut(d_fast.l_star).local_nodes.size(),
            curve_slow.cut(d_slow.l_star).local_nodes.size());
}

}  // namespace
}  // namespace jps
