// Worked examples taken directly from the paper's text and figures.
#include <gtest/gtest.h>

#include "core/planner.h"
#include "models/registry.h"
#include "net/channel.h"
#include "profile/device.h"
#include "profile/latency_model.h"
#include "sched/bruteforce.h"
#include "sched/johnson.h"
#include "sched/makespan.h"

namespace jps {
namespace {

// §1 / Fig. 2: two 3-layer DNNs, cuts after l1 (f=4, g=6) or l2 (f=7, g=2).
TEST(PaperFig2, MixedPartitionBeatsHomogeneous) {
  const std::vector<sched::CutOption> cuts{{4.0, 6.0}, {7.0, 2.0}};
  // Homogeneous cut after l1: both jobs (4,6) -> makespan 16.
  EXPECT_DOUBLE_EQ(sched::assignment_makespan(cuts, std::vector<int>{0, 0}),
                   16.0);
  // Homogeneous cut after l2: both jobs (7,2) -> makespan 16.
  EXPECT_DOUBLE_EQ(sched::assignment_makespan(cuts, std::vector<int>{1, 1}),
                   16.0);
  // Mixed: 13 (the paper's second case).
  EXPECT_DOUBLE_EQ(sched::assignment_makespan(cuts, std::vector<int>{0, 1}),
                   13.0);
  // And brute force agrees the mix is optimal.
  const sched::BruteForceResult bf = sched::bruteforce_exact(cuts, 2);
  EXPECT_DOUBLE_EQ(bf.makespan, 13.0);
}

// §3.2 / Fig. 4: per-layer profile of AlexNet.  (a) cloud compute is
// negligible; (b) f increases with depth while clustered g decreases.
TEST(PaperFig4, AlexNetProfileShapes) {
  const dnn::Graph g = models::build("alexnet");
  const profile::LatencyModel mobile(profile::DeviceProfile::raspberry_pi_4b());
  const profile::LatencyModel cloud(profile::DeviceProfile::cloud_gtx1080());
  // (a) cloud compute negligible vs mobile compute per layer set.
  EXPECT_LT(cloud.graph_time_ms(g), 0.05 * mobile.graph_time_ms(g));

  // (b) on the clustered curve, f strictly increases and g strictly
  // decreases across offloading cuts.
  const auto curve =
      partition::ProfileCurve::build(g, mobile, net::Channel::preset_wifi());
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GT(curve.f(i), curve.f(i - 1));
    EXPECT_LT(curve.g(i), curve.g(i - 1));
  }
}

// §6.3 / Fig. 12 & Table 1 shape: JPS dominates, PO in between, CO collapses
// on 3G and becomes competitive on Wi-Fi.
TEST(PaperFig12, StrategyOrderingAcrossBandwidths) {
  const profile::LatencyModel mobile(profile::DeviceProfile::raspberry_pi_4b());
  for (const auto& model : models::paper_eval_names()) {
    const dnn::Graph g = models::build(model);
    double prev_gain = -1.0;
    for (const double bw : {1.1, 5.85, 18.88}) {
      const auto curve =
          partition::ProfileCurve::build(g, mobile, net::Channel(bw));
      const core::Planner planner(curve);
      const double lo =
          planner.plan(core::Strategy::kLocalOnly, 100).predicted_makespan;
      const double co =
          planner.plan(core::Strategy::kCloudOnly, 100).predicted_makespan;
      const double po =
          planner.plan(core::Strategy::kPartitionOnly, 100).predicted_makespan;
      const double jps =
          planner.plan(core::Strategy::kJPSTuned, 100).predicted_makespan;
      EXPECT_LE(jps, po + 1e-6) << model << " " << bw;
      EXPECT_LE(po, lo + 1e-6) << model << " " << bw;
      if (bw < 2.0) {
        // 3G: cloud-only is far worse than local-only ("more than 4,000 ms").
        EXPECT_GT(co, 2.0 * lo) << model;
      }
      // The JPS gain over LO grows with bandwidth (§6.3).
      const double gain = 1.0 - jps / lo;
      EXPECT_GE(gain, prev_gain - 0.02) << model << " " << bw;
      prev_gain = gain;
    }
  }
}

// §6.3: at Wi-Fi rates, simply uploading everything is already decent; PO
// converges toward CO-like cuts and JPS still wins or ties.
TEST(PaperFig12, WifiCloudOnlyIsCompetitive) {
  const profile::LatencyModel mobile(profile::DeviceProfile::raspberry_pi_4b());
  const dnn::Graph g = models::build("googlenet");
  const auto curve =
      partition::ProfileCurve::build(g, mobile, net::Channel::preset_wifi());
  const core::Planner planner(curve);
  const double lo =
      planner.plan(core::Strategy::kLocalOnly, 100).predicted_makespan;
  const double co =
      planner.plan(core::Strategy::kCloudOnly, 100).predicted_makespan;
  EXPECT_LT(co, lo);  // offloading everything beats local at 18.88 Mbps
}

// §6.3 / Fig. 13: the benefit range — JPS speeds up AlexNet across
// [1, 20] Mbps (3G through Wi-Fi).
TEST(PaperFig13, BenefitRangeCoversPaperBandwidths) {
  const profile::LatencyModel mobile(profile::DeviceProfile::raspberry_pi_4b());
  const dnn::Graph g = models::build("alexnet");
  for (double bw = 1.0; bw <= 20.0; bw += 2.0) {
    const auto curve =
        partition::ProfileCurve::build(g, mobile, net::Channel(bw));
    const core::Planner planner(curve);
    const double lo =
        planner.plan(core::Strategy::kLocalOnly, 50).predicted_makespan;
    const double co =
        planner.plan(core::Strategy::kCloudOnly, 50).predicted_makespan;
    const double jps =
        planner.plan(core::Strategy::kJPSTuned, 50).predicted_makespan;
    EXPECT_LT(jps, std::min(lo, co)) << "bw=" << bw;
  }
}

// Table 1, structural row: PO gains nothing over LO for AlexNet at 3G (its
// single-job optimal cut is local-only), while JPS still gains by mixing.
TEST(PaperTable1, AlexNet3GPartitionOnlyGainsNothing) {
  const profile::LatencyModel mobile(profile::DeviceProfile::raspberry_pi_4b());
  const dnn::Graph g = models::build("alexnet");
  const auto curve =
      partition::ProfileCurve::build(g, mobile, net::Channel::preset_3g());
  const core::Planner planner(curve);
  const double lo =
      planner.plan(core::Strategy::kLocalOnly, 100).predicted_makespan;
  const double po =
      planner.plan(core::Strategy::kPartitionOnly, 100).predicted_makespan;
  const double jps =
      planner.plan(core::Strategy::kJPSTuned, 100).predicted_makespan;
  EXPECT_NEAR(po, lo, 1e-6);  // PO reduction ~ 0%
  EXPECT_LT(jps, 0.95 * lo);  // JPS reduction > 5%
}

}  // namespace
}  // namespace jps
