// Golden regression tests: pin the planner's actual decisions on the paper
// models at the paper bandwidths, so calibration or algorithm drift shows
// up as an explicit diff here rather than as silently shifted benchmarks.
// If a deliberate change moves these values, update them together with
// EXPERIMENTS.md.
#include <gtest/gtest.h>

#include "core/planner.h"
#include "models/registry.h"
#include "net/channel.h"
#include "profile/device.h"
#include "profile/latency_model.h"

namespace jps {
namespace {

struct Golden {
  const char* model;
  double mbps;
  std::size_t curve_size;
  std::size_t l_star;
  const char* l_star_label;
};

TEST(Golden, Alg2DecisionsOnPaperModels) {
  const Golden kGolden[] = {
      {"alexnet", 1.1, 7, 3, "n15:maxpool 3x3/2"},
      {"alexnet", 5.85, 7, 3, "n15:maxpool 3x3/2"},
      {"alexnet", 18.88, 7, 2, "n8:maxpool 3x3/2"},
      {"googlenet", 1.1, 6, 3, "n139:global_avg_pool"},
      {"googlenet", 5.85, 6, 1, "n39:maxpool 3x3/2 p1"},
      {"googlenet", 18.88, 6, 1, "n39:maxpool 3x3/2 p1"},
      {"mobilenet_v2", 1.1, 8, 4, "n119:conv 1x1/1 p0 x160"},
      {"mobilenet_v2", 5.85, 8, 3, "n58:conv 1x1/1 p0 x64"},
      {"mobilenet_v2", 18.88, 8, 2, "n32:conv 1x1/1 p0 x32"},
      {"resnet18", 1.1, 6, 3, "n58:add"},
      {"resnet18", 5.85, 6, 2, "n42:add"},
      {"resnet18", 18.88, 6, 1, "n26:add"},
  };
  const profile::LatencyModel mobile(profile::DeviceProfile::raspberry_pi_4b());
  for (const Golden& golden : kGolden) {
    const dnn::Graph g = models::build(golden.model);
    const auto curve =
        partition::ProfileCurve::build(g, mobile, net::Channel(golden.mbps));
    const core::Planner planner(curve);
    EXPECT_EQ(curve.size(), golden.curve_size)
        << golden.model << " @ " << golden.mbps;
    EXPECT_EQ(planner.decision().l_star, golden.l_star)
        << golden.model << " @ " << golden.mbps;
    EXPECT_EQ(curve.cut(planner.decision().l_star).label, golden.l_star_label)
        << golden.model << " @ " << golden.mbps;
  }
}

TEST(Golden, ReductionRatiosStayInBand) {
  // Table 1's JPS-vs-LO reductions, pinned to ±5 percentage points.
  const struct {
    const char* model;
    double mbps;
    double reduction;  // fraction
  } kGolden[] = {
      {"alexnet", 1.1, 0.31},      {"alexnet", 5.85, 0.64},
      {"googlenet", 1.1, 0.09},    {"googlenet", 5.85, 0.51},
      {"mobilenet_v2", 1.1, 0.40}, {"mobilenet_v2", 5.85, 0.72},
      {"resnet18", 1.1, 0.17},     {"resnet18", 5.85, 0.53},
  };
  const profile::LatencyModel mobile(profile::DeviceProfile::raspberry_pi_4b());
  for (const auto& golden : kGolden) {
    const dnn::Graph g = models::build(golden.model);
    const auto curve =
        partition::ProfileCurve::build(g, mobile, net::Channel(golden.mbps));
    const core::Planner planner(curve);
    const double lo =
        planner.plan(core::Strategy::kLocalOnly, 100).predicted_makespan;
    const double jps =
        planner.plan(core::Strategy::kJPS, 100).predicted_makespan;
    EXPECT_NEAR(1.0 - jps / lo, golden.reduction, 0.05)
        << golden.model << " @ " << golden.mbps;
  }
}

}  // namespace
}  // namespace jps
