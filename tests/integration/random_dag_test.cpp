// Randomized structural property tests: generate random series-parallel
// DNN DAGs and check the graph analysis + partition machinery invariants
// the theory relies on.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/planner.h"
#include "dnn/layer.h"
#include "net/channel.h"
#include "partition/binary_search.h"
#include "partition/general_dag.h"
#include "partition/profile_curve.h"
#include "profile/device.h"
#include "profile/latency_model.h"
#include "util/rng.h"

namespace jps {
namespace {

using dnn::Graph;
using dnn::NodeId;
using dnn::TensorShape;

// Random series-parallel network: a chain of segments, each either a single
// conv block or a 2-4 way branch of short conv chains joined by a concat.
// Channel counts are kept modest so inference stays cheap.
Graph random_series_parallel(util::Rng& rng) {
  Graph g("random_sp");
  NodeId x = g.add(dnn::input(TensorShape::chw(3, 64, 64)));
  std::int64_t channels = 8;
  x = g.add(dnn::conv2d(channels, 3, 1, 1), {x});

  const int segments = static_cast<int>(rng.uniform_int(2, 6));
  int expected_branch_products = 1;
  for (int s = 0; s < segments; ++s) {
    if (rng.chance(0.5)) {
      // Plain segment: conv(+pool).
      x = g.add(dnn::conv2d(channels, 3, 1, 1), {x});
      x = g.add(dnn::activation(dnn::ActivationKind::kReLU), {x});
    } else {
      // Branched segment.
      const int branches = static_cast<int>(rng.uniform_int(2, 4));
      expected_branch_products *= branches;
      std::vector<NodeId> heads;
      for (int b = 0; b < branches; ++b) {
        NodeId y = g.add(dnn::conv2d(4, 1), {x});
        const int extra = static_cast<int>(rng.uniform_int(0, 2));
        for (int e = 0; e < extra; ++e)
          y = g.add(dnn::conv2d(4, 3, 1, 1), {y});
        heads.push_back(y);
      }
      x = g.add(dnn::concat(), {heads});
      channels = 4 * branches;
    }
  }
  x = g.add(dnn::global_avg_pool(), {x});
  x = g.add(dnn::flatten(), {x});
  (void)g.add(dnn::dense(10), {x});
  g.infer();
  // Stash the expected path count through the label of node 0? Not needed:
  // recompute in the tests from the structure.
  (void)expected_branch_products;
  return g;
}

class RandomDagSeeds : public ::testing::TestWithParam<int> {};

TEST_P(RandomDagSeeds, ArticulationNodesAreOnEveryPath) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 101);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = random_series_parallel(rng);
    const auto trunk = g.articulation_nodes();
    ASSERT_GE(trunk.size(), 2u);
    EXPECT_EQ(trunk.front(), g.source());
    EXPECT_EQ(trunk.back(), g.sink());
    if (g.path_count() <= 512) {
      const auto paths = g.enumerate_paths(512);
      EXPECT_EQ(paths.size(), g.path_count());
      for (const NodeId a : trunk) {
        for (const auto& path : paths) {
          EXPECT_NE(std::find(path.begin(), path.end(), a), path.end())
              << "articulation node " << a << " missing from a path";
        }
      }
      // And conversely: any node on EVERY path must be in the trunk.
      for (NodeId v = 0; v < g.size(); ++v) {
        bool on_all = true;
        for (const auto& path : paths)
          on_all &= std::find(path.begin(), path.end(), v) != path.end();
        const bool in_trunk =
            std::find(trunk.begin(), trunk.end(), v) != trunk.end();
        EXPECT_EQ(on_all, in_trunk) << "node " << v;
      }
    }
  }
}

TEST_P(RandomDagSeeds, CurvesAreMonotoneAndSearchable) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 211);
  const profile::LatencyModel mobile(profile::DeviceProfile::raspberry_pi_4b());
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = random_series_parallel(rng);
    for (const double mbps : {1.0, 10.0, 100.0}) {
      const auto curve =
          partition::ProfileCurve::build(g, mobile, net::Channel(mbps));
      ASSERT_GE(curve.size(), 2u);
      EXPECT_TRUE(curve.is_monotone());
      EXPECT_DOUBLE_EQ(curve.f(0), 0.0);
      EXPECT_DOUBLE_EQ(curve.g(curve.local_only_index()), 0.0);
      const auto decision = partition::binary_search_cut(curve);
      EXPECT_GE(curve.f(decision.l_star), curve.g(decision.l_star));
    }
  }
}

TEST_P(RandomDagSeeds, SegmentsPartitionTheInterior) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 307);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = random_series_parallel(rng);
    const auto segments = partition::decompose_segments(g);
    const auto trunk = g.articulation_nodes();
    ASSERT_EQ(segments.size(), trunk.size() - 1);
    // Every non-trunk node appears in exactly one segment's branches.
    std::set<NodeId> seen;
    for (const auto& seg : segments) {
      for (const auto& branch : seg.branches) {
        for (const NodeId v : branch) {
          EXPECT_TRUE(seen.insert(v).second) << "node " << v << " twice";
        }
      }
    }
    std::set<NodeId> trunk_set(trunk.begin(), trunk.end());
    for (NodeId v = 0; v < g.size(); ++v) {
      if (trunk_set.count(v)) {
        EXPECT_FALSE(seen.count(v));
      }
      // Complex (nested) segments legitimately report no branches, so a
      // non-trunk node may be absent from `seen`; never double-counted.
    }
  }
}

TEST_P(RandomDagSeeds, PlannerDominanceHolds) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 401);
  const profile::LatencyModel mobile(profile::DeviceProfile::raspberry_pi_4b());
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = random_series_parallel(rng);
    const auto curve =
        partition::ProfileCurve::build(g, mobile, net::Channel(8.0));
    const core::Planner planner(curve);
    const double lo =
        planner.plan(core::Strategy::kLocalOnly, 16).predicted_makespan;
    const double co =
        planner.plan(core::Strategy::kCloudOnly, 16).predicted_makespan;
    const double hull =
        planner.plan(core::Strategy::kJPSHull, 16).predicted_makespan;
    EXPECT_LE(hull, lo + 1e-6);
    EXPECT_LE(hull, co + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDagSeeds, ::testing::Range(1, 7));

}  // namespace
}  // namespace jps
