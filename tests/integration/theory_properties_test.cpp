// Property tests of the paper's theorems on randomized synthetic curves.
#include <gtest/gtest.h>

#include <cmath>

#include "core/planner.h"
#include "partition/binary_search.h"
#include "partition/continuous.h"
#include "partition/profile_curve.h"
#include "sched/bruteforce.h"
#include "util/rng.h"

namespace jps {
namespace {

using partition::CutPoint;
using partition::ProfileCurve;

// Random curve with the paper's §3.2 shape: f linear-ish increasing,
// g convex-ish exponentially decreasing.
ProfileCurve random_paper_shaped_curve(util::Rng& rng) {
  const int k = static_cast<int>(rng.uniform_int(4, 16));
  const double slope = rng.uniform(0.5, 4.0);
  const double scale = rng.uniform(20.0, 200.0);
  const double decay = rng.uniform(0.15, 0.9);
  std::vector<CutPoint> candidates;
  for (int i = 0; i < k; ++i) {
    CutPoint c;
    c.f = slope * static_cast<double>(i) * rng.uniform(0.9, 1.1);
    if (i == 0) c.f = 0.0;
    c.g = scale * std::exp(-decay * static_cast<double>(i));
    c.offload_bytes = 1 + static_cast<std::uint64_t>(c.g * 500.0);
    candidates.push_back(c);
  }
  CutPoint last;
  last.f = slope * static_cast<double>(k);
  last.g = 0.0;
  candidates.push_back(last);
  return ProfileCurve::from_candidates("random", std::move(candidates));
}

class TheoremSeeds : public ::testing::TestWithParam<int> {};

// Theorem 5.3 (+ ratio rule): the exactly-swept two-adjacent-type JPS
// matches the exact brute-force joint optimum on paper-shaped curves.
TEST_P(TheoremSeeds, JpsTunedMatchesExactBruteForce) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 1000);
  for (int trial = 0; trial < 20; ++trial) {
    const ProfileCurve curve = random_paper_shaped_curve(rng);
    const int n = static_cast<int>(rng.uniform_int(1, 8));
    const core::Planner planner(curve);
    const double tuned =
        planner.plan(core::Strategy::kJPSTuned, n).predicted_makespan;
    const double hull =
        planner.plan(core::Strategy::kJPSHull, n).predicted_makespan;
    const auto bf = sched::bruteforce_exact(curve.as_cut_options(), n);
    // Both JPS variants mix at most two cut types.  BF can still beat them
    // by exploiting Prop. 4.1's boundary terms with extra cut types, but
    // that advantage is O(1/n) (see
    // BruteforceTwoType.NearOptimalWithVanishingBoundaryGap).  The hull
    // pair is never worse than the index-adjacent pair asymptotically.
    EXPECT_LE(bf.makespan, tuned + 1e-9) << "seed trial " << trial;
    EXPECT_LE(bf.makespan, hull + 1e-9) << "seed trial " << trial;
    EXPECT_LE(hull,
              bf.makespan * (1.0 + 1.5 / static_cast<double>(n)) + 1e-9)
        << "seed " << GetParam() << " trial " << trial << " n=" << n;
  }
}

// Theorem 5.2: as the partition becomes effectively continuous (dense curve,
// many jobs), the single-cut JPS per-job makespan approaches the continuous
// relaxation's stage bound.
TEST_P(TheoremSeeds, ContinuousRelaxationIsTightForDenseCurves) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  // Dense ideal curve: 64 cuts, exact linear/exponential shapes.
  const int k = 64;
  const double slope = rng.uniform(0.5, 2.0);
  const double scale = rng.uniform(50.0, 150.0);
  const double decay = rng.uniform(0.05, 0.2);
  std::vector<CutPoint> candidates;
  for (int i = 0; i < k; ++i) {
    CutPoint c;
    c.f = (i == 0) ? 0.0 : slope * static_cast<double>(i);
    c.g = scale * std::exp(-decay * static_cast<double>(i));
    c.offload_bytes = 1000;
    candidates.push_back(c);
  }
  CutPoint last;
  last.f = slope * static_cast<double>(k);
  last.g = 0.0;
  candidates.push_back(last);
  const ProfileCurve curve =
      ProfileCurve::from_candidates("dense", std::move(candidates));

  const auto relax = partition::relax_continuous(curve);
  const core::Planner planner(curve);
  const int n = 200;
  const double per_job =
      planner.plan(core::Strategy::kJPSTuned, n).predicted_makespan /
      static_cast<double>(n);
  // Discrete per-job cost within 10% of the continuous bound (which is a
  // lower bound up to boundary terms).
  EXPECT_GE(per_job, relax.stage_ms * 0.9);
  EXPECT_LE(per_job, relax.stage_ms * 1.1 + 2.0 * slope);
}

// Alg. 2 invariant + Theorem 5.3 precondition: the chosen pair brackets the
// f/g crossing, so mixing the two types can always balance the stages.
TEST_P(TheoremSeeds, ChosenPairBracketsCrossing) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729);
  for (int trial = 0; trial < 30; ++trial) {
    const ProfileCurve curve = random_paper_shaped_curve(rng);
    const auto d = partition::binary_search_cut(curve);
    EXPECT_GE(curve.f(d.l_star), curve.g(d.l_star));
    if (d.l_minus) {
      EXPECT_LT(curve.f(*d.l_minus), curve.g(*d.l_minus));
      // Paper's exact-balance special case check: when f(l*) == g(l*), a
      // single cut type suffices and the ratio is 0.
      if (curve.f(d.l_star) == curve.g(d.l_star)) {
        EXPECT_EQ(d.ratio, 0);
      }
    }
  }
}

// Average-makespan equivalence (§4.2): for large n the per-job makespan of
// any plan approaches max(avg f, avg g).
TEST_P(TheoremSeeds, AverageMakespanFormulaAtScale) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337);
  const ProfileCurve curve = random_paper_shaped_curve(rng);
  const core::Planner planner(curve);
  const int n = 2000;
  const core::ExecutionPlan plan = planner.plan(core::Strategy::kJPS, n);
  const double bound = sched::average_makespan_bound(plan.scheduled_jobs);
  EXPECT_NEAR(plan.predicted_makespan / static_cast<double>(n), bound,
              0.01 * bound + 0.5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TheoremSeeds, ::testing::Range(1, 9));

}  // namespace
}  // namespace jps
