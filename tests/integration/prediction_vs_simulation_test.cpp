// The planner's flow-shop prediction vs the discrete-event execution, swept
// across every paper model, every strategy and every paper bandwidth.
#include <gtest/gtest.h>

#include <tuple>

#include "core/planner.h"
#include "models/registry.h"
#include "net/channel.h"
#include "profile/device.h"
#include "sim/executor.h"

namespace jps {
namespace {

using Param = std::tuple<std::string, double>;

class PredictionVsSimulation : public ::testing::TestWithParam<Param> {};

TEST_P(PredictionVsSimulation, TwoStageSimulationMatchesPrediction) {
  const auto& [model, mbps] = GetParam();
  const dnn::Graph g = models::build(model);
  const profile::LatencyModel mobile(profile::DeviceProfile::raspberry_pi_4b());
  const profile::LatencyModel cloud(profile::DeviceProfile::cloud_gtx1080());
  const net::Channel channel(mbps);
  const auto curve = partition::ProfileCurve::build(g, mobile, channel);
  const core::Planner planner(curve);

  for (const core::Strategy strategy :
       {core::Strategy::kLocalOnly, core::Strategy::kCloudOnly,
        core::Strategy::kPartitionOnly, core::Strategy::kJPS,
        core::Strategy::kJPSTuned, core::Strategy::kJPSHull}) {
    const core::ExecutionPlan plan = planner.plan(strategy, 10);
    sim::SimOptions options;
    options.include_cloud = false;
    util::Rng rng(1);
    const sim::SimResult result = sim::simulate_plan(
        g, curve, plan, mobile, cloud, channel, options, rng);
    EXPECT_NEAR(result.makespan, plan.predicted_makespan,
                1e-6 * plan.predicted_makespan + 1e-6)
        << model << " @ " << mbps << " " << core::strategy_name(strategy);
  }
}

TEST_P(PredictionVsSimulation, ThreeStageInflationStaysSmall) {
  const auto& [model, mbps] = GetParam();
  const dnn::Graph g = models::build(model);
  const profile::LatencyModel mobile(profile::DeviceProfile::raspberry_pi_4b());
  const profile::LatencyModel cloud(profile::DeviceProfile::cloud_gtx1080());
  const net::Channel channel(mbps);
  const auto curve = partition::ProfileCurve::build(g, mobile, channel);
  const core::Planner planner(curve);
  const core::ExecutionPlan plan = planner.plan(core::Strategy::kJPS, 10);
  util::Rng rng(2);
  const sim::SimResult result =
      sim::simulate_plan(g, curve, plan, mobile, cloud, channel, {}, rng);
  EXPECT_GE(result.makespan, plan.predicted_makespan - 1e-6);
  EXPECT_LE(result.makespan, 1.10 * plan.predicted_makespan)
      << model << " @ " << mbps;
}

INSTANTIATE_TEST_SUITE_P(
    PaperGrid, PredictionVsSimulation,
    ::testing::Combine(::testing::ValuesIn(models::paper_eval_names()),
                       ::testing::Values(1.1, 5.85, 18.88)),
    [](const ::testing::TestParamInfo<Param>& info) {
      return std::get<0>(info.param) + "_" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
    });

}  // namespace
}  // namespace jps
