#include "core/plan_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>

#include "core/planner.h"
#include "models/registry.h"
#include "net/channel.h"
#include "profile/device.h"
#include "profile/latency_model.h"
#include "sched/makespan.h"

namespace jps::core {
namespace {

ExecutionPlan sample_plan(Strategy strategy = Strategy::kJPS) {
  static const profile::LatencyModel mobile(
      profile::DeviceProfile::raspberry_pi_4b());
  const dnn::Graph g = models::build("alexnet");
  const auto curve =
      partition::ProfileCurve::build(g, mobile, net::Channel::preset_4g());
  const Planner planner(curve);
  return planner.plan(strategy, 9);
}

TEST(PlanIo, RoundTripPreservesEverything) {
  const ExecutionPlan plan = sample_plan();
  const ExecutionPlan parsed = deserialize_plan(serialize_plan(plan));
  EXPECT_EQ(parsed.model, plan.model);
  EXPECT_EQ(parsed.strategy, plan.strategy);
  EXPECT_EQ(parsed.comm_heavy_count, plan.comm_heavy_count);
  EXPECT_DOUBLE_EQ(parsed.predicted_makespan, plan.predicted_makespan);
  ASSERT_EQ(parsed.jobs.size(), plan.jobs.size());
  for (std::size_t i = 0; i < plan.jobs.size(); ++i) {
    EXPECT_EQ(parsed.jobs[i], plan.jobs[i]);
    EXPECT_DOUBLE_EQ(parsed.scheduled_jobs[i].f, plan.scheduled_jobs[i].f);
    EXPECT_DOUBLE_EQ(parsed.scheduled_jobs[i].g, plan.scheduled_jobs[i].g);
  }
  // The reloaded stage lengths still reproduce the recorded makespan.
  EXPECT_NEAR(sched::flowshop2_makespan(parsed.scheduled_jobs),
              parsed.predicted_makespan, 1e-9);
}

TEST(PlanIo, EveryStrategyNameRoundTrips) {
  for (const Strategy s :
       {Strategy::kLocalOnly, Strategy::kCloudOnly, Strategy::kPartitionOnly,
        Strategy::kJPS, Strategy::kJPSTuned, Strategy::kJPSHull}) {
    const ExecutionPlan plan = sample_plan(s);
    EXPECT_EQ(deserialize_plan(serialize_plan(plan)).strategy, s);
  }
}

TEST(PlanIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/jps_plan_test.txt";
  const ExecutionPlan plan = sample_plan();
  save_plan(plan, path);
  const ExecutionPlan loaded = load_plan(path);
  EXPECT_EQ(loaded.jobs.size(), plan.jobs.size());
  std::remove(path.c_str());
}

TEST(PlanIo, RejectsMalformedInput) {
  EXPECT_THROW(deserialize_plan("not a plan"), std::runtime_error);
  EXPECT_THROW(deserialize_plan("jps-plan v1\n"), std::runtime_error);
  EXPECT_THROW(
      deserialize_plan("jps-plan v1\nmodel m\nstrategy JPS\njob x y z w\n"),
      std::runtime_error);
  EXPECT_THROW(deserialize_plan(
                   "jps-plan v1\nmodel m\nstrategy NOPE\njob 0 0 1 2\n"),
               std::runtime_error);
  EXPECT_THROW(
      deserialize_plan("jps-plan v1\nmodel m\nstrategy JPS\nbogus 1\n"),
      std::runtime_error);
  EXPECT_THROW(load_plan("/nonexistent/plan.txt"), std::runtime_error);
}

}  // namespace
}  // namespace jps::core
