#include "core/robust.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/planner.h"
#include "models/registry.h"
#include "net/channel.h"
#include "profile/device.h"
#include "util/stats.h"

namespace jps::core {
namespace {

struct Testbed {
  dnn::Graph graph;
  profile::LatencyModel mobile;
  profile::LatencyModel cloud;
  net::Channel channel;
  partition::ProfileCurve curve;

  explicit Testbed(const std::string& model, double mbps = 5.85)
      : graph(models::build(model)),
        mobile(profile::DeviceProfile::raspberry_pi_4b()),
        cloud(profile::DeviceProfile::cloud_gtx1080()),
        channel(mbps),
        curve(partition::ProfileCurve::build(graph, mobile, channel)) {}
};

TEST(CvarTailMean, AlphaZeroIsPlainMean) {
  EXPECT_DOUBLE_EQ(cvar_tail_mean({1.0, 2.0, 3.0, 4.0}, 0.0), 2.5);
}

TEST(CvarTailMean, TailAveragesTheWorstSamples) {
  // alpha = 0.5 over 4 samples: the worst 2 => (4 + 3) / 2.
  EXPECT_DOUBLE_EQ(cvar_tail_mean({1.0, 4.0, 2.0, 3.0}, 0.5), 3.5);
  // alpha = 0.9 over 10 samples: the single worst.
  EXPECT_DOUBLE_EQ(
      cvar_tail_mean({1, 2, 3, 4, 5, 6, 7, 8, 9, 42}, 0.9), 42.0);
}

TEST(CvarTailMean, TailNeverEmpty) {
  EXPECT_DOUBLE_EQ(cvar_tail_mean({7.0}, 0.99), 7.0);
}

TEST(CvarTailMean, Validation) {
  EXPECT_THROW((void)cvar_tail_mean({}, 0.5), std::invalid_argument);
  EXPECT_THROW((void)cvar_tail_mean({1.0}, 1.0), std::invalid_argument);
  EXPECT_THROW((void)cvar_tail_mean({1.0}, -0.1), std::invalid_argument);
}

TEST(RobustPlanner, Validation) {
  const Testbed s("alexnet");
  EXPECT_THROW(RobustPlanner(s.curve, s.channel, {0.0, 10.0}),
               std::invalid_argument);  // lo <= 0
  EXPECT_THROW(RobustPlanner(s.curve, s.channel, {10.0, 5.0}),
               std::invalid_argument);  // hi < lo
  RobustPlannerOptions bad_samples;
  bad_samples.samples = 0;
  EXPECT_THROW(RobustPlanner(s.curve, s.channel, {2.0, 10.0}, bad_samples),
               std::invalid_argument);
  RobustPlannerOptions bad_alpha;
  bad_alpha.cvar_alpha = 1.0;
  EXPECT_THROW(RobustPlanner(s.curve, s.channel, {2.0, 10.0}, bad_alpha),
               std::invalid_argument);
  const RobustPlanner ok(s.curve, s.channel, {2.0, 10.0});
  EXPECT_THROW((void)ok.decide(0), std::invalid_argument);
}

TEST(RobustPlanner, GridSpansIntervalInclusive) {
  const Testbed s("alexnet");
  RobustPlannerOptions opt;
  opt.samples = 5;
  const RobustPlanner planner(s.curve, s.channel, {2.0, 10.0}, opt);
  const auto grid = planner.bandwidth_grid();
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_DOUBLE_EQ(grid.front(), 2.0);
  EXPECT_DOUBLE_EQ(grid.back(), 10.0);
  EXPECT_DOUBLE_EQ(grid[2], 6.0);

  RobustPlannerOptions single;
  single.samples = 1;
  const RobustPlanner mid(s.curve, s.channel, {2.0, 10.0}, single);
  ASSERT_EQ(mid.bandwidth_grid().size(), 1u);
  EXPECT_DOUBLE_EQ(mid.bandwidth_grid().front(), 6.0);
}

TEST(RobustPlanner, DecideIsDeterministic) {
  const Testbed s("resnet18");
  const RobustPlanner p1(s.curve, s.channel, {2.0, 10.0});
  const RobustPlanner p2(s.curve, s.channel, {2.0, 10.0});
  const RobustDecision d1 = p1.decide(20);
  const RobustDecision d2 = p2.decide(20);
  EXPECT_EQ(d1.cut_a, d2.cut_a);
  EXPECT_EQ(d1.cut_b, d2.cut_b);
  EXPECT_EQ(d1.n_a, d2.n_a);
  EXPECT_DOUBLE_EQ(d1.worst_case_ms, d2.worst_case_ms);
}

TEST(RobustPlanner, WorstCaseNoWorseThanStaticPlanOverTheInterval) {
  // The static JPS mix is itself a (pair, split) candidate, so minimizing
  // the max over the grid can only do at least as well.
  const Testbed s("alexnet");
  const BandwidthInterval interval{s.channel.bandwidth_mbps() * 0.25,
                                   s.channel.bandwidth_mbps() * 1.25};
  const int n = 24;
  const RobustPlanner robust(s.curve, s.channel, interval);
  const RobustDecision decision = robust.decide(n);

  const Planner planner(s.curve);
  const ExecutionPlan static_plan = planner.plan(Strategy::kJPSTuned, n);
  const auto static_ms = plan_makespans_over_interval(static_plan, s.curve,
                                                      s.channel, interval, 33);
  EXPECT_LE(decision.worst_case_ms, util::max(static_ms) + 1e-6);
  // And the static plan is optimal at the nominal point, so the robust
  // premium there is non-negative.
  EXPECT_GE(decision.nominal_ms,
            planner.plan(Strategy::kBruteForce, n).predicted_makespan - 1e-6);
  EXPECT_LE(decision.cvar_ms, decision.worst_case_ms + 1e-9);
}

TEST(RobustPlanner, DegenerateIntervalCollapsesToNominalOptimum) {
  const Testbed s("alexnet");
  const double mbps = s.channel.bandwidth_mbps();
  const RobustPlanner robust(s.curve, s.channel, {mbps, mbps});
  const RobustDecision d = robust.decide(12);
  EXPECT_DOUBLE_EQ(d.worst_case_ms, d.nominal_ms);
  EXPECT_DOUBLE_EQ(d.cvar_ms, d.nominal_ms);
  // At a single bandwidth the pair x split sweep covers every candidate the
  // tuned planner considers (and more), but less than full brute force:
  // the optimum lands between the two.
  const Planner planner(s.curve);
  EXPECT_LE(d.nominal_ms,
            planner.plan(Strategy::kJPSTuned, 12).predicted_makespan + 1e-6);
  EXPECT_GE(d.nominal_ms,
            planner.plan(Strategy::kBruteForce, 12).predicted_makespan - 1e-6);
}

TEST(RobustPlanner, PlanCarriesTheDecision) {
  const Testbed s("resnet18");
  const RobustPlanner robust(s.curve, s.channel, {2.0, 10.0});
  const RobustDecision d = robust.decide(15);
  const ExecutionPlan plan = robust.plan(15);
  EXPECT_EQ(plan.strategy, Strategy::kRobust);
  ASSERT_EQ(plan.jobs.size(), 15u);
  EXPECT_DOUBLE_EQ(plan.predicted_makespan, d.nominal_ms);
  int at_a = 0;
  for (const JobAssignment& j : plan.jobs) {
    EXPECT_TRUE(j.cut_index == d.cut_a || j.cut_index == d.cut_b);
    if (j.cut_index == d.cut_a) ++at_a;
  }
  if (d.cut_a != d.cut_b) {
    EXPECT_EQ(at_a, d.n_a);
  }
}

TEST(RobustPlanner, CvarObjectiveIsLessConservative) {
  const Testbed s("alexnet");
  const BandwidthInterval interval{1.5, 12.0};
  RobustPlannerOptions cvar;
  cvar.objective = RobustObjective::kCVaR;
  const RobustDecision worst =
      RobustPlanner(s.curve, s.channel, interval).decide(20);
  const RobustDecision risk =
      RobustPlanner(s.curve, s.channel, interval, cvar).decide(20);
  // The CVaR optimum cannot beat the min-max optimum on worst case, and the
  // min-max optimum cannot beat the CVaR optimum on CVaR.
  EXPECT_GE(risk.worst_case_ms, worst.worst_case_ms - 1e-9);
  EXPECT_GE(worst.cvar_ms, risk.cvar_ms - 1e-9);
}

TEST(PlanMakespansOverInterval, MonotoneInBandwidth) {
  const Testbed s("alexnet");
  const Planner planner(s.curve);
  const ExecutionPlan plan = planner.plan(Strategy::kJPS, 16);
  const auto ms =
      plan_makespans_over_interval(plan, s.curve, s.channel, {1.0, 19.0}, 19);
  ASSERT_EQ(ms.size(), 19u);
  // Faster uplink can only shrink every g, hence the makespan.
  for (std::size_t i = 1; i < ms.size(); ++i)
    EXPECT_LE(ms[i], ms[i - 1] + 1e-9);
  // The nominal point agrees with the plan's own prediction.
  const auto nominal = plan_makespans_over_interval(
      plan, s.curve, s.channel,
      {s.channel.bandwidth_mbps(), s.channel.bandwidth_mbps()}, 1);
  EXPECT_NEAR(nominal.front(), plan.predicted_makespan, 1e-6);
}

}  // namespace
}  // namespace jps::core
