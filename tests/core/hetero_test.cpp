#include "core/hetero.h"

#include "core/planner.h"

#include <gtest/gtest.h>

#include <functional>
#include <stdexcept>

#include "models/registry.h"
#include "net/channel.h"
#include "profile/device.h"
#include "profile/latency_model.h"
#include "sched/johnson.h"
#include "sched/makespan.h"
#include "util/rng.h"

namespace jps::core {
namespace {

partition::ProfileCurve curve_for(const std::string& model, double mbps) {
  static const profile::LatencyModel mobile(
      profile::DeviceProfile::raspberry_pi_4b());
  const dnn::Graph g = models::build(model);
  return partition::ProfileCurve::build(g, mobile, net::Channel(mbps));
}

std::vector<JobClass> mixed_workload(double mbps, int n1 = 6, int n2 = 10) {
  std::vector<JobClass> classes;
  classes.push_back({"resnet18", curve_for("resnet18", mbps), n1});
  classes.push_back({"mobilenet_v2", curve_for("mobilenet_v2", mbps), n2});
  return classes;
}

// Exhaustive baseline for tiny instances: every per-job cut combination,
// evaluated with Johnson + the flow-shop recurrence.
double exhaustive_best(const std::vector<JobClass>& classes) {
  std::vector<const partition::ProfileCurve*> job_curves;
  for (const JobClass& jc : classes)
    for (int j = 0; j < jc.count; ++j) job_curves.push_back(&jc.curve);

  double best = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> cuts(job_curves.size(), 0);
  const std::function<void(std::size_t)> recurse = [&](std::size_t pos) {
    if (pos == cuts.size()) {
      sched::JobList jobs;
      for (std::size_t i = 0; i < cuts.size(); ++i) {
        jobs.push_back(sched::Job{.id = static_cast<int>(i),
                                  .cut = static_cast<int>(cuts[i]),
                                  .f = job_curves[i]->f(cuts[i]),
                                  .g = job_curves[i]->g(cuts[i])});
      }
      const auto schedule = sched::johnson_order(jobs);
      best = std::min(
          best, sched::flowshop2_makespan(sched::apply_order(jobs, schedule.order)));
      return;
    }
    for (std::size_t c = 0; c < job_curves[pos]->size(); ++c) {
      cuts[pos] = c;
      recurse(pos + 1);
    }
  };
  recurse(0);
  return best;
}

TEST(Hetero, Validation) {
  EXPECT_THROW(plan_hetero({}, Strategy::kJPS), std::invalid_argument);
  std::vector<JobClass> bad = mixed_workload(5.85);
  bad[0].count = 0;
  EXPECT_THROW(plan_hetero(bad, Strategy::kJPS), std::invalid_argument);
  EXPECT_THROW(plan_hetero(mixed_workload(5.85), Strategy::kBruteForce),
               std::invalid_argument);
}

TEST(Hetero, UnitCountsAndIdentity) {
  const auto classes = mixed_workload(5.85, 3, 5);
  const HeteroPlan plan = plan_hetero(classes, Strategy::kJPS);
  ASSERT_EQ(plan.scheduled.size(), 8u);
  int per_class[2] = {0, 0};
  for (const HeteroUnit& unit : plan.scheduled) {
    ASSERT_GE(unit.class_index, 0);
    ASSERT_LT(unit.class_index, 2);
    ++per_class[unit.class_index];
    const auto& curve = classes[static_cast<std::size_t>(unit.class_index)].curve;
    EXPECT_DOUBLE_EQ(unit.f, curve.f(unit.cut_index));
    EXPECT_DOUBLE_EQ(unit.g, curve.g(unit.cut_index));
  }
  EXPECT_EQ(per_class[0], 3);
  EXPECT_EQ(per_class[1], 5);
}

TEST(Hetero, ScheduleIsJohnson) {
  const HeteroPlan plan = plan_hetero(mixed_workload(5.85), Strategy::kJPS);
  for (std::size_t i = 0; i < plan.comm_heavy_count; ++i) {
    EXPECT_LT(plan.scheduled[i].f, plan.scheduled[i].g);
    if (i > 0) {
      EXPECT_GE(plan.scheduled[i].f, plan.scheduled[i - 1].f);
    }
  }
  for (std::size_t i = plan.comm_heavy_count; i < plan.scheduled.size(); ++i) {
    EXPECT_GE(plan.scheduled[i].f, plan.scheduled[i].g);
    if (i > plan.comm_heavy_count) {
      EXPECT_LE(plan.scheduled[i].g, plan.scheduled[i - 1].g);
    }
  }
}

TEST(Hetero, JpsDominatesBaselines) {
  for (const double mbps : {1.1, 5.85, 18.88}) {
    const auto classes = mixed_workload(mbps);
    const double lo = plan_hetero(classes, Strategy::kLocalOnly).makespan;
    const double co = plan_hetero(classes, Strategy::kCloudOnly).makespan;
    const double po = plan_hetero(classes, Strategy::kPartitionOnly).makespan;
    const double jps = plan_hetero(classes, Strategy::kJPS).makespan;
    EXPECT_LE(jps, lo + 1e-6) << mbps;
    EXPECT_LE(jps, co + 1e-6) << mbps;
    EXPECT_LE(jps, po + 1e-6) << mbps;
  }
}

TEST(Hetero, NearExhaustiveOnTinyInstances) {
  // 2 classes x 2 jobs over small synthetic curves: compare against full
  // enumeration.  The lambda balance is two-type per class, so allow the
  // O(1/n) boundary slack.
  util::Rng rng(11);
  for (int trial = 0; trial < 15; ++trial) {
    auto make_curve = [&](int k) {
      std::vector<partition::CutPoint> cuts;
      double f = 0.0;
      double g = rng.uniform(10.0, 30.0);
      for (int i = 0; i < k; ++i) {
        partition::CutPoint c;
        c.f = f;
        c.g = g;
        c.offload_bytes = 100;
        cuts.push_back(c);
        f += rng.uniform(0.5, 6.0);
        g = std::max(0.0, g - rng.uniform(0.5, 9.0));
      }
      partition::CutPoint last;
      last.f = f;
      last.g = 0.0;
      cuts.push_back(last);
      return partition::ProfileCurve::from_candidates("synth", std::move(cuts));
    };
    std::vector<JobClass> classes;
    classes.push_back({"a", make_curve(3), 2});
    classes.push_back({"b", make_curve(4), 2});
    const double jps = plan_hetero(classes, Strategy::kJPS).makespan;
    const double best = exhaustive_best(classes);
    EXPECT_GE(jps, best - 1e-9) << trial;
    EXPECT_LE(jps, best * 1.40 + 1e-9) << trial;  // n=4 -> 1.5/n slack band
  }
}

TEST(Hetero, SingleClassMatchesHomogeneousPlanner) {
  // With one class the heterogeneous balance must do at least as well as
  // the paper's homogeneous JPS.
  for (const double mbps : {1.1, 5.85, 18.88}) {
    const auto curve = curve_for("alexnet", mbps);
    std::vector<JobClass> classes{{"alexnet", curve, 20}};
    const double hetero = plan_hetero(classes, Strategy::kJPS).makespan;
    const Planner planner(curve);
    const double homog =
        planner.plan(Strategy::kJPSHull, 20).predicted_makespan;
    EXPECT_LE(hetero, homog * 1.02 + 1e-6) << mbps;
  }
}

TEST(Hetero, MixedWorkloadBeatsPlanningClassesSeparately) {
  // Joint scheduling interleaves the classes' stages; planning each class
  // alone and concatenating cannot be better.
  const auto classes = mixed_workload(5.85, 8, 8);
  const double joint = plan_hetero(classes, Strategy::kJPS).makespan;
  double separate = 0.0;
  for (const JobClass& jc : classes) {
    std::vector<JobClass> solo{{jc.name, jc.curve, jc.count}};
    separate += plan_hetero(solo, Strategy::kJPS).makespan;
  }
  EXPECT_LE(joint, separate + 1e-6);
}

}  // namespace
}  // namespace jps::core
