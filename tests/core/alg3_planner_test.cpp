#include "core/alg3_planner.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <stdexcept>

#include "dnn/layer.h"
#include "net/channel.h"
#include "profile/device.h"
#include "profile/latency_model.h"

namespace jps::core {
namespace {

using dnn::Graph;
using dnn::NodeId;
using dnn::TensorShape;

// Two parallel conv chains joined by a concat — a clean 2-path DAG whose
// shared prefix (the input) is duplicated across paths.
Graph make_two_branch() {
  Graph g("two_branch");
  const NodeId in = g.add(dnn::input(TensorShape::chw(3, 64, 64)));
  NodeId a = g.add(dnn::conv2d(16, 3, 1, 1), {in});
  a = g.add(dnn::activation(dnn::ActivationKind::kReLU), {a});
  a = g.add(dnn::conv2d(16, 3, 2, 1), {a});
  NodeId b = g.add(dnn::conv2d(16, 5, 2, 2), {in});
  b = g.add(dnn::activation(dnn::ActivationKind::kReLU), {b});
  const NodeId join = g.add(dnn::concat(), {a, b});
  NodeId y = g.add(dnn::global_avg_pool(), {join});
  y = g.add(dnn::flatten(), {y});
  (void)g.add(dnn::dense(10), {y});
  g.infer();
  return g;
}

partition::NodeTimeFn mobile_fn(const Graph& g) {
  static const profile::LatencyModel model(
      profile::DeviceProfile::raspberry_pi_4b());
  return [&g](NodeId id) { return model.node_time_ms(g, id); };
}

partition::CommTimeFn comm_fn() {
  static const net::Channel channel = net::Channel::preset_4g();
  return [](std::uint64_t bytes) { return channel.time_ms(bytes); };
}

TEST(Alg3Planner, UnitCountIsJobsTimesPaths) {
  const Graph g = make_two_branch();
  const Alg3Plan plan = plan_alg3(g, mobile_fn(g), comm_fn(), 5);
  EXPECT_EQ(plan.paths_per_job, 2u);
  EXPECT_EQ(plan.units.size(), 10u);
}

TEST(Alg3Planner, DedupNeverExceedsNaiveDuplication) {
  const Graph g = make_two_branch();
  const Alg3Plan plan = plan_alg3(g, mobile_fn(g), comm_fn(), 8);
  EXPECT_LE(plan.makespan, plan.makespan_dup + 1e-9);
  EXPECT_GT(plan.makespan, 0.0);
}

TEST(Alg3Planner, SharedNodesChargedOncePerJob) {
  const Graph g = make_two_branch();
  const Alg3Plan plan = plan_alg3(g, mobile_fn(g), comm_fn(), 3);
  // Per job, the sum of actual f over its units must equal the cost of the
  // union of their local prefixes — i.e. no node is paid twice.
  const auto mobile = mobile_fn(g);
  for (int job = 0; job < 3; ++job) {
    double actual_sum = 0.0;
    std::set<NodeId> union_nodes;
    const auto cuts = partition::alg3_path_cuts(g, mobile, comm_fn());
    for (const auto& unit : plan.units) {
      if (unit.job_id != job) continue;
      actual_sum += unit.f_actual;
      for (const NodeId v : cuts[unit.path_index].local_nodes)
        union_nodes.insert(v);
    }
    double union_cost = 0.0;
    for (const NodeId v : union_nodes) union_cost += mobile(v);
    EXPECT_NEAR(actual_sum, union_cost, 1e-9) << "job " << job;
  }
}

TEST(Alg3Planner, IdenticalJobsGetIdenticalDupValues) {
  const Graph g = make_two_branch();
  const Alg3Plan plan = plan_alg3(g, mobile_fn(g), comm_fn(), 4);
  // Ordering values depend only on the path, not on the job.
  std::map<std::size_t, std::pair<double, double>> per_path;
  for (const auto& unit : plan.units) {
    const auto it = per_path.find(unit.path_index);
    if (it == per_path.end()) {
      per_path[unit.path_index] = {unit.f_dup, unit.g_dup};
    } else {
      EXPECT_DOUBLE_EQ(it->second.first, unit.f_dup);
      EXPECT_DOUBLE_EQ(it->second.second, unit.g_dup);
    }
  }
}

TEST(Alg3Planner, SingleJobStillValid) {
  const Graph g = make_two_branch();
  const Alg3Plan plan = plan_alg3(g, mobile_fn(g), comm_fn(), 1);
  EXPECT_EQ(plan.units.size(), plan.paths_per_job);
  EXPECT_GT(plan.makespan, 0.0);
}

TEST(Alg3Planner, Validation) {
  const Graph g = make_two_branch();
  EXPECT_THROW(plan_alg3(g, mobile_fn(g), comm_fn(), 0),
               std::invalid_argument);
  EXPECT_THROW(plan_alg3(g, mobile_fn(g), comm_fn(), 2, /*max_paths=*/1),
               std::runtime_error);
}

TEST(Alg3Planner, LineGraphDegeneratesToSinglePath) {
  Graph g("line");
  NodeId x = g.add(dnn::input(TensorShape::chw(3, 32, 32)));
  x = g.add(dnn::conv2d(8, 3, 1, 1), {x});
  x = g.add(dnn::activation(dnn::ActivationKind::kReLU), {x});
  x = g.add(dnn::pool2d(dnn::PoolKind::kMax, 2, 2), {x});
  g.infer();
  const Alg3Plan plan = plan_alg3(g, mobile_fn(g), comm_fn(), 6);
  EXPECT_EQ(plan.paths_per_job, 1u);
  // With one path there is nothing to deduplicate.
  EXPECT_NEAR(plan.makespan, plan.makespan_dup, 1e-9);
}

}  // namespace
}  // namespace jps::core
