#include "core/planner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <limits>
#include <set>
#include <stdexcept>

#include "models/registry.h"
#include "net/channel.h"
#include "profile/device.h"
#include "profile/latency_model.h"
#include "sched/johnson.h"
#include "sched/makespan.h"
#include "sim/event_sim.h"
#include "util/rng.h"

namespace jps::core {
namespace {

partition::ProfileCurve curve_for(const std::string& model, double mbps) {
  static const profile::LatencyModel mobile(
      profile::DeviceProfile::raspberry_pi_4b());
  const dnn::Graph g = models::build(model);
  return partition::ProfileCurve::build(g, mobile, net::Channel(mbps));
}

TEST(Planner, StrategyNames) {
  EXPECT_STREQ(strategy_name(Strategy::kLocalOnly), "LO");
  EXPECT_STREQ(strategy_name(Strategy::kCloudOnly), "CO");
  EXPECT_STREQ(strategy_name(Strategy::kPartitionOnly), "PO");
  EXPECT_STREQ(strategy_name(Strategy::kJPS), "JPS");
  EXPECT_STREQ(strategy_name(Strategy::kJPSTuned), "JPS*");
  EXPECT_STREQ(strategy_name(Strategy::kJPSHull), "JPS+");
  EXPECT_STREQ(strategy_name(Strategy::kBruteForce), "BF");
}

TEST(Planner, LocalOnlyUsesNoLink) {
  const Planner planner(curve_for("alexnet", 5.85));
  const ExecutionPlan plan = planner.plan(Strategy::kLocalOnly, 10);
  ASSERT_EQ(plan.jobs.size(), 10u);
  for (const auto& job : plan.scheduled_jobs) {
    EXPECT_DOUBLE_EQ(job.g, 0.0);
    EXPECT_GT(job.f, 0.0);
  }
  // Makespan = n * full local time.
  EXPECT_NEAR(plan.predicted_makespan, 10.0 * plan.scheduled_jobs[0].f, 1e-6);
}

TEST(Planner, CloudOnlyComputesNothingLocally) {
  const Planner planner(curve_for("alexnet", 5.85));
  const ExecutionPlan plan = planner.plan(Strategy::kCloudOnly, 10);
  for (const auto& job : plan.scheduled_jobs) {
    EXPECT_DOUBLE_EQ(job.f, 0.0);
    EXPECT_GT(job.g, 0.0);
  }
  EXPECT_NEAR(plan.predicted_makespan, 10.0 * plan.scheduled_jobs[0].g, 1e-6);
}

TEST(Planner, PartitionOnlyIsHomogeneousSingleJobOptimum) {
  const Planner planner(curve_for("alexnet", 5.85));
  const ExecutionPlan plan = planner.plan(Strategy::kPartitionOnly, 7);
  const std::size_t cut = planner.single_job_optimal_cut();
  for (const auto& job : plan.jobs) EXPECT_EQ(job.cut_index, cut);
  // The PO cut minimizes f+g over the curve.
  const auto& curve = planner.curve();
  for (std::size_t i = 0; i < curve.size(); ++i)
    EXPECT_LE(curve.f(cut) + curve.g(cut), curve.f(i) + curve.g(i) + 1e-9);
}

TEST(Planner, JpsUsesAtMostTwoAdjacentCutTypes) {
  for (const auto& model : models::paper_eval_names()) {
    for (const double bw : {1.1, 5.85, 18.88}) {
      const Planner planner(curve_for(model, bw));
      const ExecutionPlan plan = planner.plan(Strategy::kJPS, 50);
      std::set<std::size_t> used;
      for (const auto& job : plan.jobs) used.insert(job.cut_index);
      EXPECT_LE(used.size(), 2u) << model << " " << bw;
      if (used.size() == 2) {
        EXPECT_EQ(*used.rbegin() - *used.begin(), 1u)
            << model << " " << bw << ": cut types must be adjacent";
      }
      // Every used cut is one of Alg. 2's pair (a huge ratio can legally
      // send all jobs to l*-1).
      const auto& d = planner.decision();
      for (const std::size_t cut : used) {
        EXPECT_TRUE(cut == d.l_star || (d.l_minus && cut == *d.l_minus))
            << model << " " << bw;
      }
    }
  }
}

TEST(Planner, DominanceJpsNeverWorseThanBaselines) {
  // The paper's headline claim, as an invariant: JPS* <= min(LO, CO, PO)
  // and JPS tracks JPS* closely.
  for (const auto& model : models::paper_eval_names()) {
    for (const double bw : {1.1, 5.85, 18.88}) {
      const Planner planner(curve_for(model, bw));
      const double lo = planner.plan(Strategy::kLocalOnly, 40).predicted_makespan;
      const double co = planner.plan(Strategy::kCloudOnly, 40).predicted_makespan;
      const double po =
          planner.plan(Strategy::kPartitionOnly, 40).predicted_makespan;
      const double jps = planner.plan(Strategy::kJPS, 40).predicted_makespan;
      const double tuned =
          planner.plan(Strategy::kJPSTuned, 40).predicted_makespan;
      EXPECT_LE(tuned, lo + 1e-6) << model << " " << bw;
      EXPECT_LE(tuned, co + 1e-6) << model << " " << bw;
      EXPECT_LE(tuned, po + 1e-6) << model << " " << bw;
      EXPECT_LE(tuned, jps + 1e-6) << model << " " << bw;
      EXPECT_LE(jps, 1.2 * tuned) << model << " " << bw;
    }
  }
}

TEST(Planner, JpsMatchesBruteForce) {
  // With the exact split sweep, the two-cut JPS should reach the BF optimum
  // on real curves (Fig. 11's finding).
  for (const auto& model : models::paper_eval_names()) {
    for (const double bw : {1.1, 5.85, 18.88}) {
      const Planner planner(curve_for(model, bw));
      const double bf = planner.plan(Strategy::kBruteForce, 12).predicted_makespan;
      const double tuned =
          planner.plan(Strategy::kJPSTuned, 12).predicted_makespan;
      const double hull =
          planner.plan(Strategy::kJPSHull, 12).predicted_makespan;
      EXPECT_LE(bf, tuned + 1e-9) << model << " " << bw;
      EXPECT_LE(bf, hull + 1e-9) << model << " " << bw;
      // The hull pair is the optimal two-type mix up to Prop. 4.1 boundary
      // terms, which are O(1/n): at n=12 allow 12.5%.
      EXPECT_LE(hull, bf * (1.0 + 1.5 / 12.0)) << model << " " << bw;
    }
  }
}

TEST(Planner, ScheduledOrderIsJohnson) {
  const Planner planner(curve_for("alexnet", 5.85));
  const ExecutionPlan plan = planner.plan(Strategy::kJPS, 30);
  // S1 (f < g) first, ascending f; then S2, descending g.
  for (std::size_t i = 0; i < plan.comm_heavy_count; ++i) {
    EXPECT_LT(plan.scheduled_jobs[i].f, plan.scheduled_jobs[i].g);
    if (i > 0) {
      EXPECT_GE(plan.scheduled_jobs[i].f, plan.scheduled_jobs[i - 1].f);
    }
  }
  for (std::size_t i = plan.comm_heavy_count; i < plan.scheduled_jobs.size();
       ++i) {
    EXPECT_GE(plan.scheduled_jobs[i].f, plan.scheduled_jobs[i].g);
    if (i > plan.comm_heavy_count) {
      EXPECT_LE(plan.scheduled_jobs[i].g, plan.scheduled_jobs[i - 1].g);
    }
  }
}

TEST(Planner, TimelineConsistentWithMakespan) {
  const Planner planner(curve_for("resnet18", 5.85));
  const ExecutionPlan plan = planner.plan(Strategy::kJPS, 15);
  const auto timeline = plan.timeline();
  double max_completion = 0.0;
  for (const auto& t : timeline)
    max_completion = std::max(max_completion, t.completion());
  EXPECT_NEAR(max_completion, plan.predicted_makespan, 1e-9);
  EXPECT_NEAR(plan.makespan_per_job(), plan.predicted_makespan / 15.0, 1e-9);
}

TEST(Planner, OverheadIsRecordedAndSmall) {
  const Planner planner(curve_for("alexnet", 5.85));
  const ExecutionPlan plan = planner.plan(Strategy::kJPS, 100);
  EXPECT_GE(plan.decision_overhead_ms, 0.0);
  // Fig. 12(d): planning overhead is negligible vs inference times (~ms).
  EXPECT_LT(plan.decision_overhead_ms, 50.0);
}

TEST(Planner, RejectsBadJobCounts) {
  const Planner planner(curve_for("alexnet", 5.85));
  EXPECT_THROW(planner.plan(Strategy::kJPS, 0), std::invalid_argument);
  EXPECT_THROW(planner.plan(Strategy::kJPS, -3), std::invalid_argument);
}

TEST(Planner, SingleJobPlansWork) {
  const Planner planner(curve_for("mobilenet_v2", 5.85));
  for (const Strategy s :
       {Strategy::kLocalOnly, Strategy::kCloudOnly, Strategy::kPartitionOnly,
        Strategy::kJPS, Strategy::kJPSTuned, Strategy::kJPSHull,
        Strategy::kBruteForce}) {
    const ExecutionPlan plan = planner.plan(s, 1);
    EXPECT_EQ(plan.jobs.size(), 1u);
    EXPECT_GT(plan.predicted_makespan, 0.0);
  }
}

// Reference evaluation of one split, replicating the pre-optimization
// best_split_plan inner loop: n_a jobs at cut a, the rest at cut b, Johnson
// order, sequential flow-shop recurrence.
double brute_split_makespan(const partition::ProfileCurve& curve,
                            std::size_t a, std::size_t b, int n_a, int n) {
  sched::JobList jobs;
  for (int i = 0; i < n; ++i) {
    const std::size_t cut = i < n_a ? a : b;
    jobs.push_back(sched::Job{.id = i,
                              .cut = static_cast<int>(cut),
                              .f = curve.f(cut),
                              .g = curve.g(cut)});
  }
  const sched::JohnsonSchedule schedule = sched::johnson_order(jobs);
  return sched::flowshop2_makespan(sched::apply_order(jobs, schedule.order));
}

// Random monotone curve: f strictly ascending from 0, g strictly descending
// to 0 — the shape clustering guarantees, with comm-heavy and comp-heavy
// cuts both present.
partition::ProfileCurve random_curve(util::Rng& rng, int k) {
  std::vector<double> fs{0.0};
  std::vector<double> gs;
  for (int i = 0; i < k - 1; ++i) {
    fs.push_back(rng.uniform(0.5, 100.0));
    gs.push_back(rng.uniform(0.5, 100.0));
  }
  std::sort(fs.begin(), fs.end());
  std::sort(gs.begin(), gs.end(), std::greater<>());
  gs.push_back(0.0);
  std::vector<partition::CutPoint> cuts(static_cast<std::size_t>(k));
  for (std::size_t i = 0; i < cuts.size(); ++i) {
    cuts[i].f = fs[i];
    cuts[i].g = gs[i];
    cuts[i].offload_bytes = i + 1 == cuts.size() ? 0 : 1000;
  }
  return partition::ProfileCurve::from_candidates("random", std::move(cuts));
}

TEST(Planner, TwoTypeMakespanMatchesFlowshopRecurrence) {
  util::Rng rng(17);
  for (int round = 0; round < 200; ++round) {
    const double f_a = rng.uniform(0.0, 20.0);
    const double f_b = f_a + rng.uniform(0.0, 20.0);
    const double g_b = rng.uniform(0.0, 20.0);
    const double g_a = g_b + rng.uniform(0.0, 20.0);
    const int n = static_cast<int>(rng.uniform_int(1, 40));
    const int n_a = static_cast<int>(rng.uniform_int(0, n));
    sched::JobList jobs;
    for (int i = 0; i < n; ++i) {
      jobs.push_back(sched::Job{.id = i,
                                .cut = i < n_a ? 0 : 1,
                                .f = i < n_a ? f_a : f_b,
                                .g = i < n_a ? g_a : g_b});
    }
    const double reference = sched::flowshop2_makespan(jobs);
    const double closed =
        two_type_makespan(f_a, g_a, f_b, g_b, n_a, n - n_a);
    EXPECT_NEAR(closed, reference, 1e-9 * std::max(1.0, reference))
        << "n=" << n << " n_a=" << n_a;
  }
}

TEST(Planner, TwoTypeMakespanIgnoresEmptyRuns) {
  // Regression: with n_a == 0 the a-run contributes nothing, so its f/g
  // values must not leak into the result.  Pre-fix, f_a = inf produced
  // 0 * inf = NaN inside the endpoint terms and std::max propagated the
  // -inf seed instead of the pure-b makespan.
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(two_type_makespan(inf, inf, 1.0, 1.0, 0, 3), 4.0);
  EXPECT_EQ(two_type_makespan(1.0, 1.0, inf, inf, 3, 0), 4.0);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(two_type_makespan(nan, nan, 2.0, 3.0, 0, 2), 2.0 + 2 * 3.0);
  EXPECT_EQ(two_type_makespan(2.0, 3.0, nan, nan, 2, 0), 2.0 + 2 * 3.0);
  // Both runs empty: an empty schedule takes no time.
  EXPECT_EQ(two_type_makespan(inf, inf, inf, inf, 0, 0), 0.0);
  EXPECT_EQ(two_type_makespan(5.0, 7.0, 11.0, 13.0, 0, 0), 0.0);
  // Negative counts behave like empty runs, not like negative work.
  EXPECT_EQ(two_type_makespan(inf, inf, 1.0, 1.0, -2, 3), 4.0);
  EXPECT_EQ(two_type_makespan(5.0, 7.0, 11.0, 13.0, -1, -1), 0.0);
}

TEST(Planner, TwoTypeMakespanExhaustiveSmallCounts) {
  // Every (n_a, n_b) in 0..6 x 0..6 against the exact two-run flowshop
  // recurrence.  Integer-valued stage times keep all sums exact in FP, so
  // the comparison is bitwise.
  const double grid[][4] = {
      {1.0, 4.0, 3.0, 2.0},  {0.0, 5.0, 2.0, 0.0},  {3.0, 3.0, 3.0, 3.0},
      {0.0, 0.0, 7.0, 1.0},  {2.0, 9.0, 6.0, 4.0},  {8.0, 1.0, 10.0, 0.0},
  };
  for (const auto& p : grid) {
    const double f_a = p[0], g_a = p[1], f_b = p[2], g_b = p[3];
    for (int n_a = 0; n_a <= 6; ++n_a) {
      for (int n_b = 0; n_b <= 6; ++n_b) {
        const double expected =
            sched::two_type_flowshop2_makespan(f_a, g_a, n_a, f_b, g_b, n_b);
        EXPECT_EQ(two_type_makespan(f_a, g_a, f_b, g_b, n_a, n_b), expected)
            << "f_a=" << f_a << " g_a=" << g_a << " f_b=" << f_b
            << " g_b=" << g_b << " n_a=" << n_a << " n_b=" << n_b;
      }
    }
  }
}

TEST(Planner, TwoTypeMakespanBatchHandlesEmptyRuns) {
  // The batched kernel shares the guard: empty runs contribute nothing,
  // and a fully empty schedule fills the output with zeros.
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<double> g_a = {inf, inf, inf};
  const std::vector<double> g_b = {1.0, 2.0, 3.0};
  std::vector<double> out(3, -1.0);
  two_type_makespan_batch(inf, g_a, 1.0, g_b, 0, 3, out);
  for (std::size_t s = 0; s < out.size(); ++s) {
    EXPECT_EQ(out[s], two_type_makespan(inf, inf, 1.0, g_b[s], 0, 3)) << s;
  }
  two_type_makespan_batch(inf, g_a, 1.0, g_b, 0, 0, out);
  for (const double ms : out) EXPECT_EQ(ms, 0.0);
}

TEST(Planner, IncrementalSplitSweepMatchesBruteSweepOnRandomCurves) {
  // The O(n) incremental sweep must pick exactly the split the former
  // O(n^2 log n) per-split finalize() sweep picked, and produce an
  // identical plan.
  util::Rng rng(23);
  for (int round = 0; round < 30; ++round) {
    const partition::ProfileCurve curve =
        random_curve(rng, 4 + static_cast<int>(rng.uniform_int(0, 20)));
    const Planner planner(curve);
    const int n = static_cast<int>(rng.uniform_int(1, 60));
    for (const Strategy strategy : {Strategy::kJPSTuned, Strategy::kJPSHull}) {
      // Recover the mixing pair the planner uses for this strategy.
      std::size_t a = 0;
      std::size_t b = 0;
      if (strategy == Strategy::kJPSTuned) {
        if (!planner.decision().l_minus) continue;
        a = *planner.decision().l_minus;
        b = planner.decision().l_star;
      } else {
        const std::vector<std::size_t> hull = planner.lower_hull_cuts();
        std::size_t pos = hull.size() - 1;
        for (std::size_t i = 0; i < hull.size(); ++i) {
          if (curve.f(hull[i]) >= curve.g(hull[i])) {
            pos = i;
            break;
          }
        }
        if (pos == 0) continue;
        a = hull[pos - 1];
        b = hull[pos];
      }

      int best_n_a = 0;
      double best_makespan = std::numeric_limits<double>::infinity();
      for (int n_a = 0; n_a <= n; ++n_a) {
        const double ms = brute_split_makespan(curve, a, b, n_a, n);
        if (ms < best_makespan) {
          best_makespan = ms;
          best_n_a = n_a;
        }
      }

      const ExecutionPlan plan = planner.plan(strategy, n);
      EXPECT_DOUBLE_EQ(plan.predicted_makespan, best_makespan)
          << strategy_name(strategy) << " round " << round << " n=" << n;
      const auto at_a = std::count_if(
          plan.jobs.begin(), plan.jobs.end(),
          [&](const JobAssignment& j) { return j.cut_index == a; });
      const auto at_b = std::count_if(
          plan.jobs.begin(), plan.jobs.end(),
          [&](const JobAssignment& j) { return j.cut_index == b; });
      EXPECT_EQ(at_a, best_n_a) << strategy_name(strategy) << " round "
                                << round << " n=" << n;
      EXPECT_EQ(at_a + at_b, n);
    }
  }
}

// Replay a plan's scheduled job sequence on the discrete-event simulator:
// per job a compute task on the mobile CPU then a transfer on the uplink,
// submitted in schedule order (FIFO resources reproduce the 2-stage
// permutation flow shop the planner optimizes over).
double simulated_plan_makespan(const ExecutionPlan& plan) {
  sim::EventSimulator sim;
  const sim::ResourceId cpu = sim.add_resource("mobile_cpu");
  const sim::ResourceId link = sim.add_resource("uplink");
  for (const sched::Job& job : plan.scheduled_jobs) {
    const sim::TaskId comp = sim.add_task(cpu, job.f, {});
    sim.add_task(link, job.g, {comp});
  }
  sim.run();
  return sim.makespan();
}

TEST(Planner, PredictedMakespanMatchesEventSimulatorOnRandomCurves) {
  // Differential check of every strategy against an oracle that shares no
  // code with the analytic makespan path: whatever split and order the
  // planner chose, actually executing it must take exactly the predicted
  // time.  This is the test shape that catches bugs like the closed-form
  // k-endpoint truncation (see sched::closed_form_makespan).
  util::Rng rng(29);
  for (int round = 0; round < 25; ++round) {
    const partition::ProfileCurve curve =
        random_curve(rng, 3 + static_cast<int>(rng.uniform_int(0, 12)));
    const Planner planner(curve);
    const int n = static_cast<int>(rng.uniform_int(1, 40));
    for (const Strategy strategy :
         {Strategy::kLocalOnly, Strategy::kCloudOnly, Strategy::kPartitionOnly,
          Strategy::kJPS, Strategy::kJPSTuned, Strategy::kJPSHull,
          Strategy::kBruteForce}) {
      const ExecutionPlan plan = planner.plan(strategy, n);
      const double simulated = simulated_plan_makespan(plan);
      EXPECT_NEAR(plan.predicted_makespan, simulated,
                  1e-9 * std::max(1.0, simulated))
          << strategy_name(strategy) << " round " << round << " n=" << n;
    }
  }
}

TEST(Planner, PredictedMakespanMatchesEventSimulatorOnRealCurves) {
  for (const auto& model : models::paper_eval_names()) {
    const Planner planner(curve_for(model, 5.85));
    for (const Strategy strategy :
         {Strategy::kJPS, Strategy::kJPSTuned, Strategy::kJPSHull}) {
      const ExecutionPlan plan = planner.plan(strategy, 24);
      const double simulated = simulated_plan_makespan(plan);
      EXPECT_NEAR(plan.predicted_makespan, simulated,
                  1e-9 * std::max(1.0, simulated))
          << model << " " << strategy_name(strategy);
    }
  }
}

TEST(Planner, BruteForceFallsBackToTwoTypeAtScale) {
  // n = 300 over a real curve exceeds the exact cap; the BF strategy must
  // silently fall back and still return a consistent plan.
  PlannerOptions options;
  options.bf_exact_cap = 1000;
  const Planner planner(curve_for("alexnet", 5.85), options);
  const ExecutionPlan plan = planner.plan(Strategy::kBruteForce, 300);
  EXPECT_EQ(plan.jobs.size(), 300u);
  const double tuned =
      planner.plan(Strategy::kJPSTuned, 300).predicted_makespan;
  EXPECT_LE(plan.predicted_makespan, tuned + 1e-6);
}

}  // namespace
}  // namespace jps::core
