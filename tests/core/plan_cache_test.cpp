#include "core/plan_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <vector>

#include "check/contracts.h"
#include "core/planner.h"
#include "models/registry.h"
#include "net/channel.h"
#include "profile/device.h"
#include "profile/latency_model.h"
#include "util/thread_pool.h"

namespace jps::core {
namespace {

partition::ProfileCurve build_alexnet_curve(double mbps) {
  static const dnn::Graph graph = models::build("alexnet");
  static const profile::LatencyModel mobile(
      profile::DeviceProfile::raspberry_pi_4b());
  return partition::ProfileCurve::build(graph, mobile, net::Channel(mbps));
}

TEST(PlanCache, CurveMissesThenHits) {
  PlanCache cache;
  std::atomic<int> builds{0};
  const CurveCacheKey key{"alexnet", "pi4b", 5.85};
  const auto build = [&] {
    builds.fetch_add(1);
    return build_alexnet_curve(5.85);
  };
  const auto first = cache.curve(key, build);
  const auto second = cache.curve(key, build);
  EXPECT_EQ(builds.load(), 1);
  EXPECT_EQ(first.get(), second.get());  // hits return the cached object
  const PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.curve_misses, 1u);
  EXPECT_EQ(stats.curve_hits, 1u);
  EXPECT_EQ(cache.curve_count(), 1u);
}

TEST(PlanCache, KeysRejectNonFiniteBandwidth) {
  // Regression: a NaN bandwidth would build a key unequal to itself —
  // every lookup misses and the entry is unreachable forever.  The key
  // constructors refuse instead of poisoning the table.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(CurveCacheKey("alexnet", "pi4b", nan),
               check::ContractViolation);
  EXPECT_THROW(CurveCacheKey("alexnet", "pi4b", inf),
               check::ContractViolation);
  EXPECT_THROW(CurveCacheKey("alexnet", "pi4b", -inf),
               check::ContractViolation);
  EXPECT_THROW(PlanCacheKey("alexnet", "pi4b", nan, Strategy::kJPS, 10),
               check::ContractViolation);
  EXPECT_THROW(PlanCacheKey("alexnet", "pi4b", inf, Strategy::kJPS, 10),
               check::ContractViolation);
}

TEST(PlanCache, KeysCanonicalizeNegativeZero) {
  // Regression: -0.0 == 0.0 but their bit patterns differ, so a hash built
  // from the bits would scatter equal keys across buckets.  Construction
  // canonicalizes the sign away.
  const CurveCacheKey negative{"alexnet", "pi4b", -0.0};
  const CurveCacheKey positive{"alexnet", "pi4b", 0.0};
  EXPECT_FALSE(std::signbit(negative.bandwidth_mbps));
  EXPECT_EQ(negative, positive);

  const PlanCacheKey plan_negative{"alexnet", "pi4b", -0.0, Strategy::kJPS, 4};
  EXPECT_FALSE(std::signbit(plan_negative.bandwidth_mbps));
  EXPECT_EQ(plan_negative,
            (PlanCacheKey{"alexnet", "pi4b", 0.0, Strategy::kJPS, 4}));

  // End to end: a -0.0 lookup must hash into and hit the +0.0 entry, not
  // rebuild it.
  PlanCache cache;
  std::atomic<int> builds{0};
  const auto build = [&] {
    builds.fetch_add(1);
    return build_alexnet_curve(5.85);
  };
  cache.curve({"alexnet", "pi4b", 0.0}, build);
  cache.curve({"alexnet", "pi4b", -0.0}, build);
  EXPECT_EQ(builds.load(), 1);
  EXPECT_EQ(cache.curve_count(), 1u);
}

TEST(PlanCache, DistinctKeysDoNotCollide) {
  PlanCache cache;
  const auto at_5 = cache.curve({"alexnet", "pi4b", 5.0},
                                [] { return build_alexnet_curve(5.0); });
  const auto at_10 = cache.curve({"alexnet", "pi4b", 10.0},
                                 [] { return build_alexnet_curve(10.0); });
  const auto other_device = cache.curve(
      {"alexnet", "jetson", 5.0}, [] { return build_alexnet_curve(5.0); });
  EXPECT_EQ(cache.curve_count(), 3u);
  EXPECT_NE(at_5.get(), at_10.get());
  EXPECT_NE(at_5.get(), other_device.get());
  // Same bandwidth, different device: independent entries, equal contents.
  EXPECT_EQ(at_5->size(), other_device->size());
}

TEST(PlanCache, PlanKeyIncludesStrategyAndJobCount) {
  PlanCache cache;
  const auto curve = cache.curve({"alexnet", "pi4b", 5.85},
                                 [] { return build_alexnet_curve(5.85); });
  const auto plan_for = [&](Strategy s, int n) {
    return cache.plan({"alexnet", "pi4b", 5.85, s, n},
                      [&] { return Planner(*curve).plan(s, n); });
  };
  const auto jps_10 = plan_for(Strategy::kJPS, 10);
  const auto jps_10_again = plan_for(Strategy::kJPS, 10);
  const auto jps_20 = plan_for(Strategy::kJPS, 20);
  const auto lo_10 = plan_for(Strategy::kLocalOnly, 10);
  EXPECT_EQ(jps_10.get(), jps_10_again.get());
  EXPECT_NE(jps_10.get(), jps_20.get());
  EXPECT_NE(jps_10.get(), lo_10.get());
  const PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.plan_misses, 3u);
  EXPECT_EQ(stats.plan_hits, 1u);
  EXPECT_GT(stats.hit_rate(), 0.0);
}

TEST(PlanCache, ClearDropsEntriesButKeepsOutstandingPointers) {
  PlanCache cache;
  const auto curve = cache.curve({"alexnet", "pi4b", 5.85},
                                 [] { return build_alexnet_curve(5.85); });
  const std::size_t size_before = curve->size();
  cache.clear();
  EXPECT_EQ(cache.curve_count(), 0u);
  EXPECT_EQ(cache.stats().misses(), 0u);
  EXPECT_EQ(curve->size(), size_before);  // shared_ptr keeps the value alive
}

TEST(PlanCache, ConcurrentMixedAccessIsSafeAndCoherent) {
  // Hammer one cache from many threads over a handful of keys: every
  // returned pointer for one key must be the same object, and lookups must
  // add up.  Suitable for running under TSan.
  PlanCache cache;
  constexpr std::size_t kLookups = 200;
  const double bandwidths[] = {1.0, 2.0, 4.0, 8.0};
  std::vector<std::shared_ptr<const partition::ProfileCurve>> seen(kLookups);
  util::parallel_for(kLookups, [&](std::size_t i) {
    const double mbps = bandwidths[i % 4];
    seen[i] = cache.curve({"alexnet", "pi4b", mbps},
                          [&] { return build_alexnet_curve(mbps); });
  });
  EXPECT_EQ(cache.curve_count(), 4u);
  for (std::size_t i = 4; i < kLookups; ++i)
    EXPECT_EQ(seen[i].get(), seen[i % 4].get());
  const PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.curve_hits + stats.curve_misses, kLookups);
  EXPECT_GE(stats.curve_misses, 4u);  // racing builders may double-build
}

TEST(PlanCache, GlobalIsASingleton) {
  EXPECT_EQ(&PlanCache::global(), &PlanCache::global());
}

// ---- ShardedPlanCache: the lock-striped wrapper jps_serve sits on ----

TEST(ShardedPlanCache, DelegatesAndAggregatesStats) {
  ShardedPlanCache cache(4);
  EXPECT_EQ(cache.shard_count(), 4u);
  std::atomic<int> curve_builds{0};
  std::atomic<int> plan_builds{0};
  // Distinct bandwidths scatter across shards; each key misses once, hits
  // once, and stats() must add up across every shard.
  for (const double mbps : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    const CurveCacheKey curve_key{"alexnet", "pi4b", mbps};
    for (int round = 0; round < 2; ++round) {
      const auto curve = cache.curve(curve_key, [&] {
        curve_builds.fetch_add(1);
        return build_alexnet_curve(mbps);
      });
      const PlanCacheKey plan_key{"alexnet", "pi4b", mbps, Strategy::kJPS, 4};
      const auto plan = cache.plan(plan_key, [&] {
        plan_builds.fetch_add(1);
        return Planner(*curve).plan(Strategy::kJPS, 4);
      });
      ASSERT_NE(plan, nullptr);
    }
  }
  EXPECT_EQ(curve_builds.load(), 5);
  EXPECT_EQ(plan_builds.load(), 5);
  const PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.curve_misses, 5u);
  EXPECT_EQ(stats.curve_hits, 5u);
  EXPECT_EQ(stats.plan_misses, 5u);
  EXPECT_EQ(stats.plan_hits, 5u);
  EXPECT_EQ(cache.curve_count(), 5u);
  EXPECT_EQ(cache.plan_count(), 5u);
}

TEST(ShardedPlanCache, RoutingIsDeterministicAndInRange) {
  ShardedPlanCache cache(8);
  const CurveCacheKey a{"alexnet", "pi4b", 5.0};
  const CurveCacheKey b{"alexnet", "pi4b", 5.0};
  EXPECT_EQ(cache.shard_of(a), cache.shard_of(b));  // equal keys, one shard
  EXPECT_LT(cache.shard_of(a), cache.shard_count());
  const PlanCacheKey p{"alexnet", "pi4b", 5.0, Strategy::kJPS, 4};
  EXPECT_LT(cache.shard_of(p), cache.shard_count());
  // -0.0 canonicalizes before hashing, so it routes with +0.0.
  EXPECT_EQ(cache.shard_of(CurveCacheKey{"alexnet", "pi4b", -0.0}),
            cache.shard_of(CurveCacheKey{"alexnet", "pi4b", 0.0}));
}

TEST(ShardedPlanCache, ShardCountClampsToAtLeastOne) {
  ShardedPlanCache cache(0);
  EXPECT_EQ(cache.shard_count(), 1u);
  EXPECT_EQ(cache.shard_of(CurveCacheKey{"alexnet", "pi4b", 2.5}), 0u);
}

TEST(ShardedPlanCache, ClearAndResetStatsTouchEveryShard) {
  ShardedPlanCache cache(4);
  for (const double mbps : {1.0, 2.0, 3.0, 4.0}) {
    (void)cache.curve({"alexnet", "pi4b", mbps},
                      [&] { return build_alexnet_curve(mbps); });
  }
  EXPECT_EQ(cache.curve_count(), 4u);
  cache.clear();
  EXPECT_EQ(cache.curve_count(), 0u);
  EXPECT_EQ(cache.plan_count(), 0u);
  cache.reset_stats();
  const PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.curve_misses, 0u);
  EXPECT_EQ(stats.curve_hits, 0u);
}

TEST(ShardedPlanCache, ConcurrentMixedAccessIsSafeAndCoherent) {
  // Same contract as the single-cache test, through the striped wrapper:
  // one object per key no matter which thread asked.  TSan target.
  ShardedPlanCache cache(4);
  constexpr std::size_t kLookups = 200;
  const double bandwidths[] = {1.0, 2.0, 4.0, 8.0};
  std::vector<std::shared_ptr<const partition::ProfileCurve>> seen(kLookups);
  util::parallel_for(kLookups, [&](std::size_t i) {
    const double mbps = bandwidths[i % 4];
    seen[i] = cache.curve({"alexnet", "pi4b", mbps},
                          [&] { return build_alexnet_curve(mbps); });
  });
  EXPECT_EQ(cache.curve_count(), 4u);
  for (std::size_t i = 4; i < kLookups; ++i)
    EXPECT_EQ(seen[i].get(), seen[i % 4].get());
  const PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.curve_hits + stats.curve_misses, kLookups);
  EXPECT_GE(stats.curve_misses, 4u);  // racing builders may double-build
}

}  // namespace
}  // namespace jps::core
