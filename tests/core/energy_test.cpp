#include "core/energy.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/planner.h"
#include "models/registry.h"
#include "net/channel.h"
#include "profile/device.h"
#include "profile/latency_model.h"

namespace jps::core {
namespace {

partition::ProfileCurve curve_for(const std::string& model, double mbps) {
  static const profile::LatencyModel mobile(
      profile::DeviceProfile::raspberry_pi_4b());
  const dnn::Graph g = models::build(model);
  return partition::ProfileCurve::build(g, mobile, net::Channel(mbps));
}

TEST(Energy, JobEnergyIsLinearInStageLengths) {
  const auto curve = curve_for("alexnet", 5.85);
  const EnergyModel energy(PowerProfile{2.0, 1.0, 0.5});
  for (std::size_t i = 0; i < curve.size(); ++i) {
    EXPECT_DOUBLE_EQ(energy.job_energy_mj(curve, i),
                     2.0 * curve.f(i) + 1.0 * curve.g(i));
  }
}

TEST(Energy, OptimalCutMinimizesOverCurve) {
  const auto curve = curve_for("alexnet", 5.85);
  const EnergyModel energy(PowerProfile::raspberry_pi_4b());
  const std::size_t best = energy.energy_optimal_cut(curve);
  for (std::size_t i = 0; i < curve.size(); ++i)
    EXPECT_LE(energy.job_energy_mj(curve, best),
              energy.job_energy_mj(curve, i) + 1e-12);
}

TEST(Energy, EnergyAndLatencyOptimaCanDiffer) {
  // When radio power is far below compute power, the energy optimum pushes
  // toward shallower cuts than the latency optimum at low bandwidth.
  const auto curve = curve_for("alexnet", 1.1);
  const EnergyModel cheap_radio(PowerProfile{6.0, 0.05, 0.5});
  const core::Planner planner(curve);
  const std::size_t latency_cut = planner.single_job_optimal_cut();
  const std::size_t energy_cut = cheap_radio.energy_optimal_cut(curve);
  EXPECT_LT(energy_cut, latency_cut);
}

TEST(Energy, ScheduleEnergyAccountsIdleTime) {
  const auto curve = curve_for("alexnet", 5.85);
  const EnergyModel energy(PowerProfile{2.0, 1.0, 0.5});
  const std::vector<std::size_t> cuts{0, curve.local_only_index()};
  const double busy =
      curve.f(0) + curve.g(0) +
      curve.f(curve.local_only_index()) + curve.g(curve.local_only_index());
  const double active = energy.job_energy_mj(curve, 0) +
                        energy.job_energy_mj(curve, curve.local_only_index());
  // Makespan larger than busy time: the slack is billed at idle power.
  const double makespan = busy + 100.0;
  EXPECT_NEAR(energy.schedule_energy_mj(curve, cuts, makespan),
              active + 100.0 * 0.5, 1e-9);
  // Makespan below busy time (pipelining): no idle term, never negative.
  EXPECT_NEAR(energy.schedule_energy_mj(curve, cuts, busy * 0.5), active,
              1e-9);
}

TEST(Energy, ScheduleEnergyValidatesCuts) {
  const auto curve = curve_for("alexnet", 5.85);
  const EnergyModel energy(PowerProfile::raspberry_pi_4b());
  const std::vector<std::size_t> bad{curve.size()};
  EXPECT_THROW((void)energy.schedule_energy_mj(curve, bad, 1.0),
               std::invalid_argument);
}

TEST(Energy, OffloadingSavesEnergyAtHighBandwidth) {
  // At Wi-Fi rates the JPS plan must beat local-only on energy too: less
  // compute time at modest radio cost.
  const auto curve = curve_for("alexnet", 18.88);
  const EnergyModel energy(PowerProfile::raspberry_pi_4b());
  const core::Planner planner(curve);
  const auto jps = planner.plan(Strategy::kJPS, 20);
  const auto lo = planner.plan(Strategy::kLocalOnly, 20);
  std::vector<std::size_t> jps_cuts;
  std::vector<std::size_t> lo_cuts;
  for (const auto& j : jps.jobs) jps_cuts.push_back(j.cut_index);
  for (const auto& j : lo.jobs) lo_cuts.push_back(j.cut_index);
  EXPECT_LT(energy.schedule_energy_mj(curve, jps_cuts, jps.predicted_makespan),
            energy.schedule_energy_mj(curve, lo_cuts, lo.predicted_makespan));
}

}  // namespace
}  // namespace jps::core
