#include "core/ratio.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/planner.h"
#include "models/registry.h"
#include "net/channel.h"
#include "partition/binary_search.h"
#include "profile/device.h"
#include "profile/latency_model.h"

namespace jps::core {
namespace {

partition::ProfileCurve curve_for(const std::string& model, double mbps) {
  static const profile::LatencyModel mobile(
      profile::DeviceProfile::raspberry_pi_4b());
  const dnn::Graph g = models::build(model);
  return partition::ProfileCurve::build(g, mobile, net::Channel(mbps));
}

TEST(RatioSweep, CoversAllSplits) {
  const auto curve = curve_for("resnet18", 10.0);
  const auto decision = partition::binary_search_cut(curve);
  ASSERT_TRUE(decision.l_minus.has_value());
  const auto sweep =
      sweep_type_ratio(curve, *decision.l_minus, decision.l_star, 20);
  ASSERT_EQ(sweep.size(), 19u);  // n_comm = 1..19
  for (const auto& p : sweep) {
    EXPECT_EQ(p.n_comm_heavy + p.n_comp_heavy, 20);
    EXPECT_GT(p.makespan, 0.0);
    EXPECT_NEAR(p.ratio,
                static_cast<double>(p.n_comp_heavy) /
                    static_cast<double>(p.n_comm_heavy),
                1e-12);
  }
}

TEST(RatioSweep, BestPointIsMinimum) {
  const auto curve = curve_for("resnet18", 10.0);
  const auto decision = partition::binary_search_cut(curve);
  ASSERT_TRUE(decision.l_minus.has_value());
  const auto sweep =
      sweep_type_ratio(curve, *decision.l_minus, decision.l_star, 50);
  const RatioPoint best = best_ratio(sweep);
  for (const auto& p : sweep) EXPECT_GE(p.makespan, best.makespan - 1e-12);
}

TEST(RatioSweep, OptimumBeatsNaiveFiftyFifty) {
  // Fig. 14's observation: the optimal ratio between the two job types is
  // usually not 1 — the balanced mix depends on the f/g gaps.
  const auto curve = curve_for("googlenet", 10.0);
  const auto decision = partition::binary_search_cut(curve);
  ASSERT_TRUE(decision.l_minus.has_value());
  const int n = 100;
  const auto sweep =
      sweep_type_ratio(curve, *decision.l_minus, decision.l_star, n);
  const RatioPoint best = best_ratio(sweep);
  const RatioPoint& half = sweep[static_cast<std::size_t>(n / 2 - 1)];
  EXPECT_LE(best.makespan, half.makespan);
}

TEST(RatioSweep, OptimumShiftsWithBandwidth) {
  // Fig. 14: "The optimal ratio shifts with bandwidth configurations."
  const auto curve9 = curve_for("resnet18", 9.0);
  const auto curve11 = curve_for("resnet18", 11.0);
  const auto d9 = partition::binary_search_cut(curve9);
  const auto d11 = partition::binary_search_cut(curve11);
  ASSERT_TRUE(d9.l_minus.has_value());
  ASSERT_TRUE(d11.l_minus.has_value());
  const auto b9 =
      best_ratio(sweep_type_ratio(curve9, *d9.l_minus, d9.l_star, 100));
  const auto b11 =
      best_ratio(sweep_type_ratio(curve11, *d11.l_minus, d11.l_star, 100));
  // Either the cut pair itself or the optimal mix must differ.
  const bool shifted = d9.l_star != d11.l_star ||
                       b9.n_comm_heavy != b11.n_comm_heavy;
  EXPECT_TRUE(shifted);
}

TEST(RatioSweep, AgreesWithJpsTunedPlanner) {
  const auto curve = curve_for("alexnet", 5.85);
  const Planner planner(curve);
  const auto decision = planner.decision();
  ASSERT_TRUE(decision.l_minus.has_value());
  const int n = 40;
  const auto sweep =
      sweep_type_ratio(curve, *decision.l_minus, decision.l_star, n);
  const RatioPoint best = best_ratio(sweep);
  const double tuned = planner.plan(Strategy::kJPSTuned, n).predicted_makespan;
  // kJPSTuned additionally tries the all-one-type splits, so <=.
  EXPECT_LE(tuned, best.makespan + 1e-9);
}

TEST(RatioSweep, Validation) {
  const auto curve = curve_for("alexnet", 5.85);
  EXPECT_THROW(sweep_type_ratio(curve, 0, curve.size(), 10),
               std::invalid_argument);
  EXPECT_THROW(sweep_type_ratio(curve, 0, 1, 1), std::invalid_argument);
}

TEST(RatioSweep, BestRatioRejectsEmptySweep) {
  // Previously returned a default point with makespan = inf and a zero job
  // mix, which silently propagated into reports.
  EXPECT_THROW(best_ratio({}), std::invalid_argument);
}

}  // namespace
}  // namespace jps::core
