// Differential suite for the batched planner path: Planner::plan_sweep and
// the SoA lane kernels must reproduce the per-point scalar plan() BIT FOR
// BIT — same makespan doubles, same cuts, same Johnson order — across
// hundreds of random curves, real model curves, and the edge cases that
// break naive vectorizations (flat curves, duplicate f, n_jobs == 1).
// CI also runs this binary under -O3 -march=x86-64-v3 to pin the identity
// when the lane loops actually vectorize.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "core/planner.h"
#include "models/registry.h"
#include "net/channel.h"
#include "profile/device.h"
#include "profile/latency_model.h"
#include "sched/makespan.h"
#include "util/rng.h"

namespace jps::core {
namespace {

constexpr Strategy kSweepStrategies[] = {
    Strategy::kLocalOnly, Strategy::kCloudOnly, Strategy::kPartitionOnly,
    Strategy::kJPS,       Strategy::kJPSTuned,  Strategy::kJPSHull,
};

// A synthetic monotone curve: random f ascending, random offload bytes, and
// g derived from the bytes through the SAME affine channel the sweep will
// re-base — exactly how real curves are built.  Clustering keeps it
// monotone at every bandwidth (g ordering only depends on bytes ordering).
partition::ProfileCurve random_curve(util::Rng& rng, bool duplicate_f) {
  const net::Channel channel(10.0);
  const int k = static_cast<int>(rng.uniform_int(3, 16));
  std::vector<partition::CutPoint> candidates;
  double f = 0.0;
  for (int i = 0; i < k; ++i) {
    partition::CutPoint c;
    if (!(duplicate_f && i % 2 == 1)) f += rng.uniform(0.0, 20.0);
    c.f = f;
    c.offload_bytes = static_cast<std::uint64_t>(rng.uniform_int(1, 4'000'000));
    c.g = channel.time_ms(c.offload_bytes);
    candidates.push_back(c);
  }
  // Endpoints: a cloud-only cut (f = 0) and a local-only cut (bytes = 0).
  candidates.front().f = 0.0;
  partition::CutPoint local;
  local.f = f + rng.uniform(0.1, 20.0);
  local.offload_bytes = 0;
  local.g = 0.0;
  candidates.push_back(local);
  return partition::ProfileCurve::from_candidates("synthetic",
                                                  std::move(candidates));
}

// The scalar truth for one (curve, strategy, bandwidth, n_jobs) point.
ExecutionPlan scalar_plan(const partition::ProfileCurve& base,
                          const net::Channel& channel, Strategy strategy,
                          double mbps, int n_jobs) {
  return Planner(base.with_bandwidth(channel, mbps)).plan(strategy, n_jobs);
}

std::vector<std::size_t> sorted_cuts(const ExecutionPlan& plan) {
  std::vector<std::size_t> cuts;
  cuts.reserve(plan.jobs.size());
  for (const auto& job : plan.jobs) cuts.push_back(job.cut_index);
  std::sort(cuts.begin(), cuts.end());
  return cuts;
}

std::vector<std::size_t> sorted_cuts(const PlanSweep& sweep, std::size_t p) {
  std::vector<std::size_t> cuts(static_cast<std::size_t>(sweep.n_jobs),
                                sweep.cut_b[p]);
  for (int i = 0; i < sweep.n_a[p]; ++i)
    cuts[static_cast<std::size_t>(i)] = sweep.cut_a[p];
  std::sort(cuts.begin(), cuts.end());
  return cuts;
}

// One full cross-check of a sweep against per-point scalar planning:
// bit-equal makespans, identical cut multisets, and (via materialize) the
// identical ExecutionPlan the scalar path produces.
void expect_sweep_matches_scalar(const partition::ProfileCurve& base,
                                 const net::Channel& channel,
                                 Strategy strategy, int n_jobs,
                                 const std::vector<double>& bandwidths) {
  const Planner planner(base);
  const PlanSweep sweep =
      planner.plan_sweep(strategy, n_jobs, bandwidths, channel);
  ASSERT_EQ(sweep.size(), bandwidths.size());
  for (std::size_t p = 0; p < bandwidths.size(); ++p) {
    const ExecutionPlan scalar =
        scalar_plan(base, channel, strategy, bandwidths[p], n_jobs);
    // EXPECT_EQ on doubles is exact: the batched path must not differ even
    // in the last ulp.
    EXPECT_EQ(sweep.makespan_ms[p], scalar.predicted_makespan)
        << strategy_name(strategy) << " at " << bandwidths[p] << " Mbps";
    EXPECT_EQ(sorted_cuts(sweep, p), sorted_cuts(scalar))
        << strategy_name(strategy) << " at " << bandwidths[p] << " Mbps";

    const ExecutionPlan expanded = planner.materialize(sweep, p, channel);
    EXPECT_EQ(expanded.predicted_makespan, scalar.predicted_makespan);
    EXPECT_EQ(expanded.comm_heavy_count, scalar.comm_heavy_count);
    ASSERT_EQ(expanded.jobs.size(), scalar.jobs.size());
    for (std::size_t i = 0; i < expanded.jobs.size(); ++i) {
      EXPECT_EQ(expanded.jobs[i], scalar.jobs[i]);
      EXPECT_EQ(expanded.scheduled_jobs[i].f, scalar.scheduled_jobs[i].f);
      EXPECT_EQ(expanded.scheduled_jobs[i].g, scalar.scheduled_jobs[i].g);
    }
  }
}

TEST(PlanSweep, RandomCurvesBitIdenticalToScalar) {
  util::Rng rng(20260808);
  const net::Channel channel(10.0);
  const std::vector<double> bandwidths = {1.0, 3.7, 9.0, 18.88, 55.0};
  // 500+ random curves, every sweepable strategy, mixed job counts.
  for (int trial = 0; trial < 520; ++trial) {
    const partition::ProfileCurve curve =
        random_curve(rng, /*duplicate_f=*/trial % 5 == 0);
    const Strategy strategy = kSweepStrategies[trial % 6];
    const int n_jobs = static_cast<int>(rng.uniform_int(1, 12));
    expect_sweep_matches_scalar(curve, channel, strategy, n_jobs, bandwidths);
  }
}

TEST(PlanSweep, RealModelCurvesAllStrategies) {
  const profile::LatencyModel mobile(
      profile::DeviceProfile::raspberry_pi_4b());
  const net::Channel channel(10.0);
  std::vector<double> bandwidths;
  for (double b = 1.0; b <= 80.0; b += 7.3) bandwidths.push_back(b);
  for (const char* model : {"alexnet", "mobilenet_v2"}) {
    const dnn::Graph graph = models::build(model);
    const partition::ProfileCurve curve =
        partition::ProfileCurve::build(graph, mobile, channel);
    for (const Strategy strategy : kSweepStrategies)
      expect_sweep_matches_scalar(curve, channel, strategy, 10, bandwidths);
  }
}

TEST(PlanSweep, SingleJobMatchesScalar) {
  util::Rng rng(7);
  const net::Channel channel(10.0);
  for (int trial = 0; trial < 40; ++trial) {
    const partition::ProfileCurve curve = random_curve(rng, trial % 2 == 1);
    for (const Strategy strategy : kSweepStrategies)
      expect_sweep_matches_scalar(curve, channel, strategy, 1,
                                  {2.0, 11.5, 64.0});
  }
}

TEST(PlanSweep, FlatComputeCurve) {
  // Every cut costs the same f; only g (bytes) distinguishes them.  The
  // duplicate-f tie-breaks in sorting, l* search and the hull must agree
  // between the lane path and the scalar path.
  const net::Channel channel(10.0);
  std::vector<partition::CutPoint> candidates;
  for (int i = 0; i < 6; ++i) {
    partition::CutPoint c;
    c.f = 5.0;
    c.offload_bytes = static_cast<std::uint64_t>(6 - i) * 500'000;
    c.g = channel.time_ms(c.offload_bytes);
    candidates.push_back(c);
  }
  partition::CutPoint local;
  local.f = 5.0;
  local.offload_bytes = 0;
  candidates.push_back(local);
  const partition::ProfileCurve curve = partition::ProfileCurve::from_candidates(
      "flat", std::move(candidates));
  for (const Strategy strategy : kSweepStrategies)
    expect_sweep_matches_scalar(curve, channel, strategy, 8,
                                {1.0, 4.2, 10.0, 33.0});
}

TEST(PlanSweep, CurveLanesMirrorCuts) {
  util::Rng rng(11);
  const partition::ProfileCurve curve = random_curve(rng, false);
  ASSERT_EQ(curve.f_lane().size(), curve.size());
  ASSERT_EQ(curve.g_lane().size(), curve.size());
  ASSERT_EQ(curve.offload_bytes_lane().size(), curve.size());
  for (std::size_t i = 0; i < curve.size(); ++i) {
    EXPECT_EQ(curve.f_lane()[i], curve.cut(i).f);
    EXPECT_EQ(curve.g_lane()[i], curve.cut(i).g);
    EXPECT_EQ(curve.offload_bytes_lane()[i], curve.cut(i).offload_bytes);
    EXPECT_EQ(curve.f(i), curve.cut(i).f);
    EXPECT_EQ(curve.g(i), curve.cut(i).g);
  }
  // Rebasing keeps the lanes in sync too.
  const partition::ProfileCurve rebased =
      curve.with_bandwidth(net::Channel(10.0), 3.3);
  for (std::size_t i = 0; i < rebased.size(); ++i) {
    EXPECT_EQ(rebased.g_lane()[i], rebased.cut(i).g);
    EXPECT_EQ(rebased.f_lane()[i], rebased.cut(i).f);
  }
}

TEST(PlanSweep, PlanCarriesLanes) {
  util::Rng rng(13);
  const partition::ProfileCurve curve = random_curve(rng, false);
  const ExecutionPlan plan = Planner(curve).plan(Strategy::kJPSTuned, 6);
  ASSERT_EQ(plan.f_lane.size(), plan.scheduled_jobs.size());
  ASSERT_EQ(plan.g_lane.size(), plan.scheduled_jobs.size());
  for (std::size_t i = 0; i < plan.scheduled_jobs.size(); ++i) {
    EXPECT_EQ(plan.f_lane[i], plan.scheduled_jobs[i].f);
    EXPECT_EQ(plan.g_lane[i], plan.scheduled_jobs[i].g);
  }
  EXPECT_EQ(plan.predicted_makespan,
            sched::flowshop2_makespan(plan.scheduled_jobs));
}

TEST(PlanSweep, BatchKernelBitIdenticalToScalar) {
  util::Rng rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    const double f_a = rng.uniform(0.0, 50.0);
    const double f_b = f_a + rng.uniform(0.0, 50.0);
    const int n_a = static_cast<int>(rng.uniform_int(0, 7));
    const int n_b = static_cast<int>(rng.uniform_int(0, 7));
    std::vector<double> g_a(9);
    std::vector<double> g_b(9);
    for (std::size_t s = 0; s < g_a.size(); ++s) {
      g_a[s] = rng.uniform(0.0, 80.0);
      g_b[s] = rng.uniform(0.0, g_a[s]);
    }
    std::vector<double> out(g_a.size());
    two_type_makespan_batch(f_a, g_a, f_b, g_b, n_a, n_b, out);
    for (std::size_t s = 0; s < out.size(); ++s) {
      EXPECT_EQ(out[s],
                two_type_makespan(f_a, g_a[s], f_b, g_b[s], n_a, n_b));
    }
  }
}

TEST(PlanSweep, BatchKernelRejectsMismatchedSpans) {
  std::vector<double> three(3, 1.0);
  std::vector<double> two(2, 1.0);
  EXPECT_THROW(two_type_makespan_batch(1.0, three, 1.0, two, 1, 1, three),
               std::invalid_argument);
  EXPECT_THROW(two_type_makespan_batch(1.0, three, 1.0, three, 1, 1, two),
               std::invalid_argument);
}

TEST(PlanSweep, ValidatesArguments) {
  util::Rng rng(23);
  const partition::ProfileCurve curve = random_curve(rng, false);
  const Planner planner(curve);
  const net::Channel channel(10.0);
  const std::vector<double> ok = {5.0};
  EXPECT_THROW(planner.plan_sweep(Strategy::kJPS, 0, ok, channel),
               std::invalid_argument);
  EXPECT_THROW(planner.plan_sweep(Strategy::kBruteForce, 4, ok, channel),
               std::invalid_argument);
  EXPECT_THROW(planner.plan_sweep(Strategy::kRobust, 4, ok, channel),
               std::invalid_argument);
  for (const double bad :
       {0.0, -1.0, std::numeric_limits<double>::quiet_NaN(),
        std::numeric_limits<double>::infinity()}) {
    const std::vector<double> bandwidths = {5.0, bad};
    EXPECT_THROW(planner.plan_sweep(Strategy::kJPS, 4, bandwidths, channel),
                 std::invalid_argument)
        << "bandwidth " << bad;
  }

  const PlanSweep sweep = planner.plan_sweep(Strategy::kJPS, 4, ok, channel);
  EXPECT_THROW((void)planner.materialize(sweep, 1, channel),
               std::out_of_range);
}

TEST(PlanSweep, EmptyBandwidthListYieldsEmptySweep) {
  util::Rng rng(29);
  const Planner planner(random_curve(rng, false));
  const PlanSweep sweep = planner.plan_sweep(
      Strategy::kJPSTuned, 3, std::vector<double>{}, net::Channel(10.0));
  EXPECT_EQ(sweep.size(), 0u);
}

}  // namespace
}  // namespace jps::core
