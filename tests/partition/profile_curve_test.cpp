#include "partition/profile_curve.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "models/registry.h"
#include "models/zoo.h"
#include "net/channel.h"
#include "profile/device.h"
#include "profile/profiler.h"

namespace jps::partition {
namespace {

profile::LatencyModel mobile_model() {
  return profile::LatencyModel(profile::DeviceProfile::raspberry_pi_4b());
}

TEST(ProfileCurve, EndpointsAreCloudOnlyAndLocalOnly) {
  const dnn::Graph g = models::build("alexnet");
  const auto curve =
      ProfileCurve::build(g, mobile_model(), net::Channel::preset_4g());
  ASSERT_GE(curve.size(), 2u);
  // Cut 0: nothing computed locally except the free input node.
  EXPECT_DOUBLE_EQ(curve.f(0), 0.0);
  EXPECT_GT(curve.g(0), 0.0);
  EXPECT_EQ(curve.cut(0).offload_bytes, 3u * 224 * 224 * 4);
  // Last cut: everything local, nothing offloaded.
  const std::size_t last = curve.local_only_index();
  EXPECT_DOUBLE_EQ(curve.g(last), 0.0);
  EXPECT_EQ(curve.cut(last).offload_bytes, 0u);
  EXPECT_NEAR(curve.f(last), mobile_model().graph_time_ms(g), 1e-9);
  EXPECT_TRUE(curve.cut(last).cut_nodes.empty());
}

TEST(ProfileCurve, ClusteredCurveIsMonotone) {
  for (const auto& name : models::all_names()) {
    const dnn::Graph g = models::build(name);
    const auto curve =
        ProfileCurve::build(g, mobile_model(), net::Channel::preset_wifi());
    EXPECT_TRUE(curve.is_monotone()) << name;
    EXPECT_GE(curve.size(), 2u) << name;
  }
}

TEST(ProfileCurve, UnclusteredAlexNetHasNonMonotoneG) {
  // AlexNet conv1 blows the volume up over the input (64x55x55 > 3x224x224);
  // without clustering the curve must expose that bump.
  const dnn::Graph g = models::build("alexnet");
  CurveOptions raw;
  raw.cluster = false;
  const auto curve = ProfileCurve::build(g, mobile_model(),
                                         net::Channel::preset_wifi(), raw);
  EXPECT_FALSE(curve.is_monotone());
  EXPECT_GT(curve.size(),
            ProfileCurve::build(g, mobile_model(), net::Channel::preset_wifi())
                .size());
}

TEST(ProfileCurve, ClusteringNeverLosesTheOptimalCut) {
  // Every pruned candidate is dominated: some kept candidate has f <= its f
  // and g <= its g.  Verify on all models at 4G.
  for (const auto& name : models::all_names()) {
    const dnn::Graph g = models::build(name);
    CurveOptions raw;
    raw.cluster = false;
    const net::Channel ch = net::Channel::preset_4g();
    const auto full = ProfileCurve::build(g, mobile_model(), ch, raw);
    const auto clustered = ProfileCurve::build(g, mobile_model(), ch);
    for (std::size_t i = 0; i < full.size(); ++i) {
      bool dominated = false;
      for (std::size_t j = 0; j < clustered.size(); ++j) {
        if (clustered.f(j) <= full.f(i) + 1e-9 &&
            clustered.g(j) <= full.g(i) + 1e-9) {
          dominated = true;
          break;
        }
      }
      EXPECT_TRUE(dominated) << name << " candidate " << i;
    }
  }
}

TEST(ProfileCurve, FIsPrefixSumOfMobileTimes) {
  const dnn::Graph g = models::build("alexnet");  // line: trunk = all nodes
  CurveOptions raw;
  raw.cluster = false;
  const auto curve = ProfileCurve::build(g, mobile_model(),
                                         net::Channel::preset_4g(), raw);
  ASSERT_EQ(curve.size(), g.size());
  double prefix = 0.0;
  for (std::size_t i = 0; i < curve.size(); ++i) {
    prefix += mobile_model().node_time_ms(g, i);
    EXPECT_NEAR(curve.f(i), prefix, 1e-9);
    EXPECT_EQ(curve.cut(i).local_nodes.size(), i + 1);
  }
}

TEST(ProfileCurve, MobileNetCollapsesBottlenecksToVirtualBlocks) {
  // §6.1: bottleneck residual modules must cluster into virtual blocks;
  // no kept cut may sit strictly inside a bypass link.
  const dnn::Graph g = models::build("mobilenet_v2");
  const auto curve =
      ProfileCurve::build(g, mobile_model(), net::Channel::preset_4g());
  const auto trunk = g.articulation_nodes();
  for (std::size_t i = 0; i < curve.size(); ++i) {
    if (curve.cut(i).cut_nodes.empty()) continue;  // local-only endpoint
    const dnn::NodeId node = curve.cut(i).cut_nodes.front();
    EXPECT_NE(std::find(trunk.begin(), trunk.end(), node), trunk.end())
        << "cut inside a residual block at node " << node;
  }
}

TEST(ProfileCurve, LookupTableBuildMatchesModelBuild) {
  const dnn::Graph g = models::build("alexnet");
  // A noiseless profiling campaign reproduces the analytic model exactly,
  // so the two build paths must agree.
  profile::ProfilerOptions opt;
  opt.noise_sigma = 0.0;
  const profile::Profiler profiler(profile::DeviceProfile::raspberry_pi_4b(),
                                   opt);
  util::Rng rng(5);
  profile::LookupTable table;
  table.add_graph(g, profiler.measure_graph(g, rng));

  const net::Channel ch = net::Channel::preset_4g();
  const auto from_table = ProfileCurve::build(g, table, ch);
  const auto from_model = ProfileCurve::build(g, mobile_model(), ch);
  ASSERT_EQ(from_table.size(), from_model.size());
  for (std::size_t i = 0; i < from_table.size(); ++i) {
    EXPECT_NEAR(from_table.f(i), from_model.f(i), 1e-9);
    EXPECT_NEAR(from_table.g(i), from_model.g(i), 1e-9);
  }
}

TEST(ProfileCurve, CloudTimesFilledWhenRequested) {
  const dnn::Graph g = models::build("alexnet");
  const profile::LatencyModel cloud(profile::DeviceProfile::cloud_gtx1080());
  CurveOptions opt;
  opt.with_cloud_times = true;
  const auto curve = ProfileCurve::build(g, mobile_model(),
                                         net::Channel::preset_4g(), opt, &cloud);
  // Cloud remainder shrinks as the cut moves deeper; zero at local-only.
  for (std::size_t i = 1; i < curve.size(); ++i)
    EXPECT_LE(curve.cut(i).cloud, curve.cut(i - 1).cloud + 1e-9);
  EXPECT_NEAR(curve.cut(curve.local_only_index()).cloud, 0.0, 1e-9);
  EXPECT_NEAR(curve.cut(0).cloud, cloud.graph_time_ms(g), 1e-9);
}

TEST(ProfileCurve, WithFittedCommKeepsEndpointsAndMonotonicity) {
  const dnn::Graph g = models::build("alexnet");
  const auto curve =
      ProfileCurve::build(g, mobile_model(), net::Channel::preset_4g());
  const auto smoothed = curve.with_fitted_comm();
  EXPECT_EQ(smoothed.size(), curve.size());
  EXPECT_EQ(smoothed.model_name(), curve.model_name() + "'");
  // f untouched; local-only g stays 0.
  for (std::size_t i = 0; i < curve.size(); ++i)
    EXPECT_DOUBLE_EQ(smoothed.f(i), curve.f(i));
  EXPECT_DOUBLE_EQ(smoothed.g(smoothed.local_only_index()), 0.0);
  EXPECT_TRUE(smoothed.is_monotone());
}

TEST(ProfileCurve, AsCutOptionsMirrorsFG) {
  const dnn::Graph g = models::build("alexnet");
  const auto curve =
      ProfileCurve::build(g, mobile_model(), net::Channel::preset_4g());
  const auto options = curve.as_cut_options();
  ASSERT_EQ(options.size(), curve.size());
  for (std::size_t i = 0; i < options.size(); ++i) {
    EXPECT_DOUBLE_EQ(options[i].f, curve.f(i));
    EXPECT_DOUBLE_EQ(options[i].g, curve.g(i));
  }
}

TEST(ProfileCurve, Validation) {
  EXPECT_THROW(ProfileCurve::from_candidates("x", {}), std::invalid_argument);
  const dnn::Graph g("uninfered");
  ProfileCurve curve;
  EXPECT_THROW((void)curve.cut(0), std::out_of_range);
  dnn::Graph raw = models::alexnet();
  EXPECT_THROW(ProfileCurve::build(
                   raw, [](dnn::NodeId) { return 1.0; },
                   [](std::uint64_t) { return 1.0; }),
               std::invalid_argument);  // graph not inferred
}

}  // namespace
}  // namespace jps::partition
