#include "partition/binary_search.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "models/registry.h"
#include "net/channel.h"
#include "profile/device.h"
#include "util/rng.h"

namespace jps::partition {
namespace {

// Craft a monotone curve directly from (f, g) pairs.
ProfileCurve make_curve(std::vector<std::pair<double, double>> fg) {
  std::vector<CutPoint> candidates;
  for (const auto& [f, g] : fg) {
    CutPoint c;
    c.f = f;
    c.g = g;
    c.offload_bytes = g > 0.0 ? static_cast<std::uint64_t>(g * 1000) : 0;
    candidates.push_back(c);
  }
  CurveOptions opt;
  opt.cluster = false;  // trust the caller's shape
  return ProfileCurve::from_candidates("synthetic", std::move(candidates), opt);
}

TEST(BinarySearch, FindsLeftmostCrossing) {
  const auto curve =
      make_curve({{0, 10}, {2, 7}, {4, 5}, {6, 3}, {8, 1}, {10, 0}});
  const CutDecision d = binary_search_cut(curve);
  EXPECT_EQ(d.l_star, 3u);  // first index with f >= g (6 >= 3)
  ASSERT_TRUE(d.l_minus.has_value());
  EXPECT_EQ(*d.l_minus, 2u);
  // ratio = floor((6-3)/(5-4)) = 3.
  EXPECT_EQ(d.ratio, 3);
}

TEST(BinarySearch, ExactBalanceAtCrossing) {
  const auto curve = make_curve({{0, 9}, {5, 5}, {8, 1}, {10, 0}});
  const CutDecision d = binary_search_cut(curve);
  EXPECT_EQ(d.l_star, 1u);  // f == g counts as crossing
  EXPECT_EQ(d.ratio, 0);    // no surplus to balance
}

TEST(BinarySearch, CloudOnlyAlreadyComputationHeavy) {
  const auto curve = make_curve({{5, 2}, {7, 1}, {9, 0}});
  const CutDecision d = binary_search_cut(curve);
  EXPECT_EQ(d.l_star, 0u);
  EXPECT_FALSE(d.l_minus.has_value());
  EXPECT_EQ(d.ratio, 0);
}

TEST(BinarySearch, CrossingOnlyAtLocalOnly) {
  const auto curve = make_curve({{0, 100}, {1, 99}, {2, 98}, {3, 0}});
  const CutDecision d = binary_search_cut(curve);
  EXPECT_EQ(d.l_star, 3u);
}

TEST(BinarySearch, RejectsNonMonotoneCurves) {
  const auto curve = make_curve({{0, 5}, {1, 7}, {2, 0}});  // g bumps up
  EXPECT_THROW((void)binary_search_cut(curve), std::invalid_argument);
  EXPECT_THROW((void)linear_scan_cut(curve), std::invalid_argument);
}

TEST(BinarySearch, MatchesLinearScanOnRandomMonotoneCurves) {
  util::Rng rng(77);
  for (int trial = 0; trial < 300; ++trial) {
    const int k = static_cast<int>(rng.uniform_int(2, 40));
    std::vector<std::pair<double, double>> fg;
    double f = 0.0;
    double g = rng.uniform(10.0, 100.0);
    for (int i = 0; i < k; ++i) {
      fg.emplace_back(f, g);
      f += rng.uniform(0.0, 6.0);
      g = std::max(0.0, g - rng.uniform(0.0, 12.0));
    }
    fg.emplace_back(f, 0.0);
    const auto curve = make_curve(std::move(fg));
    const CutDecision bin = binary_search_cut(curve);
    const CutDecision lin = linear_scan_cut(curve);
    EXPECT_EQ(bin.l_star, lin.l_star) << "trial " << trial;
    EXPECT_EQ(bin.l_minus, lin.l_minus) << "trial " << trial;
    EXPECT_EQ(bin.ratio, lin.ratio) << "trial " << trial;
  }
}

TEST(BinarySearch, LogarithmicIterationBound) {
  // O(log k): the loop halves [lo, hi] every iteration.
  util::Rng rng(99);
  for (const int k : {4, 16, 64, 256, 1024}) {
    std::vector<std::pair<double, double>> fg;
    for (int i = 0; i < k; ++i)
      fg.emplace_back(static_cast<double>(i),
                      static_cast<double>(k - i) - 0.5);
    fg.emplace_back(static_cast<double>(k), 0.0);
    const auto curve = make_curve(std::move(fg));
    const CutDecision d = binary_search_cut(curve);
    EXPECT_LE(d.iterations,
              static_cast<int>(std::ceil(std::log2(curve.size()))) + 1)
        << "k=" << k;
  }
}

TEST(BinarySearch, InvariantHoldsOnRealModels) {
  // f(l*-1) < g(l*-1) and f(l*) >= g(l*) — the loop invariant of Alg. 2.
  const profile::LatencyModel mobile(profile::DeviceProfile::raspberry_pi_4b());
  for (const auto& name : models::all_names()) {
    const dnn::Graph g = models::build(name);
    for (const double bw : {1.1, 5.85, 18.88}) {
      const auto curve = ProfileCurve::build(g, mobile, net::Channel(bw));
      const CutDecision d = binary_search_cut(curve);
      EXPECT_GE(curve.f(d.l_star), curve.g(d.l_star)) << name << " " << bw;
      if (d.l_minus) {
        EXPECT_LT(curve.f(*d.l_minus), curve.g(*d.l_minus)) << name << " " << bw;
      }
    }
  }
}

TEST(BinarySearch, EmptyCurveRejected) {
  ProfileCurve empty;
  EXPECT_THROW((void)binary_search_cut(empty), std::invalid_argument);
}

}  // namespace
}  // namespace jps::partition
