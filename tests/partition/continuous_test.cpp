#include "partition/continuous.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "models/registry.h"
#include "net/channel.h"
#include "partition/binary_search.h"
#include "profile/device.h"

namespace jps::partition {
namespace {

// Build a curve sampled from exactly the shapes Theorem 5.2 assumes:
// f(x) = a + b x (linear increasing), g(x) = c e^{-dx} (convex decreasing).
ProfileCurve ideal_curve(int k, double a, double b, double c, double d) {
  std::vector<CutPoint> candidates;
  for (int i = 0; i < k; ++i) {
    CutPoint cut;
    cut.f = (i == 0) ? 0.0 : a + b * static_cast<double>(i);
    cut.g = c * std::exp(-d * static_cast<double>(i));
    cut.offload_bytes = 1000;  // every cut offloads (pure curve study)
    candidates.push_back(cut);
  }
  CutPoint last;
  last.f = a + b * static_cast<double>(k);
  last.g = 0.0;
  last.offload_bytes = 0;
  candidates.push_back(last);
  CurveOptions opt;
  opt.cluster = false;
  return ProfileCurve::from_candidates("ideal", std::move(candidates), opt);
}

TEST(Continuous, SolvesFEqualsG) {
  const auto curve = ideal_curve(20, 0.0, 2.0, 100.0, 0.3);
  const ContinuousRelaxation r = relax_continuous(curve);
  // x* solves 2x = 100 e^{-0.3x}: x* ~ 6.70 (2*6.70 = 13.4 = 100 e^{-2.01}).
  EXPECT_NEAR(r.x_star, 6.70, 0.3);
  EXPECT_NEAR(r.f_fit(r.x_star), r.g_fit(r.x_star), 0.5);
  EXPECT_GT(r.f_fit.r2, 0.99);
  EXPECT_GT(r.g_fit.r2, 0.99);
}

TEST(Continuous, XStarBracketsAlgorithm2Cut) {
  // On ideal curves, the discrete l* of Alg. 2 is one of the two integers
  // around the continuous x*.
  const auto curve = ideal_curve(20, 0.0, 2.0, 100.0, 0.3);
  const ContinuousRelaxation r = relax_continuous(curve);
  const CutDecision d = binary_search_cut(curve);
  EXPECT_GE(static_cast<double>(d.l_star) + 1.0, r.x_star - 1.0);
  EXPECT_LE(static_cast<double>(d.l_star) - 1.0, r.x_star + 1.0);
}

TEST(Continuous, ClampsWhenNoInteriorCrossing) {
  // f above g everywhere: x* = 0.
  const auto high_f = ideal_curve(10, 50.0, 5.0, 10.0, 0.5);
  EXPECT_DOUBLE_EQ(relax_continuous(high_f).x_star, 0.0);
}

TEST(Continuous, RequiresAtLeastThreeCuts) {
  std::vector<CutPoint> two(2);
  two[0].g = 1.0;
  two[1].f = 1.0;
  CurveOptions opt;
  opt.cluster = false;
  const auto curve = ProfileCurve::from_candidates("tiny", std::move(two), opt);
  EXPECT_THROW((void)relax_continuous(curve), std::invalid_argument);
}

TEST(Continuous, StageBoundInterpolation) {
  const auto curve = ideal_curve(10, 0.0, 1.0, 20.0, 0.4);
  // At an integer x the bound equals max(f, g) of that cut.
  for (std::size_t i = 0; i < curve.size(); ++i) {
    EXPECT_NEAR(interpolated_stage_bound(curve, static_cast<double>(i)),
                std::max(curve.f(i), curve.g(i)), 1e-9);
  }
  // Clamped outside the domain.
  EXPECT_NEAR(interpolated_stage_bound(curve, -3.0),
              std::max(curve.f(0), curve.g(0)), 1e-9);
  EXPECT_NEAR(
      interpolated_stage_bound(curve, 1e6),
      std::max(curve.f(curve.size() - 1), curve.g(curve.size() - 1)), 1e-9);
}

TEST(Continuous, XStarMinimizesInterpolatedBound) {
  // Theorem 5.2: cutting everything at x* is optimal in the relaxation, so
  // the interpolated bound at x* must (approximately) minimize over a grid.
  const auto curve = ideal_curve(24, 0.0, 1.5, 120.0, 0.25);
  const ContinuousRelaxation r = relax_continuous(curve);
  const double at_star = interpolated_stage_bound(curve, r.x_star);
  double grid_best = at_star;
  for (double x = 0.0; x <= 23.0; x += 0.05)
    grid_best = std::min(grid_best, interpolated_stage_bound(curve, x));
  EXPECT_NEAR(at_star, grid_best, 0.05 * grid_best + 0.5);
}

TEST(Continuous, WorksOnRealAlexNetCurve) {
  const dnn::Graph g = models::build("alexnet");
  const profile::LatencyModel mobile(profile::DeviceProfile::raspberry_pi_4b());
  const auto curve = ProfileCurve::build(g, mobile, net::Channel::preset_4g());
  const ContinuousRelaxation r = relax_continuous(curve);
  EXPECT_GE(r.x_star, 0.0);
  EXPECT_LE(r.x_star, static_cast<double>(curve.size() - 1));
  EXPECT_GT(r.f_fit.slope, 0.0);      // f increasing
  EXPECT_GT(r.g_fit.decay, 0.0);      // g decaying
  EXPECT_GT(r.f_fit.r2, 0.7);         // near-linear (paper's observation)
  EXPECT_GT(r.g_fit.r2, 0.7);         // near-exponential
}

}  // namespace
}  // namespace jps::partition
