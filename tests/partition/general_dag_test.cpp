#include "partition/general_dag.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>

#include "dnn/layer.h"
#include "models/registry.h"
#include "net/channel.h"
#include "profile/device.h"
#include "profile/latency_model.h"

namespace jps::partition {
namespace {

using dnn::Graph;
using dnn::NodeId;
using dnn::TensorShape;

// Fig. 9(a): v0..v7, three source->sink paths.
Graph make_fig9() {
  Graph g("fig9");
  const TensorShape s = TensorShape::chw(8, 16, 16);
  const NodeId v0 = g.add(dnn::input(s));
  const NodeId v1 = g.add(dnn::activation(dnn::ActivationKind::kReLU), {v0});
  const NodeId v2 = g.add(dnn::activation(dnn::ActivationKind::kReLU), {v1});
  const NodeId v3 = g.add(dnn::activation(dnn::ActivationKind::kReLU), {v1});
  const NodeId v4 = g.add(dnn::add(), {v2, v3});
  const NodeId v5 = g.add(dnn::activation(dnn::ActivationKind::kReLU), {v0});
  const NodeId v6 = g.add(dnn::activation(dnn::ActivationKind::kReLU), {v5});
  (void)g.add(dnn::add(), {v4, v6});
  g.infer();
  return g;
}

// A single-inception-module network: stem conv -> 4-way module -> head.
Graph make_mini_inception() {
  Graph g("mini_inception");
  NodeId x = g.add(dnn::input(TensorShape::chw(3, 32, 32)));
  x = g.add(dnn::conv2d(16, 3, 1, 1), {x});
  const NodeId entry = g.add(dnn::activation(dnn::ActivationKind::kReLU), {x});
  const NodeId b1 = g.add(dnn::conv2d(8, 1), {entry});
  NodeId b2 = g.add(dnn::conv2d(4, 1), {entry});
  b2 = g.add(dnn::conv2d(8, 3, 1, 1), {b2});
  NodeId b3 = g.add(dnn::pool2d(dnn::PoolKind::kMax, 3, 1, 1), {entry});
  b3 = g.add(dnn::conv2d(8, 1), {b3});
  const NodeId join = g.add(dnn::concat(), {b1, b2, b3});
  NodeId y = g.add(dnn::global_avg_pool(), {join});
  y = g.add(dnn::flatten(), {y});
  (void)g.add(dnn::dense(10), {y});
  g.infer();
  return g;
}

NodeTimeFn mobile_fn(const Graph& g) {
  static const profile::LatencyModel model(
      profile::DeviceProfile::raspberry_pi_4b());
  return [&g](NodeId id) { return model.node_time_ms(g, id); };
}

CommTimeFn comm_fn() {
  static const net::Channel channel = net::Channel::preset_4g();
  return [](std::uint64_t bytes) { return channel.time_ms(bytes); };
}

TEST(ConvertToPaths, Fig9YieldsThreeIndependentPaths) {
  const Graph g = make_fig9();
  const PathDecomposition d = convert_to_paths(g);
  ASSERT_EQ(d.paths.size(), 3u);
  // The conversion duplicates v0 across paths (out-degree 2), so the same
  // original id may appear in several paths, but within one path ids are
  // unique and ordered.
  for (const auto& path : d.paths) {
    EXPECT_TRUE(std::is_sorted(path.begin(), path.end()));
    EXPECT_EQ(std::set<NodeId>(path.begin(), path.end()).size(), path.size());
  }
}

TEST(ConvertToPaths, RespectsCap) {
  const Graph g = models::build("googlenet");
  EXPECT_THROW(convert_to_paths(g, 1000), std::runtime_error);
}

TEST(Alg3PathCuts, OnePerPathWithValidPrefixes) {
  const Graph g = make_fig9();
  const auto cuts = alg3_path_cuts(g, mobile_fn(g), comm_fn());
  ASSERT_EQ(cuts.size(), 3u);
  const auto paths = convert_to_paths(g).paths;
  for (const auto& cut : cuts) {
    const auto& path = paths[cut.path_index];
    ASSERT_LT(cut.cut_pos, path.size());
    // local_nodes must be exactly the path prefix up to cut_pos.
    ASSERT_EQ(cut.local_nodes.size(), cut.cut_pos + 1);
    for (std::size_t i = 0; i <= cut.cut_pos; ++i)
      EXPECT_EQ(cut.local_nodes[i], path[i]);
    if (cut.cut_node) {
      EXPECT_EQ(*cut.cut_node, path[cut.cut_pos]);
      EXPECT_GT(cut.g_dup, 0.0);
    } else {
      EXPECT_EQ(cut.cut_pos, path.size() - 1);
      EXPECT_DOUBLE_EQ(cut.g_dup, 0.0);
    }
    EXPECT_GE(cut.f_dup, 0.0);
  }
}

TEST(DecomposeSegments, LineGraphHasNoBranchedSegments) {
  const Graph g = models::build("alexnet");
  const auto segments = decompose_segments(g);
  EXPECT_EQ(segments.size(), g.size() - 1);  // consecutive trunk pairs
  for (const auto& seg : segments) {
    ASSERT_EQ(seg.branches.size(), 1u);
    EXPECT_TRUE(seg.branches.front().empty());
  }
}

TEST(DecomposeSegments, MiniInceptionModule) {
  const Graph g = make_mini_inception();
  const auto segments = decompose_segments(g);
  // Exactly one segment has parallel branches (the module).
  std::size_t branched = 0;
  for (const auto& seg : segments) {
    if (seg.branches.size() >= 2) {
      ++branched;
      EXPECT_EQ(seg.branches.size(), 3u);
      // Interior nodes per branch: 1, 2, 2.
      std::vector<std::size_t> sizes;
      for (const auto& b : seg.branches) sizes.push_back(b.size());
      std::sort(sizes.begin(), sizes.end());
      EXPECT_EQ(sizes, (std::vector<std::size_t>{1, 2, 2}));
    }
  }
  EXPECT_EQ(branched, 1u);
}

TEST(SpreadCuts, CombinationCountAndConsistency) {
  const Graph g = make_mini_inception();
  const auto spread = spread_cut_candidates(g, mobile_fn(g), comm_fn());
  // (1+1)(2+1)(2+1) - 1 (all-zero skipped) = 17 candidates.
  EXPECT_EQ(spread.size(), 17u);
  for (const auto& c : spread) {
    EXPECT_FALSE(c.cut_nodes.empty());
    EXPECT_GT(c.offload_bytes, 0u);
    EXPECT_GT(c.g, 0.0);
    EXPECT_GT(c.f, 0.0);
    // Local nodes are sorted and include the cut nodes' prefix.
    EXPECT_TRUE(std::is_sorted(c.local_nodes.begin(), c.local_nodes.end()));
    // Offload bytes must equal the sum of cut-node outputs.
    std::uint64_t bytes = 0;
    for (const NodeId v : c.cut_nodes) bytes += g.info(v).output_bytes;
    EXPECT_EQ(bytes, c.offload_bytes);
  }
}

TEST(SpreadCuts, EntryOutputCountedOnceWhenSharedBranchesUncut) {
  const Graph g = make_fig9();
  const auto spread = spread_cut_candidates(g, mobile_fn(g), comm_fn());
  // Fig. 9 has a single segment (v0..v7) with branches of sizes 3 and 2:
  // (3+1)(2+1) - 1 = 11 candidates.  Hmm — v1..v4 is itself branched, so
  // the segment is complex and yields no spread candidates.
  EXPECT_TRUE(spread.empty());
}

TEST(GeneralCurve, SupersetOfTrunkCurveAndMonotone) {
  const Graph g = make_mini_inception();
  const auto trunk =
      ProfileCurve::build(g, mobile_fn(g), comm_fn());
  const auto general = build_general_curve(g, mobile_fn(g), comm_fn());
  EXPECT_TRUE(general.is_monotone());
  EXPECT_GE(general.size(), 2u);
  // Every kept general cut must dominate or equal trunk options; at minimum
  // the general curve's best single-job latency cannot be worse.
  double best_trunk = 1e300;
  for (std::size_t i = 0; i < trunk.size(); ++i)
    best_trunk = std::min(best_trunk, trunk.f(i) + trunk.g(i));
  double best_general = 1e300;
  for (std::size_t i = 0; i < general.size(); ++i)
    best_general = std::min(best_general, general.f(i) + general.g(i));
  EXPECT_LE(best_general, best_trunk + 1e-9);
}

TEST(GeneralCurve, GoogLeNetTractable) {
  // GoogLeNet's 4^9 paths make Alg. 3 intractable, but the segment spread
  // machinery enumerates its inception modules fine.
  const Graph g = models::build("googlenet");
  const auto curve = build_general_curve(g, mobile_fn(g), comm_fn());
  EXPECT_TRUE(curve.is_monotone());
  EXPECT_GE(curve.size(), 2u);
  EXPECT_DOUBLE_EQ(curve.f(0), 0.0);
  EXPECT_DOUBLE_EQ(curve.g(curve.local_only_index()), 0.0);
}

}  // namespace
}  // namespace jps::partition
