// Regression: concurrent Server::stop() callers must each get the FULL
// drain postcondition.  Before the fix, stop() was gated on a bare
// stopping_.exchange — the losing caller returned after only
// pool_.shutdown(), while the winner was still half-closing connections,
// joining the snapshot thread, and writing the final snapshot.  A caller
// acting on stop()'s contract (e.g. destroying the Server, or reading the
// snapshot file) then raced the winner's remaining drain work.  This test
// failed (snapshot_saves == 0 observed after stop() returned) on the
// pre-fix code within a few iterations; with the stop_mutex_-serialized
// drain it must never fail.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

#include "serve/server.h"

namespace jps::serve {
namespace {

TEST(ServerStopRace, EveryStopperSeesTheFullDrainPostcondition) {
  const std::string path =
      ::testing::TempDir() + "/jps_stop_race_snapshot.bin";

  for (int iteration = 0; iteration < 20; ++iteration) {
    std::remove(path.c_str());

    ServerOptions options;
    options.workers = 2;
    options.snapshot_path = path;
    // Holds the leader's computation open so stop() has real draining to
    // do — the window the losing stopper used to escape through.
    options.debug_plan_delay_ms = 10.0;
    Server server(options);

    std::thread requester([&server] {
      PlanRequest request;
      request.model = "alexnet";
      request.bandwidth_mbps = 4.0;
      request.n_jobs = 2;
      (void)server.handle_plan(request);  // kOk or kUnavailable: both fine
    });
    // Let the leader reach the pool before the drain starts.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));

    std::atomic<int> violations{0};
    const auto stop_and_check = [&] {
      server.stop();
      // stop()'s contract: by the time ANY caller returns, the final
      // snapshot has been saved and is on disk.
      if (server.stats().snapshot_saves < 1) violations.fetch_add(1);
      std::ifstream in(path, std::ios::binary);
      if (!in.good()) violations.fetch_add(1);
    };
    std::thread stopper_a(stop_and_check);
    std::thread stopper_b(stop_and_check);
    stopper_a.join();
    stopper_b.join();
    requester.join();

    EXPECT_EQ(violations.load(), 0) << "iteration " << iteration;
    EXPECT_TRUE(server.stopped());
    server.stop();  // still idempotent after the race
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace jps::serve
