// Live introspection (protocol v3 STATS / TRACE_DUMP) against a real
// server: JSON validity, span-tree structure, client-side trace
// propagation, version gating at the connection loop, and a concurrent
// scrape-under-load stress (the TSan job runs this file).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/trace_context.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/transport.h"
#include "util/json.h"

namespace jps::serve {
namespace {

PlanRequest request_for(const std::string& model, double mbps) {
  PlanRequest request;
  request.tenant = "introspect";
  request.model = model;
  request.bandwidth_mbps = mbps;
  request.strategy = core::Strategy::kJPS;
  request.n_jobs = 4;
  return request;
}

ServerOptions traced_options() {
  ServerOptions options;
  options.workers = 2;
  options.flight_recorder_sample_every = 1;  // retain every request
  return options;
}

// One in-process connection: the server handles `pair.first` on its own
// thread; the caller talks through `pair.second`.
struct Connection {
  explicit Connection(Server& server) {
    StreamPair pair = make_in_process_pair();
    thread = std::thread(
        [&server, s = std::shared_ptr<ByteStream>(std::move(pair.first))] {
          server.handle_connection(*s);
        });
    end = std::move(pair.second);
  }
  ~Connection() { thread.join(); }
  std::unique_ptr<ByteStream> end;
  std::thread thread;
};

class IntrospectTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::FlightRecorder::global().reset(); }
  void TearDown() override { obs::FlightRecorder::global().reset(); }
};

TEST_F(IntrospectTest, StatsOpReturnsLiveCountersAsJson) {
  Server server(traced_options());
  Connection conn(server);
  Client client(std::move(conn.end));

  ASSERT_TRUE(client.plan(request_for("alexnet", 8.0)).has_plan());
  const StatsReply reply = client.scrape_stats();
  EXPECT_EQ(reply.status, Status::kOk);

  const util::Json json = util::Json::parse(reply.json);
  const util::Json* counters = json.get("counters");
  ASSERT_NE(counters, nullptr);
  const util::Json* requests = counters->get("serve.requests");
  ASSERT_NE(requests, nullptr);
  EXPECT_GE(requests->as_double(), 1.0);
  EXPECT_NE(json.get("histograms"), nullptr);
  EXPECT_NE(json.get("exemplars"), nullptr);

  client.close();
  server.stop();
  EXPECT_EQ(server.stats().stats_scrapes, 1u);
}

TEST_F(IntrospectTest, TraceDumpYieldsValidSpanTrees) {
  Server server(traced_options());
  Connection conn(server);
  Client client(std::move(conn.end));

  for (int i = 0; i < 3; ++i)
    ASSERT_TRUE(client.plan(request_for("alexnet", 8.0)).has_plan());

  const TraceDumpReply reply = client.trace_dump();
  EXPECT_EQ(reply.status, Status::kOk);
  const std::vector<obs::TraceRecord> records =
      obs::flight_records_from_json(util::Json::parse(reply.json));
  ASSERT_EQ(records.size(), 3u);

  bool saw_compute = false;
  for (const obs::TraceRecord& record : records) {
    EXPECT_EQ(obs::validate_trace(record), "");
    EXPECT_EQ(record.status, "OK");
    EXPECT_FALSE(record.error);
    bool saw_root = false;
    for (const obs::SpanRecord& span : record.spans) {
      if (span.name == "serve.request") saw_root = true;
      if (span.name == "serve.plan_compute") saw_compute = true;
    }
    EXPECT_TRUE(saw_root);
  }
  // At least the first (cache-miss) request crossed onto a pool worker.
  EXPECT_TRUE(saw_compute);

  // The recorder was drained: a second dump is empty.
  const TraceDumpReply again = client.trace_dump();
  EXPECT_EQ(again.remaining, 0u);
  EXPECT_TRUE(
      obs::flight_records_from_json(util::Json::parse(again.json)).empty());

  client.close();
  server.stop();
  EXPECT_EQ(server.stats().trace_dumps, 2u);
}

TEST_F(IntrospectTest, ClientPropagatesTheCallersTraceContext) {
  Server server(traced_options());
  Connection conn(server);
  Client client(std::move(conn.end));

  const obs::TraceContext caller = obs::TraceContext::start();
  {
    obs::TraceScope scope(caller);
    ASSERT_TRUE(client.plan(request_for("nin", 4.0)).has_plan());
  }

  const std::vector<obs::TraceRecord> records =
      obs::flight_records_from_json(
          util::Json::parse(client.trace_dump().json));
  ASSERT_EQ(records.size(), 1u);
  // The server-side trace adopted the caller's trace id, and its root span
  // parents onto the caller's span — one causal tree across the wire.
  EXPECT_EQ(records[0].trace_hi, caller.trace_hi);
  EXPECT_EQ(records[0].trace_lo, caller.trace_lo);
  bool root_links_to_caller = false;
  for (const obs::SpanRecord& span : records[0].spans)
    if (span.name == "serve.request" &&
        span.parent_span_id == caller.span_id)
      root_links_to_caller = true;
  EXPECT_TRUE(root_links_to_caller);

  client.close();
  server.stop();
}

TEST_F(IntrospectTest, PreV3IntrospectionFramesGetErrorRepliesNotHangups) {
  Server server(traced_options());
  Connection conn(server);
  std::unique_ptr<ByteStream> stream = std::move(conn.end);

  // Hand-build a kStats frame claiming version 2: the connection must stay
  // up and answer INVALID_ARGUMENT (as a plan reply, the error vocabulary
  // every client understands).
  std::string stats = encode_stats_request();
  stats[1] = 2;
  write_frame(*stream, stats);
  const auto error = read_frame(*stream);
  ASSERT_TRUE(error.has_value());
  const PlanReply reply = decode_plan_reply(*error);
  EXPECT_EQ(reply.status, Status::kInvalidArgument);
  EXPECT_NE(reply.message.find("version 3"), std::string::npos);

  // The same connection still serves v1 plan frames afterwards.
  write_frame(*stream, encode_plan_request(request_for("alexnet", 8.0), 1));
  const auto ok = read_frame(*stream);
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(peek_version(*ok), 1);
  EXPECT_TRUE(decode_plan_reply(*ok).has_plan());

  stream->close();
  server.stop();
  EXPECT_EQ(server.stats().protocol_errors, 1u);
}

// 16 loaded clients with two introspection scrapers riding alongside:
// counters must be monotonic across scrapes, and every dumped trace must
// parse and validate while the server is under concurrent load.
TEST_F(IntrospectTest, ScrapesStayConsistentUnderConcurrentLoad) {
  constexpr int kClients = 16;
  constexpr int kRequests = 20;

  Server server(traced_options());
  std::atomic<int> failures{0};
  std::atomic<int> plans_done{0};
  std::atomic<bool> stop_scrapers{false};
  std::atomic<int> scrapes{0};
  std::atomic<int> traces_seen{0};

  std::vector<std::unique_ptr<Connection>> connections;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    connections.push_back(std::make_unique<Connection>(server));
    clients.emplace_back(
        [&, c, end = std::move(connections.back()->end)]() mutable {
          Client client(std::move(end));
          const char* models[] = {"alexnet", "vgg16", "nin"};
          for (int r = 0; r < kRequests; ++r) {
            const PlanRequest request =
                request_for(models[(c + r) % 3], 4.0 + (c + r) % 3);
            if (!client.plan(request).has_plan()) failures.fetch_add(1);
            plans_done.fetch_add(1);
          }
          client.close();
        });
  }

  std::thread stats_scraper([&] {
    Connection conn(server);
    Client client(std::move(conn.end));
    double last = -1.0;
    while (!stop_scrapers.load(std::memory_order_acquire)) {
      const util::Json json = util::Json::parse(client.scrape_stats().json);
      const util::Json* counters = json.get("counters");
      const util::Json* requests =
          counters == nullptr ? nullptr : counters->get("serve.requests");
      const double now = requests == nullptr ? 0.0 : requests->as_double();
      if (now < last) failures.fetch_add(1);
      last = now;
      scrapes.fetch_add(1);
    }
    client.close();
  });

  std::thread dump_scraper([&] {
    Connection conn(server);
    Client client(std::move(conn.end));
    while (!stop_scrapers.load(std::memory_order_acquire)) {
      const std::vector<obs::TraceRecord> records =
          obs::flight_records_from_json(
              util::Json::parse(client.trace_dump().json));
      for (const obs::TraceRecord& record : records) {
        if (!obs::validate_trace(record).empty()) failures.fetch_add(1);
        traces_seen.fetch_add(1);
      }
    }
    client.close();
  });

  for (std::thread& t : clients) t.join();
  stop_scrapers.store(true, std::memory_order_release);
  stats_scraper.join();
  dump_scraper.join();
  connections.clear();  // joins the server-side threads
  server.stop();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(scrapes.load(), 0);
  EXPECT_GT(traces_seen.load(), 0);
  EXPECT_EQ(plans_done.load(), kClients * kRequests);
  EXPECT_GE(server.stats().stats_scrapes, 1u);
  EXPECT_GE(server.stats().trace_dumps, 1u);
}

}  // namespace
}  // namespace jps::serve
