// Client-side resilience: read deadlines (a silent server cannot hang the
// caller), clean TransportError on mid-frame peer death (never a partial
// decode), retry/backoff/hedge behavior, and the no-retry rule for decode
// errors.
#include "serve/client.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "serve/protocol.h"
#include "serve/transport.h"

namespace jps::serve {
namespace {

PlanRequest sample_request() {
  PlanRequest request;
  request.tenant = "tenant";
  request.model = "alexnet";
  request.bandwidth_mbps = 10.0;
  request.n_jobs = 4;
  return request;
}

/// Answers every plan request on `end`, taking per-request statuses from
/// `script` (kOk once the script runs out).  Exits on EOF / peer close.
void respond_loop(ByteStream& end, std::vector<Status> script = {}) {
  std::size_t i = 0;
  try {
    while (const auto payload = read_frame(end)) {
      if (peek_op(*payload) == Op::kPing) {
        write_frame(end, encode_ping_reply());
        continue;
      }
      PlanReply reply;
      reply.status = i < script.size() ? script[i] : Status::kOk;
      reply.makespan_ms = 42.0;
      if (reply.status != Status::kOk) reply.message = "scripted failure";
      write_frame(end, encode_plan_reply(reply));
      ++i;
    }
  } catch (const std::exception&) {
    // Peer died mid-frame or the pipe closed under us: a normal way for a
    // test connection to end.
  }
}

/// Reads one request then goes silent until the peer hangs up.
void silent_loop(ByteStream& end) {
  try {
    while (read_frame(end)) {
    }
  } catch (const std::exception&) {
  }
}

fault::RetryPolicy fast_backoff() {
  fault::RetryPolicy policy;
  policy.backoff_base_ms = 0.1;
  policy.backoff_factor = 2.0;
  policy.backoff_max_ms = 0.5;
  return policy;
}

// ---- Satellite: a silent server must time out, not hang ------------------

TEST(ClientResilience, SilentServerTimesOutOverAPipe) {
  StreamPair pair = make_in_process_pair();
  std::thread server([end = std::move(pair.second)] { silent_loop(*end); });

  ClientRetryOptions options;
  options.read_timeout_ms = 30.0;  // no factory: the timeout propagates
  Client client(std::move(pair.first), options);
  EXPECT_THROW((void)client.plan(sample_request()), TransportTimeout);
  EXPECT_EQ(client.stats().timeouts, 1u);
  client.close();
  server.join();
}

TEST(ClientResilience, SilentServerTimesOutOverASocket) {
  // Same regression through the SO_RCVTIMEO implementation.
  SocketListener listener(0);
  std::thread server([&] {
    const auto conn = listener.accept();
    if (conn) silent_loop(*conn);
  });

  ClientRetryOptions options;
  options.read_timeout_ms = 30.0;
  Client client(socket_connect("127.0.0.1", listener.port()), options);
  EXPECT_THROW((void)client.plan(sample_request()), TransportTimeout);
  client.close();
  listener.close();
  server.join();
}

TEST(ClientResilience, SilentServerPingReturnsFalse) {
  StreamPair pair = make_in_process_pair();
  std::thread server([end = std::move(pair.second)] { silent_loop(*end); });

  ClientRetryOptions options;
  options.read_timeout_ms = 30.0;
  Client client(std::move(pair.first), options);
  EXPECT_FALSE(client.ping());
  client.close();
  server.join();
}

// ---- Satellite: peer death mid-frame is a clean TransportError -----------

TEST(ClientResilience, TruncatedReplyAtEveryByteOffsetIsATransportError) {
  // Record one valid reply frame (length prefix + payload), then replay
  // every strict prefix of it followed by EOF.  Each one must surface as
  // TransportError — never a partial decode or an INVALID_ARGUMENT-style
  // ProtocolError.
  PlanReply reply;
  reply.makespan_ms = 17.5;
  reply.bandwidth_bucket_mbps = 10.0;
  reply.mix.push_back({3, 4});
  const std::string payload = encode_plan_reply(reply);
  std::string frame;
  for (int shift = 0; shift < 32; shift += 8)
    frame.push_back(static_cast<char>((payload.size() >> shift) & 0xFF));
  frame += payload;

  for (std::size_t len = 0; len < frame.size(); ++len) {
    StreamPair pair = make_in_process_pair();
    std::thread server([end = std::move(pair.second), &frame, len]() mutable {
      try {
        (void)read_frame(*end);  // consume the request
        if (len > 0) end->write(frame.data(), len);
      } catch (const std::exception&) {
      }
      end->close();  // peer dies mid-frame; buffered bytes still drain
    });

    ClientRetryOptions options;
    options.read_timeout_ms = 2000.0;  // fail loudly instead of hanging
    Client client(std::move(pair.first), options);
    EXPECT_THROW((void)client.plan(sample_request()), TransportError)
        << "prefix of " << len << " bytes";
    server.join();
  }
}

// ---- Retry behavior ------------------------------------------------------

TEST(ClientResilience, RetryReconnectsAfterPeerDeath) {
  // Connection 1 is dead on arrival; the factory's connection 2 answers.
  StreamPair dead = make_in_process_pair();
  dead.second->close();

  std::thread responder;
  StreamFactory factory = [&] {
    StreamPair fresh = make_in_process_pair();
    responder = std::thread(
        [end = std::move(fresh.second)] { respond_loop(*end); });
    return std::move(fresh.first);
  };

  ClientRetryOptions options;
  options.max_attempts = 3;
  options.backoff = fast_backoff();
  options.read_timeout_ms = 2000.0;
  Client client(std::move(dead.first), options, factory);

  const PlanReply reply = client.plan(sample_request());
  EXPECT_TRUE(reply.ok());
  EXPECT_DOUBLE_EQ(reply.makespan_ms, 42.0);
  EXPECT_EQ(client.stats().reconnects, 1u);
  EXPECT_GE(client.stats().retries, 1u);
  client.close();
  responder.join();
}

TEST(ClientResilience, RetryableStatusRetriesOnTheSameConnection) {
  StreamPair pair = make_in_process_pair();
  std::thread server([end = std::move(pair.second)] {
    respond_loop(*end, {Status::kUnavailable, Status::kOk});
  });

  ClientRetryOptions options;
  options.max_attempts = 3;
  options.backoff = fast_backoff();
  options.read_timeout_ms = 2000.0;
  Client client(std::move(pair.first), options);  // note: no factory

  const PlanReply reply = client.plan(sample_request());
  EXPECT_TRUE(reply.ok());
  EXPECT_EQ(client.stats().attempts, 2u);
  EXPECT_EQ(client.stats().retries, 1u);
  EXPECT_EQ(client.stats().reconnects, 0u);
  client.close();
  server.join();
}

TEST(ClientResilience, NonRetryableStatusReturnsImmediately) {
  StreamPair pair = make_in_process_pair();
  std::thread server([end = std::move(pair.second)] {
    respond_loop(*end, {Status::kNotFound});
  });

  ClientRetryOptions options;
  options.max_attempts = 3;
  options.backoff = fast_backoff();
  Client client(std::move(pair.first), options);

  const PlanReply reply = client.plan(sample_request());
  EXPECT_EQ(reply.status, Status::kNotFound);
  EXPECT_EQ(client.stats().attempts, 1u);
  EXPECT_EQ(client.stats().retries, 0u);
  client.close();
  server.join();
}

TEST(ClientResilience, ProtocolErrorNeverRetries) {
  // A well-framed but undecodable reply: the peer will be just as wrong
  // next time, so the client must throw without touching the factory.
  StreamPair pair = make_in_process_pair();
  std::thread server([end = std::move(pair.second)] {
    try {
      (void)read_frame(*end);
      write_frame(*end, "\xFF\xFF\xFF garbage");
      while (read_frame(*end)) {
      }
    } catch (const std::exception&) {
    }
  });

  std::atomic<int> factory_calls{0};
  StreamFactory factory = [&]() -> std::unique_ptr<ByteStream> {
    ++factory_calls;
    return nullptr;
  };
  ClientRetryOptions options;
  options.max_attempts = 3;
  options.backoff = fast_backoff();
  options.read_timeout_ms = 2000.0;
  Client client(std::move(pair.first), options, factory);

  EXPECT_THROW((void)client.plan(sample_request()), ProtocolError);
  EXPECT_EQ(factory_calls.load(), 0);
  EXPECT_EQ(client.stats().attempts, 1u);
  client.close();
  server.join();
}

TEST(ClientResilience, ExhaustedAttemptsRethrowTheTransportError) {
  // Every connection the factory makes is already dead.
  auto dead_stream = [] {
    StreamPair pair = make_in_process_pair();
    pair.second->close();
    return std::move(pair.first);
  };

  ClientRetryOptions options;
  options.max_attempts = 3;
  options.backoff = fast_backoff();
  options.read_timeout_ms = 2000.0;
  Client client(dead_stream(), options, dead_stream);

  EXPECT_THROW((void)client.plan(sample_request()), TransportError);
  EXPECT_EQ(client.stats().attempts, 3u);
  EXPECT_EQ(client.stats().reconnects, 2u);
}

// ---- Hedging -------------------------------------------------------------

TEST(ClientResilience, HedgeResendsOnTailLatency) {
  // The first connection answers 4 requests quickly (building the latency
  // window), then goes silent; the hedge must abandon it and resend on a
  // fresh connection instead of waiting out the hard deadline.
  constexpr int kWarmup = 4;
  StreamPair pair = make_in_process_pair();
  std::thread first([end = std::move(pair.second)] {
    try {
      for (int i = 0; i < kWarmup; ++i) {
        const auto payload = read_frame(*end);
        if (!payload) return;
        PlanReply reply;
        reply.makespan_ms = 1.0;
        write_frame(*end, encode_plan_reply(reply));
      }
      silent_loop(*end);  // request kWarmup+1 never gets its reply
    } catch (const std::exception&) {
    }
  });

  std::thread responder;
  StreamFactory factory = [&] {
    StreamPair fresh = make_in_process_pair();
    responder = std::thread(
        [end = std::move(fresh.second)] { respond_loop(*end); });
    return std::move(fresh.first);
  };

  ClientRetryOptions options;
  options.hedge = true;
  options.hedge_min_samples = kWarmup;
  options.hedge_multiplier = 2.0;
  options.hedge_min_ms = 10.0;
  options.read_timeout_ms = 5000.0;  // the hedge must fire long before this
  Client client(std::move(pair.first), options, factory);

  const PlanRequest request = sample_request();
  for (int i = 0; i < kWarmup; ++i) EXPECT_TRUE(client.plan(request).ok());
  EXPECT_EQ(client.stats().hedges, 0u);

  const PlanReply reply = client.plan(request);
  EXPECT_TRUE(reply.ok());
  EXPECT_DOUBLE_EQ(reply.makespan_ms, 42.0);
  EXPECT_EQ(client.stats().hedges, 1u);
  EXPECT_EQ(client.stats().reconnects, 1u);
  client.close();
  first.join();
  responder.join();
}

// ---- Backoff shape -------------------------------------------------------

TEST(ClientResilience, BackoffIsDeterministicPerSeedAndBounded) {
  fault::RetryPolicy policy;
  policy.backoff_base_ms = 10.0;
  policy.backoff_factor = 2.0;
  policy.backoff_max_ms = 100.0;

  util::Rng a(42);
  util::Rng b(42);
  util::Rng c(43);
  bool any_difference = false;
  for (int attempt = 1; attempt <= 16; ++attempt) {
    const double d1 = fault::backoff_delay_ms(policy, attempt, a,
                                              /*full_jitter=*/true);
    const double d2 = fault::backoff_delay_ms(policy, attempt, b,
                                              /*full_jitter=*/true);
    const double d3 = fault::backoff_delay_ms(policy, attempt, c,
                                              /*full_jitter=*/true);
    EXPECT_EQ(d1, d2) << "attempt " << attempt;  // same seed, same delay
    any_difference |= d1 != d3;
    EXPECT_GT(d1, 0.0);
    EXPECT_LE(d1, policy.backoff_max_ms);
  }
  // Different seeds must actually de-synchronize the fleet.
  EXPECT_TRUE(any_difference);
}

}  // namespace
}  // namespace jps::serve
