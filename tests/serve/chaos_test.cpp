#include "serve/chaos.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <utility>

#include "fault/fault_spec.h"
#include "serve/protocol.h"
#include "serve/transport.h"

namespace jps::serve {
namespace {

fault::FaultSpec parse(const std::string& body) {
  return fault::FaultSpec::parse("jps-faults v1\n" + body);
}

std::string read_all(ByteStream& stream, std::size_t want) {
  std::string out;
  char buf[256];
  while (out.size() < want) {
    const std::size_t n =
        stream.read(buf, std::min(sizeof(buf), want - out.size()));
    if (n == 0) break;
    out.append(buf, n);
  }
  return out;
}

TEST(ChaosTransport, CleanSpecIsTransparent) {
  StreamPair pair = make_in_process_pair();
  FaultyByteStream faulty(std::move(pair.first), fault::FaultSpec{});
  pair.second->write("hello", 5);
  EXPECT_EQ(read_all(faulty, 5), "hello");
  faulty.write("world", 5);
  EXPECT_EQ(read_all(*pair.second, 5), "world");
  const ChaosStats stats = faulty.stats();
  EXPECT_EQ(stats.delayed_ops, 0u);
  EXPECT_EQ(stats.short_ops, 0u);
  EXPECT_EQ(stats.corrupted_bytes, 0u);
  EXPECT_FALSE(stats.dropped);
}

TEST(ChaosTransport, ShortWindowClipsToOneByteButLosesNothing) {
  StreamPair pair = make_in_process_pair();
  FaultyByteStream faulty(std::move(pair.first), parse("net_short 0 1000\n"));

  pair.second->write("abcdef", 6);
  char buf[16];
  // Every read in the window returns exactly 1 byte even though more is
  // buffered.
  EXPECT_EQ(faulty.read(buf, sizeof(buf)), 1u);
  EXPECT_EQ(buf[0], 'a');
  EXPECT_EQ(read_all(faulty, 5), "bcdef");

  // Writes still deliver everything (the decorator loops internally).
  faulty.write("123456", 6);
  EXPECT_EQ(read_all(*pair.second, 6), "123456");
  EXPECT_GT(faulty.stats().short_ops, 0u);
}

TEST(ChaosTransport, CorruptWindowXorsExactlyTheScriptedBytes) {
  StreamPair pair = make_in_process_pair();
  // Read offsets [2, 4) XORed with 0xFF; everything else untouched.
  FaultyByteStream faulty(std::move(pair.first), parse("net_corrupt 2 4 255\n"));
  pair.second->write("abcdef", 6);
  const std::string got = read_all(faulty, 6);
  ASSERT_EQ(got.size(), 6u);
  EXPECT_EQ(got[0], 'a');
  EXPECT_EQ(got[1], 'b');
  EXPECT_EQ(got[2], static_cast<char>('c' ^ 0xFF));
  EXPECT_EQ(got[3], static_cast<char>('d' ^ 0xFF));
  EXPECT_EQ(got[4], 'e');
  EXPECT_EQ(got[5], 'f');
  EXPECT_EQ(faulty.stats().corrupted_bytes, 2u);

  // Writes are never corrupted (that would test the peer, not us).
  faulty.write("XYZW", 4);
  EXPECT_EQ(read_all(*pair.second, 4), "XYZW");
}

TEST(ChaosTransport, DropOnWriteDeliversPrefixThenThrows) {
  StreamPair pair = make_in_process_pair();
  FaultyByteStream faulty(std::move(pair.first), parse("net_drop 4 1000\n"));
  // Write offset reaches 4 mid-call: the first 4 bytes are delivered, the
  // connection then dies — exactly a peer crashing mid-frame.
  EXPECT_THROW(faulty.write("abcdefgh", 8), std::runtime_error);
  EXPECT_EQ(read_all(*pair.second, 4), "abcd");
  EXPECT_TRUE(faulty.stats().dropped);
  // Dead in both directions afterwards.
  char buf[4];
  EXPECT_EQ(faulty.read(buf, sizeof(buf)), 0u);
  EXPECT_THROW(faulty.write("x", 1), std::runtime_error);
}

TEST(ChaosTransport, DropOnReadLooksLikeEof) {
  StreamPair pair = make_in_process_pair();
  FaultyByteStream faulty(std::move(pair.first), parse("net_drop 3 1000\n"));
  pair.second->write("abcdef", 6);
  // Reads deliver up to the drop boundary, then EOF.
  EXPECT_EQ(read_all(faulty, 6), "abc");
  char buf[4];
  EXPECT_EQ(faulty.read(buf, sizeof(buf)), 0u);
  EXPECT_TRUE(faulty.stats().dropped);
}

TEST(ChaosTransport, DelayWindowCountsOps) {
  StreamPair pair = make_in_process_pair();
  FaultyByteStream faulty(std::move(pair.first), parse("net_delay 0 100 0.1\n"));
  faulty.write("abc", 3);
  EXPECT_EQ(read_all(*pair.second, 3), "abc");
  pair.second->write("xyz", 3);
  EXPECT_EQ(read_all(faulty, 3), "xyz");
  EXPECT_GE(faulty.stats().delayed_ops, 2u);
}

TEST(ChaosTransport, DelayScaleZeroDisablesSleepsButStillCounts) {
  StreamPair pair = make_in_process_pair();
  FaultyByteStream faulty(std::move(pair.first), parse("net_delay 0 100 50\n"),
                          /*delay_scale=*/0.0);
  faulty.write("abc", 3);  // would sleep 50 ms per op at scale 1
  EXPECT_EQ(read_all(*pair.second, 3), "abc");
  EXPECT_GE(faulty.stats().delayed_ops, 1u);
}

TEST(ChaosTransport, FramesSurviveShortAndDelayWindows) {
  // End-to-end over the frame layer: a frame pushed through 1-byte
  // transfers and delays arrives bit-identical.
  StreamPair pair = make_in_process_pair();
  FaultyByteStream faulty(
      std::move(pair.first),
      parse("net_short 0 4096\nnet_delay 0 64 0.05\n"));
  const std::string payload(300, '\x5A');
  std::thread writer([&] { write_frame(faulty, payload); });
  const auto got = read_frame(*pair.second);
  writer.join();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);
}

TEST(ChaosTransport, TimelineKindsAreIgnored) {
  // A spec mixing timeline and net kinds: the decorator only consumes
  // net_*, symmetric with FaultTimeline skipping net_*.
  StreamPair pair = make_in_process_pair();
  FaultyByteStream faulty(
      std::move(pair.first),
      parse("drift 0 100 5\noutage 200 300\nnet_corrupt 0 1 1\n"));
  pair.second->write("a", 1);
  char buf[1];
  ASSERT_EQ(faulty.read(buf, 1), 1u);
  EXPECT_EQ(buf[0], static_cast<char>('a' ^ 0x01));
}

}  // namespace
}  // namespace jps::serve
