// Wire-protocol codec: round-trips and the negative paths a server facing
// untrusted bytes must survive (truncation, oversized lengths, trailing
// garbage, unknown codes).
#include "serve/protocol.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "serve/transport.h"

namespace jps::serve {
namespace {

using namespace std::string_literals;

PlanRequest sample_request() {
  PlanRequest request;
  request.tenant = "tenant-a";
  request.model = "alexnet";
  request.bandwidth_mbps = 7.375;
  request.strategy = core::Strategy::kJPSTuned;
  request.n_jobs = 12;
  return request;
}

PlanReply sample_reply() {
  PlanReply reply;
  reply.status = Status::kOk;
  reply.message = "";
  reply.coalesced = true;
  reply.cache_hit = false;
  reply.bandwidth_bucket_mbps = 7.25;
  reply.makespan_ms = 123.456789;
  reply.mix = {{2, 5}, {3, 7}};
  return reply;
}

TEST(Protocol, PlanRequestRoundTrip) {
  const PlanRequest request = sample_request();
  const std::string payload = encode_plan_request(request);
  EXPECT_EQ(peek_op(payload), Op::kPlan);
  EXPECT_EQ(decode_plan_request(payload), request);
}

TEST(Protocol, PlanReplyRoundTrip) {
  const PlanReply reply = sample_reply();
  const std::string payload = encode_plan_reply(reply);
  EXPECT_EQ(peek_op(payload), Op::kPlanReply);
  EXPECT_EQ(decode_plan_reply(payload), reply);
}

TEST(Protocol, PingRoundTrip) {
  EXPECT_EQ(peek_op(encode_ping()), Op::kPing);
  EXPECT_EQ(peek_op(encode_ping_reply()), Op::kPingReply);
}

TEST(Protocol, NonFiniteBandwidthSurvivesTransit) {
  // NaN/Inf must decode (IEEE bit pattern round-trip) so the SERVER can
  // reject them with a status instead of the codec crashing.
  PlanRequest request = sample_request();
  request.bandwidth_mbps = std::numeric_limits<double>::quiet_NaN();
  const PlanRequest decoded = decode_plan_request(encode_plan_request(request));
  EXPECT_TRUE(std::isnan(decoded.bandwidth_mbps));

  request.bandwidth_mbps = std::numeric_limits<double>::infinity();
  EXPECT_EQ(decode_plan_request(encode_plan_request(request)).bandwidth_mbps,
            std::numeric_limits<double>::infinity());
}

TEST(Protocol, EmptyAndUnicodeStringsRoundTrip) {
  PlanRequest request = sample_request();
  request.tenant = "";
  request.model = std::string("m\xC3\xB6") + "del" + '\0' + 'x';  // UTF-8 +
                                                                  // embedded NUL

  EXPECT_EQ(decode_plan_request(encode_plan_request(request)), request);
}

TEST(Protocol, BadMagicVersionOpThrow) {
  std::string payload = encode_plan_request(sample_request());
  std::string bad = payload;
  bad[0] = 'X';
  EXPECT_THROW((void)peek_op(bad), ProtocolError);
  bad = payload;
  bad[1] = 9;
  EXPECT_THROW((void)peek_op(bad), ProtocolError);
  bad = payload;
  bad[2] = 77;
  EXPECT_THROW((void)peek_op(bad), ProtocolError);
}

TEST(Protocol, TruncatedPayloadThrows) {
  const std::string payload = encode_plan_request(sample_request());
  for (const std::size_t keep : {std::size_t{0}, std::size_t{2},
                                 payload.size() / 2, payload.size() - 1}) {
    EXPECT_THROW((void)decode_plan_request(payload.substr(0, keep)),
                 ProtocolError)
        << "keep=" << keep;
  }
}

TEST(Protocol, TrailingBytesThrow) {
  EXPECT_THROW(
      (void)decode_plan_request(encode_plan_request(sample_request()) + "x"),
      ProtocolError);
  EXPECT_THROW(
      (void)decode_plan_reply(encode_plan_reply(sample_reply()) + "\0"s),
      ProtocolError);
}

TEST(Protocol, WrongOpForDecoderThrows) {
  EXPECT_THROW((void)decode_plan_request(encode_plan_reply(sample_reply())),
               ProtocolError);
  EXPECT_THROW((void)decode_plan_reply(encode_plan_request(sample_request())),
               ProtocolError);
  EXPECT_THROW((void)decode_plan_request(encode_ping()), ProtocolError);
}

TEST(Protocol, UnknownStrategyAndStatusCodesThrow) {
  // v3 tail layout: u8 strategy | u32 n_jobs | f64 deadline_ms
  //                 | u64 trace_hi | u64 trace_lo | u64 trace_parent_span.
  std::string payload = encode_plan_request(sample_request());
  payload[payload.size() - 37] = 0x7F;
  EXPECT_THROW((void)decode_plan_request(payload), ProtocolError);

  // v1 tail layout: u8 strategy | u32 n_jobs.
  std::string v1 = encode_plan_request(sample_request(), /*version=*/1);
  v1[v1.size() - 5] = 0x7F;
  EXPECT_THROW((void)decode_plan_request(v1), ProtocolError);

  std::string reply = encode_plan_reply(sample_reply());
  reply[3] = 0x7F;  // status byte right after the header
  EXPECT_THROW((void)decode_plan_reply(reply), ProtocolError);
}

TEST(Protocol, HostileMixCountRefusedBeforeAllocation) {
  PlanReply reply = sample_reply();
  reply.mix.clear();
  std::string payload = encode_plan_reply(reply);
  // Patch the trailing u32 mix_count to 0xFFFFFFFF with no entries behind it.
  for (std::size_t i = payload.size() - 4; i < payload.size(); ++i)
    payload[i] = static_cast<char>(0xFF);
  EXPECT_THROW((void)decode_plan_reply(payload), ProtocolError);
}

TEST(Versioning, V2RequestCarriesTheDeadline) {
  PlanRequest request = sample_request();
  request.deadline_ms = 12.5;
  const std::string payload = encode_plan_request(request);
  EXPECT_EQ(peek_version(payload), kVersion);
  const PlanRequest decoded = decode_plan_request(payload);
  EXPECT_DOUBLE_EQ(decoded.deadline_ms, 12.5);
  EXPECT_EQ(decoded, request);
}

TEST(Versioning, V1RequestDecodesWithNoDeadline) {
  // An old client cannot express a deadline; the field must come back 0
  // ("no deadline"), never garbage.
  PlanRequest request = sample_request();
  request.deadline_ms = 99.0;  // dropped by the v1 encoder
  const std::string payload = encode_plan_request(request, /*version=*/1);
  EXPECT_EQ(peek_version(payload), 1);
  const PlanRequest decoded = decode_plan_request(payload);
  EXPECT_DOUBLE_EQ(decoded.deadline_ms, 0.0);
  request.deadline_ms = 0.0;
  EXPECT_EQ(decoded, request);
}

TEST(Versioning, V1ReplyDowngradesStaleToOkButKeepsTheFlag) {
  PlanReply reply = sample_reply();
  reply.status = Status::kOkStale;
  reply.stale = true;
  const PlanReply decoded =
      decode_plan_reply(encode_plan_reply(reply, /*version=*/1));
  EXPECT_EQ(decoded.status, Status::kOk);  // v1 client sees a usable plan
  EXPECT_TRUE(decoded.stale);              // the flag bit survives
  EXPECT_TRUE(decoded.has_plan());
}

TEST(Versioning, V1ReplyDowngradesDeadlineExceededToUnavailable) {
  PlanReply reply;
  reply.status = Status::kDeadlineExceeded;
  reply.message = "deadline";
  const PlanReply decoded =
      decode_plan_reply(encode_plan_reply(reply, /*version=*/1));
  // Both mean "retry later" to a v1 client; retryability is preserved.
  EXPECT_EQ(decoded.status, Status::kUnavailable);
  EXPECT_TRUE(status_is_retryable(decoded.status));
}

TEST(Versioning, V2ReplyRoundTripsTheNewStatuses) {
  for (const Status s : {Status::kOkStale, Status::kDeadlineExceeded}) {
    PlanReply reply = sample_reply();
    reply.status = s;
    if (s == Status::kOkStale) reply.stale = true;
    EXPECT_EQ(decode_plan_reply(encode_plan_reply(reply)).status, s);
  }
}

TEST(Versioning, OutOfRangeVersionsAreRefused) {
  const PlanRequest request = sample_request();
  EXPECT_THROW((void)encode_plan_request(request, 0), ProtocolError);
  EXPECT_THROW((void)encode_plan_request(request, kVersion + 1),
               ProtocolError);
  // A frame claiming a future version is rejected at the header.
  std::string payload = encode_plan_request(request);
  payload[1] = static_cast<char>(kVersion + 1);
  EXPECT_THROW((void)peek_version(payload), ProtocolError);
  EXPECT_THROW((void)decode_plan_request(payload), ProtocolError);
}

TEST(Protocol, RetryableStatusVocabulary) {
  EXPECT_TRUE(status_is_retryable(Status::kUnavailable));
  EXPECT_TRUE(status_is_retryable(Status::kDeadlineExceeded));
  EXPECT_FALSE(status_is_retryable(Status::kOk));
  EXPECT_FALSE(status_is_retryable(Status::kOkStale));
  EXPECT_FALSE(status_is_retryable(Status::kInvalidArgument));
  EXPECT_FALSE(status_is_retryable(Status::kNotFound));
  EXPECT_FALSE(status_is_retryable(Status::kResourceExhausted));
  EXPECT_FALSE(status_is_retryable(Status::kInternal));
}

TEST(Framing, RoundTripAndCleanEof) {
  StreamPair pair = make_in_process_pair();
  write_frame(*pair.first, "hello");
  write_frame(*pair.first, "");  // empty frames are legal
  pair.first->close();
  EXPECT_EQ(read_frame(*pair.second), "hello");
  EXPECT_EQ(read_frame(*pair.second), "");
  EXPECT_EQ(read_frame(*pair.second), std::nullopt);  // clean EOF
}

TEST(Framing, TruncatedLengthPrefixThrows) {
  StreamPair pair = make_in_process_pair();
  pair.first->write("\x05\x00", 2);  // half a length prefix, then EOF
  pair.first->close();
  EXPECT_THROW((void)read_frame(*pair.second), ProtocolError);
}

TEST(Framing, TruncatedPayloadThrows) {
  StreamPair pair = make_in_process_pair();
  pair.first->write("\x05\x00\x00\x00ab", 6);  // promises 5 bytes, sends 2
  pair.first->close();
  EXPECT_THROW((void)read_frame(*pair.second), ProtocolError);
}

TEST(Framing, OversizedLengthRefusedBeforeAllocation) {
  StreamPair pair = make_in_process_pair();
  pair.first->write("\xFF\xFF\xFF\xFF", 4);  // 4 GiB frame announcement
  EXPECT_THROW((void)read_frame(*pair.second), ProtocolError);
  EXPECT_THROW(write_frame(*pair.first,
                           std::string(kMaxFrameBytes + 1, 'x')),
               ProtocolError);
}

}  // namespace
}  // namespace jps::serve
