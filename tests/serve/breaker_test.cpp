#include "serve/breaker.h"

#include <gtest/gtest.h>

#include <string>

namespace jps::serve {
namespace {

BreakerOptions small_breaker() {
  BreakerOptions options;
  options.window = 8;
  options.min_samples = 4;
  options.failure_ratio = 0.5;
  options.cooldown_ms = 100.0;
  return options;
}

TEST(CircuitBreaker, StaysClosedOnHealthyTraffic) {
  CircuitBreaker breaker(small_breaker());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(breaker.admit("t", i), CircuitBreaker::Decision::kClosed);
    breaker.record("t", i, /*failure=*/false, /*latency_ms=*/1.0);
  }
  EXPECT_FALSE(breaker.open("t", 100.0));
  EXPECT_EQ(breaker.opens(), 0u);
}

TEST(CircuitBreaker, SingleEarlyFailureDoesNotOpen) {
  CircuitBreaker breaker(small_breaker());
  breaker.record("t", 0.0, /*failure=*/true, 1.0);
  // Only 1 outcome < min_samples of 4: no judgement yet.
  EXPECT_EQ(breaker.admit("t", 1.0), CircuitBreaker::Decision::kClosed);
}

TEST(CircuitBreaker, OpensAtFailureRatioAndServesOpenUntilCooldown) {
  CircuitBreaker breaker(small_breaker());
  for (int i = 0; i < 4; ++i) breaker.record("t", i, /*failure=*/true, 1.0);
  EXPECT_TRUE(breaker.open("t", 4.0));
  EXPECT_EQ(breaker.opens(), 1u);
  // Before the cooldown: open.
  EXPECT_EQ(breaker.admit("t", 50.0), CircuitBreaker::Decision::kOpen);
  // After the cooldown: exactly one probe; concurrent admits stay open.
  EXPECT_EQ(breaker.admit("t", 104.0), CircuitBreaker::Decision::kProbe);
  EXPECT_EQ(breaker.admit("t", 105.0), CircuitBreaker::Decision::kOpen);
}

TEST(CircuitBreaker, ProbeSuccessClosesAndClearsHistory) {
  CircuitBreaker breaker(small_breaker());
  for (int i = 0; i < 4; ++i) breaker.record("t", i, /*failure=*/true, 1.0);
  ASSERT_EQ(breaker.admit("t", 104.0), CircuitBreaker::Decision::kProbe);
  breaker.record("t", 105.0, /*failure=*/false, 1.0);
  EXPECT_FALSE(breaker.open("t", 106.0));
  // History cleared: one subsequent failure must not re-open instantly.
  breaker.record("t", 107.0, /*failure=*/true, 1.0);
  EXPECT_EQ(breaker.admit("t", 108.0), CircuitBreaker::Decision::kClosed);
}

TEST(CircuitBreaker, ProbeFailureRearmsTheCooldown) {
  CircuitBreaker breaker(small_breaker());
  for (int i = 0; i < 4; ++i) breaker.record("t", i, /*failure=*/true, 1.0);
  ASSERT_EQ(breaker.admit("t", 104.0), CircuitBreaker::Decision::kProbe);
  breaker.record("t", 105.0, /*failure=*/true, 1.0);
  // Re-opened at 105: still open at 150, probes again at 205+.
  EXPECT_EQ(breaker.admit("t", 150.0), CircuitBreaker::Decision::kOpen);
  EXPECT_EQ(breaker.admit("t", 206.0), CircuitBreaker::Decision::kProbe);
}

TEST(CircuitBreaker, CancelProbeReturnsTheSlot) {
  CircuitBreaker breaker(small_breaker());
  for (int i = 0; i < 4; ++i) breaker.record("t", i, /*failure=*/true, 1.0);
  ASSERT_EQ(breaker.admit("t", 104.0), CircuitBreaker::Decision::kProbe);
  // The probe was shed before planning; without cancel the breaker would
  // wait for an outcome that never comes.
  breaker.cancel_probe("t");
  EXPECT_EQ(breaker.admit("t", 105.0), CircuitBreaker::Decision::kProbe);
}

TEST(CircuitBreaker, SlowSuccessesCountWhenThresholdSet) {
  BreakerOptions options = small_breaker();
  options.latency_threshold_ms = 10.0;
  CircuitBreaker breaker(options);
  for (int i = 0; i < 4; ++i)
    breaker.record("t", i, /*failure=*/false, /*latency_ms=*/50.0);
  EXPECT_TRUE(breaker.open("t", 4.0));
}

TEST(CircuitBreaker, LatencyIgnoredWithoutThreshold) {
  CircuitBreaker breaker(small_breaker());
  for (int i = 0; i < 8; ++i)
    breaker.record("t", i, /*failure=*/false, /*latency_ms=*/1e6);
  EXPECT_FALSE(breaker.open("t", 8.0));
}

TEST(CircuitBreaker, TenantsAreIndependent) {
  CircuitBreaker breaker(small_breaker());
  for (int i = 0; i < 4; ++i) breaker.record("bad", i, /*failure=*/true, 1.0);
  EXPECT_TRUE(breaker.open("bad", 4.0));
  EXPECT_EQ(breaker.admit("good", 5.0), CircuitBreaker::Decision::kClosed);
  EXPECT_EQ(breaker.open_count(), 1u);
}

TEST(CircuitBreaker, RollingWindowForgetsOldFailures) {
  CircuitBreaker breaker(small_breaker());
  // Failures spaced below the trip ratio, then a long run of successes
  // pushes them out of the window entirely.
  breaker.record("t", 0.0, /*failure=*/true, 1.0);
  for (int i = 1; i < 4; ++i) breaker.record("t", i, /*failure=*/false, 1.0);
  breaker.record("t", 4.0, /*failure=*/true, 1.0);
  for (int i = 5; i < 20; ++i) breaker.record("t", i, /*failure=*/false, 1.0);
  // One fresh failure against a window now full of successes: closed.
  breaker.record("t", 20.0, /*failure=*/true, 1.0);
  EXPECT_EQ(breaker.admit("t", 21.0), CircuitBreaker::Decision::kClosed);
}

TEST(CircuitBreaker, RecordsWhileOpenAreIgnored) {
  CircuitBreaker breaker(small_breaker());
  for (int i = 0; i < 4; ++i) breaker.record("t", i, /*failure=*/true, 1.0);
  ASSERT_TRUE(breaker.open("t", 4.0));
  // A straggler success from the pre-open era must not settle anything.
  breaker.record("t", 5.0, /*failure=*/false, 1.0);
  EXPECT_TRUE(breaker.open("t", 6.0));
}

}  // namespace
}  // namespace jps::serve
