// The acceptance stress: 16 concurrent clients, mixed tenants, repeated
// (model, bandwidth-bucket) pairs, full wire protocol over in-process
// streams.  Demonstrates (under TSan in CI):
//   * coalescing engages (coalesce-hit counter > 0),
//   * every OK reply is bit-identical to a direct Planner::plan run,
//   * overload sheds RESOURCE_EXHAUSTED instead of deadlocking,
//   * the server drains cleanly afterwards.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/planner.h"
#include "models/registry.h"
#include "net/channel.h"
#include "partition/profile_curve.h"
#include "profile/latency_model.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/transport.h"

namespace jps::serve {
namespace {

constexpr int kClients = 16;
constexpr int kRequestsPerClient = 24;

struct Expected {
  double makespan = 0.0;
  std::map<std::uint32_t, std::uint32_t> mix;
};

TEST(ServeStress, SixteenConcurrentClientsMixedTenants) {
  ServerOptions options;
  options.workers = 4;
  options.max_inflight = 6;  // small enough that bursts shed
  options.bandwidth_bucket_mbps = 0.25;
  Server server(options);

  // Request mix: 2 models x 2 bandwidth buckets x 2 job counts = 8 distinct
  // keys shared by 16 clients, so identical requests collide constantly.
  std::vector<PlanRequest> mix;
  for (const char* model : {"alexnet", "nin"}) {
    for (const double mbps : {3.1, 24.9}) {
      for (const int jobs : {4, 9}) {
        PlanRequest request;
        request.model = model;
        request.bandwidth_mbps = mbps;
        request.strategy = core::Strategy::kJPS;
        request.n_jobs = jobs;
        mix.push_back(request);
      }
    }
  }

  // Ground truth, computed directly before any serving starts.
  const profile::LatencyModel mobile(options.device);
  std::vector<Expected> expected;
  for (const PlanRequest& request : mix) {
    const double bucket = quantize_bandwidth(request.bandwidth_mbps,
                                             options.bandwidth_bucket_mbps);
    const dnn::Graph graph = models::build(request.model);
    const auto curve =
        partition::ProfileCurve::build(graph, mobile, net::Channel(bucket));
    const core::ExecutionPlan plan =
        core::Planner(curve).plan(request.strategy, request.n_jobs);
    Expected e;
    e.makespan = plan.predicted_makespan;
    for (const core::JobAssignment& job : plan.jobs)
      ++e.mix[static_cast<std::uint32_t>(job.cut_index)];
    expected.push_back(std::move(e));
  }

  std::atomic<int> ok_replies{0};
  std::atomic<int> shed_replies{0};
  std::atomic<int> mismatches{0};
  std::atomic<int> client_errors{0};

  std::vector<std::thread> server_threads;
  std::vector<std::thread> client_threads;
  for (int c = 0; c < kClients; ++c) {
    StreamPair pair = make_in_process_pair();
    server_threads.emplace_back(
        [&server, s = std::shared_ptr<ByteStream>(std::move(pair.first))] {
          server.handle_connection(*s);
        });
    client_threads.emplace_back([&, c,
                                 end = std::shared_ptr<ByteStream>(
                                     std::move(pair.second))]() mutable {
      try {
        Client client(std::make_unique<BorrowedStream>(end));
        for (int r = 0; r < kRequestsPerClient; ++r) {
          const std::size_t k = static_cast<std::size_t>(c + r) % mix.size();
          PlanRequest request = mix[k];
          request.tenant = "tenant-" + std::to_string(c % 4);  // mixed tenants
          const PlanReply reply = client.plan(request);
          if (reply.status == Status::kResourceExhausted) {
            shed_replies.fetch_add(1);
            continue;  // shed is an acceptable answer under load
          }
          if (!reply.ok()) {
            mismatches.fetch_add(1);
            continue;
          }
          ok_replies.fetch_add(1);
          // Bit-identity: makespan AND mix must equal the direct run.
          const Expected& want = expected[k];
          bool same = reply.makespan_ms == want.makespan &&
                      reply.mix.size() == want.mix.size();
          if (same) {
            for (const CutMix& m : reply.mix)
              same = same && want.mix.count(m.cut) != 0 &&
                     want.mix.at(m.cut) == m.count;
          }
          if (!same) mismatches.fetch_add(1);
        }
        client.close();
      } catch (const std::exception&) {
        client_errors.fetch_add(1);
      }
    });
  }

  for (std::thread& t : client_threads) t.join();
  for (std::thread& t : server_threads) t.join();
  server.stop();

  const ServerStats stats = server.stats();
  EXPECT_EQ(client_errors.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GT(ok_replies.load(), 0);
  EXPECT_EQ(ok_replies.load() + shed_replies.load(),
            kClients * kRequestsPerClient);
  EXPECT_EQ(stats.requests,
            static_cast<std::uint64_t>(kClients * kRequestsPerClient));
  // 16 clients hammering 8 keys: coalescing must have engaged.
  EXPECT_GT(stats.coalesce_hits, 0u);
  // Shedding is load-dependent (may be 0 on a fast machine) but must be
  // consistent with what clients saw.
  EXPECT_EQ(stats.shed_overload,
            static_cast<std::uint64_t>(shed_replies.load()));
  // Nothing leaked: all computations finished, the map is empty.
  EXPECT_EQ(server.inflight(), 0u);
}

TEST(ServeStress, DrainUnderLoadNeverDeadlocks) {
  ServerOptions options;
  options.workers = 2;
  options.debug_plan_delay_ms = 5.0;
  Server server(options);

  std::vector<std::thread> server_threads;
  std::vector<std::thread> client_threads;
  std::atomic<int> replies{0};
  for (int c = 0; c < 8; ++c) {
    StreamPair pair = make_in_process_pair();
    server_threads.emplace_back(
        [&server, s = std::shared_ptr<ByteStream>(std::move(pair.first))] {
          server.handle_connection(*s);
        });
    client_threads.emplace_back([&, c,
                                 end = std::shared_ptr<ByteStream>(
                                     std::move(pair.second))]() {
      try {
        for (int r = 0; r < 50; ++r) {
          PlanRequest request;
          request.tenant = "t";
          request.model = "alexnet";
          request.bandwidth_mbps = 1.0 + c;
          request.n_jobs = 2;
          write_frame(*end, encode_plan_request(request));
          const auto payload = read_frame(*end);
          if (!payload) return;  // server drained us mid-run: fine
          replies.fetch_add(1);
        }
      } catch (const std::exception&) {
        // Writes may fail once the server half-closes: also fine.
      }
    });
  }

  // Let some traffic flow, then drain while clients are still sending.
  while (replies.load() < 20) std::this_thread::yield();
  server.stop();  // must not deadlock (ThreadPool shutdown contract)

  for (std::thread& t : client_threads) t.join();
  for (std::thread& t : server_threads) t.join();
  EXPECT_TRUE(server.stopped());
  EXPECT_EQ(server.inflight(), 0u);
}

}  // namespace
}  // namespace jps::serve
