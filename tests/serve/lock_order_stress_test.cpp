// Lock-order checker false-positive gate: the full 16-client serve stress
// runs with the checker in its strictest mode (kAbort, hook-captured) and
// must produce ZERO diagnostics — the server's real acquisition orders
// (stop -> snapshot/connections -> pipe, inflight -> breaker/pool,
// plan-cache -> obs registry) are all consistent, and the checker must
// agree under genuine concurrency, not just in the synthetic ABBA test.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.h"
#include "serve/server.h"
#include "serve/transport.h"
#include "util/mutex.h"

namespace jps::serve {
namespace {

constexpr int kClients = 16;
constexpr int kRequestsPerClient = 12;

TEST(LockOrderStress, SixteenClientServeStressHasZeroFalsePositives) {
  util::lockorder::reset();
  std::atomic<int> diagnostics{0};
  std::string first_report;
  util::Mutex report_mutex("test.lock_order_stress.report");
  util::lockorder::set_report_hook([&](const std::string& message) {
    diagnostics.fetch_add(1);
    util::MutexLock lock(report_mutex);
    if (first_report.empty()) first_report = message;
  });
  util::lockorder::set_mode(util::lockorder::Mode::kAbort);

  {
    ServerOptions options;
    options.workers = 4;
    options.max_inflight = 6;
    options.snapshot_path =
        ::testing::TempDir() + "/jps_lock_order_stress_snapshot.bin";
    options.snapshot_interval_ms = 5.0;  // exercise the timer thread's locks
    Server server(options);

    std::vector<std::thread> server_threads;
    std::vector<std::thread> client_threads;
    std::atomic<int> replies{0};
    for (int c = 0; c < kClients; ++c) {
      StreamPair pair = make_in_process_pair();
      server_threads.emplace_back(
          [&server, s = std::shared_ptr<ByteStream>(std::move(pair.first))] {
            server.handle_connection(*s);
          });
      client_threads.emplace_back([&, c,
                                   end = std::shared_ptr<ByteStream>(
                                       std::move(pair.second))]() {
        try {
          Client client(std::make_unique<BorrowedStream>(end));
          for (int r = 0; r < kRequestsPerClient; ++r) {
            PlanRequest request;
            request.tenant = "tenant-" + std::to_string(c % 4);
            request.model = (c + r) % 2 == 0 ? "alexnet" : "nin";
            request.bandwidth_mbps = 2.0 + (c + r) % 3;
            request.n_jobs = 2 + r % 3;
            (void)client.plan(request);
            replies.fetch_add(1);
          }
          client.close();
        } catch (const std::exception&) {
          // Transport errors are not what this test gates on.
        }
      });
    }
    for (std::thread& t : client_threads) t.join();
    for (std::thread& t : server_threads) t.join();
    server.stop();  // drain path: stop -> snapshot/connections -> pipe
    EXPECT_GT(replies.load(), 0);
  }

  util::lockorder::set_mode(util::lockorder::Mode::kOff);
  util::lockorder::set_report_hook(nullptr);
  util::lockorder::reset();

  EXPECT_EQ(diagnostics.load(), 0) << "unexpected diagnostic: " << first_report;
}

}  // namespace
}  // namespace jps::serve
