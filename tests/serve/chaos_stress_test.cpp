// Chaos + concurrency acceptance (runs under TSan in CI): 16 mixed-tenant
// clients push the full wire protocol through FaultyByteStream decorators
// while the server handles them on worker threads, then a second scenario
// drains the server mid-fault.  The chaos here is LOSSLESS (delay + short
// windows only — no drops, no corruption), so the PR's serve invariant must
// hold exactly: every admitted request gets exactly one reply, and the
// server's accounting balances against what the clients observed.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "fault/fault_spec.h"
#include "serve/chaos.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/transport.h"

namespace jps::serve {
namespace {

/// Lossless chaos: 1-byte transfers for the first 512 bytes of every 4 KiB
/// of each direction, plus tiny per-op delays sprinkled throughout.  The
/// windows repeat far past what one client sends, so every request crosses
/// at least one of them.
fault::FaultSpec lossless_chaos() {
  fault::FaultSpec spec;
  for (int k = 0; k < 4096; ++k) {
    const double base = k * 4096.0;
    spec.events.push_back(
        {fault::FaultKind::kNetShort, base, base + 512.0, 0.0});
    spec.events.push_back(
        {fault::FaultKind::kNetDelay, base + 512.0, base + 640.0, 0.01});
  }
  return spec;
}

TEST(ChaosStress, SixteenClientsThroughLosslessChaos) {
  ServerOptions options;
  options.workers = 4;
  options.max_inflight = 6;
  Server server(options);

  constexpr int kClients = 16;
  constexpr int kRequestsPerClient = 12;
  const fault::FaultSpec spec = lossless_chaos();

  std::atomic<int> ok_replies{0};
  std::atomic<int> shed_replies{0};
  std::atomic<int> bad_replies{0};
  std::atomic<int> client_errors{0};

  std::vector<std::thread> server_threads;
  std::vector<std::thread> client_threads;
  for (int c = 0; c < kClients; ++c) {
    StreamPair pair = make_in_process_pair();
    server_threads.emplace_back(
        [&server, s = std::shared_ptr<ByteStream>(std::move(pair.first))] {
          server.handle_connection(*s);
        });
    client_threads.emplace_back([&, c,
                                 end = std::shared_ptr<ByteStream>(
                                     std::move(pair.second))]() mutable {
      try {
        Client client(std::make_unique<FaultyByteStream>(
            std::make_unique<BorrowedStream>(end), spec));
        for (int r = 0; r < kRequestsPerClient; ++r) {
          PlanRequest request;
          request.tenant = "tenant-" + std::to_string(c % 4);
          request.model = (c + r) % 2 == 0 ? "alexnet" : "nin";
          request.bandwidth_mbps = 2.0 + (c + r) % 3;
          request.n_jobs = 4;
          const PlanReply reply = client.plan(request);
          if (reply.ok()) {
            ok_replies.fetch_add(1);
          } else if (reply.status == Status::kResourceExhausted) {
            shed_replies.fetch_add(1);
          } else {
            bad_replies.fetch_add(1);
          }
        }
        client.close();
      } catch (const std::exception&) {
        client_errors.fetch_add(1);
      }
    });
  }

  for (std::thread& t : client_threads) t.join();
  for (std::thread& t : server_threads) t.join();
  server.stop();

  const ServerStats stats = server.stats();
  EXPECT_EQ(client_errors.load(), 0);
  EXPECT_EQ(bad_replies.load(), 0);
  EXPECT_GT(ok_replies.load(), 0);
  // Exactly one reply per request, nothing lost in the chaos windows.
  EXPECT_EQ(ok_replies.load() + shed_replies.load(),
            kClients * kRequestsPerClient);
  EXPECT_EQ(stats.requests,
            static_cast<std::uint64_t>(kClients * kRequestsPerClient));
  EXPECT_EQ(stats.shed_overload + stats.shed_rate_limited,
            static_cast<std::uint64_t>(shed_replies.load()));
  EXPECT_EQ(stats.protocol_errors, 0u);  // lossless chaos: no broken frames
  EXPECT_EQ(server.inflight(), 0u);
}

TEST(ChaosStress, DrainMidFaultBalancesTheBooks) {
  ServerOptions options;
  options.workers = 2;
  options.debug_plan_delay_ms = 2.0;
  Server server(options);

  constexpr int kClients = 8;
  const fault::FaultSpec spec = lossless_chaos();

  std::atomic<int> replies_received{0};

  std::vector<std::thread> server_threads;
  std::vector<std::thread> client_threads;
  for (int c = 0; c < kClients; ++c) {
    StreamPair pair = make_in_process_pair();
    server_threads.emplace_back(
        [&server, s = std::shared_ptr<ByteStream>(std::move(pair.first))] {
          server.handle_connection(*s);
        });
    client_threads.emplace_back([&, c,
                                 end = std::shared_ptr<ByteStream>(
                                     std::move(pair.second))]() mutable {
      FaultyByteStream chaotic(std::make_unique<BorrowedStream>(end), spec);
      try {
        for (int r = 0; r < 60; ++r) {
          PlanRequest request;
          request.tenant = "t" + std::to_string(c % 3);
          request.model = "alexnet";
          request.bandwidth_mbps = 1.0 + c;
          request.n_jobs = 2;
          write_frame(chaotic, encode_plan_request(request));
          const auto payload = read_frame(chaotic);
          if (!payload) return;  // half-closed during drain: fine
          replies_received.fetch_add(1);
        }
      } catch (const std::exception&) {
        // Writes can fail once the server half-closes mid-drain: fine.
      }
    });
  }

  // Drain while faults are live and clients are mid-conversation.
  while (replies_received.load() < 25) std::this_thread::yield();
  server.stop();

  for (std::thread& t : client_threads) t.join();
  for (std::thread& t : server_threads) t.join();

  const ServerStats stats = server.stats();
  EXPECT_TRUE(server.stopped());
  EXPECT_EQ(server.inflight(), 0u);
  // Every reply a client saw corresponds to an admitted request; the server
  // may have admitted a few more whose replies were cut off by the drain,
  // but it can never have answered MORE than it admitted.
  EXPECT_GE(stats.requests,
            static_cast<std::uint64_t>(replies_received.load()));
}

}  // namespace
}  // namespace jps::serve
