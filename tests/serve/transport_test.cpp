// Byte transports: in-process pipe semantics (backpressure, half-close,
// EOF) and the loopback socket listener.
#include "serve/transport.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>

namespace jps::serve {
namespace {

std::string read_all(ByteStream& stream) {
  std::string out;
  char buf[256];
  while (const std::size_t n = stream.read(buf, sizeof(buf)))
    out.append(buf, n);
  return out;
}

TEST(InProcessPair, BytesFlowBothWays) {
  StreamPair pair = make_in_process_pair();
  pair.first->write("ping", 4);
  char buf[8];
  ASSERT_EQ(pair.second->read(buf, sizeof(buf)), 4u);
  EXPECT_EQ(std::string(buf, 4), "ping");
  pair.second->write("pong!", 5);
  ASSERT_EQ(pair.first->read(buf, sizeof(buf)), 5u);
  EXPECT_EQ(std::string(buf, 5), "pong!");
}

TEST(InProcessPair, CloseGivesReaderEofAfterDrainingBuffer) {
  StreamPair pair = make_in_process_pair();
  pair.first->write("tail", 4);
  pair.first->close();
  EXPECT_EQ(read_all(*pair.second), "tail");  // buffered bytes then EOF
  char b;
  EXPECT_EQ(pair.second->read(&b, 1), 0u);  // EOF is sticky
}

TEST(InProcessPair, BoundedBufferBackpressuresWriter) {
  StreamPair pair = make_in_process_pair(/*capacity=*/16);
  std::atomic<bool> writer_done{false};
  const std::string big(1024, 'x');
  std::thread writer([&] {
    pair.first->write(big.data(), big.size());
    writer_done.store(true);
  });
  // The writer cannot finish until the reader drains: 1024 bytes through a
  // 16-byte window.
  std::string got;
  char buf[64];
  while (got.size() < big.size()) {
    const std::size_t n = pair.second->read(buf, sizeof(buf));
    ASSERT_GT(n, 0u);
    got.append(buf, n);
  }
  writer.join();
  EXPECT_TRUE(writer_done.load());
  EXPECT_EQ(got, big);
}

TEST(InProcessPair, ShutdownReadUnblocksReaderButKeepsWrites) {
  StreamPair pair = make_in_process_pair();
  std::thread unblocker([&] { pair.second->shutdown_read(); });
  char b;
  EXPECT_EQ(pair.second->read(&b, 1), 0u);  // woken with EOF
  unblocker.join();
  // The opposite direction still works: half-close, not close.
  pair.second->write("reply", 5);
  char buf[8];
  EXPECT_EQ(pair.first->read(buf, sizeof(buf)), 5u);
}

TEST(InProcessPair, WriteToClosedPeerThrows) {
  StreamPair pair = make_in_process_pair(/*capacity=*/4);
  pair.second->close();
  EXPECT_THROW(pair.first->write("0123456789", 10), std::runtime_error);
}

TEST(SocketTransport, EphemeralPortEchoAndShutdown) {
  SocketListener listener(0);
  ASSERT_GT(listener.port(), 0);

  std::thread server([&] {
    const std::unique_ptr<ByteStream> conn = listener.accept();
    ASSERT_NE(conn, nullptr);
    char buf[16];
    const std::size_t n = conn->read(buf, sizeof(buf));
    conn->write(buf, n);  // echo
  });

  const std::unique_ptr<ByteStream> client =
      socket_connect("127.0.0.1", listener.port());
  client->write("hello", 5);
  char buf[16];
  ASSERT_EQ(client->read(buf, sizeof(buf)), 5u);
  EXPECT_EQ(std::string(buf, 5), "hello");
  server.join();

  // close() unblocks a pending accept with nullptr.
  std::thread closer([&] { listener.close(); });
  EXPECT_EQ(listener.accept(), nullptr);
  closer.join();
}

TEST(SocketTransport, ConnectToClosedPortThrows) {
  // Bind-then-close to obtain a port that is (almost surely) not listening.
  std::uint16_t dead_port;
  {
    SocketListener listener(0);
    dead_port = listener.port();
  }
  EXPECT_THROW((void)socket_connect("127.0.0.1", dead_port),
               std::runtime_error);
  EXPECT_THROW((void)socket_connect("not-an-ip", 1), std::runtime_error);
}

}  // namespace
}  // namespace jps::serve
