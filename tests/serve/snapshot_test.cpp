#include "serve/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "core/plan_cache.h"
#include "core/planner.h"
#include "models/registry.h"
#include "net/channel.h"
#include "profile/device.h"
#include "profile/latency_model.h"
#include "util/crc32.h"

namespace jps::serve {
namespace {

using core::ExecutionPlan;
using core::PlanCacheKey;
using core::ShardedPlanCache;
using core::Strategy;

std::shared_ptr<const ExecutionPlan> sample_plan(
    const std::string& model, Strategy strategy = Strategy::kJPS,
    int n_jobs = 6) {
  static const profile::LatencyModel mobile(
      profile::DeviceProfile::raspberry_pi_4b());
  const dnn::Graph g = models::build(model);
  const auto curve =
      partition::ProfileCurve::build(g, mobile, net::Channel::preset_4g());
  return std::make_shared<const ExecutionPlan>(
      core::Planner(curve).plan(strategy, n_jobs));
}

/// A cache with three distinct keys (two models, two bandwidth buckets).
void populate(ShardedPlanCache& cache) {
  cache.insert_plan(PlanCacheKey("alexnet", "pi4b", 2.0, Strategy::kJPS, 6),
                    sample_plan("alexnet"));
  cache.insert_plan(PlanCacheKey("alexnet", "pi4b", 10.0, Strategy::kJPS, 6),
                    sample_plan("alexnet"));
  cache.insert_plan(PlanCacheKey("nin", "pi4b", 2.0, Strategy::kJPSTuned, 4),
                    sample_plan("nin", Strategy::kJPSTuned, 4));
}

TEST(Snapshot, RoundTripPreservesEveryEntry) {
  ShardedPlanCache cache(4);
  populate(cache);
  const std::string bytes = encode_cache_snapshot(cache);

  ShardedPlanCache reloaded(2);
  const SnapshotLoadResult result = decode_cache_snapshot(bytes, reloaded);
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.entries, 3u);

  // Every original entry reloads with a bit-identical makespan under the
  // same key (compare via the sorted entry lists).
  auto want = cache.plan_entries();
  auto got = reloaded.plan_entries();
  ASSERT_EQ(got.size(), want.size());
  for (const auto& [key, plan] : want) {
    bool found = false;
    for (const auto& [rkey, rplan] : got) {
      if (rkey == key) {
        found = true;
        EXPECT_EQ(rplan->predicted_makespan, plan->predicted_makespan);
        EXPECT_EQ(rplan->strategy, plan->strategy);
        EXPECT_EQ(rplan->jobs, plan->jobs);
      }
    }
    EXPECT_TRUE(found) << key.model << "@" << key.bandwidth_mbps;
  }
}

TEST(Snapshot, EncodeIsDeterministic) {
  ShardedPlanCache a(8);
  ShardedPlanCache b(3);  // different shard count, same logical content
  populate(a);
  populate(b);
  const std::string first = encode_cache_snapshot(a);
  EXPECT_EQ(first, encode_cache_snapshot(a));
  EXPECT_EQ(first, encode_cache_snapshot(b));

  // encode(decode(bytes)) is canonical too.
  ShardedPlanCache reloaded(1);
  ASSERT_TRUE(decode_cache_snapshot(first, reloaded).ok);
  EXPECT_EQ(encode_cache_snapshot(reloaded), first);
}

TEST(Snapshot, EmptyCacheRoundTrips) {
  ShardedPlanCache cache(1);
  const std::string bytes = encode_cache_snapshot(cache);
  ShardedPlanCache reloaded(1);
  const SnapshotLoadResult result = decode_cache_snapshot(bytes, reloaded);
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.entries, 0u);
  EXPECT_EQ(reloaded.plan_count(), 0u);
}

TEST(Snapshot, EveryByteFlipIsRejectedAndLeavesCacheUntouched) {
  ShardedPlanCache cache(2);
  cache.insert_plan(PlanCacheKey("alexnet", "pi4b", 2.0), sample_plan("alexnet"));
  const std::string bytes = encode_cache_snapshot(cache);

  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string bad = bytes;
    bad[i] = static_cast<char>(bad[i] ^ 0xFF);
    ShardedPlanCache victim(1);
    const SnapshotLoadResult result = decode_cache_snapshot(bad, victim);
    EXPECT_FALSE(result.ok) << "flip at byte " << i << " was accepted";
    EXPECT_EQ(result.entries, 0u);
    // All-or-nothing: a rejected snapshot inserts nothing.
    EXPECT_EQ(victim.plan_count(), 0u) << "flip at byte " << i;
  }
}

TEST(Snapshot, EveryTruncationIsRejected) {
  ShardedPlanCache cache(2);
  cache.insert_plan(PlanCacheKey("nin", "pi4b", 4.0), sample_plan("nin"));
  const std::string bytes = encode_cache_snapshot(cache);

  for (std::size_t len = 0; len < bytes.size(); ++len) {
    ShardedPlanCache victim(1);
    const SnapshotLoadResult result =
        decode_cache_snapshot(bytes.substr(0, len), victim);
    EXPECT_FALSE(result.ok) << "truncation to " << len << " bytes accepted";
    EXPECT_EQ(victim.plan_count(), 0u);
  }
}

TEST(Snapshot, TrailingBytesAreRejected) {
  ShardedPlanCache cache(1);
  cache.insert_plan(PlanCacheKey("alexnet", "pi4b", 2.0), sample_plan("alexnet"));
  std::string bytes = encode_cache_snapshot(cache);
  bytes += '\0';  // one stray byte after the CRC trailer
  ShardedPlanCache victim(1);
  EXPECT_FALSE(decode_cache_snapshot(bytes, victim).ok);
}

TEST(Snapshot, FirstInsertWinsOnWarmStart) {
  // Snapshot carries a kJPS plan; the victim cache already holds a
  // *different* plan (kCloudOnly) under the same key.  Warm-start must not
  // clobber the fresher entry.
  ShardedPlanCache source(1);
  const PlanCacheKey key("alexnet", "pi4b", 2.0, Strategy::kJPS, 6);
  source.insert_plan(key, sample_plan("alexnet", Strategy::kJPS));
  const std::string bytes = encode_cache_snapshot(source);

  ShardedPlanCache victim(1);
  const auto existing = sample_plan("alexnet", Strategy::kCloudOnly);
  victim.insert_plan(key, existing);
  const SnapshotLoadResult result = decode_cache_snapshot(bytes, victim);
  EXPECT_TRUE(result.ok) << result.error;

  const auto entries = victim.plan_entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].second->strategy, Strategy::kCloudOnly);
  EXPECT_EQ(entries[0].second.get(), existing.get());
}

TEST(Snapshot, MissingFileIsACleanColdStart) {
  ShardedPlanCache cache(1);
  const SnapshotLoadResult result = load_cache_snapshot(
      cache, ::testing::TempDir() + "/jps_snapshot_does_not_exist.bin");
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.entries, 0u);
  EXPECT_TRUE(result.error.empty());
}

TEST(Snapshot, FileRoundTripThroughAtomicSave) {
  const std::string path = ::testing::TempDir() + "/jps_snapshot_test.bin";
  ShardedPlanCache cache(4);
  populate(cache);
  save_cache_snapshot(cache, path);

  // The atomic tmp file must not linger after a successful rename.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());

  ShardedPlanCache reloaded(4);
  const SnapshotLoadResult result = load_cache_snapshot(reloaded, path);
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.entries, 3u);
  EXPECT_EQ(reloaded.plan_count(), 3u);
  std::remove(path.c_str());
}

TEST(Snapshot, CorruptFileLoadsAsRejectionNotThrow) {
  const std::string path = ::testing::TempDir() + "/jps_snapshot_garbage.bin";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "JPSSNAP\nthis is not a valid snapshot body at all............";
  }
  ShardedPlanCache cache(1);
  SnapshotLoadResult result;
  EXPECT_NO_THROW(result = load_cache_snapshot(cache, path));
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(cache.plan_count(), 0u);
  std::remove(path.c_str());
}

TEST(Snapshot, UnknownVersionIsRejectedWithReason) {
  ShardedPlanCache cache(1);
  std::string bytes = encode_cache_snapshot(cache);
  // Patch the version field (bytes 8..11) and re-stamp the CRC so only the
  // version check can fire.
  bytes[8] = 9;
  const std::uint32_t crc =
      util::crc32(std::string_view(bytes).substr(0, bytes.size() - 4));
  for (int i = 0; i < 4; ++i)
    bytes[bytes.size() - 4 + static_cast<std::size_t>(i)] =
        static_cast<char>((crc >> (8 * i)) & 0xFF);
  ShardedPlanCache victim(1);
  const SnapshotLoadResult result = decode_cache_snapshot(bytes, victim);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("version"), std::string::npos) << result.error;
}

}  // namespace
}  // namespace jps::serve
