// Token-bucket admission control under an injected clock.
#include "serve/admission.h"

#include <gtest/gtest.h>

namespace jps::serve {
namespace {

TEST(TokenBucket, BurstThenStarve) {
  TokenBucket bucket(/*rate_per_sec=*/10.0, /*burst=*/3.0);
  EXPECT_TRUE(bucket.try_acquire(0.0));
  EXPECT_TRUE(bucket.try_acquire(0.0));
  EXPECT_TRUE(bucket.try_acquire(0.0));
  EXPECT_FALSE(bucket.try_acquire(0.0));  // burst spent, no time passed
}

TEST(TokenBucket, RefillsAtRate) {
  TokenBucket bucket(10.0, 3.0);  // 10 tokens/s == 1 token per 100 ms
  EXPECT_TRUE(bucket.try_acquire(0.0));
  EXPECT_TRUE(bucket.try_acquire(0.0));
  EXPECT_TRUE(bucket.try_acquire(0.0));
  EXPECT_FALSE(bucket.try_acquire(50.0));   // half a token accrued
  EXPECT_TRUE(bucket.try_acquire(100.0));   // a full one
  EXPECT_FALSE(bucket.try_acquire(100.0));  // and only one
}

TEST(TokenBucket, RefillCapsAtBurst) {
  TokenBucket bucket(10.0, 2.0);
  EXPECT_TRUE(bucket.try_acquire(0.0));
  EXPECT_TRUE(bucket.try_acquire(0.0));
  // An hour idle refills to the cap, not to rate * elapsed.
  EXPECT_NEAR(bucket.available(3'600'000.0), 2.0, 1e-9);
  EXPECT_TRUE(bucket.try_acquire(3'600'000.0));
  EXPECT_TRUE(bucket.try_acquire(3'600'000.0));
  EXPECT_FALSE(bucket.try_acquire(3'600'000.0));
}

TEST(TokenBucket, NonMonotoneClockIsNoRefill) {
  TokenBucket bucket(1000.0, 1.0);
  EXPECT_TRUE(bucket.try_acquire(100.0));
  EXPECT_FALSE(bucket.try_acquire(50.0));  // clock went backwards
  EXPECT_FALSE(bucket.try_acquire(100.0));
  EXPECT_TRUE(bucket.try_acquire(101.0));  // 1 ms at 1000/s = 1 token
}

TEST(TokenBucket, DisabledRateAdmitsEverything) {
  TokenBucket bucket(0.0, 1.0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(bucket.try_acquire(0.0));
}

TEST(TenantAdmission, TenantsAreIsolated) {
  TenantAdmission admission(/*rate_per_sec=*/10.0, /*burst=*/1.0);
  EXPECT_TRUE(admission.admit("a", 0.0));
  EXPECT_FALSE(admission.admit("a", 0.0));  // a's bucket is empty...
  EXPECT_TRUE(admission.admit("b", 0.0));   // ...b's is untouched
  EXPECT_EQ(admission.tenant_count(), 2u);
}

TEST(TenantAdmission, AnonymousTenantIsATenant) {
  TenantAdmission admission(10.0, 1.0);
  EXPECT_TRUE(admission.admit("", 0.0));
  EXPECT_FALSE(admission.admit("", 0.0));
}

TEST(TenantAdmission, UnlimitedRateNeverCreatesBuckets) {
  TenantAdmission admission(0.0, 1.0);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(admission.admit("a", 0.0));
  EXPECT_EQ(admission.tenant_count(), 0u);
}

}  // namespace
}  // namespace jps::serve
