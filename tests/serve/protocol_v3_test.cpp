// Protocol v3: the trace-context tail on plan requests, the introspection
// ops (STATS / TRACE_DUMP), version gating, and — most importantly — golden
// bytes proving v1/v2 frames did not move by a single bit.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <string_view>

#include "serve/protocol.h"

namespace jps::serve {
namespace {

PlanRequest sample_request() {
  PlanRequest request;
  request.tenant = "t";
  request.model = "alexnet";
  request.bandwidth_mbps = 8.0;
  request.strategy = core::Strategy::kJPS;
  request.n_jobs = 4;
  return request;
}

// Little-endian golden-byte builders mirroring the documented grammar.
void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
}
void put_u32(std::string& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8)
    out.push_back(static_cast<char>((v >> shift) & 0xFF));
}
void put_u64(std::string& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8)
    out.push_back(static_cast<char>((v >> shift) & 0xFF));
}
void put_f64(std::string& out, double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  __builtin_memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}
void put_str16(std::string& out, std::string_view s) {
  put_u16(out, static_cast<std::uint16_t>(s.size()));
  out += s;
}

std::string golden_plan_request(std::uint8_t version,
                                const PlanRequest& request) {
  std::string out;
  out.push_back(static_cast<char>(kMagic));
  out.push_back(static_cast<char>(version));
  out.push_back(static_cast<char>(Op::kPlan));
  put_str16(out, request.tenant);
  put_str16(out, request.model);
  put_f64(out, request.bandwidth_mbps);
  out.push_back(static_cast<char>(request.strategy));
  put_u32(out, static_cast<std::uint32_t>(request.n_jobs));
  if (version >= 2) put_f64(out, request.deadline_ms);
  if (version >= 3) {
    put_u64(out, request.trace_hi);
    put_u64(out, request.trace_lo);
    put_u64(out, request.trace_parent_span);
  }
  return out;
}

TEST(ProtocolV3, V1AndV2FramesAreBitIdenticalToTheGrammar) {
  // The back-compat contract: adding the v3 tail must not have moved any
  // byte of the v1/v2 encodings.
  PlanRequest request = sample_request();
  request.deadline_ms = 12.5;
  EXPECT_EQ(encode_plan_request(request, 1), golden_plan_request(1, request));
  EXPECT_EQ(encode_plan_request(request, 2), golden_plan_request(2, request));
}

TEST(ProtocolV3, V3FrameMatchesTheGrammarAndRoundTrips) {
  PlanRequest request = sample_request();
  request.deadline_ms = 3.0;
  request.trace_hi = 0x1111222233334444ull;
  request.trace_lo = 0x5555666677778888ull;
  request.trace_parent_span = 0x9999AAAABBBBCCCCull;
  const std::string payload = encode_plan_request(request, 3);
  EXPECT_EQ(payload, golden_plan_request(3, request));
  EXPECT_EQ(peek_version(payload), 3);
  EXPECT_EQ(decode_plan_request(payload), request);
}

TEST(ProtocolV3, V1AndV2DecodesDropTheTraceContext) {
  PlanRequest request = sample_request();
  request.trace_hi = 7;
  request.trace_lo = 8;
  request.trace_parent_span = 9;
  for (const std::uint8_t version : {std::uint8_t{1}, std::uint8_t{2}}) {
    const PlanRequest decoded =
        decode_plan_request(encode_plan_request(request, version));
    EXPECT_EQ(decoded.trace_hi, 0u) << "v" << int(version);
    EXPECT_EQ(decoded.trace_lo, 0u);
    EXPECT_EQ(decoded.trace_parent_span, 0u);
  }
}

TEST(ProtocolV3, TruncatedTraceContextThrowsAtEveryPrefix) {
  PlanRequest request = sample_request();
  request.trace_hi = 0x0102030405060708ull;
  request.trace_lo = 0x090A0B0C0D0E0F10ull;
  request.trace_parent_span = 0x1112131415161718ull;
  const std::string payload = encode_plan_request(request, 3);
  // The trace tail is the last 24 bytes; every cut inside it (and at every
  // earlier offset) must throw, never decode garbage.
  for (std::size_t keep = 0; keep < payload.size(); ++keep) {
    EXPECT_THROW((void)decode_plan_request(payload.substr(0, keep)),
                 ProtocolError)
        << "keep=" << keep;
  }
}

TEST(ProtocolV3, StatsRoundTrip) {
  const std::string request = encode_stats_request();
  EXPECT_EQ(peek_op(request), Op::kStats);
  EXPECT_EQ(peek_version(request), kVersion);
  decode_stats_request(request);  // must not throw

  StatsReply reply;
  reply.status = Status::kOk;
  reply.json = R"({"counters":{"serve.requests":3}})";
  const std::string payload = encode_stats_reply(reply);
  EXPECT_EQ(peek_op(payload), Op::kStatsReply);
  EXPECT_EQ(decode_stats_reply(payload), reply);

  reply.json.clear();  // empty bodies are legal
  EXPECT_EQ(decode_stats_reply(encode_stats_reply(reply)), reply);
}

TEST(ProtocolV3, TraceDumpRoundTrip) {
  EXPECT_EQ(decode_trace_dump_request(encode_trace_dump_request(0)), 0u);
  EXPECT_EQ(decode_trace_dump_request(encode_trace_dump_request(77)), 77u);

  TraceDumpReply reply;
  reply.status = Status::kOk;
  reply.remaining = 41;
  reply.json = R"({"traces":[]})";
  const std::string payload = encode_trace_dump_reply(reply);
  EXPECT_EQ(peek_op(payload), Op::kTraceDumpReply);
  EXPECT_EQ(decode_trace_dump_reply(payload), reply);
}

TEST(ProtocolV3, IntrospectionOpsRefusePreV3Versions) {
  // Encoders refuse to emit an impossible frame.
  EXPECT_THROW((void)encode_stats_request(2), ProtocolError);
  EXPECT_THROW((void)encode_trace_dump_request(0, 2), ProtocolError);
  EXPECT_THROW((void)encode_stats_reply(StatsReply{}, 1), ProtocolError);
  EXPECT_THROW((void)encode_trace_dump_reply(TraceDumpReply{}, 2),
               ProtocolError);
  // Decoders refuse a hand-built pre-v3 frame claiming an introspection op.
  std::string stats = encode_stats_request();
  stats[1] = 2;  // version byte
  EXPECT_THROW(decode_stats_request(stats), ProtocolError);
  std::string dump = encode_trace_dump_request(5);
  dump[1] = 1;
  EXPECT_THROW((void)decode_trace_dump_request(dump), ProtocolError);
}

TEST(ProtocolV3, IntrospectionNegativePaths) {
  // Wrong op for the decoder.
  EXPECT_THROW(decode_stats_request(encode_trace_dump_request(1)),
               ProtocolError);
  EXPECT_THROW((void)decode_trace_dump_request(encode_stats_request()),
               ProtocolError);
  EXPECT_THROW((void)decode_stats_reply(encode_ping()), ProtocolError);
  EXPECT_THROW((void)decode_trace_dump_reply(encode_ping()), ProtocolError);

  // Truncation at every prefix of a reply with a str32 body.
  StatsReply reply;
  reply.json = "0123456789";
  const std::string payload = encode_stats_reply(reply);
  for (std::size_t keep = 0; keep < payload.size(); ++keep)
    EXPECT_THROW((void)decode_stats_reply(payload.substr(0, keep)),
                 ProtocolError)
        << "keep=" << keep;

  // Trailing garbage.
  EXPECT_THROW(decode_stats_request(encode_stats_request() + "x"),
               ProtocolError);
  EXPECT_THROW((void)decode_trace_dump_reply(
                   encode_trace_dump_reply(TraceDumpReply{}) + "x"),
               ProtocolError);

  // A str32 length promising more bytes than the payload has.
  std::string lying = encode_stats_reply(reply);
  // str32 length field sits right after header (3) + status (1).
  lying[4] = static_cast<char>(0xFF);
  lying[5] = static_cast<char>(0xFF);
  EXPECT_THROW((void)decode_stats_reply(lying), ProtocolError);

  // Unknown status byte.
  std::string bad_status = encode_stats_reply(reply);
  bad_status[3] = 0x7F;
  EXPECT_THROW((void)decode_stats_reply(bad_status), ProtocolError);
}

TEST(ProtocolV3, MinVersionStillOne) {
  // The whole point of the versioned grammar: old clients keep working.
  EXPECT_EQ(kMinVersion, 1);
  EXPECT_EQ(kVersion, 3);
  const std::string v1 = encode_plan_request(sample_request(), 1);
  EXPECT_EQ(decode_plan_request(v1).deadline_ms, 0.0);
}

}  // namespace
}  // namespace jps::serve
