// Server semantics: bit-identity with the direct Planner, quantization,
// admission/backpressure statuses, drain, and the connection loop's
// guarantee that hostile frames produce error replies or clean closes —
// never an escaped exception.
#include "serve/server.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <thread>

#include "core/planner.h"
#include "models/registry.h"
#include "net/channel.h"
#include "partition/profile_curve.h"
#include "profile/latency_model.h"
#include "serve/client.h"

namespace jps::serve {
namespace {

PlanRequest request_for(const std::string& model, double mbps, int jobs,
                        core::Strategy strategy = core::Strategy::kJPS) {
  PlanRequest request;
  request.tenant = "test";
  request.model = model;
  request.bandwidth_mbps = mbps;
  request.strategy = strategy;
  request.n_jobs = jobs;
  return request;
}

// The reply the server must reproduce, computed directly.
core::ExecutionPlan direct_plan(const ServerOptions& options,
                                const PlanRequest& request) {
  const double bucket = quantize_bandwidth(request.bandwidth_mbps,
                                           options.bandwidth_bucket_mbps);
  const dnn::Graph graph = models::build(request.model);
  const profile::LatencyModel mobile(options.device);
  const auto curve =
      partition::ProfileCurve::build(graph, mobile, net::Channel(bucket));
  return core::Planner(curve).plan(request.strategy, request.n_jobs);
}

TEST(Quantize, SnapsToNearestBucketAndNeverZero) {
  EXPECT_DOUBLE_EQ(quantize_bandwidth(7.3, 0.25), 7.25);
  EXPECT_DOUBLE_EQ(quantize_bandwidth(7.4, 0.25), 7.5);
  EXPECT_DOUBLE_EQ(quantize_bandwidth(0.25, 0.25), 0.25);
  // Estimates that would round to zero snap up to one step.
  EXPECT_DOUBLE_EQ(quantize_bandwidth(0.01, 0.25), 0.25);
  EXPECT_DOUBLE_EQ(quantize_bandwidth(1e-9, 0.25), 0.25);
}

TEST(Server, ReplyIsBitIdenticalToDirectPlanner) {
  ServerOptions options;
  options.workers = 2;
  Server server(options);
  const PlanRequest request = request_for("alexnet", 9.87, 7);
  const PlanReply reply = server.handle_plan(request);
  ASSERT_TRUE(reply.ok()) << reply.message;

  const core::ExecutionPlan expected = direct_plan(options, request);
  EXPECT_EQ(reply.makespan_ms, expected.predicted_makespan);  // exact, not near
  EXPECT_DOUBLE_EQ(reply.bandwidth_bucket_mbps, 9.75);  // round(9.87/0.25)*0.25

  int total = 0;
  for (const CutMix& m : reply.mix) total += static_cast<int>(m.count);
  EXPECT_EQ(total, request.n_jobs);
}

TEST(Server, NearbyBandwidthsShareABucketAndTheCache) {
  Server server{ServerOptions{}};
  const PlanReply a = server.handle_plan(request_for("alexnet", 10.05, 4));
  const PlanReply b = server.handle_plan(request_for("alexnet", 9.95, 4));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.bandwidth_bucket_mbps, b.bandwidth_bucket_mbps);
  EXPECT_EQ(a.makespan_ms, b.makespan_ms);
  EXPECT_FALSE(a.cache_hit);  // first computed it
  EXPECT_TRUE(b.cache_hit);   // second came from the sharded cache
  EXPECT_EQ(server.stats().plans_computed, 1u);
}

TEST(Server, InvalidArgumentsGetStatusesNotThrows) {
  Server server{ServerOptions{}};
  EXPECT_EQ(server
                .handle_plan(request_for(
                    "alexnet", std::numeric_limits<double>::quiet_NaN(), 4))
                .status,
            Status::kInvalidArgument);
  EXPECT_EQ(server.handle_plan(request_for("alexnet", -1.0, 4)).status,
            Status::kInvalidArgument);
  EXPECT_EQ(
      server
          .handle_plan(request_for(
              "alexnet", std::numeric_limits<double>::infinity(), 4))
          .status,
      Status::kInvalidArgument);
  EXPECT_EQ(server.handle_plan(request_for("alexnet", 10.0, 0)).status,
            Status::kInvalidArgument);
  EXPECT_EQ(server
                .handle_plan(request_for("alexnet", 10.0, 4,
                                         core::Strategy::kBruteForce))
                .status,
            Status::kInvalidArgument);
  EXPECT_EQ(
      server.handle_plan(request_for("alexnet", 10.0, 4,
                                     core::Strategy::kRobust))
          .status,
      Status::kInvalidArgument);
}

TEST(Server, UnknownModelIsNotFound) {
  Server server{ServerOptions{}};
  const PlanReply reply = server.handle_plan(request_for("not-a-model", 10, 4));
  EXPECT_EQ(reply.status, Status::kNotFound);
  EXPECT_FALSE(reply.message.empty());
}

TEST(Server, TenantRateLimitSheds) {
  ServerOptions options;
  options.tenant_rate_per_sec = 0.001;  // effectively no refill in-test
  options.tenant_burst = 2.0;
  Server server(options);
  EXPECT_TRUE(server.handle_plan(request_for("alexnet", 10, 1)).ok());
  EXPECT_TRUE(server.handle_plan(request_for("alexnet", 10, 1)).ok());
  const PlanReply shed = server.handle_plan(request_for("alexnet", 10, 1));
  EXPECT_EQ(shed.status, Status::kResourceExhausted);
  EXPECT_EQ(server.stats().shed_rate_limited, 1u);

  // A different tenant is admitted immediately.
  PlanRequest other = request_for("alexnet", 10, 1);
  other.tenant = "other";
  EXPECT_TRUE(server.handle_plan(other).ok());
}

TEST(Server, OverloadShedsWithResourceExhausted) {
  ServerOptions options;
  options.workers = 2;
  options.max_inflight = 1;
  options.debug_plan_delay_ms = 200.0;  // hold the leader's computation open
  Server server(options);

  std::thread leader(
      [&] { EXPECT_TRUE(server.handle_plan(request_for("alexnet", 5, 2)).ok()); });
  // Wait until the leader's computation occupies the single inflight slot.
  while (server.inflight() == 0) std::this_thread::yield();

  // A DIFFERENT key cannot start a second computation: shed, not queue.
  const PlanReply shed = server.handle_plan(request_for("alexnet", 50, 2));
  EXPECT_EQ(shed.status, Status::kResourceExhausted);
  EXPECT_EQ(server.stats().shed_overload, 1u);
  leader.join();

  // With the burst over, the previously shed key now computes fine.
  EXPECT_TRUE(server.handle_plan(request_for("alexnet", 50, 2)).ok());
}

TEST(Server, IdenticalConcurrentRequestsCoalesce) {
  ServerOptions options;
  options.workers = 2;
  options.debug_plan_delay_ms = 100.0;
  Server server(options);

  std::thread leader(
      [&] { EXPECT_TRUE(server.handle_plan(request_for("alexnet", 5, 2)).ok()); });
  while (server.inflight() == 0) std::this_thread::yield();

  // Same key while the leader holds it: joins the computation.
  const PlanReply follower = server.handle_plan(request_for("alexnet", 5, 2));
  leader.join();
  ASSERT_TRUE(follower.ok());
  EXPECT_TRUE(follower.coalesced);
  EXPECT_EQ(server.stats().coalesce_hits, 1u);
  EXPECT_EQ(server.stats().plans_computed, 1u);  // one Planner run for both
}

TEST(Server, StopDrainsAndRefusesNewWork) {
  Server server{ServerOptions{}};
  EXPECT_TRUE(server.handle_plan(request_for("alexnet", 10, 2)).ok());
  server.stop();
  EXPECT_TRUE(server.stopped());
  const PlanReply reply = server.handle_plan(request_for("alexnet", 10, 2));
  EXPECT_EQ(reply.status, Status::kUnavailable);
  server.stop();  // idempotent
}

// ---- deadlines (tentpole: deadline propagation) -------------------------

TEST(Server, ExpiredDeadlineIsRefusedAtAdmission) {
  ServerOptions options;
  options.debug_admission_delay_ms = 5.0;  // arrival -> check takes >= 5 ms
  Server server(options);

  PlanRequest request = request_for("alexnet", 10, 2);
  request.deadline_ms = 0.5;  // long gone by the time admission looks
  const PlanReply refused = server.handle_plan(request);
  EXPECT_EQ(refused.status, Status::kDeadlineExceeded);

  // No deadline means no refusal, same knobs.
  request.deadline_ms = 0.0;
  EXPECT_TRUE(server.handle_plan(request).ok());
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.deadline_exceeded, 1u);
  // The refused request never reached the planner.
  EXPECT_EQ(stats.plans_computed, 1u);
}

TEST(Server, DeadlinePassingDuringPlanningStillCachesThePlan) {
  ServerOptions options;
  options.debug_plan_delay_ms = 20.0;  // planning outlives the deadline
  Server server(options);

  PlanRequest request = request_for("alexnet", 10, 2);
  request.deadline_ms = 5.0;
  const PlanReply late = server.handle_plan(request);
  EXPECT_EQ(late.status, Status::kDeadlineExceeded);

  // The computation was not wasted: a later request hits the cache.
  request.deadline_ms = 0.0;
  const PlanReply cached = server.handle_plan(request);
  EXPECT_TRUE(cached.ok());
  EXPECT_TRUE(cached.cache_hit);
  EXPECT_EQ(server.stats().plans_computed, 1u);
}

TEST(Server, InvalidDeadlinesAreInvalidArgument) {
  Server server{ServerOptions{}};
  for (const double bad :
       {std::numeric_limits<double>::quiet_NaN(),
        std::numeric_limits<double>::infinity(), -1.0}) {
    PlanRequest request = request_for("alexnet", 10, 2);
    request.deadline_ms = bad;
    EXPECT_EQ(server.handle_plan(request).status, Status::kInvalidArgument)
        << bad;
  }
}

// ---- circuit breaker + degraded mode (tentpole) -------------------------

TEST(Server, OpenBreakerServesStaleFromTheNearestBucket) {
  ServerOptions options;
  options.debug_plan_delay_ms = 10.0;  // planning always outlives 2 ms
  options.breaker.window = 8;
  options.breaker.min_samples = 4;
  options.breaker.failure_ratio = 0.5;
  options.breaker.cooldown_ms = 60'000.0;  // stays open for the whole test
  Server server(options);

  // Prime the cache at bucket 10.0 with a healthy tenant.
  PlanRequest prime = request_for("alexnet", 10.0, 4);
  prime.tenant = "healthy";
  const PlanReply fresh = server.handle_plan(prime);
  ASSERT_TRUE(fresh.ok());

  // Trip the victim tenant's breaker: each request plans a FRESH bucket
  // (no cache rescue), so the 10 ms planner run outlives the 2 ms budget
  // and the reply lands as kDeadlineExceeded — a recorded server-health
  // failure.
  for (int i = 0; i < 4; ++i) {
    PlanRequest doomed = request_for("alexnet", 20.0 + 10.0 * i, 4);
    doomed.tenant = "victim";
    doomed.deadline_ms = 2.0;
    ASSERT_EQ(server.handle_plan(doomed).status, Status::kDeadlineExceeded);
  }

  // Open breaker, nearby bucket asked for: a stale plan, clearly labeled.
  PlanRequest degraded = request_for("alexnet", 12.0, 4);
  degraded.tenant = "victim";
  const PlanReply stale = server.handle_plan(degraded);
  EXPECT_EQ(stale.status, Status::kOkStale);
  EXPECT_TRUE(stale.stale);
  EXPECT_TRUE(stale.has_plan());
  EXPECT_DOUBLE_EQ(stale.bandwidth_bucket_mbps, 10.0);  // the primed bucket
  EXPECT_DOUBLE_EQ(stale.makespan_ms, fresh.makespan_ms);

  // Open breaker but nothing cached for that shape: UNAVAILABLE, not OK.
  PlanRequest uncached = request_for("nin", 10.0, 4);
  uncached.tenant = "victim";
  EXPECT_EQ(server.handle_plan(uncached).status, Status::kUnavailable);

  // The healthy tenant is untouched (per-tenant isolation).
  EXPECT_TRUE(server.handle_plan(prime).ok());

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.breaker_opens, 1u);
  EXPECT_GE(stats.stale_served, 1u);
  EXPECT_GE(stats.deadline_exceeded, 4u);
}

TEST(Server, BreakerCanBeDisabled) {
  ServerOptions options;
  options.debug_plan_delay_ms = 10.0;
  options.breaker_enabled = false;
  options.breaker.window = 8;
  options.breaker.min_samples = 4;
  options.breaker.failure_ratio = 0.5;
  Server server(options);

  // A failure pattern that WOULD open the small breaker above.
  for (int i = 0; i < 5; ++i) {
    PlanRequest doomed = request_for("alexnet", 20.0 + 10.0 * i, 4);
    doomed.tenant = "victim";
    doomed.deadline_ms = 2.0;
    ASSERT_EQ(server.handle_plan(doomed).status, Status::kDeadlineExceeded);
  }

  // With the breaker off the tenant still gets fresh (non-stale) answers.
  PlanRequest request = request_for("alexnet", 20.0, 4);
  request.tenant = "victim";
  const PlanReply reply = server.handle_plan(request);
  EXPECT_TRUE(reply.ok());
  EXPECT_FALSE(reply.stale);
  EXPECT_EQ(server.stats().breaker_opens, 0u);
}

// ---- snapshot warm-start (tentpole: crash-safe cache) -------------------

TEST(Server, SnapshotWarmStartAnswersFromCacheAfterRestart) {
  const std::string path =
      ::testing::TempDir() + "/jps_server_snapshot_test.bin";
  std::remove(path.c_str());

  const PlanRequest request = request_for("alexnet", 10.0, 4);
  double makespan = 0.0;
  {
    ServerOptions options;
    options.snapshot_path = path;
    Server server(options);
    const PlanReply reply = server.handle_plan(request);
    ASSERT_TRUE(reply.ok());
    makespan = reply.makespan_ms;
    server.stop();  // drain saves the snapshot
    EXPECT_GE(server.stats().snapshot_saves, 1u);
  }
  {
    ServerOptions options;
    options.snapshot_path = path;
    Server server(options);  // "restarted process"
    EXPECT_EQ(server.stats().warm_start_entries, 1u);
    const PlanReply reply = server.handle_plan(request);
    EXPECT_TRUE(reply.ok());
    EXPECT_TRUE(reply.cache_hit);
    EXPECT_EQ(reply.makespan_ms, makespan);  // bit-identical across restart
    EXPECT_EQ(server.stats().plans_computed, 0u);
    EXPECT_EQ(server.stats().cache_hits, 1u);
  }
  std::remove(path.c_str());
}

TEST(Server, CorruptSnapshotIsIgnoredNeverFatal) {
  const std::string path =
      ::testing::TempDir() + "/jps_server_snapshot_corrupt.bin";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "JPSSNAP\nnot really a snapshot";
  }
  ServerOptions options;
  options.snapshot_path = path;
  Server server(options);  // must construct cleanly
  EXPECT_EQ(server.stats().warm_start_entries, 0u);
  EXPECT_TRUE(server.handle_plan(request_for("alexnet", 10, 2)).ok());
  std::remove(path.c_str());
}

TEST(Server, SnapshotTimerSavesWhileRunning) {
  const std::string path =
      ::testing::TempDir() + "/jps_server_snapshot_timer.bin";
  std::remove(path.c_str());
  ServerOptions options;
  options.snapshot_path = path;
  options.snapshot_interval_ms = 20.0;
  Server server(options);
  ASSERT_TRUE(server.handle_plan(request_for("alexnet", 10, 2)).ok());
  // The timer must fire without any drain happening.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.stats().snapshot_saves == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(server.stats().snapshot_saves, 1u);
  server.stop();
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

// ---- mixed-version connections (tentpole: deadline propagation) ---------

TEST(Connection, V1AndV2FramesShareAConnectionAndGetMatchingReplies) {
  Server server{ServerOptions{}};
  StreamPair pair = make_in_process_pair();
  std::thread conn([&] { server.handle_connection(*pair.first); });

  // v1 frame: answered in v1.
  write_frame(*pair.second,
              encode_plan_request(request_for("alexnet", 10, 4), 1));
  auto payload = read_frame(*pair.second);
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(peek_version(*payload), 1);
  EXPECT_TRUE(decode_plan_reply(*payload).ok());

  // v2 frame on the SAME connection: answered in v2.
  write_frame(*pair.second,
              encode_plan_request(request_for("alexnet", 10, 4), kVersion));
  payload = read_frame(*pair.second);
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(peek_version(*payload), kVersion);
  EXPECT_TRUE(decode_plan_reply(*payload).ok());

  pair.second->close();
  conn.join();
}

// ---- connection-loop negative paths (satellite: protocol robustness) ----

TEST(Connection, PlanAndPingOverTheWire) {
  Server server{ServerOptions{}};
  StreamPair pair = make_in_process_pair();
  std::thread conn([&] { server.handle_connection(*pair.first); });
  Client client(std::move(pair.second));
  EXPECT_TRUE(client.ping());
  const PlanReply reply = client.plan(request_for("alexnet", 10, 4));
  EXPECT_TRUE(reply.ok());
  client.close();
  conn.join();
}

TEST(Connection, UnknownModelAndBadBandwidthAreRepliesNotDisconnects) {
  Server server{ServerOptions{}};
  StreamPair pair = make_in_process_pair();
  std::thread conn([&] { server.handle_connection(*pair.first); });
  Client client(std::move(pair.second));

  EXPECT_EQ(client.plan(request_for("no-such-model", 10, 4)).status,
            Status::kNotFound);
  EXPECT_EQ(client
                .plan(request_for("alexnet",
                                  std::numeric_limits<double>::quiet_NaN(), 4))
                .status,
            Status::kInvalidArgument);
  // The connection survived both errors.
  EXPECT_TRUE(client.plan(request_for("alexnet", 10, 4)).ok());
  client.close();
  conn.join();
}

TEST(Connection, MalformedPayloadGetsErrorReplyAndConnectionSurvives) {
  Server server{ServerOptions{}};
  StreamPair pair = make_in_process_pair();
  std::thread conn([&] { server.handle_connection(*pair.first); });

  // A well-framed payload that decodes as no known request.
  write_frame(*pair.second, "garbage-bytes");
  const auto reply_payload = read_frame(*pair.second);
  ASSERT_TRUE(reply_payload.has_value());
  EXPECT_EQ(decode_plan_reply(*reply_payload).status,
            Status::kInvalidArgument);

  // A reply op sent TO the server is equally malformed from its viewpoint.
  write_frame(*pair.second, encode_ping_reply());
  const auto reply2 = read_frame(*pair.second);
  ASSERT_TRUE(reply2.has_value());
  EXPECT_EQ(decode_plan_reply(*reply2).status, Status::kInvalidArgument);

  // Still alive afterwards.
  Client client(std::move(pair.second));
  EXPECT_TRUE(client.ping());
  client.close();
  conn.join();
  EXPECT_GE(server.stats().protocol_errors, 2u);
}

TEST(Connection, TruncatedLengthPrefixClosesConnectionQuietly) {
  Server server{ServerOptions{}};
  StreamPair pair = make_in_process_pair();
  std::thread conn([&] { server.handle_connection(*pair.first); });
  pair.second->write("\x10\x00", 2);  // half a prefix
  pair.second->close();
  conn.join();  // loop must exit, not throw
  EXPECT_EQ(server.stats().protocol_errors, 1u);
}

TEST(Connection, OversizedFrameClosesConnectionQuietly) {
  Server server{ServerOptions{}};
  StreamPair pair = make_in_process_pair();
  std::thread conn([&] { server.handle_connection(*pair.first); });
  pair.second->write("\xFF\xFF\xFF\x7F", 4);  // ~2 GiB announcement
  // The server hangs up; our next read sees EOF.
  char b;
  EXPECT_EQ(pair.second->read(&b, 1), 0u);
  conn.join();
  EXPECT_EQ(server.stats().protocol_errors, 1u);
}

TEST(Connection, StopHalfClosesActiveConnections) {
  Server server{ServerOptions{}};
  StreamPair pair = make_in_process_pair();
  std::thread conn([&] { server.handle_connection(*pair.first); });
  Client client(std::move(pair.second));
  EXPECT_TRUE(client.ping());  // connection is up and registered
  server.stop();               // half-closes the server side
  conn.join();                 // loop exited at the frame boundary
}

}  // namespace
}  // namespace jps::serve
