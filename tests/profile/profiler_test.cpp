#include "profile/profiler.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "models/registry.h"

namespace jps::profile {
namespace {

TEST(Profiler, NoiselessMeasurementEqualsModel) {
  const dnn::Graph g = models::build("alexnet");
  ProfilerOptions opt;
  opt.noise_sigma = 0.0;
  opt.trials = 3;
  const Profiler profiler(DeviceProfile::raspberry_pi_4b(), opt);
  util::Rng rng(1);
  for (dnn::NodeId id = 0; id < g.size(); ++id) {
    const ProfileRecord rec = profiler.measure_node(g, id, rng);
    EXPECT_DOUBLE_EQ(rec.median_ms, profiler.model().node_time_ms(g, id));
    EXPECT_DOUBLE_EQ(rec.stddev_ms, 0.0);
  }
}

TEST(Profiler, NoisyMedianTracksTruth) {
  const dnn::Graph g = models::build("alexnet");
  ProfilerOptions opt;
  opt.noise_sigma = 0.10;
  opt.trials = 101;
  const Profiler profiler(DeviceProfile::raspberry_pi_4b(), opt);
  util::Rng rng(7);
  // The heaviest conv node: median of 101 log-normal samples within ~5%.
  dnn::NodeId heavy = 1;
  double heavy_t = 0.0;
  for (dnn::NodeId id = 0; id < g.size(); ++id) {
    const double t = profiler.model().node_time_ms(g, id);
    if (t > heavy_t) {
      heavy_t = t;
      heavy = id;
    }
  }
  const ProfileRecord rec = profiler.measure_node(g, heavy, rng);
  EXPECT_NEAR(rec.median_ms, heavy_t, 0.05 * heavy_t);
  EXPECT_GT(rec.stddev_ms, 0.0);
}

TEST(Profiler, MeasureGraphCoversAllNodes) {
  const dnn::Graph g = models::build("mobilenet_v2");
  const Profiler profiler(DeviceProfile::raspberry_pi_4b());
  util::Rng rng(3);
  const auto records = profiler.measure_graph(g, rng);
  ASSERT_EQ(records.size(), g.size());
  for (std::size_t i = 0; i < records.size(); ++i)
    EXPECT_EQ(records[i].node, i);
}

TEST(Profiler, RejectsBadOptions) {
  ProfilerOptions bad;
  bad.trials = 0;
  EXPECT_THROW(Profiler(DeviceProfile::raspberry_pi_4b(), bad),
               std::invalid_argument);
  ProfilerOptions bad2;
  bad2.noise_sigma = -0.1;
  EXPECT_THROW(Profiler(DeviceProfile::raspberry_pi_4b(), bad2),
               std::invalid_argument);
}

TEST(Profiler, DeterministicForFixedSeed) {
  const dnn::Graph g = models::build("alexnet");
  const Profiler profiler(DeviceProfile::raspberry_pi_4b());
  util::Rng rng_a(42);
  util::Rng rng_b(42);
  const auto a = profiler.measure_graph(g, rng_a);
  const auto b = profiler.measure_graph(g, rng_b);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_DOUBLE_EQ(a[i].median_ms, b[i].median_ms);
}

}  // namespace
}  // namespace jps::profile
