#include "profile/latency_model.h"

#include <gtest/gtest.h>

#include "models/registry.h"
#include "profile/device.h"

namespace jps::profile {
namespace {

TEST(DeviceProfiles, PresetsAreOrdered) {
  const DeviceProfile pi = DeviceProfile::raspberry_pi_4b();
  const DeviceProfile phone = DeviceProfile::midrange_phone();
  const DeviceProfile cloud = DeviceProfile::cloud_gtx1080();
  EXPECT_LT(pi.conv_gflops, phone.conv_gflops);
  EXPECT_LT(phone.conv_gflops, cloud.conv_gflops);
  EXPECT_LT(pi.memory_gbps, cloud.memory_gbps);
}

TEST(LatencyModel, InputNodeIsFree) {
  const dnn::Graph g = models::build("alexnet");
  const LatencyModel mobile(DeviceProfile::raspberry_pi_4b());
  EXPECT_DOUBLE_EQ(mobile.node_time_ms(g, g.source()), 0.0);
}

TEST(LatencyModel, EveryOtherNodeCostsAtLeastOverhead) {
  const dnn::Graph g = models::build("alexnet");
  const DeviceProfile dev = DeviceProfile::raspberry_pi_4b();
  const LatencyModel mobile(dev);
  for (dnn::NodeId id = 1; id < g.size(); ++id)
    EXPECT_GE(mobile.node_time_ms(g, id), dev.per_layer_overhead_ms);
}

TEST(LatencyModel, GraphTimeIsSumOfNodes) {
  const dnn::Graph g = models::build("mobilenet_v2");
  const LatencyModel mobile(DeviceProfile::raspberry_pi_4b());
  double sum = 0.0;
  for (dnn::NodeId id = 0; id < g.size(); ++id)
    sum += mobile.node_time_ms(g, id);
  EXPECT_DOUBLE_EQ(mobile.graph_time_ms(g), sum);
}

TEST(LatencyModel, CloudOrdersOfMagnitudeFaster) {
  // The premise of §3.1/Fig. 4(a): cloud compute is negligible next to
  // mobile compute.  Verify >= 20x on every paper model.
  const LatencyModel mobile(DeviceProfile::raspberry_pi_4b());
  const LatencyModel cloud(DeviceProfile::cloud_gtx1080());
  for (const auto& name : models::paper_eval_names()) {
    const dnn::Graph g = models::build(name);
    EXPECT_GT(mobile.graph_time_ms(g), 20.0 * cloud.graph_time_ms(g)) << name;
  }
}

TEST(LatencyModel, RooflineMemoryBoundPath) {
  // A pooling layer has trivial FLOPs; its time must be dominated by the
  // bandwidth term, so halving memory bandwidth roughly doubles it.
  const dnn::Graph g = models::build("alexnet");
  dnn::NodeId pool = 0;
  for (dnn::NodeId id = 0; id < g.size(); ++id)
    if (g.layer(id).kind() == dnn::LayerKind::kPool2d) pool = id;
  ASSERT_NE(pool, 0u);

  DeviceProfile fast = DeviceProfile::raspberry_pi_4b();
  DeviceProfile slow = fast;
  slow.memory_gbps = fast.memory_gbps / 2.0;
  fast.per_layer_overhead_ms = slow.per_layer_overhead_ms = 0.0;
  const double t_fast = LatencyModel(fast).node_time_ms(g, pool);
  const double t_slow = LatencyModel(slow).node_time_ms(g, pool);
  EXPECT_NEAR(t_slow / t_fast, 2.0, 0.01);
}

TEST(LatencyModel, ComputeBoundConvScalesWithRate) {
  const dnn::Graph g = models::build("vgg16");
  // vgg conv2 (node index 3: input, conv, relu, conv) is a fat 3x3 conv.
  dnn::NodeId conv = 0;
  int seen = 0;
  for (dnn::NodeId id = 0; id < g.size() && seen < 2; ++id) {
    if (g.layer(id).kind() == dnn::LayerKind::kConv2d) {
      conv = id;
      ++seen;
    }
  }
  DeviceProfile fast = DeviceProfile::raspberry_pi_4b();
  fast.per_layer_overhead_ms = 0.0;
  DeviceProfile slow = fast;
  slow.conv_gflops = fast.conv_gflops / 4.0;
  const double t_fast = LatencyModel(fast).node_time_ms(g, conv);
  const double t_slow = LatencyModel(slow).node_time_ms(g, conv);
  EXPECT_NEAR(t_slow / t_fast, 4.0, 0.05);
}

TEST(LatencyModel, AbsoluteCalibrationSanity) {
  // Pi-4B-class AlexNet inference sits in the 0.2-2 s band; GTX1080-class
  // in the 1-50 ms band.  Coarse bands only — the algorithms depend on
  // shapes, not absolutes.
  const dnn::Graph g = models::build("alexnet");
  const double pi = LatencyModel(DeviceProfile::raspberry_pi_4b()).graph_time_ms(g);
  const double gpu = LatencyModel(DeviceProfile::cloud_gtx1080()).graph_time_ms(g);
  EXPECT_GT(pi, 200.0);
  EXPECT_LT(pi, 2000.0);
  EXPECT_GT(gpu, 1.0);
  EXPECT_LT(gpu, 50.0);
}

}  // namespace
}  // namespace jps::profile
