#include "profile/lookup_table.h"

#include <gtest/gtest.h>

#include <clocale>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "models/registry.h"
#include "profile/profiler.h"

namespace jps::profile {
namespace {

TEST(LookupTable, SetGetAt) {
  LookupTable table;
  table.set("alexnet", 3, 12.5);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_DOUBLE_EQ(*table.get("alexnet", 3), 12.5);
  EXPECT_FALSE(table.get("alexnet", 4).has_value());
  EXPECT_FALSE(table.get("vgg16", 3).has_value());
  EXPECT_DOUBLE_EQ(table.at("alexnet", 3), 12.5);
  EXPECT_THROW((void)table.at("alexnet", 4), std::out_of_range);
}

TEST(LookupTable, OverwriteReplaces) {
  LookupTable table;
  table.set("m", 0, 1.0);
  table.set("m", 0, 2.0);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_DOUBLE_EQ(table.at("m", 0), 2.0);
}

TEST(LookupTable, SerializeRoundTrip) {
  LookupTable table;
  table.set("alexnet", 0, 0.0);
  table.set("alexnet", 1, 17.25);
  table.set("model with spaces", 2, 1e-6);
  const LookupTable parsed = LookupTable::deserialize(table.serialize());
  EXPECT_EQ(parsed.size(), 3u);
  EXPECT_DOUBLE_EQ(parsed.at("alexnet", 1), 17.25);
  EXPECT_DOUBLE_EQ(parsed.at("model with spaces", 2), 1e-6);
}

TEST(LookupTable, DeserializeRejectsGarbage) {
  EXPECT_THROW(LookupTable::deserialize("not a header\n"), std::runtime_error);
  EXPECT_THROW(
      LookupTable::deserialize("jps-lookup-table v1\nbad line here\n"),
      std::runtime_error);
  EXPECT_THROW(
      LookupTable::deserialize("jps-lookup-table v1\nm\tnotanum\t3.0\n"),
      std::runtime_error);
}

TEST(LookupTable, SaveLoadFile) {
  const std::string path = ::testing::TempDir() + "/jps_lookup_test.tsv";
  LookupTable table;
  table.set("resnet18", 7, 42.0);
  table.save(path);
  const LookupTable loaded = LookupTable::load(path);
  EXPECT_DOUBLE_EQ(loaded.at("resnet18", 7), 42.0);
  std::remove(path.c_str());
}

TEST(LookupTable, LoadMissingFileThrows) {
  EXPECT_THROW(LookupTable::load("/nonexistent/jps.tsv"), std::runtime_error);
}

TEST(LookupTable, RejectsModelNamesTheFormatCannotRoundTrip) {
  // The serialized format is tab- and newline-delimited; such names used to
  // serialize silently and corrupt deserialize().  Now set() refuses them.
  LookupTable table;
  EXPECT_THROW(table.set("alex\tnet", 0, 1.0), std::invalid_argument);
  EXPECT_THROW(table.set("alex\nnet", 0, 1.0), std::invalid_argument);
  EXPECT_THROW(table.set("alex\rnet", 0, 1.0), std::invalid_argument);
  EXPECT_EQ(table.size(), 0u);
}

TEST(LookupTable, SerializeRoundTripsAwkwardButLegalNames) {
  LookupTable table;
  table.set("model with spaces", 0, 1.25);
  table.set("model:v2/variant-1", 3, 2.5);
  table.set("unicode-модель", 7, 0.125);
  const LookupTable restored = LookupTable::deserialize(table.serialize());
  EXPECT_EQ(restored.size(), 3u);
  EXPECT_DOUBLE_EQ(restored.at("model with spaces", 0), 1.25);
  EXPECT_DOUBLE_EQ(restored.at("model:v2/variant-1", 3), 2.5);
  EXPECT_DOUBLE_EQ(restored.at("unicode-модель", 7), 0.125);
}

TEST(LookupTable, CoversAfterProfilingCampaign) {
  const dnn::Graph g = models::build("alexnet");
  const Profiler profiler(DeviceProfile::raspberry_pi_4b());
  util::Rng rng(11);
  LookupTable table;
  EXPECT_FALSE(table.covers(g));
  table.add_graph(g, profiler.measure_graph(g, rng));
  EXPECT_TRUE(table.covers(g));
  EXPECT_EQ(table.size(), g.size());
}

TEST(LookupTable, UnparsableLineReportsItsLineNumber) {
  // "2.5x" used to parse as 2.5 via std::stod's prefix rule, silently
  // loading a corrupt table; now it is refused, naming the line.
  try {
    (void)LookupTable::deserialize(
        "jps-lookup-table v1\nm\t0\t1.0\nm\t1\t2.5x\n");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(LookupTable, DeserializeIsLocaleIndependent) {
  // Under a comma-decimal locale std::stod reads "17.25" as 17 — every
  // profiled latency silently truncated.  The parser must not care.
  const std::string saved = std::setlocale(LC_ALL, nullptr);
  if (std::setlocale(LC_ALL, "de_DE.UTF-8") == nullptr &&
      std::setlocale(LC_ALL, "de_DE") == nullptr) {
    GTEST_SKIP() << "no comma-decimal locale installed";
  }
  double value = 0.0;
  std::string error;
  try {
    const LookupTable parsed = LookupTable::deserialize(
        "jps-lookup-table v1\nalexnet\t1\t17.25\n");
    value = parsed.at("alexnet", 1);
  } catch (const std::exception& e) {
    error = e.what();
  }
  std::setlocale(LC_ALL, saved.c_str());
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_DOUBLE_EQ(value, 17.25);
}

}  // namespace
}  // namespace jps::profile
