#include "profile/comm_regression.h"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "util/units.h"

namespace jps::profile {
namespace {

TEST(CommRegression, RecoversNoiselessChannel) {
  const net::Channel channel(5.85, /*setup_latency_ms=*/8.0);
  util::Rng rng(1);
  const CommRegression model = CommRegression::train_on_channel(
      channel, 1024, 8u * 1024 * 1024, 32, /*noise_sigma=*/0.0, rng);
  // w0 must recover the setup latency; predictions must match the channel.
  EXPECT_NEAR(model.w0(), 8.0, 0.5);
  EXPECT_GT(model.r2(), 0.999);
  for (const std::uint64_t bytes : {4096ull, 100'000ull, 1'000'000ull}) {
    EXPECT_NEAR(model.predict_ms(bytes, 5.85), channel.time_ms(bytes),
                0.01 * channel.time_ms(bytes) + 0.5);
  }
}

TEST(CommRegression, GeneralizesAcrossBandwidths) {
  // Trained at one bandwidth, the w0 + w1*(s/b) form extrapolates to others
  // because the regressor is the ratio (the paper's deployment mode).
  const net::Channel train_channel(10.0, 8.0);
  util::Rng rng(2);
  const CommRegression model = CommRegression::train_on_channel(
      train_channel, 1024, 4u * 1024 * 1024, 24, 0.0, rng);
  const net::Channel other(2.0, 8.0);
  const std::uint64_t bytes = 500'000;
  EXPECT_NEAR(model.predict_ms(bytes, 2.0), other.time_ms(bytes),
              0.02 * other.time_ms(bytes) + 1.0);
}

TEST(CommRegression, NoisyTrainingStillClose) {
  const net::Channel channel(18.88, 8.0);
  util::Rng rng(3);
  const CommRegression model = CommRegression::train_on_channel(
      channel, 1024, 8u * 1024 * 1024, 200, /*noise_sigma=*/0.1, rng);
  const std::uint64_t bytes = 2'000'000;
  EXPECT_NEAR(model.predict_ms(bytes, 18.88), channel.time_ms(bytes),
              0.1 * channel.time_ms(bytes));
}

TEST(CommRegression, ZeroBytesIsFree) {
  const net::Channel channel(10.0, 8.0);
  util::Rng rng(4);
  const CommRegression model =
      CommRegression::train_on_channel(channel, 1024, 1'000'000, 16, 0.0, rng);
  EXPECT_DOUBLE_EQ(model.predict_ms(0, 10.0), 0.0);
}

TEST(CommRegression, FitValidation) {
  EXPECT_THROW(CommRegression::fit({}), std::invalid_argument);
  EXPECT_THROW(CommRegression::fit({{100, 1.0, 5.0}}), std::invalid_argument);
  EXPECT_THROW(CommRegression::fit({{100, 0.0, 5.0}, {200, 1.0, 6.0}}),
               std::invalid_argument);
}

TEST(CommRegression, PredictValidation) {
  // Regression: predict_ms divided by the bandwidth unchecked, so 0 gave
  // +inf, a negative rate gave a negative latency, and NaN/inf wandered
  // straight into the planner's comparisons.  Now it refuses.
  const net::Channel channel(10.0, 8.0);
  util::Rng rng(7);
  const CommRegression model = CommRegression::train_on_channel(
      channel, 1024, 4u * 1024 * 1024, 24, 0.0, rng);
  EXPECT_THROW(model.predict_ms(1000, 0.0), std::invalid_argument);
  EXPECT_THROW(model.predict_ms(1000, -1.0), std::invalid_argument);
  EXPECT_THROW(model.predict_ms(1000, std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
  EXPECT_THROW(model.predict_ms(1000, std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  // A valid rate still predicts.
  EXPECT_GT(model.predict_ms(1000, 10.0), 0.0);
}

TEST(CommRegression, FitRejectsNonFiniteBandwidth) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(CommRegression::fit({{100, nan, 5.0}, {200, 1.0, 6.0}}),
               std::invalid_argument);
}

TEST(CommRegression, TrainValidation) {
  const net::Channel channel(10.0);
  util::Rng rng(5);
  EXPECT_THROW(
      CommRegression::train_on_channel(channel, 1024, 2048, 1, 0.0, rng),
      std::invalid_argument);
  EXPECT_THROW(
      CommRegression::train_on_channel(channel, 0, 2048, 8, 0.0, rng),
      std::invalid_argument);
  EXPECT_THROW(
      CommRegression::train_on_channel(channel, 4096, 2048, 8, 0.0, rng),
      std::invalid_argument);
}

}  // namespace
}  // namespace jps::profile
