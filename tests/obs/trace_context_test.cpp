// TraceContext: id minting, thread-local scoping, hex codecs, and the
// ThreadPool propagation that carries a request's trace onto pool workers.
#include "obs/trace_context.h"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/obs.h"
#include "util/thread_pool.h"

namespace jps::obs {
namespace {

TEST(TraceContext, DefaultIsInvalidAndZero) {
  const TraceContext context;
  EXPECT_FALSE(context.valid());
  EXPECT_EQ(context.trace_hi, 0u);
  EXPECT_EQ(context.trace_lo, 0u);
  EXPECT_EQ(context.span_id, 0u);
}

TEST(TraceContext, StartMintsValidDistinctIds) {
  std::set<std::pair<std::uint64_t, std::uint64_t>> seen;
  for (int i = 0; i < 64; ++i) {
    const TraceContext context = TraceContext::start();
    EXPECT_TRUE(context.valid());
    EXPECT_NE(context.span_id, 0u);
    seen.insert({context.trace_hi, context.trace_lo});
  }
  EXPECT_EQ(seen.size(), 64u);  // no collisions in a short run
}

TEST(TraceContext, NextSpanIdIsNonZeroAndDistinct) {
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t id = TraceContext::next_span_id();
    EXPECT_NE(id, 0u);
    seen.insert(id);
  }
  EXPECT_EQ(seen.size(), 64u);
}

TEST(TraceContext, ScopeInstallsAndRestoresNested) {
  EXPECT_FALSE(TraceContext::current().valid());
  const TraceContext outer = TraceContext::start();
  {
    TraceScope outer_scope(outer);
    EXPECT_EQ(TraceContext::current(), outer);
    const TraceContext inner = TraceContext::start();
    {
      TraceScope inner_scope(inner);
      EXPECT_EQ(TraceContext::current(), inner);
    }
    EXPECT_EQ(TraceContext::current(), outer);
  }
  EXPECT_FALSE(TraceContext::current().valid());
}

TEST(TraceContext, ContextIsThreadLocal) {
  const TraceContext context = TraceContext::start();
  TraceScope scope(context);
  bool other_thread_sees_it = true;
  std::thread probe(
      [&] { other_thread_sees_it = TraceContext::current().valid(); });
  probe.join();
  EXPECT_FALSE(other_thread_sees_it);
}

TEST(TraceContext, HexCodecsRoundTrip) {
  const std::string trace = trace_id_hex(0x0123456789ABCDEFull, 0xFEDCBA98ull);
  EXPECT_EQ(trace.size(), 32u);
  EXPECT_EQ(trace, "0123456789abcdef00000000fedcba98");
  const std::string span = span_id_hex(0xDEADBEEFull);
  EXPECT_EQ(span.size(), 16u);
  EXPECT_EQ(span, "00000000deadbeef");
  EXPECT_EQ(parse_hex_u64("00000000deadbeef"), 0xDEADBEEFull);
  EXPECT_EQ(parse_hex_u64(trace.substr(0, 16)), 0x0123456789ABCDEFull);
}

TEST(TraceContext, ParseHexRejectsGarbage) {
  EXPECT_THROW((void)parse_hex_u64(""), std::invalid_argument);
  EXPECT_THROW((void)parse_hex_u64("xyz"), std::invalid_argument);
  EXPECT_THROW((void)parse_hex_u64("0123456789abcdef0"),  // 17 digits
               std::invalid_argument);
}

TEST(TraceContext, ThreadPoolSubmitCarriesTheContext) {
  const TraceContext context = TraceContext::start();
  util::ThreadPool pool(2);
  TraceContext seen_with;
  TraceContext seen_without;
  {
    TraceScope scope(context);
    seen_with = pool.submit([] { return TraceContext::current(); }).get();
  }
  // The context is captured at submit() time, not worker time.
  seen_without = pool.submit([] { return TraceContext::current(); }).get();
  EXPECT_EQ(seen_with, context);
  EXPECT_FALSE(seen_without.valid());
}

TEST(TraceContext, WorkerContextDoesNotLeakAcrossTasks) {
  util::ThreadPool pool(1);  // one worker: both tasks share a thread
  const TraceContext context = TraceContext::start();
  {
    TraceScope scope(context);
    pool.submit([] {}).get();
  }
  const TraceContext later =
      pool.submit([] { return TraceContext::current(); }).get();
  EXPECT_FALSE(later.valid());
}

}  // namespace
}  // namespace jps::obs
