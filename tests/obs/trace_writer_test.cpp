#include "obs/trace_writer.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/obs.h"

namespace jps::obs {
namespace {

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(json_escape("planner.plan"), "planner.plan");
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape("a\rb"), "a\\rb");
  EXPECT_EQ(json_escape("a\tb"), "a\\tb");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(TraceWriter, EmptyWriterIsValidEnvelope) {
  TraceWriter writer;
  const std::string json = writer.json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '\n');
}

TEST(TraceWriter, CompleteEventCarriesMicrosecondTimes) {
  TraceWriter writer;
  TraceWriter::Event event;
  event.name = "step";
  event.category = "test";
  event.pid = 1;
  event.tid = 2;
  event.start_ms = 1.5;   // -> 1500 us
  event.dur_ms = 0.25;    // -> 250 us
  event.args.emplace_back("cut", "3");
  writer.add_event(event);

  const std::string json = writer.json();
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"step\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":2"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1500"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":250"), std::string::npos);
  EXPECT_NE(json.find("\"cut\":\"3\""), std::string::npos);
}

TEST(TraceWriter, MetadataEventsLabelTracks) {
  TraceWriter writer;
  writer.set_process_name(1, "simulated timeline");
  writer.set_thread_name(1, 0, "mobile_cpu");
  const std::string json = writer.json();
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("simulated timeline"), std::string::npos);
  EXPECT_NE(json.find("mobile_cpu"), std::string::npos);
}

TEST(TraceWriter, AddSpansMapsThreadToTid) {
  SpanRecord record;
  record.name = "planner.plan";
  record.category = "core";
  record.start_ms = 2.0;
  record.dur_ms = 1.0;
  record.thread = 5;
  record.args.emplace_back("n_jobs", "8");

  TraceWriter writer;
  writer.add_spans({record}, /*pid=*/0);
  ASSERT_EQ(writer.events().size(), 1u);
  EXPECT_EQ(writer.events()[0].pid, 0);
  EXPECT_EQ(writer.events()[0].tid, 5u);
  EXPECT_EQ(writer.events()[0].name, "planner.plan");
  EXPECT_NE(writer.json().find("\"n_jobs\":\"8\""), std::string::npos);
}

TEST(TraceWriter, CounterSnapshotTravelsAsArgs) {
  TraceWriter writer;
  writer.add_counter_snapshot({{"plan_cache.plan_hits", 12},
                               {"planner.plans", 34}});
  const std::string json = writer.json();
  EXPECT_NE(json.find("plan_cache.plan_hits"), std::string::npos);
  EXPECT_NE(json.find("\"12\""), std::string::npos);
  EXPECT_NE(json.find("\"34\""), std::string::npos);
}

TEST(TraceWriter, EscapesEventNames) {
  TraceWriter writer;
  TraceWriter::Event event;
  event.name = "weird \"name\"\n";
  writer.add_event(event);
  const std::string json = writer.json();
  EXPECT_NE(json.find("weird \\\"name\\\"\\n"), std::string::npos);
  EXPECT_EQ(json.find('\n', json.find("weird")),
            json.rfind('\n'));  // no raw newline inside the literal
}

TEST(TraceWriter, SaveWritesJsonAndThrowsOnBadPath) {
  TraceWriter writer;
  TraceWriter::Event event;
  event.name = "saved";
  writer.add_event(event);

  const std::string path =
      ::testing::TempDir() + "/jps_trace_writer_test.json";
  writer.save(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), writer.json());
  std::remove(path.c_str());

  EXPECT_THROW(writer.save("/nonexistent-dir/trace.json"),
               std::runtime_error);
}

}  // namespace
}  // namespace jps::obs
