// Flight recorder: tail-based retention (errors, latency tails, 1-in-N
// sampling), span capture from ~Span, ring eviction, exemplars, and the
// JSON round trip + structural validator the scrape path depends on.
#include "obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/obs.h"
#include "obs/trace_context.h"
#include "util/json.h"

namespace jps::obs {
namespace {

// The recorder is process-global; every test starts from defaults with
// recording on and leaves it off.
class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FlightRecorder::global().reset();
    FlightRecorder::global().set_enabled(true);
  }
  void TearDown() override {
    FlightRecorder::global().set_enabled(false);
    FlightRecorder::global().reset();
  }
};

SpanRecord make_span(const TraceContext& context, std::uint64_t span_id,
                     std::uint64_t parent, double start_ms, double dur_ms,
                     const std::string& name = "work") {
  SpanRecord record;
  record.name = name;
  record.category = "test";
  record.trace_hi = context.trace_hi;
  record.trace_lo = context.trace_lo;
  record.span_id = span_id;
  record.parent_span_id = parent;
  record.start_ms = start_ms;
  record.dur_ms = dur_ms;
  return record;
}

TEST_F(FlightRecorderTest, ErrorTracesAreAlwaysRetained) {
  FlightRecorder& recorder = FlightRecorder::global();
  recorder.set_sample_every(1000000);  // sampling alone would keep ~nothing
  for (int i = 0; i < 8; ++i) {
    const TraceContext context = TraceContext::start();
    recorder.finish(context, "RESOURCE_EXHAUSTED", /*error=*/true,
                    /*start_ms=*/0.0, /*dur_ms=*/0.1);
  }
  EXPECT_EQ(recorder.size(), 8u);
  for (const TraceRecord& record : recorder.drain()) {
    EXPECT_TRUE(record.error);
    EXPECT_EQ(record.status, "RESOURCE_EXHAUSTED");
  }
}

TEST_F(FlightRecorderTest, UnremarkableTracesAreHeadSampledOneInN) {
  FlightRecorder& recorder = FlightRecorder::global();
  recorder.set_sample_every(4);
  for (int i = 0; i < 8; ++i)  // ticks 0..7: ticks 0 and 4 are kept
    recorder.finish(TraceContext::start(), "OK", false, 0.0, 0.1);
  EXPECT_EQ(recorder.size(), 2u);
}

TEST_F(FlightRecorderTest, LatencyTailsBeatTheSampler) {
  FlightRecorder& recorder = FlightRecorder::global();
  recorder.set_sample_every(1000000);
  // Fill the internal latency histogram past a p99 refresh (every 32).
  for (std::uint64_t i = 0; i <= FlightRecorder::kP99RefreshEvery; ++i)
    recorder.finish(TraceContext::start(), "OK", false, 0.0, 1.0);
  (void)recorder.drain();
  ASSERT_GT(recorder.latency_p99_ms(), 0.0);
  ASSERT_LE(recorder.latency_p99_ms(), 5.0);
  recorder.finish(TraceContext::start(), "OK", false, 0.0, 50.0);
  const std::vector<TraceRecord> kept = recorder.drain();
  bool found_tail = false;
  for (const TraceRecord& record : kept)
    if (record.dur_ms == 50.0) found_tail = true;
  EXPECT_TRUE(found_tail);
}

TEST_F(FlightRecorderTest, RingEvictsOldestAtCapacity) {
  FlightRecorder& recorder = FlightRecorder::global();
  recorder.set_capacity(2);
  recorder.set_sample_every(1);
  for (int i = 0; i < 5; ++i)
    recorder.finish(TraceContext::start(), "OK", false, double(i), 0.1);
  const std::vector<TraceRecord> kept = recorder.drain();
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].start_ms, 3.0);  // oldest three were evicted
  EXPECT_EQ(kept[1].start_ms, 4.0);
}

TEST_F(FlightRecorderTest, SpansPerTraceAreCappedWithDropCount) {
  FlightRecorder& recorder = FlightRecorder::global();
  recorder.set_sample_every(1);
  recorder.set_max_spans_per_trace(2);
  const TraceContext context = TraceContext::start();
  for (int i = 0; i < 5; ++i)
    recorder.record_span(
        make_span(context, 100 + std::uint64_t(i), 0, double(i), 0.1));
  recorder.finish(context, "OK", false, 0.0, 5.0);
  const std::vector<TraceRecord> kept = recorder.drain();
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].spans.size(), 2u);
  EXPECT_EQ(kept[0].spans_dropped, 3u);
}

TEST_F(FlightRecorderTest, ScopedSpansReachTheRecorderWithoutJpsTrace) {
  ASSERT_FALSE(enabled());  // JPS_TRACE is off in tests
  FlightRecorder& recorder = FlightRecorder::global();
  recorder.set_sample_every(1);
  const TraceContext context = TraceContext::start();
  {
    TraceScope scope(context);
    Span outer("outer", "test");
    Span inner("inner", "test");
  }
  recorder.finish(context, "OK", false, 0.0, 1.0);
  const std::vector<TraceRecord> kept = recorder.drain();
  ASSERT_EQ(kept.size(), 1u);
  ASSERT_EQ(kept[0].spans.size(), 2u);  // destruction order: inner first
  const SpanRecord& inner = kept[0].spans[0];
  const SpanRecord& outer = kept[0].spans[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.trace_hi, context.trace_hi);
  EXPECT_EQ(outer.parent_span_id, context.span_id);
  EXPECT_EQ(inner.parent_span_id, outer.span_id);  // causal nesting
  // Nothing reached the registry: process-wide tracing stayed off.
  EXPECT_EQ(Registry::global().span_count(), 0u);
  EXPECT_TRUE(validate_trace(kept[0]).empty());
}

TEST_F(FlightRecorderTest, DisabledRecorderIgnoresEverything) {
  FlightRecorder& recorder = FlightRecorder::global();
  recorder.set_enabled(false);
  const TraceContext context = TraceContext::start();
  recorder.record_span(make_span(context, 1, 0, 0.0, 1.0));
  recorder.finish(context, "OK", true, 0.0, 1.0);
  EXPECT_EQ(recorder.size(), 0u);
}

TEST_F(FlightRecorderTest, ExemplarsLinkBucketsToTraceIds) {
  FlightRecorder& recorder = FlightRecorder::global();
  const TraceContext context = TraceContext::start();
  recorder.record_exemplar("serve.plan_ms", 12.5, context);
  const std::vector<Exemplar> exemplars = recorder.exemplars();
  ASSERT_EQ(exemplars.size(), 1u);
  EXPECT_EQ(exemplars[0].histogram, "serve.plan_ms");
  EXPECT_EQ(exemplars[0].value, 12.5);
  EXPECT_EQ(exemplars[0].trace_hi, context.trace_hi);
  EXPECT_EQ(exemplars[0].trace_lo, context.trace_lo);
  // A newer observation in the same bucket replaces the exemplar.
  const TraceContext newer = TraceContext::start();
  recorder.record_exemplar("serve.plan_ms", 12.5, newer);
  ASSERT_EQ(recorder.exemplars().size(), 1u);
  EXPECT_EQ(recorder.exemplars()[0].trace_hi, newer.trace_hi);
}

TEST_F(FlightRecorderTest, JsonRoundTripPreservesEveryField) {
  const TraceContext context = TraceContext::start();
  TraceRecord record;
  record.trace_hi = context.trace_hi;
  record.trace_lo = context.trace_lo;
  record.status = "DEADLINE_EXCEEDED";
  record.error = true;
  record.start_ms = 10.0;
  record.dur_ms = 7.5;
  record.spans_dropped = 2;
  record.spans.push_back(make_span(context, 7, 0, 10.0, 7.5, "root"));
  record.spans.push_back(make_span(context, 8, 7, 11.0, 2.0, "child"));
  record.spans[1].args.push_back({"model", "alexnet"});
  Registry::global().set_thread_name("flightrec-json-test");
  record.spans[0].thread = Registry::global().thread_index();

  const std::string json = flight_records_json({record});
  const util::Json doc = util::Json::parse(json);
  const std::vector<TraceRecord> parsed = flight_records_from_json(doc);
  // The dump carries names for the registry-labeled threads it references.
  const auto names = flight_thread_names_from_json(doc);
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0].first, record.spans[0].thread);
  EXPECT_EQ(names[0].second, "flightrec-json-test");
  ASSERT_EQ(parsed.size(), 1u);
  const TraceRecord& back = parsed[0];
  EXPECT_EQ(back.trace_hi, record.trace_hi);
  EXPECT_EQ(back.trace_lo, record.trace_lo);
  EXPECT_EQ(back.status, record.status);
  EXPECT_EQ(back.error, record.error);
  EXPECT_EQ(back.start_ms, record.start_ms);
  EXPECT_EQ(back.dur_ms, record.dur_ms);
  EXPECT_EQ(back.spans_dropped, record.spans_dropped);
  ASSERT_EQ(back.spans.size(), 2u);
  EXPECT_EQ(back.spans[0].name, "root");
  EXPECT_EQ(back.spans[1].span_id, 8u);
  EXPECT_EQ(back.spans[1].parent_span_id, 7u);
  ASSERT_EQ(back.spans[1].args.size(), 1u);
  EXPECT_EQ(back.spans[1].args[0].second, "alexnet");
  EXPECT_TRUE(validate_trace(back).empty());
}

TEST_F(FlightRecorderTest, ValidatorRejectsStructuralViolations) {
  const TraceContext context = TraceContext::start();
  TraceRecord record;
  record.trace_hi = context.trace_hi;
  record.trace_lo = context.trace_lo;
  record.dur_ms = 10.0;

  // Zero span id.
  record.spans = {make_span(context, 0, 0, 0.0, 1.0)};
  EXPECT_FALSE(validate_trace(record).empty());

  // Duplicate span ids.
  record.spans = {make_span(context, 5, 0, 0.0, 5.0),
                  make_span(context, 5, 0, 1.0, 1.0)};
  EXPECT_FALSE(validate_trace(record).empty());

  // Child interval escapes its parent (well past the default slack).
  record.spans = {make_span(context, 5, 0, 0.0, 1.0),
                  make_span(context, 6, 5, 0.5, 4.0)};
  EXPECT_FALSE(validate_trace(record).empty());

  // Parent cycle, no root.
  record.spans = {make_span(context, 5, 6, 0.0, 1.0),
                  make_span(context, 6, 5, 0.0, 1.0)};
  EXPECT_FALSE(validate_trace(record).empty());

  // A healthy tree passes.
  record.spans = {make_span(context, 5, 0, 0.0, 10.0),
                  make_span(context, 6, 5, 1.0, 2.0),
                  make_span(context, 7, 5, 4.0, 3.0)};
  EXPECT_TRUE(validate_trace(record).empty());
}

TEST_F(FlightRecorderTest, DrainRespectsMaxAndReportsRemaining) {
  FlightRecorder& recorder = FlightRecorder::global();
  recorder.set_sample_every(1);
  for (int i = 0; i < 6; ++i)
    recorder.finish(TraceContext::start(), "OK", false, double(i), 0.1);
  EXPECT_EQ(recorder.size(), 6u);
  EXPECT_EQ(recorder.drain(4).size(), 4u);
  EXPECT_EQ(recorder.size(), 2u);
  EXPECT_EQ(recorder.drain().size(), 2u);
  EXPECT_EQ(recorder.size(), 0u);
}

}  // namespace
}  // namespace jps::obs
