#include "obs/obs.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace jps::obs {
namespace {

// Every test owns the global registry + enable flag; restore defaults so
// ordering between tests (and other suites in the binary) cannot matter.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override { Registry::global().reset(); }
  void TearDown() override {
    set_enabled(false);
    Registry::global().reset();
  }
};

TEST_F(ObsTest, DisabledSpanRecordsNothing) {
  set_enabled(false);
  {
    Span span("quiet", "test");
    span.arg("key", "value");
    EXPECT_FALSE(span.active());
  }
  EXPECT_EQ(Registry::global().span_count(), 0u);
}

TEST_F(ObsTest, EnabledSpanRecordsNameCategoryAndArgs) {
  set_enabled(true);
  {
    Span span("work", "test");
    EXPECT_TRUE(span.active());
    span.arg("label", "alpha");
    span.arg("value", 2.5);
  }
  const std::vector<SpanRecord> spans = Registry::global().spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "work");
  EXPECT_EQ(spans[0].category, "test");
  EXPECT_GE(spans[0].start_ms, 0.0);
  EXPECT_GE(spans[0].dur_ms, 0.0);
  ASSERT_EQ(spans[0].args.size(), 2u);
  EXPECT_EQ(spans[0].args[0].first, "label");
  EXPECT_EQ(spans[0].args[0].second, "alpha");
  EXPECT_EQ(spans[0].args[1].first, "value");
  // Numeric args are formatted with %g-style precision; prefix is enough.
  EXPECT_EQ(spans[0].args[1].second.substr(0, 3), "2.5");
}

TEST_F(ObsTest, EnableStateGatesAtConstruction) {
  set_enabled(false);
  Span* span = nullptr;
  {
    Span local("late", "test");
    span = &local;
    set_enabled(true);  // too late for `local`, in time for the next one
    EXPECT_FALSE(span->active());
  }
  EXPECT_EQ(Registry::global().span_count(), 0u);
  { Span counted("on-time", "test"); }
  EXPECT_EQ(Registry::global().span_count(), 1u);
}

TEST_F(ObsTest, CountersAccumulateAndReset) {
  Counter& c = counter("test.counter");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name -> same handle.
  EXPECT_EQ(&counter("test.counter"), &c);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(ObsTest, CountersSnapshotIsSortedByName) {
  counter("test.zebra").add(1);
  counter("test.apple").add(2);
  counter("test.mango").add(3);
  const auto snapshot = Registry::global().counters();
  ASSERT_GE(snapshot.size(), 3u);
  for (std::size_t i = 1; i < snapshot.size(); ++i)
    EXPECT_LT(snapshot[i - 1].first, snapshot[i].first);
}

TEST_F(ObsTest, CounterHandleStableAcrossThreads) {
  Counter& c = counter("test.threads");
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kAddsPerThread; ++i) counter("test.threads").add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(),
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
}

TEST_F(ObsTest, ConcurrentSpansAllRecorded) {
  set_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kSpansPerThread; ++i)
        Span span("t" + std::to_string(t), "test");
    });
  }
  for (std::thread& t : threads) t.join();
  const auto spans = Registry::global().spans();
  EXPECT_EQ(spans.size(),
            static_cast<std::size_t>(kThreads) * kSpansPerThread);
  // Thread indices are small and stable, not raw thread ids.
  for (const SpanRecord& s : spans) EXPECT_LT(s.thread, 64u);
}

TEST_F(ObsTest, ClearSpansKeepsCounters) {
  set_enabled(true);
  counter("test.kept").add(7);
  { Span span("gone", "test"); }
  ASSERT_EQ(Registry::global().span_count(), 1u);
  Registry::global().clear_spans();
  EXPECT_EQ(Registry::global().span_count(), 0u);
  EXPECT_EQ(counter("test.kept").value(), 7u);
}

TEST_F(ObsTest, NowMsIsMonotone) {
  const double a = Registry::global().now_ms();
  const double b = Registry::global().now_ms();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
}

}  // namespace
}  // namespace jps::obs
