#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics_export.h"
#include "obs/obs.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/stats.h"

namespace jps::obs {
namespace {

// Shares the obs fixture discipline: every test starts from and leaves
// behind a clean global registry.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override { Registry::global().reset(); }
  void TearDown() override {
    set_enabled(false);
    Registry::global().reset();
  }
};

TEST_F(MetricsTest, BucketIndexEdgeCases) {
  // Degenerate values go to the underflow bucket rather than UB.
  EXPECT_EQ(Histogram::bucket_index(0.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(-3.5), 0u);
  EXPECT_EQ(Histogram::bucket_index(1e-12), 0u);
  EXPECT_EQ(Histogram::bucket_index(std::nan("")), 0u);
  // Huge and infinite values go to the overflow bucket.
  EXPECT_EQ(Histogram::bucket_index(1e300), Histogram::kBucketCount - 1);
  EXPECT_EQ(Histogram::bucket_index(std::numeric_limits<double>::infinity()),
            Histogram::kBucketCount - 1);
  // In-range values land in a bucket whose bounds contain them.
  for (const double v : {1e-6, 0.001, 0.5, 1.0, 3.14159, 1000.0, 8.5e8}) {
    const std::size_t i = Histogram::bucket_index(v);
    ASSERT_GT(i, 0u);
    ASSERT_LT(i, Histogram::kBucketCount - 1);
    EXPECT_LE(Histogram::bucket_lower(i), v) << v;
    EXPECT_GT(Histogram::bucket_upper(i), v) << v;
  }
}

TEST_F(MetricsTest, BucketBoundsAreContiguousAndMonotone) {
  for (std::size_t i = 1; i + 1 < Histogram::kBucketCount; ++i) {
    EXPECT_LT(Histogram::bucket_lower(i), Histogram::bucket_upper(i)) << i;
    EXPECT_DOUBLE_EQ(Histogram::bucket_upper(i), Histogram::bucket_lower(i + 1))
        << i;
  }
}

TEST_F(MetricsTest, CountSumMinMaxExact) {
  Histogram h("test");
  h.record(3.0);
  h.record(1.0);
  h.record(10.0);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_DOUBLE_EQ(snap.sum, 14.0);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 10.0);
  EXPECT_DOUBLE_EQ(snap.mean(), 14.0 / 3.0);
}

// The acceptance bound: histogram percentiles track the exact (sorted,
// linearly interpolated) util::percentile within the documented relative
// error on a large skewed sample.
TEST_F(MetricsTest, PercentileMatchesExactWithinRelativeError) {
  util::Rng rng(7);
  Histogram h("test");
  std::vector<double> samples;
  constexpr int kSamples = 20000;
  samples.reserve(kSamples);
  for (int i = 0; i < kSamples; ++i) {
    // Lognormal-ish latencies spanning ~3 decades around 5 ms.
    const double v = 5.0 * rng.lognormal_factor(1.0);
    samples.push_back(v);
    h.record(v);
  }
  // 2x the per-bucket bound: the exact value interpolates between two
  // neighbouring order statistics which may straddle a bucket boundary.
  const double tolerance = 2.0 * Histogram::kRelativeError;
  for (const double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 99.9}) {
    const double exact = util::percentile(samples, p);
    const double approx = h.percentile(p);
    EXPECT_NEAR(approx, exact, exact * tolerance) << "p" << p;
  }
}

TEST_F(MetricsTest, PercentileEmptyAndSingle) {
  Histogram h("test");
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
  h.record(42.0);
  const double p50 = h.percentile(50.0);
  EXPECT_NEAR(p50, 42.0, 42.0 * 2.0 * Histogram::kRelativeError);
  // Every percentile of a single sample is that sample's bucket.
  EXPECT_DOUBLE_EQ(h.percentile(0.0), p50);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), p50);
}

// Merge must be associative: (a + b) + c == a + (b + c), bucket-wise and in
// count.  Integer-valued samples make the sums exact too.
TEST_F(MetricsTest, MergeIsAssociative) {
  util::Rng rng(11);
  Histogram ha("a"), hb("b"), hc("c");
  for (int i = 0; i < 500; ++i) {
    ha.record(static_cast<double>(rng.uniform_int(1, 1000)));
    hb.record(static_cast<double>(rng.uniform_int(1, 100000)));
    hc.record(static_cast<double>(rng.uniform_int(1, 50)));
  }
  const HistogramSnapshot a = ha.snapshot();
  const HistogramSnapshot b = hb.snapshot();
  const HistogramSnapshot c = hc.snapshot();

  HistogramSnapshot left = a;   // (a + b) + c
  left.merge(b);
  left.merge(c);
  HistogramSnapshot bc = b;     // a + (b + c)
  bc.merge(c);
  HistogramSnapshot right = a;
  right.merge(bc);

  EXPECT_EQ(left.count, right.count);
  EXPECT_EQ(left.count, 1500u);
  EXPECT_DOUBLE_EQ(left.sum, right.sum);
  EXPECT_DOUBLE_EQ(left.min, right.min);
  EXPECT_DOUBLE_EQ(left.max, right.max);
  ASSERT_EQ(left.buckets.size(), right.buckets.size());
  for (std::size_t i = 0; i < left.buckets.size(); ++i)
    EXPECT_EQ(left.buckets[i], right.buckets[i]) << i;
}

TEST_F(MetricsTest, MergeEmptySnapshotsAndLayoutMismatch) {
  Histogram h("test");
  h.record(2.0);
  HistogramSnapshot snap = h.snapshot();
  HistogramSnapshot empty;
  snap.merge(empty);  // no-op
  EXPECT_EQ(snap.count, 1u);
  empty.merge(snap);  // adopts
  EXPECT_EQ(empty.count, 1u);
  HistogramSnapshot bad = snap;
  bad.buckets.resize(3);
  EXPECT_THROW(snap.merge(bad), std::invalid_argument);
}

// Concurrent recording must lose nothing: count and sum are exact when the
// recorded values are integers (FP addition of integers is associative in
// this range).  The TSan CI job runs this binary, so this test doubles as
// the lock-free-recording race check.
TEST_F(MetricsTest, ConcurrentRecordIsDeterministic) {
  Histogram h("test");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i)
        h.record(static_cast<double>(t + 1));
    });
  }
  for (std::thread& t : threads) t.join();

  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  // sum = kPerThread * (1 + 2 + ... + kThreads)
  EXPECT_DOUBLE_EQ(snap.sum, kPerThread * (kThreads * (kThreads + 1) / 2.0));
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, static_cast<double>(kThreads));
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, snap.count);
}

TEST_F(MetricsTest, GaugeSetAddAndRegistryIdentity) {
  Gauge& g = gauge("test.gauge");
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-0.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  EXPECT_EQ(&gauge("test.gauge"), &g);
  EXPECT_NE(&gauge("test.other"), &g);
}

TEST_F(MetricsTest, ScopedTimerRecordsOnceAndCancelDetaches) {
  Histogram& h = histogram("test.timer_ms");
  {
    ScopedTimer timer(h);
    EXPECT_GE(timer.elapsed_ms(), 0.0);
  }
  EXPECT_EQ(h.count(), 1u);
  {
    ScopedTimer timer(h);
    timer.cancel();
  }
  EXPECT_EQ(h.count(), 1u);
}

// Regression test for the PR's satellite: reset() must clear the metric
// types added after the original spans+counters implementation.
TEST_F(MetricsTest, RegistryResetClearsGaugesAndHistograms) {
  gauge("test.gauge").set(7.0);
  histogram("test.hist").record(3.0);
  counter("test.counter").add(5);
  Registry::global().reset();
  EXPECT_DOUBLE_EQ(gauge("test.gauge").value(), 0.0);
  EXPECT_EQ(histogram("test.hist").count(), 0u);
  EXPECT_DOUBLE_EQ(histogram("test.hist").sum(), 0.0);
  EXPECT_EQ(counter("test.counter").value(), 0u);
  // A cleared histogram records correctly again (min/max sentinels rearmed).
  histogram("test.hist").record(4.0);
  const HistogramSnapshot snap = histogram("test.hist").snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_DOUBLE_EQ(snap.min, 4.0);
  EXPECT_DOUBLE_EQ(snap.max, 4.0);
}

TEST_F(MetricsTest, SpanCapacityDropsAndCounts) {
  set_enabled(true);
  Registry::global().set_span_capacity(4);
  for (int i = 0; i < 10; ++i) { Span span("s" + std::to_string(i), "test"); }
  EXPECT_EQ(Registry::global().span_count(), 4u);
  EXPECT_EQ(Registry::global().spans_dropped(), 6u);
  EXPECT_EQ(counter("obs.spans_dropped").value(), 6u);
  // reset() restores the default capacity and zeroes the drop count.
  Registry::global().reset();
  EXPECT_EQ(Registry::global().span_capacity(),
            Registry::kDefaultSpanCapacity);
  EXPECT_EQ(Registry::global().spans_dropped(), 0u);
}

TEST_F(MetricsTest, RegistrySnapshotsAreSortedByName) {
  gauge("test.zebra").set(1.0);
  gauge("test.apple").set(2.0);
  histogram("test.zebra").record(1.0);
  histogram("test.apple").record(2.0);
  const auto gauges = Registry::global().gauges();
  const auto histograms = Registry::global().histograms();
  ASSERT_GE(gauges.size(), 2u);
  ASSERT_GE(histograms.size(), 2u);
  for (std::size_t i = 1; i < gauges.size(); ++i)
    EXPECT_LT(gauges[i - 1].first, gauges[i].first);
  for (std::size_t i = 1; i < histograms.size(); ++i)
    EXPECT_LT(histograms[i - 1].first, histograms[i].first);
}

TEST_F(MetricsTest, OpenMetricsNameSanitization) {
  EXPECT_EQ(openmetrics_name("plan_cache.hit_ratio"),
            "jps_plan_cache_hit_ratio");
  EXPECT_EQ(openmetrics_name("sim.makespan-ms"), "jps_sim_makespan_ms");
  EXPECT_EQ(openmetrics_name("weird name!"), "jps_weird_name_");
}

// The OpenMetrics exposition must be internally consistent: cumulative
// monotone buckets, +Inf bucket == _count, and the mandatory trailer.
TEST_F(MetricsTest, OpenMetricsExposition) {
  counter("test.events").add(3);
  gauge("test.depth").set(2.5);
  Histogram& h = histogram("test.latency_ms");
  for (const double v : {0.5, 1.0, 2.0, 4.0, 1000.0}) h.record(v);

  const MetricsSnapshot snapshot = MetricsSnapshot::capture();
  const std::string text = to_openmetrics(snapshot);

  EXPECT_NE(text.find("# TYPE jps_test_events counter\n"), std::string::npos);
  EXPECT_NE(text.find("jps_test_events_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE jps_test_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("jps_test_depth 2.5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE jps_test_latency_ms histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("jps_test_latency_ms_bucket{le=\"+Inf\"} 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("jps_test_latency_ms_count 5\n"), std::string::npos);
  EXPECT_NE(text.find("jps_test_latency_ms_sum 1007.5\n"), std::string::npos);
  // Must end with the OpenMetrics EOF marker.
  ASSERT_GE(text.size(), 6u);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");

  // Bucket series are cumulative and monotone.
  std::uint64_t last = 0;
  std::size_t pos = 0;
  int buckets_seen = 0;
  const std::string needle = "jps_test_latency_ms_bucket{le=\"";
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    const std::size_t value_at = text.find("} ", pos) + 2;
    const std::uint64_t cumulative = std::stoull(text.substr(value_at));
    EXPECT_GE(cumulative, last);
    last = cumulative;
    ++buckets_seen;
    ++pos;
  }
  EXPECT_GE(buckets_seen, 2);
  EXPECT_EQ(last, 5u);  // the +Inf bucket equals the count
}

// The JSON exposition must parse with the repo's own parser and round-trip
// the instrument values.
TEST_F(MetricsTest, JsonExpositionRoundTrips) {
  counter("test.events").add(7);
  gauge("test.ratio").set(0.75);
  Histogram& h = histogram("test.latency_ms");
  for (int i = 1; i <= 100; ++i) h.record(static_cast<double>(i));

  const MetricsSnapshot snapshot = MetricsSnapshot::capture();
  const util::Json doc = util::Json::parse(to_json(snapshot));

  EXPECT_DOUBLE_EQ(doc.at("counters").at("test.events").as_double(), 7.0);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("test.ratio").as_double(), 0.75);
  const util::Json& hist = doc.at("histograms").at("test.latency_ms");
  EXPECT_DOUBLE_EQ(hist.at("count").as_double(), 100.0);
  EXPECT_DOUBLE_EQ(hist.at("sum").as_double(), 5050.0);
  EXPECT_DOUBLE_EQ(hist.at("min").as_double(), 1.0);
  EXPECT_DOUBLE_EQ(hist.at("max").as_double(), 100.0);
  const double p50 = hist.at("p50").as_double();
  EXPECT_NEAR(p50, 50.5, 50.5 * 2.0 * Histogram::kRelativeError);
  // Bucket list: les are increasing, counts sum to the total.
  const util::Json& buckets = hist.at("buckets");
  ASSERT_TRUE(buckets.is_array());
  double bucket_sum = 0.0;
  for (std::size_t i = 0; i < buckets.size(); ++i)
    bucket_sum += buckets.at(i).at("count").as_double();
  EXPECT_DOUBLE_EQ(bucket_sum, 100.0);
}

TEST_F(MetricsTest, WriteMetricsFileRejectsUnknownFormat) {
  EXPECT_THROW(
      write_metrics_file("/tmp/jps_metrics_test.txt", "xml",
                         MetricsSnapshot::capture()),
      std::invalid_argument);
}

}  // namespace
}  // namespace jps::obs
