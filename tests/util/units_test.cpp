#include "util/units.h"

#include <gtest/gtest.h>

namespace jps::util {
namespace {

TEST(Units, MbpsToBytesPerMs) {
  // 8 Mbps = 1 MB/s = 1000 bytes per ms.
  EXPECT_DOUBLE_EQ(mbps_to_bytes_per_ms(8.0), 1000.0);
}

TEST(Units, TransferTime) {
  // 1 MB over 8 Mbps = 1 second.
  EXPECT_DOUBLE_EQ(transfer_time_ms(1'000'000, 8.0), 1000.0);
  EXPECT_DOUBLE_EQ(transfer_time_ms(0, 8.0), 0.0);
}

TEST(Units, PaperBandwidthSanity) {
  // The paper's 3G rate: 1.1 Mbps = 137.5 KB/s; a 173 KB AlexNet conv5
  // tensor takes ~1.26 s.
  EXPECT_NEAR(transfer_time_ms(173'056, 1.1), 1258.6, 1.0);
}

TEST(Units, BinarySizes) {
  EXPECT_EQ(kib(4), 4096u);
  EXPECT_EQ(mib(2), 2u * 1024 * 1024);
}

TEST(Units, GigaFlops) { EXPECT_DOUBLE_EQ(gflops(1.5), 1.5e9); }

}  // namespace
}  // namespace jps::util
