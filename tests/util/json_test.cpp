#include "util/json.h"

#include <gtest/gtest.h>

#include <clocale>
#include <limits>
#include <string>

namespace jps::util {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_FALSE(Json::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(Json::parse("42").as_double(), 42.0);
  EXPECT_DOUBLE_EQ(Json::parse("-3.25").as_double(), -3.25);
  EXPECT_DOUBLE_EQ(Json::parse("1.5e3").as_double(), 1500.0);
  EXPECT_DOUBLE_EQ(Json::parse("0").as_double(), 0.0);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
  EXPECT_EQ(Json::parse("  \"pad\"  ").as_string(), "pad");
}

TEST(Json, ParsesNestedStructures) {
  const Json doc = Json::parse(
      R"({"name": "bench", "values": [1, 2.5, -3], "nested": {"ok": true}, "none": null})");
  EXPECT_EQ(doc.at("name").as_string(), "bench");
  const Json& values = doc.at("values");
  ASSERT_EQ(values.size(), 3u);
  EXPECT_DOUBLE_EQ(values.at(0).as_double(), 1.0);
  EXPECT_DOUBLE_EQ(values.at(1).as_double(), 2.5);
  EXPECT_DOUBLE_EQ(values.at(2).as_double(), -3.0);
  EXPECT_TRUE(doc.at("nested").at("ok").as_bool());
  EXPECT_TRUE(doc.at("none").is_null());
  EXPECT_TRUE(doc.contains("name"));
  EXPECT_FALSE(doc.contains("missing"));
  EXPECT_EQ(doc.get("missing"), nullptr);
  EXPECT_THROW((void)doc.at("missing"), std::out_of_range);
}

TEST(Json, StringEscapes) {
  EXPECT_EQ(Json::parse(R"("a\"b\\c\/d\n\t")").as_string(), "a\"b\\c/d\n\t");
  EXPECT_EQ(Json::parse(R"("\u0041\u00e9")").as_string(), "A\xc3\xa9");
  // Surrogate pair: U+1F600.
  EXPECT_EQ(Json::parse(R"("\ud83d\ude00")").as_string(),
            "\xf0\x9f\x98\x80");
}

TEST(Json, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "tru", "01", "1.", "1e", "\"unterminated",
        "[1] trailing", "{\"a\" 1}", "\"\\ud83d\"", "nan", "+1",
        "\"ctrl\x01\""}) {
    EXPECT_THROW((void)Json::parse(bad), JsonParseError) << bad;
  }
}

TEST(Json, DepthLimitHolds) {
  std::string deep(Json::kMaxDepth + 10, '[');
  EXPECT_THROW((void)Json::parse(deep), JsonParseError);
  // A comfortably-nested document still parses.
  std::string ok;
  for (int i = 0; i < 10; ++i) ok += "[";
  ok += "1";
  for (int i = 0; i < 10; ++i) ok += "]";
  EXPECT_DOUBLE_EQ(
      Json::parse(ok).at(0).at(0).at(0).at(0).at(0).at(0).at(0).at(0).at(0)
          .at(0).as_double(),
      1.0);
}

TEST(Json, TypeMismatchesThrow) {
  const Json number = Json::parse("5");
  EXPECT_THROW((void)number.as_string(), std::runtime_error);
  EXPECT_THROW((void)number.as_bool(), std::runtime_error);
  EXPECT_THROW((void)number.at(0), std::runtime_error);
  EXPECT_THROW((void)number.at("k"), std::runtime_error);
}

TEST(Json, BuildAndDumpCompact) {
  Json doc = Json::object();
  doc.set("name", Json("x"));
  doc.set("n", Json(3));
  Json arr = Json::array();
  arr.push_back(Json(1.5));
  arr.push_back(Json(true));
  arr.push_back(Json());
  doc.set("values", std::move(arr));
  EXPECT_EQ(doc.dump(), R"({"name":"x","n":3,"values":[1.5,true,null]})");
}

TEST(Json, ObjectKeepsInsertionOrderAndOverwrites) {
  Json doc = Json::object();
  doc.set("z", Json(1));
  doc.set("a", Json(2));
  doc.set("z", Json(3));  // overwrite keeps position
  ASSERT_EQ(doc.members().size(), 2u);
  EXPECT_EQ(doc.members()[0].first, "z");
  EXPECT_DOUBLE_EQ(doc.members()[0].second.as_double(), 3.0);
  EXPECT_EQ(doc.members()[1].first, "a");
}

TEST(Json, RoundTripsThroughDump) {
  const std::string text =
      R"({"a":[1,2.5,"s\"x"],"b":{"c":null,"d":false},"e":1e-06})";
  const Json doc = Json::parse(text);
  const Json again = Json::parse(doc.dump());
  EXPECT_EQ(doc.dump(), again.dump());
  EXPECT_DOUBLE_EQ(again.at("e").as_double(), 1e-06);
}

TEST(Json, NumbersRoundTripPrecisely) {
  for (const double v : {0.1, 1.0 / 3.0, 123456789.123456789, 1e-300, 5e300}) {
    Json doc = Json::array();
    doc.push_back(Json(v));
    EXPECT_DOUBLE_EQ(Json::parse(doc.dump()).at(0).as_double(), v) << v;
  }
  // Non-finite doubles degrade to null rather than emitting invalid JSON.
  Json inf = Json::array();
  inf.push_back(Json(std::numeric_limits<double>::infinity()));
  EXPECT_TRUE(Json::parse(inf.dump()).at(0).is_null());
}

TEST(Json, PrettyPrintParsesBack) {
  const Json doc = Json::parse(R"({"a":[1,2],"b":{"c":"d"}})");
  const std::string pretty = doc.dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_EQ(Json::parse(pretty).dump(), doc.dump());
}

TEST(Json, ParseErrorCarriesOffset) {
  try {
    (void)Json::parse("[1, 2, oops]");
    FAIL() << "expected JsonParseError";
  } catch (const JsonParseError& e) {
    EXPECT_GE(e.offset(), 7u);
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
  }
}

TEST(Json, NumbersIgnoreTheGlobalLocale) {
  // Regression: number parsing/printing went through std::stod and
  // stream insertion, both locale-sensitive — under de_DE a BENCH_*.json
  // would read "1.5" as 1 and dump "2,25", which no JSON parser accepts.
  const std::string saved = std::setlocale(LC_ALL, nullptr);
  if (std::setlocale(LC_ALL, "de_DE.UTF-8") == nullptr &&
      std::setlocale(LC_ALL, "de_DE") == nullptr) {
    GTEST_SKIP() << "no comma-decimal locale installed";
  }
  double parsed = 0.0;
  std::string dumped;
  std::string error;
  try {
    parsed = Json::parse("[1.5]").at(0).as_double();
    Json arr = Json::array();
    arr.push_back(Json(2.25));
    dumped = arr.dump();
  } catch (const std::exception& e) {
    error = e.what();
  }
  std::setlocale(LC_ALL, saved.c_str());
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_DOUBLE_EQ(parsed, 1.5);
  EXPECT_EQ(dumped, "[2.25]");  // never "[2,25]"
}

}  // namespace
}  // namespace jps::util
