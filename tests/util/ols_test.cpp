#include "util/ols.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace jps::util {
namespace {

TEST(LinearFit, RecoversExactLine) {
  const std::vector<double> xs{0.0, 1.0, 2.0, 3.0, 4.0};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(3.5 + 2.0 * x);
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.intercept, 3.5, 1e-12);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(LinearFit, NoisyLineStillClose) {
  Rng rng(7);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 200; ++i) {
    const double x = static_cast<double>(i);
    xs.push_back(x);
    ys.push_back(10.0 + 0.5 * x + rng.normal(0.0, 0.5));
  }
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.slope, 0.5, 0.01);
  EXPECT_NEAR(fit.intercept, 10.0, 0.5);
  EXPECT_GT(fit.r2, 0.99);
}

TEST(LinearFit, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(fit_linear({}, {}).slope, 0.0);
  const LinearFit one = fit_linear(std::vector<double>{2.0},
                                   std::vector<double>{5.0});
  EXPECT_DOUBLE_EQ(one(123.0), 5.0);
  // All-identical x: constant fit at the mean.
  const LinearFit same = fit_linear(std::vector<double>{1.0, 1.0},
                                    std::vector<double>{4.0, 6.0});
  EXPECT_DOUBLE_EQ(same.slope, 0.0);
  EXPECT_DOUBLE_EQ(same.intercept, 5.0);
}

TEST(ExponentialFit, RecoversExactCurve) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i <= 10; ++i) {
    const double x = static_cast<double>(i);
    xs.push_back(x);
    ys.push_back(100.0 * std::exp(-0.6 * x));  // floor = 0
  }
  const ExponentialFit fit = fit_exponential(xs, ys);
  EXPECT_NEAR(fit.scale, 100.0, 1.0);
  EXPECT_NEAR(fit.decay, 0.6, 0.01);
  EXPECT_GT(fit.r2, 0.999);
}

TEST(ExponentialFit, RecoversCurveWithFloor) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i <= 12; ++i) {
    const double x = static_cast<double>(i);
    xs.push_back(x);
    ys.push_back(50.0 * std::exp(-0.5 * x) + 8.0);
  }
  const ExponentialFit fit = fit_exponential(xs, ys);
  EXPECT_GT(fit.r2, 0.995);
  // The fitted curve must track the data even if parameters trade off.
  for (std::size_t i = 0; i < xs.size(); ++i)
    EXPECT_NEAR(fit(xs[i]), ys[i], 1.5);
}

TEST(ExponentialFit, FitIsDecreasingAndConvex) {
  // The §3.2 shape requirements: strictly decreasing, convex.
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i <= 8; ++i) {
    xs.push_back(static_cast<double>(i));
    ys.push_back(200.0 * std::exp(-0.8 * i) + 2.0);
  }
  const ExponentialFit fit = fit_exponential(xs, ys);
  for (double x = 0.0; x < 8.0; x += 0.5) {
    EXPECT_GT(fit(x), fit(x + 0.5));  // decreasing
    const double mid = fit(x + 0.25);
    EXPECT_LE(mid, 0.5 * (fit(x) + fit(x + 0.5)) + 1e-9);  // convex
  }
}

TEST(RSquared, PerfectAndWorthless) {
  const std::vector<double> ys{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(r_squared(ys, ys), 1.0);
  const std::vector<double> constant{2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(r_squared(ys, constant), 0.0);
}

}  // namespace
}  // namespace jps::util
