#include "util/strings.h"

#include <gtest/gtest.h>

namespace jps::util {
namespace {

TEST(Strings, SplitBasic) {
  const auto parts = split("a\tb\tc", '\t');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitPreservesEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitNoDelimiter) {
  const auto parts = split("single", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "single");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("\t\nx\r "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("jps-lookup", "jps"));
  EXPECT_FALSE(starts_with("jp", "jps"));
  EXPECT_TRUE(starts_with("anything", ""));
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(Strings, ToLower) {
  EXPECT_EQ(to_lower("AlexNet-V2"), "alexnet-v2");
}

}  // namespace
}  // namespace jps::util
