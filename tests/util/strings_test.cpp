#include "util/strings.h"

#include <gtest/gtest.h>

#include <clocale>
#include <optional>
#include <string>

namespace jps::util {
namespace {

TEST(Strings, SplitBasic) {
  const auto parts = split("a\tb\tc", '\t');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitPreservesEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitNoDelimiter) {
  const auto parts = split("single", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "single");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("\t\nx\r "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("jps-lookup", "jps"));
  EXPECT_FALSE(starts_with("jp", "jps"));
  EXPECT_TRUE(starts_with("anything", ""));
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(Strings, ToLower) {
  EXPECT_EQ(to_lower("AlexNet-V2"), "alexnet-v2");
}

TEST(Strings, ParseDoubleAcceptsWholeStringNumbersOnly) {
  EXPECT_DOUBLE_EQ(*parse_double("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(*parse_double("-1.2e-3"), -1.2e-3);
  EXPECT_DOUBLE_EQ(*parse_double("+0.25"), 0.25);
  EXPECT_DOUBLE_EQ(*parse_double("42"), 42.0);
  EXPECT_FALSE(parse_double("0.1x").has_value());  // trailing garbage
  EXPECT_FALSE(parse_double("3,5").has_value());   // comma decimal point
  EXPECT_FALSE(parse_double(" 1.0").has_value());  // leading whitespace
  EXPECT_FALSE(parse_double("1.0 ").has_value());
  EXPECT_FALSE(parse_double("").has_value());
  EXPECT_FALSE(parse_double("fast").has_value());
  EXPECT_FALSE(parse_double("+").has_value());
}

TEST(Strings, ParseDoubleIsLocaleIndependent) {
  // The whole point: std::stod under a comma-decimal locale reads "3.5" as
  // 3.  parse_double must never consult the global locale.
  const std::string saved = std::setlocale(LC_ALL, nullptr);
  if (std::setlocale(LC_ALL, "de_DE.UTF-8") == nullptr &&
      std::setlocale(LC_ALL, "de_DE") == nullptr) {
    GTEST_SKIP() << "no comma-decimal locale installed";
  }
  const std::optional<double> dot = parse_double("3.5");
  const std::optional<double> comma = parse_double("3,5");
  std::setlocale(LC_ALL, saved.c_str());
  ASSERT_TRUE(dot.has_value());
  EXPECT_DOUBLE_EQ(*dot, 3.5);
  EXPECT_FALSE(comma.has_value());
}

TEST(Strings, ParseIntIsStrict) {
  EXPECT_EQ(*parse_int("42"), 42);
  EXPECT_EQ(*parse_int("-7"), -7);
  EXPECT_EQ(*parse_int("+9"), 9);
  EXPECT_FALSE(parse_int("12x").has_value());
  EXPECT_FALSE(parse_int("1.5").has_value());
  EXPECT_FALSE(parse_int("").has_value());
  EXPECT_FALSE(parse_int(" 3").has_value());
  EXPECT_FALSE(parse_int("+").has_value());
  EXPECT_FALSE(parse_int("99999999999999999999").has_value());  // overflow
}

}  // namespace
}  // namespace jps::util
