#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace jps::util {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class CsvTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "/jps_csv_test.csv";
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter w(path_, {"a", "b"});
    w.add_row(std::vector<std::string>{"1", "2"});
    w.add_row(std::vector<double>{3.5, 4.25});
    EXPECT_EQ(w.rows_written(), 2u);
  }
  const std::string content = read_file(path_);
  EXPECT_EQ(content, "a,b\n1,2\n3.5,4.25\n");
}

TEST_F(CsvTest, EscapesSpecialCharacters) {
  {
    CsvWriter w(path_, {"text"});
    w.add_row(std::vector<std::string>{"has,comma"});
    w.add_row(std::vector<std::string>{"has\"quote"});
  }
  const std::string content = read_file(path_);
  EXPECT_NE(content.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(content.find("\"has\"\"quote\""), std::string::npos);
}

TEST_F(CsvTest, RejectsWidthMismatch) {
  CsvWriter w(path_, {"a", "b"});
  EXPECT_THROW(w.add_row(std::vector<std::string>{"only-one"}),
               std::runtime_error);
}

TEST(CsvEscape, PassesPlainCells) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("with space"), "with space");
}

TEST(CsvEscape, QuotesCarriageReturns) {
  // Bare \r (and \r\n) cells must be quoted or readers see a phantom row
  // boundary; regression for the missing \r in the quote set.
  EXPECT_EQ(csv_escape("a\rb"), "\"a\rb\"");
  EXPECT_EQ(csv_escape("a\r\nb"), "\"a\r\nb\"");
}

TEST_F(CsvTest, CarriageReturnRoundTrips) {
  {
    CsvWriter w(path_, {"text"});
    w.add_row(std::vector<std::string>{"line1\rline2"});
  }
  const std::string content = read_file(path_);
  // The cell is quoted, so a CSV reader sees exactly two records (header +
  // one row) with the \r intact inside the quoted field.
  EXPECT_NE(content.find("\"line1\rline2\""), std::string::npos);
  std::size_t unquoted_rows = 0;
  bool in_quotes = false;
  for (const char c : content) {
    if (c == '"') in_quotes = !in_quotes;
    if (c == '\n' && !in_quotes) ++unquoted_rows;
  }
  EXPECT_EQ(unquoted_rows, 2u);
}

TEST(CsvWriterStandalone, ThrowsOnBadPath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv", {"a"}),
               std::runtime_error);
}

}  // namespace
}  // namespace jps::util
