#include "util/table.h"

#include <gtest/gtest.h>

namespace jps::util {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t({"model", "ms"});
  t.add_row({"alexnet", "12.3"});
  t.add_row({"vgg16", "45.6"});
  const std::string s = t.str();
  EXPECT_NE(s.find("model"), std::string::npos);
  EXPECT_NE(s.find("alexnet"), std::string::npos);
  EXPECT_NE(s.find("45.6"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, PadsShortRows) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_NE(t.str().find("only"), std::string::npos);
}

TEST(Table, SeparatorNotCountedAsRow) {
  Table t({"x"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, ColumnsAlign) {
  Table t({"k", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-key", "2"});
  const std::string s = t.str();
  // Each data line must have the same width as the rule lines.
  std::size_t first_len = s.find('\n');
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t next = s.find('\n', pos);
    if (next == std::string::npos) break;
    EXPECT_EQ(next - pos, first_len);
    pos = next + 1;
  }
}

TEST(Formatting, Milliseconds) {
  EXPECT_EQ(format_ms(123.456), "123.5");
  EXPECT_EQ(format_ms(12.345), "12.35");
  EXPECT_EQ(format_ms(0.5), "0.5000");
}

TEST(Formatting, Bytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(1536), "1.5 KiB");
  EXPECT_EQ(format_bytes(3u * 1024 * 1024), "3.0 MiB");
}

TEST(Formatting, Percent) { EXPECT_EQ(format_pct(0.421), "42.1%"); }

TEST(Formatting, Fixed) { EXPECT_EQ(format_fixed(3.14159, 2), "3.14"); }

}  // namespace
}  // namespace jps::util
