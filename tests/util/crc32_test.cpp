#include "util/crc32.h"

#include <gtest/gtest.h>

#include <string>

namespace jps::util {
namespace {

TEST(Crc32, KnownVectors) {
  // The classic IEEE CRC-32 check value.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0x00000000u);
  EXPECT_EQ(crc32("a"), 0xE8B7BE43u);
  EXPECT_EQ(crc32("abc"), 0x352441C2u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  for (std::size_t split = 0; split <= data.size(); ++split) {
    const std::uint32_t head = crc32(std::string_view(data).substr(0, split));
    const std::uint32_t whole =
        crc32(std::string_view(data).substr(split), head);
    EXPECT_EQ(whole, crc32(data)) << "split at " << split;
  }
}

TEST(Crc32, PointerOverloadAgrees) {
  const std::string data = "binary\0payload with embedded nul";
  EXPECT_EQ(crc32(data.data(), data.size()), crc32(data));
}

TEST(Crc32, EveryBitFlipChangesTheSum) {
  const std::string data = "snapshot integrity gate";
  const std::uint32_t clean = crc32(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = data;
      flipped[i] = static_cast<char>(flipped[i] ^ (1 << bit));
      EXPECT_NE(crc32(flipped), clean) << "byte " << i << " bit " << bit;
    }
  }
}

}  // namespace
}  // namespace jps::util
