#include "util/stats.h"

#include <gtest/gtest.h>

#include <vector>

namespace jps::util {
namespace {

TEST(Stats, EmptyInputsAreZero) {
  const std::vector<double> empty;
  EXPECT_DOUBLE_EQ(mean(empty), 0.0);
  EXPECT_DOUBLE_EQ(median(empty), 0.0);
  EXPECT_DOUBLE_EQ(stddev(empty), 0.0);
  EXPECT_DOUBLE_EQ(min(empty), 0.0);
  EXPECT_DOUBLE_EQ(max(empty), 0.0);
  EXPECT_DOUBLE_EQ(sum(empty), 0.0);
}

TEST(Stats, SingleElement) {
  const std::vector<double> one{42.0};
  EXPECT_DOUBLE_EQ(mean(one), 42.0);
  EXPECT_DOUBLE_EQ(median(one), 42.0);
  EXPECT_DOUBLE_EQ(stddev(one), 0.0);
  EXPECT_DOUBLE_EQ(percentile(one, 99.0), 42.0);
}

TEST(Stats, MeanAndVariance) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  // Sample variance with n-1 denominator: sum of squares = 32, / 7.
  EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(Stats, MedianDoesNotMutateInput) {
  const std::vector<double> xs{3.0, 1.0, 2.0};
  (void)median(xs);
  EXPECT_EQ(xs, (std::vector<double>{3.0, 1.0, 2.0}));
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 25.0);
  // Out-of-range p is clamped.
  EXPECT_DOUBLE_EQ(percentile(xs, 150.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, -5.0), 10.0);
}

TEST(Stats, PercentileFiftyIsExactlyTheMedian) {
  // The implementation is numpy's default linear (inclusive) interpolation
  // at fractional rank p/100 * (n-1), so p50 must equal the median for odd
  // and even n alike.
  const std::vector<double> odd{9.0, 1.0, 5.0, 3.0, 7.0};
  const std::vector<double> even{4.0, 8.0, 1.0, 6.0};
  EXPECT_DOUBLE_EQ(percentile(odd, 50.0), median(odd));
  EXPECT_DOUBLE_EQ(percentile(odd, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(even, 50.0), median(even));
  EXPECT_DOUBLE_EQ(percentile(even, 50.0), 5.0);
}

TEST(Stats, PercentileMatchesNumpyLinearFixture) {
  // Reference values from numpy 1.26: np.percentile([1, 2, 3, 4, 10], p)
  // with the default method="linear" — rank = p/100 * (n-1), interpolate.
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 2.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 75.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 90.0), 7.6);   // rank 3.6: 4 + 0.6 * 6
  EXPECT_DOUBLE_EQ(percentile(xs, 95.0), 8.8);   // rank 3.8: 4 + 0.8 * 6
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 10.0);
  // A second fixture with even n, where inclusive and exclusive rank
  // schemes disagree at every interior percentile.
  const std::vector<double> ys{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(ys, 10.0), 13.0);  // numpy: 13.0
  EXPECT_DOUBLE_EQ(percentile(ys, 75.0), 32.5);  // numpy: 32.5
}

TEST(Stats, SummaryMatchesIndividualStats) {
  const std::vector<double> xs{5.0, 3.0, 8.0, 1.0, 9.0, 2.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, xs.size());
  EXPECT_DOUBLE_EQ(s.mean, mean(xs));
  EXPECT_DOUBLE_EQ(s.stddev, stddev(xs));
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.median, median(xs));
  EXPECT_DOUBLE_EQ(s.p25, percentile(xs, 25.0));
  EXPECT_DOUBLE_EQ(s.p95, percentile(xs, 95.0));
}

TEST(Stats, SummaryOfEmpty) {
  const Summary s = summarize(std::vector<double>{});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

}  // namespace
}  // namespace jps::util
