#include "util/log.h"

#include <gtest/gtest.h>

namespace jps::util {
namespace {

TEST(Log, LevelRoundTrip) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(before);
}

TEST(Log, SuppressedBelowThresholdAndStreams) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  // Nothing to assert on stderr portably; exercise the paths for coverage
  // and crash-freedom.
  JPS_LOG_DEBUG << "dropped " << 1;
  JPS_LOG_INFO << "dropped " << 2.5;
  JPS_LOG_WARN << "dropped" << " too";
  set_log_level(before);
}

TEST(Log, ParseLogLevel) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("INFO"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("Warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("bogus", LogLevel::kWarn), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level(nullptr, LogLevel::kError), LogLevel::kError);
}

TEST(Log, EnvThresholdApplies) {
  const LogLevel before = log_level();
  ASSERT_EQ(setenv("JPS_LOG", "error", 1), 0);
  apply_log_level_from_env();
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Unknown values leave the current threshold untouched.
  ASSERT_EQ(setenv("JPS_LOG", "shout", 1), 0);
  apply_log_level_from_env();
  EXPECT_EQ(log_level(), LogLevel::kError);
  ASSERT_EQ(unsetenv("JPS_LOG"), 0);
  apply_log_level_from_env();  // unset: no change
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(before);
}

TEST(Log, FormatFieldsQuotesWhenNeeded) {
  EXPECT_EQ(format_fields({}), "");
  EXPECT_EQ(format_fields({{"jobs", 12}, {"ms", 3.25}}), " jobs=12 ms=3.25");
  EXPECT_EQ(format_fields({{"model", "alexnet"}}), " model=alexnet");
  EXPECT_EQ(format_fields({{"msg", "two words"}}), " msg=\"two words\"");
  EXPECT_EQ(format_fields({{"expr", "a=b"}}), " expr=\"a=b\"");
  EXPECT_EQ(format_fields({{"q", "say \"hi\""}}), " q=\"say \\\"hi\\\"\"");
  EXPECT_EQ(format_fields({{"empty", ""}}), " empty=\"\"");
  EXPECT_EQ(format_fields({{"ok", true}, {"n", std::size_t{7}}}),
            " ok=true n=7");
}

TEST(Log, FieldSuffixOverloadDoesNotCrash) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);  // suppressed: exercises the path only
  log_line(LogLevel::kInfo, "planned", {{"jobs", 100}, {"model", "alexnet"}});
  set_log_level(before);
}

}  // namespace
}  // namespace jps::util
