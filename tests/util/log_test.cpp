#include "util/log.h"

#include <gtest/gtest.h>

namespace jps::util {
namespace {

TEST(Log, LevelRoundTrip) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(before);
}

TEST(Log, SuppressedBelowThresholdAndStreams) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  // Nothing to assert on stderr portably; exercise the paths for coverage
  // and crash-freedom.
  JPS_LOG_DEBUG << "dropped " << 1;
  JPS_LOG_INFO << "dropped " << 2.5;
  JPS_LOG_WARN << "dropped" << " too";
  set_log_level(before);
}

}  // namespace
}  // namespace jps::util
