#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace jps::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i)
    futures.push_back(pool.submit([&] { counter.fetch_add(1); }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto f = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i)
      (void)pool.submit([&] { counter.fetch_add(1); });
  }  // destructor must finish all queued tasks
  EXPECT_EQ(counter.load(), 20);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroCountIsNoop) {
  parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelFor, SmallCountRunsInline) {
  // count < 4 must run on the calling thread (documented contract).
  const auto caller = std::this_thread::get_id();
  parallel_for(2, [&](std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ParallelFor, PropagatesFirstException) {
  EXPECT_THROW(
      parallel_for(100,
                   [](std::size_t i) {
                     if (i == 57) throw std::logic_error("bad index");
                   }),
      std::logic_error);
}

TEST(ParallelFor, ExplicitThreadCount) {
  std::atomic<int> counter{0};
  parallel_for(64, [&](std::size_t) { counter.fetch_add(1); }, 2);
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, SubmitReturnsValues) {
  ThreadPool pool(2);
  auto doubled = pool.submit([] { return 21 * 2; });
  auto text = pool.submit([] { return std::string("pooled"); });
  EXPECT_EQ(doubled.get(), 42);
  EXPECT_EQ(text.get(), "pooled");
}

TEST(ThreadPool, SubmitAcceptsMoveOnlyTasks) {
  ThreadPool pool(1);
  auto payload = std::make_unique<int>(7);
  auto fut = pool.submit([p = std::move(payload)] { return *p + 1; });
  EXPECT_EQ(fut.get(), 8);
}

TEST(ThreadPool, GlobalPoolIsSharedAndSized) {
  ThreadPool& a = global_pool();
  ThreadPool& b = global_pool();
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.size(), default_thread_count());
  EXPECT_GE(a.size(), 1u);
}

TEST(ThreadPool, ManySmallTasksStress) {
  // The request-serving pattern: lots of tiny independent tasks.  Under
  // TSan this exercises the queue handoff and future synchronization.
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<int>> futures;
  futures.reserve(2000);
  for (int i = 0; i < 2000; ++i)
    futures.push_back(pool.submit([&counter, i] {
      counter.fetch_add(1, std::memory_order_relaxed);
      return i;
    }));
  long long sum = 0;
  for (auto& f : futures) sum += f.get();
  EXPECT_EQ(counter.load(), 2000);
  EXPECT_EQ(sum, 2000LL * 1999 / 2);
}

TEST(ParallelFor, RepeatedCallsReuseThePool) {
  // The seed implementation spawned a fresh team per call; the pooled one
  // must survive thousands of back-to-back campaigns without churn.
  std::atomic<long long> total{0};
  for (int call = 0; call < 500; ++call)
    parallel_for(32, [&](std::size_t i) {
      total.fetch_add(static_cast<long long>(i), std::memory_order_relaxed);
    });
  EXPECT_EQ(total.load(), 500LL * 32 * 31 / 2);
}

TEST(ParallelFor, NestedCallsRunInline) {
  // A body that itself calls parallel_for must not deadlock the pool and
  // must still cover every inner index.
  std::vector<std::atomic<int>> hits(16 * 16);
  parallel_for(16, [&](std::size_t outer) {
    parallel_for(16, [&](std::size_t inner) {
      hits[outer * 16 + inner].fetch_add(1);
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, SafeFromInsideAPoolTask) {
  // Pool workers run nested parallel regions inline instead of blocking on
  // the pool they occupy.
  std::atomic<int> counter{0};
  auto fut = global_pool().submit([&] {
    EXPECT_TRUE(ThreadPool::on_worker_thread());
    parallel_for(100, [&](std::size_t) { counter.fetch_add(1); });
  });
  fut.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ParallelFor, ConcurrentCallersShareThePool) {
  // Several threads issuing parallel_for at once (the serving scenario).
  // Each call must see exactly its own full index coverage.
  constexpr int kCallers = 4;
  constexpr std::size_t kCount = 512;
  std::vector<std::thread> callers;
  std::vector<std::atomic<long long>> sums(kCallers);
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&, t] {
      for (int repeat = 0; repeat < 20; ++repeat) {
        std::atomic<long long> sum{0};
        parallel_for(kCount, [&](std::size_t i) {
          sum.fetch_add(static_cast<long long>(i),
                        std::memory_order_relaxed);
        });
        sums[static_cast<std::size_t>(t)].store(sum.load());
      }
    });
  }
  for (auto& th : callers) th.join();
  for (const auto& s : sums)
    EXPECT_EQ(s.load(), static_cast<long long>(kCount * (kCount - 1) / 2));
}

TEST(ParallelFor, ExceptionFromPooledChunkPropagates) {
  // Large count so the failure happens in a pooled chunk, not inline.
  EXPECT_THROW(
      parallel_for(
          10000,
          [](std::size_t i) {
            if (i == 9999) throw std::runtime_error("late failure");
          },
          4),
      std::runtime_error);
}

TEST(ParallelFor, ResultsIdenticalAcrossThreadCounts) {
  // Independent per-index outputs must not depend on the thread count.
  std::vector<double> one(1000);
  std::vector<double> many(1000);
  const auto body = [](std::size_t i) {
    double acc = static_cast<double>(i);
    for (int k = 0; k < 50; ++k) acc = acc * 1.0000001 + 0.5;
    return acc;
  };
  parallel_for(one.size(), [&](std::size_t i) { one[i] = body(i); }, 1);
  parallel_for(many.size(), [&](std::size_t i) { many[i] = body(i); }, 8);
  EXPECT_EQ(one, many);
}

TEST(ThreadPool, SubmitAfterShutdownThrowsDeterministically) {
  // The jps_serve drain contract: once shutdown() has begun, submit() must
  // throw instead of racing the worker teardown (a task silently dropped
  // would leave a client waiting on a reply future forever).
  ThreadPool pool(2);
  pool.shutdown();
  EXPECT_FALSE(pool.accepting());
  EXPECT_THROW((void)pool.submit([] { return 1; }), std::runtime_error);
}

TEST(ThreadPool, ShutdownRunsEveryQueuedTask) {
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  ThreadPool pool(2);
  for (int i = 0; i < 64; ++i)
    futures.push_back(pool.submit([&] { ran.fetch_add(1); }));
  pool.shutdown();  // drain barrier: everything already queued must run
  EXPECT_EQ(ran.load(), 64);
  for (auto& f : futures) f.get();  // and every future is ready, none lost
}

TEST(ThreadPool, ShutdownIsIdempotentAndConcurrent) {
  ThreadPool pool(2);
  std::thread a([&] { pool.shutdown(); });
  std::thread b([&] { pool.shutdown(); });
  a.join();
  b.join();
  pool.shutdown();  // and again from the original thread
  EXPECT_FALSE(pool.accepting());
}

TEST(ThreadPool, ConcurrentSubmittersRaceShutdownWithoutLostTasks) {
  // Submitters either get a future that completes or a deterministic
  // throw — never an abandoned future.  Run under TSan in CI.
  ThreadPool pool(2);
  std::atomic<int> accepted{0}, rejected{0}, completed{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        try {
          auto f = pool.submit([&] { completed.fetch_add(1); });
          accepted.fetch_add(1);
          f.wait();
        } catch (const std::runtime_error&) {
          rejected.fetch_add(1);
        }
      }
    });
  }
  pool.shutdown();  // races the submitters on purpose
  for (std::thread& t : submitters) t.join();
  EXPECT_EQ(accepted.load(), completed.load());
  EXPECT_EQ(accepted.load() + rejected.load(), 4 * 200);
}

}  // namespace
}  // namespace jps::util
