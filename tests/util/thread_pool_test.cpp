#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace jps::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i)
    futures.push_back(pool.submit([&] { counter.fetch_add(1); }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto f = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i)
      (void)pool.submit([&] { counter.fetch_add(1); });
  }  // destructor must finish all queued tasks
  EXPECT_EQ(counter.load(), 20);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroCountIsNoop) {
  parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelFor, SmallCountRunsInline) {
  // count < 4 must run on the calling thread (documented contract).
  const auto caller = std::this_thread::get_id();
  parallel_for(2, [&](std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ParallelFor, PropagatesFirstException) {
  EXPECT_THROW(
      parallel_for(100,
                   [](std::size_t i) {
                     if (i == 57) throw std::logic_error("bad index");
                   }),
      std::logic_error);
}

TEST(ParallelFor, ExplicitThreadCount) {
  std::atomic<int> counter{0};
  parallel_for(64, [&](std::size_t) { counter.fetch_add(1); }, 2);
  EXPECT_EQ(counter.load(), 64);
}

}  // namespace
}  // namespace jps::util
