#include "util/rng.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/stats.h"

namespace jps::util {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i)
    EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i)
    any_diff |= a.uniform(0.0, 1.0) != b.uniform(0.0, 1.0);
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.0, 3.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, LognormalFactorMedianNearOne) {
  Rng rng(9);
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i) samples.push_back(rng.lognormal_factor(0.2));
  EXPECT_NEAR(median(samples), 1.0, 0.03);
  for (double s : samples) EXPECT_GT(s, 0.0);
}

TEST(Rng, LognormalZeroSigmaIsExactlyOne) {
  Rng rng(1);
  for (int i = 0; i < 10; ++i)
    EXPECT_DOUBLE_EQ(rng.lognormal_factor(0.0), 1.0);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) samples.push_back(rng.normal(5.0, 2.0));
  EXPECT_NEAR(mean(samples), 5.0, 0.1);
  EXPECT_NEAR(stddev(samples), 2.0, 0.1);
}

}  // namespace
}  // namespace jps::util
