// The lock-order checker: ABBA cycles become deterministic diagnostics
// naming both locks, ordered acquisition stays silent, and the wrappers
// keep their RAII contracts (including CondVar relock bookkeeping).
#include "util/mutex.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

namespace jps::util {
namespace {

// Every test runs with a capturing hook installed: diagnostics land in
// `reports_` instead of stderr, and kAbort mode asserts instead of dying.
class LockOrderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lockorder::reset();
    lockorder::set_report_hook(
        [this](const std::string& message) { reports_.push_back(message); });
    lockorder::set_mode(lockorder::Mode::kAbort);
  }
  void TearDown() override {
    lockorder::set_mode(lockorder::Mode::kOff);
    lockorder::set_report_hook(nullptr);
    lockorder::reset();
  }

  std::vector<std::string> reports_;
};

TEST_F(LockOrderTest, AbbaCycleDiagnosticNamesBothLocks) {
  Mutex a("test.lock_a");
  Mutex b("test.lock_b");

  {
    MutexLock lock_a(a);
    MutexLock lock_b(b);  // establishes a -> b
  }
  EXPECT_TRUE(reports_.empty());

  {
    MutexLock lock_b(b);
    MutexLock lock_a(a);  // b -> a closes the cycle
  }
  ASSERT_EQ(reports_.size(), 1u);
  EXPECT_NE(reports_[0].find("test.lock_a"), std::string::npos);
  EXPECT_NE(reports_[0].find("test.lock_b"), std::string::npos);
  EXPECT_NE(reports_[0].find("cycle"), std::string::npos);
}

TEST_F(LockOrderTest, CycleDiagnosticIsDeterministicOnEveryRecurrence) {
  Mutex a("test.det_a");
  Mutex b("test.det_b");
  {
    MutexLock lock_a(a);
    MutexLock lock_b(b);
  }
  // The contradictory edge is never admitted to the graph, so each
  // offending acquisition re-fires the same diagnostic.
  for (int i = 1; i <= 3; ++i) {
    MutexLock lock_b(b);
    MutexLock lock_a(a);
    ASSERT_EQ(reports_.size(), static_cast<std::size_t>(i));
    EXPECT_NE(reports_.back().find("test.det_a"), std::string::npos);
    EXPECT_NE(reports_.back().find("test.det_b"), std::string::npos);
  }
}

TEST_F(LockOrderTest, TransitiveCycleIsDetected) {
  Mutex a("test.tri_a");
  Mutex b("test.tri_b");
  Mutex c("test.tri_c");
  {
    MutexLock lock_a(a);
    MutexLock lock_b(b);  // a -> b
  }
  {
    MutexLock lock_b(b);
    MutexLock lock_c(c);  // b -> c
  }
  {
    MutexLock lock_c(c);
    MutexLock lock_a(a);  // c -> a closes a three-lock cycle
  }
  ASSERT_EQ(reports_.size(), 1u);
  EXPECT_NE(reports_[0].find("test.tri_a"), std::string::npos);
  EXPECT_NE(reports_[0].find("test.tri_c"), std::string::npos);
}

TEST_F(LockOrderTest, ConsistentOrderNeverReports) {
  Mutex outer("test.ordered_outer");
  Mutex inner("test.ordered_inner");
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        MutexLock lock_outer(outer);
        MutexLock lock_inner(inner);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_TRUE(reports_.empty());
}

TEST_F(LockOrderTest, RecursiveAcquisitionOfSameInstanceIsReported) {
  // Raw lock() calls (no RAII) so the double-acquire does not deadlock:
  // report fires on the second lock() *bookkeeping*, tested via try_lock
  // which never blocks.
  Mutex m("test.recursive");
  m.lock();
  ASSERT_FALSE(m.try_lock());  // std::mutex: second acquire would deadlock
  m.unlock();
  EXPECT_TRUE(reports_.empty());

  SharedMutex s("test.recursive_shared");
  s.lock_shared();
  s.lock_shared();  // UB on std::shared_mutex in general: must be flagged
  ASSERT_GE(reports_.size(), 1u);
  EXPECT_NE(reports_[0].find("recursive"), std::string::npos);
  EXPECT_NE(reports_[0].find("test.recursive_shared"), std::string::npos);
  s.unlock_shared();
  s.unlock_shared();
}

TEST_F(LockOrderTest, UnnamedMutexesStayOutOfTheGraph) {
  Mutex a;  // unnamed: excluded so default names cannot alias
  Mutex b;
  {
    MutexLock lock_a(a);
    MutexLock lock_b(b);
  }
  {
    MutexLock lock_b(b);
    MutexLock lock_a(a);
  }
  EXPECT_TRUE(reports_.empty());
}

TEST_F(LockOrderTest, OffModeIsSilent) {
  lockorder::set_mode(lockorder::Mode::kOff);
  Mutex a("test.off_a");
  Mutex b("test.off_b");
  {
    MutexLock lock_a(a);
    MutexLock lock_b(b);
  }
  {
    MutexLock lock_b(b);
    MutexLock lock_a(a);
  }
  EXPECT_TRUE(reports_.empty());
}

TEST_F(LockOrderTest, CondVarWaitReleasesTheHold) {
  // While a thread waits, it must not be considered a holder: the waiter
  // takes `waited` first, the poker takes `poke` then `waited` — an ABBA
  // shape that is NOT a deadlock because wait() releases `waited`.  The
  // checker must agree (the relock feeds on_release/on_acquire).
  Mutex waited("test.cv_waited");
  Mutex poke("test.cv_poke");
  CondVar cv;
  std::atomic<bool> ready{false};

  std::thread waiter([&] {
    MutexLock lock(waited);
    while (!ready.load()) cv.wait(lock);
  });
  {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    MutexLock lock_poke(poke);
    MutexLock lock_waited(waited);  // poke -> waited
    ready.store(true);
  }
  cv.notify_all();
  waiter.join();

  // Now waited -> poke on one thread: only a cycle if the waiter's released
  // hold had leaked into the graph as waited -> poke ordering conflicts.
  {
    MutexLock lock_waited(waited);
    MutexLock lock_poke(poke);
  }
  // waited->poke vs poke->waited IS a real inversion; assert it is caught —
  // proving the waiter's frames were tracked through the wait correctly.
  ASSERT_EQ(reports_.size(), 1u);
  EXPECT_NE(reports_[0].find("test.cv_poke"), std::string::npos);
  EXPECT_NE(reports_[0].find("test.cv_waited"), std::string::npos);
}

TEST_F(LockOrderTest, ViolationsCounterIsMonotone) {
  const std::uint64_t before = lockorder::violations();
  Mutex a("test.count_a");
  Mutex b("test.count_b");
  {
    MutexLock lock_a(a);
    MutexLock lock_b(b);
  }
  {
    MutexLock lock_b(b);
    MutexLock lock_a(a);
  }
  EXPECT_EQ(lockorder::violations(), before + 1);
}

TEST(MutexWrappers, MidScopeUnlockAndSharedReaders) {
  SharedMutex m("test.wrappers_shared");
  {
    SharedLock r1(m);
    SharedLock r2(m);  // two concurrent readers are legal
    EXPECT_TRUE(r1.owns_lock());
  }
  {
    MutexLock w(m);
    EXPECT_TRUE(w.owns_lock());
    w.unlock();  // mid-scope release; destructor must not double-release
    EXPECT_FALSE(w.owns_lock());
    SharedLock r(m);  // lock is free again
  }
  Mutex plain("test.wrappers_plain");
  EXPECT_TRUE(plain.try_lock());
  plain.unlock();
}

TEST(MutexWrappers, CondVarTimedWaitTimesOut) {
  Mutex m;
  CondVar cv;
  MutexLock lock(m);
  const auto t0 = std::chrono::steady_clock::now();
  const std::cv_status status =
      cv.wait_for(lock, std::chrono::milliseconds(5));
  EXPECT_EQ(status, std::cv_status::timeout);
  EXPECT_GE(std::chrono::steady_clock::now() - t0,
            std::chrono::milliseconds(4));
}

}  // namespace
}  // namespace jps::util
