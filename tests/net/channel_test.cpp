#include "net/channel.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "util/stats.h"
#include "util/units.h"

namespace jps::net {
namespace {

TEST(Channel, AffineModel) {
  const Channel ch(8.0, /*setup_latency_ms=*/5.0);
  // 8 Mbps = 1000 bytes/ms; 10 KB => 10 ms + 5 ms setup.
  EXPECT_DOUBLE_EQ(ch.time_ms(10'000), 15.0);
}

TEST(Channel, ZeroBytesCostsNothing) {
  const Channel ch(8.0, 5.0);
  EXPECT_DOUBLE_EQ(ch.time_ms(0), 0.0);
}

TEST(Channel, TimeScalesInverselyWithBandwidth) {
  const Channel slow(1.0, 0.0);
  const Channel fast(4.0, 0.0);
  EXPECT_NEAR(slow.time_ms(1'000'000) / fast.time_ms(1'000'000), 4.0, 1e-9);
}

TEST(Channel, PresetsMatchPaperRates) {
  EXPECT_DOUBLE_EQ(Channel::preset_3g().bandwidth_mbps(), 1.1);
  EXPECT_DOUBLE_EQ(Channel::preset_4g().bandwidth_mbps(), 5.85);
  EXPECT_DOUBLE_EQ(Channel::preset_wifi().bandwidth_mbps(), 18.88);
}

TEST(Channel, WithBandwidthPreservesOtherParams) {
  const Channel base(10.0, 3.0, 0.2);
  const Channel scaled = base.with_bandwidth(20.0);
  EXPECT_DOUBLE_EQ(scaled.bandwidth_mbps(), 20.0);
  EXPECT_DOUBLE_EQ(scaled.setup_latency_ms(), 3.0);
  EXPECT_DOUBLE_EQ(scaled.jitter_sigma(), 0.2);
}

TEST(Channel, Validation) {
  EXPECT_THROW(Channel(0.0), std::invalid_argument);
  EXPECT_THROW(Channel(-1.0), std::invalid_argument);
  EXPECT_THROW(Channel(1.0, -1.0), std::invalid_argument);
  EXPECT_THROW(Channel(1.0, 0.0, -0.5), std::invalid_argument);
}

TEST(Channel, SampleWithoutJitterIsDeterministic) {
  const Channel ch(10.0, 2.0, 0.0);
  util::Rng rng(1);
  EXPECT_DOUBLE_EQ(ch.sample_ms(50'000, rng), ch.time_ms(50'000));
}

TEST(Channel, ZeroBytesCostsNothingEvenUnderJitter) {
  // The lognormal factor multiplies the deterministic time; an empty
  // transfer must stay exactly free (and consume the same rng stream as a
  // non-empty one would, which sample_ms guarantees by construction).
  const Channel ch(10.0, 2.0, 0.5);
  util::Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(ch.sample_ms(0, rng), 0.0);
}

TEST(Channel, SampleJitterMedianNearTruth) {
  const Channel ch(10.0, 2.0, 0.15);
  util::Rng rng(2);
  std::vector<double> samples;
  for (int i = 0; i < 4001; ++i) samples.push_back(ch.sample_ms(100'000, rng));
  EXPECT_NEAR(util::median(samples), ch.time_ms(100'000),
              0.03 * ch.time_ms(100'000));
  for (double s : samples) EXPECT_GT(s, 0.0);
}

TEST(TimeVaryingChannel, FaultFreeViewIsBitIdenticalToAffineModel) {
  const Channel base(5.85, 8.0, 0.3);
  const TimeVaryingChannel tv(base);
  EXPECT_TRUE(tv.stationary());
  EXPECT_DOUBLE_EQ(tv.horizon_ms(), 0.0);
  for (std::uint64_t bytes : {0ull, 1ull, 1337ull, 500'000ull, 3'000'000ull}) {
    for (double start : {0.0, 12.5, 9999.0}) {
      const auto t = tv.transfer(start, bytes);
      EXPECT_TRUE(t.completed);
      EXPECT_FALSE(t.perturbed);
      // EXPECT_EQ, not NEAR: fault-free must reproduce the affine model
      // bit-for-bit, which is what the oracle-differential tests rely on.
      EXPECT_EQ(t.duration_ms, base.time_ms(bytes));
    }
  }
}

TEST(TimeVaryingChannel, TransferOutsideAllEventsIsUnperturbed) {
  const Channel base(8.0, 5.0);
  const TimeVaryingChannel tv(base, {{100.0, 200.0, 1.0}}, {{300.0, 350.0}});
  const auto t = tv.transfer(400.0, 10'000);
  EXPECT_TRUE(t.completed);
  EXPECT_FALSE(t.perturbed);
  EXPECT_EQ(t.duration_ms, base.time_ms(10'000));
  EXPECT_DOUBLE_EQ(tv.horizon_ms(), 350.0);
}

TEST(TimeVaryingChannel, PiecewiseIntegrationHandComputed) {
  // 8 Mbps = 1000 bytes/ms, no setup.  A 10 kB transfer starting at t=0
  // moves 4000 bytes at full rate over [0, 4), then hits a segment at
  // 4 Mbps (500 bytes/ms) over [4, 14) that carries 5000 bytes, and the
  // last 1000 bytes go at full rate again => 4 + 10 + 1 = 15 ms.
  const Channel base(8.0, 0.0);
  const TimeVaryingChannel tv(base, {{4.0, 14.0, 4.0}}, {});
  const auto t = tv.transfer(0.0, 10'000);
  EXPECT_TRUE(t.completed);
  EXPECT_TRUE(t.perturbed);
  EXPECT_NEAR(t.duration_ms, 15.0, 1e-9);
  EXPECT_DOUBLE_EQ(tv.bandwidth_at(5.0), 4.0);
  EXPECT_DOUBLE_EQ(tv.bandwidth_at(14.0), 8.0);
}

TEST(TimeVaryingChannel, SetupLatencyIsTimeNotData) {
  // The setup window [0, 5) sits entirely inside a slow segment, but setup
  // is connection overhead, not bytes: only serialization slows down.
  const Channel base(8.0, 5.0);
  // Segment covers setup only; serialization [5, 15) runs at the base rate.
  const TimeVaryingChannel tv(base, {{0.0, 5.0, 0.001}}, {});
  const auto t = tv.transfer(0.0, 10'000);
  EXPECT_TRUE(t.completed);
  EXPECT_NEAR(t.duration_ms, 15.0, 1e-9);
}

TEST(TimeVaryingChannel, OutageFailsTransfers) {
  const Channel base(8.0, 5.0);  // 10 kB => 15 ms
  const TimeVaryingChannel tv(base, {}, {{10.0, 20.0}});

  // Outage begins mid-flight: failure detected at the outage start.
  const auto mid = tv.transfer(0.0, 10'000);
  EXPECT_FALSE(mid.completed);
  EXPECT_TRUE(mid.perturbed);
  EXPECT_DOUBLE_EQ(mid.duration_ms, 10.0);

  // Attempted inside the outage: times out after one setup latency.
  const auto inside = tv.transfer(12.0, 10'000);
  EXPECT_FALSE(inside.completed);
  EXPECT_DOUBLE_EQ(inside.duration_ms, base.setup_latency_ms());

  // Starting exactly at the outage end succeeds untouched.
  const auto after = tv.transfer(20.0, 10'000);
  EXPECT_TRUE(after.completed);
  EXPECT_EQ(after.duration_ms, base.time_ms(10'000));

  EXPECT_TRUE(tv.in_outage(10.0));
  EXPECT_FALSE(tv.in_outage(20.0));
  EXPECT_DOUBLE_EQ(tv.bandwidth_at(15.0), 0.0);
}

TEST(TimeVaryingChannel, Validation) {
  const Channel base(8.0);
  EXPECT_THROW(TimeVaryingChannel(base, {{10.0, 5.0, 1.0}}, {}),
               std::invalid_argument);  // end <= start
  EXPECT_THROW(TimeVaryingChannel(base, {{-1.0, 5.0, 1.0}}, {}),
               std::invalid_argument);  // negative start
  EXPECT_THROW(TimeVaryingChannel(base, {{0.0, 5.0, 0.0}}, {}),
               std::invalid_argument);  // non-positive rate
  EXPECT_THROW(
      TimeVaryingChannel(base, {{0.0, 5.0, 1.0}, {4.0, 8.0, 2.0}}, {}),
      std::invalid_argument);  // overlapping segments
  EXPECT_THROW(TimeVaryingChannel(base, {}, {{0.0, 5.0}, {4.0, 8.0}}),
               std::invalid_argument);  // overlapping outages
  // Unsorted but disjoint input is accepted and sorted.
  const TimeVaryingChannel ok(base, {{10.0, 20.0, 1.0}, {0.0, 5.0, 2.0}}, {});
  EXPECT_DOUBLE_EQ(ok.segments().front().start_ms, 0.0);
}

}  // namespace
}  // namespace jps::net
