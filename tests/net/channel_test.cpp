#include "net/channel.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "util/stats.h"
#include "util/units.h"

namespace jps::net {
namespace {

TEST(Channel, AffineModel) {
  const Channel ch(8.0, /*setup_latency_ms=*/5.0);
  // 8 Mbps = 1000 bytes/ms; 10 KB => 10 ms + 5 ms setup.
  EXPECT_DOUBLE_EQ(ch.time_ms(10'000), 15.0);
}

TEST(Channel, ZeroBytesCostsNothing) {
  const Channel ch(8.0, 5.0);
  EXPECT_DOUBLE_EQ(ch.time_ms(0), 0.0);
}

TEST(Channel, TimeScalesInverselyWithBandwidth) {
  const Channel slow(1.0, 0.0);
  const Channel fast(4.0, 0.0);
  EXPECT_NEAR(slow.time_ms(1'000'000) / fast.time_ms(1'000'000), 4.0, 1e-9);
}

TEST(Channel, PresetsMatchPaperRates) {
  EXPECT_DOUBLE_EQ(Channel::preset_3g().bandwidth_mbps(), 1.1);
  EXPECT_DOUBLE_EQ(Channel::preset_4g().bandwidth_mbps(), 5.85);
  EXPECT_DOUBLE_EQ(Channel::preset_wifi().bandwidth_mbps(), 18.88);
}

TEST(Channel, WithBandwidthPreservesOtherParams) {
  const Channel base(10.0, 3.0, 0.2);
  const Channel scaled = base.with_bandwidth(20.0);
  EXPECT_DOUBLE_EQ(scaled.bandwidth_mbps(), 20.0);
  EXPECT_DOUBLE_EQ(scaled.setup_latency_ms(), 3.0);
  EXPECT_DOUBLE_EQ(scaled.jitter_sigma(), 0.2);
}

TEST(Channel, Validation) {
  EXPECT_THROW(Channel(0.0), std::invalid_argument);
  EXPECT_THROW(Channel(-1.0), std::invalid_argument);
  EXPECT_THROW(Channel(1.0, -1.0), std::invalid_argument);
  EXPECT_THROW(Channel(1.0, 0.0, -0.5), std::invalid_argument);
}

TEST(Channel, SampleWithoutJitterIsDeterministic) {
  const Channel ch(10.0, 2.0, 0.0);
  util::Rng rng(1);
  EXPECT_DOUBLE_EQ(ch.sample_ms(50'000, rng), ch.time_ms(50'000));
}

TEST(Channel, SampleJitterMedianNearTruth) {
  const Channel ch(10.0, 2.0, 0.15);
  util::Rng rng(2);
  std::vector<double> samples;
  for (int i = 0; i < 4001; ++i) samples.push_back(ch.sample_ms(100'000, rng));
  EXPECT_NEAR(util::median(samples), ch.time_ms(100'000),
              0.03 * ch.time_ms(100'000));
  for (double s : samples) EXPECT_GT(s, 0.0);
}

}  // namespace
}  // namespace jps::net
