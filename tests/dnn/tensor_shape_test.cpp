#include "dnn/tensor_shape.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace jps::dnn {
namespace {

TEST(TensorShape, ChwAccessors) {
  const TensorShape s = TensorShape::chw(3, 224, 224);
  EXPECT_EQ(s.rank(), 3u);
  EXPECT_EQ(s.channels(), 3);
  EXPECT_EQ(s.height(), 224);
  EXPECT_EQ(s.width(), 224);
  EXPECT_EQ(s.elements(), 3 * 224 * 224);
}

TEST(TensorShape, BytesPerDtype) {
  const TensorShape s = TensorShape::flat(1000);
  EXPECT_EQ(s.bytes(DType::kFloat32), 4000u);
  EXPECT_EQ(s.bytes(DType::kFloat16), 2000u);
  EXPECT_EQ(s.bytes(DType::kInt8), 1000u);
}

TEST(TensorShape, EmptyShape) {
  const TensorShape s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.elements(), 0);
  EXPECT_EQ(s.bytes(), 0u);
}

TEST(TensorShape, RejectsNonPositiveDims) {
  EXPECT_THROW(TensorShape({3, 0, 5}), std::invalid_argument);
  EXPECT_THROW(TensorShape({-1}), std::invalid_argument);
}

TEST(TensorShape, DimBoundsChecked) {
  const TensorShape s = TensorShape::flat(10);
  EXPECT_EQ(s.dim(0), 10);
  EXPECT_THROW((void)s.dim(1), std::out_of_range);
}

TEST(TensorShape, Equality) {
  EXPECT_EQ(TensorShape::chw(1, 2, 3), TensorShape({1, 2, 3}));
  EXPECT_FALSE(TensorShape::chw(1, 2, 3) == TensorShape::chw(3, 2, 1));
}

TEST(TensorShape, Str) {
  EXPECT_EQ(TensorShape::chw(24, 56, 56).str(), "24x56x56");
  EXPECT_EQ(TensorShape::flat(4096).str(), "4096");
}

TEST(DTypeNames, AllNamed) {
  EXPECT_STREQ(dtype_name(DType::kFloat32), "f32");
  EXPECT_STREQ(dtype_name(DType::kFloat16), "f16");
  EXPECT_STREQ(dtype_name(DType::kInt8), "i8");
}

}  // namespace
}  // namespace jps::dnn
