#include "dnn/dot.h"

#include <gtest/gtest.h>

#include "dnn/layer.h"

namespace jps::dnn {
namespace {

Graph tiny() {
  Graph g("tiny\"quoted\"");
  NodeId x = g.add(input(TensorShape::chw(3, 8, 8)));
  x = g.add(conv2d(4, 3, 1, 1), {x});
  (void)x;
  return g;
}

TEST(Dot, ContainsNodesAndEdges) {
  Graph g = tiny();
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("n0"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
}

TEST(Dot, EscapesQuotesInName) {
  const std::string dot = to_dot(tiny());
  EXPECT_NE(dot.find("tiny\\\"quoted\\\""), std::string::npos);
}

TEST(Dot, AnnotatesShapesAfterInfer) {
  Graph g = tiny();
  EXPECT_EQ(to_dot(g).find("4x8x8"), std::string::npos);
  g.infer();
  EXPECT_NE(to_dot(g).find("4x8x8"), std::string::npos);
  // Edge annotated with the transfer size of the input tensor (3*8*8*4 B).
  EXPECT_NE(to_dot(g).find("768 B"), std::string::npos);
}

}  // namespace
}  // namespace jps::dnn
