#include "dnn/layer.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace jps::dnn {
namespace {

std::vector<TensorShape> in(TensorShape s) { return {std::move(s)}; }

TEST(Conv2d, OutputShapeStandardCases) {
  // AlexNet conv1: 3x224x224, 64 x 11x11 stride 4 pad 2 -> 64x55x55.
  const auto conv = conv2d(64, 11, 4, 2);
  const auto out = conv->infer(in(TensorShape::chw(3, 224, 224)));
  EXPECT_EQ(out, TensorShape::chw(64, 55, 55));
}

TEST(Conv2d, SamePaddingKeepsResolution) {
  const auto conv = conv2d(128, 3, 1, 1);
  const auto out = conv->infer(in(TensorShape::chw(64, 56, 56)));
  EXPECT_EQ(out, TensorShape::chw(128, 56, 56));
}

TEST(Conv2d, FlopsMatchHandComputation) {
  // 2 * Cout*H*W * Cin*K*K + bias(Cout*H*W).
  const auto conv = conv2d(8, 3, 1, 1);
  const TensorShape input = TensorShape::chw(4, 10, 10);
  const TensorShape out = conv->infer(in(input));
  const double expected = 2.0 * 8 * 10 * 10 * 4 * 3 * 3 + 8 * 10 * 10;
  EXPECT_DOUBLE_EQ(conv->flops(in(input), out), expected);
}

TEST(Conv2d, ParamCount) {
  const auto conv = conv2d(8, 3, 1, 1);
  const TensorShape input = TensorShape::chw(4, 10, 10);
  const TensorShape out = conv->infer(in(input));
  EXPECT_EQ(conv->param_count(in(input), out), 8u * 4 * 3 * 3 + 8);
}

TEST(Conv2d, GroupedConvDividesChannels) {
  const auto conv = conv2d(8, 3, 1, 1, /*groups=*/2, /*bias=*/false);
  const TensorShape input = TensorShape::chw(4, 10, 10);
  const TensorShape out = conv->infer(in(input));
  EXPECT_EQ(conv->param_count(in(input), out), 8u * 2 * 3 * 3);
  EXPECT_DOUBLE_EQ(conv->flops(in(input), out), 2.0 * 8 * 10 * 10 * 2 * 3 * 3);
}

TEST(Conv2d, DepthwiseBindsToInputChannels) {
  const auto conv = depthwise_conv2d(3, 1, 1);
  const TensorShape input = TensorShape::chw(144, 56, 56);
  const auto out = conv->infer(in(input));
  EXPECT_EQ(out, TensorShape::chw(144, 56, 56));
  // One filter per channel: 144 * 3 * 3 weights, no bias.
  EXPECT_EQ(conv->param_count(in(input), out), 144u * 9);
  EXPECT_DOUBLE_EQ(conv->flops(in(input), out), 2.0 * 144 * 56 * 56 * 9);
}

TEST(Conv2d, RejectsBadGeometry) {
  EXPECT_THROW(conv2d(8, 0), std::invalid_argument);
  EXPECT_THROW(conv2d(8, 3, 0), std::invalid_argument);
  EXPECT_THROW(conv2d(8, 3, 1, -1), std::invalid_argument);
  EXPECT_THROW(conv2d(7, 3, 1, 0, 2), std::invalid_argument);  // 7 % 2 != 0
  const auto conv = conv2d(8, 7);
  EXPECT_THROW(conv->infer(in(TensorShape::chw(3, 5, 5))),
               std::invalid_argument);  // window larger than input
}

TEST(Conv2d, RejectsWrongArityAndRank) {
  const auto conv = conv2d(8, 3);
  EXPECT_THROW(conv->infer({}), std::invalid_argument);
  EXPECT_THROW(conv->infer(in(TensorShape::flat(100))), std::invalid_argument);
}

TEST(Dense, ShapeFlopsParams) {
  const auto fc = dense(4096);
  const TensorShape input = TensorShape::flat(9216);
  const auto out = fc->infer(in(input));
  EXPECT_EQ(out, TensorShape::flat(4096));
  EXPECT_DOUBLE_EQ(fc->flops(in(input), out), 2.0 * 9216 * 4096 + 4096);
  EXPECT_EQ(fc->param_count(in(input), out), 9216u * 4096 + 4096);
}

TEST(Dense, RequiresFlatInput) {
  const auto fc = dense(10);
  EXPECT_THROW(fc->infer(in(TensorShape::chw(3, 4, 4))), std::invalid_argument);
}

TEST(Pool2d, ShapesAndFlops) {
  const auto pool = pool2d(PoolKind::kMax, 3, 2);
  const auto out = pool->infer(in(TensorShape::chw(64, 55, 55)));
  EXPECT_EQ(out, TensorShape::chw(64, 27, 27));
  EXPECT_DOUBLE_EQ(pool->flops(in(TensorShape::chw(64, 55, 55)), out),
                   64.0 * 27 * 27 * 9);
  EXPECT_EQ(pool->param_count(in(TensorShape::chw(64, 55, 55)), out), 0u);
}

TEST(Pool2d, StrideOnePaddedKeepsShape) {
  const auto pool = pool2d(PoolKind::kMax, 3, 1, 1);
  const auto out = pool->infer(in(TensorShape::chw(192, 28, 28)));
  EXPECT_EQ(out, TensorShape::chw(192, 28, 28));
}

TEST(GlobalAvgPool, CollapsesSpatialDims) {
  const auto pool = global_avg_pool();
  const auto out = pool->infer(in(TensorShape::chw(512, 7, 7)));
  EXPECT_EQ(out, TensorShape::chw(512, 1, 1));
}

TEST(Flatten, FlattensAnything) {
  const auto fl = flatten();
  EXPECT_EQ(fl->infer(in(TensorShape::chw(256, 6, 6))),
            TensorShape::flat(9216));
}

TEST(Activation, PreservesShapeUnitFlops) {
  const auto act = activation(ActivationKind::kReLU);
  const TensorShape s = TensorShape::chw(64, 8, 8);
  EXPECT_EQ(act->infer(in(s)), s);
  EXPECT_DOUBLE_EQ(act->flops(in(s), s), static_cast<double>(s.elements()));
}

TEST(BatchNorm, TwoParamsPerChannel) {
  const auto bn = batch_norm();
  const TensorShape s = TensorShape::chw(32, 10, 10);
  EXPECT_EQ(bn->infer(in(s)), s);
  EXPECT_EQ(bn->param_count(in(s), s), 64u);
}

TEST(Concat, SumsChannels) {
  const auto c = concat();
  const std::vector<TensorShape> inputs{
      TensorShape::chw(64, 28, 28), TensorShape::chw(128, 28, 28),
      TensorShape::chw(32, 28, 28), TensorShape::chw(32, 28, 28)};
  EXPECT_EQ(c->infer(inputs), TensorShape::chw(256, 28, 28));
  EXPECT_DOUBLE_EQ(c->flops(inputs, TensorShape::chw(256, 28, 28)), 0.0);
}

TEST(Concat, RejectsMismatchedSpatialDims) {
  const auto c = concat();
  const std::vector<TensorShape> inputs{TensorShape::chw(64, 28, 28),
                                        TensorShape::chw(64, 14, 14)};
  EXPECT_THROW(c->infer(inputs), std::invalid_argument);
}

TEST(Concat, RequiresAtLeastTwoInputs) {
  const auto c = concat();
  EXPECT_THROW(c->infer(in(TensorShape::chw(64, 28, 28))),
               std::invalid_argument);
}

TEST(Add, RequiresMatchingShapes) {
  const auto a = add();
  const std::vector<TensorShape> ok{TensorShape::chw(24, 56, 56),
                                    TensorShape::chw(24, 56, 56)};
  EXPECT_EQ(a->infer(ok), TensorShape::chw(24, 56, 56));
  const std::vector<TensorShape> bad{TensorShape::chw(24, 56, 56),
                                     TensorShape::chw(24, 28, 28)};
  EXPECT_THROW(a->infer(bad), std::invalid_argument);
}

TEST(Dropout, IdentityAtInference) {
  const auto d = dropout();
  const TensorShape s = TensorShape::flat(4096);
  EXPECT_EQ(d->infer(in(s)), s);
  EXPECT_DOUBLE_EQ(d->flops(in(s), s), 0.0);
}

TEST(Input, ReturnsConfiguredShape) {
  const auto i = input(TensorShape::chw(3, 416, 416));
  EXPECT_EQ(i->infer({}), TensorShape::chw(3, 416, 416));
  EXPECT_THROW(i->infer(in(TensorShape::flat(1))), std::invalid_argument);
}

TEST(MemoryTraffic, CountsInputsOutputsParams) {
  const auto conv = conv2d(8, 3, 1, 1, 1, /*bias=*/false);
  const TensorShape input = TensorShape::chw(4, 10, 10);
  const auto out = conv->infer(in(input));
  const std::uint64_t expected =
      input.bytes() + out.bytes() + 8ull * 4 * 9 * 4;  // params * 4 bytes
  EXPECT_EQ(conv->memory_traffic_bytes(in(input), out), expected);
}

TEST(LayerKindNames, AllDistinct) {
  EXPECT_STREQ(layer_kind_name(LayerKind::kConv2d), "conv2d");
  EXPECT_STREQ(layer_kind_name(LayerKind::kConcat), "concat");
  EXPECT_STREQ(layer_kind_name(LayerKind::kGlobalAvgPool), "global_avg_pool");
}

TEST(Describe, MentionsGeometry) {
  EXPECT_EQ(conv2d(64, 11, 4, 2)->describe(), "conv 11x11/4 p2 x64");
  EXPECT_EQ(depthwise_conv2d(3, 2, 1)->describe(), "dwconv 3x3/2 p1");
  EXPECT_EQ(dense(1000)->describe(), "dense x1000");
  EXPECT_EQ(pool2d(PoolKind::kAvg, 2, 2)->describe(), "avgpool 2x2/2");
}

}  // namespace
}  // namespace jps::dnn
