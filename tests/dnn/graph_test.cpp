#include "dnn/graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "dnn/layer.h"

namespace jps::dnn {
namespace {

// A small line graph: input -> conv -> relu -> pool.
Graph make_line() {
  Graph g("line");
  NodeId x = g.add(input(TensorShape::chw(3, 32, 32)));
  x = g.add(conv2d(8, 3, 1, 1), {x});
  x = g.add(activation(ActivationKind::kReLU), {x});
  x = g.add(pool2d(PoolKind::kMax, 2, 2), {x});
  return g;
}

// The DAG of the paper's Fig. 9(a): v0..v7 with three source->sink paths.
Graph make_fig9() {
  Graph g("fig9");
  const TensorShape s = TensorShape::chw(4, 8, 8);
  const NodeId v0 = g.add(input(s));
  const NodeId v1 = g.add(activation(ActivationKind::kReLU), {v0});
  const NodeId v2 = g.add(activation(ActivationKind::kReLU), {v1});
  const NodeId v3 = g.add(activation(ActivationKind::kReLU), {v1});
  const NodeId v4 = g.add(add(), {v2, v3});
  const NodeId v5 = g.add(activation(ActivationKind::kReLU), {v0});
  const NodeId v6 = g.add(activation(ActivationKind::kReLU), {v5});
  (void)g.add(add(), {v4, v6});
  return g;
}

TEST(Graph, AddAndTopology) {
  Graph g = make_line();
  EXPECT_EQ(g.size(), 4u);
  EXPECT_TRUE(g.is_line());
  EXPECT_EQ(g.predecessors(1), std::vector<NodeId>{0});
  EXPECT_EQ(g.successors(0), std::vector<NodeId>{1});
  EXPECT_EQ(g.source(), 0u);
  EXPECT_EQ(g.sink(), 3u);
}

TEST(Graph, RejectsForwardReferences) {
  Graph g("bad");
  (void)g.add(input(TensorShape::chw(1, 4, 4)));
  EXPECT_THROW(g.add(activation(ActivationKind::kReLU), {5}),
               std::invalid_argument);
}

TEST(Graph, RejectsNullLayer) {
  Graph g("bad");
  EXPECT_THROW(g.add(nullptr), std::invalid_argument);
}

TEST(Graph, InferFillsNodeInfo) {
  Graph g = make_line();
  g.infer();
  EXPECT_TRUE(g.inferred());
  EXPECT_EQ(g.info(1).output_shape, TensorShape::chw(8, 32, 32));
  EXPECT_EQ(g.info(3).output_shape, TensorShape::chw(8, 16, 16));
  EXPECT_EQ(g.info(1).output_bytes, 8u * 32 * 32 * 4);
  EXPECT_GT(g.info(1).flops, 0.0);
  EXPECT_GT(g.total_flops(), 0.0);
  EXPECT_EQ(g.total_params(), 8u * 3 * 9 + 8);
}

TEST(Graph, InfoRequiresInfer) {
  Graph g = make_line();
  EXPECT_THROW((void)g.info(0), std::logic_error);
  EXPECT_THROW((void)g.total_flops(), std::logic_error);
}

TEST(Graph, InferValidatesStructure) {
  // Two inputs.
  {
    Graph g("two_inputs");
    (void)g.add(input(TensorShape::chw(1, 2, 2)));
    (void)g.add(input(TensorShape::chw(1, 2, 2)));
    EXPECT_THROW(g.infer(), std::invalid_argument);
  }
  // Two sinks.
  {
    Graph g("two_sinks");
    const NodeId i = g.add(input(TensorShape::chw(1, 2, 2)));
    (void)g.add(activation(ActivationKind::kReLU), {i});
    (void)g.add(activation(ActivationKind::kReLU), {i});
    EXPECT_THROW(g.infer(), std::invalid_argument);
  }
  // Empty graph.
  {
    Graph g("empty");
    EXPECT_THROW(g.infer(), std::invalid_argument);
  }
  // Non-input node without predecessors (caught at infer time).
  {
    Graph g("no_input");
    (void)g.add(activation(ActivationKind::kReLU));
    EXPECT_THROW(g.infer(), std::invalid_argument);
  }
}

TEST(Graph, DefaultLabelsAndCustomLabels) {
  Graph g("labels");
  const NodeId a = g.add(input(TensorShape::chw(1, 2, 2)));
  const NodeId b =
      g.add(activation(ActivationKind::kReLU), {a}, "my_custom_relu");
  EXPECT_NE(g.label(a).find("input"), std::string::npos);
  EXPECT_EQ(g.label(b), "my_custom_relu");
}

TEST(Graph, PathCountLine) { EXPECT_EQ(make_line().path_count(), 1u); }

TEST(Graph, PathCountFig9) { EXPECT_EQ(make_fig9().path_count(), 3u); }

TEST(Graph, EnumeratePathsFig9) {
  Graph g = make_fig9();
  const auto paths = g.enumerate_paths();
  ASSERT_EQ(paths.size(), 3u);
  for (const auto& p : paths) {
    EXPECT_EQ(p.front(), g.source());
    EXPECT_EQ(p.back(), g.sink());
    // Consecutive nodes must be connected.
    for (std::size_t i = 0; i + 1 < p.size(); ++i) {
      const auto& succs = g.successors(p[i]);
      EXPECT_NE(std::find(succs.begin(), succs.end(), p[i + 1]), succs.end());
    }
  }
}

TEST(Graph, EnumeratePathsRespectsCap) {
  Graph g = make_fig9();
  EXPECT_THROW(g.enumerate_paths(2), std::runtime_error);
}

TEST(Graph, ArticulationNodesLine) {
  Graph g = make_line();
  // Every node of a line graph is an articulation node.
  EXPECT_EQ(g.articulation_nodes().size(), g.size());
}

TEST(Graph, ArticulationNodesFig9) {
  Graph g = make_fig9();
  const auto trunk = g.articulation_nodes();
  // Only v0 and v7 lie on all three paths.
  ASSERT_EQ(trunk.size(), 2u);
  EXPECT_EQ(trunk.front(), g.source());
  EXPECT_EQ(trunk.back(), g.sink());
}

TEST(Graph, AncestorsInclusive) {
  Graph g = make_fig9();
  // Ancestors of v4 = {v0, v1, v2, v3, v4}.
  const auto anc = ancestors_inclusive(g, 4);
  EXPECT_EQ(anc, (std::vector<NodeId>{0, 1, 2, 3, 4}));
  // Ancestors are sorted (topological by id).
  EXPECT_TRUE(std::is_sorted(anc.begin(), anc.end()));
  EXPECT_THROW(ancestors_inclusive(g, 99), std::out_of_range);
}

TEST(Graph, AccessorsBoundsChecked) {
  Graph g = make_line();
  EXPECT_THROW((void)g.layer(10), std::out_of_range);
  EXPECT_THROW((void)g.predecessors(10), std::out_of_range);
  EXPECT_THROW((void)g.successors(10), std::out_of_range);
  EXPECT_THROW((void)g.label(10), std::out_of_range);
}

TEST(Graph, TopoOrderIsInsertionOrder) {
  Graph g = make_fig9();
  const auto order = g.topo_order();
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(Graph, IsLineFalseForFig9) { EXPECT_FALSE(make_fig9().is_line()); }

TEST(Graph, InferIdempotent) {
  Graph g = make_line();
  g.infer();
  const double flops1 = g.total_flops();
  g.infer();
  EXPECT_DOUBLE_EQ(g.total_flops(), flops1);
}

}  // namespace
}  // namespace jps::dnn
