// Quantized-offloading support: switching a graph's element type rescales
// every tensor/parameter byte count, which is how fp16/int8 transfer
// compression enters the partition problem.
#include <gtest/gtest.h>

#include "dnn/graph.h"
#include "models/zoo.h"
#include "net/channel.h"
#include "partition/binary_search.h"
#include "partition/profile_curve.h"
#include "profile/device.h"
#include "profile/latency_model.h"

namespace jps::dnn {
namespace {

TEST(DType, SetDtypeInvalidatesInference) {
  Graph g = models::alexnet();
  g.infer();
  EXPECT_TRUE(g.inferred());
  g.set_dtype(DType::kFloat16);
  EXPECT_FALSE(g.inferred());
  EXPECT_THROW((void)g.info(0), std::logic_error);
}

TEST(DType, BytesScaleWithElementSize) {
  Graph f32 = models::alexnet();
  f32.infer();
  Graph f16 = models::alexnet();
  f16.set_dtype(DType::kFloat16);
  f16.infer();
  Graph i8 = models::alexnet();
  i8.set_dtype(DType::kInt8);
  i8.infer();
  for (NodeId id = 0; id < f32.size(); ++id) {
    EXPECT_EQ(f32.info(id).output_bytes, 2 * f16.info(id).output_bytes);
    EXPECT_EQ(f32.info(id).output_bytes, 4 * i8.info(id).output_bytes);
    // FLOPs and params are dtype-independent.
    EXPECT_DOUBLE_EQ(f32.info(id).flops, f16.info(id).flops);
    EXPECT_EQ(f32.info(id).params, i8.info(id).params);
  }
}

TEST(DType, QuantizedTransferMovesTheCutEarlier) {
  // Smaller tensors make offloading cheaper, so the f >= g crossing moves
  // to an earlier (or equal) cut and the balanced stage length drops.
  const profile::LatencyModel mobile(profile::DeviceProfile::raspberry_pi_4b());
  const net::Channel channel = net::Channel::preset_3g();

  Graph f32 = models::alexnet();
  f32.infer();
  Graph i8 = models::alexnet();
  i8.set_dtype(DType::kInt8);
  i8.infer();

  const auto curve32 = partition::ProfileCurve::build(f32, mobile, channel);
  const auto curve8 = partition::ProfileCurve::build(i8, mobile, channel);
  const auto d32 = partition::binary_search_cut(curve32);
  const auto d8 = partition::binary_search_cut(curve8);
  EXPECT_LE(curve8.f(d8.l_star), curve32.f(d32.l_star) + 1e-9);
  // The quantized balance point is strictly cheaper at 3G.
  EXPECT_LT(std::max(curve8.f(d8.l_star), curve8.g(d8.l_star)),
            std::max(curve32.f(d32.l_star), curve32.g(d32.l_star)));
}

}  // namespace
}  // namespace jps::dnn
