// Differential oracle: the analytic makespan formulas of src/sched
// (flowshop2/3 recurrences and the exact closed form) cross-checked against
// the discrete-event simulator on randomized instances, plus the trace
// export of the simulated timeline.
//
// This is the test layer the closed-form bug escaped: each oracle is an
// independent implementation of the same flow-shop semantics, so any one of
// them drifting (a dropped critical-path term, a FIFO policy change, a
// trace timestamp bug) breaks the agreement here.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/planner.h"
#include "fault/fault_executor.h"
#include "models/registry.h"
#include "obs/trace_writer.h"
#include "profile/device.h"
#include "sched/job.h"
#include "sched/johnson.h"
#include "sched/makespan.h"
#include "sim/event_sim.h"
#include "sim/executor.h"
#include "sim/trace.h"
#include "util/rng.h"

namespace jps {
namespace {

// Run a job sequence through the event simulator as the paper's pipeline:
// per job, a mobile-CPU task followed by an uplink task (and a cloud task
// when with_cloud).  FIFO submission order reproduces the permutation
// flow shop: each resource serves jobs in the given order.
sim::EventSimulator simulate_jobs(const sched::JobList& jobs,
                                  bool with_cloud) {
  sim::EventSimulator sim;
  const sim::ResourceId cpu = sim.add_resource("mobile_cpu");
  const sim::ResourceId link = sim.add_resource("uplink");
  const sim::ResourceId cloud =
      with_cloud ? sim.add_resource("cloud_gpu") : 0;
  for (const sched::Job& job : jobs) {
    const std::string tag = "j" + std::to_string(job.id);
    const sim::TaskId comp = sim.add_task(cpu, job.f, {}, tag + ":comp");
    const sim::TaskId comm = sim.add_task(link, job.g, {comp}, tag + ":tx");
    if (with_cloud) sim.add_task(cloud, job.cloud, {comm}, tag + ":cloud");
  }
  sim.run();
  return sim;
}

sched::JobList random_jobs(util::Rng& rng, int n, bool with_cloud) {
  sched::JobList jobs;
  for (int i = 0; i < n; ++i) {
    jobs.push_back(sched::Job{.id = i,
                              .cut = -1,
                              .f = rng.uniform(0.0, 10.0),
                              .g = rng.uniform(0.0, 10.0),
                              .cloud = with_cloud ? rng.uniform(0.0, 4.0)
                                                  : 0.0});
  }
  return jobs;
}

TEST(OracleDiff, Flowshop2MatchesEventSimulator) {
  util::Rng rng(101);
  for (int trial = 0; trial < 400; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(1, 16));
    const sched::JobList jobs = random_jobs(rng, n, /*with_cloud=*/false);
    const double analytic = sched::flowshop2_makespan(jobs);
    const double simulated = simulate_jobs(jobs, false).makespan();
    EXPECT_NEAR(simulated, analytic, 1e-9 * std::max(1.0, analytic))
        << "trial " << trial << " n=" << n;
  }
}

TEST(OracleDiff, Flowshop3MatchesEventSimulator) {
  util::Rng rng(103);
  for (int trial = 0; trial < 400; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(1, 16));
    const sched::JobList jobs = random_jobs(rng, n, /*with_cloud=*/true);
    const double analytic = sched::flowshop3_makespan(jobs);
    const double simulated = simulate_jobs(jobs, true).makespan();
    EXPECT_NEAR(simulated, analytic, 1e-9 * std::max(1.0, analytic))
        << "trial " << trial << " n=" << n;
  }
}

TEST(OracleDiff, ClosedFormMatchesBothOraclesOnRandomSequences) {
  // The acceptance bar of the closed-form fix: >= 1000 randomized job
  // sequences where closed form == recurrence == discrete-event simulator.
  util::Rng rng(107);
  for (int trial = 0; trial < 1000; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(1, 14));
    sched::JobList jobs = random_jobs(rng, n, /*with_cloud=*/false);
    // Half the trials in Johnson order, half in raw (arbitrary) order, so
    // both the proposition's setting and the general identity are covered.
    if (trial % 2 == 0) {
      jobs = sched::apply_order(jobs, sched::johnson_order(jobs).order);
    }
    const double closed = sched::closed_form_makespan(jobs);
    const double recurrence = sched::flowshop2_makespan(jobs);
    const double simulated = simulate_jobs(jobs, false).makespan();
    const double tolerance = 1e-9 * std::max(1.0, recurrence);
    EXPECT_NEAR(closed, recurrence, tolerance) << "trial " << trial;
    EXPECT_NEAR(closed, simulated, tolerance) << "trial " << trial;
  }
}

TEST(OracleDiff, ClosedFormCounterexampleJobSet) {
  // (1,1),(10,10),(1,1): the k=2 critical path dominates.  The pre-fix
  // closed form reported 13 here.
  sched::JobList jobs;
  jobs.push_back(sched::Job{.id = 0, .cut = -1, .f = 1.0, .g = 1.0});
  jobs.push_back(sched::Job{.id = 1, .cut = -1, .f = 10.0, .g = 10.0});
  jobs.push_back(sched::Job{.id = 2, .cut = -1, .f = 1.0, .g = 1.0});
  EXPECT_DOUBLE_EQ(sched::closed_form_makespan(jobs), 22.0);
  EXPECT_DOUBLE_EQ(sched::flowshop2_makespan(jobs), 22.0);
  EXPECT_DOUBLE_EQ(simulate_jobs(jobs, false).makespan(), 22.0);
}

TEST(OracleDiff, ChromeTraceSpansMatchSimulatedMakespan) {
  // The exported trace must tell the same story as the makespan number:
  // events cover [0, makespan], tracks are the simulator's resources, and
  // per-resource event time equals the resource's busy time.
  util::Rng rng(109);
  const sched::JobList jobs = random_jobs(rng, 10, /*with_cloud=*/true);
  const sim::EventSimulator sim = simulate_jobs(jobs, true);

  obs::TraceWriter writer;
  sim::append_chrome_trace(sim, writer, /*pid=*/1);
  ASSERT_EQ(writer.events().size(), 3u * jobs.size());

  double last_end = 0.0;
  double busy[3] = {0.0, 0.0, 0.0};
  for (const auto& event : writer.events()) {
    EXPECT_EQ(event.pid, 1);
    EXPECT_GE(event.start_ms, 0.0);
    ASSERT_LT(event.tid, 3u);
    busy[event.tid] += event.dur_ms;
    last_end = std::max(last_end, event.start_ms + event.dur_ms);
  }
  EXPECT_NEAR(last_end, sim.makespan(), 1e-9);
  for (sim::ResourceId r = 0; r < 3; ++r)
    EXPECT_NEAR(busy[r], sim.busy_time(r), 1e-9) << sim.resource_name(r);

  // And the serialized form is well-formed enough to carry every task tag.
  const std::string json = writer.json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("j0:comp"), std::string::npos);
  EXPECT_NE(json.find("mobile_cpu"), std::string::npos);
  EXPECT_NE(json.find("cloud_gpu"), std::string::npos);
}

TEST(OracleDiff, FaultAwareExecutorMatchesPlainSimWhenNoFaultFires) {
  // Randomized fault traces whose every event lies BEYOND the run: the
  // fault-aware executor walks the same scripted timeline machinery
  // (time-varying channel, factor windows, retry bookkeeping) but nothing
  // fires, so it must reproduce the fault-free simulation bit-for-bit.
  const dnn::Graph graph = models::build("alexnet");
  const profile::LatencyModel mobile(
      profile::DeviceProfile::raspberry_pi_4b());
  const profile::LatencyModel cloud(profile::DeviceProfile::cloud_gtx1080());
  const net::Channel channel(5.85);
  const auto curve = partition::ProfileCurve::build(graph, mobile, channel);
  const core::Planner planner(curve);

  fault::RandomFaultOptions fo;
  fo.horizon_ms = 5000.0;
  fo.base_mbps = channel.bandwidth_mbps();
  fo.drift_segments = 2;
  fo.outages = 2;
  fo.cloud_slow_windows = 1;
  fo.mobile_throttle_windows = 1;

  for (int trial = 0; trial < 20; ++trial) {
    util::Rng spec_rng(211 + static_cast<std::uint64_t>(trial));
    fault::FaultSpec spec = fault::FaultSpec::random(fo, spec_rng);
    const core::Strategy strategy = trial % 2 == 0 ? core::Strategy::kJPS
                                                   : core::Strategy::kJPSTuned;
    const int n = 2 + trial % 5;
    const core::ExecutionPlan plan = planner.plan(strategy, n);
    // Push every event past anything the run can reach.
    const double offset = 100.0 * plan.predicted_makespan + fo.horizon_ms;
    for (fault::FaultEvent& e : spec.events) {
      e.start_ms += offset;
      e.end_ms += offset;
    }
    const fault::FaultTimeline timeline(spec, channel);
    ASSERT_FALSE(timeline.fault_free());  // events exist, they just miss

    util::Rng plain_rng(7 + trial);
    const sim::SimResult plain = sim::simulate_plan(
        graph, curve, plan, mobile, cloud, channel, sim::SimOptions{},
        plain_rng);
    util::Rng fault_rng(7 + trial);
    const fault::FaultSimResult faulty = fault::simulate_plan_under_faults(
        graph, curve, plan, mobile, cloud, timeline, fault::FaultExecOptions{},
        fault_rng);

    EXPECT_FALSE(faulty.stats.any_fault()) << "trial " << trial;
    EXPECT_EQ(faulty.stats.transfer_failures, 0) << "trial " << trial;
    EXPECT_EQ(faulty.sim.makespan, plain.makespan) << "trial " << trial;
    ASSERT_EQ(faulty.sim.jobs.size(), plain.jobs.size());
    for (std::size_t i = 0; i < plain.jobs.size(); ++i) {
      EXPECT_EQ(faulty.sim.jobs[i].completion(), plain.jobs[i].completion())
          << "trial " << trial << " job " << i;
    }
  }
}

}  // namespace
}  // namespace jps
