#include "sim/event_sim.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace jps::sim {
namespace {

TEST(EventSim, SingleTask) {
  EventSimulator sim;
  const ResourceId r = sim.add_resource("cpu");
  const TaskId t = sim.add_task(r, 5.0, {});
  sim.run();
  EXPECT_DOUBLE_EQ(sim.record(t).start, 0.0);
  EXPECT_DOUBLE_EQ(sim.record(t).end, 5.0);
  EXPECT_DOUBLE_EQ(sim.makespan(), 5.0);
  EXPECT_DOUBLE_EQ(sim.busy_time(r), 5.0);
}

TEST(EventSim, ResourceSerializesTasks) {
  EventSimulator sim;
  const ResourceId r = sim.add_resource("cpu");
  const TaskId a = sim.add_task(r, 3.0, {});
  const TaskId b = sim.add_task(r, 4.0, {});
  sim.run();
  // FIFO by submission index.
  EXPECT_DOUBLE_EQ(sim.record(a).start, 0.0);
  EXPECT_DOUBLE_EQ(sim.record(b).start, 3.0);
  EXPECT_DOUBLE_EQ(sim.makespan(), 7.0);
}

TEST(EventSim, IndependentResourcesRunInParallel) {
  EventSimulator sim;
  const ResourceId r1 = sim.add_resource("cpu");
  const ResourceId r2 = sim.add_resource("link");
  const TaskId a = sim.add_task(r1, 3.0, {});
  const TaskId b = sim.add_task(r2, 4.0, {});
  sim.run();
  EXPECT_DOUBLE_EQ(sim.record(a).start, 0.0);
  EXPECT_DOUBLE_EQ(sim.record(b).start, 0.0);
  EXPECT_DOUBLE_EQ(sim.makespan(), 4.0);
}

TEST(EventSim, DependenciesGateStart) {
  EventSimulator sim;
  const ResourceId cpu = sim.add_resource("cpu");
  const ResourceId link = sim.add_resource("link");
  const TaskId compute = sim.add_task(cpu, 3.0, {});
  const TaskId transfer = sim.add_task(link, 2.0, {compute});
  sim.run();
  EXPECT_DOUBLE_EQ(sim.record(transfer).start, 3.0);
  EXPECT_DOUBLE_EQ(sim.makespan(), 5.0);
}

TEST(EventSim, ReproducesTwoStageFlowShop) {
  // Two jobs (f=4,g=6) and (f=7,g=2) in that order: the Fig. 2 pipeline,
  // makespan 13.
  EventSimulator sim;
  const ResourceId cpu = sim.add_resource("cpu");
  const ResourceId link = sim.add_resource("link");
  const TaskId f1 = sim.add_task(cpu, 4.0, {});
  const TaskId g1 = sim.add_task(link, 6.0, {f1});
  const TaskId f2 = sim.add_task(cpu, 7.0, {});
  const TaskId g2 = sim.add_task(link, 2.0, {f2});
  sim.run();
  EXPECT_DOUBLE_EQ(sim.record(g1).start, 4.0);
  EXPECT_DOUBLE_EQ(sim.record(f2).start, 4.0);
  EXPECT_DOUBLE_EQ(sim.record(g2).start, 11.0);
  EXPECT_DOUBLE_EQ(sim.makespan(), 13.0);
}

TEST(EventSim, FifoPrefersLowerSubmissionIndex) {
  EventSimulator sim;
  const ResourceId cpu = sim.add_resource("cpu");
  const TaskId gate = sim.add_task(cpu, 1.0, {});
  // Both become ready when `gate` finishes; the earlier-submitted wins.
  const TaskId second = sim.add_task(cpu, 1.0, {gate});
  const TaskId third = sim.add_task(cpu, 1.0, {gate});
  sim.run();
  EXPECT_DOUBLE_EQ(sim.record(second).start, 1.0);
  EXPECT_DOUBLE_EQ(sim.record(third).start, 2.0);
}

TEST(EventSim, ZeroDurationTasksAreFine) {
  EventSimulator sim;
  const ResourceId cpu = sim.add_resource("cpu");
  const TaskId a = sim.add_task(cpu, 0.0, {});
  const TaskId b = sim.add_task(cpu, 2.0, {a});
  sim.run();
  EXPECT_DOUBLE_EQ(sim.record(b).start, 0.0);
  EXPECT_DOUBLE_EQ(sim.makespan(), 2.0);
}

TEST(EventSim, Validation) {
  EventSimulator sim;
  EXPECT_THROW(sim.add_task(0, 1.0, {}), std::invalid_argument);  // no resource
  const ResourceId cpu = sim.add_resource("cpu");
  EXPECT_THROW(sim.add_task(cpu, -1.0, {}), std::invalid_argument);
  EXPECT_THROW(sim.add_task(cpu, 1.0, {5}), std::invalid_argument);
  const TaskId t = sim.add_task(cpu, 1.0, {});
  (void)t;
  sim.run();
  EXPECT_THROW(sim.run(), std::logic_error);  // run once only
  EXPECT_THROW((void)sim.record(99), std::out_of_range);
  EXPECT_THROW((void)sim.busy_time(9), std::out_of_range);
}

TEST(EventSim, EmptySimulation) {
  EventSimulator sim;
  (void)sim.add_resource("cpu");
  sim.run();
  EXPECT_DOUBLE_EQ(sim.makespan(), 0.0);
}

TEST(EventSim, BusyTimeAccumulates) {
  EventSimulator sim;
  const ResourceId cpu = sim.add_resource("cpu");
  (void)sim.add_task(cpu, 2.0, {});
  (void)sim.add_task(cpu, 3.0, {});
  sim.run();
  EXPECT_DOUBLE_EQ(sim.busy_time(cpu), 5.0);
  EXPECT_EQ(sim.resource_name(cpu), "cpu");
  EXPECT_EQ(sim.task_count(), 2u);
  EXPECT_EQ(sim.resource_count(), 1u);
}

}  // namespace
}  // namespace jps::sim
