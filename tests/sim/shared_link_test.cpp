#include "sim/shared_link.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "models/registry.h"
#include "profile/device.h"

namespace jps::sim {
namespace {

struct Fleet {
  dnn::Graph alexnet = models::build("alexnet");
  dnn::Graph mobilenet = models::build("mobilenet_v2");
  profile::LatencyModel cloud{profile::DeviceProfile::cloud_gtx1080()};

  std::vector<SharedDevice> devices(int jobs_each = 6) const {
    std::vector<SharedDevice> out;
    out.push_back({"car_front", &alexnet,
                   profile::LatencyModel(profile::DeviceProfile::raspberry_pi_4b()),
                   jobs_each});
    out.push_back({"car_rear", &mobilenet,
                   profile::LatencyModel(profile::DeviceProfile::midrange_phone()),
                   jobs_each});
    return out;
  }
};

TEST(SharedLink, Validation) {
  const Fleet fleet;
  util::Rng rng(1);
  EXPECT_THROW(plan_and_simulate_shared({}, net::Channel(10.0),
                                        core::Strategy::kJPS,
                                        SharePolicy::kFairShare, fleet.cloud,
                                        {}, rng),
               std::invalid_argument);
  auto devices = fleet.devices();
  devices[0].jobs = 0;
  EXPECT_THROW(plan_and_simulate_shared(devices, net::Channel(10.0),
                                        core::Strategy::kJPS,
                                        SharePolicy::kFairShare, fleet.cloud,
                                        {}, rng),
               std::invalid_argument);
  devices[0].jobs = 2;
  devices[0].graph = nullptr;
  EXPECT_THROW(plan_and_simulate_shared(devices, net::Channel(10.0),
                                        core::Strategy::kJPS,
                                        SharePolicy::kFairShare, fleet.cloud,
                                        {}, rng),
               std::invalid_argument);
}

TEST(SharedLink, ResultShapes) {
  const Fleet fleet;
  util::Rng rng(2);
  const SharedLinkResult result = plan_and_simulate_shared(
      fleet.devices(4), net::Channel(10.0), core::Strategy::kJPS,
      SharePolicy::kFairShare, fleet.cloud, {}, rng);
  ASSERT_EQ(result.plans.size(), 2u);
  ASSERT_EQ(result.device_makespans.size(), 2u);
  EXPECT_EQ(result.plans[0].jobs.size(), 4u);
  for (const double device_ms : result.device_makespans) {
    EXPECT_GT(device_ms, 0.0);
    EXPECT_LE(device_ms, result.makespan + 1e-9);
  }
  EXPECT_GE(result.link_utilization, 0.0);
  EXPECT_LE(result.link_utilization, 1.0);
}

TEST(SharedLink, SingleDeviceMatchesSimulatePlan) {
  // With one device the shared-link machinery must reduce to the ordinary
  // executor.
  const Fleet fleet;
  std::vector<SharedDevice> one;
  one.push_back({"solo", &fleet.alexnet,
                 profile::LatencyModel(profile::DeviceProfile::raspberry_pi_4b()),
                 8});
  const net::Channel link(5.85);
  util::Rng rng_a(3);
  const SharedLinkResult shared = plan_and_simulate_shared(
      one, link, core::Strategy::kJPS, SharePolicy::kFullBandwidth,
      fleet.cloud, {}, rng_a);

  const auto curve =
      partition::ProfileCurve::build(fleet.alexnet, one[0].mobile, link);
  const core::Planner planner(curve);
  const core::ExecutionPlan plan = planner.plan(core::Strategy::kJPS, 8);
  util::Rng rng_b(3);
  const SimResult solo = simulate_plan(fleet.alexnet, curve, plan,
                                       one[0].mobile, fleet.cloud, link, {},
                                       rng_b);
  EXPECT_NEAR(shared.makespan, solo.makespan, 1e-6 * solo.makespan);
}

TEST(SharedLink, ContentionSlowsEveryoneDown) {
  // Two devices sharing the link finish later than either alone on it.
  const Fleet fleet;
  const net::Channel link(5.85);
  util::Rng rng(4);
  const SharedLinkResult both = plan_and_simulate_shared(
      fleet.devices(6), link, core::Strategy::kJPS, SharePolicy::kFairShare,
      fleet.cloud, {}, rng);
  for (std::size_t d = 0; d < 2; ++d) {
    std::vector<SharedDevice> solo{fleet.devices(6)[d]};
    util::Rng solo_rng(4);
    const SharedLinkResult alone = plan_and_simulate_shared(
        solo, link, core::Strategy::kJPS, SharePolicy::kFullBandwidth,
        fleet.cloud, {}, solo_rng);
    EXPECT_GE(both.device_makespans[d], alone.makespan - 1e-6) << d;
  }
}

TEST(SharedLink, FairSharePlanningBeatsNaiveUnderContention) {
  // Four identical devices saturating a modest link: planning against B/M
  // anticipates the queueing and must not lose to the naive policy.
  dnn::Graph g = models::build("alexnet");
  const profile::LatencyModel cloud(profile::DeviceProfile::cloud_gtx1080());
  std::vector<SharedDevice> devices;
  for (int d = 0; d < 4; ++d) {
    devices.push_back({"dev" + std::to_string(d), &g,
                       profile::LatencyModel(
                           profile::DeviceProfile::raspberry_pi_4b()),
                       6});
  }
  const net::Channel link(5.85);
  util::Rng rng_naive(5);
  util::Rng rng_fair(5);
  const double naive =
      plan_and_simulate_shared(devices, link, core::Strategy::kJPS,
                               SharePolicy::kFullBandwidth, cloud, {},
                               rng_naive)
          .makespan;
  const double fair =
      plan_and_simulate_shared(devices, link, core::Strategy::kJPS,
                               SharePolicy::kFairShare, cloud, {}, rng_fair)
          .makespan;
  EXPECT_LE(fair, naive + 1e-6);
}

}  // namespace
}  // namespace jps::sim
