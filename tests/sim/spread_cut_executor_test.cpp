// Simulating plans whose cuts are SPREAD cut-sets (multiple tensors crossing
// the cut inside a branched module) — the general-structure path of Alg. 3 /
// Fig. 9(a) through the discrete-event executor.
#include <gtest/gtest.h>

#include "core/planner.h"
#include "dnn/layer.h"
#include "net/channel.h"
#include "partition/general_dag.h"
#include "profile/device.h"
#include "sched/makespan.h"
#include "sim/executor.h"

namespace jps::sim {
namespace {

using dnn::Graph;
using dnn::NodeId;
using dnn::TensorShape;

// Inception-style module whose branches REDUCE volume below even the raw
// network input, so spread cut-sets survive clustering: cutting after the
// two stride-2 reduce convs ships 2 x 4x48x48 = 18.4K elements vs the
// 3x96x96 = 27.6K-element input, at only slightly more local compute.
Graph make_reducing_module_net() {
  Graph g("reducing_module");
  NodeId x = g.add(dnn::input(TensorShape::chw(3, 96, 96)));
  x = g.add(dnn::conv2d(64, 3, 1, 1), {x});
  const NodeId entry = g.add(dnn::activation(dnn::ActivationKind::kReLU), {x});

  // Two branches, both reducing sharply (channels AND resolution) first.
  NodeId b1 = g.add(dnn::conv2d(4, 3, 2, 1), {entry});
  b1 = g.add(dnn::conv2d(16, 3, 1, 1), {b1});
  NodeId b2 = g.add(dnn::conv2d(4, 5, 2, 2), {entry});
  b2 = g.add(dnn::conv2d(16, 3, 1, 1), {b2});
  const NodeId join = g.add(dnn::concat(), {b1, b2});

  NodeId y = g.add(dnn::conv2d(64, 3, 2, 1), {join});
  y = g.add(dnn::global_avg_pool(), {y});
  y = g.add(dnn::flatten(), {y});
  (void)g.add(dnn::dense(10), {y});
  g.infer();
  return g;
}

struct SpreadTestbed {
  Graph graph = make_reducing_module_net();
  profile::LatencyModel mobile{profile::DeviceProfile::raspberry_pi_4b()};
  profile::LatencyModel cloud{profile::DeviceProfile::cloud_gtx1080()};
  // Fast enough that the f >= g crossing sits inside the module, where the
  // spread cuts live.
  net::Channel channel{50.0};

  partition::ProfileCurve general_curve() const {
    return partition::build_general_curve(
        graph,
        [&](NodeId id) { return mobile.node_time_ms(graph, id); },
        [&](std::uint64_t bytes) { return channel.time_ms(bytes); });
  }
};

TEST(SpreadCutExecutor, CurveContainsAMultiTensorCut) {
  const SpreadTestbed tb;
  const auto curve = tb.general_curve();
  bool has_spread = false;
  for (std::size_t i = 0; i < curve.size(); ++i)
    has_spread |= curve.cut(i).cut_nodes.size() > 1;
  ASSERT_TRUE(has_spread) << "fixture must produce a surviving spread cut";
}

TEST(SpreadCutExecutor, SimulationMatchesRecurrenceForEveryCut) {
  const SpreadTestbed tb;
  const auto curve = tb.general_curve();
  // Force every cut (incl. the spread ones) through the simulator as a
  // homogeneous 5-job plan and compare with the flow-shop recurrence.
  for (std::size_t c = 0; c < curve.size(); ++c) {
    core::ExecutionPlan plan;
    sched::JobList jobs;
    for (int j = 0; j < 5; ++j) {
      plan.jobs.push_back({j, c});
      jobs.push_back(sched::Job{.id = j,
                                .cut = static_cast<int>(c),
                                .f = curve.f(c),
                                .g = curve.g(c)});
    }
    plan.scheduled_jobs = jobs;
    plan.predicted_makespan = sched::flowshop2_makespan(jobs);

    SimOptions options;
    options.include_cloud = false;
    util::Rng rng(1);
    const SimResult result = simulate_plan(tb.graph, curve, plan, tb.mobile,
                                           tb.cloud, tb.channel, options, rng);
    EXPECT_NEAR(result.makespan, plan.predicted_makespan,
                1e-6 * plan.predicted_makespan + 1e-6)
        << "cut " << c << " (" << curve.cut(c).label << ")";
  }
}

TEST(SpreadCutExecutor, CloudStageConsumesAllShippedTensors) {
  const SpreadTestbed tb;
  const auto curve = tb.general_curve();
  // Find a spread cut and run with the cloud stage on: every job must have
  // cloud work and completion must not precede its transfer.
  std::size_t spread_cut = 0;
  for (std::size_t i = 0; i < curve.size(); ++i)
    if (curve.cut(i).cut_nodes.size() > 1) spread_cut = i;
  ASSERT_GT(curve.cut(spread_cut).cut_nodes.size(), 1u);

  core::ExecutionPlan plan;
  sched::JobList jobs;
  for (int j = 0; j < 3; ++j) {
    plan.jobs.push_back({j, spread_cut});
    jobs.push_back(sched::Job{.id = j,
                              .cut = static_cast<int>(spread_cut),
                              .f = curve.f(spread_cut),
                              .g = curve.g(spread_cut)});
  }
  plan.scheduled_jobs = jobs;

  util::Rng rng(2);
  const SimResult result = simulate_plan(tb.graph, curve, plan, tb.mobile,
                                         tb.cloud, tb.channel, {}, rng);
  for (const SimJobResult& job : result.jobs) {
    EXPECT_GT(job.cloud_end, 0.0);
    EXPECT_GE(job.cloud_start, job.comm_end - 1e-9);
    EXPECT_GE(job.comm_start, job.comp_end - 1e-9);
  }
}

TEST(SpreadCutExecutor, GeneralCurveStrictlyExtendsTrunkCurve) {
  // The surviving spread cut is a genuinely new non-dominated option: no
  // trunk cut matches its (f, g), and adding it can only help the planner.
  const SpreadTestbed tb;
  const auto trunk = partition::ProfileCurve::build(
      tb.graph,
      [&](NodeId id) { return tb.mobile.node_time_ms(tb.graph, id); },
      [&](std::uint64_t bytes) { return tb.channel.time_ms(bytes); });
  const auto general = tb.general_curve();
  EXPECT_GT(general.size(), trunk.size());

  for (std::size_t i = 0; i < general.size(); ++i) {
    if (general.cut(i).cut_nodes.size() <= 1) continue;  // trunk-style cut
    // The spread cut is not dominated by any trunk cut.
    for (std::size_t t = 0; t < trunk.size(); ++t) {
      EXPECT_FALSE(trunk.f(t) <= general.f(i) + 1e-9 &&
                   trunk.g(t) <= general.g(i) + 1e-9)
          << "spread cut " << i << " dominated by trunk cut " << t;
    }
  }

  const core::Planner trunk_planner(trunk);
  const core::Planner general_planner(general);
  EXPECT_LE(
      general_planner.plan(core::Strategy::kJPSHull, 20).predicted_makespan,
      trunk_planner.plan(core::Strategy::kJPSHull, 20).predicted_makespan +
          1e-6);
}

}  // namespace
}  // namespace jps::sim
