#include "sim/monte_carlo.h"

#include <gtest/gtest.h>

#include "core/planner.h"
#include "models/registry.h"
#include "net/channel.h"
#include "profile/device.h"

namespace jps::sim {
namespace {

struct McTestbed {
  dnn::Graph graph = models::build("alexnet");
  profile::LatencyModel mobile{profile::DeviceProfile::raspberry_pi_4b()};
  profile::LatencyModel cloud{profile::DeviceProfile::cloud_gtx1080()};
  net::Channel channel{5.85};
  partition::ProfileCurve curve =
      partition::ProfileCurve::build(graph, mobile, channel);
};

TEST(MonteCarlo, NoiselessCampaignIsDegenerate) {
  const McTestbed tb;
  const core::Planner planner(tb.curve);
  const core::ExecutionPlan plan = planner.plan(core::Strategy::kJPS, 8);
  MonteCarloOptions options;
  options.trials = 7;
  options.comp_noise_sigma = 0.0;
  options.comm_noise_sigma = 0.0;
  options.include_cloud = false;
  const util::Summary summary = monte_carlo_makespan(
      tb.graph, tb.curve, plan, tb.mobile, tb.cloud, tb.channel, options);
  EXPECT_EQ(summary.count, 7u);
  EXPECT_NEAR(summary.stddev, 0.0, 1e-9);
  EXPECT_NEAR(summary.median, plan.predicted_makespan,
              1e-6 * plan.predicted_makespan);
}

TEST(MonteCarlo, NoiseWidensTheDistributionAroundPrediction) {
  const McTestbed tb;
  const core::Planner planner(tb.curve);
  const core::ExecutionPlan plan = planner.plan(core::Strategy::kJPS, 12);
  MonteCarloOptions options;
  options.trials = 51;
  options.comp_noise_sigma = 0.10;
  options.comm_noise_sigma = 0.10;
  const util::Summary summary = monte_carlo_makespan(
      tb.graph, tb.curve, plan, tb.mobile, tb.cloud, tb.channel, options);
  EXPECT_GT(summary.stddev, 0.0);
  EXPECT_LT(summary.min, summary.p95);
  EXPECT_NEAR(summary.median, plan.predicted_makespan,
              0.10 * plan.predicted_makespan);
  EXPECT_GE(summary.p95, summary.median);
}

TEST(MonteCarlo, DeterministicForFixedSeed) {
  const McTestbed tb;
  const core::Planner planner(tb.curve);
  const core::ExecutionPlan plan = planner.plan(core::Strategy::kJPS, 6);
  MonteCarloOptions options;
  options.trials = 21;
  const util::Summary a = monte_carlo_makespan(
      tb.graph, tb.curve, plan, tb.mobile, tb.cloud, tb.channel, options);
  const util::Summary b = monte_carlo_makespan(
      tb.graph, tb.curve, plan, tb.mobile, tb.cloud, tb.channel, options);
  EXPECT_DOUBLE_EQ(a.median, b.median);
  EXPECT_DOUBLE_EQ(a.p95, b.p95);
}

TEST(MonteCarlo, SummariesBitIdenticalAcrossThreadCounts) {
  // Each trial draws from its own seeded stream, so the campaign result
  // must not depend on how trials are spread across the pool.
  const McTestbed tb;
  const core::Planner planner(tb.curve);
  const core::ExecutionPlan plan = planner.plan(core::Strategy::kJPS, 10);
  MonteCarloOptions options;
  options.trials = 64;
  options.comp_noise_sigma = 0.15;
  options.comm_noise_sigma = 0.08;
  options.threads = 1;
  const util::Summary serial = monte_carlo_makespan(
      tb.graph, tb.curve, plan, tb.mobile, tb.cloud, tb.channel, options);
  for (const std::size_t threads : {2u, 4u, 8u}) {
    options.threads = threads;
    const util::Summary parallel = monte_carlo_makespan(
        tb.graph, tb.curve, plan, tb.mobile, tb.cloud, tb.channel, options);
    EXPECT_EQ(serial.count, parallel.count);
    EXPECT_EQ(serial.mean, parallel.mean) << threads << " threads";
    EXPECT_EQ(serial.stddev, parallel.stddev) << threads << " threads";
    EXPECT_EQ(serial.min, parallel.min) << threads << " threads";
    EXPECT_EQ(serial.max, parallel.max) << threads << " threads";
    EXPECT_EQ(serial.median, parallel.median) << threads << " threads";
    EXPECT_EQ(serial.p95, parallel.p95) << threads << " threads";
  }
}

TEST(MonteCarlo, Validation) {
  const McTestbed tb;
  const core::Planner planner(tb.curve);
  const core::ExecutionPlan plan = planner.plan(core::Strategy::kJPS, 2);
  MonteCarloOptions options;
  options.trials = 0;
  EXPECT_THROW((void)monte_carlo_makespan(tb.graph, tb.curve, plan, tb.mobile,
                                    tb.cloud, tb.channel, options),
               std::invalid_argument);
}

}  // namespace
}  // namespace jps::sim
