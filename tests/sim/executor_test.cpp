#include "sim/executor.h"

#include <gtest/gtest.h>

#include "core/planner.h"
#include "models/registry.h"
#include "net/channel.h"
#include "profile/device.h"

namespace jps::sim {
namespace {

struct Testbed {
  dnn::Graph graph;
  profile::LatencyModel mobile;
  profile::LatencyModel cloud;
  net::Channel channel;
  partition::ProfileCurve curve;

  explicit Testbed(const std::string& model, double mbps = 5.85)
      : graph(models::build(model)),
        mobile(profile::DeviceProfile::raspberry_pi_4b()),
        cloud(profile::DeviceProfile::cloud_gtx1080()),
        channel(mbps),
        curve(partition::ProfileCurve::build(graph, mobile, channel)) {}
};

TEST(Executor, NoiselessTwoStageMatchesRecurrence) {
  Testbed s("alexnet");
  const core::Planner planner(s.curve);
  for (const core::Strategy strat :
       {core::Strategy::kLocalOnly, core::Strategy::kCloudOnly,
        core::Strategy::kPartitionOnly, core::Strategy::kJPS}) {
    const core::ExecutionPlan plan = planner.plan(strat, 12);
    SimOptions opt;
    opt.include_cloud = false;
    util::Rng rng(1);
    const SimResult result = simulate_plan(s.graph, s.curve, plan, s.mobile,
                                           s.cloud, s.channel, opt, rng);
    EXPECT_NEAR(result.makespan, plan.predicted_makespan,
                1e-6 * plan.predicted_makespan + 1e-6)
        << core::strategy_name(strat);
  }
}

TEST(Executor, CloudStageAddsLittle) {
  // The paper's premise: including the cloud stage changes the makespan only
  // marginally (cloud is fast and pipelined).
  Testbed s("resnet18");
  const core::Planner planner(s.curve);
  const core::ExecutionPlan plan = planner.plan(core::Strategy::kJPS, 10);
  SimOptions no_cloud;
  no_cloud.include_cloud = false;
  SimOptions with_cloud;
  util::Rng rng1(1);
  util::Rng rng2(1);
  const double base = simulate_plan(s.graph, s.curve, plan, s.mobile, s.cloud,
                                    s.channel, no_cloud, rng1)
                          .makespan;
  const double full = simulate_plan(s.graph, s.curve, plan, s.mobile, s.cloud,
                                    s.channel, with_cloud, rng2)
                          .makespan;
  EXPECT_GE(full, base - 1e-9);
  EXPECT_LE(full, 1.10 * base);  // < 10% inflation from the cloud stage
}

TEST(Executor, PerJobTimelinesAreOrderedAndConsistent) {
  Testbed s("mobilenet_v2");
  const core::Planner planner(s.curve);
  const core::ExecutionPlan plan = planner.plan(core::Strategy::kJPS, 8);
  SimOptions opt;
  util::Rng rng(2);
  const SimResult result = simulate_plan(s.graph, s.curve, plan, s.mobile,
                                         s.cloud, s.channel, opt, rng);
  ASSERT_EQ(result.jobs.size(), 8u);
  double prev_comp_end = 0.0;
  double prev_comm_end = 0.0;
  for (const SimJobResult& job : result.jobs) {
    EXPECT_LE(job.comp_start, job.comp_end);
    if (job.comm_end > 0.0) {
      EXPECT_GE(job.comm_start, job.comp_end - 1e-9);  // own comp first
      EXPECT_GE(job.comm_start, prev_comm_end - 1e-9);  // link is exclusive
    }
    EXPECT_GE(job.comp_start, prev_comp_end - 1e-9);  // CPU is exclusive
    prev_comp_end = job.comp_end;
    if (job.comm_end > 0.0) prev_comm_end = job.comm_end;
    EXPECT_LE(job.completion(), result.makespan + 1e-9);
  }
}

TEST(Executor, LocalOnlyNeverTouchesLinkOrCloud) {
  Testbed s("alexnet");
  const core::Planner planner(s.curve);
  const core::ExecutionPlan plan = planner.plan(core::Strategy::kLocalOnly, 5);
  SimOptions opt;
  util::Rng rng(3);
  const SimResult result = simulate_plan(s.graph, s.curve, plan, s.mobile,
                                         s.cloud, s.channel, opt, rng);
  EXPECT_DOUBLE_EQ(result.link_utilization, 0.0);
  EXPECT_DOUBLE_EQ(result.cloud_utilization, 0.0);
  EXPECT_GT(result.mobile_utilization, 0.99);
  for (const auto& job : result.jobs) {
    EXPECT_DOUBLE_EQ(job.comm_end, 0.0);
    EXPECT_DOUBLE_EQ(job.cloud_end, 0.0);
  }
}

TEST(Executor, CloudOnlySaturatesLink) {
  Testbed s("alexnet", 1.1);
  const core::Planner planner(s.curve);
  const core::ExecutionPlan plan = planner.plan(core::Strategy::kCloudOnly, 5);
  SimOptions opt;
  util::Rng rng(4);
  const SimResult result = simulate_plan(s.graph, s.curve, plan, s.mobile,
                                         s.cloud, s.channel, opt, rng);
  EXPECT_GT(result.link_utilization, 0.95);
  for (const auto& job : result.jobs) EXPECT_GT(job.cloud_end, 0.0);
}

TEST(Executor, NoiseChangesButStaysNearPrediction) {
  Testbed s("alexnet");
  const core::Planner planner(s.curve);
  const core::ExecutionPlan plan = planner.plan(core::Strategy::kJPS, 20);
  SimOptions opt;
  opt.comp_noise_sigma = 0.05;
  opt.comm_noise_sigma = 0.05;
  opt.include_cloud = false;
  util::Rng rng(5);
  const SimResult noisy = simulate_plan(s.graph, s.curve, plan, s.mobile,
                                        s.cloud, s.channel, opt, rng);
  EXPECT_NE(noisy.makespan, plan.predicted_makespan);
  EXPECT_NEAR(noisy.makespan, plan.predicted_makespan,
              0.15 * plan.predicted_makespan);
}

TEST(Executor, JpsBeatsBaselinesUnderSimulationToo) {
  // The ranking must survive end-to-end execution, not just prediction.
  Testbed s("googlenet", 5.85);
  const core::Planner planner(s.curve);
  SimOptions opt;
  auto run = [&](core::Strategy strat) {
    const core::ExecutionPlan plan = planner.plan(strat, 30);
    util::Rng rng(6);
    return simulate_plan(s.graph, s.curve, plan, s.mobile, s.cloud, s.channel,
                         opt, rng)
        .makespan;
  };
  const double lo = run(core::Strategy::kLocalOnly);
  const double po = run(core::Strategy::kPartitionOnly);
  const double jps = run(core::Strategy::kJPS);
  EXPECT_LT(jps, po + 1e-6);
  EXPECT_LT(jps, lo + 1e-6);
}

}  // namespace
}  // namespace jps::sim
