#include "sim/trace.h"

#include <gtest/gtest.h>

#include "core/planner.h"
#include "models/registry.h"
#include "net/channel.h"
#include "profile/device.h"

namespace jps::sim {
namespace {

SimResult sample_result() {
  const dnn::Graph graph = models::build("alexnet");
  const profile::LatencyModel mobile(profile::DeviceProfile::raspberry_pi_4b());
  const profile::LatencyModel cloud(profile::DeviceProfile::cloud_gtx1080());
  const net::Channel channel = net::Channel::preset_4g();
  const auto curve = partition::ProfileCurve::build(graph, mobile, channel);
  const core::Planner planner(curve);
  const core::ExecutionPlan plan = planner.plan(core::Strategy::kJPS, 4);
  util::Rng rng(1);
  return simulate_plan(graph, curve, plan, mobile, cloud, channel, {}, rng);
}

TEST(Trace, GanttHasOneRowPerJobPlusFrame) {
  const SimResult result = sample_result();
  const std::string gantt = ascii_gantt(result, 60);
  std::size_t rows = 0;
  std::size_t pos = 0;
  while ((pos = gantt.find("job ", pos)) != std::string::npos) {
    ++rows;
    ++pos;
  }
  EXPECT_EQ(rows, result.jobs.size());
  EXPECT_NE(gantt.find("legend"), std::string::npos);
  EXPECT_NE(gantt.find('M'), std::string::npos);  // mobile bars present
  EXPECT_NE(gantt.find('>'), std::string::npos);  // transfer bars present
}

TEST(Trace, GanttWidthClamped) {
  const SimResult result = sample_result();
  const std::string narrow = ascii_gantt(result, 1);  // clamped to >= 10
  EXPECT_FALSE(narrow.empty());
}

TEST(Trace, CsvHasHeaderAndRows) {
  const SimResult result = sample_result();
  const std::string csv = timeline_csv(result);
  EXPECT_EQ(csv.find("job_id,cut_index"), 0u);
  std::size_t lines = 0;
  for (const char c : csv)
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, result.jobs.size() + 1);
}

TEST(Trace, CsvValuesMatchResult) {
  const SimResult result = sample_result();
  const std::string csv = timeline_csv(result);
  // The first job's id must appear at the start of line 2.
  const std::size_t line2 = csv.find('\n') + 1;
  EXPECT_EQ(csv[line2], static_cast<char>('0' + result.jobs[0].job_id % 10));
}

}  // namespace
}  // namespace jps::sim
