// End-to-end simulation of heterogeneous plans via simulate_mixed_plan.
#include <gtest/gtest.h>

#include "core/hetero.h"
#include "models/registry.h"
#include "net/channel.h"
#include "profile/device.h"
#include "sched/makespan.h"
#include "sim/executor.h"

namespace jps::sim {
namespace {

struct MixedTestbed {
  dnn::Graph resnet = models::build("resnet18");
  dnn::Graph mobilenet = models::build("mobilenet_v2");
  profile::LatencyModel mobile{profile::DeviceProfile::raspberry_pi_4b()};
  profile::LatencyModel cloud{profile::DeviceProfile::cloud_gtx1080()};
  net::Channel channel{5.85};
  partition::ProfileCurve resnet_curve =
      partition::ProfileCurve::build(resnet, mobile, channel);
  partition::ProfileCurve mobilenet_curve =
      partition::ProfileCurve::build(mobilenet, mobile, channel);

  std::vector<core::JobClass> classes() const {
    return {{"resnet18", resnet_curve, 4}, {"mobilenet_v2", mobilenet_curve, 6}};
  }

  std::vector<MixedJob> to_mixed(const core::HeteroPlan& plan) const {
    std::vector<MixedJob> jobs;
    for (const core::HeteroUnit& unit : plan.scheduled) {
      MixedJob job;
      job.graph = unit.class_index == 0 ? &resnet : &mobilenet;
      job.curve = unit.class_index == 0 ? &resnet_curve : &mobilenet_curve;
      job.cut_index = unit.cut_index;
      job.job_id = unit.job_id;
      jobs.push_back(job);
    }
    return jobs;
  }
};

TEST(MixedExecutor, NoiselessTwoStageMatchesRecurrence) {
  const MixedTestbed tb;
  const core::HeteroPlan plan =
      core::plan_hetero(tb.classes(), core::Strategy::kJPS);

  sched::JobList expected;
  for (const core::HeteroUnit& unit : plan.scheduled)
    expected.push_back(sched::Job{.id = unit.job_id,
                                  .cut = static_cast<int>(unit.cut_index),
                                  .f = unit.f,
                                  .g = unit.g});

  SimOptions options;
  options.include_cloud = false;
  util::Rng rng(1);
  const SimResult result = simulate_mixed_plan(tb.to_mixed(plan), tb.mobile,
                                               tb.cloud, tb.channel, options,
                                               rng);
  EXPECT_NEAR(result.makespan, sched::flowshop2_makespan(expected),
              1e-6 * result.makespan + 1e-6);
  EXPECT_NEAR(result.makespan, plan.makespan, 1e-6 * result.makespan + 1e-6);
}

TEST(MixedExecutor, CloudStageStaysNegligible) {
  const MixedTestbed tb;
  const core::HeteroPlan plan =
      core::plan_hetero(tb.classes(), core::Strategy::kJPS);
  util::Rng rng(2);
  const SimResult full = simulate_mixed_plan(tb.to_mixed(plan), tb.mobile,
                                             tb.cloud, tb.channel, {}, rng);
  EXPECT_LE(full.makespan, 1.10 * plan.makespan);
  EXPECT_GE(full.makespan, plan.makespan - 1e-6);
}

TEST(MixedExecutor, JobsKeepTheirModelIdentity) {
  const MixedTestbed tb;
  const core::HeteroPlan plan =
      core::plan_hetero(tb.classes(), core::Strategy::kLocalOnly);
  util::Rng rng(3);
  const SimResult result = simulate_mixed_plan(tb.to_mixed(plan), tb.mobile,
                                               tb.cloud, tb.channel, {}, rng);
  ASSERT_EQ(result.jobs.size(), 10u);
  // Local-only: total busy time equals the sum of both models' full times.
  const double expected_busy = 4.0 * tb.mobile.graph_time_ms(tb.resnet) +
                               6.0 * tb.mobile.graph_time_ms(tb.mobilenet);
  EXPECT_NEAR(result.makespan, expected_busy, 1e-6 * expected_busy);
}

TEST(MixedExecutor, RejectsNullGraph) {
  const MixedTestbed tb;
  std::vector<MixedJob> jobs{MixedJob{}};
  util::Rng rng(4);
  EXPECT_THROW(simulate_mixed_plan(jobs, tb.mobile, tb.cloud, tb.channel, {},
                                   rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace jps::sim
