#include <gtest/gtest.h>

#include <stdexcept>

#include "models/zoo.h"

namespace jps::models {
namespace {

TEST(SyntheticLine, DefaultSpecIsLine) {
  dnn::Graph g = synthetic_line(SyntheticLineSpec{});
  g.infer();
  EXPECT_TRUE(g.is_line());
  EXPECT_EQ(g.path_count(), 1u);
}

TEST(SyntheticLine, BlockCountControlsDepth) {
  SyntheticLineSpec small;
  small.blocks = 2;
  SyntheticLineSpec big;
  big.blocks = 12;
  dnn::Graph gs = synthetic_line(small);
  dnn::Graph gb = synthetic_line(big);
  EXPECT_LT(gs.size(), gb.size());
}

TEST(SyntheticLine, PoolingShrinksVolumeMonotonically) {
  SyntheticLineSpec spec;
  spec.blocks = 6;
  spec.channel_double_every = 0;  // keep channels constant
  dnn::Graph g = synthetic_line(spec);
  g.infer();
  // Volume after each pool layer must strictly decrease.
  std::uint64_t last_pool_bytes = 0;
  bool first = true;
  for (dnn::NodeId id = 0; id < g.size(); ++id) {
    if (g.layer(id).kind() == dnn::LayerKind::kPool2d) {
      if (!first) {
        EXPECT_LT(g.info(id).output_bytes, last_pool_bytes);
      }
      last_pool_bytes = g.info(id).output_bytes;
      first = false;
    }
  }
  EXPECT_FALSE(first) << "expected at least one pool layer";
}

TEST(SyntheticLine, GlobalPoolHeadWhenNoFc) {
  SyntheticLineSpec spec;
  spec.fc_sizes.clear();
  dnn::Graph g = synthetic_line(spec);
  g.infer();
  bool has_gap = false;
  for (dnn::NodeId id = 0; id < g.size(); ++id)
    has_gap |= g.layer(id).kind() == dnn::LayerKind::kGlobalAvgPool;
  EXPECT_TRUE(has_gap);
}

TEST(SyntheticLine, RejectsBadSpecs) {
  SyntheticLineSpec bad;
  bad.blocks = 0;
  EXPECT_THROW(synthetic_line(bad), std::invalid_argument);
  SyntheticLineSpec bad2;
  bad2.pool_every = 0;
  EXPECT_THROW(synthetic_line(bad2), std::invalid_argument);
}

}  // namespace
}  // namespace jps::models
