#include <gtest/gtest.h>

#include "dnn/layer.h"
#include "models/zoo.h"

namespace jps::models {
namespace {

using dnn::Graph;
using dnn::NodeId;
using dnn::TensorShape;

TEST(InceptionV4, MatchesPublishedParameterCount) {
  Graph g = inception_v4();
  g.infer();
  // Szegedy et al. report ~42.68M (BN scales); our bias-conv variant lands
  // within half a percent.
  EXPECT_GT(g.total_params(), 42'400'000u);
  EXPECT_LT(g.total_params(), 43'000'000u);
}

TEST(InceptionV4, MatchesPublishedFlops) {
  Graph g = inception_v4();
  g.infer();
  // ~12.3 GMACs at 299x299 => ~24.6 GFLOPs with MAC = 2 FLOPs.
  EXPECT_GT(g.total_flops(), 23.5e9);
  EXPECT_LT(g.total_flops(), 25.5e9);
}

TEST(InceptionV4, StageShapesFollowThePaper) {
  Graph g = inception_v4();
  g.infer();
  // Walk the concat outputs: the stem ends at 384x35x35, Reduction-A at
  // 1024x17x17, Reduction-B at 1536x8x8, and the C blocks keep 1536x8x8.
  std::vector<TensorShape> concats;
  for (NodeId id = 0; id < g.size(); ++id) {
    if (g.layer(id).kind() == dnn::LayerKind::kConcat)
      concats.push_back(g.info(id).output_shape);
  }
  ASSERT_GE(concats.size(), 3u);
  EXPECT_EQ(concats[2], TensorShape::chw(384, 35, 35));    // stem exit
  bool saw_reduction_a = false;
  bool saw_reduction_b = false;
  for (const auto& s : concats) {
    saw_reduction_a |= s == TensorShape::chw(1024, 17, 17);
    saw_reduction_b |= s == TensorShape::chw(1536, 8, 8);
  }
  EXPECT_TRUE(saw_reduction_a);
  EXPECT_TRUE(saw_reduction_b);
  EXPECT_EQ(g.info(g.sink()).output_shape, TensorShape::flat(1000));
}

TEST(InceptionV4, PathCountIsAstronomicalButTrunkIsSmall) {
  Graph g = inception_v4();
  g.infer();
  // 4-6-way modules over 14 blocks: far beyond Alg. 3's enumeration reach.
  EXPECT_GT(g.path_count(), 1'000'000'000ull);
  // The articulation trunk stays small, so the partition machinery works.
  const auto trunk = g.articulation_nodes();
  EXPECT_GE(trunk.size(), 10u);
  EXPECT_LE(trunk.size(), 40u);
  EXPECT_THROW(g.enumerate_paths(4096), std::runtime_error);
}

TEST(RectConv, ShapesAndParams) {
  // 1x7 factorized conv with "same" padding keeps the map size.
  const auto conv = dnn::conv2d_rect(64, 1, 7);
  const std::vector<TensorShape> in{TensorShape::chw(64, 17, 17)};
  const TensorShape out = conv->infer(in);
  EXPECT_EQ(out, TensorShape::chw(64, 17, 17));
  EXPECT_EQ(conv->param_count(in, out), 64u * 64 * 7 + 64);
  EXPECT_DOUBLE_EQ(conv->flops(in, out),
                   2.0 * 64 * 17 * 17 * 64 * 7 + 64 * 17 * 17);
}

TEST(RectConv, ExplicitPaddingAndDescribe) {
  const auto conv = dnn::conv2d_rect(32, 7, 1, 3, 0);
  const std::vector<TensorShape> in{TensorShape::chw(16, 20, 20)};
  EXPECT_EQ(conv->infer(in), TensorShape::chw(32, 20, 20));
  EXPECT_EQ(conv->describe(), "conv 7x1/1 p3x0 x32");
}

TEST(RectConv, AsymmetricOutputWithZeroPadding) {
  const auto conv = dnn::conv2d_rect(8, 3, 1, 0, 0);
  const std::vector<TensorShape> in{TensorShape::chw(4, 10, 10)};
  EXPECT_EQ(conv->infer(in), TensorShape::chw(8, 8, 10));
}

}  // namespace
}  // namespace jps::models
