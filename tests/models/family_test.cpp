// VGG family and SqueezeNet.
#include <gtest/gtest.h>

#include <stdexcept>

#include "dnn/layer.h"
#include "models/zoo.h"

namespace jps::models {
namespace {

TEST(VggFamily, ReferenceParameterCounts) {
  const struct {
    int depth;
    std::uint64_t params;
  } kReference[] = {{11, 132'863'336u},
                    {13, 133'047'848u},
                    {16, 138'357'544u},
                    {19, 143'667'240u}};
  for (const auto& ref : kReference) {
    dnn::Graph g = vgg(ref.depth);
    g.infer();
    EXPECT_EQ(g.total_params(), ref.params) << "vgg" << ref.depth;
    EXPECT_TRUE(g.is_line()) << "vgg" << ref.depth;
  }
}

TEST(VggFamily, DepthOrdersFlops) {
  double prev = 0.0;
  for (const int depth : {11, 13, 16, 19}) {
    dnn::Graph g = vgg(depth);
    g.infer();
    EXPECT_GT(g.total_flops(), prev);
    prev = g.total_flops();
  }
}

TEST(VggFamily, RejectsUnknownDepth) {
  EXPECT_THROW(vgg(12), std::invalid_argument);
  EXPECT_THROW(vgg(0), std::invalid_argument);
}

TEST(Squeezenet, ReferenceParameterCount) {
  dnn::Graph g = squeezenet();
  g.infer();
  // SqueezeNet 1.1 reference weights: ~1.235M parameters.
  EXPECT_GT(g.total_params(), 1'200'000u);
  EXPECT_LT(g.total_params(), 1'280'000u);
}

TEST(Squeezenet, FireModulesMakeItGeneral) {
  dnn::Graph g = squeezenet();
  g.infer();
  EXPECT_FALSE(g.is_line());
  // Eight 2-branch fire modules: 2^8 paths.
  EXPECT_EQ(g.path_count(), 256u);
  // Each fire module ends in a concat; count them.
  int concats = 0;
  for (dnn::NodeId id = 0; id < g.size(); ++id)
    if (g.layer(id).kind() == dnn::LayerKind::kConcat) ++concats;
  EXPECT_EQ(concats, 8);
}

TEST(Squeezenet, ConvClassifierNoDense) {
  dnn::Graph g = squeezenet();
  g.infer();
  for (dnn::NodeId id = 0; id < g.size(); ++id)
    EXPECT_NE(g.layer(id).kind(), dnn::LayerKind::kDense);
  EXPECT_EQ(g.info(g.sink()).output_shape, dnn::TensorShape::flat(1000));
}

}  // namespace
}  // namespace jps::models
