#include "models/zoo.h"

#include <gtest/gtest.h>

#include "dnn/graph.h"

namespace jps::models {
namespace {

using dnn::Graph;
using dnn::NodeId;
using dnn::TensorShape;

TEST(AlexNet, MatchesTorchvisionParameterCount) {
  Graph g = alexnet();
  g.infer();
  // The single-tower AlexNet has exactly 61,100,840 parameters (LRN and
  // dropout are parameter-free, so the optional extras don't change this).
  EXPECT_EQ(g.total_params(), 61'100'840u);
}

TEST(AlexNet, ClassifierShapes) {
  Graph g = alexnet();
  g.infer();
  // Find the flatten node and check the canonical 256*6*6 = 9216 features.
  bool found = false;
  for (NodeId id = 0; id < g.size(); ++id) {
    if (g.layer(id).kind() == dnn::LayerKind::kFlatten) {
      EXPECT_EQ(g.info(id).output_shape, TensorShape::flat(9216));
      found = true;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(g.info(g.sink()).output_shape, TensorShape::flat(1000));
}

TEST(AlexNet, IsLineStructured) {
  Graph g = alexnet();
  EXPECT_TRUE(g.is_line());
  EXPECT_EQ(g.path_count(), 1u);
}

TEST(AlexNet, FlopsInExpectedRange) {
  Graph g = alexnet();
  g.infer();
  // ~0.7 GMAC => ~1.4 GFLOP for the standard 224x224 input.
  EXPECT_GT(g.total_flops(), 1.3e9);
  EXPECT_LT(g.total_flops(), 1.6e9);
}

TEST(AlexNet, LrnToggleOnlyAddsParamFreeNodes) {
  Graph with = alexnet(1000, true);
  Graph without = alexnet(1000, false);
  with.infer();
  without.infer();
  EXPECT_EQ(with.total_params(), without.total_params());
  EXPECT_EQ(with.size(), without.size() + 2);
}

TEST(Vgg16, MatchesReferenceParameterCount) {
  Graph g = vgg16();
  g.infer();
  EXPECT_EQ(g.total_params(), 138'357'544u);
}

TEST(Vgg16, FlattenIs25088) {
  Graph g = vgg16();
  g.infer();
  for (NodeId id = 0; id < g.size(); ++id) {
    if (g.layer(id).kind() == dnn::LayerKind::kFlatten) {
      EXPECT_EQ(g.info(id).output_shape, TensorShape::flat(25088));
    }
  }
  EXPECT_TRUE(g.is_line());
  // VGG-16 is the classic ~15.5 GFLOP network.
  EXPECT_GT(g.total_flops(), 29e9);   // 2 FLOPs per MAC
  EXPECT_LT(g.total_flops(), 32e9);
}

TEST(ResNet18, MatchesTorchvisionParameterCount) {
  Graph g = resnet18();
  g.infer();
  EXPECT_EQ(g.total_params(), 11'689'512u);
}

TEST(ResNet18, StructureAndPaths) {
  Graph g = resnet18();
  g.infer();
  EXPECT_FALSE(g.is_line());
  // 8 basic blocks, each contributing one 2-way branch: 2^8 paths.
  EXPECT_EQ(g.path_count(), 256u);
  EXPECT_EQ(g.info(g.sink()).output_shape, TensorShape::flat(1000));
  // ~1.8 GMAC.
  EXPECT_GT(g.total_flops(), 3.4e9);
  EXPECT_LT(g.total_flops(), 3.9e9);
}

TEST(MobileNetV2, MatchesTorchvisionParameterCount) {
  Graph g = mobilenet_v2();
  g.infer();
  EXPECT_EQ(g.total_params(), 3'504'872u);
}

TEST(MobileNetV2, BypassLinksMatchPaperFig10) {
  Graph g = mobilenet_v2();
  g.infer();
  // 10 of the 17 bottlenecks have stride 1 and matching channels, so 2^10
  // source->sink paths.
  EXPECT_EQ(g.path_count(), 1024u);
  // ~0.3 GMAC.
  EXPECT_GT(g.total_flops(), 0.55e9);
  EXPECT_LT(g.total_flops(), 0.70e9);
}

TEST(MobileNetV2, WidthMultiplierShrinksModel) {
  Graph full = mobilenet_v2(1000, 1.0);
  Graph half = mobilenet_v2(1000, 0.5);
  full.infer();
  half.infer();
  EXPECT_LT(half.total_params(), full.total_params());
  EXPECT_LT(half.total_flops(), full.total_flops());
}

TEST(GoogLeNet, ParameterAndPathCounts) {
  Graph g = googlenet();
  g.infer();
  // ~7 M parameters (inference model with biases, no aux heads).
  EXPECT_GT(g.total_params(), 6'000'000u);
  EXPECT_LT(g.total_params(), 7'500'000u);
  // 9 inception modules with 4 branches each: 4^9 paths.
  EXPECT_EQ(g.path_count(), 262'144u);
}

TEST(GoogLeNet, InceptionOutputChannels) {
  Graph g = googlenet();
  g.infer();
  // The canonical per-module concat channel counts, in order.
  const std::vector<std::int64_t> expected{256, 480, 512, 512, 512,
                                           528, 832, 832, 1024};
  std::vector<std::int64_t> got;
  for (NodeId id = 0; id < g.size(); ++id) {
    if (g.layer(id).kind() == dnn::LayerKind::kConcat)
      got.push_back(g.info(id).output_shape.channels());
  }
  EXPECT_EQ(got, expected);
}

TEST(TinyYolo, DetectionHeadShape) {
  Graph g = tiny_yolov2();
  g.infer();
  // 5 anchors * (5 + 20 classes) = 125 channels on a 13x13 grid.
  EXPECT_EQ(g.info(g.sink()).output_shape, TensorShape::chw(125, 13, 13));
  EXPECT_TRUE(g.is_line());
}

TEST(TinyYolo, ParameterCountRange) {
  Graph g = tiny_yolov2();
  g.infer();
  // The darknet reference weights are ~15.8 M parameters.
  EXPECT_GT(g.total_params(), 15'000'000u);
  EXPECT_LT(g.total_params(), 16'500'000u);
}

TEST(Nin, GlobalAvgPoolClassifier) {
  Graph g = nin();
  g.infer();
  EXPECT_TRUE(g.is_line());
  EXPECT_EQ(g.info(g.sink()).output_shape, TensorShape::flat(1000));
  // NiN has no dense layers at all.
  for (NodeId id = 0; id < g.size(); ++id)
    EXPECT_NE(g.layer(id).kind(), dnn::LayerKind::kDense);
}

}  // namespace
}  // namespace jps::models
