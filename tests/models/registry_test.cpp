#include "models/registry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

namespace jps::models {
namespace {

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(build("not_a_model"), std::invalid_argument);
}

TEST(Registry, PaperEvalNamesAreSubsetOfAll) {
  const auto& all = all_names();
  for (const auto& name : paper_eval_names()) {
    EXPECT_NE(std::find(all.begin(), all.end(), name), all.end())
        << name << " missing from all_names()";
  }
  EXPECT_EQ(paper_eval_names().size(), 4u);
}

/// Structural invariants every zoo model must satisfy.
class RegistryModelTest : public ::testing::TestWithParam<std::string> {};

TEST_P(RegistryModelTest, BuildsInferredAndWellFormed) {
  const dnn::Graph g = build(GetParam());
  EXPECT_TRUE(g.inferred());
  EXPECT_EQ(g.name(), GetParam());
  EXPECT_GT(g.size(), 5u);
  EXPECT_GT(g.total_flops(), 0.0);
  EXPECT_GT(g.total_params(), 0u);
  // Single source (node 0), single sink (validated by infer()).
  EXPECT_EQ(g.source(), 0u);
  EXPECT_EQ(g.layer(0).kind(), dnn::LayerKind::kInput);
}

TEST_P(RegistryModelTest, EveryNodeOnSomePath) {
  const dnn::Graph g = build(GetParam());
  // Every node must be reachable from the source and reach the sink —
  // i.e. be an ancestor of the sink and have the source as an ancestor.
  const auto sink_anc = dnn::ancestors_inclusive(g, g.sink());
  EXPECT_EQ(sink_anc.size(), g.size())
      << "some nodes cannot reach the sink";
}

TEST_P(RegistryModelTest, ArticulationNodesIncludeEndpoints) {
  const dnn::Graph g = build(GetParam());
  const auto trunk = g.articulation_nodes();
  ASSERT_GE(trunk.size(), 2u);
  EXPECT_EQ(trunk.front(), g.source());
  EXPECT_EQ(trunk.back(), g.sink());
  EXPECT_TRUE(std::is_sorted(trunk.begin(), trunk.end()));
}

TEST_P(RegistryModelTest, OutputBytesPositiveEverywhere) {
  const dnn::Graph g = build(GetParam());
  for (dnn::NodeId id = 0; id < g.size(); ++id)
    EXPECT_GT(g.info(id).output_bytes, 0u) << "node " << id;
}

INSTANTIATE_TEST_SUITE_P(AllModels, RegistryModelTest,
                         ::testing::ValuesIn(all_names()),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace jps::models
