// Comparison logic behind `jps_bench_diff`: load two BENCH_*.json telemetry
// files (schema "jps-bench-v1", written by bench::BenchReporter) and flag
// per-metric regressions.
//
// A lower-is-better metric stat regresses when current > base *
// (1 + threshold); a HIGHER-is-better one (a throughput or speedup series)
// when current < base * (1 - threshold).  Metrics named *_per_sec or
// *_speedup are treated as higher-is-better automatically; anything else
// can be forced with Options::higher_better (the CLI's --higher-better
// flag).  The default threshold applies to every metric; per-metric
// overrides tighten or loosen individual series (a noisy tail metric can
// tolerate 30% while a deterministic mean stays at 5%).  Improvements and
// in-budget drift are reported but never fail.
//
// Header-only so the CLI and the unit tests share one implementation
// without another library target.  Exit codes follow the jps_lint
// convention: 0 clean, 1 regressions, 2 schema mismatch, 64 usage error.
#pragma once

#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/json.h"

namespace jps::tools::bench_diff {

inline constexpr int kExitOk = 0;
inline constexpr int kExitRegression = 1;
inline constexpr int kExitSchema = 2;
inline constexpr int kExitUsage = 64;

inline constexpr const char* kSchema = "jps-bench-v1";

struct Options {
  /// Allowed relative drift before a stat counts as a regression
  /// (an increase for lower-is-better metrics, a decrease for
  /// higher-is-better ones).
  double threshold = 0.10;
  /// Which stats of each metric to compare.
  std::vector<std::string> stats = {"p50", "p95", "p99"};
  /// Per-metric threshold overrides (metric name -> allowed drift).
  std::map<std::string, double> metric_thresholds;
  /// Metrics where MORE is better (throughput, speedups): a regression is
  /// current < base * (1 - threshold).  Names ending in "_per_sec" or
  /// "_speedup" get this treatment without being listed here.
  std::set<std::string> higher_better;
};

/// True when `metric` should be compared as higher-is-better: listed in
/// `options.higher_better` or carrying a throughput/speedup suffix.
inline bool is_higher_better(const std::string& metric,
                             const Options& options) {
  if (options.higher_better.count(metric) != 0) return true;
  const auto ends_with = [&](const std::string& suffix) {
    return metric.size() >= suffix.size() &&
           metric.compare(metric.size() - suffix.size(), suffix.size(),
                          suffix) == 0;
  };
  return ends_with("_per_sec") || ends_with("_speedup");
}

/// One compared (metric, stat) pair.
struct Finding {
  std::string metric;
  std::string stat;
  double base = 0.0;
  double current = 0.0;
  /// current/base - 1 (0 when base == 0).
  double delta = 0.0;
  double threshold = 0.0;
  /// True when this metric is compared as higher-is-better.
  bool higher_better = false;
  bool regression = false;
};

struct Report {
  std::vector<Finding> findings;
  /// Schema-level problems (bad schema tag, metric disappeared, ...).
  std::vector<std::string> problems;

  [[nodiscard]] bool has_regressions() const {
    for (const Finding& f : findings)
      if (f.regression) return true;
    return false;
  }

  [[nodiscard]] int exit_code() const {
    if (!problems.empty()) return kExitSchema;
    return has_regressions() ? kExitRegression : kExitOk;
  }
};

inline std::string format_delta(double delta) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", delta * 100.0);
  return buf;
}

/// Compare two parsed BENCH documents.  Never throws on content problems —
/// they land in Report::problems (malformed JSON should be caught by the
/// caller around util::Json::parse).
inline Report compare(const util::Json& base, const util::Json& current,
                      const Options& options = {}) {
  Report report;
  for (const auto* doc : {&base, &current}) {
    const util::Json* schema = doc->get("schema");
    if (schema == nullptr || !schema->is_string() ||
        schema->as_string() != kSchema) {
      report.problems.push_back(std::string("not a ") + kSchema +
                                " document (missing/wrong \"schema\")");
      return report;
    }
  }
  const util::Json* base_name = base.get("name");
  const util::Json* current_name = current.get("name");
  if (base_name != nullptr && current_name != nullptr &&
      base_name->as_string() != current_name->as_string()) {
    report.problems.push_back("bench names differ: \"" +
                              base_name->as_string() + "\" vs \"" +
                              current_name->as_string() + "\"");
    return report;
  }

  const util::Json* base_metrics = base.get("metrics");
  const util::Json* current_metrics = current.get("metrics");
  if (base_metrics == nullptr || !base_metrics->is_object() ||
      current_metrics == nullptr || !current_metrics->is_object()) {
    report.problems.push_back("missing \"metrics\" object");
    return report;
  }

  for (const auto& [metric, base_stats] : base_metrics->members()) {
    const util::Json* current_stats = current_metrics->get(metric);
    if (current_stats == nullptr) {
      report.problems.push_back("metric \"" + metric +
                                "\" missing from current file");
      continue;
    }
    const auto override_it = options.metric_thresholds.find(metric);
    const double threshold = override_it != options.metric_thresholds.end()
                                 ? override_it->second
                                 : options.threshold;
    for (const std::string& stat : options.stats) {
      const util::Json* base_value = base_stats.get(stat);
      const util::Json* current_value = current_stats->get(stat);
      if (base_value == nullptr || !base_value->is_number() ||
          current_value == nullptr || !current_value->is_number()) {
        continue;  // stat not recorded on both sides: nothing to compare
      }
      Finding f;
      f.metric = metric;
      f.stat = stat;
      f.base = base_value->as_double();
      f.current = current_value->as_double();
      f.threshold = threshold;
      f.higher_better = is_higher_better(metric, options);
      if (f.base > 0.0) {
        f.delta = f.current / f.base - 1.0;
        f.regression =
            f.higher_better ? f.delta < -threshold : f.delta > threshold;
      } else if (f.higher_better) {
        // Zero throughput baseline: any value >= 0 can only improve.
        f.delta = 0.0;
        f.regression = false;
      } else {
        // Zero baseline: any positive current value is flagged (relative
        // delta is undefined, but "was free, now costs" is a regression).
        f.delta = 0.0;
        f.regression = f.current > 0.0;
      }
      report.findings.push_back(std::move(f));
    }
  }
  return report;
}

/// Human-readable report: one line per regression (or per finding when
/// `verbose`), then a summary line.
inline std::string to_text(const Report& report, bool verbose = false) {
  std::string out;
  for (const std::string& problem : report.problems)
    out += "schema: " + problem + "\n";
  std::size_t regressions = 0;
  for (const Finding& f : report.findings) {
    if (f.regression) ++regressions;
    if (!f.regression && !verbose) continue;
    char line[256];
    std::snprintf(line, sizeof(line), "%s %s.%s: %g -> %g (%s, budget %+.1f%%)\n",
                  f.regression ? "REGRESSION" : "ok        ", f.metric.c_str(),
                  f.stat.c_str(), f.base, f.current,
                  format_delta(f.delta).c_str(),
                  f.higher_better ? -f.threshold * 100.0
                                  : f.threshold * 100.0);
    out += line;
  }
  out += std::to_string(report.findings.size()) + " stats compared, " +
         std::to_string(regressions) + " regressions\n";
  return out;
}

}  // namespace jps::tools::bench_diff
