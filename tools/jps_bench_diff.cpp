// jps_bench_diff — compare two BENCH_*.json telemetry files.
//
//   jps_bench_diff BASE.json CURRENT.json
//       [--threshold 0.10]            default allowed relative drift
//       [--stats p50,p95,p99]         which stats to compare
//       [--thresholds m1=0.25,m2=0.05] per-metric overrides
//       [--higher-better m1,m2]       metrics where MORE is better; a drop
//                                     below base*(1-threshold) regresses
//                                     (*_per_sec/*_speedup are automatic)
//       [--verbose]                   print in-budget stats too
//
// Exit codes (jps_lint convention):
//   0   no regressions
//   1   at least one stat exceeded its budget
//   2   schema mismatch (wrong schema tag, different bench, lost metric)
//   64  usage error (bad flags, unreadable/unparseable file)
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>

#include "args.h"
#include "bench_diff.h"
#include "util/strings.h"

namespace {

using namespace jps;
using namespace jps::tools;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void usage() {
  std::cout <<
      "jps_bench_diff — flag regressions between two BENCH_*.json files\n"
      "usage: jps_bench_diff BASE.json CURRENT.json\n"
      "  --threshold R            allowed relative drift (default 0.10)\n"
      "  --stats s1,s2            stats to compare (default p50,p95,p99)\n"
      "  --thresholds m=R,m2=R2   per-metric threshold overrides\n"
      "  --higher-better m1,m2    metrics where more is better; regression\n"
      "                           is a drop below base*(1-threshold)\n"
      "                           (*_per_sec and *_speedup are automatic)\n"
      "  --verbose                also print stats that stayed in budget\n"
      "exit: 0 clean, 1 regression, 2 schema mismatch, 64 usage\n";
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  if (args.has("help")) {
    usage();
    return bench_diff::kExitOk;
  }
  if (args.positionals().size() != 2) {
    usage();
    return bench_diff::kExitUsage;
  }
  try {
    bench_diff::Options options;
    options.threshold = args.get_double("threshold", options.threshold);
    if (args.has("stats")) {
      options.stats = util::split(args.get("stats", ""), ',');
    }
    for (const std::string& entry :
         util::split(args.get("thresholds", ""), ',')) {
      if (entry.empty()) continue;
      const auto parts = util::split(entry, '=');
      if (parts.size() != 2)
        throw UsageError("--thresholds: expected metric=R, got '" + entry +
                         "'");
      // Strict parse: stod would abort the process on "metric=abc" and
      // silently read "metric=0.1x" as 0.1.
      const std::optional<double> threshold = util::parse_double(parts[1]);
      if (!threshold)
        throw UsageError("--thresholds: expected a number for '" + parts[0] +
                         "', got '" + parts[1] + "'");
      options.metric_thresholds[parts[0]] = *threshold;
    }
    for (const std::string& metric :
         util::split(args.get("higher-better", ""), ',')) {
      if (!metric.empty()) options.higher_better.insert(metric);
    }

    const util::Json base = util::Json::parse(read_file(args.positionals()[0]));
    const util::Json current =
        util::Json::parse(read_file(args.positionals()[1]));
    const bench_diff::Report report =
        bench_diff::compare(base, current, options);
    std::cout << bench_diff::to_text(report, args.has("verbose"));
    return report.exit_code();
  } catch (const UsageError& e) {
    std::cerr << "error: " << e.what() << "\n";
    usage();
    return bench_diff::kExitUsage;
  } catch (const std::exception& e) {
    // Unreadable/unparseable input files are usage errors too (see header).
    std::cerr << "error: " << e.what() << "\n";
    return bench_diff::kExitUsage;
  }
}
