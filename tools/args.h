// Minimal flag parser for the CLI tools: --key value / --key=value pairs
// plus a leading positional subcommand.
#pragma once

#include <limits>
#include <stdexcept>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/strings.h"

namespace jps::tools {

/// Exit code for command-line misuse (BSD sysexits EX_USAGE); shared by
/// every jps_* tool.
inline constexpr int kExitUsage = 64;

/// A bad flag value or malformed operand.  Tools catch this at top level,
/// print the message plus a usage pointer, and exit kExitUsage — a typo'd
/// `--bandwidth fast` must never surface as an uncaught std::stod abort.
class UsageError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string token = argv[i];
      if (token.rfind("--", 0) == 0) {
        const std::string key = token.substr(2);
        if (const auto eq = key.find('='); eq != std::string::npos) {
          // --key=value (value may be empty or contain further '=').
          flags_[key.substr(0, eq)] = key.substr(eq + 1);
        } else if (i + 1 < argc &&
                   std::string(argv[i + 1]).rfind("--", 0) != 0) {
          flags_[key] = argv[++i];
        } else {
          flags_[key] = "true";  // bare switch
        }
      } else {
        positional_.push_back(token);
      }
    }
  }

  /// First positional argument (the subcommand), or "" when absent.
  [[nodiscard]] std::string command() const {
    return positional_.empty() ? std::string() : positional_.front();
  }

  /// All positional arguments in order (tools taking file operands).
  [[nodiscard]] const std::vector<std::string>& positionals() const {
    return positional_;
  }

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const {
    const auto it = flags_.find(key);
    return it == flags_.end() ? fallback : it->second;
  }

  /// The flag as a double.  util::parse_double is strict and
  /// locale-independent: "0.1x" is rejected instead of silently reading as
  /// 0.1, and a comma-decimal locale cannot truncate "3.5" to 3.
  [[nodiscard]] double get_double(const std::string& key, double fallback) const {
    const auto it = flags_.find(key);
    if (it == flags_.end()) return fallback;
    const std::optional<double> value = util::parse_double(it->second);
    if (!value) {
      throw UsageError("--" + key + ": expected a number, got '" + it->second +
                       "'");
    }
    return *value;
  }

  [[nodiscard]] int get_int(const std::string& key, int fallback) const {
    const auto it = flags_.find(key);
    if (it == flags_.end()) return fallback;
    const std::optional<std::int64_t> value = util::parse_int(it->second);
    if (!value || *value < std::numeric_limits<int>::min() ||
        *value > std::numeric_limits<int>::max()) {
      throw UsageError("--" + key + ": expected an integer, got '" +
                       it->second + "'");
    }
    return static_cast<int>(*value);
  }

  [[nodiscard]] bool has(const std::string& key) const {
    return flags_.count(key) != 0;
  }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace jps::tools
