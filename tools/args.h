// Minimal flag parser for the CLI tools: --key value / --key=value pairs
// plus a leading positional subcommand.
#pragma once

#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace jps::tools {

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string token = argv[i];
      if (token.rfind("--", 0) == 0) {
        const std::string key = token.substr(2);
        if (const auto eq = key.find('='); eq != std::string::npos) {
          // --key=value (value may be empty or contain further '=').
          flags_[key.substr(0, eq)] = key.substr(eq + 1);
        } else if (i + 1 < argc &&
                   std::string(argv[i + 1]).rfind("--", 0) != 0) {
          flags_[key] = argv[++i];
        } else {
          flags_[key] = "true";  // bare switch
        }
      } else {
        positional_.push_back(token);
      }
    }
  }

  /// First positional argument (the subcommand), or "" when absent.
  [[nodiscard]] std::string command() const {
    return positional_.empty() ? std::string() : positional_.front();
  }

  /// All positional arguments in order (tools taking file operands).
  [[nodiscard]] const std::vector<std::string>& positionals() const {
    return positional_;
  }

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const {
    const auto it = flags_.find(key);
    return it == flags_.end() ? fallback : it->second;
  }

  [[nodiscard]] double get_double(const std::string& key, double fallback) const {
    const auto it = flags_.find(key);
    if (it == flags_.end()) return fallback;
    try {
      return std::stod(it->second);
    } catch (const std::exception&) {
      throw std::invalid_argument("--" + key + ": expected a number, got '" +
                                  it->second + "'");
    }
  }

  [[nodiscard]] int get_int(const std::string& key, int fallback) const {
    const auto it = flags_.find(key);
    if (it == flags_.end()) return fallback;
    try {
      return std::stoi(it->second);
    } catch (const std::exception&) {
      throw std::invalid_argument("--" + key + ": expected an integer, got '" +
                                  it->second + "'");
    }
  }

  [[nodiscard]] bool has(const std::string& key) const {
    return flags_.count(key) != 0;
  }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace jps::tools
