// jps_serve: the multi-tenant plan server daemon and its client commands.
//
//   jps_serve serve [--port N] [--workers N] [--max-inflight N]
//                   [--bucket-mbps X] [--tenant-rate X] [--tenant-burst X]
//                   [--metrics-out FILE] [--metrics-format openmetrics|json]
//       Run the daemon on 127.0.0.1:PORT (0 picks an ephemeral port, printed
//       on stdout).  SIGINT/SIGTERM drains: stop accepting, finish admitted
//       work, write metrics, exit 0.
//
//   jps_serve plan --model M [--bandwidth X] [--strategy S] [--jobs N]
//                  [--tenant T] [--host H] [--port N]
//       Send one plan request and print the reply.
//
//   jps_serve ping [--host H] [--port N]
//       Liveness probe; exit 0 when the server answers.
//
//   jps_serve stats [--host H] [--port N] [--watch [--interval-ms X]]
//       Scrape the daemon's live metrics snapshot (protocol v3 STATS op) and
//       print it as JSON.  --watch re-scrapes until interrupted.
//
//   jps_serve trace [--host H] [--port N] [--max N] [--watch]
//                   [--chrome-out FILE]
//       Drain the daemon's flight recorder (protocol v3 TRACE_DUMP op) and
//       print the retained traces as JSON.  --chrome-out additionally
//       converts the drained spans to Chrome trace-event format.
//
//   jps_serve selfcheck [--clients N] [--requests N] [--chaos]
//       In-process end-to-end check (no sockets): start a server, drive it
//       with concurrent clients over pipe transports, verify every reply
//       against a direct Planner run.  CI's smoke test.  With --chaos the
//       same check runs under scripted transport faults (delays, 1-byte
//       reads, mid-frame disconnects, corrupted bytes) — every SUCCESSFUL
//       reply must still be bit-identical — and finishes with a
//       kill-and-restart cycle proving snapshot warm-start.
//
// Exit codes: 0 success, 1 runtime failure, 64 usage error.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "args.h"
#include "core/planner.h"
#include "fault/fault_spec.h"
#include "models/registry.h"
#include "net/channel.h"
#include "obs/flight_recorder.h"
#include "obs/metrics_export.h"
#include "obs/trace_writer.h"
#include "partition/profile_curve.h"
#include "profile/latency_model.h"
#include "serve/chaos.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/transport.h"
#include "util/json.h"
#include "util/mutex.h"
#include "util/strings.h"

namespace {

using namespace jps;

void usage() {
  std::cout <<
      "usage: jps_serve <command> [flags]\n"
      "\n"
      "commands:\n"
      "  serve       run the daemon on 127.0.0.1 (blocks until SIGINT/SIGTERM)\n"
      "  plan        request one plan from a running daemon\n"
      "  ping        probe a running daemon\n"
      "  stats       scrape a running daemon's metrics snapshot as JSON\n"
      "  trace       drain a running daemon's flight recorder as JSON\n"
      "  selfcheck   in-process server + concurrent clients, no sockets\n"
      "\n"
      "serve flags:\n"
      "  --port N              listen port (default 7421; 0 = ephemeral)\n"
      "  --workers N           planner threads (default 4)\n"
      "  --max-inflight N      distinct computations in flight before\n"
      "                        shedding RESOURCE_EXHAUSTED (default 8)\n"
      "  --bucket-mbps X       bandwidth quantization step (default 0.25)\n"
      "  --tenant-rate X       per-tenant requests/sec (default 0 = unlimited)\n"
      "  --tenant-burst X      per-tenant burst allowance (default 16)\n"
      "  --cache-shards N      plan-cache lock stripes (default 8)\n"
      "  --snapshot FILE       plan-cache snapshot: load at start, save on\n"
      "                        drain (crash-safe warm-start)\n"
      "  --snapshot-interval-ms X  also save every X ms while running\n"
      "  --no-breaker          disable the per-tenant circuit breaker\n"
      "  --breaker-window N    rolling outcomes per tenant (default 32)\n"
      "  --breaker-min-samples N   outcomes before judgement (default 8)\n"
      "  --breaker-ratio X     open at this failure ratio (default 0.5)\n"
      "  --breaker-cooldown-ms X   wait before the probe (default 1000)\n"
      "  --metrics-out FILE    write a metrics snapshot at shutdown\n"
      "  --metrics-format F    openmetrics (default) or json\n"
      "  --metrics-interval-ms X   also rewrite --metrics-out every X ms\n"
      "                        while running (atomic tmp+rename)\n"
      "  --no-flight-recorder  disable request-trace retention\n"
      "  --trace-capacity N    flight-recorder ring size (default 128)\n"
      "  --trace-sample-every N    keep 1-in-N unremarkable requests\n"
      "\n"
      "stats/trace flags:\n"
      "  --host H --port N     daemon address (default 127.0.0.1:7421)\n"
      "  --watch               keep scraping until interrupted\n"
      "  --interval-ms X       scrape period with --watch (default 1000)\n"
      "  --max N               traces per dump batch (trace only; 0 = server cap)\n"
      "  --chrome-out FILE     also render drained spans as Chrome trace JSON\n"
      "\n"
      "plan/ping flags:\n"
      "  --host H --port N     daemon address (default 127.0.0.1:7421)\n"
      "  --model M             zoo model name (plan only; required)\n"
      "  --bandwidth X         uplink estimate, Mbps (default 10)\n"
      "  --strategy S          lo|co|po|jps|jps*|jps+ (default jps)\n"
      "  --jobs N              job count (default 4)\n"
      "  --tenant T            tenant id for admission control (default \"\")\n"
      "  --deadline-ms X       server-side deadline budget (plan only)\n"
      "  --timeout-ms X        client read timeout (0 = block forever)\n"
      "  --retries N           extra attempts on retryable failures\n"
      "\n"
      "selfcheck flags:\n"
      "  --clients N --requests N   concurrency and per-client request count\n"
      "  --chaos                    inject scripted transport faults and\n"
      "                             verify bit-identity + snapshot warm-start\n";
}

core::Strategy parse_strategy(const std::string& name) {
  const std::string s = util::to_lower(name);
  if (s == "lo") return core::Strategy::kLocalOnly;
  if (s == "co") return core::Strategy::kCloudOnly;
  if (s == "po") return core::Strategy::kPartitionOnly;
  if (s == "jps") return core::Strategy::kJPS;
  if (s == "jps*" || s == "jps-tuned") return core::Strategy::kJPSTuned;
  if (s == "jps+" || s == "jps-hull") return core::Strategy::kJPSHull;
  throw tools::UsageError("unknown servable strategy '" + name + "'");
}

serve::ServerOptions server_options(const tools::Args& args) {
  serve::ServerOptions options;
  options.workers = static_cast<std::size_t>(args.get_int("workers", 4));
  options.max_inflight =
      static_cast<std::size_t>(args.get_int("max-inflight", 8));
  options.bandwidth_bucket_mbps = args.get_double("bucket-mbps", 0.25);
  options.tenant_rate_per_sec = args.get_double("tenant-rate", 0.0);
  options.tenant_burst = args.get_double("tenant-burst", 16.0);
  options.cache_shards =
      static_cast<std::size_t>(args.get_int("cache-shards", 8));
  options.snapshot_path = args.get("snapshot", "");
  options.snapshot_interval_ms = args.get_double("snapshot-interval-ms", 0.0);
  options.breaker_enabled = !args.has("no-breaker");
  options.breaker.window =
      static_cast<std::size_t>(args.get_int("breaker-window", 32));
  options.breaker.min_samples =
      static_cast<std::size_t>(args.get_int("breaker-min-samples", 8));
  options.breaker.failure_ratio = args.get_double("breaker-ratio", 0.5);
  options.breaker.cooldown_ms = args.get_double("breaker-cooldown-ms", 1000.0);
  options.flight_recorder_enabled = !args.has("no-flight-recorder");
  options.flight_recorder_capacity =
      static_cast<std::size_t>(args.get_int("trace-capacity", 0));
  options.flight_recorder_sample_every =
      static_cast<std::uint64_t>(args.get_int("trace-sample-every", 0));
  if (options.bandwidth_bucket_mbps <= 0.0)
    throw tools::UsageError("--bucket-mbps must be > 0");
  return options;
}

void print_reply(const serve::PlanReply& reply) {
  std::cout << "status: " << serve::status_name(reply.status) << "\n";
  if (!reply.message.empty()) std::cout << "message: " << reply.message << "\n";
  if (!reply.has_plan()) return;
  std::cout << "bandwidth_bucket_mbps: " << reply.bandwidth_bucket_mbps << "\n"
            << "makespan_ms: " << reply.makespan_ms << "\n"
            << "coalesced: " << (reply.coalesced ? "yes" : "no") << "\n"
            << "cache_hit: " << (reply.cache_hit ? "yes" : "no") << "\n"
            << "stale: " << (reply.stale ? "yes" : "no") << "\n"
            << "mix:";
  for (const serve::CutMix& m : reply.mix)
    std::cout << " cut" << m.cut << "x" << m.count;
  std::cout << "\n";
}

// The daemon's listener, reachable from the signal handler.  Closing the
// listener is async-signal-safe (shutdown(2)/close(2) only) and unblocks
// the accept loop, which then drains the server.
serve::SocketListener* g_listener = nullptr;

extern "C" void handle_shutdown_signal(int) {
  if (g_listener != nullptr) g_listener->close();
}

int cmd_serve(const tools::Args& args) {
  serve::Server server(server_options(args));
  const int port = args.get_int("port", 7421);
  if (port < 0 || port > 65535) throw tools::UsageError("--port out of range");
  serve::SocketListener listener(static_cast<std::uint16_t>(port));
  g_listener = &listener;
  std::signal(SIGINT, handle_shutdown_signal);
  std::signal(SIGTERM, handle_shutdown_signal);

  std::cout << "jps_serve listening on 127.0.0.1:" << listener.port()
            << std::endl;

  // Periodic metrics writer (same fixed-deadline timer shape as the server's
  // snapshot thread).  Each write is atomic (tmp + rename), so a scraper
  // tailing the file never reads a torn snapshot.
  const double metrics_interval_ms = args.get_double("metrics-interval-ms", 0.0);
  const std::string metrics_path = args.get("metrics-out", "");
  const std::string metrics_format = args.get("metrics-format", "openmetrics");
  if (metrics_interval_ms > 0.0 && metrics_path.empty())
    throw tools::UsageError("--metrics-interval-ms requires --metrics-out");
  std::atomic<bool> metrics_stop{false};
  util::Mutex metrics_mutex("tool.metrics_timer");
  util::CondVar metrics_cv;
  std::thread metrics_thread;
  if (metrics_interval_ms > 0.0) {
    metrics_thread = std::thread([&] {
      const auto interval =
          std::chrono::duration<double, std::milli>(metrics_interval_ms);
      util::MutexLock lock(metrics_mutex);
      while (!metrics_stop.load(std::memory_order_acquire)) {
        const auto deadline = std::chrono::steady_clock::now() + interval;
        while (!metrics_stop.load(std::memory_order_acquire) &&
               metrics_cv.wait_until(lock, deadline) !=
                   std::cv_status::timeout) {
        }
        if (metrics_stop.load(std::memory_order_acquire)) break;
        lock.unlock();
        try {
          obs::write_metrics_file(metrics_path, metrics_format,
                                  obs::MetricsSnapshot::capture());
        } catch (const std::exception& e) {
          std::fprintf(stderr, "jps_serve: periodic metrics write failed: %s\n",
                       e.what());
        }
        lock.lock();
      }
    });
  }

  std::vector<std::thread> connections;
  while (auto stream = listener.accept()) {
    connections.emplace_back(
        [&server, s = std::shared_ptr<serve::ByteStream>(std::move(stream))] {
          server.handle_connection(*s);
        });
  }

  // Listener closed (signal): drain — half-close live connections, finish
  // admitted work, join connection threads.
  metrics_stop.store(true, std::memory_order_release);
  {
    util::MutexLock lock(metrics_mutex);
  }
  metrics_cv.notify_all();
  server.stop();
  for (std::thread& t : connections) t.join();
  if (metrics_thread.joinable()) metrics_thread.join();
  g_listener = nullptr;

  const serve::ServerStats stats = server.stats();
  std::cout << "drained: requests=" << stats.requests
            << " plans_computed=" << stats.plans_computed
            << " coalesce_hits=" << stats.coalesce_hits
            << " cache_hits=" << stats.cache_hits
            << " shed=" << stats.shed_total()
            << " protocol_errors=" << stats.protocol_errors
            << " deadline_exceeded=" << stats.deadline_exceeded
            << " stale_served=" << stats.stale_served
            << " breaker_opens=" << stats.breaker_opens
            << " warm_start_entries=" << stats.warm_start_entries
            << " snapshot_saves=" << stats.snapshot_saves << std::endl;

  if (args.has("metrics-out")) {
    obs::write_metrics_file(args.get("metrics-out", "metrics.txt"),
                            args.get("metrics-format", "openmetrics"),
                            obs::MetricsSnapshot::capture());
  }
  return 0;
}

serve::Client connect_client(const tools::Args& args) {
  const int port = args.get_int("port", 7421);
  if (port < 1 || port > 65535) throw tools::UsageError("--port out of range");
  const std::string host = args.get("host", "127.0.0.1");

  serve::ClientRetryOptions retry;
  retry.max_attempts = 1 + std::max(0, args.get_int("retries", 0));
  retry.read_timeout_ms = args.get_double("timeout-ms", 0.0);
  serve::StreamFactory factory;
  if (retry.max_attempts > 1) {
    factory = [host, port] {
      return serve::socket_connect(host, static_cast<std::uint16_t>(port));
    };
  }
  return serve::Client(
      serve::socket_connect(host, static_cast<std::uint16_t>(port)), retry,
      std::move(factory));
}

int cmd_plan(const tools::Args& args) {
  if (!args.has("model")) throw tools::UsageError("plan requires --model");
  serve::PlanRequest request;
  request.tenant = args.get("tenant", "");
  request.model = args.get("model", "");
  request.bandwidth_mbps = args.get_double("bandwidth", 10.0);
  request.strategy = parse_strategy(args.get("strategy", "jps"));
  request.n_jobs = args.get_int("jobs", 4);
  request.deadline_ms = args.get_double("deadline-ms", 0.0);
  serve::Client client = connect_client(args);
  const serve::PlanReply reply = client.plan(request);
  print_reply(reply);
  return reply.has_plan() ? 0 : 1;
}

int cmd_ping(const tools::Args& args) {
  serve::Client client = connect_client(args);
  if (client.ping()) {
    std::cout << "pong\n";
    return 0;
  }
  std::cout << "no reply\n";
  return 1;
}

int cmd_stats(const tools::Args& args) {
  const bool watch = args.has("watch");
  const double interval_ms = args.get_double("interval-ms", 1000.0);
  if (interval_ms <= 0.0) throw tools::UsageError("--interval-ms must be > 0");
  serve::Client client = connect_client(args);
  while (true) {
    const serve::StatsReply reply = client.scrape_stats();
    if (reply.status != serve::Status::kOk) {
      std::cerr << "jps_serve: stats scrape failed: "
                << serve::status_name(reply.status) << "\n";
      return 1;
    }
    std::cout << reply.json << std::endl;
    if (!watch) return 0;
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(interval_ms));
  }
}

// Convert drained flight-recorder traces to a Chrome trace-event file so a
// remote scrape renders in Perfetto without JPS_TRACE on the server.
void write_chrome_trace(
    const std::vector<obs::TraceRecord>& records,
    const std::map<std::uint64_t, std::string>& thread_names,
    const std::string& path) {
  obs::TraceWriter writer;
  writer.set_process_name(0, "jps_serve (flight recorder)");
  for (const auto& [index, name] : thread_names)
    writer.set_thread_name(0, index, name);
  std::vector<obs::SpanRecord> spans;
  for (const obs::TraceRecord& record : records)
    spans.insert(spans.end(), record.spans.begin(), record.spans.end());
  writer.add_spans(spans);
  writer.save(path);
  // stderr: stdout carries the machine-readable dump JSON.
  std::cerr << "chrome trace: " << path << " (" << spans.size() << " spans, "
            << records.size() << " traces)" << std::endl;
}

int cmd_trace(const tools::Args& args) {
  const bool watch = args.has("watch");
  const double interval_ms = args.get_double("interval-ms", 1000.0);
  if (interval_ms <= 0.0) throw tools::UsageError("--interval-ms must be > 0");
  const auto max = static_cast<std::uint32_t>(args.get_int("max", 0));
  const std::string chrome_out = args.get("chrome-out", "");
  serve::Client client = connect_client(args);
  std::vector<obs::TraceRecord> all;
  std::map<std::uint64_t, std::string> thread_names;
  while (true) {
    // One dump request per batch; keep draining while the server reports a
    // backlog so a single `jps_serve trace` empties the recorder.
    serve::TraceDumpReply reply = client.trace_dump(max);
    while (true) {
      if (reply.status != serve::Status::kOk) {
        std::cerr << "jps_serve: trace dump failed: "
                  << serve::status_name(reply.status) << "\n";
        return 1;
      }
      std::cout << reply.json << std::endl;
      if (!chrome_out.empty()) {
        const util::Json parsed = util::Json::parse(reply.json);
        const std::vector<obs::TraceRecord> batch =
            obs::flight_records_from_json(parsed);
        all.insert(all.end(), batch.begin(), batch.end());
        for (auto& [index, name] : obs::flight_thread_names_from_json(parsed))
          thread_names[index] = std::move(name);
      }
      if (max != 0 || reply.remaining == 0) break;
      reply = client.trace_dump(max);
    }
    if (!watch) break;
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(interval_ms));
  }
  if (!chrome_out.empty()) write_chrome_trace(all, thread_names, chrome_out);
  return 0;
}

// One verifiable request: the expected makespan comes from a direct Planner
// run on an identically built curve — the bit-identity contract the server
// guarantees for every successful reply, chaos or not.
struct Case {
  serve::PlanRequest request;
  double expected_makespan = 0.0;
};

std::vector<Case> build_cases(const serve::ServerOptions& options,
                              const std::string& tenant) {
  const std::vector<std::string> model_pool = {"alexnet", "vgg16", "nin"};
  const std::vector<double> bandwidth_pool = {2.0, 10.1, 40.0};
  std::vector<Case> cases;
  const profile::LatencyModel mobile(options.device);
  for (std::size_t i = 0; i < model_pool.size(); ++i) {
    Case c;
    c.request.tenant = tenant;
    c.request.model = model_pool[i];
    c.request.bandwidth_mbps = bandwidth_pool[i];
    c.request.strategy = core::Strategy::kJPS;
    c.request.n_jobs = 6;
    const double bucket = serve::quantize_bandwidth(
        c.request.bandwidth_mbps, options.bandwidth_bucket_mbps);
    const dnn::Graph graph = models::build(c.request.model);
    const auto curve = partition::ProfileCurve::build(graph, mobile,
                                                      net::Channel(bucket));
    c.expected_makespan =
        core::Planner(curve).plan(c.request.strategy, c.request.n_jobs)
            .predicted_makespan;
    cases.push_back(std::move(c));
  }
  return cases;
}

bool verify_reply(const Case& expect, const serve::PlanReply& reply,
                  const char* where) {
  if (reply.has_plan() && reply.makespan_ms == expect.expected_makespan)
    return true;
  std::fprintf(stderr,
               "selfcheck[%s]: %s mismatch (status %s, got %.17g, "
               "want %.17g)\n",
               where, expect.request.model.c_str(),
               serve::status_name(reply.status), reply.makespan_ms,
               expect.expected_makespan);
  return false;
}

// Chaos group A: every client's transport suffers scripted delays and
// 1-byte reads/writes.  Nothing is lost, so EVERY reply must verify.
int chaos_delay_short(serve::Server& server, const std::vector<Case>& cases,
                      int clients, int requests) {
  const fault::FaultSpec spec = fault::FaultSpec::parse(
      "jps-faults v1\n"
      "net_delay 0 32 0.2\n"
      "net_short 16 256\n"
      "net_delay 400 432 0.2\n"
      "net_short 512 4096\n");

  std::atomic<int> failures{0};
  std::vector<std::thread> server_threads;
  std::vector<std::thread> client_threads;
  for (int c = 0; c < clients; ++c) {
    serve::StreamPair pair = serve::make_in_process_pair();
    server_threads.emplace_back(
        [&server, s = std::shared_ptr<serve::ByteStream>(
                      std::move(pair.first))] { server.handle_connection(*s); });
    client_threads.emplace_back(
        [&cases, &failures, &spec, requests, c,
         stream = std::shared_ptr<serve::ByteStream>(std::move(pair.second))] {
          try {
            serve::Client client(std::make_unique<serve::FaultyByteStream>(
                std::make_unique<serve::BorrowedStream>(stream), spec));
            for (int r = 0; r < requests; ++r) {
              const Case& expect =
                  cases[static_cast<std::size_t>(c + r) % cases.size()];
              if (!verify_reply(expect, client.plan(expect.request), "chaos-a"))
                failures.fetch_add(1);
            }
            client.close();
          } catch (const std::exception& e) {
            std::fprintf(stderr, "selfcheck[chaos-a]: client error: %s\n",
                         e.what());
            failures.fetch_add(1);
          }
        });
  }
  for (std::thread& t : client_threads) t.join();
  for (std::thread& t : server_threads) t.join();
  return failures.load();
}

// Chaos group B: the connection dies mid-frame at a scripted byte offset —
// once while SENDING a request (the server sees a truncated frame), once a
// whole frame later (the second request dies instead).  The client's
// retry-with-reconnect must land every request, bit-identically.
int chaos_drop_retry(serve::Server& server, const std::vector<Case>& cases) {
  int failures = 0;
  std::vector<std::thread> server_threads;

  for (const std::uint64_t drop_at : {std::uint64_t{6}, std::uint64_t{48}}) {
    const fault::FaultSpec spec = fault::FaultSpec::parse(
        "jps-faults v1\n"
        "net_drop " + std::to_string(drop_at) + " 1000000000\n");
    int connection = 0;
    auto factory = [&server, &server_threads, &spec,
                    &connection]() -> std::unique_ptr<serve::ByteStream> {
      serve::StreamPair pair = serve::make_in_process_pair();
      server_threads.emplace_back(
          [&server, s = std::shared_ptr<serve::ByteStream>(std::move(
                        pair.first))] { server.handle_connection(*s); });
      std::unique_ptr<serve::ByteStream> end = std::move(pair.second);
      // Only the FIRST connection is faulty; reconnects get clean pipes
      // (the scripted outage has "ended").
      if (connection++ == 0)
        end = std::make_unique<serve::FaultyByteStream>(std::move(end), spec);
      return end;
    };

    serve::ClientRetryOptions retry;
    retry.max_attempts = 4;
    retry.backoff.backoff_base_ms = 1.0;
    retry.backoff.backoff_max_ms = 4.0;
    try {
      serve::Client client(factory(), retry, factory);
      for (int r = 0; r < 2; ++r) {
        const Case& expect = cases[static_cast<std::size_t>(r) % cases.size()];
        if (!verify_reply(expect, client.plan(expect.request), "chaos-b"))
          ++failures;
      }
      if (client.stats().reconnects == 0) {
        std::fprintf(stderr,
                     "selfcheck[chaos-b]: drop at byte %llu never fired\n",
                     static_cast<unsigned long long>(drop_at));
        ++failures;
      }
      client.close();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "selfcheck[chaos-b]: client error: %s\n", e.what());
      ++failures;
    }
  }
  for (std::thread& t : server_threads) t.join();
  return failures;
}

// Chaos group C: the SERVER's first received frame has one payload byte
// corrupted (the magic, at read offset 4 — after the length prefix, so the
// frame boundary holds).  The server must answer INVALID_ARGUMENT and keep
// the connection; every later frame is clean and must verify.
int chaos_corrupt(serve::Server& server, const std::vector<Case>& cases) {
  const fault::FaultSpec spec = fault::FaultSpec::parse(
      "jps-faults v1\n"
      "net_corrupt 4 5 255\n");

  int failures = 0;
  serve::StreamPair pair = serve::make_in_process_pair();
  std::thread server_thread(
      [&server, &spec,
       s = std::shared_ptr<serve::ByteStream>(std::move(pair.first))] {
        serve::FaultyByteStream faulty(
            std::make_unique<serve::BorrowedStream>(s), spec);
        server.handle_connection(faulty);
      });
  try {
    serve::Client client(std::move(pair.second));
    const serve::PlanReply poisoned = client.plan(cases[0].request);
    if (poisoned.status != serve::Status::kInvalidArgument) {
      std::fprintf(stderr,
                   "selfcheck[chaos-c]: corrupted frame answered %s, want "
                   "INVALID_ARGUMENT\n",
                   serve::status_name(poisoned.status));
      ++failures;
    }
    for (const Case& expect : cases)
      if (!verify_reply(expect, client.plan(expect.request), "chaos-c"))
        ++failures;
    client.close();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "selfcheck[chaos-c]: client error: %s\n", e.what());
    ++failures;
  }
  server_thread.join();
  return failures;
}

// Kill-and-restart: a server with a snapshot path is driven, drained (which
// saves), and REPLACED; the successor must warm-start from the snapshot and
// answer every request from cache without recomputing a single plan.
int chaos_warm_start(const serve::ServerOptions& base,
                     const std::vector<Case>& cases) {
  int failures = 0;
  const std::string snap_path =
      "/tmp/jps_serve_chaos_snapshot." + std::to_string(::getpid());
  serve::ServerOptions options = base;
  options.snapshot_path = snap_path;

  {
    serve::Server first(options);
    for (const Case& expect : cases)
      if (!verify_reply(expect, first.handle_plan(expect.request),
                        "warm-start/first"))
        ++failures;
    first.stop();  // drain writes the snapshot
  }
  {
    serve::Server second(options);
    const serve::ServerStats born = second.stats();
    if (born.warm_start_entries == 0) {
      std::fprintf(stderr,
                   "selfcheck[warm-start]: restart loaded 0 entries\n");
      ++failures;
    }
    for (const Case& expect : cases)
      if (!verify_reply(expect, second.handle_plan(expect.request),
                        "warm-start/second"))
        ++failures;
    const serve::ServerStats stats = second.stats();
    if (stats.plans_computed != 0 ||
        stats.cache_hits != cases.size()) {
      std::fprintf(stderr,
                   "selfcheck[warm-start]: expected all %zu replies from warm "
                   "cache, got plans_computed=%llu cache_hits=%llu\n",
                   cases.size(),
                   static_cast<unsigned long long>(stats.plans_computed),
                   static_cast<unsigned long long>(stats.cache_hits));
      ++failures;
    }
    second.stop();
    std::cout << "selfcheck[warm-start]: entries=" << born.warm_start_entries
              << " cache_hits=" << stats.cache_hits << "\n";
  }
  std::remove(snap_path.c_str());
  std::remove((snap_path + ".tmp").c_str());
  return failures;
}

// Live-introspection leg of selfcheck: against the already-loaded server,
// (1) two STATS scrapes bracketing a plan request must both parse and show
// monotonically increasing request counters, and (2) a TRACE_DUMP drain must
// yield structurally valid span trees whose root span accounts for >= 95% of
// each trace's measured wall time.
int selfcheck_introspect(serve::Server& server, const std::vector<Case>& cases) {
  int failures = 0;
  serve::StreamPair pair = serve::make_in_process_pair();
  std::thread server_thread(
      [&server, s = std::shared_ptr<serve::ByteStream>(std::move(pair.first))] {
        server.handle_connection(*s);
      });
  try {
    serve::Client client(std::move(pair.second));

    const auto counter_value = [](const util::Json& json, const char* name) {
      const util::Json* counters = json.get("counters");
      if (counters == nullptr) return 0.0;
      const util::Json* value = counters->get(name);
      return value == nullptr ? 0.0 : value->as_double();
    };

    const serve::StatsReply before = client.scrape_stats();
    const util::Json before_json = util::Json::parse(before.json);
    if (!client.plan(cases[0].request).has_plan()) {
      std::fprintf(stderr, "selfcheck[introspect]: plan between scrapes failed\n");
      ++failures;
    }
    const serve::StatsReply after = client.scrape_stats();
    const util::Json after_json = util::Json::parse(after.json);
    for (const char* name : {"serve.requests", "serve.stats_scrapes"}) {
      const double lo = counter_value(before_json, name);
      const double hi = counter_value(after_json, name);
      if (hi <= lo) {
        std::fprintf(stderr,
                     "selfcheck[introspect]: counter %s not monotonic "
                     "(%.0f -> %.0f)\n",
                     name, lo, hi);
        ++failures;
      }
    }

    std::size_t traces = 0;
    serve::TraceDumpReply dump = client.trace_dump();
    while (true) {
      const std::vector<obs::TraceRecord> batch =
          obs::flight_records_from_json(util::Json::parse(dump.json));
      for (const obs::TraceRecord& record : batch) {
        ++traces;
        const std::string verdict = obs::validate_trace(record);
        if (!verdict.empty()) {
          std::fprintf(stderr, "selfcheck[introspect]: invalid trace: %s\n",
                       verdict.c_str());
          ++failures;
          continue;
        }
        // The root "serve.request" span must decompose (cover) at least 95%
        // of the wall time finish() measured for the trace.  0.05 ms of
        // absolute slack absorbs the tracer's own fixed bookkeeping, which
        // would otherwise dominate sub-0.1 ms cache-hit traces.
        double root_dur = 0.0;
        for (const obs::SpanRecord& span : record.spans)
          if (span.parent_span_id == 0 || span.name == "serve.request")
            root_dur = std::max(root_dur, span.dur_ms);
        if (record.dur_ms > 0.0 && root_dur + 0.05 < 0.95 * record.dur_ms) {
          std::fprintf(stderr,
                       "selfcheck[introspect]: root span covers %.3f of "
                       "%.3f ms (< 95%%)\n",
                       root_dur, record.dur_ms);
          ++failures;
        }
      }
      if (dump.remaining == 0) break;
      dump = client.trace_dump();
    }
    if (traces == 0) {
      std::fprintf(stderr, "selfcheck[introspect]: flight recorder is empty\n");
      ++failures;
    }
    std::cout << "selfcheck[introspect]: traces=" << traces
              << " requests=" << counter_value(after_json, "serve.requests")
              << "\n";
    client.close();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "selfcheck[introspect]: %s\n", e.what());
    ++failures;
  }
  server_thread.join();
  return failures;
}

int cmd_selfcheck(const tools::Args& args) {
  const int clients = args.get_int("clients", 8);
  const int requests = args.get_int("requests", 16);
  if (clients < 1 || requests < 1)
    throw tools::UsageError("--clients and --requests must be >= 1");
  const bool chaos = args.has("chaos");

  serve::ServerOptions options = server_options(args);
  options.tenant_rate_per_sec = 0.0;  // selfcheck verifies replies, not sheds
  // Never shed in selfcheck: every reply must be verifiable.
  options.max_inflight = static_cast<std::size_t>(clients) + 8;
  // Retain every request's trace so the introspection leg has data.
  options.flight_recorder_sample_every = 1;
  serve::Server server(options);

  const std::vector<Case> cases = build_cases(options, "selfcheck");

  std::atomic<int> failures{0};
  std::vector<std::thread> server_threads;
  std::vector<std::thread> client_threads;
  for (int c = 0; c < clients; ++c) {
    serve::StreamPair pair = serve::make_in_process_pair();
    server_threads.emplace_back(
        [&server, s = std::shared_ptr<serve::ByteStream>(
                      std::move(pair.first))] { server.handle_connection(*s); });
    client_threads.emplace_back(
        [&cases, &failures, requests, c,
         stream = std::shared_ptr<serve::ByteStream>(std::move(pair.second))]() {
          try {
            serve::Client client(std::make_unique<serve::BorrowedStream>(stream));
            if (!client.ping()) throw std::runtime_error("ping failed");
            for (int r = 0; r < requests; ++r) {
              const Case& expect =
                  cases[static_cast<std::size_t>(c + r) % cases.size()];
              if (!verify_reply(expect, client.plan(expect.request), "base"))
                failures.fetch_add(1);
            }
            client.close();
          } catch (const std::exception& e) {
            std::fprintf(stderr, "selfcheck: client error: %s\n", e.what());
            failures.fetch_add(1);
          }
        });
  }
  for (std::thread& t : client_threads) t.join();
  for (std::thread& t : server_threads) t.join();

  failures.fetch_add(selfcheck_introspect(server, cases));

  if (chaos) {
    failures.fetch_add(chaos_delay_short(server, cases, clients, requests));
    failures.fetch_add(chaos_drop_retry(server, cases));
    failures.fetch_add(chaos_corrupt(server, cases));
    if (server.inflight() != 0) {
      std::fprintf(stderr, "selfcheck: %zu computations leaked in flight\n",
                   server.inflight());
      failures.fetch_add(1);
    }
  }
  server.stop();
  if (chaos) failures.fetch_add(chaos_warm_start(options, cases));

  const serve::ServerStats stats = server.stats();
  std::cout << "selfcheck: clients=" << clients << " requests="
            << stats.requests << " plans_computed=" << stats.plans_computed
            << " coalesce_hits=" << stats.coalesce_hits
            << " cache_hits=" << stats.cache_hits
            << " protocol_errors=" << stats.protocol_errors
            << " chaos=" << (chaos ? "on" : "off")
            << " failures=" << failures.load() << std::endl;
  return failures.load() == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const jps::tools::Args args(argc, argv);
  const std::string command = args.command();
  try {
    if (command == "serve") return cmd_serve(args);
    if (command == "plan") return cmd_plan(args);
    if (command == "ping") return cmd_ping(args);
    if (command == "stats") return cmd_stats(args);
    if (command == "trace") return cmd_trace(args);
    if (command == "selfcheck") return cmd_selfcheck(args);
    if (!command.empty())
      std::cerr << "jps_serve: unknown command '" << command << "'\n\n";
    usage();
    return jps::tools::kExitUsage;
  } catch (const jps::tools::UsageError& e) {
    std::cerr << "jps_serve: " << e.what() << "\n\n";
    usage();
    return jps::tools::kExitUsage;
  } catch (const std::exception& e) {
    std::cerr << "jps_serve: " << e.what() << "\n";
    return 1;
  }
}
