// jps_serve: the multi-tenant plan server daemon and its client commands.
//
//   jps_serve serve [--port N] [--workers N] [--max-inflight N]
//                   [--bucket-mbps X] [--tenant-rate X] [--tenant-burst X]
//                   [--metrics-out FILE] [--metrics-format openmetrics|json]
//       Run the daemon on 127.0.0.1:PORT (0 picks an ephemeral port, printed
//       on stdout).  SIGINT/SIGTERM drains: stop accepting, finish admitted
//       work, write metrics, exit 0.
//
//   jps_serve plan --model M [--bandwidth X] [--strategy S] [--jobs N]
//                  [--tenant T] [--host H] [--port N]
//       Send one plan request and print the reply.
//
//   jps_serve ping [--host H] [--port N]
//       Liveness probe; exit 0 when the server answers.
//
//   jps_serve selfcheck [--clients N] [--requests N]
//       In-process end-to-end check (no sockets): start a server, drive it
//       with concurrent clients over pipe transports, verify every reply
//       against a direct Planner run.  CI's smoke test.
//
// Exit codes: 0 success, 1 runtime failure, 64 usage error.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "args.h"
#include "core/planner.h"
#include "models/registry.h"
#include "net/channel.h"
#include "obs/metrics_export.h"
#include "partition/profile_curve.h"
#include "profile/latency_model.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/transport.h"
#include "util/strings.h"

namespace {

using namespace jps;

void usage() {
  std::cout <<
      "usage: jps_serve <command> [flags]\n"
      "\n"
      "commands:\n"
      "  serve       run the daemon on 127.0.0.1 (blocks until SIGINT/SIGTERM)\n"
      "  plan        request one plan from a running daemon\n"
      "  ping        probe a running daemon\n"
      "  selfcheck   in-process server + concurrent clients, no sockets\n"
      "\n"
      "serve flags:\n"
      "  --port N              listen port (default 7421; 0 = ephemeral)\n"
      "  --workers N           planner threads (default 4)\n"
      "  --max-inflight N      distinct computations in flight before\n"
      "                        shedding RESOURCE_EXHAUSTED (default 8)\n"
      "  --bucket-mbps X       bandwidth quantization step (default 0.25)\n"
      "  --tenant-rate X       per-tenant requests/sec (default 0 = unlimited)\n"
      "  --tenant-burst X      per-tenant burst allowance (default 16)\n"
      "  --cache-shards N      plan-cache lock stripes (default 8)\n"
      "  --metrics-out FILE    write a metrics snapshot at shutdown\n"
      "  --metrics-format F    openmetrics (default) or json\n"
      "\n"
      "plan/ping flags:\n"
      "  --host H --port N     daemon address (default 127.0.0.1:7421)\n"
      "  --model M             zoo model name (plan only; required)\n"
      "  --bandwidth X         uplink estimate, Mbps (default 10)\n"
      "  --strategy S          lo|co|po|jps|jps*|jps+ (default jps)\n"
      "  --jobs N              job count (default 4)\n"
      "  --tenant T            tenant id for admission control (default \"\")\n"
      "\n"
      "selfcheck flags:\n"
      "  --clients N --requests N   concurrency and per-client request count\n";
}

core::Strategy parse_strategy(const std::string& name) {
  const std::string s = util::to_lower(name);
  if (s == "lo") return core::Strategy::kLocalOnly;
  if (s == "co") return core::Strategy::kCloudOnly;
  if (s == "po") return core::Strategy::kPartitionOnly;
  if (s == "jps") return core::Strategy::kJPS;
  if (s == "jps*" || s == "jps-tuned") return core::Strategy::kJPSTuned;
  if (s == "jps+" || s == "jps-hull") return core::Strategy::kJPSHull;
  throw tools::UsageError("unknown servable strategy '" + name + "'");
}

serve::ServerOptions server_options(const tools::Args& args) {
  serve::ServerOptions options;
  options.workers = static_cast<std::size_t>(args.get_int("workers", 4));
  options.max_inflight =
      static_cast<std::size_t>(args.get_int("max-inflight", 8));
  options.bandwidth_bucket_mbps = args.get_double("bucket-mbps", 0.25);
  options.tenant_rate_per_sec = args.get_double("tenant-rate", 0.0);
  options.tenant_burst = args.get_double("tenant-burst", 16.0);
  options.cache_shards =
      static_cast<std::size_t>(args.get_int("cache-shards", 8));
  if (options.bandwidth_bucket_mbps <= 0.0)
    throw tools::UsageError("--bucket-mbps must be > 0");
  return options;
}

void print_reply(const serve::PlanReply& reply) {
  std::cout << "status: " << serve::status_name(reply.status) << "\n";
  if (!reply.message.empty()) std::cout << "message: " << reply.message << "\n";
  if (!reply.ok()) return;
  std::cout << "bandwidth_bucket_mbps: " << reply.bandwidth_bucket_mbps << "\n"
            << "makespan_ms: " << reply.makespan_ms << "\n"
            << "coalesced: " << (reply.coalesced ? "yes" : "no") << "\n"
            << "cache_hit: " << (reply.cache_hit ? "yes" : "no") << "\n"
            << "mix:";
  for (const serve::CutMix& m : reply.mix)
    std::cout << " cut" << m.cut << "x" << m.count;
  std::cout << "\n";
}

// The daemon's listener, reachable from the signal handler.  Closing the
// listener is async-signal-safe (shutdown(2)/close(2) only) and unblocks
// the accept loop, which then drains the server.
serve::SocketListener* g_listener = nullptr;

extern "C" void handle_shutdown_signal(int) {
  if (g_listener != nullptr) g_listener->close();
}

int cmd_serve(const tools::Args& args) {
  serve::Server server(server_options(args));
  const int port = args.get_int("port", 7421);
  if (port < 0 || port > 65535) throw tools::UsageError("--port out of range");
  serve::SocketListener listener(static_cast<std::uint16_t>(port));
  g_listener = &listener;
  std::signal(SIGINT, handle_shutdown_signal);
  std::signal(SIGTERM, handle_shutdown_signal);

  std::cout << "jps_serve listening on 127.0.0.1:" << listener.port()
            << std::endl;

  std::vector<std::thread> connections;
  while (auto stream = listener.accept()) {
    connections.emplace_back(
        [&server, s = std::shared_ptr<serve::ByteStream>(std::move(stream))] {
          server.handle_connection(*s);
        });
  }

  // Listener closed (signal): drain — half-close live connections, finish
  // admitted work, join connection threads.
  server.stop();
  for (std::thread& t : connections) t.join();
  g_listener = nullptr;

  const serve::ServerStats stats = server.stats();
  std::cout << "drained: requests=" << stats.requests
            << " plans_computed=" << stats.plans_computed
            << " coalesce_hits=" << stats.coalesce_hits
            << " cache_hits=" << stats.cache_hits
            << " shed=" << stats.shed_total()
            << " protocol_errors=" << stats.protocol_errors << std::endl;

  if (args.has("metrics-out")) {
    obs::write_metrics_file(args.get("metrics-out", "metrics.txt"),
                            args.get("metrics-format", "openmetrics"),
                            obs::MetricsSnapshot::capture());
  }
  return 0;
}

serve::Client connect_client(const tools::Args& args) {
  const int port = args.get_int("port", 7421);
  if (port < 1 || port > 65535) throw tools::UsageError("--port out of range");
  return serve::Client(serve::socket_connect(
      args.get("host", "127.0.0.1"), static_cast<std::uint16_t>(port)));
}

int cmd_plan(const tools::Args& args) {
  if (!args.has("model")) throw tools::UsageError("plan requires --model");
  serve::PlanRequest request;
  request.tenant = args.get("tenant", "");
  request.model = args.get("model", "");
  request.bandwidth_mbps = args.get_double("bandwidth", 10.0);
  request.strategy = parse_strategy(args.get("strategy", "jps"));
  request.n_jobs = args.get_int("jobs", 4);
  serve::Client client = connect_client(args);
  const serve::PlanReply reply = client.plan(request);
  print_reply(reply);
  return reply.ok() ? 0 : 1;
}

int cmd_ping(const tools::Args& args) {
  serve::Client client = connect_client(args);
  if (client.ping()) {
    std::cout << "pong\n";
    return 0;
  }
  std::cout << "no reply\n";
  return 1;
}

int cmd_selfcheck(const tools::Args& args) {
  const int clients = args.get_int("clients", 8);
  const int requests = args.get_int("requests", 16);
  if (clients < 1 || requests < 1)
    throw tools::UsageError("--clients and --requests must be >= 1");

  serve::ServerOptions options = server_options(args);
  options.tenant_rate_per_sec = 0.0;  // selfcheck verifies replies, not sheds
  // Never shed in selfcheck: every reply must be verifiable.
  options.max_inflight = static_cast<std::size_t>(clients) + 8;
  serve::Server server(options);

  // The request mix: a few distinct keys, hit repeatedly from every client
  // so coalescing and caching both engage.  Expected makespans come from a
  // direct Planner run on an identically built curve — the bit-identity
  // contract the server guarantees.
  struct Case {
    serve::PlanRequest request;
    double expected_makespan = 0.0;
  };
  const std::vector<std::string> model_pool = {"alexnet", "vgg16", "nin"};
  const std::vector<double> bandwidth_pool = {2.0, 10.1, 40.0};
  std::vector<Case> cases;
  const profile::LatencyModel mobile(options.device);
  for (std::size_t i = 0; i < model_pool.size(); ++i) {
    Case c;
    c.request.tenant = "selfcheck";
    c.request.model = model_pool[i];
    c.request.bandwidth_mbps = bandwidth_pool[i];
    c.request.strategy = core::Strategy::kJPS;
    c.request.n_jobs = 6;
    const double bucket = serve::quantize_bandwidth(
        c.request.bandwidth_mbps, options.bandwidth_bucket_mbps);
    const dnn::Graph graph = models::build(c.request.model);
    const auto curve = partition::ProfileCurve::build(graph, mobile,
                                                      net::Channel(bucket));
    c.expected_makespan =
        core::Planner(curve).plan(c.request.strategy, c.request.n_jobs)
            .predicted_makespan;
    cases.push_back(std::move(c));
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> server_threads;
  std::vector<std::thread> client_threads;
  for (int c = 0; c < clients; ++c) {
    serve::StreamPair pair = serve::make_in_process_pair();
    server_threads.emplace_back(
        [&server, s = std::shared_ptr<serve::ByteStream>(
                      std::move(pair.first))] { server.handle_connection(*s); });
    client_threads.emplace_back(
        [&cases, &failures, requests, c,
         stream = std::shared_ptr<serve::ByteStream>(std::move(pair.second))]() {
          try {
            struct Borrowed final : serve::ByteStream {
              explicit Borrowed(std::shared_ptr<serve::ByteStream> inner)
                  : inner_(std::move(inner)) {}
              std::size_t read(char* out, std::size_t max) override {
                return inner_->read(out, max);
              }
              void write(const char* data, std::size_t size) override {
                inner_->write(data, size);
              }
              void shutdown_read() override { inner_->shutdown_read(); }
              void close() override { inner_->close(); }
              std::shared_ptr<serve::ByteStream> inner_;
            };
            serve::Client client(std::make_unique<Borrowed>(stream));
            if (!client.ping()) throw std::runtime_error("ping failed");
            for (int r = 0; r < requests; ++r) {
              const Case& expect =
                  cases[static_cast<std::size_t>(c + r) % cases.size()];
              const serve::PlanReply reply = client.plan(expect.request);
              if (!reply.ok() ||
                  reply.makespan_ms != expect.expected_makespan) {
                std::fprintf(stderr,
                             "selfcheck: %s mismatch (status %s, got %.17g, "
                             "want %.17g)\n",
                             expect.request.model.c_str(),
                             serve::status_name(reply.status),
                             reply.makespan_ms, expect.expected_makespan);
                failures.fetch_add(1);
              }
            }
            client.close();
          } catch (const std::exception& e) {
            std::fprintf(stderr, "selfcheck: client error: %s\n", e.what());
            failures.fetch_add(1);
          }
        });
  }
  for (std::thread& t : client_threads) t.join();
  for (std::thread& t : server_threads) t.join();
  server.stop();

  const serve::ServerStats stats = server.stats();
  std::cout << "selfcheck: clients=" << clients << " requests="
            << stats.requests << " plans_computed=" << stats.plans_computed
            << " coalesce_hits=" << stats.coalesce_hits
            << " cache_hits=" << stats.cache_hits
            << " failures=" << failures.load() << std::endl;
  return failures.load() == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const jps::tools::Args args(argc, argv);
  const std::string command = args.command();
  try {
    if (command == "serve") return cmd_serve(args);
    if (command == "plan") return cmd_plan(args);
    if (command == "ping") return cmd_ping(args);
    if (command == "selfcheck") return cmd_selfcheck(args);
    if (!command.empty())
      std::cerr << "jps_serve: unknown command '" << command << "'\n\n";
    usage();
    return jps::tools::kExitUsage;
  } catch (const jps::tools::UsageError& e) {
    std::cerr << "jps_serve: " << e.what() << "\n\n";
    usage();
    return jps::tools::kExitUsage;
  } catch (const std::exception& e) {
    std::cerr << "jps_serve: " << e.what() << "\n";
    return 1;
  }
}
