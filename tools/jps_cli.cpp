// jps_cli — command-line front end to the library.
//
//   jps_cli models
//   jps_cli profile --model alexnet --output table.tsv [--trials 15]
//                   [--noise 0.05] [--seed 1]
//   jps_cli curve   --model alexnet --bandwidth 5.85 [--table table.tsv]
//   jps_cli plan    --model alexnet --bandwidth 5.85 --jobs 100
//                   [--strategy jps|jps+|jps*|lo|co|po|bf|robust]
//                   [--table table.tsv] [--simulate] [--gantt]
//                   [--robust --bw-lo L --bw-hi H [--cvar]]
//                   [--faults faults.txt [--retry-budget N] [--replan]]
//   jps_cli sweep   --model alexnet --jobs 50 [--min 1] [--max 80] [--points 20]
//   jps_cli faultgen --output faults.txt [--horizon 2000] [--outages 1]
//   jps_cli dot     --model googlenet
//
// Global flags (any command):
//   --trace-out=FILE   write a Chrome trace (about:tracing / Perfetto) of
//                      the instrumentation spans and, for plan/replay with
//                      a simulation, the simulated timeline
//   --metrics          dump runtime counters and plan-cache stats on exit
#include <algorithm>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "args.h"
#include "check/lint_fault.h"
#include "check/lint_plan.h"
#include "jps.h"
#include "obs/metrics_export.h"
#include "obs/obs.h"
#include "obs/trace_writer.h"
#include "util/strings.h"

namespace {

using namespace jps;

// Simulator captured by plan/replay for the --trace-out timeline (pid 1).
std::optional<sim::EventSimulator> g_sim_capture;

core::Strategy parse_strategy(const std::string& name) {
  const std::string s = util::to_lower(name);
  if (s == "lo") return core::Strategy::kLocalOnly;
  if (s == "co") return core::Strategy::kCloudOnly;
  if (s == "po") return core::Strategy::kPartitionOnly;
  if (s == "jps") return core::Strategy::kJPS;
  if (s == "jps*" || s == "jps-tuned") return core::Strategy::kJPSTuned;
  if (s == "jps+" || s == "jps-hull") return core::Strategy::kJPSHull;
  if (s == "bf") return core::Strategy::kBruteForce;
  if (s == "rob" || s == "robust") return core::Strategy::kRobust;
  throw tools::UsageError("unknown strategy '" + name + "'");
}

// Mobile-time source: an on-disk lookup table when provided, else the
// analytic model.
partition::ProfileCurve make_curve(const dnn::Graph& graph,
                                   const net::Channel& channel,
                                   const std::optional<std::string>& table_path,
                                   const profile::LatencyModel& mobile) {
  if (table_path) {
    const profile::LookupTable table = profile::LookupTable::load(*table_path);
    if (!table.covers(graph)) {
      throw std::runtime_error("lookup table does not cover model '" +
                               graph.name() + "'; run `jps_cli profile` first");
    }
    return partition::ProfileCurve::build(graph, table, channel);
  }
  return partition::ProfileCurve::build(graph, mobile, channel);
}

int cmd_models() {
  util::Table table({"name", "layers", "paths", "GFLOPs", "params (M)",
                     "structure"});
  for (const auto& name : models::all_names()) {
    const dnn::Graph g = models::build(name);
    table.add_row({name, std::to_string(g.size()),
                   std::to_string(g.path_count()),
                   util::format_fixed(g.total_flops() / 1e9, 2),
                   util::format_fixed(static_cast<double>(g.total_params()) / 1e6, 2),
                   g.is_line() ? "line" : "general"});
  }
  std::cout << table;
  return 0;
}

int cmd_profile(const tools::Args& args) {
  const std::string model = args.get("model", "alexnet");
  const std::string output = args.get("output", "jps_lookup.tsv");
  profile::ProfilerOptions options;
  options.trials = args.get_int("trials", 15);
  options.noise_sigma = args.get_double("noise", 0.05);
  const profile::Profiler profiler(profile::DeviceProfile::raspberry_pi_4b(),
                                   options);
  util::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));

  const dnn::Graph g = models::build(model);
  profile::LookupTable table;
  table.add_graph(g, profiler.measure_graph(g, rng));
  table.save(output);
  std::cout << "profiled " << g.size() << " layers of " << model << " ("
            << options.trials << " trials each, sigma "
            << options.noise_sigma << ") -> " << output << "\n";
  return 0;
}

int cmd_curve(const tools::Args& args) {
  const std::string model = args.get("model", "alexnet");
  const net::Channel channel(args.get_double("bandwidth", 5.85));
  const profile::LatencyModel mobile(profile::DeviceProfile::raspberry_pi_4b());
  const dnn::Graph g = models::build(model);
  const std::optional<std::string> table_path =
      args.has("table") ? std::optional(args.get("table", "")) : std::nullopt;
  const auto curve = make_curve(g, channel, table_path, mobile);

  util::Table table({"cut", "f (ms)", "g (ms)", "offload", "label"});
  for (std::size_t i = 0; i < curve.size(); ++i) {
    table.add_row({std::to_string(i), util::format_ms(curve.f(i)),
                   util::format_ms(curve.g(i)),
                   util::format_bytes(curve.cut(i).offload_bytes),
                   curve.cut(i).label});
  }
  std::cout << table;
  const auto decision = partition::binary_search_cut(curve);
  std::cout << "Alg. 2: l* = " << decision.l_star
            << (decision.l_minus
                    ? ", l*-1 = " + std::to_string(*decision.l_minus) +
                          ", ratio = " + std::to_string(decision.ratio)
                    : std::string(" (no communication-heavy type)"))
            << "\n";
  return 0;
}

int cmd_plan(const tools::Args& args) {
  const std::string model = args.get("model", "alexnet");
  const net::Channel channel(args.get_double("bandwidth", 5.85));
  const int jobs = args.get_int("jobs", 100);
  core::Strategy strategy = parse_strategy(args.get("strategy", "jps"));
  if (args.has("robust")) strategy = core::Strategy::kRobust;
  const profile::LatencyModel mobile(profile::DeviceProfile::raspberry_pi_4b());
  const dnn::Graph g = models::build(model);
  const std::optional<std::string> table_path =
      args.has("table") ? std::optional(args.get("table", "")) : std::nullopt;
  const auto curve = make_curve(g, channel, table_path, mobile);

  core::ExecutionPlan plan;
  if (strategy == core::Strategy::kRobust) {
    const core::BandwidthInterval interval{
        args.get_double("bw-lo", channel.bandwidth_mbps() * 0.5),
        args.get_double("bw-hi", channel.bandwidth_mbps() * 1.5)};
    core::RobustPlannerOptions robust_options;
    robust_options.samples = args.get_int("bw-samples", 33);
    robust_options.cvar_alpha = args.get_double("cvar-alpha", 0.9);
    robust_options.objective = args.has("cvar")
                                   ? core::RobustObjective::kCVaR
                                   : core::RobustObjective::kWorstCase;
    const core::RobustPlanner robust(curve, channel, interval, robust_options);
    const core::RobustDecision decision = robust.decide(jobs);
    plan = robust.plan(jobs);
    std::cout << "robust decision over [" << interval.lo_mbps << ", "
              << interval.hi_mbps << "] Mbps ("
              << (args.has("cvar") ? "CVaR" : "worst-case") << "): "
              << decision.n_a << " jobs @ cut " << decision.cut_a << ", "
              << jobs - decision.n_a << " @ cut " << decision.cut_b
              << "; worst-case " << util::format_ms(decision.worst_case_ms)
              << " ms, CVaR " << util::format_ms(decision.cvar_ms)
              << " ms, nominal " << util::format_ms(decision.nominal_ms)
              << " ms\n";
  } else {
    plan = core::Planner(curve).plan(strategy, jobs);
  }
  std::cout << core::strategy_name(strategy) << " plan for " << jobs << " x "
            << model << " @ " << channel.bandwidth_mbps() << " Mbps\n"
            << "  predicted makespan: "
            << util::format_ms(plan.predicted_makespan) << " ms ("
            << util::format_ms(plan.makespan_per_job()) << " ms/job)\n"
            << "  decision overhead:  "
            << util::format_ms(plan.decision_overhead_ms) << " ms\n";
  std::map<std::size_t, int> mix;
  for (const auto& job : plan.jobs) ++mix[job.cut_index];
  std::cout << "  cut mix:";
  for (const auto& [cut, count] : mix)
    std::cout << "  " << count << " jobs @ cut " << cut << " ("
              << curve.cut(cut).label << ")";
  std::cout << "\n";

  // --trace-out implies a simulation: the traced timeline IS the simulation.
  if (args.has("simulate") || args.has("gantt") || args.has("trace-out") ||
      args.has("faults")) {
    const profile::LatencyModel cloud(profile::DeviceProfile::cloud_gtx1080());
    util::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));
    sim::EventSimulator capture;
    sim::SimResult result;
    if (args.has("faults")) {
      // Fault-aware execution: scripted timeline, retry/backoff, local
      // fallback, optional drift-triggered replanning.
      const fault::FaultSpec spec =
          fault::FaultSpec::load(args.get("faults", "faults.txt"));
      const fault::FaultTimeline timeline(spec, channel);
      fault::FaultExecOptions fault_options;
      fault_options.retry.budget = args.get_int("retry-budget", 3);
      fault_options.replan.enabled = args.has("replan");
      fault_options.replan.admission_window = args.get_int("window", 2);
      fault_options.replan.drift_threshold =
          args.get_double("drift-threshold", 0.25);
      fault::ReplanFn replan;
      if (fault_options.replan.enabled) {
        // Replanning needs a point strategy; a robust plan re-cuts with the
        // exact-split sweep at the estimated rate.
        const core::Strategy replan_strategy =
            strategy == core::Strategy::kRobust ? core::Strategy::kJPSTuned
                                                : strategy;
        replan = fault::make_replan_hook(curve, channel, replan_strategy);
      }
      const fault::FaultSimResult fault_result =
          fault::simulate_plan_under_faults(g, curve, plan, mobile, cloud,
                                            timeline, fault_options, rng,
                                            &capture, replan);
      result = fault_result.sim;
      const fault::FaultStats& stats = fault_result.stats;
      std::cout << "  faults: " << stats.perturbed_transfers
                << " perturbed transfers, " << stats.transfer_failures
                << " failures, " << stats.retries << " retries ("
                << util::format_ms(stats.backoff_ms) << " ms backoff), "
                << stats.fallbacks << " local fallbacks, " << stats.replans
                << " replans, " << stats.throttled_stages
                << " throttled stages\n";
    } else {
      result = sim::simulate_plan(g, curve, plan, mobile, cloud, channel, {},
                                  rng, &capture);
    }
    g_sim_capture = std::move(capture);
    std::cout << "  simulated makespan: " << util::format_ms(result.makespan)
              << " ms (mobile " << util::format_pct(result.mobile_utilization)
              << ", link " << util::format_pct(result.link_utilization)
              << ", cloud " << util::format_pct(result.cloud_utilization)
              << " busy)\n";
    if (args.has("gantt")) std::cout << sim::ascii_gantt(result, 100);
  }
  // --lint: verify the plan against the rule packs (including the curve it
  // was planned over) BEFORE it can be saved — a plan this gate rejects
  // would also be rejected by `jps_lint` and by deserialize_plan.
  if (args.has("lint")) {
    check::PlanLintContext context;
    context.curve = &curve;
    check::DiagnosticList diagnostics;
    check::lint_plan(plan, diagnostics, context);
    if (diagnostics.empty()) {
      std::cout << "  lint: OK\n";
    } else {
      std::cout << diagnostics.to_text("  lint");
      if (diagnostics.has_errors()) return 1;
    }
  }
  if (args.has("save")) {
    const std::string path = args.get("save", "plan.txt");
    core::save_plan(plan, path);
    std::cout << "  plan saved to " << path << "\n";
  }
  return 0;
}

int cmd_replay(const tools::Args& args) {
  const core::ExecutionPlan plan = core::load_plan(args.get("plan", "plan.txt"));
  std::cout << "replaying " << core::strategy_name(plan.strategy)
            << " plan for " << plan.jobs.size() << " x " << plan.model
            << " (recorded makespan "
            << util::format_ms(plan.predicted_makespan) << " ms)\n";
  const net::Channel channel(args.get_double("bandwidth", 5.85));
  const profile::LatencyModel mobile(profile::DeviceProfile::raspberry_pi_4b());
  const profile::LatencyModel cloud(profile::DeviceProfile::cloud_gtx1080());
  const dnn::Graph g = models::build(plan.model);
  const auto curve = partition::ProfileCurve::build(g, mobile, channel);
  util::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));
  sim::EventSimulator capture;
  const sim::SimResult result = sim::simulate_plan(
      g, curve, plan, mobile, cloud, channel, {}, rng, &capture);
  g_sim_capture = std::move(capture);
  std::cout << "simulated makespan at " << channel.bandwidth_mbps()
            << " Mbps: " << util::format_ms(result.makespan) << " ms\n"
            << sim::ascii_gantt(result, 100);
  return 0;
}

int cmd_hetero(const tools::Args& args) {
  // --classes model:count[,model:count...]
  const std::string spec = args.get("classes", "resnet18:4,mobilenet_v2:8");
  const net::Channel channel(args.get_double("bandwidth", 5.85));
  const profile::LatencyModel mobile(profile::DeviceProfile::raspberry_pi_4b());

  std::vector<core::JobClass> classes;
  std::vector<dnn::Graph> graphs;  // keep the graphs alive past curve build
  for (const std::string& entry : util::split(spec, ',')) {
    const auto parts = util::split(entry, ':');
    if (parts.size() != 2)
      throw tools::UsageError("--classes: expected model:count, got '" +
                              entry + "'");
    const std::optional<std::int64_t> count = util::parse_int(parts[1]);
    if (!count || *count < 1)
      throw tools::UsageError("--classes: expected a positive count in '" +
                              entry + "'");
    graphs.push_back(models::build(parts[0]));
    classes.push_back({parts[0],
                       partition::ProfileCurve::build(graphs.back(), mobile,
                                                      channel),
                       static_cast<int>(*count)});
  }

  util::Table table({"strategy", "makespan (ms)", "ms/job"});
  int total_jobs = 0;
  for (const auto& jc : classes) total_jobs += jc.count;
  for (const core::Strategy s :
       {core::Strategy::kLocalOnly, core::Strategy::kCloudOnly,
        core::Strategy::kPartitionOnly, core::Strategy::kJPS}) {
    const core::HeteroPlan plan = core::plan_hetero(classes, s);
    table.add_row({core::strategy_name(s), util::format_ms(plan.makespan),
                   util::format_ms(plan.makespan / total_jobs)});
  }
  std::cout << "mixed workload: " << spec << " @ "
            << channel.bandwidth_mbps() << " Mbps\n"
            << table;

  const core::HeteroPlan jps = core::plan_hetero(classes, core::Strategy::kJPS);
  std::cout << "JPS order [class:cut]:";
  for (const auto& unit : jps.scheduled)
    std::cout << ' '
              << classes[static_cast<std::size_t>(unit.class_index)].name
              << ':' << unit.cut_index;
  std::cout << "\n";
  return 0;
}

int cmd_sweep(const tools::Args& args) {
  const std::string model = args.get("model", "alexnet");
  const int jobs = args.get_int("jobs", 50);
  const double lo_bw = args.get_double("min", 1.0);
  const double hi_bw = args.get_double("max", 80.0);
  const int points = args.get_int("points", 20);
  const profile::LatencyModel mobile(profile::DeviceProfile::raspberry_pi_4b());
  const dnn::Graph g = models::build(model);

  util::Table table({"Mbps", "LO", "CO", "PO", "JPS", "winner"});
  core::PlanCache& cache = core::PlanCache::global();
  const std::string device = profile::DeviceProfile::raspberry_pi_4b().name;
  for (int p = 0; p < points; ++p) {
    const double mbps =
        lo_bw + (hi_bw - lo_bw) * p / std::max(1, points - 1);
    const auto curve = cache.curve({model, device, mbps}, [&] {
      return partition::ProfileCurve::build(g, mobile, net::Channel(mbps));
    });
    double best = 1e300;
    const char* winner = "";
    std::vector<std::string> row{util::format_fixed(mbps, 1)};
    for (const core::Strategy s :
         {core::Strategy::kLocalOnly, core::Strategy::kCloudOnly,
          core::Strategy::kPartitionOnly, core::Strategy::kJPS}) {
      const auto plan = cache.plan({model, device, mbps, s, jobs}, [&] {
        return core::Planner(*curve).plan(s, jobs);
      });
      const double ms = plan->predicted_makespan / jobs;
      row.push_back(util::format_ms(ms));
      if (ms < best) {
        best = ms;
        winner = core::strategy_name(s);
      }
    }
    row.push_back(winner);
    table.add_row(row);
  }
  std::cout << table;
  const core::PlanCache::Stats stats = cache.stats();
  std::cout << "plan cache: " << stats.hits() << " hits / "
            << stats.misses() << " misses this run (repeat points are free)\n";
  return 0;
}

int cmd_faultgen(const tools::Args& args) {
  fault::RandomFaultOptions options;
  options.horizon_ms = args.get_double("horizon", 2000.0);
  options.base_mbps = args.get_double("bandwidth", 5.85);
  options.drift_segments = args.get_int("drifts", 2);
  options.outages = args.get_int("outages", 1);
  options.cloud_slow_windows = args.get_int("cloud-slow", 0);
  options.mobile_throttle_windows = args.get_int("mobile-throttle", 0);
  util::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));
  const fault::FaultSpec spec = fault::FaultSpec::random(options, rng);
  // Generated specs are always linted before they reach disk; a rejected
  // spec here would indicate a generator bug, so nothing is written.
  check::DiagnosticList diagnostics;
  check::lint_fault_spec(spec, diagnostics);
  if (diagnostics.has_errors()) {
    std::cerr << diagnostics.to_text("faultgen");
    return 1;
  }
  const std::string output = args.get("output", "faults.txt");
  spec.save(output);
  std::cout << "wrote " << spec.events.size() << " fault events over "
            << util::format_ms(options.horizon_ms) << " ms to " << output
            << "\n";
  return 0;
}

int cmd_dot(const tools::Args& args) {
  const dnn::Graph g = models::build(args.get("model", "alexnet"));
  std::cout << dnn::to_dot(g);
  return 0;
}

// --metrics: one unified dump of the plan-cache statistics and every obs
// instrument touched during this invocation (counters, gauges, and the tail
// of each histogram).
void print_metrics() {
  const core::PlanCache::Stats stats = core::PlanCache::global().stats();
  std::cout << "metrics:\n"
            << "  plan_cache: " << stats.curve_hits << "/"
            << stats.curve_misses << " curve hits/misses, "
            << stats.plan_hits << "/" << stats.plan_misses
            << " plan hits/misses (" << util::format_pct(stats.hit_rate())
            << " hit rate)\n";
  const obs::MetricsSnapshot snapshot = obs::MetricsSnapshot::capture();
  for (const auto& [name, value] : snapshot.counters)
    std::cout << "  " << name << " = " << value << "\n";
  for (const auto& [name, value] : snapshot.gauges)
    std::cout << "  " << name << " = " << value << "\n";
  for (const auto& [name, hist] : snapshot.histograms) {
    if (hist.count == 0) continue;
    std::cout << "  " << name << ": n=" << hist.count << " mean="
              << util::format_ms(hist.mean()) << " p50="
              << util::format_ms(hist.percentile(50.0)) << " p95="
              << util::format_ms(hist.percentile(95.0)) << " p99="
              << util::format_ms(hist.percentile(99.0)) << " max="
              << util::format_ms(hist.max) << "\n";
  }
}

// --trace-out=FILE: Chrome trace with pid 0 = instrumentation spans (one
// track per recording thread) and pid 1 = the captured simulated timeline
// (one track per resource).
void write_trace(const std::string& path) {
  obs::TraceWriter writer;
  writer.set_process_name(0, "jps instrumentation");
  const std::vector<obs::SpanRecord> spans = obs::Registry::global().spans();
  std::set<std::uint64_t> threads;
  for (const obs::SpanRecord& span : spans) threads.insert(span.thread);
  // Registered names (pool-worker-N, serve-conn-N) beat the numeric default.
  std::map<std::uint64_t, std::string> names;
  for (const auto& [t, name] : obs::Registry::global().thread_names())
    names[t] = name;
  for (const std::uint64_t t : threads) {
    const auto it = names.find(t);
    writer.set_thread_name(
        0, t, it != names.end() ? it->second : "thread " + std::to_string(t));
  }
  writer.add_spans(spans, 0);
  writer.add_counter_snapshot(obs::Registry::global().counters(), 0);
  if (g_sim_capture) sim::append_chrome_trace(*g_sim_capture, writer, 1);
  writer.save(path);
  std::cout << "trace written to " << path << " (" << spans.size()
            << " spans"
            << (g_sim_capture
                    ? ", " + std::to_string(g_sim_capture->task_count()) +
                          " simulated tasks"
                    : std::string())
            << "); open in about:tracing or https://ui.perfetto.dev\n";
}

void usage() {
  std::cout <<
      "jps_cli — joint DNN partition & scheduling (Duan & Wu, ICPP 2021)\n"
      "commands:\n"
      "  models                              list the model zoo\n"
      "  profile --model M --output F        profiling campaign -> lookup table\n"
      "  curve   --model M --bandwidth B     print the (f, g) cut curve\n"
      "  plan    --model M --bandwidth B --jobs N [--strategy jps] [--gantt]\n"
      "          [--lint] [--save plan.txt]\n"
      "          [--robust --bw-lo L --bw-hi H [--bw-samples 33] [--cvar]]\n"
      "          [--faults FILE [--retry-budget 3] [--replan] [--window 2]]\n"
      "  replay  --plan plan.txt [--bandwidth B]   re-execute a saved plan\n"
      "  hetero  --classes m1:n1,m2:n2 --bandwidth B   mixed workload plan\n"
      "  sweep   --model M --jobs N [--min 1 --max 80 --points 20]\n"
      "  faultgen --output faults.txt [--horizon 2000] [--drifts 2]\n"
      "          [--outages 1] [--cloud-slow 0] [--mobile-throttle 0]\n"
      "          [--bandwidth 5.85] [--seed 1]   random fault timeline\n"
      "  dot     --model M                   Graphviz export\n"
      "global flags:\n"
      "  --trace-out=FILE  Chrome trace (spans + simulated timeline) for\n"
      "                    about:tracing / Perfetto\n"
      "  --metrics         dump counters, gauges, histogram tails, and\n"
      "                    plan-cache stats\n"
      "  --metrics-out=FILE      write a metrics snapshot on exit\n"
      "  --metrics-format=FMT    openmetrics (default) or json\n"
      "environment:\n"
      "  JPS_THREADS=N   size of the shared worker pool (default: all cores)\n"
      "  JPS_TRACE=1     record instrumentation spans (implied by --trace-out)\n"
      "  JPS_LOG=LEVEL   log threshold: debug, info, warn, or error\n";
}

}  // namespace

int main(int argc, char** argv) {
  const jps::tools::Args args(argc, argv);
  // Span recording must be on before any instrumented code runs.
  if (args.has("trace-out")) jps::obs::set_enabled(true);
  try {
    const std::string command = args.command();
    int status = 0;
    if (command == "models") status = cmd_models();
    else if (command == "profile") status = cmd_profile(args);
    else if (command == "curve") status = cmd_curve(args);
    else if (command == "plan") status = cmd_plan(args);
    else if (command == "replay") status = cmd_replay(args);
    else if (command == "hetero") status = cmd_hetero(args);
    else if (command == "sweep") status = cmd_sweep(args);
    else if (command == "faultgen") status = cmd_faultgen(args);
    else if (command == "dot") status = cmd_dot(args);
    else {
      usage();
      return command.empty() ? 0 : 1;
    }
    if (args.has("metrics")) print_metrics();
    if (args.has("metrics-out")) {
      const std::string path = args.get("metrics-out", "metrics.txt");
      const std::string format = args.get("metrics-format", "openmetrics");
      jps::obs::write_metrics_file(path, format,
                                   jps::obs::MetricsSnapshot::capture());
      std::cout << "metrics written to " << path << " (" << format << ")\n";
    }
    if (args.has("trace-out")) write_trace(args.get("trace-out", "trace.json"));
    return status;
  } catch (const jps::tools::UsageError& e) {
    // Malformed flag values (--jobs many, --bandwidth 5,85) are usage
    // errors: exit 64 with a pointer at the usage text, never an uncaught
    // parse exception.
    std::cerr << "error: " << e.what() << "\n"
              << "run `jps_cli` with no arguments for usage\n";
    return jps::tools::kExitUsage;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
