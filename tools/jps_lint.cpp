// jps_lint: offline static verifier for jps artifacts.
//
// Usage:
//   jps_lint [options] <artifact>...          lint plan/fault-spec files
//   jps_lint --model <name> [--model ...]     lint zoo models (graph + curve)
//   jps_lint --all-models                     lint every model in the zoo
//
// Options:
//   --format=text|json   output format (default text)
//   --out <path>         also write the report to a file (any format)
//   --bandwidth <mbps>   cross-check plans against the model's profile
//                        curve at this uplink rate (enables X002/X003 and
//                        the exact P001 bound)
//   --no-models          skip model resolution (offline mode: no X001)
//   --tolerance <rel>    relative tolerance for latency comparisons
//   --quiet              suppress per-file OK lines
//
// Exit codes: 0 clean, 1 errors found, 2 warnings only, 64 usage/IO error.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "args.h"
#include "check/lint_artifact.h"
#include "models/registry.h"

namespace {

constexpr int kExitClean = 0;
constexpr int kExitErrors = 1;
constexpr int kExitWarnings = 2;
constexpr int kExitUsage = 64;

void print_usage() {
  std::cout <<
      "usage: jps_lint [options] <artifact>...\n"
      "       jps_lint --model <name> | --all-models\n"
      "\n"
      "Statically verifies jps text artifacts (plans, fault specs) and zoo\n"
      "models against the shared rule packs. See docs/STATIC_ANALYSIS.md\n"
      "for the diagnostic code tables.\n"
      "\n"
      "options:\n"
      "  --format=text|json   report format (default text)\n"
      "  --out <path>         also write the report to <path>\n"
      "  --bandwidth <mbps>   cross-check plans against the model's curve\n"
      "  --no-models          do not resolve model names (disables X001)\n"
      "  --tolerance <rel>    relative tolerance for comparisons (1e-6)\n"
      "  --quiet              suppress per-file OK lines\n"
      "exit codes: 0 clean, 1 errors, 2 warnings only, 64 usage error\n";
}

std::string text_report(const std::vector<jps::check::FileReport>& reports,
                        bool quiet) {
  std::string out;
  for (const auto& [file, diagnostics] : reports) {
    if (diagnostics.all().empty()) {
      if (!quiet) out += file + ": OK\n";
      continue;
    }
    for (const jps::check::Diagnostic& d : diagnostics.all()) {
      out += file + ": " + jps::check::to_string(d) + "\n";
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using jps::check::DiagnosticList;
  using jps::check::FileReport;

  const jps::tools::Args args(argc, argv);
  if (args.has("help") || args.has("h")) {
    print_usage();
    return kExitClean;
  }

  jps::check::LintOptions options;
  options.resolve_models = !args.has("no-models");
  options.tolerance = args.get_double("tolerance", options.tolerance);
  if (args.has("bandwidth")) {
    const double mbps = args.get_double("bandwidth", 0.0);
    if (mbps <= 0.0) {
      std::cerr << "jps_lint: --bandwidth must be positive\n";
      return kExitUsage;
    }
    options.bandwidth_mbps = mbps;
  }
  const std::string format = args.get("format", "text");
  if (format != "text" && format != "json") {
    std::cerr << "jps_lint: unknown --format '" << format << "'\n";
    return kExitUsage;
  }

  // Collect inputs: positional artifact paths and/or model names.
  std::vector<std::string> models;
  if (args.has("all-models")) {
    models = jps::models::all_names();
  } else if (args.has("model")) {
    models.push_back(args.get("model", ""));
  }
  // Bare switches (--quiet, --no-models, ...) must not swallow the artifact
  // path that follows them, so only these flags consume a value token.
  const std::vector<std::string> value_flags = {"format", "out", "bandwidth",
                                                "tolerance", "model"};
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      const std::string key = token.substr(2);
      const bool takes_value =
          key.find('=') == std::string::npos &&
          std::find(value_flags.begin(), value_flags.end(), key) !=
              value_flags.end();
      if (takes_value && i + 1 < argc) ++i;
      continue;
    }
    files.push_back(token);
  }
  if (files.empty() && models.empty()) {
    print_usage();
    return kExitUsage;
  }

  std::vector<FileReport> reports;
  reports.reserve(files.size() + models.size());
  for (const std::string& file : files) {
    DiagnosticList diagnostics;
    jps::check::lint_artifact_file(file, options, diagnostics);
    reports.emplace_back(file, std::move(diagnostics));
  }
  for (const std::string& model : models) {
    DiagnosticList diagnostics;
    jps::check::lint_model(model, options, diagnostics);
    reports.emplace_back("model:" + model, std::move(diagnostics));
  }

  std::size_t errors = 0;
  std::size_t warnings = 0;
  for (const auto& [file, diagnostics] : reports) {
    errors += diagnostics.error_count();
    warnings += diagnostics.warning_count();
  }

  const bool quiet = args.has("quiet");
  const std::string report = format == "json"
                                 ? jps::check::lint_report_json(reports)
                                 : text_report(reports, quiet);
  std::cout << report;
  if (format == "text" && !quiet) {
    std::cout << reports.size() << " input(s): " << errors << " error(s), "
              << warnings << " warning(s)\n";
  }

  if (args.has("out")) {
    const std::string path = args.get("out", "");
    std::ofstream out(path);
    out << report;
    if (!out) {
      std::cerr << "jps_lint: cannot write " << path << "\n";
      return kExitUsage;
    }
  }

  if (errors > 0) return kExitErrors;
  if (warnings > 0) return kExitWarnings;
  return kExitClean;
}
