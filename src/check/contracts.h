// Lightweight design-by-contract macros for the library internals.
//
//   JPS_REQUIRE(cond, msg)    — precondition at function entry
//   JPS_ENSURE(cond, msg)     — postcondition before returning
//   JPS_INVARIANT(cond, msg)  — internal consistency mid-function
//
// On violation each throws check::ContractViolation (a std::logic_error)
// carrying the kind, the failed expression, file:line and the message.
// Contracts guard *programming* errors — caller-supplied data is validated
// by the rule packs (lint_*.h), which report every problem instead of the
// first and stay on in every build.
//
// Release toggle: configure with -DJPS_CONTRACTS=OFF (which defines
// JPS_NO_CONTRACTS) and all three macros compile to a no-op that still
// odr-uses nothing and evaluates nothing.  Never put side effects in a
// contract condition.
#pragma once

#include <stdexcept>
#include <string>

namespace jps::check {

class ContractViolation : public std::logic_error {
 public:
  ContractViolation(const char* kind, const char* expression, const char* file,
                    long line, const std::string& message)
      : std::logic_error(std::string(kind) + " violated: (" + expression +
                         ") at " + file + ":" + std::to_string(line) + ": " +
                         message),
        kind_(kind) {}

  /// "precondition", "postcondition" or "invariant".
  [[nodiscard]] const char* kind() const { return kind_; }

 private:
  const char* kind_;
};

}  // namespace jps::check

#ifdef JPS_NO_CONTRACTS

#define JPS_REQUIRE(cond, msg) ((void)0)
#define JPS_ENSURE(cond, msg) ((void)0)
#define JPS_INVARIANT(cond, msg) ((void)0)

#else

#define JPS_CONTRACT_IMPL_(kind, cond, msg)                              \
  do {                                                                   \
    if (!(cond))                                                         \
      throw ::jps::check::ContractViolation(kind, #cond, __FILE__,       \
                                            __LINE__, (msg));            \
  } while (false)

#define JPS_REQUIRE(cond, msg) JPS_CONTRACT_IMPL_("precondition", cond, msg)
#define JPS_ENSURE(cond, msg) JPS_CONTRACT_IMPL_("postcondition", cond, msg)
#define JPS_INVARIANT(cond, msg) JPS_CONTRACT_IMPL_("invariant", cond, msg)

#endif  // JPS_NO_CONTRACTS
