// Plan rule pack (P codes) — parse-level and semantic admission rules for
// "jps-plan v1" artifacts, plus the cross-artifact plan-vs-curve rules
// (X002/X003).  core::deserialize_plan routes through both packs, so a plan
// that loads at runtime and a plan that passes `jps_lint` are the same set.
//
// Semantic rules (in-memory ExecutionPlan):
//   P001  cut index out of range for the model/curve bound
//   P002  non-finite or negative stage latency
//   P003  comm_heavy_count exceeds the job count
//   P004  scheduled order is not makespan-optimal (violates Johnson's rule)
//   P005  recorded makespan does not reproduce the closed-form flow-shop
//         identity of the recorded order
//   P006  duplicate job ids
//   P007  jobs[] and scheduled_jobs[] disagree (size or per-job id/cut)
//   P008  (warning) order or S1 split deviates from the canonical Johnson
//         tie-break without changing the makespan
//
// Parse rules (text artifact):
//   P010  bad or missing header / unknown version string
//   P011  malformed line (bad field, bad number, trailing fields)
//   P012  unknown strategy name
//   P013  unknown key
//   P014  duplicate scalar key
//   P015  incomplete plan (missing model/strategy or no jobs)
//
// Cross-artifact rules (with a resolved ProfileCurve):
//   X002  plan f latencies disagree with the curve at the claimed cut
//   X003  (warning) plan g latencies disagree with the curve at the claimed
//         cut (g depends on the channel, so this fires only against the
//         bandwidth the caller chose to check)
#pragma once

#include <optional>

#include "check/diagnostics.h"
#include "core/plan.h"
#include "partition/profile_curve.h"

namespace jps::check {

/// Optional context that unlocks the bound and cross-artifact rules.
struct PlanLintContext {
  /// Exclusive upper bound on cut indices (e.g. graph size + 1 when only
  /// the model is known, or curve->size() when a curve is resolved).
  std::optional<std::size_t> cut_bound;
  /// Curve the plan claims to be planned against; enables X002/X003 and
  /// tightens P001 to the exact curve size.
  const partition::ProfileCurve* curve = nullptr;
  /// Relative tolerance for latency and makespan comparisons.
  double tolerance = 1e-6;
};

/// Run the semantic rules over an in-memory plan.
void lint_plan(const core::ExecutionPlan& plan, DiagnosticList& out,
               const PlanLintContext& context = {});

/// Parse the "jps-plan v1" text format, reporting P010-P015 instead of
/// throwing.  Returns the plan when the text was structurally recoverable
/// (diagnostics may still hold errors); nullopt when nothing useful could
/// be extracted.  Does NOT run the semantic rules.
[[nodiscard]] std::optional<core::ExecutionPlan> parse_plan_text(
    const std::string& text, DiagnosticList& out);

}  // namespace jps::check
