// Artifact-level lint driver shared by tools/jps_lint, `jps_cli plan
// --lint` / `jps_cli faultgen`, and the corpus golden test — so the CLI
// gate, the dogfooding paths and the tests all run exactly the same rules.
//
// An artifact's kind is sniffed from its header line ("jps-plan v1",
// "jps-faults v1"); plan artifacts additionally get the cross-artifact
// rules:
//   X001  plan references a model that is not in the zoo
//   L001  file unreadable / artifact kind unrecognized
// plus P001/X002/X003 against the model's profile curve when the caller
// supplies the bandwidth to check at (the plan format does not record the
// channel, so the curve cross-check is opt-in).
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "check/diagnostics.h"

namespace jps::check {

enum class ArtifactKind { kPlan, kFaultSpec, kUnknown };

/// "plan", "faults" or "unknown".
[[nodiscard]] const char* artifact_kind_name(ArtifactKind kind);

struct LintOptions {
  /// Resolve plan model names against the zoo: unlocks X001 and the
  /// graph-derived cut bound for P001.
  bool resolve_models = true;
  /// Build the model's profile curve at this uplink rate and cross-check
  /// the plan against it (exact P001 bound, X002/X003).
  std::optional<double> bandwidth_mbps;
  /// Relative tolerance for latency/makespan comparisons.
  double tolerance = 1e-6;
};

/// Identify an artifact by its header line only.
[[nodiscard]] ArtifactKind sniff_artifact(const std::string& text);

/// Lint artifact text of any supported kind, appending findings to `out`.
ArtifactKind lint_artifact_text(const std::string& text,
                                const LintOptions& options,
                                DiagnosticList& out);

/// Load `path` (L001 on failure) and lint its contents.
ArtifactKind lint_artifact_file(const std::string& path,
                                const LintOptions& options,
                                DiagnosticList& out);

/// Lint a zoo model: graph rules over its DAG, curve rules over its profile
/// curve at options.bandwidth_mbps (4G preset rate when unset).
void lint_model(const std::string& name, const LintOptions& options,
                DiagnosticList& out);

/// One lint run's findings for one input (a file path or a model name).
using FileReport = std::pair<std::string, DiagnosticList>;

/// Machine-readable report for CI (--format=json).
[[nodiscard]] std::string lint_report_json(
    const std::vector<FileReport>& reports);

}  // namespace jps::check
