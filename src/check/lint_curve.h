// Profile-curve rule pack (C codes): the §3.2 monotonicity invariants every
// planner in this repo relies on.
//
//   C001  fewer than two candidate cuts
//   C002  non-finite or negative f/g value
//   C003  f not non-decreasing across cut indices
//   C004  g not non-increasing across cut indices
//   C005  endpoints wrong: cut 0 must be cloud-only (f = 0) and the last cut
//         local-only (g = 0)
//
// A clustered curve (CurveOptions::cluster, the default) satisfies all of
// these by construction; the pack exists so jps_lint can vet curves built
// from profiled lookup tables or synthetic candidates before they reach a
// planner, and so ablation configurations fail loudly instead of silently
// breaking Alg. 2's binary search.
#pragma once

#include "check/diagnostics.h"
#include "partition/profile_curve.h"

namespace jps::check {

void lint_curve(const partition::ProfileCurve& curve, DiagnosticList& out);

}  // namespace jps::check
