// Graph rule pack (G codes): structural admission checks for DNN DAGs.
//
//   G001  empty graph
//   G002  input-node count != 1
//   G003  node 0 is not the input, or an input node has predecessors
//   G004  non-input node without predecessors (disconnected head)
//   G005  sink count != 1
//   G006  shape inference failed at a node
//   G007  (warning) node on no source->sink path (dead node)
//
// dnn::Graph::infer() routes its admission checks through
// lint_graph_structure, so the offline verifier and the runtime can never
// disagree about what a well-formed graph is.  Acyclicity is structural for
// graphs built through Graph::add (edges only point to earlier nodes) and is
// therefore not a separate rule.
#pragma once

#include "check/diagnostics.h"
#include "dnn/graph.h"

namespace jps::check {

/// Run the structural rules (G001-G005, G007) over `graph`.
void lint_graph_structure(const dnn::Graph& graph, DiagnosticList& out);

/// Structural rules plus per-node shape inference (G006).  Inference runs on
/// a throwaway copy of the layer shapes, so `graph` is not mutated and need
/// not have infer() run.
void lint_graph(const dnn::Graph& graph, DiagnosticList& out);

}  // namespace jps::check
