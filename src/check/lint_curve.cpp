#include "check/lint_curve.h"

#include <cmath>
#include <string>

namespace jps::check {

namespace {

std::string cut_loc(std::size_t i) { return "cut " + std::to_string(i); }

bool finite_nonneg(double v) { return std::isfinite(v) && v >= 0.0; }

}  // namespace

void lint_curve(const partition::ProfileCurve& curve, DiagnosticList& out) {
  if (curve.size() < 2) {
    out.error("C001", {},
              "curve has " + std::to_string(curve.size()) +
                  " cut(s); need at least cloud-only and local-only");
    return;
  }
  bool values_ok = true;
  for (std::size_t i = 0; i < curve.size(); ++i) {
    if (!finite_nonneg(curve.f(i)) || !finite_nonneg(curve.g(i))) {
      out.error("C002", cut_loc(i),
                "non-finite or negative stage time (f=" +
                    std::to_string(curve.f(i)) + ", g=" +
                    std::to_string(curve.g(i)) + ")");
      values_ok = false;
    }
  }
  if (!values_ok) return;  // order checks on garbage values just cascade
  for (std::size_t i = 1; i < curve.size(); ++i) {
    if (curve.f(i) < curve.f(i - 1))
      out.error("C003", cut_loc(i),
                "f decreases from " + std::to_string(curve.f(i - 1)) +
                    " to " + std::to_string(curve.f(i)) +
                    "; candidates must be sorted by non-decreasing f");
    if (curve.g(i) > curve.g(i - 1))
      out.error("C004", cut_loc(i),
                "g increases from " + std::to_string(curve.g(i - 1)) +
                    " to " + std::to_string(curve.g(i)) +
                    "; the clustered profile curve must be non-increasing");
  }
  if (curve.f(0) != 0.0)
    out.error("C005", cut_loc(0),
              "first cut must be cloud-only (f = 0), got f = " +
                  std::to_string(curve.f(0)));
  if (curve.g(curve.size() - 1) != 0.0)
    out.error("C005", cut_loc(curve.size() - 1),
              "last cut must be local-only (g = 0), got g = " +
                  std::to_string(curve.g(curve.size() - 1)));
}

}  // namespace jps::check
