// Diagnostic collection for the static-analysis layer.
//
// Every rule pack in src/check/ reports violations through a DiagnosticList
// instead of throwing on the first problem: a lint run over a broken
// artifact surfaces ALL violations, each tagged with a stable error code
// (P001, G005, F003, ... — the full table lives in docs/STATIC_ANALYSIS.md)
// so tests and CI match on codes, not message wording.
//
// The runtime parsers (core::deserialize_plan, fault::FaultSpec::parse,
// dnn::Graph::infer) route their validation through the same packs and
// convert an error-bearing list into a ParseError / ValidationError, which
// still derive from the exception types callers historically caught
// (std::runtime_error / std::invalid_argument) but additionally carry the
// diagnostics and the first error code.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

namespace jps::check {

enum class Severity {
  kWarning,  // suspicious but admissible; jps_lint exits 2
  kError,    // invariant violation; artifact must be rejected; exits 1
};

/// "warning" / "error".
[[nodiscard]] const char* severity_name(Severity severity);

/// One finding of one rule.
struct Diagnostic {
  Severity severity = Severity::kError;
  /// Stable rule code ("P001", "G005", ...); see docs/STATIC_ANALYSIS.md.
  std::string code;
  /// Where the finding is anchored: a 1-based line for text artifacts, a
  /// node/job/cut index rendered as "job 3" / "node 7", or empty.
  std::string location;
  std::string message;

  friend bool operator==(const Diagnostic&, const Diagnostic&) = default;
};

/// Render one diagnostic as "error[P001] job 3: message".
[[nodiscard]] std::string to_string(const Diagnostic& diagnostic);

/// Accumulates findings across rule packs.
class DiagnosticList {
 public:
  void add(Severity severity, std::string code, std::string location,
           std::string message);
  void error(std::string code, std::string location, std::string message);
  void warning(std::string code, std::string location, std::string message);

  [[nodiscard]] const std::vector<Diagnostic>& all() const { return items_; }
  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] std::size_t error_count() const;
  [[nodiscard]] std::size_t warning_count() const;
  [[nodiscard]] bool has_errors() const { return error_count() > 0; }

  /// True when some diagnostic carries `code`.
  [[nodiscard]] bool has_code(const std::string& code) const;

  /// Code of the first error ("" when error-free) — what ParseError and
  /// ValidationError report as their code().
  [[nodiscard]] std::string first_error_code() const;

  /// One line per diagnostic, each prefixed by `context` when non-empty.
  [[nodiscard]] std::string to_text(const std::string& context = {}) const;

  /// Append another list's findings.
  void merge(const DiagnosticList& other);

 private:
  std::vector<Diagnostic> items_;
};

/// A text artifact failed parsing or post-parse lint.  Derives
/// std::runtime_error, the type core::deserialize_plan and
/// fault::FaultSpec::parse have always thrown.
class ParseError : public std::runtime_error {
 public:
  ParseError(std::string context, DiagnosticList diagnostics);

  /// Stable code of the first error (e.g. "P010").
  [[nodiscard]] const std::string& code() const { return code_; }
  [[nodiscard]] const DiagnosticList& diagnostics() const {
    return diagnostics_;
  }

 private:
  std::string code_;
  DiagnosticList diagnostics_;
};

/// An in-memory artifact violates its invariants.  Derives
/// std::invalid_argument, the type dnn::Graph::infer and fault::FaultTimeline
/// have always thrown.
class ValidationError : public std::invalid_argument {
 public:
  ValidationError(std::string context, DiagnosticList diagnostics);

  [[nodiscard]] const std::string& code() const { return code_; }
  [[nodiscard]] const DiagnosticList& diagnostics() const {
    return diagnostics_;
  }

 private:
  std::string code_;
  DiagnosticList diagnostics_;
};

/// Throw ParseError when `diagnostics` holds at least one error.
void throw_parse_error_if_any(const DiagnosticList& diagnostics,
                              const std::string& context);

/// Throw ValidationError when `diagnostics` holds at least one error.
void throw_validation_error_if_any(const DiagnosticList& diagnostics,
                                   const std::string& context);

}  // namespace jps::check
