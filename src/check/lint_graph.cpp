#include "check/lint_graph.h"

#include <string>
#include <vector>

namespace jps::check {

namespace {

std::string node_loc(dnn::NodeId id) {
  return "node " + std::to_string(id);
}

// G007: a node is dead when no source->sink path passes through it.  With
// G002-G005 clean this cannot happen for append-only graphs, but lint also
// sees graphs whose other rules already fired, so compute reachability
// explicitly in both directions.
void lint_dead_nodes(const dnn::Graph& graph, DiagnosticList& out) {
  const std::size_t n = graph.size();
  if (n == 0) return;
  std::vector<char> from_source(n, 0);
  std::vector<char> to_sink(n, 0);
  // Insertion order is topological: one forward and one backward pass.
  for (dnn::NodeId id = 0; id < n; ++id) {
    if (graph.predecessors(id).empty()) {
      from_source[id] = graph.layer(id).kind() == dnn::LayerKind::kInput;
      continue;
    }
    for (const dnn::NodeId p : graph.predecessors(id)) {
      if (from_source[p]) from_source[id] = 1;
    }
  }
  for (dnn::NodeId id = n; id-- > 0;) {
    if (graph.successors(id).empty()) {
      to_sink[id] = 1;
      continue;
    }
    for (const dnn::NodeId s : graph.successors(id)) {
      if (to_sink[s]) to_sink[id] = 1;
    }
  }
  // When the graph has several sinks G005 already fired; only the LAST
  // pred-less/succ-less nodes are the canonical source/sink, but for the
  // dead-node warning any input/sink anchoring keeps the signal useful.
  for (dnn::NodeId id = 0; id < n; ++id) {
    if (!from_source[id] || !to_sink[id]) {
      out.warning("G007", node_loc(id),
                  "dead node '" + graph.label(id) +
                      "': on no source->sink path");
    }
  }
}

}  // namespace

void lint_graph_structure(const dnn::Graph& graph, DiagnosticList& out) {
  if (graph.size() == 0) {
    out.error("G001", {}, "graph is empty");
    return;
  }
  std::size_t input_nodes = 0;
  std::size_t sinks = 0;
  for (dnn::NodeId id = 0; id < graph.size(); ++id) {
    const bool is_input = graph.layer(id).kind() == dnn::LayerKind::kInput;
    if (is_input) {
      ++input_nodes;
      if (!graph.predecessors(id).empty())
        out.error("G003", node_loc(id), "input node has predecessors");
    } else if (graph.predecessors(id).empty()) {
      out.error("G004", node_loc(id),
                "non-input node '" + graph.label(id) +
                    "' has no predecessors");
    }
    if (graph.successors(id).empty()) ++sinks;
  }
  if (input_nodes != 1)
    out.error("G002", {},
              "need exactly one input node, found " +
                  std::to_string(input_nodes));
  if (graph.layer(0).kind() != dnn::LayerKind::kInput)
    out.error("G003", node_loc(0), "node 0 must be the input node");
  if (sinks != 1)
    out.error("G005", {},
              "need exactly one sink node, found " + std::to_string(sinks));
  lint_dead_nodes(graph, out);
}

void lint_graph(const dnn::Graph& graph, DiagnosticList& out) {
  lint_graph_structure(graph, out);
  if (out.has_errors()) return;  // shapes are meaningless on a broken DAG
  // Re-run shape propagation without mutating the graph (G006).  The same
  // Layer::infer calls Graph::infer makes, so lint and runtime agree.
  std::vector<dnn::TensorShape> shapes(graph.size());
  for (dnn::NodeId id = 0; id < graph.size(); ++id) {
    std::vector<dnn::TensorShape> in_shapes;
    in_shapes.reserve(graph.predecessors(id).size());
    for (const dnn::NodeId p : graph.predecessors(id))
      in_shapes.push_back(shapes[p]);
    try {
      shapes[id] = graph.layer(id).infer(in_shapes);
    } catch (const std::exception& e) {
      out.error("G006", node_loc(id),
                "shape inference failed at '" + graph.label(id) +
                    "': " + e.what());
      return;  // downstream shapes are unknowable
    }
  }
}

}  // namespace jps::check
