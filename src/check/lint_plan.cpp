#include "check/lint_plan.h"

#include <cmath>
#include <set>
#include <sstream>
#include <string>

#include "sched/johnson.h"
#include "sched/makespan.h"
#include "util/strings.h"

namespace jps::check {

namespace {

constexpr const char* kHeader = "jps-plan v1";
constexpr const char* kHeaderPrefix = "jps-plan";

std::string job_loc(std::size_t i) { return "job " + std::to_string(i); }

std::string line_loc(std::size_t line_no) {
  return "line " + std::to_string(line_no);
}

bool close(double a, double b, double tolerance) {
  return std::abs(a - b) <=
         tolerance * std::max({1.0, std::abs(a), std::abs(b)});
}

std::optional<core::Strategy> strategy_from_name(const std::string& name) {
  for (const core::Strategy s :
       {core::Strategy::kLocalOnly, core::Strategy::kCloudOnly,
        core::Strategy::kPartitionOnly, core::Strategy::kJPS,
        core::Strategy::kJPSTuned, core::Strategy::kJPSHull,
        core::Strategy::kBruteForce, core::Strategy::kRobust}) {
    if (name == core::strategy_name(s)) return s;
  }
  return std::nullopt;
}

// P007: the two per-job arrays must tell the same story before any rule can
// reason about "the job at position i".
bool lint_consistency(const core::ExecutionPlan& plan, DiagnosticList& out) {
  if (plan.jobs.size() != plan.scheduled_jobs.size()) {
    out.error("P007", {},
              "jobs[] has " + std::to_string(plan.jobs.size()) +
                  " entries but scheduled_jobs[] has " +
                  std::to_string(plan.scheduled_jobs.size()));
    return false;
  }
  bool ok = true;
  for (std::size_t i = 0; i < plan.jobs.size(); ++i) {
    const bool id_match = plan.jobs[i].job_id == plan.scheduled_jobs[i].id;
    const bool cut_match =
        plan.scheduled_jobs[i].cut < 0 ||
        static_cast<std::size_t>(plan.scheduled_jobs[i].cut) ==
            plan.jobs[i].cut_index;
    if (!id_match || !cut_match) {
      out.error("P007", job_loc(i),
                "jobs[] and scheduled_jobs[] disagree on job id or cut");
      ok = false;
    }
  }
  return ok;
}

void lint_against_curve(const core::ExecutionPlan& plan,
                        const partition::ProfileCurve& curve,
                        double tolerance, DiagnosticList& out) {
  for (std::size_t i = 0; i < plan.jobs.size(); ++i) {
    const std::size_t cut = plan.jobs[i].cut_index;
    if (cut >= curve.size()) continue;  // P001 already reported
    const sched::Job& job = plan.scheduled_jobs[i];
    if (!close(job.f, curve.f(cut), tolerance))
      out.error("X002", job_loc(i),
                "f = " + std::to_string(job.f) + " ms but the curve has f = " +
                    std::to_string(curve.f(cut)) + " ms at cut " +
                    std::to_string(cut));
    if (!close(job.g, curve.g(cut), tolerance))
      out.warning("X003", job_loc(i),
                  "g = " + std::to_string(job.g) +
                      " ms but the curve has g = " +
                      std::to_string(curve.g(cut)) + " ms at cut " +
                      std::to_string(cut) +
                      " (bandwidth mismatch with the checked channel?)");
  }
}

}  // namespace

void lint_plan(const core::ExecutionPlan& plan, DiagnosticList& out,
               const PlanLintContext& context) {
  if (plan.jobs.empty()) {
    out.error("P015", {}, "plan schedules no jobs");
    return;
  }
  if (!lint_consistency(plan, out)) return;

  bool latencies_ok = true;
  for (std::size_t i = 0; i < plan.scheduled_jobs.size(); ++i) {
    const sched::Job& job = plan.scheduled_jobs[i];
    const auto bad = [](double v) { return !std::isfinite(v) || v < 0.0; };
    if (bad(job.f) || bad(job.g) || bad(job.cloud)) {
      out.error("P002", job_loc(i),
                "stage latencies must be finite and non-negative (f=" +
                    std::to_string(job.f) + ", g=" + std::to_string(job.g) +
                    ", cloud=" + std::to_string(job.cloud) + ")");
      latencies_ok = false;
    }
  }

  std::size_t cut_bound = context.cut_bound.value_or(0);
  if (context.curve != nullptr) cut_bound = context.curve->size();
  if (cut_bound > 0) {
    for (std::size_t i = 0; i < plan.jobs.size(); ++i) {
      if (plan.jobs[i].cut_index >= cut_bound)
        out.error("P001", job_loc(i),
                  "cut index " + std::to_string(plan.jobs[i].cut_index) +
                      " out of range; model has " + std::to_string(cut_bound) +
                      " candidate cuts");
    }
  }

  if (plan.comm_heavy_count > plan.jobs.size())
    out.error("P003", {},
              "comm_heavy_count " + std::to_string(plan.comm_heavy_count) +
                  " exceeds the " + std::to_string(plan.jobs.size()) +
                  "-job schedule");

  std::set<int> seen_ids;
  for (std::size_t i = 0; i < plan.jobs.size(); ++i) {
    if (!seen_ids.insert(plan.jobs[i].job_id).second)
      out.error("P006", job_loc(i),
                "duplicate job id " + std::to_string(plan.jobs[i].job_id));
  }

  if (!latencies_ok) return;  // order/makespan math needs sane numbers

  // P005: the recorded makespan must reproduce the closed-form flow-shop
  // identity of the recorded order (the §4 endpoint identity).
  const double identity = sched::closed_form_makespan(plan.scheduled_jobs);
  if (!close(plan.predicted_makespan, identity, context.tolerance))
    out.error("P005", {},
              "recorded makespan " + std::to_string(plan.predicted_makespan) +
                  " ms does not reproduce the closed-form identity " +
                  std::to_string(identity) + " ms of the recorded order");

  // P004/P008: the offloaded set must be in Johnson order.  Makespan is the
  // ground truth (Johnson minimizes it); pure tie permutations and S1-split
  // label drift that leave the makespan unchanged only warn.
  const sched::JohnsonSchedule canonical =
      sched::johnson_order(plan.scheduled_jobs);
  const sched::JobList reordered =
      sched::apply_order(plan.scheduled_jobs, canonical.order);
  const double best = sched::closed_form_makespan(reordered);
  if (identity > best &&
      !close(identity, best, context.tolerance)) {
    out.error("P004", {},
              "scheduled order has makespan " + std::to_string(identity) +
                  " ms but Johnson order achieves " + std::to_string(best) +
                  " ms; offloaded jobs must follow Johnson's rule");
  } else {
    bool same_sequence = canonical.comm_heavy_count == plan.comm_heavy_count;
    for (std::size_t i = 0; same_sequence && i < canonical.order.size(); ++i)
      same_sequence = canonical.order[i] == i;
    if (!same_sequence)
      out.warning("P008", {},
                  "order or S1 split deviates from the canonical Johnson "
                  "tie-break (makespan unaffected)");
  }

  if (context.curve != nullptr)
    lint_against_curve(plan, *context.curve, context.tolerance, out);
}

std::optional<core::ExecutionPlan> parse_plan_text(const std::string& text,
                                                   DiagnosticList& out) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line)) {
    out.error("P010", line_loc(1), "empty input; expected 'jps-plan v1'");
    return std::nullopt;
  }
  const std::string header{util::trim(line)};
  if (header != kHeader) {
    const bool versioned = util::starts_with(header, kHeaderPrefix);
    out.error("P010", line_loc(1),
              versioned
                  ? "unsupported version '" + header + "'; expected '" +
                        kHeader + "'"
                  : "bad header '" + header + "'; expected '" + kHeader + "'");
    if (!versioned) return std::nullopt;  // not a plan artifact at all
  }

  core::ExecutionPlan plan;
  bool have_model = false;
  bool have_strategy = false;
  bool have_comm_heavy = false;
  bool have_makespan = false;
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    const std::string trimmed{util::trim(line)};
    if (trimmed.empty()) continue;
    std::istringstream fields(trimmed);
    std::string key;
    fields >> key;
    const auto require_done = [&] {
      std::string extra;
      if (fields >> extra)
        out.error("P011", line_loc(line_no),
                  "trailing fields after '" + key + "' entry");
    };
    if (key == "model") {
      if (have_model)
        out.error("P014", line_loc(line_no), "duplicate 'model' key");
      if (!(fields >> plan.model)) {
        out.error("P011", line_loc(line_no), "missing model name");
      } else {
        have_model = true;
        require_done();
      }
    } else if (key == "strategy") {
      if (have_strategy)
        out.error("P014", line_loc(line_no), "duplicate 'strategy' key");
      std::string name;
      if (!(fields >> name)) {
        out.error("P011", line_loc(line_no), "missing strategy name");
      } else if (const auto strategy = strategy_from_name(name)) {
        plan.strategy = *strategy;
        have_strategy = true;
        require_done();
      } else {
        out.error("P012", line_loc(line_no),
                  "unknown strategy '" + name + "'");
      }
    } else if (key == "comm_heavy") {
      if (have_comm_heavy)
        out.error("P014", line_loc(line_no), "duplicate 'comm_heavy' key");
      have_comm_heavy = true;
      if (!(fields >> plan.comm_heavy_count))
        out.error("P011", line_loc(line_no), "bad comm_heavy count");
      else
        require_done();
    } else if (key == "makespan_ms") {
      if (have_makespan)
        out.error("P014", line_loc(line_no), "duplicate 'makespan_ms' key");
      have_makespan = true;
      if (!(fields >> plan.predicted_makespan))
        out.error("P011", line_loc(line_no), "bad makespan value");
      else
        require_done();
    } else if (key == "job") {
      core::JobAssignment assignment;
      sched::Job job;
      if (!(fields >> assignment.job_id >> assignment.cut_index >> job.f >>
            job.g)) {
        out.error("P011", line_loc(line_no),
                  "bad job entry; expected 'job <id> <cut> <f_ms> <g_ms>'");
      } else {
        require_done();
        job.id = assignment.job_id;
        job.cut = static_cast<int>(assignment.cut_index);
        plan.jobs.push_back(assignment);
        plan.scheduled_jobs.push_back(job);
      }
    } else {
      out.error("P013", line_loc(line_no), "unknown key '" + key + "'");
    }
  }
  if (!have_model)
    out.error("P015", {}, "plan is missing its 'model' entry");
  if (!have_strategy)
    out.error("P015", {}, "plan is missing its 'strategy' entry");
  if (plan.jobs.empty()) out.error("P015", {}, "plan schedules no jobs");
  plan.refresh_lanes();  // parsed plans honor the SoA-lane invariant too
  return plan;
}

}  // namespace jps::check
