#include "check/lint_artifact.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "check/lint_curve.h"
#include "check/lint_fault.h"
#include "check/lint_graph.h"
#include "check/lint_plan.h"
#include "models/registry.h"
#include "net/channel.h"
#include "obs/trace_writer.h"  // json_escape
#include "partition/profile_curve.h"
#include "profile/device.h"
#include "profile/latency_model.h"
#include "util/strings.h"

namespace jps::check {

namespace {

bool model_exists(const std::string& name) {
  const auto& names = models::all_names();
  return std::find(names.begin(), names.end(), name) != names.end();
}

partition::ProfileCurve build_reference_curve(const dnn::Graph& graph,
                                              double bandwidth_mbps) {
  const profile::LatencyModel mobile(
      profile::DeviceProfile::raspberry_pi_4b());
  return partition::ProfileCurve::build(graph, mobile,
                                        net::Channel(bandwidth_mbps));
}

void lint_plan_artifact(const std::string& text, const LintOptions& options,
                        DiagnosticList& out) {
  const std::optional<core::ExecutionPlan> plan = parse_plan_text(text, out);
  if (!plan || out.has_errors()) return;  // semantic rules need a clean parse

  PlanLintContext context;
  context.tolerance = options.tolerance;
  partition::ProfileCurve curve;  // keep alive across lint_plan
  if (options.resolve_models) {
    if (!model_exists(plan->model)) {
      out.error("X001", {},
                "plan references model '" + plan->model +
                    "', which is not in the zoo");
    } else {
      const dnn::Graph graph = models::build(plan->model);
      if (options.bandwidth_mbps) {
        curve = build_reference_curve(graph, *options.bandwidth_mbps);
        context.curve = &curve;
      } else if (graph.is_line()) {
        // Without a channel the exact curve is unknowable, but a line model
        // can never have more candidate cuts than layer prefixes.
        context.cut_bound = graph.size() + 1;
      }
    }
  }
  lint_plan(*plan, out, context);
}

void lint_fault_artifact(const std::string& text, DiagnosticList& out) {
  const std::optional<fault::FaultSpec> spec =
      parse_fault_spec_text(text, out);
  if (!spec || out.has_errors()) return;
  lint_fault_spec(*spec, out);
}

}  // namespace

const char* artifact_kind_name(ArtifactKind kind) {
  switch (kind) {
    case ArtifactKind::kPlan: return "plan";
    case ArtifactKind::kFaultSpec: return "faults";
    case ArtifactKind::kUnknown: return "unknown";
  }
  return "unknown";
}

ArtifactKind sniff_artifact(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  std::getline(is, line);
  const std::string_view header = util::trim(line);
  if (util::starts_with(header, "jps-plan")) return ArtifactKind::kPlan;
  if (util::starts_with(header, "jps-faults")) return ArtifactKind::kFaultSpec;
  return ArtifactKind::kUnknown;
}

ArtifactKind lint_artifact_text(const std::string& text,
                                const LintOptions& options,
                                DiagnosticList& out) {
  const ArtifactKind kind = sniff_artifact(text);
  switch (kind) {
    case ArtifactKind::kPlan:
      lint_plan_artifact(text, options, out);
      break;
    case ArtifactKind::kFaultSpec:
      lint_fault_artifact(text, out);
      break;
    case ArtifactKind::kUnknown:
      out.error("L001", "line 1",
                "unrecognized artifact; expected a 'jps-plan v1' or "
                "'jps-faults v1' header");
      break;
  }
  return kind;
}

ArtifactKind lint_artifact_file(const std::string& path,
                                const LintOptions& options,
                                DiagnosticList& out) {
  std::ifstream in(path);
  if (!in) {
    out.error("L001", {}, "cannot open '" + path + "'");
    return ArtifactKind::kUnknown;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return lint_artifact_text(buffer.str(), options, out);
}

void lint_model(const std::string& name, const LintOptions& options,
                DiagnosticList& out) {
  if (!model_exists(name)) {
    out.error("X001", {}, "model '" + name + "' is not in the zoo");
    return;
  }
  const dnn::Graph graph = models::build(name);
  lint_graph(graph, out);
  if (out.has_errors()) return;
  const double mbps =
      options.bandwidth_mbps.value_or(net::Channel::preset_4g()
                                          .bandwidth_mbps());
  lint_curve(build_reference_curve(graph, mbps), out);
}

std::string lint_report_json(const std::vector<FileReport>& reports) {
  std::size_t errors = 0;
  std::size_t warnings = 0;
  std::ostringstream os;
  os << "{\"files\":[";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const auto& [file, diagnostics] = reports[i];
    errors += diagnostics.error_count();
    warnings += diagnostics.warning_count();
    if (i) os << ',';
    os << "{\"file\":\"" << obs::json_escape(file) << "\",\"diagnostics\":[";
    const auto& items = diagnostics.all();
    for (std::size_t j = 0; j < items.size(); ++j) {
      if (j) os << ',';
      os << "{\"severity\":\"" << severity_name(items[j].severity)
         << "\",\"code\":\"" << obs::json_escape(items[j].code)
         << "\",\"location\":\"" << obs::json_escape(items[j].location)
         << "\",\"message\":\"" << obs::json_escape(items[j].message)
         << "\"}";
    }
    os << "]}";
  }
  os << "],\"errors\":" << errors << ",\"warnings\":" << warnings << "}";
  return os.str();
}

}  // namespace jps::check
