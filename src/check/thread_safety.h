// Clang Thread Safety Analysis — the repo's capability-annotation layer.
//
// PR 4 made artifact admission a static property (lint rule packs); this
// header does the same for lock discipline.  Every mutex-guarded field in
// src/ carries JPS_GUARDED_BY(<its mutex>), every helper that assumes a
// held lock carries JPS_REQUIRES(<mutex>), and the annotated wrappers in
// util/mutex.h (util::Mutex / SharedMutex / MutexLock / SharedLock) give
// the analysis the ACQUIRE/RELEASE events it needs.  Under clang with
// -Wthread-safety -Wthread-safety-beta (the CI `thread-safety` job builds
// with both as errors) a guarded field touched without its mutex is a
// BUILD BREAK — a proof over all interleavings, where TSan can only flag
// the interleavings a test happened to schedule.
//
// Off-clang (GCC builds, including the tier-1 container) every macro
// expands to nothing, so the annotations cost nothing and constrain
// nothing at runtime.  The dynamic complement — the lock-order checker in
// util/mutex.h — works on every compiler.
//
// Conventions (see docs/STATIC_ANALYSIS.md "Thread-safety analysis"):
//   * fields:        int x_ JPS_GUARDED_BY(mutex_);
//   * locked helpers: void f_locked() JPS_REQUIRES(mutex_);
//   * reader helpers: void g_locked() const JPS_REQUIRES_SHARED(mutex_);
//   * never annotate around a warning — restructure so the lock is
//     provably held (the only JPS_NO_THREAD_SAFETY_ANALYSIS allowed
//     outside this header/util/mutex.* is none).
//
// The macro set mirrors the clang documentation's canonical mutex.h so
// readers coming from abseil/chromium find the familiar vocabulary.
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define JPS_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define JPS_THREAD_ANNOTATION__(x)  // no-op off clang
#endif

/// Marks a class as a lockable capability ("mutex", "shared_mutex", ...).
#define JPS_CAPABILITY(x) JPS_THREAD_ANNOTATION__(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define JPS_SCOPED_CAPABILITY JPS_THREAD_ANNOTATION__(scoped_lockable)

/// Field may only be read/written while holding `x`.
#define JPS_GUARDED_BY(x) JPS_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer field: the *pointee* is guarded by `x` (the pointer itself not).
#define JPS_PT_GUARDED_BY(x) JPS_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Declares a required acquisition order between capabilities.
#define JPS_ACQUIRED_BEFORE(...) \
  JPS_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define JPS_ACQUIRED_AFTER(...) \
  JPS_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

/// Function requires the capability held (exclusively / shared) on entry,
/// and does not release it.
#define JPS_REQUIRES(...) \
  JPS_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define JPS_REQUIRES_SHARED(...) \
  JPS_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability (exclusively / shared) and holds it on
/// return.  With no argument (on a capability's own method or a scoped
/// capability's member) it refers to `this`.
#define JPS_ACQUIRE(...) \
  JPS_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define JPS_ACQUIRE_SHARED(...) \
  JPS_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (which must be held on entry).
#define JPS_RELEASE(...) \
  JPS_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define JPS_RELEASE_SHARED(...) \
  JPS_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))
#define JPS_RELEASE_GENERIC(...) \
  JPS_THREAD_ANNOTATION__(release_generic_capability(__VA_ARGS__))

/// Function tries to acquire; first argument is the success return value.
#define JPS_TRY_ACQUIRE(...) \
  JPS_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
#define JPS_TRY_ACQUIRE_SHARED(...) \
  JPS_THREAD_ANNOTATION__(try_acquire_shared_capability(__VA_ARGS__))

/// Function must NOT be called with the capability held (non-reentrancy;
/// deadlock prevention).
#define JPS_EXCLUDES(...) JPS_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Runtime-checked assertion that the capability is held (for code paths
/// the analysis cannot follow).
#define JPS_ASSERT_CAPABILITY(x) \
  JPS_THREAD_ANNOTATION__(assert_capability(x))
#define JPS_ASSERT_SHARED_CAPABILITY(x) \
  JPS_THREAD_ANNOTATION__(assert_shared_capability(x))

/// Function returns a reference to the mutex guarding its result.
#define JPS_RETURN_CAPABILITY(x) JPS_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch: disables analysis for one function.  Reserved for the
/// wrapper internals in util/mutex.*; do not use elsewhere (the CI grep
/// gate counts occurrences).
#define JPS_NO_THREAD_SAFETY_ANALYSIS \
  JPS_THREAD_ANNOTATION__(no_thread_safety_analysis)
