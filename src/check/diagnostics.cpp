#include "check/diagnostics.h"

#include <algorithm>
#include <sstream>
#include <utility>

namespace jps::check {

namespace {

std::string summarize(const std::string& context,
                      const DiagnosticList& diagnostics) {
  std::ostringstream os;
  os << context << ": " << diagnostics.error_count() << " error(s)";
  if (diagnostics.warning_count() > 0)
    os << ", " << diagnostics.warning_count() << " warning(s)";
  os << '\n' << diagnostics.to_text();
  std::string text = os.str();
  if (!text.empty() && text.back() == '\n') text.pop_back();
  return text;
}

}  // namespace

const char* severity_name(Severity severity) {
  return severity == Severity::kError ? "error" : "warning";
}

std::string to_string(const Diagnostic& diagnostic) {
  std::string out = severity_name(diagnostic.severity);
  out += '[';
  out += diagnostic.code;
  out += ']';
  if (!diagnostic.location.empty()) {
    out += ' ';
    out += diagnostic.location;
  }
  out += ": ";
  out += diagnostic.message;
  return out;
}

void DiagnosticList::add(Severity severity, std::string code,
                         std::string location, std::string message) {
  items_.push_back({severity, std::move(code), std::move(location),
                    std::move(message)});
}

void DiagnosticList::error(std::string code, std::string location,
                           std::string message) {
  add(Severity::kError, std::move(code), std::move(location),
      std::move(message));
}

void DiagnosticList::warning(std::string code, std::string location,
                             std::string message) {
  add(Severity::kWarning, std::move(code), std::move(location),
      std::move(message));
}

std::size_t DiagnosticList::error_count() const {
  return static_cast<std::size_t>(
      std::count_if(items_.begin(), items_.end(), [](const Diagnostic& d) {
        return d.severity == Severity::kError;
      }));
}

std::size_t DiagnosticList::warning_count() const {
  return items_.size() - error_count();
}

bool DiagnosticList::has_code(const std::string& code) const {
  return std::any_of(items_.begin(), items_.end(),
                     [&](const Diagnostic& d) { return d.code == code; });
}

std::string DiagnosticList::first_error_code() const {
  for (const Diagnostic& d : items_) {
    if (d.severity == Severity::kError) return d.code;
  }
  return {};
}

std::string DiagnosticList::to_text(const std::string& context) const {
  std::string out;
  for (const Diagnostic& d : items_) {
    if (!context.empty()) {
      out += context;
      out += ": ";
    }
    out += to_string(d);
    out += '\n';
  }
  return out;
}

void DiagnosticList::merge(const DiagnosticList& other) {
  items_.insert(items_.end(), other.items_.begin(), other.items_.end());
}

ParseError::ParseError(std::string context, DiagnosticList diagnostics)
    : std::runtime_error(summarize(context, diagnostics)),
      code_(diagnostics.first_error_code()),
      diagnostics_(std::move(diagnostics)) {}

ValidationError::ValidationError(std::string context,
                                 DiagnosticList diagnostics)
    : std::invalid_argument(summarize(context, diagnostics)),
      code_(diagnostics.first_error_code()),
      diagnostics_(std::move(diagnostics)) {}

void throw_parse_error_if_any(const DiagnosticList& diagnostics,
                              const std::string& context) {
  if (diagnostics.has_errors()) throw ParseError(context, diagnostics);
}

void throw_validation_error_if_any(const DiagnosticList& diagnostics,
                                   const std::string& context) {
  if (diagnostics.has_errors()) throw ValidationError(context, diagnostics);
}

}  // namespace jps::check
