#include "check/lint_fault.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "util/strings.h"

namespace jps::check {

namespace {

constexpr const char* kHeader = "jps-faults v1";
constexpr const char* kHeaderPrefix = "jps-faults";

std::string event_loc(std::size_t i) { return "event " + std::to_string(i); }

std::string line_loc(std::size_t line_no) {
  return "line " + std::to_string(line_no);
}

std::optional<fault::FaultKind> kind_from_keyword(const std::string& word) {
  for (const fault::FaultKind kind :
       {fault::FaultKind::kDrift, fault::FaultKind::kOutage,
        fault::FaultKind::kCloudSlow, fault::FaultKind::kMobileThrottle,
        fault::FaultKind::kNetDelay, fault::FaultKind::kNetShort,
        fault::FaultKind::kNetDrop, fault::FaultKind::kNetCorrupt}) {
    if (word == fault::fault_kind_name(kind)) return kind;
  }
  return std::nullopt;
}

bool takes_value(fault::FaultKind kind) {
  return fault::fault_kind_takes_value(kind);
}

}  // namespace

void lint_fault_spec(const fault::FaultSpec& spec, DiagnosticList& out) {
  // F004 window bounds + F005/F006 values, indexed by the event's position
  // in the spec (== its line order for parsed artifacts).
  for (std::size_t i = 0; i < spec.events.size(); ++i) {
    const fault::FaultEvent& e = spec.events[i];
    const bool finite = std::isfinite(e.start_ms) && std::isfinite(e.end_ms);
    if (!finite || e.start_ms < 0.0 || e.end_ms <= e.start_ms)
      out.error("F004", event_loc(i),
                std::string(fault::fault_kind_name(e.kind)) + " window [" +
                    std::to_string(e.start_ms) + ", " +
                    std::to_string(e.end_ms) +
                    ") must satisfy 0 <= start < end");
    if (e.kind == fault::FaultKind::kDrift &&
        (!std::isfinite(e.value) || e.value <= 0.0))
      out.error("F005", event_loc(i),
                "drift bandwidth " + std::to_string(e.value) +
                    " Mbps must be strictly positive (use `outage` for a "
                    "dead link)");
    if ((e.kind == fault::FaultKind::kCloudSlow ||
         e.kind == fault::FaultKind::kMobileThrottle) &&
        (!std::isfinite(e.value) || e.value <= 0.0))
      out.error("F006", event_loc(i),
                std::string(fault::fault_kind_name(e.kind)) + " factor " +
                    std::to_string(e.value) + " must be strictly positive");
    if (e.kind == fault::FaultKind::kNetDelay &&
        (!std::isfinite(e.value) || e.value <= 0.0))
      out.error("F008", event_loc(i),
                "net_delay of " + std::to_string(e.value) +
                    " ms must be strictly positive");
    if (e.kind == fault::FaultKind::kNetCorrupt &&
        (!std::isfinite(e.value) || e.value != std::floor(e.value) ||
         e.value < 1.0 || e.value > 255.0))
      out.error("F008", event_loc(i),
                "net_corrupt mask " + std::to_string(e.value) +
                    " must be an integer in [1, 255] (XORing with 0 would "
                    "corrupt nothing)");
  }

  // F003: windows of one kind must be pairwise disjoint (different kinds may
  // overlap).  Sort per kind by start and check neighbours.
  std::map<fault::FaultKind, std::vector<std::size_t>> by_kind;
  for (std::size_t i = 0; i < spec.events.size(); ++i)
    by_kind[spec.events[i].kind].push_back(i);
  for (auto& [kind, indices] : by_kind) {
    std::sort(indices.begin(), indices.end(), [&](std::size_t a,
                                                  std::size_t b) {
      return spec.events[a].start_ms < spec.events[b].start_ms;
    });
    for (std::size_t i = 1; i < indices.size(); ++i) {
      const fault::FaultEvent& prev = spec.events[indices[i - 1]];
      const fault::FaultEvent& cur = spec.events[indices[i]];
      if (cur.start_ms < prev.end_ms)
        out.error("F003", event_loc(indices[i]),
                  std::string(fault::fault_kind_name(kind)) + " window [" +
                      std::to_string(cur.start_ms) + ", " +
                      std::to_string(cur.end_ms) + ") overlaps [" +
                      std::to_string(prev.start_ms) + ", " +
                      std::to_string(prev.end_ms) + ")");
    }
  }
}

std::optional<fault::FaultSpec> parse_fault_spec_text(const std::string& text,
                                                      DiagnosticList& out) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line)) {
    out.error("F001", line_loc(1), "empty input; expected 'jps-faults v1'");
    return std::nullopt;
  }
  const std::string header{util::trim(line)};
  if (header != kHeader) {
    const bool versioned = util::starts_with(header, kHeaderPrefix);
    out.error("F001", line_loc(1),
              versioned
                  ? "unsupported version '" + header + "'; expected '" +
                        kHeader + "'"
                  : "bad header '" + header + "'; expected '" + kHeader + "'");
    if (!versioned) return std::nullopt;  // not a fault artifact at all
  }

  fault::FaultSpec spec;
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    std::string trimmed{util::trim(line)};
    const std::size_t hash = trimmed.find('#');
    if (hash != std::string::npos)
      trimmed = std::string(util::trim(trimmed.substr(0, hash)));
    if (trimmed.empty()) continue;

    std::istringstream fields(trimmed);
    std::string keyword;
    fields >> keyword;
    const auto kind = kind_from_keyword(keyword);
    if (!kind) {
      out.error("F002", line_loc(line_no), "unknown keyword '" + keyword + "'");
      continue;
    }
    fault::FaultEvent event;
    event.kind = *kind;
    if (!(fields >> event.start_ms >> event.end_ms)) {
      out.error("F007", line_loc(line_no),
                "bad window; expected '" + keyword + " <start_ms> <end_ms>" +
                    (takes_value(*kind) ? " <value>'" : "'"));
      continue;
    }
    if (takes_value(*kind) && !(fields >> event.value)) {
      out.error("F007", line_loc(line_no),
                "missing value for '" + keyword + "'");
      continue;
    }
    std::string extra;
    if (fields >> extra) {
      out.error("F007", line_loc(line_no),
                "trailing fields after '" + keyword + "' event");
      continue;
    }
    spec.events.push_back(event);
  }
  return spec;
}

}  // namespace jps::check
