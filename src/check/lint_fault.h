// Fault-spec rule pack (F codes) for "jps-faults v1" artifacts.
// fault::FaultSpec::parse and fault::FaultTimeline route through this pack.
//
// Parse rules:
//   F001  bad or missing header / unknown version string
//   F002  unknown keyword
//   F007  malformed fields (bad window numbers, missing value, trailing
//         fields)
//
// Semantic rules (in-memory FaultSpec):
//   F003  overlapping windows of the same kind
//   F004  bad window bounds: end <= start or negative start (non-monotone
//         timestamps)
//   F005  drift bandwidth not strictly positive (the uplink must stay up —
//         a dead link is an `outage`, not a zero-rate drift)
//   F006  slowdown factor not strictly positive
//   F008  bad net_* chaos value: net_delay must be > 0 ms, net_corrupt's
//         XOR mask must be an integer in [1, 255]
#pragma once

#include <optional>

#include "check/diagnostics.h"
#include "fault/fault_spec.h"

namespace jps::check {

/// Run the semantic rules over an in-memory spec.
void lint_fault_spec(const fault::FaultSpec& spec, DiagnosticList& out);

/// Parse the "jps-faults v1" text format, reporting F001/F002/F007 instead
/// of throwing.  Returns nullopt when the header is not a fault artifact.
/// Does NOT run the semantic rules.
[[nodiscard]] std::optional<fault::FaultSpec> parse_fault_spec_text(
    const std::string& text, DiagnosticList& out);

}  // namespace jps::check
