// Umbrella header for the JPS library: joint DNN partition + scheduling for
// mobile cloud computing (Duan & Wu, ICPP 2021, reimplemented in C++20).
//
// Typical flow:
//   auto graph   = jps::models::build("alexnet");
//   auto mobile  = jps::profile::LatencyModel(
//                      jps::profile::DeviceProfile::raspberry_pi_4b());
//   auto channel = jps::net::Channel::preset_4g();
//   auto curve   = jps::partition::ProfileCurve::build(graph, mobile, channel);
//   auto planner = jps::core::Planner(curve);
//   auto plan    = planner.plan(jps::core::Strategy::kJPS, /*n_jobs=*/100);
#pragma once

#include "core/alg3_planner.h"   // IWYU pragma: export
#include "core/energy.h"         // IWYU pragma: export
#include "core/hetero.h"         // IWYU pragma: export
#include "core/plan.h"           // IWYU pragma: export
#include "core/plan_cache.h"     // IWYU pragma: export
#include "core/plan_io.h"        // IWYU pragma: export
#include "core/planner.h"        // IWYU pragma: export
#include "core/ratio.h"          // IWYU pragma: export
#include "core/robust.h"         // IWYU pragma: export
#include "dnn/dot.h"             // IWYU pragma: export
#include "fault/bandwidth_estimator.h"  // IWYU pragma: export
#include "fault/fault_executor.h"       // IWYU pragma: export
#include "fault/fault_spec.h"           // IWYU pragma: export
#include "dnn/graph.h"           // IWYU pragma: export
#include "dnn/layer.h"           // IWYU pragma: export
#include "dnn/tensor_shape.h"    // IWYU pragma: export
#include "models/registry.h"     // IWYU pragma: export
#include "models/zoo.h"          // IWYU pragma: export
#include "net/channel.h"         // IWYU pragma: export
#include "obs/obs.h"             // IWYU pragma: export
#include "obs/trace_writer.h"    // IWYU pragma: export
#include "partition/binary_search.h"  // IWYU pragma: export
#include "partition/continuous.h"     // IWYU pragma: export
#include "partition/general_dag.h"    // IWYU pragma: export
#include "partition/profile_curve.h"  // IWYU pragma: export
#include "profile/comm_regression.h"  // IWYU pragma: export
#include "profile/device.h"           // IWYU pragma: export

#include "profile/latency_model.h"    // IWYU pragma: export
#include "profile/lookup_table.h"     // IWYU pragma: export
#include "profile/profiler.h"         // IWYU pragma: export
#include "runtime/graph_runner.h"     // IWYU pragma: export
#include "runtime/host_profiler.h"    // IWYU pragma: export
#include "runtime/kernels.h"          // IWYU pragma: export
#include "runtime/tensor.h"           // IWYU pragma: export
#include "sched/bruteforce.h"         // IWYU pragma: export
#include "sched/johnson.h"            // IWYU pragma: export
#include "sched/johnson3.h"           // IWYU pragma: export
#include "sched/makespan.h"           // IWYU pragma: export
#include "sched/release.h"            // IWYU pragma: export
#include "sim/executor.h"             // IWYU pragma: export
#include "sim/monte_carlo.h"          // IWYU pragma: export
#include "sim/shared_link.h"          // IWYU pragma: export
#include "sim/trace.h"                // IWYU pragma: export
#include "util/rng.h"                 // IWYU pragma: export
#include "util/stats.h"               // IWYU pragma: export
#include "util/table.h"               // IWYU pragma: export
#include "util/thread_pool.h"         // IWYU pragma: export
#include "util/units.h"               // IWYU pragma: export
