#include "net/channel.h"

#include <stdexcept>

#include "util/units.h"

namespace jps::net {

Channel::Channel(double bandwidth_mbps, double setup_latency_ms,
                 double jitter_sigma)
    : bandwidth_mbps_(bandwidth_mbps),
      setup_latency_ms_(setup_latency_ms),
      jitter_sigma_(jitter_sigma) {
  if (bandwidth_mbps_ <= 0.0)
    throw std::invalid_argument("Channel: bandwidth must be positive");
  if (setup_latency_ms_ < 0.0)
    throw std::invalid_argument("Channel: negative setup latency");
  if (jitter_sigma_ < 0.0)
    throw std::invalid_argument("Channel: negative jitter sigma");
}

double Channel::time_ms(std::uint64_t bytes) const {
  if (bytes == 0) return 0.0;  // nothing to send: no transfer, no setup
  return setup_latency_ms_ + util::transfer_time_ms(bytes, bandwidth_mbps_);
}

double Channel::sample_ms(std::uint64_t bytes, util::Rng& rng) const {
  return time_ms(bytes) * rng.lognormal_factor(jitter_sigma_);
}

Channel Channel::with_bandwidth(double mbps) const {
  return Channel(mbps, setup_latency_ms_, jitter_sigma_);
}

}  // namespace jps::net
