#include "net/channel.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/obs.h"
#include "util/units.h"

namespace jps::net {

Channel::Channel(double bandwidth_mbps, double setup_latency_ms,
                 double jitter_sigma)
    : bandwidth_mbps_(bandwidth_mbps),
      setup_latency_ms_(setup_latency_ms),
      jitter_sigma_(jitter_sigma) {
  if (bandwidth_mbps_ <= 0.0)
    throw std::invalid_argument("Channel: bandwidth must be positive");
  if (setup_latency_ms_ < 0.0)
    throw std::invalid_argument("Channel: negative setup latency");
  if (jitter_sigma_ < 0.0)
    throw std::invalid_argument("Channel: negative jitter sigma");
}

double Channel::time_ms(std::uint64_t bytes) const {
  if (bytes == 0) return 0.0;  // nothing to send: no transfer, no setup
  return setup_latency_ms_ + util::transfer_time_ms(bytes, bandwidth_mbps_);
}

double Channel::sample_ms(std::uint64_t bytes, util::Rng& rng) const {
  return time_ms(bytes) * rng.lognormal_factor(jitter_sigma_);
}

Channel Channel::with_bandwidth(double mbps) const {
  return Channel(mbps, setup_latency_ms_, jitter_sigma_);
}

namespace {

template <typename Interval>
void validate_sorted_disjoint(std::vector<Interval>& intervals,
                              const char* what) {
  std::sort(intervals.begin(), intervals.end(),
            [](const Interval& a, const Interval& b) {
              return a.start_ms < b.start_ms;
            });
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    if (intervals[i].start_ms < 0.0 ||
        intervals[i].end_ms <= intervals[i].start_ms)
      throw std::invalid_argument(std::string("TimeVaryingChannel: bad ") +
                                  what + " interval");
    if (i > 0 && intervals[i].start_ms < intervals[i - 1].end_ms)
      throw std::invalid_argument(std::string("TimeVaryingChannel: ") + what +
                                  " intervals overlap");
  }
}

}  // namespace

TimeVaryingChannel::TimeVaryingChannel(Channel base)
    : TimeVaryingChannel(base, {}, {}) {}

TimeVaryingChannel::TimeVaryingChannel(Channel base,
                                       std::vector<BandwidthSegment> segments,
                                       std::vector<Outage> outages)
    : base_(base),
      segments_(std::move(segments)),
      outages_(std::move(outages)) {
  validate_sorted_disjoint(segments_, "bandwidth");
  validate_sorted_disjoint(outages_, "outage");
  for (const BandwidthSegment& s : segments_) {
    if (s.mbps <= 0.0)
      throw std::invalid_argument(
          "TimeVaryingChannel: segment bandwidth must be positive");
    horizon_ms_ = std::max(horizon_ms_, s.end_ms);
  }
  for (const Outage& o : outages_) horizon_ms_ = std::max(horizon_ms_, o.end_ms);

  // Channel telemetry: the nominal uplink rate this view was built over and
  // the distribution of scripted outage lengths (what the robust planner's
  // bandwidth interval has to absorb).
  static obs::Gauge& bandwidth_gauge = obs::gauge("net.channel_bandwidth_mbps");
  bandwidth_gauge.set(base_.bandwidth_mbps());
  static obs::Histogram& outage_hist = obs::histogram("net.outage_ms");
  for (const Outage& o : outages_) outage_hist.record(o.end_ms - o.start_ms);
}

double TimeVaryingChannel::bandwidth_at(double t_ms) const {
  if (in_outage(t_ms)) return 0.0;
  for (const BandwidthSegment& s : segments_) {
    if (s.start_ms > t_ms) break;
    if (t_ms < s.end_ms) return s.mbps;
  }
  return base_.bandwidth_mbps();
}

bool TimeVaryingChannel::in_outage(double t_ms) const {
  for (const Outage& o : outages_) {
    if (o.start_ms > t_ms) break;
    if (t_ms < o.end_ms) return true;
  }
  return false;
}

TimeVaryingChannel::Transfer TimeVaryingChannel::transfer(
    double start_ms, std::uint64_t bytes) const {
  if (bytes == 0) return {true, 0.0, false};  // matches Channel::time_ms(0)

  // Serialization time over the piecewise-constant rate, outages ignored
  // for now.  The untouched fast path returns the stationary prediction
  // verbatim so fault-free timelines are bit-identical to the affine model.
  const double naive = base_.time_ms(bytes);
  const auto intersects = [&](double lo, double hi) {
    for (const BandwidthSegment& s : segments_) {
      if (s.start_ms >= hi) break;
      if (s.end_ms > lo) return true;
    }
    return false;
  };

  double duration = naive;
  bool perturbed = false;
  if (intersects(start_ms, start_ms + naive)) {
    perturbed = true;
    // Walk boundaries from the end of the setup window.  Segment rates are
    // positive and boundaries are finite, so the walk terminates.
    double t = start_ms + base_.setup_latency_ms();
    double remaining = static_cast<double>(bytes);
    while (remaining > 0.0) {
      double rate = base_.bandwidth_mbps();
      double boundary = std::numeric_limits<double>::infinity();
      for (const BandwidthSegment& s : segments_) {
        if (s.start_ms > t) {
          boundary = std::min(boundary, s.start_ms);
          break;
        }
        if (t < s.end_ms) {
          rate = s.mbps;
          boundary = s.end_ms;
          break;
        }
      }
      const double bytes_per_ms = util::mbps_to_bytes_per_ms(rate);
      const double need_ms = remaining / bytes_per_ms;
      if (t + need_ms <= boundary) {
        t += need_ms;
        remaining = 0.0;
      } else {
        remaining -= (boundary - t) * bytes_per_ms;
        t = boundary;
      }
    }
    duration = t - start_ms;
  }

  // Any outage overlapping the attempt fails it.
  for (const Outage& o : outages_) {
    if (o.start_ms >= start_ms + duration) break;
    if (o.end_ms <= start_ms) continue;
    if (o.start_ms <= start_ms) {
      // Attempted inside an outage: the connection times out after one
      // setup latency.
      return {false, base_.setup_latency_ms(), true};
    }
    return {false, o.start_ms - start_ms, true};
  }
  return {true, duration, perturbed};
}

}  // namespace jps::net
