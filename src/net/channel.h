// Mobile->cloud uplink model.
//
// The paper's testbed shapes a Wi-Fi LAN with wondershaper and then models
// the link with a linear regression t = w0 + w1 * (size / bandwidth) (§6.1).
// We implement that affine model directly, with optional log-normal jitter
// for the measurement-noise experiments.  Downlink of the final inference
// result is negligible (§3.1) and not modeled.
#pragma once

#include <cstdint>

#include "util/rng.h"

namespace jps::net {

/// Typical uplink bandwidths the paper evaluates (from [7] / Hu et al.).
inline constexpr double kBandwidth3GMbps = 1.1;
inline constexpr double kBandwidth4GMbps = 5.85;
inline constexpr double kBandwidthWiFiMbps = 18.88;

/// Affine channel: comm time = setup latency + serialization at `bandwidth`.
class Channel {
 public:
  /// `bandwidth_mbps` must be > 0.  `setup_latency_ms` is the w0 term of the
  /// paper's regression (connection/framing overhead per transfer).
  /// `jitter_sigma` is the sigma of a multiplicative log-normal factor
  /// applied by sample(); 0 disables jitter.
  explicit Channel(double bandwidth_mbps, double setup_latency_ms = 8.0,
                   double jitter_sigma = 0.0);

  /// Deterministic transfer time for `bytes` (the regression prediction).
  [[nodiscard]] double time_ms(std::uint64_t bytes) const;

  /// One noisy observation of a transfer of `bytes`.
  [[nodiscard]] double sample_ms(std::uint64_t bytes, util::Rng& rng) const;

  [[nodiscard]] double bandwidth_mbps() const { return bandwidth_mbps_; }
  [[nodiscard]] double setup_latency_ms() const { return setup_latency_ms_; }
  [[nodiscard]] double jitter_sigma() const { return jitter_sigma_; }

  /// Same link at a different bandwidth (for sweeps).
  [[nodiscard]] Channel with_bandwidth(double mbps) const;

  /// Presets matching the paper's three network conditions.
  static Channel preset_3g() { return Channel(kBandwidth3GMbps); }
  static Channel preset_4g() { return Channel(kBandwidth4GMbps); }
  static Channel preset_wifi() { return Channel(kBandwidthWiFiMbps); }

 private:
  double bandwidth_mbps_;
  double setup_latency_ms_;
  double jitter_sigma_;
};

}  // namespace jps::net
