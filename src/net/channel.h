// Mobile->cloud uplink model.
//
// The paper's testbed shapes a Wi-Fi LAN with wondershaper and then models
// the link with a linear regression t = w0 + w1 * (size / bandwidth) (§6.1).
// We implement that affine model directly, with optional log-normal jitter
// for the measurement-noise experiments.  Downlink of the final inference
// result is negligible (§3.1) and not modeled.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace jps::net {

/// Typical uplink bandwidths the paper evaluates (from [7] / Hu et al.).
inline constexpr double kBandwidth3GMbps = 1.1;
inline constexpr double kBandwidth4GMbps = 5.85;
inline constexpr double kBandwidthWiFiMbps = 18.88;

/// Affine channel: comm time = setup latency + serialization at `bandwidth`.
class Channel {
 public:
  /// `bandwidth_mbps` must be > 0.  `setup_latency_ms` is the w0 term of the
  /// paper's regression (connection/framing overhead per transfer).
  /// `jitter_sigma` is the sigma of a multiplicative log-normal factor
  /// applied by sample(); 0 disables jitter.
  explicit Channel(double bandwidth_mbps, double setup_latency_ms = 8.0,
                   double jitter_sigma = 0.0);

  /// Deterministic transfer time for `bytes` (the regression prediction).
  [[nodiscard]] double time_ms(std::uint64_t bytes) const;

  /// One noisy observation of a transfer of `bytes`.
  [[nodiscard]] double sample_ms(std::uint64_t bytes, util::Rng& rng) const;

  [[nodiscard]] double bandwidth_mbps() const { return bandwidth_mbps_; }
  [[nodiscard]] double setup_latency_ms() const { return setup_latency_ms_; }
  [[nodiscard]] double jitter_sigma() const { return jitter_sigma_; }

  /// Same link at a different bandwidth (for sweeps).
  [[nodiscard]] Channel with_bandwidth(double mbps) const;

  /// Presets matching the paper's three network conditions.
  static Channel preset_3g() { return Channel(kBandwidth3GMbps); }
  static Channel preset_4g() { return Channel(kBandwidth4GMbps); }
  static Channel preset_wifi() { return Channel(kBandwidthWiFiMbps); }

 private:
  double bandwidth_mbps_;
  double setup_latency_ms_;
  double jitter_sigma_;
};

/// One piecewise-constant bandwidth override: the link runs at `mbps`
/// during [start_ms, end_ms) instead of the base rate.
struct BandwidthSegment {
  double start_ms = 0.0;
  double end_ms = 0.0;
  double mbps = 0.0;
};

/// One link outage: any transfer overlapping [start_ms, end_ms) fails.
struct Outage {
  double start_ms = 0.0;
  double end_ms = 0.0;
};

/// Time-varying view of an uplink: the affine Channel plus piecewise
/// bandwidth drift segments and outages.  The stationary channel is the
/// special case with no segments and no outages, and on any transfer whose
/// window touches no segment or outage, transfer() returns exactly
/// base().time_ms(bytes) — bit-for-bit, so fault-free timelines reproduce
/// the stationary model.
///
/// Semantics:
///   * setup latency is time, not data: it is unaffected by drift segments;
///   * serialization integrates bytes over the piecewise-constant rate;
///   * a transfer overlapping an outage FAILS: if the outage begins
///     mid-flight the failure is detected at the outage start; a transfer
///     attempted inside an outage fails after one setup latency (the
///     connection timeout).
class TimeVaryingChannel {
 public:
  /// A fault-free view over `base`.
  explicit TimeVaryingChannel(Channel base);

  /// Segments and outages must each be non-overlapping within their kind;
  /// they are sorted by start time here.  Throws std::invalid_argument on
  /// overlap, end <= start, negative start, or non-positive segment rate.
  TimeVaryingChannel(Channel base, std::vector<BandwidthSegment> segments,
                     std::vector<Outage> outages);

  /// Instantaneous uplink rate at time `t_ms`; 0 during an outage.
  [[nodiscard]] double bandwidth_at(double t_ms) const;

  /// True while the link is down.
  [[nodiscard]] bool in_outage(double t_ms) const;

  /// Outcome of one transfer attempt started at `start_ms`.
  struct Transfer {
    /// False when the attempt overlapped an outage.
    bool completed = true;
    /// Time the link is held: full transfer time on success, time until
    /// the failure is detected otherwise.
    double duration_ms = 0.0;
    /// True when any drift segment or outage altered the attempt (i.e. the
    /// result differs from the stationary model's).
    bool perturbed = false;
  };
  [[nodiscard]] Transfer transfer(double start_ms, std::uint64_t bytes) const;

  [[nodiscard]] const Channel& base() const { return base_; }
  [[nodiscard]] const std::vector<BandwidthSegment>& segments() const {
    return segments_;
  }
  [[nodiscard]] const std::vector<Outage>& outages() const { return outages_; }

  /// End of the last scripted event (0 for a fault-free view).
  [[nodiscard]] double horizon_ms() const { return horizon_ms_; }

  /// True when no segment and no outage is scripted.
  [[nodiscard]] bool stationary() const {
    return segments_.empty() && outages_.empty();
  }

 private:
  Channel base_;
  std::vector<BandwidthSegment> segments_;  // sorted, non-overlapping
  std::vector<Outage> outages_;             // sorted, non-overlapping
  double horizon_ms_ = 0.0;
};

}  // namespace jps::net
