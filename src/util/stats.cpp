#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace jps::util {

double sum(std::span<const double> xs) {
  return std::accumulate(xs.begin(), xs.end(), 0.0);
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return sum(xs) / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

namespace {

// Percentile of an already-sorted vector with linear interpolation between
// closest ranks at fractional rank p/100 * (n-1) — numpy's default
// method="linear" (inclusive) scheme, so percentile(xs, 50) is exactly
// median(xs) for any n.
double sorted_percentile(const std::vector<double>& s, double p) {
  if (s.empty()) return 0.0;
  if (s.size() == 1) return s.front();
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(s.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, s.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return s[lo] + (s[hi] - s[lo]) * frac;
}

}  // namespace

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double percentile(std::span<const double> xs, double p) {
  std::vector<double> s(xs.begin(), xs.end());
  std::sort(s.begin(), s.end());
  return sorted_percentile(s, p);
}

double min(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  s.min = sorted.front();
  s.max = sorted.back();
  s.p25 = sorted_percentile(sorted, 25.0);
  s.median = sorted_percentile(sorted, 50.0);
  s.p75 = sorted_percentile(sorted, 75.0);
  s.p95 = sorted_percentile(sorted, 95.0);
  return s;
}

}  // namespace jps::util
