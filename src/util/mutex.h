// Annotated mutex wrappers + runtime lock-order (deadlock) checker.
//
// Every mutex member in src/ is one of these wrappers, never a raw
// std::mutex / std::shared_mutex (a CI grep gate enforces it).  The
// wrappers buy two things the std types cannot:
//
//   1. Clang Thread Safety Analysis.  Mutex is a JPS_CAPABILITY and
//      MutexLock/SharedLock are JPS_SCOPED_CAPABILITY, so fields declared
//      JPS_GUARDED_BY(mutex_) are compile-time-checked under
//      -Wthread-safety (see check/thread_safety.h and the CI
//      `thread-safety` job).
//
//   2. Lock-order checking.  A Mutex constructed with a name participates
//      in a global acquisition-order graph: each acquire adds held->new
//      edges keyed by lock *name* (one node per lock class, so all
//      instances of "core.plan_cache" share a node), and an edge that
//      closes a cycle is a potential-deadlock diagnostic naming every lock
//      on the cycle — reported deterministically on the first inconsistent
//      acquisition, no unlucky interleaving required.  Modes:
//      JPS_LOCK_ORDER=abort|warn|off (default: warn in debug builds, off
//      under NDEBUG).  Unnamed mutexes skip the graph (a shared default
//      name would alias unrelated locks) but still get same-instance
//      recursive-acquisition detection.
//
// CondVar wraps std::condition_variable_any waiting directly on MutexLock:
// the std::condition_variable/unique_lock pairing is invisible to both the
// static analysis and the order checker, whereas MutexLock::lock()/unlock()
// are annotated and instrumented, so a wait keeps both models exact.
//
// Known limitation: because graph nodes are names, an ordered nesting of
// two *instances* of the same class (never done in this codebase) would
// self-loop and be reported; give such locks distinct names.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <shared_mutex>
#include <string>

#include "check/thread_safety.h"

namespace jps::util {

namespace lockorder {

enum class Mode {
  kOff,    // hooks return immediately (one relaxed atomic load)
  kWarn,   // print diagnostic to stderr (or report hook), continue
  kAbort,  // print diagnostic, then std::abort()
};

// Current mode.  Initialised once from the JPS_LOCK_ORDER environment
// variable ("abort" | "warn" | "off"); when unset, defaults to kWarn in
// debug builds and kOff under NDEBUG.  Tests override via set_mode().
Mode mode();
void set_mode(Mode mode);

// Replaces the default diagnostic sink (stderr + abort-on-kAbort) with a
// callback, making cycle reports deterministic and assertable in tests.
// Pass nullptr to restore the default behaviour.
void set_report_hook(std::function<void(const std::string&)> hook);

// Drops every recorded acquisition-order edge (per-thread held stacks are
// untouched; locks currently held keep being tracked).  Test isolation.
void reset();

// Total cycle/recursion diagnostics issued since process start.
std::uint64_t violations();

// Wrapper internals — called by Mutex/SharedMutex/MutexLock/SharedLock on
// every acquire/release.  Not for direct use.
void on_acquire(const void* instance, const char* name);
void on_release(const void* instance);

}  // namespace lockorder

/// Annotated exclusive mutex.  Construct with a static-duration name (a
/// string literal) to opt into the lock-order graph; the name is the graph
/// node, so give each lock *class* a unique one ("serve.server.inflight").
class JPS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  explicit Mutex(const char* name) : name_(name) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() JPS_ACQUIRE() {
    m_.lock();
    lockorder::on_acquire(this, name_);
  }
  void unlock() JPS_RELEASE() {
    lockorder::on_release(this);
    m_.unlock();
  }
  bool try_lock() JPS_TRY_ACQUIRE(true) {
    if (!m_.try_lock()) return false;
    lockorder::on_acquire(this, name_);
    return true;
  }
  const char* name() const { return name_; }

 private:
  std::mutex m_;
  const char* name_ = nullptr;
};

/// Annotated reader/writer mutex.  Shared acquisitions participate in the
/// order graph exactly like exclusive ones (a shared hold still blocks
/// writers, so it deadlocks the same way).
class JPS_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  explicit SharedMutex(const char* name) : name_(name) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() JPS_ACQUIRE() {
    m_.lock();
    lockorder::on_acquire(this, name_);
  }
  void unlock() JPS_RELEASE() {
    lockorder::on_release(this);
    m_.unlock();
  }
  void lock_shared() JPS_ACQUIRE_SHARED() {
    m_.lock_shared();
    lockorder::on_acquire(this, name_);
  }
  void unlock_shared() JPS_RELEASE_SHARED() {
    lockorder::on_release(this);
    m_.unlock_shared();
  }
  const char* name() const { return name_; }

 private:
  std::shared_mutex m_;
  const char* name_ = nullptr;
};

/// RAII exclusive lock over Mutex or SharedMutex (writer side).  Exposes
/// lock()/unlock() so CondVar can wait on it (BasicLockable) and so code
/// can drop the lock mid-scope; the destructor releases only if held.
class JPS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) JPS_ACQUIRE(mutex)
      : mutex_(&mutex), shared_type_(nullptr) {
    mutex_->lock();
    held_ = true;
  }
  explicit MutexLock(SharedMutex& mutex) JPS_ACQUIRE(mutex)
      : mutex_(nullptr), shared_type_(&mutex) {
    shared_type_->lock();
    held_ = true;
  }
  ~MutexLock() JPS_RELEASE() {
    if (held_) unlock_impl();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Re-acquires after unlock() (CondVar relock path).
  void lock() JPS_ACQUIRE() {
    if (mutex_ != nullptr) {
      mutex_->lock();
    } else {
      shared_type_->lock();
    }
    held_ = true;
  }
  /// Releases before scope end (e.g. to run a callback lock-free).
  void unlock() JPS_RELEASE() {
    unlock_impl();
    held_ = false;
  }
  bool owns_lock() const { return held_; }

 private:
  void unlock_impl() {
    if (mutex_ != nullptr) {
      mutex_->unlock();
    } else {
      shared_type_->unlock();
    }
  }

  Mutex* mutex_;
  SharedMutex* shared_type_;
  bool held_ = false;
};

/// RAII shared (reader) lock over SharedMutex.
class JPS_SCOPED_CAPABILITY SharedLock {
 public:
  explicit SharedLock(SharedMutex& mutex) JPS_ACQUIRE_SHARED(mutex)
      : mutex_(&mutex) {
    mutex_->lock_shared();
    held_ = true;
  }
  ~SharedLock() JPS_RELEASE() {
    if (held_) mutex_->unlock_shared();
  }
  SharedLock(const SharedLock&) = delete;
  SharedLock& operator=(const SharedLock&) = delete;

  void unlock() JPS_RELEASE() {
    mutex_->unlock_shared();
    held_ = false;
  }
  bool owns_lock() const { return held_; }

 private:
  SharedMutex* mutex_;
  bool held_ = false;
};

/// Condition variable waiting on MutexLock.  Prefer explicit predicate
/// loops (`while (!cond) cv.wait(lock);`) over predicate lambdas: the
/// loop body is analysed with the lock held, a lambda is not, so guarded
/// fields in a lambda predicate trip -Wthread-safety.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(MutexLock& lock) { cv_.wait(lock); }

  template <class Clock, class Duration>
  std::cv_status wait_until(
      MutexLock& lock, const std::chrono::time_point<Clock, Duration>& tp) {
    return cv_.wait_until(lock, tp);
  }

  template <class Rep, class Period>
  std::cv_status wait_for(MutexLock& lock,
                          const std::chrono::duration<Rep, Period>& d) {
    return cv_.wait_for(lock, d);
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace jps::util
