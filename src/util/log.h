// Leveled logging to stderr.  Benches default to Info; tests silence to Warn.
#pragma once

#include <sstream>
#include <string>

namespace jps::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Set the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);

/// Current global threshold.
[[nodiscard]] LogLevel log_level();

/// Emit one line at `level` (thread-safe; single write per line).
void log_line(LogLevel level, const std::string& message);

namespace detail {
/// Stream-style builder that emits on destruction.
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, os_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace jps::util

#define JPS_LOG_DEBUG ::jps::util::detail::LogStream(::jps::util::LogLevel::kDebug)
#define JPS_LOG_INFO ::jps::util::detail::LogStream(::jps::util::LogLevel::kInfo)
#define JPS_LOG_WARN ::jps::util::detail::LogStream(::jps::util::LogLevel::kWarn)
#define JPS_LOG_ERROR ::jps::util::detail::LogStream(::jps::util::LogLevel::kError)
