// Leveled logging to stderr.  Benches default to Info; tests silence to Warn.
//
// The threshold can be set from the environment: JPS_LOG=debug|info|warn|error
// is applied once at process start (and on demand via
// apply_log_level_from_env()); set_log_level() overrides it.
//
// Lines may carry an optional structured suffix of key=value fields:
//
//   log_line(LogLevel::kInfo, "replanned", {{"jobs", 12}, {"ms", 3.25}});
//   // [jps INFO ] replanned jobs=12 ms=3.25
//
// Values containing spaces, '=', or quotes are double-quoted with inner
// quotes and backslashes escaped, so the suffix stays machine-splittable.
#pragma once

#include <initializer_list>
#include <sstream>
#include <string>

namespace jps::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Set the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);

/// Current global threshold.
[[nodiscard]] LogLevel log_level();

/// Parse "debug"/"info"/"warn"/"error" (case-insensitive).  Unknown or null
/// input returns `fallback`.
[[nodiscard]] LogLevel parse_log_level(const char* text,
                                       LogLevel fallback = LogLevel::kInfo);

/// Re-read JPS_LOG and apply it if set.  Called once automatically before
/// the first log line; exposed so tests (and long-lived tools) can re-apply
/// after changing the environment.
void apply_log_level_from_env();

/// One key=value field attached to a log line.  The converting constructors
/// cover the value types the repo logs (counts, durations, names).
struct LogField {
  LogField(std::string k, std::string v)
      : key(std::move(k)), value(std::move(v)) {}
  LogField(std::string k, const char* v) : key(std::move(k)), value(v) {}
  LogField(std::string k, double v);
  LogField(std::string k, long long v);
  LogField(std::string k, unsigned long long v);
  LogField(std::string k, int v) : LogField(std::move(k), static_cast<long long>(v)) {}
  LogField(std::string k, std::size_t v)
      : LogField(std::move(k), static_cast<unsigned long long>(v)) {}
  LogField(std::string k, bool v)
      : key(std::move(k)), value(v ? "true" : "false") {}

  std::string key;
  std::string value;
};

/// Render fields as " k1=v1 k2=v2" (leading space; empty list -> empty
/// string), quoting values that contain spaces, '=', or quotes.
[[nodiscard]] std::string format_fields(std::initializer_list<LogField> fields);

/// Emit one line at `level` (thread-safe; single write per line).
void log_line(LogLevel level, const std::string& message);

/// Emit one line at `level` with a key=value field suffix.
void log_line(LogLevel level, const std::string& message,
              std::initializer_list<LogField> fields);

namespace detail {
/// Stream-style builder that emits on destruction.
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, os_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace jps::util

#define JPS_LOG_DEBUG ::jps::util::detail::LogStream(::jps::util::LogLevel::kDebug)
#define JPS_LOG_INFO ::jps::util::detail::LogStream(::jps::util::LogLevel::kInfo)
#define JPS_LOG_WARN ::jps::util::detail::LogStream(::jps::util::LogLevel::kWarn)
#define JPS_LOG_ERROR ::jps::util::detail::LogStream(::jps::util::LogLevel::kError)
