#include "util/table.h"

#include <cassert>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace jps::util {

namespace {
constexpr const char* kSeparatorSentinel = "\x01--";
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  assert(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() <= header_.size());
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_separator() { rows_.push_back({kSeparatorSentinel}); }

std::size_t Table::row_count() const {
  std::size_t n = 0;
  for (const auto& r : rows_)
    if (r[0] != kSeparatorSentinel) ++n;
  return n;
}

std::string Table::str() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    if (row[0] == kSeparatorSentinel) continue;
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  }

  std::ostringstream os;
  auto print_rule = [&] {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto print_cells = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c)
      os << ' ' << std::left << std::setw(static_cast<int>(widths[c])) << cells[c]
         << " |";
    os << '\n';
  };

  print_rule();
  print_cells(header_);
  print_rule();
  for (const auto& row : rows_) {
    if (row[0] == kSeparatorSentinel) {
      print_rule();
    } else {
      print_cells(row);
    }
  }
  print_rule();
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Table& t) { return os << t.str(); }

std::string format_ms(double ms) {
  std::ostringstream os;
  if (ms >= 100.0) {
    os << std::fixed << std::setprecision(1) << ms;
  } else if (ms >= 1.0) {
    os << std::fixed << std::setprecision(2) << ms;
  } else {
    os << std::fixed << std::setprecision(4) << ms;
  }
  return os.str();
}

std::string format_bytes(std::uint64_t bytes) {
  constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 3) {
    v /= 1024.0;
    ++unit;
  }
  std::ostringstream os;
  os << std::fixed << std::setprecision(unit == 0 ? 0 : 1) << v << ' '
     << kUnits[unit];
  return os.str();
}

std::string format_pct(double ratio) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1) << ratio * 100.0 << '%';
  return os.str();
}

std::string format_fixed(double value, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << value;
  return os.str();
}

}  // namespace jps::util
