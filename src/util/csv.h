// Minimal CSV writer.  Benches optionally dump their series here so figures
// can be re-plotted outside the repo; values are RFC-4180 quoted when needed.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace jps::util {

/// Streaming CSV writer bound to a file path.  The file is truncated on
/// construction and flushed on destruction.
class CsvWriter {
 public:
  /// Open `path` for writing and emit the header row.
  /// Throws std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Append one row of already-formatted cells.
  void add_row(const std::vector<std::string>& cells);

  /// Append one row of doubles (formatted with max precision).
  void add_row(const std::vector<double>& values);

  /// Number of data rows written.
  [[nodiscard]] std::size_t rows_written() const { return rows_; }

 private:
  void write_row(const std::vector<std::string>& cells);

  std::ofstream out_;
  std::size_t columns_;
  std::size_t rows_ = 0;
};

/// Quote a single cell per RFC 4180 if it contains a comma, quote or newline.
[[nodiscard]] std::string csv_escape(const std::string& cell);

}  // namespace jps::util
