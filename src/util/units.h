// Unit-safe helpers for the quantities that flow through the whole library.
//
// Conventions used everywhere in jps::
//   * time        -> double, milliseconds
//   * data size   -> std::uint64_t, bytes
//   * bandwidth   -> double, megabits per second (Mbps), converted here
//   * compute     -> double, FLOPs (multiply-accumulate counted as 2 FLOPs)
#pragma once

#include <cstdint>

namespace jps::util {

/// Bits per byte; named to avoid magic numbers in conversions.
inline constexpr double kBitsPerByte = 8.0;

/// One megabit in bits (network convention: 10^6, not 2^20).
inline constexpr double kBitsPerMegabit = 1e6;

/// Milliseconds in one second.
inline constexpr double kMsPerSecond = 1e3;

/// Convert a bandwidth in Mbps to bytes per millisecond.
[[nodiscard]] constexpr double mbps_to_bytes_per_ms(double mbps) {
  return mbps * kBitsPerMegabit / kBitsPerByte / kMsPerSecond;
}

/// Time in milliseconds to push `bytes` through a link of `mbps` megabits/s.
/// Pure serialization delay; propagation/setup latency is handled by the
/// channel model (jps::net::Channel), not here.
[[nodiscard]] constexpr double transfer_time_ms(std::uint64_t bytes, double mbps) {
  return static_cast<double>(bytes) / mbps_to_bytes_per_ms(mbps);
}

/// Convert kibibytes to bytes (tensor sizes are often quoted in KiB).
[[nodiscard]] constexpr std::uint64_t kib(std::uint64_t n) { return n * 1024ull; }

/// Convert mebibytes to bytes.
[[nodiscard]] constexpr std::uint64_t mib(std::uint64_t n) { return n * 1024ull * 1024ull; }

/// Giga-FLOPs to FLOPs.
[[nodiscard]] constexpr double gflops(double n) { return n * 1e9; }

}  // namespace jps::util
