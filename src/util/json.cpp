#include "util/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <optional>

#include "util/strings.h"

namespace jps::util {

namespace {

// Recursive-descent parser over a borrowed string.  Position is tracked for
// error offsets; depth is tracked to enforce Json::kMaxDepth.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json run() {
    Json value = parse_value(0);
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw JsonParseError(message, pos_);
  }

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  char next() {
    if (eof()) fail("unexpected end of input");
    return text_[pos_++];
  }

  void skip_whitespace() {
    while (!eof()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  void expect_literal(const char* literal) {
    for (const char* p = literal; *p != '\0'; ++p) {
      if (eof() || peek() != *p)
        fail(std::string("expected literal '") + literal + "'");
      ++pos_;
    }
  }

  Json parse_value(std::size_t depth) {
    if (depth > Json::kMaxDepth) fail("nesting too deep");
    skip_whitespace();
    if (eof()) fail("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return Json(parse_string());
      case 't': expect_literal("true"); return Json(true);
      case 'f': expect_literal("false"); return Json(false);
      case 'n': expect_literal("null"); return Json();
      default: return parse_number();
    }
  }

  Json parse_object(std::size_t depth) {
    next();  // '{'
    Json object = Json::object();
    skip_whitespace();
    if (!eof() && peek() == '}') {
      ++pos_;
      return object;
    }
    while (true) {
      skip_whitespace();
      if (eof() || peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      skip_whitespace();
      if (next() != ':') fail("expected ':' after object key");
      object.set(key, parse_value(depth + 1));
      skip_whitespace();
      const char c = next();
      if (c == '}') return object;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Json parse_array(std::size_t depth) {
    next();  // '['
    Json array = Json::array();
    skip_whitespace();
    if (!eof() && peek() == ']') {
      ++pos_;
      return array;
    }
    while (true) {
      array.push_back(parse_value(depth + 1));
      skip_whitespace();
      const char c = next();
      if (c == ']') return array;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    next();  // '"'
    std::string out;
    while (true) {
      const char c = next();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("unescaped control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = next();
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_codepoint(out); break;
        default: fail("invalid escape sequence");
      }
    }
  }

  unsigned parse_hex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = next();
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape");
      }
    }
    return value;
  }

  void append_codepoint(std::string& out) {
    unsigned cp = parse_hex4();
    if (cp >= 0xD800 && cp <= 0xDBFF) {
      // High surrogate: a low surrogate must follow.
      if (eof() || next() != '\\' || eof() || next() != 'u')
        fail("unpaired surrogate");
      const unsigned lo = parse_hex4();
      if (lo < 0xDC00 || lo > 0xDFFF) fail("invalid low surrogate");
      cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      fail("unpaired surrogate");
    }
    // UTF-8 encode.
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
      fail("invalid number");
    // Leading zero may not be followed by more digits.
    if (peek() == '0') {
      ++pos_;
      if (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
        fail("leading zero in number");
    } else {
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
        fail("digit required after decimal point");
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
        fail("digit required in exponent");
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    // parse_double is locale-independent; strtod would read the token under
    // the global locale, where a comma-decimal environment (de_DE) rejects
    // the '.' this grammar just validated.
    const std::optional<double> value = parse_double(token);
    if (!value) fail("invalid number");
    return Json(*value);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_number(std::string& out, double value) {
  if (!std::isfinite(value)) {
    // JSON has no Inf/NaN; null is the conventional lossy stand-in.
    out += "null";
    return;
  }
#if defined(__cpp_lib_to_chars)
  // to_chars emits the shortest round-tripping form and, unlike snprintf's
  // %g, never consults LC_NUMERIC — a comma-decimal locale would otherwise
  // serialize 3.5 as "3,5", which is not JSON.
  char buf[40];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec == std::errc()) {
    out.append(buf, ptr);
    return;
  }
#endif
  char fallback[40];
  std::snprintf(fallback, sizeof(fallback), "%.17g", value);
  out += fallback;
}

void append_indent(std::string& out, int indent, int depth) {
  out.push_back('\n');
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth),
             ' ');
}

}  // namespace

Json Json::parse(const std::string& text) { return Parser(text).run(); }

void Json::require(Type type, const char* what) const {
  if (type_ != type)
    throw std::runtime_error(std::string("Json: not a ") + what);
}

bool Json::as_bool() const {
  require(Type::kBool, "bool");
  return bool_;
}

double Json::as_double() const {
  require(Type::kNumber, "number");
  return number_;
}

const std::string& Json::as_string() const {
  require(Type::kString, "string");
  return string_;
}

std::size_t Json::size() const {
  if (type_ == Type::kObject) return object_.size();
  require(Type::kArray, "array");
  return array_.size();
}

const Json& Json::at(std::size_t index) const {
  require(Type::kArray, "array");
  if (index >= array_.size()) throw std::out_of_range("Json: array index");
  return array_[index];
}

void Json::push_back(Json value) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  require(Type::kArray, "array");
  array_.push_back(std::move(value));
}

bool Json::contains(const std::string& key) const {
  return get(key) != nullptr;
}

const Json* Json::get(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(const std::string& key) const {
  require(Type::kObject, "object");
  const Json* found = get(key);
  if (found == nullptr) throw std::out_of_range("Json: missing key '" + key + "'");
  return *found;
}

void Json::set(const std::string& key, Json value) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  require(Type::kObject, "object");
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  object_.emplace_back(key, std::move(value));
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  require(Type::kObject, "object");
  return object_;
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  if (indent > 0) out.push_back('\n');
  return out;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull: out += "null"; return;
    case Type::kBool: out += bool_ ? "true" : "false"; return;
    case Type::kNumber: append_number(out, number_); return;
    case Type::kString: append_escaped(out, string_); return;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        return;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out.push_back(',');
        if (indent > 0) append_indent(out, indent, depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      if (indent > 0) append_indent(out, indent, depth);
      out.push_back(']');
      return;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        return;
      }
      out.push_back('{');
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out.push_back(',');
        if (indent > 0) append_indent(out, indent, depth + 1);
        append_escaped(out, object_[i].first);
        out.push_back(':');
        if (indent > 0) out.push_back(' ');
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      if (indent > 0) append_indent(out, indent, depth);
      out.push_back('}');
      return;
    }
  }
}

}  // namespace jps::util
