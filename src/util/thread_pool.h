// Shared worker pool with a parallel_for helper.
//
// The heavy loops in this repo — brute-force partition search (Fig. 11),
// bandwidth sweeps (Fig. 13), Monte-Carlo simulator validation, and the
// numeric runtime kernels — are embarrassingly parallel over independent
// work items.  Historically every parallel_for call spawned and joined a
// fresh std::thread team; under request-serving load (many plan/simulate
// calls per second) that thread churn dominates small campaigns.  All
// parallel loops now dispatch through one lazily created process-wide pool
// (global_pool()), and the calling thread works alongside the pool so a
// busy pool can never deadlock a caller.
//
// Sizing: JPS_THREADS environment variable if set (a positive integer),
// else std::thread::hardware_concurrency().  A parallel_for call may also
// cap its own concurrency via the `threads` argument.
//
// Nested-call safety: a parallel_for issued from inside a pool worker (or
// from inside another parallel_for body) runs inline on the calling thread.
// Blocking a worker on sub-tasks could otherwise exhaust the pool and
// deadlock; inline execution keeps the semantics and stays deterministic.
#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

#include "obs/trace_context.h"
#include "util/mutex.h"

namespace jps::util {

/// A joinable fixed-size worker pool.  Tasks may be any move-constructible
/// nullary callables (submit() type-erases them, so value-returning and
/// move-only tasks both work).  Destruction drains the queue and joins all
/// workers (RAII; never detaches).
class ThreadPool {
 public:
  /// Start `threads` workers (defaults to hardware_concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Finish queued tasks and join (equivalent to shutdown()).
  ~ThreadPool();

  /// Begin an orderly stop: no new tasks are accepted, every task already
  /// queued still runs, and all workers are joined before returning.
  /// Idempotent and safe to call from several threads.  The moment
  /// shutdown() (or the destructor) has set the pool stopping, submit()
  /// throws std::runtime_error deterministically instead of racing the
  /// worker teardown — the contract jps_serve's drain path relies on: stop
  /// admitting, shutdown() the pool, and every admitted request is
  /// guaranteed to have produced its reply future.
  void shutdown();

  /// False once shutdown has begun (submit() would throw).
  [[nodiscard]] bool accepting() const;

  /// Enqueue a callable; returns a future for its result.  Exceptions
  /// thrown by the task are captured and rethrown by future::get().
  /// Throws std::runtime_error if shutdown has begun.
  ///
  /// The submitter's obs::TraceContext is captured and reinstalled around
  /// the task on the worker, so spans opened inside the task join the
  /// submitting request's causal tree even though they run on another
  /// thread.
  template <typename F>
  [[nodiscard]] auto submit(F&& task)
      -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    std::packaged_task<R()> packaged(
        [context = obs::TraceContext::current(),
         fn = std::forward<F>(task)]() mutable -> R {
          obs::TraceScope scope(context);
          return fn();
        });
    std::future<R> fut = packaged.get_future();
    enqueue(Task(std::move(packaged)));
    return fut;
  }

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// True when the calling thread is a worker of *any* ThreadPool.  Used by
  /// parallel_for to run nested parallel regions inline instead of blocking
  /// a worker on the pool it would need for progress.
  [[nodiscard]] static bool on_worker_thread();

 private:
  /// Move-only type-erased nullary task (std::function requires copyable
  /// targets, which std::packaged_task is not).
  class Task {
   public:
    Task() = default;
    template <typename F>
    explicit Task(F&& f)
        : impl_(std::make_unique<Impl<std::decay_t<F>>>(std::forward<F>(f))) {}
    void operator()() { impl_->run(); }
    [[nodiscard]] explicit operator bool() const { return impl_ != nullptr; }

   private:
    struct Base {
      virtual ~Base() = default;
      virtual void run() = 0;
    };
    template <typename F>
    struct Impl final : Base {
      explicit Impl(F f) : fn(std::move(f)) {}
      void run() override { fn(); }
      F fn;
    };
    std::unique_ptr<Base> impl_;
  };

  void enqueue(Task task);
  void worker_loop(std::size_t index);

  /// Written only by the constructor (before any concurrent access) and
  /// joined under join_mutex_; size() reads the count set at construction.
  std::vector<std::thread> workers_;
  mutable Mutex mutex_{"util.thread_pool.queue"};
  std::queue<Task> queue_ JPS_GUARDED_BY(mutex_);
  CondVar cv_;
  bool stopping_ JPS_GUARDED_BY(mutex_) = false;
  /// Serializes the join loop so concurrent shutdown() calls cannot both
  /// join the same worker.
  Mutex join_mutex_{"util.thread_pool.join"};
};

/// The number of threads parallel loops use by default: JPS_THREADS when the
/// environment variable holds a positive integer, else hardware_concurrency
/// (min 1).  Read once and cached for the process lifetime.
[[nodiscard]] std::size_t default_thread_count();

/// The process-wide shared pool, created on first use with
/// default_thread_count() workers.  Lives until process exit.
[[nodiscard]] ThreadPool& global_pool();

/// Run body(i) for i in [0, count) using static block decomposition, with
/// chunks dispatched through global_pool(); the calling thread executes
/// chunks too, so progress never depends on pool availability.  Blocks until
/// all iterations finish.  Exceptions in the body propagate to the caller
/// (first one recorded wins; remaining chunks are abandoned).
/// `threads` caps the concurrency of this call (0 = default_thread_count()).
/// With threads <= 1, small counts, or when called from a pool worker or a
/// nested parallel region, runs inline with zero dispatch overhead.
void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body,
                  std::size_t threads = 0);

}  // namespace jps::util
