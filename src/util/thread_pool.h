// Fixed-size thread pool with a parallel_for helper.
//
// The heavy loops in this repo — brute-force partition search (Fig. 11),
// bandwidth sweeps (Fig. 13), and Monte-Carlo simulator validation — are
// embarrassingly parallel over independent work items, so a simple static
// block decomposition (the OpenMP "schedule(static)" idiom) is enough.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace jps::util {

/// A joinable fixed-size worker pool.  Tasks are std::function<void()>.
/// Destruction drains the queue and joins all workers (RAII; never detaches).
class ThreadPool {
 public:
  /// Start `threads` workers (defaults to hardware_concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Finish queued tasks and join.
  ~ThreadPool();

  /// Enqueue a task; returns a future for its completion.
  std::future<void> submit(std::function<void()> task);

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Run body(i) for i in [0, count) across `threads` workers using static
/// block decomposition.  Blocks until all iterations finish.  Exceptions in
/// the body propagate to the caller (first one wins).
/// With threads <= 1 or count small, runs inline with zero overhead.
void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body,
                  std::size_t threads = 0);

}  // namespace jps::util
