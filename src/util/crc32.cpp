#include "util/crc32.h"

#include <array>

namespace jps::util {

namespace {

// Reflected table for polynomial 0xEDB88320, built once at first use.
const std::array<std::uint32_t, 256>& table() {
  static const std::array<std::uint32_t, 256> t = [] {
    std::array<std::uint32_t, 256> out{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit)
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      out[i] = c;
    }
    return out;
  }();
  return t;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i)
    crc = table()[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

std::uint32_t crc32(std::string_view data, std::uint32_t seed) {
  return crc32(data.data(), data.size(), seed);
}

}  // namespace jps::util
