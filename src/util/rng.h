// Deterministic random-number helper.  All stochastic components of the
// library (profiler measurement noise, channel jitter, workload generators)
// take an explicit Rng so experiments are reproducible from a seed printed in
// the harness output.
#pragma once

#include <cstdint>
#include <random>

namespace jps::util {

/// Thin wrapper over std::mt19937_64 with the distributions we need.
/// Copyable; copies continue the same stream independently.
class Rng {
 public:
  /// Seed the generator. The default seed is arbitrary but fixed.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Normal with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double sd) {
    return std::normal_distribution<double>(mean, sd)(engine_);
  }

  /// Multiplicative log-normal noise factor with median 1.  `sigma` is the
  /// standard deviation of the underlying normal; sigma = 0 returns exactly 1.
  [[nodiscard]] double lognormal_factor(double sigma) {
    if (sigma <= 0.0) return 1.0;
    return std::exp(std::normal_distribution<double>(0.0, sigma)(engine_));
  }

  /// Bernoulli trial with probability p of true.
  [[nodiscard]] bool chance(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Access the raw engine (for std::shuffle and custom distributions).
  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace jps::util
