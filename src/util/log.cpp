#include "util/log.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "util/mutex.h"

namespace jps::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
Mutex g_io_mutex("util.log.io");

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?????";
}

std::string lower(const char* text) {
  std::string out;
  for (const char* p = text; *p != '\0'; ++p)
    out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(*p))));
  return out;
}

// JPS_LOG is applied exactly once before the first line is emitted, so a
// process that never calls apply_log_level_from_env() still honours it.
void ensure_env_applied() {
  static const bool applied = [] {
    apply_log_level_from_env();
    return true;
  }();
  (void)applied;
}

bool needs_quoting(const std::string& value) {
  if (value.empty()) return true;
  for (const char c : value) {
    if (c == ' ' || c == '=' || c == '"' || c == '\\') return true;
  }
  return false;
}

void append_value(std::string& out, const std::string& value) {
  if (!needs_quoting(value)) {
    out += value;
    return;
  }
  out.push_back('"');
  for (const char c : value) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

LogLevel parse_log_level(const char* text, LogLevel fallback) {
  if (text == nullptr) return fallback;
  const std::string name = lower(text);
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn" || name == "warning") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  return fallback;
}

void apply_log_level_from_env() {
  const char* env = std::getenv("JPS_LOG");
  if (env == nullptr) return;
  g_level.store(parse_log_level(env, g_level.load()));
}

LogField::LogField(std::string k, double v) : key(std::move(k)) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%g", v);
  value = buf;
}

LogField::LogField(std::string k, long long v)
    : key(std::move(k)), value(std::to_string(v)) {}

LogField::LogField(std::string k, unsigned long long v)
    : key(std::move(k)), value(std::to_string(v)) {}

std::string format_fields(std::initializer_list<LogField> fields) {
  std::string out;
  for (const LogField& field : fields) {
    out.push_back(' ');
    out += field.key;
    out.push_back('=');
    append_value(out, field.value);
  }
  return out;
}

void log_line(LogLevel level, const std::string& message) {
  ensure_env_applied();
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  MutexLock lock(g_io_mutex);
  std::cerr << "[jps " << level_tag(level) << "] " << message << '\n';
}

void log_line(LogLevel level, const std::string& message,
              std::initializer_list<LogField> fields) {
  log_line(level, message + format_fields(fields));
}

}  // namespace jps::util
