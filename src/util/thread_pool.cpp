#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <string>

#include "obs/metrics.h"
#include "obs/obs.h"

namespace jps::util {

namespace {

// Set while a thread runs inside a ThreadPool::worker_loop.
thread_local bool tl_pool_worker = false;
// Depth of parallel_for bodies executing on this thread (workers and the
// caller both count); nested parallel regions run inline.
thread_local int tl_parallel_depth = 0;

struct ParallelRegionGuard {
  ParallelRegionGuard() { ++tl_parallel_depth; }
  ~ParallelRegionGuard() { --tl_parallel_depth; }
};

// Live pool telemetry: tasks waiting in the queue, and how long each task
// ran once popped (both feed `--metrics-out` exposition).
obs::Gauge& queue_depth_gauge() {
  static obs::Gauge& g = obs::gauge("thread_pool.queue_depth");
  return g;
}
obs::Histogram& task_histogram() {
  static obs::Histogram& h = obs::histogram("thread_pool.task_ms");
  return h;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  MutexLock join_lock(join_mutex_);
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

bool ThreadPool::accepting() const {
  MutexLock lock(mutex_);
  return !stopping_;
}

bool ThreadPool::on_worker_thread() { return tl_pool_worker; }

void ThreadPool::enqueue(Task task) {
  {
    MutexLock lock(mutex_);
    if (stopping_) {
      // Rejecting here (under the queue lock) is what makes the contract
      // deterministic: a task is either enqueued before shutdown drains the
      // queue — and therefore runs — or it is refused.  Silently enqueueing
      // would leave a future that never becomes ready once the workers are
      // gone.
      throw std::runtime_error("ThreadPool: submit after shutdown");
    }
    queue_.push(std::move(task));
    queue_depth_gauge().set(static_cast<double>(queue_.size()));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop(std::size_t index) {
  tl_pool_worker = true;
  obs::Registry::global().set_thread_name("pool-worker-" +
                                          std::to_string(index));
  while (true) {
    Task task;
    {
      MutexLock lock(mutex_);
      // Explicit loop instead of a predicate lambda: the analysis proves
      // the lock held for these guarded reads, which it cannot inside a
      // lambda body.
      while (!stopping_ && queue_.empty()) cv_.wait(lock);
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
      queue_depth_gauge().set(static_cast<double>(queue_.size()));
    }
    {
      obs::ScopedTimer timer(task_histogram());
      task();  // exceptions are captured in the task's promise
    }
    static obs::Counter& tasks = obs::counter("thread_pool.tasks");
    tasks.add();
  }
}

std::size_t default_thread_count() {
  static const std::size_t cached = [] {
    if (const char* env = std::getenv("JPS_THREADS")) {
      char* end = nullptr;
      const long parsed = std::strtol(env, &end, 10);
      if (end != env && *end == '\0' && parsed > 0)
        return static_cast<std::size_t>(parsed);
    }
    return std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }();
  return cached;
}

ThreadPool& global_pool() {
  static ThreadPool pool(default_thread_count());
  return pool;
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body,
                  std::size_t threads) {
  if (count == 0) return;
  if (threads == 0) threads = default_thread_count();
  threads = std::min(threads, count);

  // Small trip counts are not worth a dispatch; nested regions and pool
  // workers must not block on the pool they are part of.
  if (threads <= 1 || count < 4 || ThreadPool::on_worker_thread() ||
      tl_parallel_depth > 0) {
    static obs::Counter& inline_calls =
        obs::counter("thread_pool.parallel_for.inline");
    inline_calls.add();
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  static obs::Counter& pooled_calls =
      obs::counter("thread_pool.parallel_for.pooled");
  pooled_calls.add();
  obs::Span span("parallel_for", "util");
  span.arg("count", std::to_string(count));
  span.arg("threads", std::to_string(threads));

  // Static block decomposition: block b owns [b*chunk, min((b+1)*chunk, n)).
  // Blocks are claimed from a shared counter by the caller and up to
  // blocks-1 pool helpers, so the caller always makes progress even when
  // every pool worker is busy elsewhere.
  const std::size_t chunk = (count + threads - 1) / threads;
  const std::size_t blocks = (count + chunk - 1) / chunk;
  std::atomic<std::size_t> next_block{0};
  std::atomic<bool> failed{false};
  Mutex err_mutex("util.parallel_for.error");
  std::exception_ptr first_error;

  const auto drain = [&] {
    ParallelRegionGuard region;
    for (std::size_t b = next_block.fetch_add(1); b < blocks;
         b = next_block.fetch_add(1)) {
      if (failed.load(std::memory_order_relaxed)) return;
      const std::size_t begin = b * chunk;
      const std::size_t end = std::min(count, begin + chunk);
      try {
        for (std::size_t i = begin; i < end; ++i) body(i);
      } catch (...) {
        MutexLock lock(err_mutex);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  ThreadPool& pool = global_pool();
  std::vector<std::future<void>> helpers;
  const std::size_t helper_count = std::min(blocks - 1, pool.size());
  helpers.reserve(helper_count);
  for (std::size_t h = 0; h < helper_count; ++h)
    helpers.push_back(pool.submit(drain));
  drain();  // the caller participates
  for (auto& f : helpers) f.get();  // synchronize; drain never throws
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace jps::util
