#include "util/thread_pool.h"

#include <algorithm>
#include <exception>

namespace jps::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> fut = packaged.get_future();
  {
    std::lock_guard lock(mutex_);
    queue_.push(std::move(packaged));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::worker_loop() {
  while (true) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // exceptions are captured in the packaged_task's future
  }
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body,
                  std::size_t threads) {
  if (count == 0) return;
  if (threads == 0)
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  threads = std::min(threads, count);

  // Small trip counts are not worth thread start/wake costs.
  if (threads <= 1 || count < 4) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  std::vector<std::thread> team;
  team.reserve(threads);
  std::mutex err_mutex;
  std::exception_ptr first_error;

  // Static block decomposition: worker t owns [t*chunk, min((t+1)*chunk, n)).
  const std::size_t chunk = (count + threads - 1) / threads;
  for (std::size_t t = 0; t < threads; ++t) {
    const std::size_t begin = t * chunk;
    const std::size_t end = std::min(count, begin + chunk);
    if (begin >= end) break;
    team.emplace_back([&, begin, end] {
      try {
        for (std::size_t i = begin; i < end; ++i) body(i);
      } catch (...) {
        std::lock_guard lock(err_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& th : team) th.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace jps::util
