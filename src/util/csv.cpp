#include "util/csv.h"

#include <sstream>
#include <stdexcept>

namespace jps::util {

std::string csv_escape(const std::string& cell) {
  const bool needs_quote = cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), columns_(header.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  write_row(header);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  if (cells.size() != columns_)
    throw std::runtime_error("CsvWriter: row width mismatch");
  write_row(cells);
  ++rows_;
}

void CsvWriter::add_row(const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) {
    std::ostringstream os;
    os.precision(12);
    os << v;
    cells.push_back(os.str());
  }
  add_row(cells);
}

}  // namespace jps::util
