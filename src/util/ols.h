// Ordinary least squares fits used by the latency estimators.
//
// The paper (§6.1) estimates communication time with a simple linear
// regression t = w0 + w1 * (size / bandwidth), and observes (§3.2) that the
// local computation curve f is near-linear in the cut depth while the
// communication curve g is convex (near-exponential) decreasing.  The three
// fits below cover those cases:
//   * LinearFit       y = a + b x         (closed form OLS)
//   * ExponentialFit  y = c * exp(-d x)+e (log-space OLS with floor search)
#pragma once

#include <span>

namespace jps::util {

/// Result of a simple linear regression y = intercept + slope * x.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  /// Coefficient of determination of the fit on the training points.
  double r2 = 0.0;

  /// Evaluate the fitted line at x.
  [[nodiscard]] double operator()(double x) const { return intercept + slope * x; }
};

/// Closed-form OLS line fit. Requires xs.size() == ys.size(); with fewer than
/// two points the fit degenerates to a constant (slope 0).
[[nodiscard]] LinearFit fit_linear(std::span<const double> xs,
                                   std::span<const double> ys);

/// Result of fitting y = scale * exp(-decay * x) + floor.
/// Convex and decreasing for scale > 0, decay > 0 — exactly the shape the
/// paper assumes for the communication curve g.
struct ExponentialFit {
  double scale = 0.0;
  double decay = 0.0;
  double floor = 0.0;
  double r2 = 0.0;

  /// Evaluate the fitted curve at x.
  [[nodiscard]] double operator()(double x) const;
};

/// Fit y = scale*exp(-decay*x) + floor by scanning candidate floors and
/// solving the remaining two parameters in log space. All ys must be finite;
/// points with y <= floor candidate are clamped away from the log.
[[nodiscard]] ExponentialFit fit_exponential(std::span<const double> xs,
                                             std::span<const double> ys);

/// R^2 of arbitrary predictions against observations (1 - SS_res/SS_tot).
[[nodiscard]] double r_squared(std::span<const double> ys,
                               std::span<const double> predictions);

}  // namespace jps::util
