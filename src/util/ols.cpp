#include "util/ols.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

#include "util/stats.h"

namespace jps::util {

double r_squared(std::span<const double> ys, std::span<const double> predictions) {
  assert(ys.size() == predictions.size());
  if (ys.empty()) return 0.0;
  const double m = mean(ys);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < ys.size(); ++i) {
    ss_res += (ys[i] - predictions[i]) * (ys[i] - predictions[i]);
    ss_tot += (ys[i] - m) * (ys[i] - m);
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys) {
  assert(xs.size() == ys.size());
  LinearFit fit;
  const std::size_t n = xs.size();
  if (n == 0) return fit;
  if (n == 1) {
    fit.intercept = ys[0];
    fit.r2 = 1.0;
    return fit;
  }
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxx = 0.0;
  double sxy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sxx += (xs[i] - mx) * (xs[i] - mx);
    sxy += (xs[i] - mx) * (ys[i] - my);
  }
  if (sxx == 0.0) {
    fit.intercept = my;  // all x identical: best constant fit
  } else {
    fit.slope = sxy / sxx;
    fit.intercept = my - fit.slope * mx;
  }
  std::vector<double> pred(n);
  for (std::size_t i = 0; i < n; ++i) pred[i] = fit(xs[i]);
  fit.r2 = r_squared(ys, pred);
  return fit;
}

double ExponentialFit::operator()(double x) const {
  return scale * std::exp(-decay * x) + floor;
}

ExponentialFit fit_exponential(std::span<const double> xs,
                               std::span<const double> ys) {
  assert(xs.size() == ys.size());
  ExponentialFit best;
  const std::size_t n = xs.size();
  if (n == 0) return best;
  const double ymin = min(ys);
  double best_r2 = -std::numeric_limits<double>::infinity();

  // Scan candidate floors below the smallest observation; for each, the model
  // becomes log(y - floor) = log(scale) - decay * x, a plain line fit.
  constexpr int kFloorSteps = 64;
  for (int step = 0; step <= kFloorSteps; ++step) {
    const double floor =
        ymin * static_cast<double>(step) / static_cast<double>(kFloorSteps + 1);
    std::vector<double> lx;
    std::vector<double> ly;
    lx.reserve(n);
    ly.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double shifted = ys[i] - floor;
      if (shifted <= 0.0) continue;  // cannot take log; drop the point
      lx.push_back(xs[i]);
      ly.push_back(std::log(shifted));
    }
    if (lx.size() < 2) continue;
    const LinearFit line = fit_linear(lx, ly);
    ExponentialFit cand;
    cand.scale = std::exp(line.intercept);
    cand.decay = -line.slope;
    cand.floor = floor;
    std::vector<double> pred(n);
    for (std::size_t i = 0; i < n; ++i) pred[i] = cand(xs[i]);
    cand.r2 = r_squared(ys, pred);
    if (cand.r2 > best_r2) {
      best_r2 = cand.r2;
      best = cand;
    }
  }
  return best;
}

}  // namespace jps::util
