#include "util/mutex.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <vector>

namespace jps::util::lockorder {
namespace {

// One frame per lock currently held by this thread, oldest first.  Unlock
// order need not be LIFO (MutexLock::unlock() mid-scope, CondVar waits),
// so release searches from the top.
struct HeldFrame {
  const void* instance;
  const char* name;  // nullptr: excluded from the graph
};

std::vector<HeldFrame>& held_stack() {
  thread_local std::vector<HeldFrame> stack;
  return stack;
}

// The checker's own state is guarded by a RAW std::mutex on purpose: an
// instrumented lock here would recurse into the checker.  This is the one
// sanctioned raw mutex outside the wrappers (CI grep gate allowlists this
// file).
std::mutex g_graph_mutex;

// name -> set of names acquired while `name` was held.  Keyed by value so
// callers may pass non-literal (but static-duration) strings.
std::map<std::string, std::set<std::string>>& graph() {
  static auto* g = new std::map<std::string, std::set<std::string>>();
  return *g;
}

std::atomic<Mode> g_mode{Mode::kOff};
std::atomic<bool> g_mode_initialized{false};
std::atomic<std::uint64_t> g_violations{0};

std::function<void(const std::string&)>& report_hook() {
  static auto* hook = new std::function<void(const std::string&)>();
  return *hook;
}

Mode mode_from_env() {
  const char* env = std::getenv("JPS_LOCK_ORDER");
  if (env != nullptr) {
    const std::string value(env);
    if (value == "abort") return Mode::kAbort;
    if (value == "warn") return Mode::kWarn;
    if (value == "off") return Mode::kOff;
    std::fprintf(stderr,
                 "jps: ignoring unrecognised JPS_LOCK_ORDER=%s "
                 "(expected abort|warn|off)\n",
                 env);
  }
#if defined(NDEBUG)
  return Mode::kOff;
#else
  return Mode::kWarn;
#endif
}

Mode effective_mode() {
  if (!g_mode_initialized.load(std::memory_order_acquire)) {
    // Benign race: every thread computes the same env-derived value.
    g_mode.store(mode_from_env(), std::memory_order_relaxed);
    g_mode_initialized.store(true, std::memory_order_release);
  }
  return g_mode.load(std::memory_order_relaxed);
}

// Depth-first search for a path `from` ~> `to` in the current graph.
// Called with g_graph_mutex held; appends the path (from..to) to `path`
// when found.
bool find_path(const std::string& from, const std::string& to,
               std::set<std::string>& visited,
               std::vector<std::string>& path) {
  if (!visited.insert(from).second) return false;
  path.push_back(from);
  if (from == to) return true;
  auto it = graph().find(from);
  if (it != graph().end()) {
    for (const std::string& next : it->second) {
      if (find_path(next, to, visited, path)) return true;
    }
  }
  path.pop_back();
  return false;
}

// Emits one diagnostic.  Must be called with g_graph_mutex RELEASED: a
// report hook may itself acquire instrumented locks.
void report(Mode mode, const std::string& message) {
  g_violations.fetch_add(1, std::memory_order_relaxed);
  std::function<void(const std::string&)> hook;
  {
    std::lock_guard<std::mutex> lock(g_graph_mutex);
    hook = report_hook();
  }
  if (hook) {
    // A hook replaces printing AND aborting so tests can assert on
    // diagnostics from kAbort mode without dying.
    hook(message);
    return;
  }
  std::fprintf(stderr, "jps: %s\n", message.c_str());
  if (mode == Mode::kAbort) std::abort();
}

}  // namespace

Mode mode() { return effective_mode(); }

void set_mode(Mode mode) {
  g_mode.store(mode, std::memory_order_relaxed);
  g_mode_initialized.store(true, std::memory_order_release);
}

void set_report_hook(std::function<void(const std::string&)> hook) {
  std::lock_guard<std::mutex> lock(g_graph_mutex);
  report_hook() = std::move(hook);
}

void reset() {
  std::lock_guard<std::mutex> lock(g_graph_mutex);
  graph().clear();
}

std::uint64_t violations() {
  return g_violations.load(std::memory_order_relaxed);
}

void on_acquire(const void* instance, const char* name) {
  const Mode mode = effective_mode();
  if (mode == Mode::kOff) return;
  auto& held = held_stack();

  // Same-instance recursion deadlocks std::mutex outright (and recursive
  // lock_shared is UB); report before any graph work.
  for (const HeldFrame& frame : held) {
    if (frame.instance == instance) {
      const char* label = name != nullptr ? name : "<unnamed>";
      report(mode, std::string("lock-order: recursive acquisition of \"") +
                       label + "\" on the same thread");
      break;
    }
  }

  std::string diagnostic;
  if (name != nullptr) {
    std::lock_guard<std::mutex> lock(g_graph_mutex);
    for (const HeldFrame& frame : held) {
      if (frame.name == nullptr || frame.instance == instance) continue;
      const std::string held_name(frame.name);
      const std::string new_name(name);
      if (held_name == new_name) continue;  // same class: see header note
      auto& successors = graph()[held_name];
      if (successors.count(new_name) != 0) continue;  // edge already known
      // Inserting held->new closes a cycle iff new ~> held already exists.
      std::set<std::string> visited;
      std::vector<std::string> path;
      if (find_path(new_name, held_name, visited, path)) {
        diagnostic = "lock-order cycle: acquiring \"" + new_name +
                     "\" while holding \"" + held_name + "\", but ";
        for (const std::string& node : path) diagnostic += "\"" + node + "\" -> ";
        diagnostic += "\"" + new_name +
                      "\" was established earlier; potential deadlock";
        // Keep the contradictory edge out of the graph so the diagnostic
        // re-fires deterministically on every offending acquisition.
      } else {
        successors.insert(new_name);
      }
    }
  }
  held.push_back(HeldFrame{instance, name});
  if (!diagnostic.empty()) report(mode, diagnostic);
}

void on_release(const void* instance) {
  if (effective_mode() == Mode::kOff) return;
  auto& held = held_stack();
  for (auto it = held.rbegin(); it != held.rend(); ++it) {
    if (it->instance == instance) {
      held.erase(std::next(it).base());
      return;
    }
  }
  // Not found: the lock was acquired while the checker was off (mode
  // flipped mid-hold) — nothing to unwind.
}

}  // namespace jps::util::lockorder
