// Minimal JSON value + parser + writer.
//
// The repo emits JSON in several places (Chrome traces, metrics exposition,
// BENCH_*.json telemetry) but until now nothing could *read* it back —
// `jps_bench_diff` needs to load two BENCH files, and the format tests need
// to round-trip the exporters' output.  This is a deliberately small
// recursive-descent implementation of RFC 8259: no comments, no trailing
// commas, objects keep insertion order, numbers are doubles.
//
// Depth is bounded (kMaxDepth) so malformed input cannot blow the stack.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace jps::util {

/// Error thrown by Json::parse with a byte offset into the input.
class JsonParseError : public std::runtime_error {
 public:
  JsonParseError(const std::string& message, std::size_t offset)
      : std::runtime_error(message + " at offset " + std::to_string(offset)),
        offset_(offset) {}
  [[nodiscard]] std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

/// One JSON value.  Copyable; an object's members keep insertion order so
/// dump() round-trips files byte-stably modulo whitespace.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Nesting depth accepted by parse().
  static constexpr std::size_t kMaxDepth = 64;

  Json() = default;  // null
  Json(bool value) : type_(Type::kBool), bool_(value) {}  // NOLINT(runtime/explicit)
  Json(double value) : type_(Type::kNumber), number_(value) {}  // NOLINT
  Json(int value) : Json(static_cast<double>(value)) {}         // NOLINT
  Json(const char* value) : type_(Type::kString), string_(value) {}  // NOLINT
  Json(std::string value)                                            // NOLINT
      : type_(Type::kString), string_(std::move(value)) {}

  [[nodiscard]] static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  [[nodiscard]] static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  /// Parse `text` (the complete input must be one JSON value; trailing
  /// non-whitespace throws).  Throws JsonParseError on malformed input.
  [[nodiscard]] static Json parse(const std::string& text);

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw std::runtime_error on a type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;

  /// Array access.
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const Json& at(std::size_t index) const;
  void push_back(Json value);

  /// Object access.  `contains`/`get` never throw; `at` throws on a
  /// missing key.
  [[nodiscard]] bool contains(const std::string& key) const;
  [[nodiscard]] const Json* get(const std::string& key) const;
  [[nodiscard]] const Json& at(const std::string& key) const;
  void set(const std::string& key, Json value);
  /// Object members in insertion order.
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members()
      const;

  /// Serialize.  `indent` == 0 gives one compact line; > 0 pretty-prints
  /// with that many spaces per level.
  [[nodiscard]] std::string dump(int indent = 0) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;
  void require(Type type, const char* what) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

}  // namespace jps::util
