// ASCII table renderer for the benchmark harness.  Every figure/table bench
// prints its rows through this so the output format is uniform and diffable.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace jps::util {

/// Column-aligned ASCII table.  Usage:
///   Table t({"model", "LO (ms)", "JPS (ms)"});
///   t.add_row({"AlexNet", format_ms(lo), format_ms(jps)});
///   std::cout << t;
class Table {
 public:
  /// Construct with header labels; the column count is fixed from here on.
  explicit Table(std::vector<std::string> header);

  /// Append one row. Rows shorter than the header are padded with empty
  /// cells; longer rows are a programming error (asserted).
  void add_row(std::vector<std::string> cells);

  /// Append a horizontal separator line.
  void add_separator();

  /// Number of data rows added so far (separators excluded).
  [[nodiscard]] std::size_t row_count() const;

  /// Render to a string (also used by operator<<).
  [[nodiscard]] std::string str() const;

 private:
  std::vector<std::string> header_;
  // A row with the sentinel single cell "\x01--" renders as a separator.
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const Table& t);

/// Format a millisecond quantity with adaptive precision ("123.4", "0.012").
[[nodiscard]] std::string format_ms(double ms);

/// Format a byte count with binary units ("1.5 MiB").
[[nodiscard]] std::string format_bytes(std::uint64_t bytes);

/// Format a ratio as a percentage with one decimal ("42.1%").
[[nodiscard]] std::string format_pct(double ratio);

/// Fixed-precision double.
[[nodiscard]] std::string format_fixed(double value, int decimals);

}  // namespace jps::util
