#include "util/strings.h"

#include <algorithm>
#include <cctype>
#include <charconv>

#if !defined(__cpp_lib_to_chars)
#include <locale>
#include <sstream>
#endif

namespace jps::util {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view trim(std::string_view s) {
  const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  while (!s.empty() && is_space(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && is_space(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out += sep;
    out += items[i];
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::optional<double> parse_double(std::string_view s) {
  if (s.empty()) return std::nullopt;
#if defined(__cpp_lib_to_chars)
  // from_chars is locale-independent by definition.  It rejects a leading
  // '+', which the CLI layer historically accepted via stod; strip it here
  // so "+5.85" keeps parsing (a bare "+" stays invalid: s becomes empty).
  if (s.front() == '+') s.remove_prefix(1);
  if (s.empty()) return std::nullopt;
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) return std::nullopt;
  return value;
#else
  // Portable fallback: a stringstream pinned to the classic ("C") locale.
  std::istringstream in{std::string(s)};
  in.imbue(std::locale::classic());
  double value = 0.0;
  in >> value;
  if (in.fail() || !in.eof()) return std::nullopt;
  return value;
#endif
}

std::optional<std::int64_t> parse_int(std::string_view s) {
  if (s.empty()) return std::nullopt;
  if (s.front() == '+') s.remove_prefix(1);  // match parse_double's contract
  if (s.empty()) return std::nullopt;
  std::int64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

}  // namespace jps::util
