// Small descriptive-statistics toolkit used by the profiler (median-of-trials),
// the benchmark harness (confidence reporting) and the tests.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace jps::util {

/// Arithmetic mean. Returns 0 for an empty span.
[[nodiscard]] double mean(std::span<const double> xs);

/// Sample variance (n-1 denominator). Returns 0 for fewer than two samples.
[[nodiscard]] double variance(std::span<const double> xs);

/// Sample standard deviation.
[[nodiscard]] double stddev(std::span<const double> xs);

/// Median (copy + nth_element; input untouched). Returns 0 for empty input.
[[nodiscard]] double median(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100]. Returns 0 for empty input.
[[nodiscard]] double percentile(std::span<const double> xs, double p);

/// Minimum; 0 for empty input.
[[nodiscard]] double min(std::span<const double> xs);

/// Maximum; 0 for empty input.
[[nodiscard]] double max(std::span<const double> xs);

/// Sum of all elements.
[[nodiscard]] double sum(std::span<const double> xs);

/// Summary bundle for one sample set; computed in a single pass over a sorted
/// copy so callers do not re-sort per statistic.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

/// Compute the full Summary of a sample set.
[[nodiscard]] Summary summarize(std::span<const double> xs);

}  // namespace jps::util
