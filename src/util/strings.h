// String helpers shared by the lookup-table serializer and the harnesses.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace jps::util {

/// Split on a single-character delimiter. Empty fields are preserved.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char delim);

/// Strip leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s);

/// True if `s` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

/// Join items with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& items,
                               std::string_view sep);

/// Lower-case ASCII copy.
[[nodiscard]] std::string to_lower(std::string_view s);

/// Strict, locale-independent double parse.  The ENTIRE string must be a
/// number in the C locale ("3.5", "-1.2e-3", "inf", "nan"); anything else —
/// trailing garbage ("0.1x"), a comma decimal point ("3,5"), leading
/// whitespace, or an empty string — yields nullopt.  Unlike std::stod this
/// never consults the global locale (under de_DE, stod reads "3.5" as 3)
/// and never accepts a prefix, so every caller gets the same bytes-in,
/// value-out behavior regardless of environment.  Shared by the JSON
/// parser, the lookup-table deserializer, and the CLI flag layer.
[[nodiscard]] std::optional<double> parse_double(std::string_view s);

/// Strict base-10 integer parse with the same whole-string contract as
/// parse_double ("12x" and "1.5" both yield nullopt).
[[nodiscard]] std::optional<std::int64_t> parse_int(std::string_view s);

}  // namespace jps::util
