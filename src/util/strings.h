// String helpers shared by the lookup-table serializer and the harnesses.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace jps::util {

/// Split on a single-character delimiter. Empty fields are preserved.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char delim);

/// Strip leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s);

/// True if `s` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

/// Join items with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& items,
                               std::string_view sep);

/// Lower-case ASCII copy.
[[nodiscard]] std::string to_lower(std::string_view s);

}  // namespace jps::util
