// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over byte buffers.
//
// Used as the integrity trailer of the plan-cache snapshot format
// (serve/snapshot.h): a restarted server must be able to tell a torn or
// bit-flipped snapshot from a valid one *before* trusting any entry, and a
// 4-byte CRC catches every burst error shorter than 32 bits plus all odd
// numbers of bit flips.  Not cryptographic — the snapshot threat model is
// crashes and partial writes, not adversaries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace jps::util {

/// CRC-32 of `data`, with `seed` allowing incremental computation:
/// crc32(a + b) == crc32(b, crc32(a)).
[[nodiscard]] std::uint32_t crc32(std::string_view data,
                                  std::uint32_t seed = 0);

[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t size,
                                  std::uint32_t seed = 0);

}  // namespace jps::util
