// Release-dated jobs — relaxing the paper's "all jobs are available at time
// 0" assumption (§3.1) to periodic/streamed arrivals (camera frames landing
// every T ms).
//
// With release dates the 2-machine flow shop F2|r_j|Cmax is NP-hard, so two
// practical policies are provided and evaluated against a permutation brute
// force in the tests:
//   * johnson_by_release  — sort by release date, Johnson's rule among ties
//     (the natural streaming policy);
//   * batched_johnson     — group arrivals into windows of `batch_window`
//     ms, order each batch by Johnson's rule (the paper's planner applied
//     per window).
#pragma once

#include <span>
#include <vector>

#include "sched/job.h"
#include "sched/makespan.h"

namespace jps::sched {

/// A job with a release date (earliest time its computation may start).
struct TimedJob {
  Job job;
  double release = 0.0;
};

/// Evaluate the 2-stage recurrence honoring release dates, in the given
/// order: computation of job i starts at max(cpu free, release_i).
[[nodiscard]] double flowshop2_makespan_released(
    std::span<const TimedJob> jobs_in_order);

/// Per-job timelines under the same semantics.
[[nodiscard]] std::vector<JobTimeline> flowshop2_timeline_released(
    std::span<const TimedJob> jobs_in_order);

/// Streaming policy: non-decreasing release, Johnson's comparator within
/// equal releases. Returns indices into `jobs`.
[[nodiscard]] std::vector<std::size_t> johnson_by_release(
    std::span<const TimedJob> jobs);

/// Windowed policy: partition jobs into consecutive `batch_window`-ms
/// release windows, Johnson-order each window, concatenate.
[[nodiscard]] std::vector<std::size_t> batched_johnson(
    std::span<const TimedJob> jobs, double batch_window);

/// Minimum makespan over all permutations (n <= 10; test baseline).
[[nodiscard]] double best_permutation_makespan_released(
    std::span<const TimedJob> jobs);

}  // namespace jps::sched
