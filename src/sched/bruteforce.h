// Brute-force searchers used as optimality baselines (the paper's "BF").
//
// Three levels, trading breadth for tractability:
//   * best_permutation_makespan — all n! orders of a fixed job set; verifies
//     Johnson's rule in tests (n <= ~9).
//   * bruteforce_exact — all multisets of cut assignments for n identical
//     jobs over k cut-points, each scheduled by Johnson's rule (which is
//     optimal per partition choice, so the result is the true joint optimum).
//     Count is C(n+k-1, k-1); guarded by `max_assignments`.
//   * bruteforce_two_type — all (cut_a, cut_b, split) assignments with at
//     most two distinct cut types (not necessarily adjacent).  O(k^2 * n)
//     evaluations; scales to the Fig. 11 job counts.  Theorem 5.3's
//     two-type family is exactly optimal under the paper's conditions; on
//     general monotone curves a third type can still shave the boundary
//     terms f(x1)/g(xn) of Prop. 4.1, but that advantage is O(1/n)
//     (measured ~14% at n=4, ~3% at n=32; quantified in the tests).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sched/job.h"

namespace jps::sched {

/// Candidate cut-points presented to the brute-force searchers: the stage
/// lengths a job would have if partitioned at each cut.
struct CutOption {
  double f = 0.0;
  double g = 0.0;
};

/// Result of a joint partition+schedule search.
struct BruteForceResult {
  /// Optimal makespan found, ms.
  double makespan = 0.0;
  /// Cut index assigned to each of the n jobs (non-decreasing).
  std::vector<int> cuts;
  /// Number of candidate assignments evaluated.
  std::uint64_t evaluated = 0;
};

/// Minimum makespan over every permutation of `jobs`. Throws
/// std::invalid_argument for n > 10 (10! = 3.6M is the practical ceiling).
[[nodiscard]] double best_permutation_makespan(std::span<const Job> jobs);

/// Exact joint optimum: enumerate all multisets of cut assignments, schedule
/// each with Johnson's rule, keep the best.  Throws std::invalid_argument if
/// the multiset count exceeds `max_assignments`.
[[nodiscard]] BruteForceResult bruteforce_exact(
    std::span<const CutOption> cuts, int n_jobs,
    std::uint64_t max_assignments = 20'000'000);

/// Best assignment restricted to at most two distinct cut types.
/// Runs in O(k^2 * n) schedule evaluations; parallelized over cut pairs.
[[nodiscard]] BruteForceResult bruteforce_two_type(
    std::span<const CutOption> cuts, int n_jobs);

/// Johnson-scheduled makespan of a concrete cut assignment (helper shared by
/// the searchers and the benches).
[[nodiscard]] double assignment_makespan(std::span<const CutOption> cuts,
                                         std::span<const int> assignment);

}  // namespace jps::sched
