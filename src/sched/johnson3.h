// Johnson's rule for the THREE-machine flow shop [Johnson 1954, §3].
//
// The paper schedules the 2-stage (mobile compute, uplink) pipeline because
// cloud compute is negligible; this module covers the case where it is not.
// The 3-machine problem F3||Cmax is NP-hard in general, but Johnson's
// classical reduction is optimal when the middle machine is dominated:
//     min_j f_j >= max_j g_j   or   min_j cloud_j >= max_j g_j.
// Then ordering by Johnson's 2-machine rule on the surrogate stage lengths
// (f_j + g_j, g_j + cloud_j) minimizes the makespan.
//
// For partitioned DNN jobs the second condition is natural in reverse form:
// the *uplink* is the middle of (compute, uplink, cloud) only in our
// pipeline's order, so the dominance to check is over g.
#pragma once

#include <span>

#include "sched/johnson.h"

namespace jps::sched {

/// True when Johnson's 3-machine reduction is provably optimal for `jobs`:
/// min f >= max g or min cloud >= max g.
[[nodiscard]] bool johnson3_condition_holds(std::span<const Job> jobs);

/// Johnson order for the 3-stage pipeline via the (f+g, g+cloud) surrogate.
/// Optimal when johnson3_condition_holds(); a strong heuristic otherwise.
[[nodiscard]] JohnsonSchedule johnson3_order(std::span<const Job> jobs);

/// Minimum 3-stage makespan over every permutation (n <= 10; baseline for
/// tests and ablations).
[[nodiscard]] double best_permutation_makespan3(std::span<const Job> jobs);

}  // namespace jps::sched
