// Makespan evaluation for partitioned-DNN pipelines.
//
// The mobile CPU and the uplink are exclusive resources used in a pipeline:
// job i's communication stage may overlap job i+1's computation stage, but
// each resource serves one job at a time and a job's communication cannot
// start before its own computation ends (§3.1).  That is the classic
// 2-machine permutation flow shop; a third stage (cloud compute) extends it
// to 3 machines for the "is cloud time really negligible" check.
#pragma once

#include <span>
#include <vector>

#include "sched/job.h"

namespace jps::sched {

/// Start/end times of each stage of one job within a schedule.
struct JobTimeline {
  int job_id = 0;
  double comp_start = 0.0;
  double comp_end = 0.0;
  double comm_start = 0.0;
  double comm_end = 0.0;
  double cloud_start = 0.0;
  double cloud_end = 0.0;

  /// Completion time tau_j of the job (end of its last nonempty stage).
  [[nodiscard]] double completion() const {
    return cloud_end > 0.0 ? cloud_end : comm_end;
  }
};

/// Evaluate the 2-stage flow-shop recurrence for `jobs` executed in their
/// given order. Returns per-job stage timelines (same order as input).
[[nodiscard]] std::vector<JobTimeline> flowshop2_timeline(
    std::span<const Job> jobs);

/// Makespan (max completion) of the 2-stage pipeline in the given order.
[[nodiscard]] double flowshop2_makespan(std::span<const Job> jobs);

/// Structure-of-arrays flowshop2_makespan: job i has stages (f[i], g[i]).
/// Bit-identical to the Job-span overload on the same sequence (the
/// recurrence runs the same additions in the same order); the contiguous
/// lanes are what the batched planner sweeps feed it.  Throws
/// std::invalid_argument when the lanes disagree in length.
[[nodiscard]] double flowshop2_makespan(std::span<const double> f,
                                        std::span<const double> g);

/// flowshop2_makespan of the two-run sequence "n_a jobs of (f_a, g_a) then
/// n_b jobs of (f_b, g_b)" without materializing the jobs.  Runs the exact
/// recurrence (same additions, same order), so it is bit-identical to
/// flowshop2_makespan on that sequence — unlike core::two_type_makespan,
/// which evaluates the O(1) endpoint identity and may differ in the last
/// ulp.  Negative counts are treated as empty runs.
[[nodiscard]] double two_type_flowshop2_makespan(double f_a, double g_a,
                                                 int n_a, double f_b,
                                                 double g_b, int n_b);

/// 3-stage variant including each job's cloud stage (permutation flow shop
/// recurrence on three machines).
[[nodiscard]] std::vector<JobTimeline> flowshop3_timeline(
    std::span<const Job> jobs);

/// Makespan of the 3-stage pipeline in the given order.
[[nodiscard]] double flowshop3_makespan(std::span<const Job> jobs);

/// The exact closed-form 2-stage makespan for the GIVEN order:
///   max_k ( sum_{i<=k} f(x_i) + sum_{i>=k} g(x_i) )        (one O(n) pass)
/// — always identical to flowshop2_makespan; the differential-oracle tests
/// verify both against the discrete-event simulator.  Under Johnson order on
/// a monotone curve the maximum sits at k in {1, n}, which recovers the
/// paper's Prop. 4.1 rendering
///   f(x1) + max{ sum_{i>=2} f(x_i), sum_{i<=n-1} g(x_i) } + g(x_n)
/// as the special case (see docs/THEORY.md §2).
[[nodiscard]] double closed_form_makespan(std::span<const Job> jobs_in_order);

/// Structure-of-arrays closed_form_makespan: the same identity over
/// contiguous (f, g) lanes.  Bit-identical to the Job-span overload on the
/// same sequence; branch-light (one max per element, no struct loads), so
/// the compiler can keep both running sums in registers.  Throws
/// std::invalid_argument when the lanes disagree in length.
[[nodiscard]] double closed_form_makespan(std::span<const double> f,
                                          std::span<const double> g);

/// The average-makespan lower bound the paper optimizes after relaxation:
///   max( sum f / n , sum g / n ).
[[nodiscard]] double average_makespan_bound(std::span<const Job> jobs);

}  // namespace jps::sched
