#include "sched/release.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "sched/johnson.h"
#include "sched/makespan.h"

namespace jps::sched {

std::vector<JobTimeline> flowshop2_timeline_released(
    std::span<const TimedJob> jobs_in_order) {
  std::vector<JobTimeline> timeline;
  timeline.reserve(jobs_in_order.size());
  double cpu_free = 0.0;
  double link_free = 0.0;
  for (const TimedJob& tj : jobs_in_order) {
    JobTimeline t;
    t.job_id = tj.job.id;
    t.comp_start = std::max(cpu_free, tj.release);
    t.comp_end = t.comp_start + tj.job.f;
    t.comm_start = std::max(t.comp_end, link_free);
    t.comm_end = t.comm_start + tj.job.g;
    cpu_free = t.comp_end;
    link_free = t.comm_end;
    timeline.push_back(t);
  }
  return timeline;
}

double flowshop2_makespan_released(std::span<const TimedJob> jobs_in_order) {
  double makespan = 0.0;
  for (const JobTimeline& t : flowshop2_timeline_released(jobs_in_order))
    makespan = std::max(makespan, t.completion());
  return makespan;
}

namespace {

// Johnson's order as a key comparison (the pairwise min(f_i,g_j) form is
// not transitive and therefore unusable with std::sort): S1 jobs (f < g)
// precede S2 jobs; within S1 ascending f, within S2 descending g.
bool johnson_before(const Job& a, const Job& b) {
  const bool a_comm_heavy = a.f < a.g;
  const bool b_comm_heavy = b.f < b.g;
  if (a_comm_heavy != b_comm_heavy) return a_comm_heavy;
  const double ka = a_comm_heavy ? a.f : -a.g;
  const double kb = b_comm_heavy ? b.f : -b.g;
  if (ka != kb) return ka < kb;
  return a.id < b.id;
}

}  // namespace

std::vector<std::size_t> johnson_by_release(std::span<const TimedJob> jobs) {
  std::vector<std::size_t> order(jobs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (jobs[a].release != jobs[b].release)
      return jobs[a].release < jobs[b].release;
    return johnson_before(jobs[a].job, jobs[b].job);
  });
  return order;
}

std::vector<std::size_t> batched_johnson(std::span<const TimedJob> jobs,
                                         double batch_window) {
  if (batch_window <= 0.0)
    throw std::invalid_argument("batched_johnson: window must be positive");
  // Bucket indices by release window.
  std::vector<std::pair<std::int64_t, std::size_t>> keyed;
  keyed.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    keyed.emplace_back(
        static_cast<std::int64_t>(jobs[i].release / batch_window), i);
  }
  std::sort(keyed.begin(), keyed.end());

  std::vector<std::size_t> order;
  order.reserve(jobs.size());
  std::size_t begin = 0;
  while (begin < keyed.size()) {
    std::size_t end = begin;
    while (end < keyed.size() && keyed[end].first == keyed[begin].first) ++end;
    // Johnson-order this window.
    JobList window;
    std::vector<std::size_t> original;
    for (std::size_t k = begin; k < end; ++k) {
      original.push_back(keyed[k].second);
      window.push_back(jobs[keyed[k].second].job);
    }
    const JohnsonSchedule schedule = johnson_order(window);
    for (const std::size_t local : schedule.order)
      order.push_back(original[local]);
    begin = end;
  }
  return order;
}

double best_permutation_makespan_released(std::span<const TimedJob> jobs) {
  if (jobs.size() > 10)
    throw std::invalid_argument("best_permutation_makespan_released: n > 10");
  std::vector<std::size_t> perm(jobs.size());
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  double best = std::numeric_limits<double>::infinity();
  do {
    std::vector<TimedJob> ordered;
    ordered.reserve(jobs.size());
    for (const std::size_t idx : perm) ordered.push_back(jobs[idx]);
    best = std::min(best, flowshop2_makespan_released(ordered));
  } while (std::next_permutation(perm.begin(), perm.end()));
  return jobs.empty() ? 0.0 : best;
}

}  // namespace jps::sched
