#include "sched/bruteforce.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "sched/johnson.h"
#include "sched/makespan.h"
#include "util/mutex.h"
#include "util/thread_pool.h"

namespace jps::sched {

namespace {

// Multiset count C(n+k-1, k-1) with saturation.
std::uint64_t multiset_count(std::uint64_t n, std::uint64_t k) {
  if (k == 0) return 0;
  // C(n+k-1, k-1) computed incrementally with overflow saturation.
  const std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  long double acc = 1.0L;
  for (std::uint64_t i = 1; i < k; ++i)
    acc = acc * static_cast<long double>(n + i) / static_cast<long double>(i);
  if (acc >= static_cast<long double>(kMax)) return kMax;
  return static_cast<std::uint64_t>(acc + 0.5L);
}

JobList jobs_from_assignment(std::span<const CutOption> cuts,
                             std::span<const int> assignment) {
  JobList jobs;
  jobs.reserve(assignment.size());
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    const int c = assignment[i];
    jobs.push_back(Job{.id = static_cast<int>(i),
                       .cut = c,
                       .f = cuts[static_cast<std::size_t>(c)].f,
                       .g = cuts[static_cast<std::size_t>(c)].g});
  }
  return jobs;
}

}  // namespace

double assignment_makespan(std::span<const CutOption> cuts,
                           std::span<const int> assignment) {
  const JobList jobs = jobs_from_assignment(cuts, assignment);
  const JohnsonSchedule schedule = johnson_order(jobs);
  return flowshop2_makespan(apply_order(jobs, schedule.order));
}

double best_permutation_makespan(std::span<const Job> jobs) {
  if (jobs.size() > 10)
    throw std::invalid_argument("best_permutation_makespan: n > 10");
  std::vector<std::size_t> perm(jobs.size());
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  double best = std::numeric_limits<double>::infinity();
  do {
    best = std::min(best, flowshop2_makespan(apply_order(jobs, perm)));
  } while (std::next_permutation(perm.begin(), perm.end()));
  return jobs.empty() ? 0.0 : best;
}

BruteForceResult bruteforce_exact(std::span<const CutOption> cuts, int n_jobs,
                                  std::uint64_t max_assignments) {
  if (cuts.empty()) throw std::invalid_argument("bruteforce_exact: no cuts");
  if (n_jobs < 1) throw std::invalid_argument("bruteforce_exact: n_jobs < 1");
  const std::uint64_t count =
      multiset_count(static_cast<std::uint64_t>(n_jobs), cuts.size());
  if (count > max_assignments)
    throw std::invalid_argument(
        "bruteforce_exact: " + std::to_string(count) +
        " assignments exceed the cap; use bruteforce_two_type");

  BruteForceResult best;
  best.makespan = std::numeric_limits<double>::infinity();

  // Enumerate non-decreasing assignments (multisets) recursively.
  std::vector<int> assignment(static_cast<std::size_t>(n_jobs), 0);
  std::uint64_t evaluated = 0;
  const int k = static_cast<int>(cuts.size());

  // Iterative odometer over non-decreasing sequences.
  while (true) {
    const double ms = assignment_makespan(cuts, assignment);
    ++evaluated;
    if (ms < best.makespan) {
      best.makespan = ms;
      best.cuts = assignment;
    }
    // Advance: find the rightmost position that can still increase.
    int pos = n_jobs - 1;
    while (pos >= 0 && assignment[static_cast<std::size_t>(pos)] == k - 1) --pos;
    if (pos < 0) break;
    const int next = assignment[static_cast<std::size_t>(pos)] + 1;
    for (int i = pos; i < n_jobs; ++i)
      assignment[static_cast<std::size_t>(i)] = next;  // keep non-decreasing
  }
  best.evaluated = evaluated;
  return best;
}

BruteForceResult bruteforce_two_type(std::span<const CutOption> cuts,
                                     int n_jobs) {
  if (cuts.empty()) throw std::invalid_argument("bruteforce_two_type: no cuts");
  if (n_jobs < 1) throw std::invalid_argument("bruteforce_two_type: n_jobs < 1");
  const std::size_t k = cuts.size();

  util::Mutex best_mutex("sched.bruteforce.best");
  BruteForceResult best;
  best.makespan = std::numeric_limits<double>::infinity();
  std::atomic<std::uint64_t> evaluated{0};

  // One work item per first-cut index; inner loop covers the second cut and
  // the split.  Each item keeps a thread-local best and merges once.
  util::parallel_for(k, [&](std::size_t a) {
    BruteForceResult local;
    local.makespan = std::numeric_limits<double>::infinity();
    std::uint64_t local_evaluated = 0;
    std::vector<int> assignment(static_cast<std::size_t>(n_jobs));
    for (std::size_t b = a; b < k; ++b) {
      // n_a jobs at cut a, the rest at cut b. n_a == n covers single-type.
      for (int n_a = (a == b ? n_jobs : 0); n_a <= n_jobs; ++n_a) {
        for (int i = 0; i < n_jobs; ++i)
          assignment[static_cast<std::size_t>(i)] =
              i < n_a ? static_cast<int>(a) : static_cast<int>(b);
        const double ms = assignment_makespan(cuts, assignment);
        ++local_evaluated;
        if (ms < local.makespan) {
          local.makespan = ms;
          local.cuts = assignment;
        }
      }
    }
    evaluated.fetch_add(local_evaluated, std::memory_order_relaxed);
    util::MutexLock lock(best_mutex);
    if (local.makespan < best.makespan) {
      best.makespan = local.makespan;
      best.cuts = std::move(local.cuts);
    }
  });

  best.evaluated = evaluated.load();
  return best;
}

}  // namespace jps::sched
