#include "sched/johnson3.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "sched/makespan.h"

namespace jps::sched {

bool johnson3_condition_holds(std::span<const Job> jobs) {
  if (jobs.empty()) return true;
  double min_f = std::numeric_limits<double>::infinity();
  double min_cloud = std::numeric_limits<double>::infinity();
  double max_g = 0.0;
  for (const Job& job : jobs) {
    min_f = std::min(min_f, job.f);
    min_cloud = std::min(min_cloud, job.cloud);
    max_g = std::max(max_g, job.g);
  }
  return min_f >= max_g || min_cloud >= max_g;
}

JohnsonSchedule johnson3_order(std::span<const Job> jobs) {
  // Surrogate 2-machine instance: stage A = f + g, stage B = g + cloud.
  JobList surrogate;
  surrogate.reserve(jobs.size());
  for (const Job& job : jobs) {
    surrogate.push_back(Job{.id = job.id,
                            .cut = job.cut,
                            .f = job.f + job.g,
                            .g = job.g + job.cloud});
  }
  return johnson_order(surrogate);
}

double best_permutation_makespan3(std::span<const Job> jobs) {
  if (jobs.size() > 10)
    throw std::invalid_argument("best_permutation_makespan3: n > 10");
  std::vector<std::size_t> perm(jobs.size());
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  double best = std::numeric_limits<double>::infinity();
  do {
    best = std::min(best, flowshop3_makespan(apply_order(jobs, perm)));
  } while (std::next_permutation(perm.begin(), perm.end()));
  return jobs.empty() ? 0.0 : best;
}

}  // namespace jps::sched
