#include "sched/johnson.h"

#include <algorithm>
#include <stdexcept>

namespace jps::sched {

JohnsonSchedule johnson_order(std::span<const Job> jobs) {
  JohnsonSchedule schedule;
  std::vector<std::size_t> s1;  // communication-heavy: f < g
  std::vector<std::size_t> s2;  // computation-heavy:  f >= g
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (jobs[i].f < 0.0 || jobs[i].g < 0.0)
      throw std::invalid_argument("johnson_order: negative stage length");
    (jobs[i].f < jobs[i].g ? s1 : s2).push_back(i);
  }
  std::sort(s1.begin(), s1.end(), [&](std::size_t a, std::size_t b) {
    if (jobs[a].f != jobs[b].f) return jobs[a].f < jobs[b].f;  // ascending f
    return a < b;
  });
  std::sort(s2.begin(), s2.end(), [&](std::size_t a, std::size_t b) {
    if (jobs[a].g != jobs[b].g) return jobs[a].g > jobs[b].g;  // descending g
    return a < b;
  });
  schedule.comm_heavy_count = s1.size();
  schedule.order = std::move(s1);
  schedule.order.insert(schedule.order.end(), s2.begin(), s2.end());
  return schedule;
}

JobList apply_order(std::span<const Job> jobs,
                    std::span<const std::size_t> order) {
  if (order.size() != jobs.size())
    throw std::invalid_argument("apply_order: order/jobs size mismatch");
  JobList out;
  out.reserve(jobs.size());
  for (std::size_t idx : order) {
    if (idx >= jobs.size()) throw std::out_of_range("apply_order: bad index");
    out.push_back(jobs[idx]);
  }
  return out;
}

}  // namespace jps::sched
