// Johnson's rule for the two-machine flow shop (Alg. 1 of the paper).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "sched/job.h"

namespace jps::sched {

/// Result of Alg. 1: a processing order plus the S1/S2 split for inspection.
struct JohnsonSchedule {
  /// Permutation of indices into the input span; jobs run in this order.
  std::vector<std::size_t> order;
  /// The first `comm_heavy_count` entries of `order` form the
  /// communication-heavy set S1 (f < g), sorted by ascending f; the rest form
  /// S2 (f >= g), sorted by descending g.
  std::size_t comm_heavy_count = 0;
};

/// Compute the Johnson order of `jobs`.  O(n log n).  This order minimizes
/// the makespan of the 2-stage pipeline (computation then communication) —
/// the classical optimality of Johnson's rule [Johnson 1954].
/// Ties are broken by job index, making the result deterministic.
[[nodiscard]] JohnsonSchedule johnson_order(std::span<const Job> jobs);

/// Convenience: reorder a copy of `jobs` into Johnson order.
[[nodiscard]] JobList apply_order(std::span<const Job> jobs,
                                  std::span<const std::size_t> order);

}  // namespace jps::sched
