// The unit of scheduling: one partitioned DNN inference job (§3.1).
//
// After partitioning, a job is fully described by the lengths of its two
// pipeline stages: f (local computation on the mobile device) and g
// (offloading the intermediate tensor to the cloud).  The cloud computation
// stage is carried too, but only the 3-stage experiments use it — the paper
// shows it is negligible and the optimizer works on (f, g).
#pragma once

#include <vector>

namespace jps::sched {

struct Job {
  /// Caller-assigned identity (position in the original job set).
  int id = 0;
  /// Cut-point index this job was partitioned at (metadata; -1 = unknown).
  int cut = -1;
  /// Computation stage length on the mobile device, ms.
  double f = 0.0;
  /// Communication stage length (offload), ms.
  double g = 0.0;
  /// Cloud computation stage length, ms (3-stage analyses only).
  double cloud = 0.0;
};

using JobList = std::vector<Job>;

}  // namespace jps::sched
