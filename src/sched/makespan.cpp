#include "sched/makespan.h"

#include <algorithm>

namespace jps::sched {

std::vector<JobTimeline> flowshop2_timeline(std::span<const Job> jobs) {
  std::vector<JobTimeline> timeline;
  timeline.reserve(jobs.size());
  double cpu_free = 0.0;   // mobile CPU available from
  double link_free = 0.0;  // uplink available from
  for (const Job& job : jobs) {
    JobTimeline t;
    t.job_id = job.id;
    t.comp_start = cpu_free;
    t.comp_end = t.comp_start + job.f;
    t.comm_start = std::max(t.comp_end, link_free);
    t.comm_end = t.comm_start + job.g;
    cpu_free = t.comp_end;
    link_free = t.comm_end;
    timeline.push_back(t);
  }
  return timeline;
}

double flowshop2_makespan(std::span<const Job> jobs) {
  double cpu_free = 0.0;
  double link_free = 0.0;
  for (const Job& job : jobs) {
    cpu_free += job.f;
    link_free = std::max(cpu_free, link_free) + job.g;
  }
  return jobs.empty() ? 0.0 : link_free;
}

std::vector<JobTimeline> flowshop3_timeline(std::span<const Job> jobs) {
  std::vector<JobTimeline> timeline;
  timeline.reserve(jobs.size());
  double cpu_free = 0.0;
  double link_free = 0.0;
  double cloud_free = 0.0;
  for (const Job& job : jobs) {
    JobTimeline t;
    t.job_id = job.id;
    t.comp_start = cpu_free;
    t.comp_end = t.comp_start + job.f;
    t.comm_start = std::max(t.comp_end, link_free);
    t.comm_end = t.comm_start + job.g;
    t.cloud_start = std::max(t.comm_end, cloud_free);
    t.cloud_end = t.cloud_start + job.cloud;
    cpu_free = t.comp_end;
    link_free = t.comm_end;
    cloud_free = t.cloud_end;
    timeline.push_back(t);
  }
  return timeline;
}

double flowshop3_makespan(std::span<const Job> jobs) {
  const auto timeline = flowshop3_timeline(jobs);
  double makespan = 0.0;
  for (const auto& t : timeline) makespan = std::max(makespan, t.cloud_end);
  return makespan;
}

double closed_form_makespan(std::span<const Job> jobs_in_order) {
  if (jobs_in_order.empty()) return 0.0;
  double sum_f_tail = 0.0;  // sum of f over jobs 2..n
  double sum_g_head = 0.0;  // sum of g over jobs 1..n-1
  for (std::size_t i = 1; i < jobs_in_order.size(); ++i)
    sum_f_tail += jobs_in_order[i].f;
  for (std::size_t i = 0; i + 1 < jobs_in_order.size(); ++i)
    sum_g_head += jobs_in_order[i].g;
  return jobs_in_order.front().f + std::max(sum_f_tail, sum_g_head) +
         jobs_in_order.back().g;
}

double average_makespan_bound(std::span<const Job> jobs) {
  if (jobs.empty()) return 0.0;
  double sum_f = 0.0;
  double sum_g = 0.0;
  for (const Job& job : jobs) {
    sum_f += job.f;
    sum_g += job.g;
  }
  const auto n = static_cast<double>(jobs.size());
  return std::max(sum_f, sum_g) / n;
}

}  // namespace jps::sched
