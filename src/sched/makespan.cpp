#include "sched/makespan.h"

#include <algorithm>
#include <stdexcept>

namespace jps::sched {

namespace {

void check_lanes(std::span<const double> f, std::span<const double> g) {
  if (f.size() != g.size())
    throw std::invalid_argument("makespan: f/g lane length mismatch");
}

}  // namespace

std::vector<JobTimeline> flowshop2_timeline(std::span<const Job> jobs) {
  std::vector<JobTimeline> timeline;
  timeline.reserve(jobs.size());
  double cpu_free = 0.0;   // mobile CPU available from
  double link_free = 0.0;  // uplink available from
  for (const Job& job : jobs) {
    JobTimeline t;
    t.job_id = job.id;
    t.comp_start = cpu_free;
    t.comp_end = t.comp_start + job.f;
    t.comm_start = std::max(t.comp_end, link_free);
    t.comm_end = t.comm_start + job.g;
    cpu_free = t.comp_end;
    link_free = t.comm_end;
    timeline.push_back(t);
  }
  return timeline;
}

double flowshop2_makespan(std::span<const Job> jobs) {
  double cpu_free = 0.0;
  double link_free = 0.0;
  for (const Job& job : jobs) {
    cpu_free += job.f;
    link_free = std::max(cpu_free, link_free) + job.g;
  }
  return jobs.empty() ? 0.0 : link_free;
}

double flowshop2_makespan(std::span<const double> f,
                          std::span<const double> g) {
  check_lanes(f, g);
  double cpu_free = 0.0;
  double link_free = 0.0;
  for (std::size_t i = 0; i < f.size(); ++i) {
    cpu_free += f[i];
    link_free = std::max(cpu_free, link_free) + g[i];
  }
  return f.empty() ? 0.0 : link_free;
}

double two_type_flowshop2_makespan(double f_a, double g_a, int n_a, double f_b,
                                   double g_b, int n_b) {
  double cpu_free = 0.0;
  double link_free = 0.0;
  for (int i = 0; i < n_a; ++i) {
    cpu_free += f_a;
    link_free = std::max(cpu_free, link_free) + g_a;
  }
  for (int i = 0; i < n_b; ++i) {
    cpu_free += f_b;
    link_free = std::max(cpu_free, link_free) + g_b;
  }
  return n_a <= 0 && n_b <= 0 ? 0.0 : link_free;
}

std::vector<JobTimeline> flowshop3_timeline(std::span<const Job> jobs) {
  std::vector<JobTimeline> timeline;
  timeline.reserve(jobs.size());
  double cpu_free = 0.0;
  double link_free = 0.0;
  double cloud_free = 0.0;
  for (const Job& job : jobs) {
    JobTimeline t;
    t.job_id = job.id;
    t.comp_start = cpu_free;
    t.comp_end = t.comp_start + job.f;
    t.comm_start = std::max(t.comp_end, link_free);
    t.comm_end = t.comm_start + job.g;
    t.cloud_start = std::max(t.comm_end, cloud_free);
    t.cloud_end = t.cloud_start + job.cloud;
    cpu_free = t.comp_end;
    link_free = t.comm_end;
    cloud_free = t.cloud_end;
    timeline.push_back(t);
  }
  return timeline;
}

double flowshop3_makespan(std::span<const Job> jobs) {
  const auto timeline = flowshop3_timeline(jobs);
  double makespan = 0.0;
  for (const auto& t : timeline) makespan = std::max(makespan, t.cloud_end);
  return makespan;
}

double closed_form_makespan(std::span<const Job> jobs_in_order) {
  // The exact critical-path identity for F2||Cmax in a fixed order:
  //   Cmax = max_k ( sum_{i<=k} f_i + sum_{i>=k} g_i ).
  // Evaluated with a running f-prefix and g-suffix in one O(n) pass.  An
  // earlier version kept only the k=1 and k=n terms (the paper's Prop. 4.1
  // rendering, which is exact only under Johnson order on a monotone
  // curve); jobs (1,1),(10,10),(1,1) exposed the gap (13 vs the true 22).
  double suffix_g = 0.0;
  for (const Job& job : jobs_in_order) suffix_g += job.g;
  double prefix_f = 0.0;
  double makespan = 0.0;
  for (const Job& job : jobs_in_order) {
    prefix_f += job.f;                                  // now sum_{i<=k} f_i
    makespan = std::max(makespan, prefix_f + suffix_g);  // g still holds g_k
    suffix_g -= job.g;
  }
  return makespan;
}

double closed_form_makespan(std::span<const double> f,
                            std::span<const double> g) {
  check_lanes(f, g);
  double suffix_g = 0.0;
  for (const double gi : g) suffix_g += gi;
  double prefix_f = 0.0;
  double makespan = 0.0;
  for (std::size_t i = 0; i < f.size(); ++i) {
    prefix_f += f[i];
    makespan = std::max(makespan, prefix_f + suffix_g);
    suffix_g -= g[i];
  }
  return makespan;
}

double average_makespan_bound(std::span<const Job> jobs) {
  if (jobs.empty()) return 0.0;
  double sum_f = 0.0;
  double sum_g = 0.0;
  for (const Job& job : jobs) {
    sum_f += job.f;
    sum_g += job.g;
  }
  const auto n = static_cast<double>(jobs.size());
  return std::max(sum_f, sum_g) / n;
}

}  // namespace jps::sched
