#include "runtime/host_profiler.h"

#include <chrono>
#include <stdexcept>

#include "util/stats.h"

namespace jps::runtime {

std::vector<profile::ProfileRecord> profile_on_host(
    const dnn::Graph& graph, const HostProfilerOptions& options) {
  if (options.trials < 1)
    throw std::invalid_argument("profile_on_host: trials < 1");
  if (!graph.inferred())
    throw std::invalid_argument("profile_on_host: graph not inferred");

  const WeightStore weights(graph, options.seed);
  util::Rng rng(options.seed);

  // One forward pass provides realistic input tensors for every layer.
  const std::vector<Tensor> activations =
      run_graph(graph, random_input(graph, rng), weights);

  using Clock = std::chrono::steady_clock;
  std::vector<profile::ProfileRecord> records;
  records.reserve(graph.size());
  for (dnn::NodeId id = 0; id < graph.size(); ++id) {
    profile::ProfileRecord rec;
    rec.node = id;
    rec.trials = options.trials;
    if (id == graph.source()) {
      records.push_back(rec);
      continue;
    }
    std::vector<Tensor> inputs;
    for (const dnn::NodeId p : graph.predecessors(id))
      inputs.push_back(activations[p]);

    for (int i = 0; i < options.warmup; ++i)
      (void)run_layer(graph.layer(id), inputs, weights.weights(id));

    std::vector<double> samples;
    samples.reserve(static_cast<std::size_t>(options.trials));
    for (int i = 0; i < options.trials; ++i) {
      const auto start = Clock::now();
      (void)run_layer(graph.layer(id), inputs, weights.weights(id));
      samples.push_back(
          std::chrono::duration<double, std::milli>(Clock::now() - start)
              .count());
    }
    rec.median_ms = util::median(samples);
    rec.mean_ms = util::mean(samples);
    rec.stddev_ms = util::stddev(samples);
    records.push_back(rec);
  }
  return records;
}

profile::LookupTable build_host_lookup_table(const dnn::Graph& graph,
                                             const HostProfilerOptions& options) {
  profile::LookupTable table;
  table.add_graph(graph, profile_on_host(graph, options));
  return table;
}

}  // namespace jps::runtime
