#include "runtime/graph_runner.h"

#include <cmath>
#include <stdexcept>

#include "dnn/layer_impl.h"

namespace jps::runtime {

namespace {

// He-style scale: weights ~ N(0, sqrt(2/fan_in)); biases zero; batch-norm
// gamma 1, beta 0 — keeps activations in a sane range through deep nets.
LayerWeights make_weights(const dnn::Graph& graph, dnn::NodeId id,
                          util::Rng& rng) {
  LayerWeights w;
  std::vector<dnn::TensorShape> in_shapes;
  for (const dnn::NodeId p : graph.predecessors(id))
    in_shapes.push_back(graph.info(p).output_shape);
  const dnn::TensorShape& out = graph.info(id).output_shape;
  const dnn::Layer& layer = graph.layer(id);
  const std::uint64_t params = layer.param_count(in_shapes, out);
  if (params == 0) return w;

  if (layer.kind() == dnn::LayerKind::kBatchNorm) {
    const auto channels = static_cast<std::size_t>(params / 2);
    w.weights.assign(params, 0.0f);
    for (std::size_t c = 0; c < channels; ++c) w.weights[c] = 1.0f;  // gamma
    return w;
  }

  // Conv / dense: split into weight blob + bias by reconstructing the bias
  // size from the shapes.
  std::uint64_t bias_count = 0;
  std::uint64_t weight_count = params;
  if (layer.kind() == dnn::LayerKind::kConv2d) {
    const auto& conv = static_cast<const dnn::detail::Conv2dLayer&>(layer);
    const std::int64_t cin = in_shapes[0].channels();
    const std::int64_t groups = conv.depthwise() ? cin : conv.groups();
    const std::uint64_t kernel_weights =
        static_cast<std::uint64_t>(out.channels()) *
        static_cast<std::uint64_t>(cin / groups) *
        static_cast<std::uint64_t>(conv.kernel_h() * conv.kernel_w());
    bias_count = params - kernel_weights;
    weight_count = kernel_weights;
  } else if (layer.kind() == dnn::LayerKind::kDense) {
    const std::uint64_t kernel_weights =
        static_cast<std::uint64_t>(in_shapes[0].elements()) *
        static_cast<std::uint64_t>(out.elements());
    bias_count = params - kernel_weights;
    weight_count = kernel_weights;
  }

  const double fan_in = in_shapes.empty()
                            ? 1.0
                            : static_cast<double>(in_shapes[0].elements());
  const double scale =
      std::sqrt(2.0 / std::max(1.0, std::min(fan_in, 4096.0)));
  w.weights.resize(weight_count);
  for (float& v : w.weights)
    v = static_cast<float>(rng.normal(0.0, scale * 0.1));
  w.bias.assign(bias_count, 0.0f);
  return w;
}

}  // namespace

WeightStore::WeightStore(const dnn::Graph& graph, std::uint64_t seed) {
  if (!graph.inferred())
    throw std::invalid_argument("WeightStore: graph not inferred");
  store_.reserve(graph.size());
  for (dnn::NodeId id = 0; id < graph.size(); ++id) {
    util::Rng rng(seed ^ (0x9E3779B97F4A7C15ull * (id + 1)));
    store_.push_back(make_weights(graph, id, rng));
  }
}

const LayerWeights& WeightStore::weights(dnn::NodeId id) const {
  if (id >= store_.size()) throw std::out_of_range("WeightStore::weights");
  return store_[id];
}

std::uint64_t WeightStore::total_parameters() const {
  std::uint64_t total = 0;
  for (const LayerWeights& w : store_)
    total += w.weights.size() + w.bias.size();
  return total;
}

std::vector<Tensor> run_graph(const dnn::Graph& graph, const Tensor& input,
                              const WeightStore& weights) {
  if (!graph.inferred())
    throw std::invalid_argument("run_graph: graph not inferred");
  if (!(input.shape() == graph.info(graph.source()).output_shape))
    throw std::invalid_argument("run_graph: input shape mismatch");

  std::vector<Tensor> outputs(graph.size());
  outputs[graph.source()] = input;
  for (dnn::NodeId id = 0; id < graph.size(); ++id) {
    if (id == graph.source()) continue;
    std::vector<Tensor> inputs;
    inputs.reserve(graph.predecessors(id).size());
    for (const dnn::NodeId p : graph.predecessors(id))
      inputs.push_back(outputs[p]);
    outputs[id] = run_layer(graph.layer(id), inputs, weights.weights(id));
    if (!(outputs[id].shape() == graph.info(id).output_shape)) {
      throw std::logic_error("run_graph: computed shape diverges from "
                             "inference at node " +
                             std::to_string(id));
    }
  }
  return outputs;
}

Tensor run_graph_output(const dnn::Graph& graph, const Tensor& input,
                        const WeightStore& weights) {
  return run_graph(graph, input, weights)[graph.sink()];
}

Tensor random_input(const dnn::Graph& graph, util::Rng& rng) {
  Tensor input(graph.info(graph.source()).output_shape);
  for (std::size_t i = 0; i < input.size(); ++i)
    input[i] = static_cast<float>(rng.normal(0.0, 1.0));
  return input;
}

}  // namespace jps::runtime
