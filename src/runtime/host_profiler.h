// REAL profiling harness: time each layer's numeric kernel on THIS host and
// build the scheduler's lookup table from wall-clock medians — the full
// §6.1 deployment loop (profile -> lookup table -> plan) without any
// analytic model in the path.  The "mobile device" is simply this machine
// running the naive kernels; absolute numbers differ from a Pi, but the
// per-layer proportions are real measurements.
#pragma once

#include "dnn/graph.h"
#include "profile/lookup_table.h"
#include "runtime/graph_runner.h"

namespace jps::runtime {

struct HostProfilerOptions {
  /// Timed repetitions per layer (median taken).
  int trials = 3;
  /// Discarded warm-up repetitions per layer.
  int warmup = 1;
  std::uint64_t seed = 1;
};

/// Measure every layer of `graph` by running the real kernels on random
/// data and record the wall-clock medians.
[[nodiscard]] std::vector<profile::ProfileRecord> profile_on_host(
    const dnn::Graph& graph, const HostProfilerOptions& options = {});

/// profile_on_host + LookupTable assembly.
[[nodiscard]] profile::LookupTable build_host_lookup_table(
    const dnn::Graph& graph, const HostProfilerOptions& options = {});

}  // namespace jps::runtime
