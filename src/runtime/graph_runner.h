// Whole-graph numeric execution with deterministic random weights.
#pragma once

#include <optional>
#include <vector>

#include "dnn/graph.h"
#include "runtime/kernels.h"
#include "util/rng.h"

namespace jps::runtime {

/// Deterministic per-node weights for a graph: He-style small random values
/// seeded from (seed, node id), so two runners with the same seed agree.
class WeightStore {
 public:
  explicit WeightStore(const dnn::Graph& graph, std::uint64_t seed = 1);

  [[nodiscard]] const LayerWeights& weights(dnn::NodeId id) const;

  /// Total parameters materialized (equals graph totals).
  [[nodiscard]] std::uint64_t total_parameters() const;

 private:
  std::vector<LayerWeights> store_;
};

/// Execute the whole graph on `input` and return every node's output.
/// Validates that each computed tensor matches the graph's inferred shape.
/// Throws std::invalid_argument when `input` does not match the graph's
/// input layer shape.
[[nodiscard]] std::vector<Tensor> run_graph(const dnn::Graph& graph,
                                            const Tensor& input,
                                            const WeightStore& weights);

/// Convenience: run and return only the sink's output.
[[nodiscard]] Tensor run_graph_output(const dnn::Graph& graph,
                                      const Tensor& input,
                                      const WeightStore& weights);

/// A random input tensor matching the graph's input layer (values ~ N(0,1)).
[[nodiscard]] Tensor random_input(const dnn::Graph& graph, util::Rng& rng);

}  // namespace jps::runtime
