// A minimal fp32 tensor for the numeric inference runtime.
//
// The scheduling research only needs layer *timings*, but a reproduction
// should be able to actually run the networks it models: the runtime
// executes every zoo graph numerically, which (a) cross-checks the shape
// inference against real data flow and (b) powers a REAL profiling harness
// (wall-clock per layer on this host) as an alternative to the analytic
// latency model.
#pragma once

#include <cstddef>
#include <vector>

#include "dnn/tensor_shape.h"

namespace jps::runtime {

/// Dense row-major fp32 tensor.  CHW for images, {F} for vectors.
class Tensor {
 public:
  Tensor() = default;

  /// Zero-initialized tensor of `shape`.
  explicit Tensor(dnn::TensorShape shape)
      : shape_(std::move(shape)),
        data_(static_cast<std::size_t>(shape_.elements()), 0.0f) {}

  [[nodiscard]] const dnn::TensorShape& shape() const { return shape_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] float* data() { return data_.data(); }
  [[nodiscard]] const float* data() const { return data_.data(); }
  [[nodiscard]] float& operator[](std::size_t i) { return data_[i]; }
  [[nodiscard]] float operator[](std::size_t i) const { return data_[i]; }

  /// CHW element access (rank-3 tensors).
  [[nodiscard]] float& at(std::int64_t c, std::int64_t y, std::int64_t x) {
    return data_[idx(c, y, x)];
  }
  [[nodiscard]] float at(std::int64_t c, std::int64_t y, std::int64_t x) const {
    return data_[idx(c, y, x)];
  }

 private:
  [[nodiscard]] std::size_t idx(std::int64_t c, std::int64_t y,
                                std::int64_t x) const {
    return static_cast<std::size_t>(
        (c * shape_.height() + y) * shape_.width() + x);
  }

  dnn::TensorShape shape_;
  std::vector<float> data_;
};

}  // namespace jps::runtime
