#include "runtime/kernels.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "dnn/layer_impl.h"  // internal: concrete layer parameter access
#include "util/thread_pool.h"

namespace jps::runtime {

namespace {

using dnn::TensorShape;

TensorShape infer_output(const dnn::Layer& layer,
                         std::span<const Tensor> inputs) {
  std::vector<TensorShape> shapes;
  shapes.reserve(inputs.size());
  for (const Tensor& t : inputs) shapes.push_back(t.shape());
  return layer.infer(shapes);
}

void expect_weights(const dnn::Layer& layer, std::span<const Tensor> inputs,
                    const TensorShape& out, const LayerWeights& weights) {
  std::vector<TensorShape> shapes;
  for (const Tensor& t : inputs) shapes.push_back(t.shape());
  const std::uint64_t expected = layer.param_count(shapes, out);
  const std::uint64_t provided = weights.weights.size() + weights.bias.size();
  if (expected != provided) {
    throw std::invalid_argument(
        "run_layer: " + layer.describe() + " expects " +
        std::to_string(expected) + " parameters, got " +
        std::to_string(provided));
  }
}

Tensor conv2d(const dnn::detail::Conv2dLayer& conv, const Tensor& in,
              const LayerWeights& weights, const TensorShape& out_shape) {
  Tensor out(out_shape);
  const std::int64_t cin = in.shape().channels();
  const std::int64_t cout = out_shape.channels();
  const std::int64_t groups = conv.depthwise() ? cin : conv.groups();
  const std::int64_t cin_per_group = cin / groups;
  const std::int64_t cout_per_group = cout / groups;
  const std::int64_t kh = conv.kernel_h();
  const std::int64_t kw = conv.kernel_w();
  const std::int64_t stride = conv.stride();
  const std::int64_t ph = conv.padding_h();
  const std::int64_t pw = conv.padding_w();
  const bool has_bias = !weights.bias.empty();

  util::parallel_for(static_cast<std::size_t>(cout), [&](std::size_t oc_raw) {
    const auto oc = static_cast<std::int64_t>(oc_raw);
    const std::int64_t group = oc / cout_per_group;
    const float* w = weights.weights.data() +
                     oc * cin_per_group * kh * kw;  // [cin/g][kh][kw]
    for (std::int64_t oy = 0; oy < out_shape.height(); ++oy) {
      for (std::int64_t ox = 0; ox < out_shape.width(); ++ox) {
        float acc = has_bias ? weights.bias[static_cast<std::size_t>(oc)] : 0.0f;
        for (std::int64_t ic = 0; ic < cin_per_group; ++ic) {
          const std::int64_t in_c = group * cin_per_group + ic;
          for (std::int64_t ky = 0; ky < kh; ++ky) {
            const std::int64_t iy = oy * stride - ph + ky;
            if (iy < 0 || iy >= in.shape().height()) continue;
            for (std::int64_t kx = 0; kx < kw; ++kx) {
              const std::int64_t ix = ox * stride - pw + kx;
              if (ix < 0 || ix >= in.shape().width()) continue;
              acc += in.at(in_c, iy, ix) *
                     w[(ic * kh + ky) * kw + kx];
            }
          }
        }
        out.at(oc, oy, ox) = acc;
      }
    }
  });
  return out;
}

Tensor pool2d(const dnn::detail::Pool2dLayer& pool, const Tensor& in,
              const TensorShape& out_shape, std::int64_t kernel,
              std::int64_t stride, std::int64_t padding) {
  Tensor out(out_shape);
  const bool is_max = pool.pool_kind() == dnn::PoolKind::kMax;
  util::parallel_for(
      static_cast<std::size_t>(out_shape.channels()), [&](std::size_t c_raw) {
        const auto c = static_cast<std::int64_t>(c_raw);
        for (std::int64_t oy = 0; oy < out_shape.height(); ++oy) {
          for (std::int64_t ox = 0; ox < out_shape.width(); ++ox) {
            float acc = is_max ? -std::numeric_limits<float>::infinity() : 0.0f;
            int count = 0;
            for (std::int64_t ky = 0; ky < kernel; ++ky) {
              const std::int64_t iy = oy * stride - padding + ky;
              if (iy < 0 || iy >= in.shape().height()) continue;
              for (std::int64_t kx = 0; kx < kernel; ++kx) {
                const std::int64_t ix = ox * stride - padding + kx;
                if (ix < 0 || ix >= in.shape().width()) continue;
                const float v = in.at(c, iy, ix);
                if (is_max) {
                  acc = std::max(acc, v);
                } else {
                  acc += v;
                }
                ++count;
              }
            }
            out.at(c, oy, ox) = is_max ? acc
                                       : (count > 0 ? acc / static_cast<float>(
                                                                count)
                                                    : 0.0f);
          }
        }
      });
  return out;
}

Tensor dense(const Tensor& in, const LayerWeights& weights,
             const TensorShape& out_shape) {
  Tensor out(out_shape);
  const auto in_features = static_cast<std::size_t>(in.shape().elements());
  const auto out_features = static_cast<std::size_t>(out_shape.elements());
  const bool has_bias = !weights.bias.empty();
  util::parallel_for(out_features, [&](std::size_t o) {
    float acc = has_bias ? weights.bias[o] : 0.0f;
    const float* w = weights.weights.data() + o * in_features;
    for (std::size_t i = 0; i < in_features; ++i) acc += w[i] * in[i];
    out[o] = acc;
  });
  return out;
}

Tensor activation(const dnn::detail::ActivationLayer& act, const Tensor& in) {
  Tensor out(in.shape());
  switch (act.activation_kind()) {
    case dnn::ActivationKind::kReLU:
      for (std::size_t i = 0; i < in.size(); ++i) out[i] = std::max(0.0f, in[i]);
      break;
    case dnn::ActivationKind::kReLU6:
      for (std::size_t i = 0; i < in.size(); ++i)
        out[i] = std::clamp(in[i], 0.0f, 6.0f);
      break;
    case dnn::ActivationKind::kSigmoid:
      for (std::size_t i = 0; i < in.size(); ++i)
        out[i] = 1.0f / (1.0f + std::exp(-in[i]));
      break;
    case dnn::ActivationKind::kTanh:
      for (std::size_t i = 0; i < in.size(); ++i) out[i] = std::tanh(in[i]);
      break;
    case dnn::ActivationKind::kSoftmax: {
      // Numerically stable softmax over the whole tensor (used on the flat
      // classifier output).
      float max_v = -std::numeric_limits<float>::infinity();
      for (std::size_t i = 0; i < in.size(); ++i) max_v = std::max(max_v, in[i]);
      double sum = 0.0;
      for (std::size_t i = 0; i < in.size(); ++i) {
        out[i] = std::exp(in[i] - max_v);
        sum += out[i];
      }
      for (std::size_t i = 0; i < in.size(); ++i)
        out[i] = static_cast<float>(out[i] / sum);
      break;
    }
  }
  return out;
}

Tensor batch_norm(const Tensor& in, const LayerWeights& weights) {
  Tensor out(in.shape());
  const std::int64_t channels =
      in.shape().rank() == 3 ? in.shape().channels() : in.shape().elements();
  const std::size_t per_channel = in.size() / static_cast<std::size_t>(channels);
  for (std::int64_t c = 0; c < channels; ++c) {
    const float gamma = weights.weights[static_cast<std::size_t>(c)];
    const float beta = weights.weights[static_cast<std::size_t>(channels + c)];
    const std::size_t base = static_cast<std::size_t>(c) * per_channel;
    for (std::size_t i = 0; i < per_channel; ++i)
      out[base + i] = gamma * in[base + i] + beta;
  }
  return out;
}

Tensor lrn(const Tensor& in, std::int64_t size) {
  // Classic AlexNet LRN across channels: alpha=1e-4, beta=0.75, k=2.
  constexpr float kAlpha = 1e-4f;
  constexpr float kBeta = 0.75f;
  constexpr float kK = 2.0f;
  Tensor out(in.shape());
  const std::int64_t channels = in.shape().channels();
  const std::int64_t half = size / 2;
  for (std::int64_t c = 0; c < channels; ++c) {
    for (std::int64_t y = 0; y < in.shape().height(); ++y) {
      for (std::int64_t x = 0; x < in.shape().width(); ++x) {
        float sum_sq = 0.0f;
        for (std::int64_t j = std::max<std::int64_t>(0, c - half);
             j <= std::min(channels - 1, c + half); ++j) {
          const float v = in.at(j, y, x);
          sum_sq += v * v;
        }
        out.at(c, y, x) =
            in.at(c, y, x) /
            std::pow(kK + kAlpha * sum_sq, kBeta);
      }
    }
  }
  return out;
}

Tensor concat(std::span<const Tensor> inputs, const TensorShape& out_shape) {
  Tensor out(out_shape);
  std::size_t offset = 0;
  for (const Tensor& t : inputs) {
    std::copy(t.data(), t.data() + t.size(), out.data() + offset);
    offset += t.size();
  }
  return out;
}

}  // namespace

Tensor run_layer(const dnn::Layer& layer, std::span<const Tensor> inputs,
                 const LayerWeights& weights) {
  const TensorShape out_shape = infer_output(layer, inputs);
  expect_weights(layer, inputs, out_shape, weights);

  switch (layer.kind()) {
    case dnn::LayerKind::kInput:
      throw std::invalid_argument("run_layer: input nodes carry the data");
    case dnn::LayerKind::kConv2d:
      return conv2d(static_cast<const dnn::detail::Conv2dLayer&>(layer),
                    inputs[0], weights, out_shape);
    case dnn::LayerKind::kPool2d: {
      const auto& pool = static_cast<const dnn::detail::Pool2dLayer&>(layer);
      return pool2d(pool, inputs[0], out_shape, pool.kernel(), pool.stride(),
                    pool.padding());
    }
    case dnn::LayerKind::kGlobalAvgPool: {
      Tensor out(out_shape);
      const std::int64_t channels = inputs[0].shape().channels();
      const auto spatial = static_cast<std::size_t>(
          inputs[0].shape().height() * inputs[0].shape().width());
      for (std::int64_t c = 0; c < channels; ++c) {
        double sum = 0.0;
        const std::size_t base = static_cast<std::size_t>(c) * spatial;
        for (std::size_t i = 0; i < spatial; ++i) sum += inputs[0][base + i];
        out[static_cast<std::size_t>(c)] =
            static_cast<float>(sum / static_cast<double>(spatial));
      }
      return out;
    }
    case dnn::LayerKind::kDense:
      return dense(inputs[0], weights, out_shape);
    case dnn::LayerKind::kActivation:
      return activation(static_cast<const dnn::detail::ActivationLayer&>(layer),
                        inputs[0]);
    case dnn::LayerKind::kBatchNorm:
      return batch_norm(inputs[0], weights);
    case dnn::LayerKind::kLRN:
      return lrn(inputs[0],
                 static_cast<const dnn::detail::LRNLayer&>(layer).window_size());
    case dnn::LayerKind::kDropout: {
      Tensor out(out_shape);
      std::copy(inputs[0].data(), inputs[0].data() + inputs[0].size(),
                out.data());
      return out;
    }
    case dnn::LayerKind::kFlatten: {
      Tensor out(out_shape);
      std::copy(inputs[0].data(), inputs[0].data() + inputs[0].size(),
                out.data());
      return out;
    }
    case dnn::LayerKind::kConcat:
      return concat(inputs, out_shape);
    case dnn::LayerKind::kAdd: {
      Tensor out(out_shape);
      for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = inputs[0][i] + inputs[1][i];
      return out;
    }
  }
  throw std::invalid_argument("run_layer: unknown layer kind");
}

}  // namespace jps::runtime
