// Naive (but threaded) fp32 kernels for every layer kind in the zoo.
// Reference semantics over speed: these exist to run the graphs for real —
// validating shape inference with live data and feeding the host profiler —
// not to compete with a BLAS-backed framework.
#pragma once

#include <span>

#include "dnn/layer.h"
#include "runtime/tensor.h"

namespace jps::runtime {

/// Per-layer learned parameters (flat fp32 blobs in the layer's own layout).
struct LayerWeights {
  /// Main weight blob: conv [cout][cin/g][kh][kw], dense [out][in],
  /// batch-norm [2*C] (gamma then beta).  Empty for parameter-free layers.
  std::vector<float> weights;
  /// Bias [cout]/[out]; empty when the layer has none.
  std::vector<float> bias;
};

/// Execute one layer on already-computed inputs.
/// `layer` must be a zoo layer kind; weights sizes must match
/// layer.param_count (validated).  Throws std::invalid_argument on
/// mismatches.  Threaded over output channels/rows via util::parallel_for
/// for the heavy kernels.
[[nodiscard]] Tensor run_layer(const dnn::Layer& layer,
                               std::span<const Tensor> inputs,
                               const LayerWeights& weights);

}  // namespace jps::runtime
