#include "fault/bandwidth_estimator.h"

#include <cmath>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/obs.h"
#include "util/units.h"

namespace jps::fault {

BandwidthEstimator::BandwidthEstimator(double initial_mbps, double alpha)
    : alpha_(alpha), estimate_mbps_(initial_mbps), baseline_mbps_(initial_mbps) {
  if (initial_mbps <= 0.0)
    throw std::invalid_argument("BandwidthEstimator: initial_mbps <= 0");
  if (alpha <= 0.0 || alpha > 1.0)
    throw std::invalid_argument("BandwidthEstimator: alpha outside (0, 1]");
}

void BandwidthEstimator::observe(std::uint64_t bytes, double duration_ms,
                                 double setup_latency_ms) {
  const double serialize_ms = duration_ms - setup_latency_ms;
  if (bytes == 0 || serialize_ms <= 0.0) return;
  const double bytes_per_ms = static_cast<double>(bytes) / serialize_ms;
  const double observed_mbps = bytes_per_ms / util::mbps_to_bytes_per_ms(1.0);
  estimate_mbps_ = alpha_ * observed_mbps + (1.0 - alpha_) * estimate_mbps_;
  ++observations_;
  // Last EWMA estimate, visible in --metrics-out alongside the plan-cache
  // and simulator series (the "effective bandwidth" the replanner acts on).
  static obs::Gauge& estimate_gauge =
      obs::gauge("fault.bandwidth_estimate_mbps");
  estimate_gauge.set(estimate_mbps_);
}

double BandwidthEstimator::drift_ratio() const {
  return std::abs(estimate_mbps_ - baseline_mbps_) / baseline_mbps_;
}

}  // namespace jps::fault
