// Online uplink-bandwidth estimation from observed transfer times.
//
// The fault-aware executor feeds every successful transfer (bytes, observed
// duration) into this EWMA estimator; the replanning hook compares the
// estimate against the bandwidth the current plan was made for and triggers
// a replan of the not-yet-admitted jobs when the relative drift exceeds a
// threshold.  All state is plain doubles — deterministic and copyable.
#pragma once

#include <cstdint>

namespace jps::fault {

class BandwidthEstimator {
 public:
  /// `initial_mbps` seeds both the estimate and the baseline (the rate the
  /// active plan assumes).  `alpha` is the EWMA weight of each new
  /// observation in (0, 1].  Throws std::invalid_argument on bad values.
  explicit BandwidthEstimator(double initial_mbps, double alpha = 0.3);

  /// Record one completed transfer.  The setup latency is subtracted so the
  /// estimate tracks the serialization rate; observations with zero bytes
  /// or non-positive serialize time are ignored.
  void observe(std::uint64_t bytes, double duration_ms,
               double setup_latency_ms);

  [[nodiscard]] double estimate_mbps() const { return estimate_mbps_; }

  /// The rate the current plan was computed for.
  [[nodiscard]] double baseline_mbps() const { return baseline_mbps_; }

  /// |estimate - baseline| / baseline.
  [[nodiscard]] double drift_ratio() const;

  /// True when the drift ratio exceeds `threshold`.
  [[nodiscard]] bool drifted(double threshold) const {
    return drift_ratio() > threshold;
  }

  /// Adopt the current estimate as the new baseline (call after replanning).
  void rebase() { baseline_mbps_ = estimate_mbps_; }

  [[nodiscard]] int observations() const { return observations_; }

 private:
  double alpha_;
  double estimate_mbps_;
  double baseline_mbps_;
  int observations_ = 0;
};

}  // namespace jps::fault
