#include "fault/fault_spec.h"

#include <algorithm>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "check/contracts.h"
#include "check/lint_fault.h"

namespace jps::fault {

namespace {

constexpr const char* kHeader = "jps-faults v1";

// Draw `count` pairwise-disjoint [start, end) windows over [0, horizon).
// Rejection sampling with a bounded attempt budget: with a seeded rng the
// result is deterministic, and an over-packed request simply yields fewer
// windows rather than looping forever.
std::vector<std::pair<double, double>> draw_windows(int count, double min_ms,
                                                    double max_ms,
                                                    double horizon_ms,
                                                    util::Rng& rng) {
  std::vector<std::pair<double, double>> windows;
  if (count < 1 || horizon_ms <= 0.0) return windows;
  int attempts = count * 64;
  while (static_cast<int>(windows.size()) < count && attempts-- > 0) {
    const double duration =
        std::min(rng.uniform(min_ms, std::max(min_ms, max_ms)), horizon_ms);
    const double latest = horizon_ms - duration;
    const double start = latest > 0.0 ? rng.uniform(0.0, latest) : 0.0;
    const double end = start + duration;
    if (duration <= 0.0) continue;
    const bool overlaps =
        std::any_of(windows.begin(), windows.end(), [&](const auto& w) {
          return start < w.second && w.first < end;
        });
    if (!overlaps) windows.emplace_back(start, end);
  }
  std::sort(windows.begin(), windows.end());
  return windows;
}

double factor_at(const std::vector<FactorWindow>& windows, double t_ms) {
  for (const FactorWindow& w : windows) {
    if (w.start_ms > t_ms) break;  // sorted: nothing later can cover t
    if (t_ms < w.end_ms) return w.factor;
  }
  return 1.0;
}

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDrift: return "drift";
    case FaultKind::kOutage: return "outage";
    case FaultKind::kCloudSlow: return "cloud_slow";
    case FaultKind::kMobileThrottle: return "mobile_throttle";
    case FaultKind::kNetDelay: return "net_delay";
    case FaultKind::kNetShort: return "net_short";
    case FaultKind::kNetDrop: return "net_drop";
    case FaultKind::kNetCorrupt: return "net_corrupt";
  }
  return "?";
}

bool fault_kind_takes_value(FaultKind kind) {
  switch (kind) {
    case FaultKind::kOutage:
    case FaultKind::kNetShort:
    case FaultKind::kNetDrop:
      return false;
    case FaultKind::kDrift:
    case FaultKind::kCloudSlow:
    case FaultKind::kMobileThrottle:
    case FaultKind::kNetDelay:
    case FaultKind::kNetCorrupt:
      return true;
  }
  return false;
}

bool fault_kind_is_net(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNetDelay:
    case FaultKind::kNetShort:
    case FaultKind::kNetDrop:
    case FaultKind::kNetCorrupt:
      return true;
    default:
      return false;
  }
}

std::vector<FaultEvent> FaultSpec::of_kind(FaultKind kind) const {
  std::vector<FaultEvent> out;
  for (const FaultEvent& e : events) {
    if (e.kind == kind) out.push_back(e);
  }
  std::sort(out.begin(), out.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              return a.start_ms < b.start_ms;
            });
  return out;
}

FaultSpec FaultSpec::parse(const std::string& text) {
  // Parse and semantic rules run through the shared rule packs: a spec that
  // loads here is exactly a spec `jps_lint` accepts, so a malformed or
  // invariant-violating artifact is rejected before any execution.
  check::DiagnosticList diagnostics;
  std::optional<FaultSpec> spec =
      check::parse_fault_spec_text(text, diagnostics);
  if (spec && !diagnostics.has_errors())
    check::lint_fault_spec(*spec, diagnostics);
  check::throw_parse_error_if_any(diagnostics, "fault_spec");
  JPS_INVARIANT(spec.has_value(),
                "an error-free parse always produces a spec");
  return std::move(*spec);
}

std::string FaultSpec::serialize() const {
  std::ostringstream os;
  os.precision(17);  // doubles round-trip exactly through the text format
  os << kHeader << '\n';
  for (const FaultEvent& e : events) {
    os << fault_kind_name(e.kind) << ' ' << e.start_ms << ' ' << e.end_ms;
    if (fault_kind_takes_value(e.kind)) os << ' ' << e.value;
    os << '\n';
  }
  return os.str();
}

FaultSpec FaultSpec::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("fault_spec: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

void FaultSpec::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("fault_spec: cannot open " + path);
  out << serialize();
  if (!out) throw std::runtime_error("fault_spec: write failed for " + path);
}

FaultSpec FaultSpec::random(const RandomFaultOptions& options, util::Rng& rng) {
  if (options.base_mbps <= 0.0)
    throw std::invalid_argument("FaultSpec::random: base_mbps <= 0");
  FaultSpec spec;
  const auto add = [&](FaultKind kind, int count, double dur_min,
                       double dur_max, double value_min, double value_max) {
    for (const auto& [start, end] :
         draw_windows(count, dur_min, dur_max, options.horizon_ms, rng)) {
      FaultEvent e;
      e.kind = kind;
      e.start_ms = start;
      e.end_ms = end;
      if (fault_kind_takes_value(kind)) {
        double v = rng.uniform(value_min, std::max(value_min, value_max));
        if (kind == FaultKind::kDrift) v *= options.base_mbps;
        e.value = v;
      }
      spec.events.push_back(e);
    }
  };
  // Fixed draw order (drift, outage, cloud, mobile) keeps traces
  // reproducible from the seed alone.
  add(FaultKind::kDrift, options.drift_segments, options.drift_duration_min_ms,
      options.drift_duration_max_ms, options.drift_factor_min,
      options.drift_factor_max);
  add(FaultKind::kOutage, options.outages, options.outage_duration_min_ms,
      options.outage_duration_max_ms, 0.0, 0.0);
  add(FaultKind::kCloudSlow, options.cloud_slow_windows,
      options.window_duration_min_ms, options.window_duration_max_ms,
      options.cloud_factor_min, options.cloud_factor_max);
  add(FaultKind::kMobileThrottle, options.mobile_throttle_windows,
      options.window_duration_min_ms, options.window_duration_max_ms,
      options.mobile_factor_min, options.mobile_factor_max);
  return spec;
}

FaultTimeline::FaultTimeline(const FaultSpec& spec, net::Channel base)
    : channel_(base) {
  // Admission runs through the shared fault rule pack (F003-F006), so this
  // compile step and `jps_lint` agree on what a valid spec is — and ALL
  // violations are reported at once rather than just the first.
  {
    check::DiagnosticList diagnostics;
    check::lint_fault_spec(spec, diagnostics);
    check::throw_validation_error_if_any(diagnostics, "FaultTimeline");
  }
  std::vector<net::BandwidthSegment> segments;
  std::vector<net::Outage> outages;
  for (const FaultEvent& e : spec.events) {
    // net_* windows are byte offsets with no time axis: they neither shape
    // the channel nor extend the horizon (FaultyByteStream consumes them).
    if (fault_kind_is_net(e.kind)) continue;
    switch (e.kind) {
      case FaultKind::kDrift:
        segments.push_back({e.start_ms, e.end_ms, e.value});
        break;
      case FaultKind::kOutage:
        outages.push_back({e.start_ms, e.end_ms});
        break;
      case FaultKind::kCloudSlow:
        cloud_.push_back({e.start_ms, e.end_ms, e.value});
        break;
      case FaultKind::kMobileThrottle:
        mobile_.push_back({e.start_ms, e.end_ms, e.value});
        break;
      default:
        break;
    }
    horizon_ms_ = std::max(horizon_ms_, e.end_ms);
  }
  channel_ = net::TimeVaryingChannel(base, std::move(segments),
                                     std::move(outages));
  // factor_at walks windows in start order; the pack proved them disjoint.
  const auto by_start = [](const FactorWindow& a, const FactorWindow& b) {
    return a.start_ms < b.start_ms;
  };
  std::sort(mobile_.begin(), mobile_.end(), by_start);
  std::sort(cloud_.begin(), cloud_.end(), by_start);
}

double FaultTimeline::mobile_factor_at(double t_ms) const {
  return factor_at(mobile_, t_ms);
}

double FaultTimeline::cloud_factor_at(double t_ms) const {
  return factor_at(cloud_, t_ms);
}

}  // namespace jps::fault
