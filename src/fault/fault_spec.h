// Scriptable fault timelines for robustness experiments.
//
// A FaultSpec is a list of timed fault events — uplink bandwidth drift
// segments, link outages, cloud straggler windows, mobile thermal-throttle
// windows — loadable from a small line-oriented text format and composable
// with seeded randomness (FaultSpec::random).  A FaultTimeline compiles a
// spec against a base net::Channel into the views the fault-aware executor
// consumes: a net::TimeVaryingChannel for the uplink plus per-device
// multiplicative slowdown windows.
//
// Text format ("jps-faults v1" header, '#' comments, blank lines ignored):
//
//   jps-faults v1
//   drift           <start_ms> <end_ms> <mbps>     # uplink runs at <mbps>
//   outage          <start_ms> <end_ms>            # overlapping transfers fail
//   cloud_slow      <start_ms> <end_ms> <factor>   # cloud stages x<factor>
//   mobile_throttle <start_ms> <end_ms> <factor>   # mobile stages x<factor>
//
// Transport (chaos) kinds, consumed by serve::FaultyByteStream.  Their
// windows are BYTE OFFSETS into one stream direction, not milliseconds —
// byte-addressed faults replay identically regardless of timing, which is
// what makes `jps_serve selfcheck --chaos` deterministic:
//
//   net_delay       <start_b> <end_b> <ms>         # ops sleep <ms> in window
//   net_short       <start_b> <end_b>              # 1-byte reads/writes
//   net_drop        <start_b> <end_b>              # peer dies at <start_b>
//   net_corrupt     <start_b> <end_b> <xor_mask>   # read bytes ^= mask
//
// Windows of the same kind must not overlap (different kinds may).  An empty
// spec compiles to a fault-free timeline that reproduces the stationary
// simulation bit-for-bit (see net::TimeVaryingChannel).  FaultTimeline
// ignores net_* events (they have no time axis); FaultyByteStream ignores
// the four timeline kinds symmetrically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/channel.h"
#include "util/rng.h"

namespace jps::fault {

enum class FaultKind {
  kDrift,           // uplink bandwidth override, value = mbps
  kOutage,          // link down, value unused
  kCloudSlow,       // cloud straggler window, value = slowdown factor
  kMobileThrottle,  // thermal throttle window, value = slowdown factor
  kNetDelay,        // chaos: ops in [start, end) bytes sleep value ms
  kNetShort,        // chaos: 1-byte reads/writes in the window, value unused
  kNetDrop,         // chaos: stream dies once an offset reaches start
  kNetCorrupt,      // chaos: read bytes XORed with value (integer 1..255)
};

/// Keyword used in the text format ("drift", "outage", ...).
[[nodiscard]] const char* fault_kind_name(FaultKind kind);

/// Whether the kind's text line carries a trailing <value> field.  Shared by
/// the serializer and the lint pack so the two can never disagree.
[[nodiscard]] bool fault_kind_takes_value(FaultKind kind);

/// True for the byte-addressed transport kinds (net_*), which
/// FaultTimeline skips and serve::FaultyByteStream consumes.
[[nodiscard]] bool fault_kind_is_net(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::kDrift;
  double start_ms = 0.0;
  double end_ms = 0.0;
  /// Drift: absolute uplink rate in Mbps.  Slowdowns: multiplicative factor
  /// applied to stage durations starting inside the window (> 1 slows).
  /// net_delay: per-op sleep in ms.  net_corrupt: XOR mask, integer 1..255.
  /// Outage, net_short, net_drop: unused (0).  For net_* kinds the window
  /// bounds are byte offsets, not milliseconds.
  double value = 0.0;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// Knobs for FaultSpec::random.  Windows of one kind are drawn disjoint and
/// uniformly over [0, horizon_ms); durations are uniform in their range.
struct RandomFaultOptions {
  double horizon_ms = 2000.0;
  /// Uplink rate the drift factors multiply (usually the channel's nominal).
  double base_mbps = 10.0;

  int drift_segments = 2;
  double drift_duration_min_ms = 100.0;
  double drift_duration_max_ms = 400.0;
  double drift_factor_min = 0.3;
  double drift_factor_max = 1.5;

  int outages = 1;
  double outage_duration_min_ms = 20.0;
  double outage_duration_max_ms = 80.0;

  int cloud_slow_windows = 0;
  double cloud_factor_min = 1.5;
  double cloud_factor_max = 4.0;

  int mobile_throttle_windows = 0;
  double mobile_factor_min = 1.25;
  double mobile_factor_max = 2.5;

  /// Duration range shared by the cloud/mobile slowdown windows.
  double window_duration_min_ms = 50.0;
  double window_duration_max_ms = 300.0;
};

struct FaultSpec {
  std::vector<FaultEvent> events;

  [[nodiscard]] bool empty() const { return events.empty(); }

  /// Events of one kind, sorted by start time.
  [[nodiscard]] std::vector<FaultEvent> of_kind(FaultKind kind) const;

  /// Parse the text format.  Throws std::runtime_error on a malformed
  /// header, unknown keyword, or bad field.
  [[nodiscard]] static FaultSpec parse(const std::string& text);

  /// Serialize to the text format (doubles round-trip exactly).
  [[nodiscard]] std::string serialize() const;

  [[nodiscard]] static FaultSpec load(const std::string& path);
  void save(const std::string& path) const;

  /// Draw a random spec.  Deterministic for a given (options, rng state);
  /// the rng is consumed in a fixed order, so the same seed always yields
  /// the same trace.
  [[nodiscard]] static FaultSpec random(const RandomFaultOptions& options,
                                        util::Rng& rng);
};

/// One multiplicative slowdown window on a compute device.
struct FactorWindow {
  double start_ms = 0.0;
  double end_ms = 0.0;
  double factor = 1.0;
};

/// A spec compiled against a base channel: the executable view of the
/// faults.  Throws std::invalid_argument on invalid events (end <= start,
/// negative start, non-positive drift rate or slowdown factor, overlap
/// within a kind).
class FaultTimeline {
 public:
  FaultTimeline(const FaultSpec& spec, net::Channel base);

  /// The uplink with drift segments and outages applied.
  [[nodiscard]] const net::TimeVaryingChannel& channel() const {
    return channel_;
  }

  /// Multiplier for a mobile compute stage STARTING at `t_ms` (1 outside
  /// all windows — exactly 1.0, so fault-free durations are unchanged).
  [[nodiscard]] double mobile_factor_at(double t_ms) const;

  /// Multiplier for a cloud compute stage starting at `t_ms`.
  [[nodiscard]] double cloud_factor_at(double t_ms) const;

  [[nodiscard]] const std::vector<FactorWindow>& mobile_windows() const {
    return mobile_;
  }
  [[nodiscard]] const std::vector<FactorWindow>& cloud_windows() const {
    return cloud_;
  }

  /// True when no event of any kind is scripted.
  [[nodiscard]] bool fault_free() const {
    return channel_.stationary() && mobile_.empty() && cloud_.empty();
  }

  /// End of the last scripted event (0 when fault-free).
  [[nodiscard]] double horizon_ms() const { return horizon_ms_; }

 private:
  net::TimeVaryingChannel channel_;
  std::vector<FactorWindow> mobile_;  // sorted, non-overlapping
  std::vector<FactorWindow> cloud_;   // sorted, non-overlapping
  double horizon_ms_ = 0.0;
};

}  // namespace jps::fault
