// Fault-aware plan execution: the discrete-event executor of sim/executor.h
// threaded through a FaultTimeline.
//
// Differences from the fault-free executor:
//   * transfer durations come from the time-varying channel, resolved when
//     the transfer STARTS (dynamic tasks);
//   * a transfer overlapping an outage FAILS and is retried with
//     exponential backoff and a jittered delay, up to RetryPolicy::budget
//     retries; the retry keeps its job's priority (it does not go to the
//     back of the uplink queue);
//   * an exhausted budget triggers graceful degradation: the job's
//     remaining layers run on the MOBILE device (the curve's per-cut local
//     node sets say exactly what is still missing), so every job completes
//     — no aborts;
//   * compute durations are scaled by the timeline's mobile-throttle /
//     cloud-straggler windows (factor at the stage's start time);
//   * successful transfers feed an EWMA BandwidthEstimator; with
//     ReplanPolicy::enabled, jobs are admitted in a sliding window and the
//     not-yet-admitted remainder is re-planned (via a ReplanFn, typically
//     make_replan_hook) whenever the estimate drifts past the threshold.
//
// Determinism: the event loop is single-threaded and all randomness flows
// through the caller's Rng in event order, so one (plan, timeline, seed) is
// bit-reproducible at any thread count.  On a fault-free timeline with zero
// noise and replanning off, the result is BIT-IDENTICAL to
// sim::simulate_plan — the differential tests in tests/sim/ and
// tests/fault/ enforce this.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/plan.h"
#include "fault/fault_spec.h"
#include "sim/executor.h"
#include "util/stats.h"

namespace jps::fault {

/// Transfer retry behavior.
struct RetryPolicy {
  /// Retries allowed per job after the first failed attempt (so a job makes
  /// at most budget + 1 attempts before degrading to local execution).
  int budget = 3;
  /// Delay before retry k is base * factor^(k-1), capped at max.
  double backoff_base_ms = 10.0;
  double backoff_factor = 2.0;
  double backoff_max_ms = 500.0;
  /// Each backoff is stretched by uniform(0, jitter_frac) to de-synchronize
  /// retries.  Draws from the run's Rng only when a retry actually happens,
  /// so fault-free runs consume no extra randomness.  0 disables jitter.
  double jitter_frac = 0.1;
};

/// The delay before retry `retry_index` (1-based) under `policy`: capped
/// exponential base * factor^(retry_index-1), then jittered.  With
/// `full_jitter` false (the simulator's historical behavior) the capped
/// delay is stretched by uniform(0, jitter_frac); with `full_jitter` true
/// the whole delay is redrawn as uniform(0, capped] — AWS-style full
/// jitter, which serve::Client uses so a fleet retrying one outage does not
/// re-synchronize into a thundering herd.  Consumes rng only when jitter
/// actually applies.
[[nodiscard]] double backoff_delay_ms(const RetryPolicy& policy,
                                      int retry_index, util::Rng& rng,
                                      bool full_jitter = false);

/// Drift-triggered replanning behavior.
struct ReplanPolicy {
  bool enabled = false;
  /// Replan when |estimate - baseline| / baseline exceeds this.
  double drift_threshold = 0.25;
  /// EWMA weight of each bandwidth observation.
  double ewma_alpha = 0.3;
  /// Jobs admitted (mobile + transfer submitted) ahead of execution.  Only
  /// un-admitted jobs can be re-cut.  Must be >= 1.
  int admission_window = 2;
};

/// Re-cut the remaining jobs for an estimated bandwidth: returns one cut
/// index per remaining job, in admission order.  Returning a wrong-sized
/// vector skips the replan.
using ReplanFn =
    std::function<std::vector<std::size_t>(double estimate_mbps, int n_jobs)>;

struct FaultExecOptions {
  sim::SimOptions sim;
  RetryPolicy retry;
  ReplanPolicy replan;
};

/// What the faults did to one run.
struct FaultStats {
  /// Transfers whose outcome a drift segment or outage altered.
  int perturbed_transfers = 0;
  /// Compute stages started inside a slowdown window.
  int throttled_stages = 0;
  int transfer_failures = 0;
  int retries = 0;
  /// Total backoff delay scheduled across all retries.
  double backoff_ms = 0.0;
  /// Jobs that exhausted their retry budget and completed on the mobile
  /// device.
  int fallbacks = 0;
  int replans = 0;

  [[nodiscard]] bool any_fault() const {
    return perturbed_transfers > 0 || throttled_stages > 0;
  }
};

struct FaultSimResult {
  sim::SimResult sim;
  FaultStats stats;
};

/// Execute `plan` under `timeline`.  Mirrors sim::simulate_plan otherwise:
/// `curve` must be the plan's curve, noise comes from `options.sim`, and a
/// non-null `capture` receives the finished event engine for tracing.
/// `replan` is consulted only when options.replan.enabled.
[[nodiscard]] FaultSimResult simulate_plan_under_faults(
    const dnn::Graph& graph, const partition::ProfileCurve& curve,
    const core::ExecutionPlan& plan, const profile::LatencyModel& mobile,
    const profile::LatencyModel& cloud, const FaultTimeline& timeline,
    const FaultExecOptions& options, util::Rng& rng,
    sim::EventSimulator* capture = nullptr, const ReplanFn& replan = {});

/// A ReplanFn that re-plans with core::Planner on the curve re-based to the
/// (quantized) estimated bandwidth.  Estimates are snapped to multiples of
/// `quantum_mbps` and results memoized in a private core::PlanCache, so a
/// long run replans O(distinct rates) times, not O(drift events).  The
/// returned hook is thread-safe and can be shared across Monte-Carlo
/// trials.  `strategy` must be one Planner::plan accepts (not kRobust).
[[nodiscard]] ReplanFn make_replan_hook(partition::ProfileCurve curve,
                                        net::Channel channel,
                                        core::Strategy strategy,
                                        double quantum_mbps = 0.25);

/// Monte-Carlo campaign over randomized fault traces.
struct FaultMonteCarloOptions {
  int trials = 101;
  double comp_noise_sigma = 0.0;
  double comm_noise_sigma = 0.0;
  bool include_cloud = true;
  std::uint64_t seed = 1;
  /// Concurrency cap (0 = library default); per-trial seeded streams make
  /// the result identical for any thread count.
  std::size_t threads = 0;
  /// Per-trial random trace parameters.  base_mbps is overwritten with the
  /// channel's nominal bandwidth.
  RandomFaultOptions faults;
  RetryPolicy retry;
  ReplanPolicy replan;
};

struct FaultMonteCarloResult {
  util::Summary makespan;
  /// Fraction of trials where at least one fault altered the run.
  double fault_rate = 0.0;
  /// Fraction of jobs (across all trials) that degraded to local execution.
  double fallback_rate = 0.0;
  /// Mean transfer retries per trial.
  double mean_retries = 0.0;
  /// Fraction of trials that re-planned at least once.
  double replan_rate = 0.0;
};

/// Run `plan` `trials` times, each against an independently drawn fault
/// trace (and noise draws), and summarize makespans plus fault outcomes.
[[nodiscard]] FaultMonteCarloResult fault_monte_carlo(
    const dnn::Graph& graph, const partition::ProfileCurve& curve,
    const core::ExecutionPlan& plan, const profile::LatencyModel& mobile,
    const profile::LatencyModel& cloud, const net::Channel& channel,
    const FaultMonteCarloOptions& options, const ReplanFn& replan = {});

}  // namespace jps::fault
