#include "fault/fault_executor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "core/plan_cache.h"
#include "core/planner.h"
#include "fault/bandwidth_estimator.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "sim/event_sim.h"
#include "util/thread_pool.h"

namespace jps::fault {

double backoff_delay_ms(const RetryPolicy& policy, int retry_index,
                        util::Rng& rng, bool full_jitter) {
  double backoff = policy.backoff_base_ms *
                   std::pow(policy.backoff_factor,
                            static_cast<double>(retry_index - 1));
  backoff = std::min(backoff, policy.backoff_max_ms);
  if (full_jitter) {
    backoff = rng.uniform(0.0, backoff);
  } else if (policy.jitter_frac > 0.0) {
    backoff *= 1.0 + rng.uniform(0.0, policy.jitter_frac);
  }
  return backoff;
}

namespace {

using sim::EventSimulator;
using sim::ResourceId;
using sim::TaskId;

constexpr TaskId kNoTask = std::numeric_limits<TaskId>::max();

struct JobState {
  std::size_t cut_index = 0;
  int job_id = 0;
  /// Comm noise factor drawn once at admission; retries reuse it (the
  /// attempt-to-attempt variation comes from the channel state itself).
  double comm_noise = 1.0;
  int attempts = 0;  // transfer attempts submitted so far
  bool fell_back = false;
  std::vector<TaskId> node_task;  // per graph node, kNoTask if absent
  std::vector<char> is_local;
  std::vector<TaskId> local;
  std::vector<TaskId> transfers;  // every attempt, in order
  std::vector<TaskId> remote;
  std::vector<TaskId> fallback;
  // Outcome of the latest transfer attempt, written by its duration
  // callback at start time and read by the finish hook.
  bool last_completed = true;
  bool last_perturbed = false;
  double last_duration = 0.0;
};

/// One run's mutable state; the event engine's finish hook drives it.
struct Engine {
  EventSimulator& sim;
  const dnn::Graph& graph;
  const partition::ProfileCurve& curve;
  const profile::LatencyModel& mobile;
  const profile::LatencyModel& cloud;
  const FaultTimeline& timeline;
  const FaultExecOptions& opts;
  util::Rng& rng;
  const ReplanFn& replan_fn;

  ResourceId mobile_res = 0;
  ResourceId link_res = 0;
  ResourceId cloud_res = 0;

  BandwidthEstimator estimator;
  std::vector<JobState> jobs;
  std::size_t next_admit = 0;
  FaultStats stats;
  // Task -> job for transfer attempts, and for the "job resolved" marker of
  // jobs without a transfer (their last mobile task).
  std::unordered_map<TaskId, std::size_t> transfer_job;
  std::unordered_map<TaskId, std::size_t> marker_job;

  Engine(EventSimulator& s, const dnn::Graph& g,
         const partition::ProfileCurve& c, const profile::LatencyModel& m,
         const profile::LatencyModel& cl, const FaultTimeline& t,
         const FaultExecOptions& o, util::Rng& r, const ReplanFn& rp)
      : sim(s), graph(g), curve(c), mobile(m), cloud(cl), timeline(t),
        opts(o), rng(r), replan_fn(rp),
        estimator(t.channel().base().bandwidth_mbps(),
                  o.replan.ewma_alpha) {}

  /// Compute-stage duration resolved at start: nominal (noise already
  /// applied) scaled by the device's slowdown window.  The == 1.0 guard
  /// keeps fault-free durations bit-identical (and skips the stat).
  sim::DurationFn compute_duration(double nominal, bool on_cloud) {
    return [this, nominal, on_cloud](double start_ms) {
      const double factor = on_cloud ? timeline.cloud_factor_at(start_ms)
                                     : timeline.mobile_factor_at(start_ms);
      if (factor == 1.0) return nominal;
      ++stats.throttled_stages;
      return nominal * factor;
    };
  }

  /// Submit one job's mobile layers and (if it offloads) its first transfer
  /// attempt.  All of a job's tasks share priority = job position, so work
  /// submitted later (retries, fallback, lazy cloud stages) keeps the job's
  /// place in each resource's FIFO.
  void admit(std::size_t j) {
    JobState& js = jobs[j];
    const partition::CutPoint& cut = curve.cut(js.cut_index);
    js.node_task.assign(graph.size(), kNoTask);
    js.is_local.assign(graph.size(), 0);
    for (const dnn::NodeId v : cut.local_nodes) js.is_local[v] = 1;

    for (const dnn::NodeId v : cut.local_nodes) {
      std::vector<TaskId> deps;
      for (const dnn::NodeId p : graph.predecessors(v)) {
        if (js.node_task[p] != kNoTask) deps.push_back(js.node_task[p]);
      }
      const double nominal = mobile.node_time_ms(graph, v) *
                             rng.lognormal_factor(opts.sim.comp_noise_sigma);
      js.node_task[v] = sim.add_dynamic_task(
          mobile_res, compute_duration(nominal, /*on_cloud=*/false), deps,
          "j" + std::to_string(j) + ":m:" + std::to_string(v), 0.0, j);
      js.local.push_back(js.node_task[v]);
    }

    if (cut.offload_bytes > 0) {
      js.comm_noise = rng.lognormal_factor(opts.sim.comm_noise_sigma);
      submit_transfer(j, 0.0);
    } else if (!js.local.empty()) {
      // No transfer: the job resolves when its last mobile layer finishes.
      marker_job[js.local.back()] = j;
    }
  }

  void submit_transfer(std::size_t j, double release_ms) {
    JobState& js = jobs[j];
    const partition::CutPoint& cut = curve.cut(js.cut_index);
    std::vector<TaskId> deps;
    if (js.attempts == 0) {
      for (const dnn::NodeId v : cut.cut_nodes)
        deps.push_back(js.node_task[v]);
    }  // retries: the cut tensors are already materialized
    ++js.attempts;
    const std::uint64_t bytes = cut.offload_bytes;
    const TaskId id = sim.add_dynamic_task(
        link_res,
        [this, j, bytes](double start_ms) {
          JobState& job = jobs[j];
          const net::TimeVaryingChannel::Transfer attempt =
              timeline.channel().transfer(start_ms, bytes);
          job.last_completed = attempt.completed;
          job.last_perturbed = attempt.perturbed;
          double duration = attempt.duration_ms;
          if (attempt.completed && job.comm_noise != 1.0)
            duration *= job.comm_noise;
          job.last_duration = duration;
          return duration;
        },
        deps,
        "j" + std::to_string(j) + ":tx" +
            (js.attempts > 1 ? "#" + std::to_string(js.attempts) : ""),
        release_ms, j);
    transfer_job[id] = j;
    js.transfers.push_back(id);
  }

  /// Cloud layers, submitted lazily once the job's transfer has landed
  /// (an attempt may fail, so the stage cannot be scheduled up front).
  void submit_cloud(std::size_t j) {
    if (!opts.sim.include_cloud) return;
    JobState& js = jobs[j];
    for (dnn::NodeId v = 0; v < graph.size(); ++v) {
      if (js.is_local[v]) continue;
      std::vector<TaskId> deps;
      for (const dnn::NodeId p : graph.predecessors(v)) {
        if (!js.is_local[p] && js.node_task[p] != kNoTask)
          deps.push_back(js.node_task[p]);
      }  // locally produced inputs arrived with the (finished) transfer
      const double nominal = cloud.node_time_ms(graph, v) *
                             rng.lognormal_factor(opts.sim.comp_noise_sigma);
      js.node_task[v] = sim.add_dynamic_task(
          cloud_res, compute_duration(nominal, /*on_cloud=*/true), deps,
          "j" + std::to_string(j) + ":c:" + std::to_string(v), 0.0, j);
      js.remote.push_back(js.node_task[v]);
    }
  }

  /// Graceful degradation: run the layers that would have gone to the cloud
  /// on the mobile device instead.  Their inputs are the job's local tasks,
  /// all long finished, so the work starts as soon as the CPU frees up.
  void submit_fallback(std::size_t j) {
    JobState& js = jobs[j];
    js.fell_back = true;
    ++stats.fallbacks;
    for (dnn::NodeId v = 0; v < graph.size(); ++v) {
      if (js.is_local[v]) continue;
      std::vector<TaskId> deps;
      for (const dnn::NodeId p : graph.predecessors(v)) {
        if (js.node_task[p] != kNoTask) deps.push_back(js.node_task[p]);
      }
      const double nominal = mobile.node_time_ms(graph, v) *
                             rng.lognormal_factor(opts.sim.comp_noise_sigma);
      js.node_task[v] = sim.add_dynamic_task(
          mobile_res, compute_duration(nominal, /*on_cloud=*/false), deps,
          "j" + std::to_string(j) + ":fb:" + std::to_string(v), 0.0, j);
      js.fallback.push_back(js.node_task[v]);
    }
  }

  void on_transfer_finish(std::size_t j, double now_ms) {
    JobState& js = jobs[j];
    if (js.last_perturbed) ++stats.perturbed_transfers;
    if (js.last_completed) {
      estimator.observe(curve.cut(js.cut_index).offload_bytes,
                        js.last_duration,
                        timeline.channel().base().setup_latency_ms());
      submit_cloud(j);
      resolved();
      return;
    }
    ++stats.transfer_failures;
    if (js.attempts <= opts.retry.budget) {
      ++stats.retries;
      const double backoff =
          backoff_delay_ms(opts.retry, /*retry_index=*/js.attempts, rng);
      stats.backoff_ms += backoff;
      static obs::Histogram& backoff_hist = obs::histogram("fault.backoff_ms");
      backoff_hist.record(backoff);
      submit_transfer(j, now_ms + backoff);
    } else {
      submit_fallback(j);
      resolved();
    }
  }

  /// A job's offload fate is settled (transfer landed, fallback queued, or
  /// a transferless job finished): admit the next job of the window,
  /// re-cutting the un-admitted remainder first if the bandwidth estimate
  /// has drifted.
  void resolved() {
    if (!opts.replan.enabled || next_admit >= jobs.size()) return;
    if (replan_fn && estimator.observations() > 0 &&
        estimator.drifted(opts.replan.drift_threshold)) {
      const std::size_t remaining = jobs.size() - next_admit;
      const std::vector<std::size_t> cuts = replan_fn(
          estimator.estimate_mbps(), static_cast<int>(remaining));
      if (cuts.size() == remaining) {
        for (std::size_t i = 0; i < remaining; ++i)
          jobs[next_admit + i].cut_index = cuts[i];
        ++stats.replans;
        estimator.rebase();
      }
    }
    admit(next_admit++);
  }

  void on_finish(TaskId id, double now_ms) {
    if (const auto it = transfer_job.find(id); it != transfer_job.end()) {
      on_transfer_finish(it->second, now_ms);
    } else if (marker_job.count(id) != 0) {
      resolved();
    }
  }

  void run() {
    if (opts.replan.enabled && opts.replan.admission_window < 1)
      throw std::invalid_argument(
          "simulate_plan_under_faults: admission_window < 1");
    const std::size_t initial =
        opts.replan.enabled
            ? std::min(jobs.size(),
                       static_cast<std::size_t>(opts.replan.admission_window))
            : jobs.size();
    sim.set_finish_hook(
        [this](TaskId id, double now_ms) { on_finish(id, now_ms); });
    for (std::size_t j = 0; j < initial; ++j) admit(j);
    next_admit = initial;
    sim.run();
  }

  [[nodiscard]] sim::SimJobResult collect(const JobState& js) const {
    sim::SimJobResult r;
    r.job_id = js.job_id;
    r.cut_index = js.cut_index;
    r.retries = js.attempts > 0 ? js.attempts - 1 : 0;
    r.fell_back = js.fell_back;
    const TaskId first_comp =
        !js.local.empty() ? js.local.front()
                          : (!js.fallback.empty() ? js.fallback.front()
                                                  : kNoTask);
    if (first_comp != kNoTask) {
      r.has_comp = true;
      r.comp_start = sim.record(first_comp).start;
      r.comp_end = sim.record(first_comp).end;
      for (const TaskId t : js.local)
        r.comp_end = std::max(r.comp_end, sim.record(t).end);
      for (const TaskId t : js.fallback)
        r.comp_end = std::max(r.comp_end, sim.record(t).end);
    }
    if (!js.transfers.empty()) {
      r.has_comm = true;
      r.comm_start = sim.record(js.transfers.front()).start;
      r.comm_end = sim.record(js.transfers.back()).end;
    }
    for (const TaskId t : js.remote) {
      if (!r.has_cloud) {
        r.has_cloud = true;
        r.cloud_start = sim.record(t).start;
        r.cloud_end = sim.record(t).end;
      }
      r.cloud_end = std::max(r.cloud_end, sim.record(t).end);
    }
    return r;
  }
};

}  // namespace

FaultSimResult simulate_plan_under_faults(
    const dnn::Graph& graph, const partition::ProfileCurve& curve,
    const core::ExecutionPlan& plan, const profile::LatencyModel& mobile,
    const profile::LatencyModel& cloud, const FaultTimeline& timeline,
    const FaultExecOptions& options, util::Rng& rng,
    sim::EventSimulator* capture, const ReplanFn& replan) {
  static obs::Counter& runs = obs::counter("fault.runs");
  static obs::Counter& perturbed = obs::counter("fault.perturbed_transfers");
  static obs::Counter& throttled = obs::counter("fault.throttled_stages");
  static obs::Counter& failures = obs::counter("fault.transfer_failures");
  static obs::Counter& retries = obs::counter("fault.retries");
  static obs::Counter& fallbacks = obs::counter("fault.fallbacks");
  static obs::Counter& replans = obs::counter("fault.replans");
  runs.add();
  obs::Span span("fault.run", "fault");
  span.arg("jobs", std::to_string(plan.jobs.size()));

  // Distribution of the scripted outage durations this run executes under
  // (one sample per outage per run, so repeated Monte-Carlo trials weight
  // the histogram by how often each outage was actually faced).
  static obs::Histogram& outage_hist = obs::histogram("fault.outage_ms");
  for (const net::Outage& outage : timeline.channel().outages())
    outage_hist.record(outage.end_ms - outage.start_ms);

  EventSimulator sim;
  Engine engine(sim, graph, curve, mobile, cloud, timeline, options, rng,
                replan);
  engine.mobile_res = sim.add_resource("mobile_cpu");
  engine.link_res = sim.add_resource("uplink");
  engine.cloud_res = sim.add_resource("cloud_gpu");
  engine.jobs.resize(plan.jobs.size());
  for (std::size_t j = 0; j < plan.jobs.size(); ++j) {
    engine.jobs[j].cut_index = plan.jobs[j].cut_index;
    engine.jobs[j].job_id = plan.jobs[j].job_id;
  }
  engine.run();

  FaultSimResult result;
  result.stats = engine.stats;
  result.sim.jobs.reserve(engine.jobs.size());
  for (const JobState& js : engine.jobs)
    result.sim.jobs.push_back(engine.collect(js));
  result.sim.makespan = sim.makespan();
  if (result.sim.makespan > 0.0) {
    result.sim.mobile_utilization =
        sim.busy_time(engine.mobile_res) / result.sim.makespan;
    result.sim.link_utilization =
        sim.busy_time(engine.link_res) / result.sim.makespan;
    result.sim.cloud_utilization =
        sim.busy_time(engine.cloud_res) / result.sim.makespan;
  }

  perturbed.add(static_cast<std::uint64_t>(result.stats.perturbed_transfers));
  throttled.add(static_cast<std::uint64_t>(result.stats.throttled_stages));
  failures.add(static_cast<std::uint64_t>(result.stats.transfer_failures));
  retries.add(static_cast<std::uint64_t>(result.stats.retries));
  fallbacks.add(static_cast<std::uint64_t>(result.stats.fallbacks));
  replans.add(static_cast<std::uint64_t>(result.stats.replans));
  span.arg("makespan_ms", result.sim.makespan);
  span.arg("retries", std::to_string(result.stats.retries));
  span.arg("fallbacks", std::to_string(result.stats.fallbacks));
  span.arg("replans", std::to_string(result.stats.replans));
  if (capture != nullptr) *capture = std::move(sim);
  return result;
}

ReplanFn make_replan_hook(partition::ProfileCurve curve, net::Channel channel,
                          core::Strategy strategy, double quantum_mbps) {
  if (strategy == core::Strategy::kRobust)
    throw std::invalid_argument(
        "make_replan_hook: kRobust needs an interval; replan with a point "
        "strategy (e.g. kJPSTuned)");
  auto cache = std::make_shared<core::PlanCache>();
  auto base = std::make_shared<const partition::ProfileCurve>(std::move(curve));
  return [cache, base, channel, strategy,
          quantum_mbps](double estimate_mbps, int n_jobs) {
    double mbps = estimate_mbps;
    if (quantum_mbps > 0.0)
      mbps = std::max(quantum_mbps,
                      std::round(estimate_mbps / quantum_mbps) * quantum_mbps);
    const core::PlanCacheKey key{base->model_name(), "fault-replan", mbps,
                                 strategy, n_jobs};
    const std::shared_ptr<const core::ExecutionPlan> plan =
        cache->plan(key, [&] {
          return core::Planner(base->with_bandwidth(channel, mbps))
              .plan(strategy, n_jobs);
        });
    std::vector<std::size_t> cuts;
    cuts.reserve(plan->jobs.size());
    for (const core::JobAssignment& a : plan->jobs)
      cuts.push_back(a.cut_index);
    return cuts;
  };
}

FaultMonteCarloResult fault_monte_carlo(
    const dnn::Graph& graph, const partition::ProfileCurve& curve,
    const core::ExecutionPlan& plan, const profile::LatencyModel& mobile,
    const profile::LatencyModel& cloud, const net::Channel& channel,
    const FaultMonteCarloOptions& options, const ReplanFn& replan) {
  if (options.trials < 1)
    throw std::invalid_argument("fault_monte_carlo: trials < 1");

  FaultExecOptions exec;
  exec.sim.comp_noise_sigma = options.comp_noise_sigma;
  exec.sim.comm_noise_sigma = options.comm_noise_sigma;
  exec.sim.include_cloud = options.include_cloud;
  exec.retry = options.retry;
  exec.replan = options.replan;
  RandomFaultOptions fault_options = options.faults;
  fault_options.base_mbps = channel.bandwidth_mbps();

  const auto n = static_cast<std::size_t>(options.trials);
  std::vector<double> makespans(n);
  std::vector<FaultStats> stats(n);
  // Per-trial seeded streams (same scheme as sim::monte_carlo_makespan) make
  // the campaign bit-identical for any thread count.
  util::parallel_for(
      n,
      [&](std::size_t trial) {
        util::Rng rng(options.seed +
                      static_cast<std::uint64_t>(trial) * 1000003ull);
        const FaultSpec spec = FaultSpec::random(fault_options, rng);
        const FaultTimeline timeline(spec, channel);
        const FaultSimResult r = simulate_plan_under_faults(
            graph, curve, plan, mobile, cloud, timeline, exec, rng, nullptr,
            replan);
        makespans[trial] = r.sim.makespan;
        stats[trial] = r.stats;
      },
      options.threads);

  FaultMonteCarloResult result;
  result.makespan = util::summarize(makespans);
  std::size_t faulty = 0, replanned = 0;
  double total_retries = 0.0, total_fallbacks = 0.0;
  for (const FaultStats& s : stats) {
    if (s.any_fault()) ++faulty;
    if (s.replans > 0) ++replanned;
    total_retries += static_cast<double>(s.retries);
    total_fallbacks += static_cast<double>(s.fallbacks);
  }
  const auto trials = static_cast<double>(n);
  result.fault_rate = static_cast<double>(faulty) / trials;
  result.replan_rate = static_cast<double>(replanned) / trials;
  result.mean_retries = total_retries / trials;
  const double total_jobs = trials * static_cast<double>(plan.jobs.size());
  result.fallback_rate = total_jobs > 0.0 ? total_fallbacks / total_jobs : 0.0;
  return result;
}

}  // namespace jps::fault
