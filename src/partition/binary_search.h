// Algorithm 2: binary-search partition for line-structure curves.
//
// On a clustered curve, f is non-decreasing and g non-increasing, so f - g
// crosses zero once.  The search finds the left-most cut l* with
// f(l*) >= g(l*) in O(log k) probes, and reports the paper's two partition
// types (l*-1, l*) together with the mixing ratio
//   ratio = floor( (f(l*) - g(l*)) / (g(l*-1) - f(l*-1)) )
// — the number of jobs cut at l*-1 per job cut at l* that balances the
// accumulated computation and communication (Theorem 5.3's construction).
#pragma once

#include <cstdint>
#include <optional>

#include "partition/profile_curve.h"

namespace jps::partition {

/// Output of Alg. 2.
struct CutDecision {
  /// Left-most index with f >= g.
  std::size_t l_star = 0;
  /// l_star - 1 (the communication-heavy partition type); nullopt when
  /// l_star == 0, i.e. even the cloud-only cut is computation-heavy.
  std::optional<std::size_t> l_minus;
  /// Jobs at l_minus per job at l_star (paper's floor formula); 0 when the
  /// single cut l_star already balances or l_minus is absent.
  std::int64_t ratio = 0;
  /// Binary-search iterations used (tests assert the O(log k) bound).
  int iterations = 0;
};

/// Run Alg. 2 on a monotone curve.  Throws std::invalid_argument when the
/// curve is not monotone (cluster it first) or empty.
[[nodiscard]] CutDecision binary_search_cut(const ProfileCurve& curve);

/// Reference linear scan for the same l*; used by tests and the overhead
/// ablation. O(k).
[[nodiscard]] CutDecision linear_scan_cut(const ProfileCurve& curve);

}  // namespace jps::partition
