// Theorem 5.2 machinery: the continuous relaxation of the partition problem.
//
// §3.2/§5.1 observe that for typical line DNNs f is near-linear increasing
// and g near-exponential (convex) decreasing in the cut depth.  Fitting both
// and solving f(x) = g(x) gives the continuous optimum x*, at which cutting
// every job identically is optimal (Theorem 5.2).  Rounding x* to the
// neighboring discrete cuts recovers exactly the (l*-1, l*) pair of Alg. 2,
// which the tests verify.
#pragma once

#include "partition/profile_curve.h"
#include "util/ols.h"

namespace jps::partition {

/// Fits and the continuous crossing point.
struct ContinuousRelaxation {
  /// Linear fit of f over the cut index.
  util::LinearFit f_fit;
  /// Convex exponential fit of g over the cut index.
  util::ExponentialFit g_fit;
  /// Solution of f_fit(x) = g_fit(x) on [0, k-1] (clamped to the ends when
  /// no interior crossing exists).
  double x_star = 0.0;
  /// Common stage length f_fit(x_star) — the per-job pipeline stage time the
  /// relaxation predicts, ms.
  double stage_ms = 0.0;
  /// Bisection iterations used.
  int iterations = 0;
};

/// Fit the curve and solve for x*.  The g fit uses only offloading cuts
/// (bytes > 0); the local-only endpoint's g = 0 is a boundary artifact, not
/// part of the convex trend.  Throws std::invalid_argument on curves with
/// fewer than 3 cuts.
[[nodiscard]] ContinuousRelaxation relax_continuous(const ProfileCurve& curve);

/// Average-makespan predicted when all n jobs cut at continuous position x
/// (linear interpolation of the discrete curve — used to compare relaxation
/// against the discrete optimum in tests/benches).
[[nodiscard]] double interpolated_stage_bound(const ProfileCurve& curve,
                                              double x);

}  // namespace jps::partition
