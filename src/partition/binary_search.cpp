#include "partition/binary_search.h"

#include <cmath>
#include <stdexcept>

namespace jps::partition {

namespace {

void validate(const ProfileCurve& curve) {
  if (curve.size() == 0)
    throw std::invalid_argument("binary_search_cut: empty curve");
  if (!curve.is_monotone())
    throw std::invalid_argument(
        "binary_search_cut: curve is not monotone; cluster it first");
  // The local-only cut has g = 0 <= f, so a crossing always exists.
}

// Fill l_minus and ratio once l_star is known.
CutDecision finish(const ProfileCurve& curve, std::size_t l_star,
                   int iterations) {
  CutDecision d;
  d.l_star = l_star;
  d.iterations = iterations;
  if (l_star == 0) return d;  // no communication-heavy type exists

  d.l_minus = l_star - 1;
  const double surplus = curve.f(l_star) - curve.g(l_star);       // >= 0
  const double deficit = curve.g(l_star - 1) - curve.f(l_star - 1);  // > 0
  if (deficit > 0.0 && surplus > 0.0) {
    d.ratio = static_cast<std::int64_t>(std::floor(surplus / deficit));
  }
  return d;
}

}  // namespace

CutDecision binary_search_cut(const ProfileCurve& curve) {
  validate(curve);
  std::size_t lo = 0;
  std::size_t hi = curve.size() - 1;
  int iterations = 0;
  // Invariant: f(hi) >= g(hi); if lo > 0 then f(lo-1) < g(lo-1).
  while (lo < hi) {
    ++iterations;
    const std::size_t mid = (lo + hi) / 2;
    if (curve.f(mid) < curve.g(mid)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return finish(curve, lo, iterations);
}

CutDecision linear_scan_cut(const ProfileCurve& curve) {
  validate(curve);
  std::size_t l_star = curve.size() - 1;
  int iterations = 0;
  for (std::size_t i = 0; i < curve.size(); ++i) {
    ++iterations;
    if (curve.f(i) >= curve.g(i)) {
      l_star = i;
      break;
    }
  }
  return finish(curve, l_star, iterations);
}

}  // namespace jps::partition
