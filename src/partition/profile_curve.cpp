#include "partition/profile_curve.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "check/contracts.h"
#include "obs/obs.h"
#include "util/ols.h"

namespace jps::partition {

const CutPoint& ProfileCurve::cut(std::size_t i) const {
  check_index(i);
  return cuts_[i];
}

void ProfileCurve::check_index(std::size_t i) const {
  if (i >= cuts_.size()) throw std::out_of_range("ProfileCurve::cut");
}

ProfileCurve ProfileCurve::build(const dnn::Graph& graph,
                                 const NodeTimeFn& mobile_time,
                                 const CommTimeFn& comm_time,
                                 const CurveOptions& options) {
  if (!graph.inferred())
    throw std::invalid_argument("ProfileCurve::build: graph not inferred");
  static obs::Counter& builds = obs::counter("curve.builds");
  builds.add();
  obs::Span span("curve.build", "partition");
  span.arg("model", graph.name());

  const std::vector<dnn::NodeId> trunk = graph.articulation_nodes();
  const dnn::NodeId sink = graph.sink();

  // Total cloud time is only needed when cloud stage times are requested;
  // the cloud remainder of cut c is total - prefix(c).
  std::vector<CutPoint> candidates;
  candidates.reserve(trunk.size());
  for (const dnn::NodeId cut_node : trunk) {
    CutPoint c;
    c.local_nodes = dnn::ancestors_inclusive(graph, cut_node);
    for (const dnn::NodeId v : c.local_nodes) c.f += mobile_time(v);
    if (cut_node == sink) {
      // Local-only: nothing crosses the cut.
      c.offload_bytes = 0;
      c.g = 0.0;
    } else {
      c.cut_nodes = {cut_node};
      c.offload_bytes = graph.info(cut_node).output_bytes;
      c.g = comm_time(c.offload_bytes);
    }
    c.label = graph.label(cut_node);
    candidates.push_back(std::move(c));
  }
  ProfileCurve curve =
      from_candidates(graph.name(), std::move(candidates), options);
  span.arg("cuts", std::to_string(curve.size()));
  JPS_ENSURE(curve.size() >= 1,
             "a graph always yields at least one cut (an input-only graph "
             "collapses cloud-only and local-only into one)");
  JPS_ENSURE(!options.cluster || curve.is_monotone(),
             "clustering (3.2) must leave f non-decreasing and g "
             "non-increasing");
  return curve;
}

ProfileCurve ProfileCurve::build(const dnn::Graph& graph,
                                 const profile::LatencyModel& mobile_model,
                                 const net::Channel& channel,
                                 const CurveOptions& options,
                                 const profile::LatencyModel* cloud_model) {
  ProfileCurve curve = build(
      graph, [&](dnn::NodeId id) { return mobile_model.node_time_ms(graph, id); },
      [&](std::uint64_t bytes) { return channel.time_ms(bytes); }, options);
  if (options.with_cloud_times && cloud_model != nullptr) {
    const double total_cloud = cloud_model->graph_time_ms(graph);
    for (auto& c : curve.cuts_) {
      double local_cloud = 0.0;
      for (const dnn::NodeId v : c.local_nodes)
        local_cloud += cloud_model->node_time_ms(graph, v);
      c.cloud = std::max(0.0, total_cloud - local_cloud);
    }
  }
  return curve;
}

ProfileCurve ProfileCurve::build(const dnn::Graph& graph,
                                 const profile::LookupTable& table,
                                 const net::Channel& channel,
                                 const CurveOptions& options) {
  return build(
      graph, [&](dnn::NodeId id) { return table.at(graph.name(), id); },
      [&](std::uint64_t bytes) { return channel.time_ms(bytes); }, options);
}

ProfileCurve ProfileCurve::from_candidates(std::string model_name,
                                           std::vector<CutPoint> candidates,
                                           const CurveOptions& options) {
  if (candidates.empty())
    throw std::invalid_argument("ProfileCurve: no candidates");

  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const CutPoint& a, const CutPoint& b) { return a.f < b.f; });

  ProfileCurve curve;
  curve.model_name_ = std::move(model_name);

  if (options.cluster) {
    // Virtual-block clustering: keep a candidate only if its g is strictly
    // below every kept cheaper candidate's g.  Cheaper-f candidates come
    // first, so a running minimum suffices.  The local-only cut (g = 0,
    // largest f) always survives.
    double min_g = std::numeric_limits<double>::infinity();
    for (auto& cand : candidates) {
      if (cand.g < min_g) {
        min_g = cand.g;
        curve.cuts_.push_back(std::move(cand));
      }
    }
  } else {
    curve.cuts_ = std::move(candidates);
  }
  curve.refresh_derived();
  return curve;
}

void ProfileCurve::refresh_derived() {
  f_lane_.resize(cuts_.size());
  g_lane_.resize(cuts_.size());
  bytes_lane_.resize(cuts_.size());
  for (std::size_t i = 0; i < cuts_.size(); ++i) {
    f_lane_[i] = cuts_[i].f;
    g_lane_[i] = cuts_[i].g;
    bytes_lane_[i] = cuts_[i].offload_bytes;
  }
  monotone_ = true;
  for (std::size_t i = 1; i < cuts_.size(); ++i) {
    if (f_lane_[i] < f_lane_[i - 1] || g_lane_[i] > g_lane_[i - 1]) {
      monotone_ = false;
      return;
    }
  }
}

ProfileCurve ProfileCurve::with_comm_times(const CommTimeFn& comm_time) const {
  ProfileCurve rebased = *this;
  for (CutPoint& c : rebased.cuts_) {
    c.g = c.offload_bytes > 0 ? comm_time(c.offload_bytes) : 0.0;
  }
  rebased.refresh_derived();
  return rebased;
}

ProfileCurve ProfileCurve::with_bandwidth(const net::Channel& channel,
                                          double mbps) const {
  const net::Channel rebased = channel.with_bandwidth(mbps);
  return with_comm_times(
      [&rebased](std::uint64_t bytes) { return rebased.time_ms(bytes); });
}

ProfileCurve ProfileCurve::with_fitted_comm() const {
  // Fit g over cut index for the offloading cuts (bytes > 0).
  std::vector<double> xs;
  std::vector<double> ys;
  for (std::size_t i = 0; i < cuts_.size(); ++i) {
    if (cuts_[i].offload_bytes > 0) {
      xs.push_back(static_cast<double>(i));
      ys.push_back(cuts_[i].g);
    }
  }
  ProfileCurve smoothed = *this;
  smoothed.model_name_ += "'";
  if (xs.size() < 2) return smoothed;  // nothing to fit
  const util::ExponentialFit fit = util::fit_exponential(xs, ys);
  for (std::size_t i = 0; i < smoothed.cuts_.size(); ++i) {
    if (smoothed.cuts_[i].offload_bytes > 0)
      smoothed.cuts_[i].g = fit(static_cast<double>(i));
  }
  smoothed.refresh_derived();
  return smoothed;
}

std::vector<sched::CutOption> ProfileCurve::as_cut_options() const {
  std::vector<sched::CutOption> options;
  options.reserve(cuts_.size());
  for (const auto& c : cuts_) options.push_back({c.f, c.g});
  return options;
}

}  // namespace jps::partition
