// General-structure DNN partition (§5.3, Alg. 3 and Fig. 9).
//
// Two mechanisms are provided on top of the trunk-cut curve:
//
//  1. Path decomposition (the paper's Alg. 3).  The Fig. 9 conversion —
//     duplicating every node by its out-/in-degree until the DAG becomes a
//     set of independent source->sink paths — is exactly the enumeration of
//     all source->sink paths, so convert_to_paths() returns those paths in
//     terms of original node ids (the id doubles as the back-reference the
//     modified Johnson scheduling needs to count duplicates once).  Alg. 2
//     then finds a cut per path.  Tractable when the path count is modest;
//     combinatorial DAGs (GoogLeNet has 4^9 paths) must use mechanism 2.
//
//  2. Segment spread cuts.  Articulation (trunk) nodes split the DAG into
//     segments of parallel branches (one inception module per segment).
//     Within one segment the cut may take a different depth in every branch
//     — the "partition spread across different paths" of Fig. 9(a) — giving
//     Pi(len_b + 1) enumerable cut-sets per segment.  These candidates merge
//     with the trunk cuts into one ProfileCurve, after which every
//     line-structure algorithm applies unchanged.  This keeps the paper's
//     idea (cuts inside inception modules are allowed and useful, §6.1)
//     while staying polynomial for real networks.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "partition/profile_curve.h"

namespace jps::partition {

/// All independent source->sink paths of the converted DAG (original ids).
struct PathDecomposition {
  std::vector<std::vector<dnn::NodeId>> paths;
};

/// Enumerate the converted DAG's independent paths.  Throws
/// std::runtime_error when the path count exceeds `max_paths`.
[[nodiscard]] PathDecomposition convert_to_paths(const dnn::Graph& graph,
                                                 std::size_t max_paths = 4096);

/// Alg. 2 applied to one independent path.  f/g are computed on the path's
/// own nodes (duplicates included, as the paper prescribes for ordering).
struct PathCut {
  std::size_t path_index = 0;
  /// Index into the path of the cut node; the prefix [0..cut_pos] runs on
  /// the mobile device.  0 = only the input node (cloud-only for this path).
  std::size_t cut_pos = 0;
  /// Node ids of the local prefix (with duplicates across paths).
  std::vector<dnn::NodeId> local_nodes;
  /// The node whose output crosses the cut; nullopt when the path is fully
  /// local (cut at the path's sink).
  std::optional<dnn::NodeId> cut_node;
  /// Stage lengths with duplicated nodes counted (ordering values).
  double f_dup = 0.0;
  double g_dup = 0.0;
};

/// Run Alg. 3 lines 1-5: decompose into paths and find each path's cut with
/// the binary search.  Clustering is applied per path.
[[nodiscard]] std::vector<PathCut> alg3_path_cuts(const dnn::Graph& graph,
                                                  const NodeTimeFn& mobile_time,
                                                  const CommTimeFn& comm_time,
                                                  std::size_t max_paths = 4096);

/// One parallel-branch region between two consecutive trunk nodes.
struct Segment {
  dnn::NodeId entry = 0;
  dnn::NodeId exit = 0;
  /// Interior nodes of each branch in topological order (entry/exit
  /// excluded). A direct entry->exit edge contributes an empty branch.
  std::vector<std::vector<dnn::NodeId>> branches;
};

/// Split the DAG into trunk segments. Line DNNs yield only single-edge
/// segments (no branches with interior nodes).
[[nodiscard]] std::vector<Segment> decompose_segments(const dnn::Graph& graph);

/// Enumerate spread-cut candidates: for every segment with >= 2 branches,
/// every combination of per-branch depths (capped at
/// `max_candidates_per_segment` lowest-volume combinations... exceeding the
/// cap throws).  Trunk cuts themselves are NOT included; merge with
/// ProfileCurve::build's candidates via from_candidates.
[[nodiscard]] std::vector<CutPoint> spread_cut_candidates(
    const dnn::Graph& graph, const NodeTimeFn& mobile_time,
    const CommTimeFn& comm_time,
    std::size_t max_candidates_per_segment = 16384);

/// Convenience: full general-structure curve = trunk cuts + spread cuts,
/// clustered into one monotone ProfileCurve.
[[nodiscard]] ProfileCurve build_general_curve(
    const dnn::Graph& graph, const NodeTimeFn& mobile_time,
    const CommTimeFn& comm_time, const CurveOptions& options = {});

}  // namespace jps::partition
