#include "partition/general_dag.h"

#include <algorithm>
#include <stdexcept>

#include "partition/binary_search.h"

namespace jps::partition {

PathDecomposition convert_to_paths(const dnn::Graph& graph,
                                   std::size_t max_paths) {
  PathDecomposition decomposition;
  decomposition.paths = graph.enumerate_paths(max_paths);
  return decomposition;
}

namespace {

// Build the clustered (f, g) curve of one independent path.  CutPoint
// labels are unused; local_nodes hold the path prefix.
ProfileCurve path_curve(const dnn::Graph& graph,
                        const std::vector<dnn::NodeId>& path,
                        const NodeTimeFn& mobile_time,
                        const CommTimeFn& comm_time) {
  std::vector<CutPoint> candidates;
  candidates.reserve(path.size());
  double f_acc = 0.0;
  for (std::size_t pos = 0; pos < path.size(); ++pos) {
    f_acc += mobile_time(path[pos]);
    CutPoint c;
    c.local_nodes.assign(path.begin(), path.begin() + static_cast<long>(pos) + 1);
    c.f = f_acc;
    if (pos + 1 < path.size()) {
      c.cut_nodes = {path[pos]};
      c.offload_bytes = graph.info(path[pos]).output_bytes;
      c.g = comm_time(c.offload_bytes);
    }
    c.label = graph.label(path[pos]);
    candidates.push_back(std::move(c));
  }
  return ProfileCurve::from_candidates(graph.name() + "/path",
                                       std::move(candidates));
}

}  // namespace

std::vector<PathCut> alg3_path_cuts(const dnn::Graph& graph,
                                    const NodeTimeFn& mobile_time,
                                    const CommTimeFn& comm_time,
                                    std::size_t max_paths) {
  const PathDecomposition decomposition = convert_to_paths(graph, max_paths);
  std::vector<PathCut> cuts;
  cuts.reserve(decomposition.paths.size());
  for (std::size_t p = 0; p < decomposition.paths.size(); ++p) {
    const auto& path = decomposition.paths[p];
    const ProfileCurve curve = path_curve(graph, path, mobile_time, comm_time);
    const CutDecision decision = binary_search_cut(curve);
    const CutPoint& chosen = curve.cut(decision.l_star);

    PathCut cut;
    cut.path_index = p;
    cut.local_nodes = chosen.local_nodes;
    cut.f_dup = chosen.f;
    cut.g_dup = chosen.g;
    if (!chosen.cut_nodes.empty()) {
      cut.cut_node = chosen.cut_nodes.front();
      const auto it = std::find(path.begin(), path.end(), *cut.cut_node);
      cut.cut_pos = static_cast<std::size_t>(it - path.begin());
    } else {
      cut.cut_pos = path.size() - 1;  // fully local path
    }
    cuts.push_back(std::move(cut));
  }
  return cuts;
}

std::vector<Segment> decompose_segments(const dnn::Graph& graph) {
  const std::vector<dnn::NodeId> trunk = graph.articulation_nodes();
  std::vector<Segment> segments;
  segments.reserve(trunk.size() - 1);

  for (std::size_t t = 0; t + 1 < trunk.size(); ++t) {
    Segment seg;
    seg.entry = trunk[t];
    seg.exit = trunk[t + 1];
    bool simple = true;
    for (const dnn::NodeId succ : graph.successors(seg.entry)) {
      std::vector<dnn::NodeId> branch;
      dnn::NodeId cur = succ;
      while (cur != seg.exit) {
        // Interior nodes must form simple chains for spread cuts; nested
        // branching inside a segment marks it complex (no spread cuts).
        if (graph.predecessors(cur).size() != 1 ||
            graph.successors(cur).size() != 1) {
          simple = false;
          break;
        }
        branch.push_back(cur);
        cur = graph.successors(cur).front();
      }
      if (!simple) break;
      seg.branches.push_back(std::move(branch));
    }
    if (!simple) seg.branches.clear();  // keep the segment, mark unsplittable
    segments.push_back(std::move(seg));
  }
  return segments;
}

std::vector<CutPoint> spread_cut_candidates(
    const dnn::Graph& graph, const NodeTimeFn& mobile_time,
    const CommTimeFn& comm_time, std::size_t max_candidates_per_segment) {
  std::vector<CutPoint> candidates;
  const std::vector<Segment> segments = decompose_segments(graph);

  for (const Segment& seg : segments) {
    // Only multi-branch segments admit spread cuts; a single chain's cuts
    // are already trunk-curve candidates... (branches require interior
    // nodes in at least two of them to differ from trunk cuts).
    std::size_t branching = 0;
    for (const auto& b : seg.branches)
      if (!b.empty()) ++branching;
    if (seg.branches.size() < 2 || branching < 1) continue;

    std::uint64_t combos = 1;
    for (const auto& b : seg.branches) {
      combos *= static_cast<std::uint64_t>(b.size() + 1);
      if (combos > max_candidates_per_segment)
        throw std::runtime_error(
            "spread_cut_candidates: combination count exceeds cap in segment");
    }

    const std::vector<dnn::NodeId> entry_prefix =
        dnn::ancestors_inclusive(graph, seg.entry);
    double entry_f = 0.0;
    for (const dnn::NodeId v : entry_prefix) entry_f += mobile_time(v);

    // Odometer over per-branch depths d_b in [0, len_b].
    std::vector<std::size_t> depth(seg.branches.size(), 0);
    while (true) {
      // Skip the all-zero combination: identical to the trunk cut at entry.
      const bool all_zero =
          std::all_of(depth.begin(), depth.end(),
                      [](std::size_t d) { return d == 0; });
      if (!all_zero) {
        CutPoint c;
        c.local_nodes = entry_prefix;
        c.f = entry_f;
        bool entry_output_needed = false;
        std::uint64_t bytes = 0;
        for (std::size_t b = 0; b < seg.branches.size(); ++b) {
          const auto& branch = seg.branches[b];
          if (depth[b] == 0) {
            // Branch entirely on the cloud; it consumes the entry output.
            entry_output_needed = true;
            continue;
          }
          for (std::size_t i = 0; i < depth[b]; ++i) {
            c.local_nodes.push_back(branch[i]);
            c.f += mobile_time(branch[i]);
          }
          const dnn::NodeId cut_node = branch[depth[b] - 1];
          c.cut_nodes.push_back(cut_node);
          bytes += graph.info(cut_node).output_bytes;
        }
        if (entry_output_needed) {
          c.cut_nodes.push_back(seg.entry);
          bytes += graph.info(seg.entry).output_bytes;
        }
        std::sort(c.local_nodes.begin(), c.local_nodes.end());
        c.offload_bytes = bytes;
        c.g = comm_time(bytes);
        c.label = "spread@" + graph.label(seg.entry);
        candidates.push_back(std::move(c));
      }
      // Advance the odometer.
      std::size_t pos = 0;
      while (pos < depth.size() && depth[pos] == seg.branches[pos].size()) {
        depth[pos] = 0;
        ++pos;
      }
      if (pos == depth.size()) break;
      ++depth[pos];
    }
  }
  return candidates;
}

ProfileCurve build_general_curve(const dnn::Graph& graph,
                                 const NodeTimeFn& mobile_time,
                                 const CommTimeFn& comm_time,
                                 const CurveOptions& options) {
  // Trunk candidates, unclustered, then merged with spread candidates and
  // clustered together.
  CurveOptions raw = options;
  raw.cluster = false;
  const ProfileCurve trunk =
      ProfileCurve::build(graph, mobile_time, comm_time, raw);
  std::vector<CutPoint> candidates;
  candidates.reserve(trunk.size());
  for (std::size_t i = 0; i < trunk.size(); ++i)
    candidates.push_back(trunk.cut(i));

  std::vector<CutPoint> spread =
      spread_cut_candidates(graph, mobile_time, comm_time);
  candidates.insert(candidates.end(), std::make_move_iterator(spread.begin()),
                    std::make_move_iterator(spread.end()));
  return ProfileCurve::from_candidates(graph.name(), std::move(candidates),
                                       options);
}

}  // namespace jps::partition
