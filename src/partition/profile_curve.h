// The (f, g) profile curve over candidate cut-points — the object every
// partition algorithm in the paper operates on.
//
// A cut-point i stands for "compute local_nodes on the mobile device, send
// the cut tensor(s), compute the rest on the cloud".  For a line DNN the
// candidates are layer prefixes; for a general DNN they are prefixes ending
// at trunk (articulation) nodes, or spread cut-sets produced by
// partition/general_dag.  Candidates are ordered by non-decreasing f, and
// virtual-block clustering (§3.2) prunes any candidate whose g is not
// strictly below all cheaper candidates' g — exactly the paper's rule that
// cutting inside a volume-increasing block can never be optimal.
//
// Index 0 is always the cloud-only cut (f = 0, g = input upload) and the
// last index is always the local-only cut (g = 0).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "dnn/graph.h"
#include "net/channel.h"
#include "profile/latency_model.h"
#include "profile/lookup_table.h"
#include "sched/bruteforce.h"

namespace jps::partition {

/// One candidate cut.
struct CutPoint {
  /// Nodes whose outputs cross the cut (the paper's set P_j).  Empty for the
  /// local-only cut.
  std::vector<dnn::NodeId> cut_nodes;
  /// All nodes computed on the mobile device (cut nodes and their ancestors),
  /// in topological order.
  std::vector<dnn::NodeId> local_nodes;
  /// Mobile computation time f(P_j), ms.
  double f = 0.0;
  /// Offload communication time g(P_j), ms.
  double g = 0.0;
  /// Cloud computation time of the remainder, ms (3-stage analyses only).
  double cloud = 0.0;
  /// Total bytes crossing the cut (0 for local-only).
  std::uint64_t offload_bytes = 0;
  /// Display label (e.g. the deepest cut node's label).
  std::string label;
};

/// Returns the mobile execution time of one node, ms.
using NodeTimeFn = std::function<double(dnn::NodeId)>;
/// Returns the uplink transfer time for a payload, ms.
using CommTimeFn = std::function<double(std::uint64_t bytes)>;

/// Options for building curves.
struct CurveOptions {
  /// Apply virtual-block clustering (§3.2). Disable only for ablations.
  bool cluster = true;
  /// Also fill CutPoint::cloud with the remainder's cloud-side time.
  bool with_cloud_times = false;
};

class ProfileCurve {
 public:
  ProfileCurve() = default;

  /// Build the trunk-cut curve of `g` (works for line and general DNNs; for
  /// a line DNN the trunk is every node).  `g.infer()` must have run.
  [[nodiscard]] static ProfileCurve build(const dnn::Graph& graph,
                                          const NodeTimeFn& mobile_time,
                                          const CommTimeFn& comm_time,
                                          const CurveOptions& options = {});

  /// Convenience: mobile times from an analytic latency model, comm times
  /// from a channel; cloud times from `cloud_model` when options request it.
  [[nodiscard]] static ProfileCurve build(
      const dnn::Graph& graph, const profile::LatencyModel& mobile_model,
      const net::Channel& channel, const CurveOptions& options = {},
      const profile::LatencyModel* cloud_model = nullptr);

  /// Convenience: mobile times from a profiled lookup table (the deployment
  /// path of §6.1), comm times from a channel.
  [[nodiscard]] static ProfileCurve build(
      const dnn::Graph& graph, const profile::LookupTable& table,
      const net::Channel& channel, const CurveOptions& options = {});

  /// Assemble a curve from explicit candidates: sorts by f, enforces the
  /// cloud-only/local-only endpoints, optionally clusters.  Used by the
  /// general-DAG builder and by tests that craft synthetic curves.
  [[nodiscard]] static ProfileCurve from_candidates(
      std::string model_name, std::vector<CutPoint> candidates,
      const CurveOptions& options = {});

  /// Number of candidate cuts (>= 2 for any non-empty model).
  [[nodiscard]] std::size_t size() const { return cuts_.size(); }

  [[nodiscard]] const CutPoint& cut(std::size_t i) const;

  /// f value of cut i, ms.  Reads the contiguous SoA lane, not the CutPoint.
  [[nodiscard]] double f(std::size_t i) const {
    check_index(i);
    return f_lane_[i];
  }

  /// g value of cut i, ms.  Reads the contiguous SoA lane, not the CutPoint.
  [[nodiscard]] double g(std::size_t i) const {
    check_index(i);
    return g_lane_[i];
  }

  /// The structure-of-arrays view of the curve: one contiguous double per
  /// cut, indexed identically to cut().  These lanes are what the planner's
  /// batched sweeps and makespan kernels iterate — no CutPoint (strings,
  /// node vectors) is touched on the hot path.  Invalidated by destroying
  /// or reassigning the curve, like any internal reference.
  [[nodiscard]] std::span<const double> f_lane() const { return f_lane_; }
  [[nodiscard]] std::span<const double> g_lane() const { return g_lane_; }

  /// Bytes crossing each cut (0 for local-only), same indexing as f_lane().
  /// Batched bandwidth sweeps re-derive g from this lane per rate.
  [[nodiscard]] std::span<const std::uint64_t> offload_bytes_lane() const {
    return bytes_lane_;
  }

  /// Index of the cloud-only cut (always 0).
  [[nodiscard]] std::size_t cloud_only_index() const { return 0; }

  /// Index of the local-only cut (always size()-1).
  [[nodiscard]] std::size_t local_only_index() const { return cuts_.size() - 1; }

  /// Model the curve was built for.
  [[nodiscard]] const std::string& model_name() const { return model_name_; }

  /// True if f is non-decreasing and g non-increasing across indices — the
  /// §3.2 monotonicity that Alg. 2's binary search requires.  Guaranteed
  /// after clustering; exposed for tests and ablations.  O(1): computed once
  /// at construction, so Alg. 2's validation stays O(log k) overall.
  [[nodiscard]] bool is_monotone() const { return monotone_; }

  /// Re-evaluate g of every cut with a different comm-time function while
  /// KEEPING the cut order and indices (no re-sort, no re-clustering): cut i
  /// of the returned curve has the same local/cut node sets as cut i here.
  /// This is the replanning primitive — when the observed bandwidth drifts,
  /// the planner re-decides over the same candidate cuts at the new rate,
  /// and the resulting cut indices remain valid against the original curve
  /// (and hence against work already executing).  Monotonicity is refreshed;
  /// any comm model affine in bytes (net::Channel at any bandwidth)
  /// preserves it.
  [[nodiscard]] ProfileCurve with_comm_times(const CommTimeFn& comm_time) const;

  /// Convenience: with_comm_times at `channel`'s affine model re-based to
  /// `mbps`.
  [[nodiscard]] ProfileCurve with_bandwidth(const net::Channel& channel,
                                            double mbps) const;

  /// Replace g of every offloading cut by the value of a convex exponential
  /// fit at its index (the paper's synthetic AlexNet' of Fig. 11, whose
  /// "communication time is sampled from the fitted curve").  The local-only
  /// cut keeps g = 0.
  [[nodiscard]] ProfileCurve with_fitted_comm() const;

  /// View as the (f, g) option list the brute-force searchers consume.
  [[nodiscard]] std::vector<sched::CutOption> as_cut_options() const;

 private:
  /// Recompute the cached monotonicity flag and rebuild the SoA lanes from
  /// cuts_ (call after any mutation of cuts_).
  void refresh_derived();

  void check_index(std::size_t i) const;

  std::string model_name_;
  /// AoS storage of the full per-cut records (node sets, labels, cloud
  /// times).  The planner's hot paths never touch this; they read the
  /// mirrored lanes below.
  std::vector<CutPoint> cuts_;
  /// SoA mirrors of cuts_[i].f / .g / .offload_bytes, kept in sync by
  /// refresh_derived().
  std::vector<double> f_lane_;
  std::vector<double> g_lane_;
  std::vector<std::uint64_t> bytes_lane_;
  bool monotone_ = true;
};

}  // namespace jps::partition
