#include "partition/continuous.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace jps::partition {

ContinuousRelaxation relax_continuous(const ProfileCurve& curve) {
  if (curve.size() < 3)
    throw std::invalid_argument("relax_continuous: need >= 3 cuts to fit");

  std::vector<double> xs_f;
  std::vector<double> ys_f;
  std::vector<double> xs_g;
  std::vector<double> ys_g;
  for (std::size_t i = 0; i < curve.size(); ++i) {
    xs_f.push_back(static_cast<double>(i));
    ys_f.push_back(curve.f(i));
    if (curve.cut(i).offload_bytes > 0) {
      xs_g.push_back(static_cast<double>(i));
      ys_g.push_back(curve.g(i));
    }
  }

  ContinuousRelaxation r;
  r.f_fit = util::fit_linear(xs_f, ys_f);
  r.g_fit = util::fit_exponential(xs_g, ys_g);

  // h(x) = f(x) - g(x) is increasing (f up, g down). Bisect to ~1e-9 of the
  // index range.
  const double lo_x = 0.0;
  const double hi_x = static_cast<double>(curve.size() - 1);
  auto h = [&](double x) { return r.f_fit(x) - r.g_fit(x); };
  if (h(lo_x) >= 0.0) {
    r.x_star = lo_x;
  } else if (h(hi_x) <= 0.0) {
    r.x_star = hi_x;
  } else {
    double lo = lo_x;
    double hi = hi_x;
    while (hi - lo > 1e-9 * (hi_x - lo_x)) {
      ++r.iterations;
      const double mid = 0.5 * (lo + hi);
      (h(mid) < 0.0 ? lo : hi) = mid;
    }
    r.x_star = 0.5 * (lo + hi);
  }
  r.stage_ms = r.f_fit(r.x_star);
  return r;
}

double interpolated_stage_bound(const ProfileCurve& curve, double x) {
  const double hi_x = static_cast<double>(curve.size() - 1);
  const double clamped = std::clamp(x, 0.0, hi_x);
  const auto lo = static_cast<std::size_t>(clamped);
  const std::size_t hi = std::min(lo + 1, curve.size() - 1);
  const double t = clamped - static_cast<double>(lo);
  const double f = curve.f(lo) + (curve.f(hi) - curve.f(lo)) * t;
  const double g = curve.g(lo) + (curve.g(hi) - curve.g(lo)) * t;
  return std::max(f, g);
}

}  // namespace jps::partition
