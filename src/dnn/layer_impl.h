// Internal: concrete layer classes behind the factory functions in layer.h.
// Not part of the public API — include only from dnn/*.cpp and tests that
// need white-box access.
#pragma once

#include <cstdint>

#include "dnn/layer.h"

namespace jps::dnn::detail {

/// Throws std::invalid_argument unless `inputs` has exactly `n` entries.
void expect_arity(std::span<const TensorShape> inputs, std::size_t n,
                  const char* layer_name);

/// Throws std::invalid_argument unless the shape has rank 3 (CHW).
void expect_chw(const TensorShape& s, const char* layer_name);

/// floor((in + 2*pad - kernel)/stride) + 1, validated to be >= 1.
[[nodiscard]] std::int64_t conv_out_dim(std::int64_t in, std::int64_t kernel,
                                        std::int64_t stride, std::int64_t pad,
                                        const char* layer_name);

class InputLayer final : public Layer {
 public:
  explicit InputLayer(TensorShape shape) : shape_(std::move(shape)) {}
  [[nodiscard]] LayerKind kind() const override { return LayerKind::kInput; }
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] TensorShape infer(std::span<const TensorShape> inputs) const override;
  [[nodiscard]] double flops(std::span<const TensorShape>, const TensorShape&) const override { return 0.0; }
  [[nodiscard]] std::uint64_t param_count(std::span<const TensorShape>, const TensorShape&) const override { return 0; }
  [[nodiscard]] const TensorShape& shape() const { return shape_; }

 private:
  TensorShape shape_;
};

class Conv2dLayer final : public Layer {
 public:
  Conv2dLayer(std::int64_t out_channels, std::int64_t kernel_h,
              std::int64_t kernel_w, std::int64_t stride, std::int64_t pad_h,
              std::int64_t pad_w, std::int64_t groups, bool bias);
  [[nodiscard]] LayerKind kind() const override { return LayerKind::kConv2d; }
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] TensorShape infer(std::span<const TensorShape> inputs) const override;
  [[nodiscard]] double flops(std::span<const TensorShape> inputs, const TensorShape& output) const override;
  [[nodiscard]] std::uint64_t param_count(std::span<const TensorShape> inputs, const TensorShape& output) const override;

  [[nodiscard]] std::int64_t out_channels() const { return out_channels_; }
  [[nodiscard]] std::int64_t kernel_h() const { return kernel_h_; }
  [[nodiscard]] std::int64_t kernel_w() const { return kernel_w_; }
  [[nodiscard]] std::int64_t stride() const { return stride_; }
  [[nodiscard]] std::int64_t padding_h() const { return pad_h_; }
  [[nodiscard]] std::int64_t padding_w() const { return pad_w_; }
  /// groups == 0 encodes "depthwise": bind groups to in_channels at infer time.
  [[nodiscard]] std::int64_t groups() const { return groups_; }
  [[nodiscard]] bool depthwise() const { return groups_ == 0; }

 private:
  [[nodiscard]] std::int64_t effective_groups(std::int64_t in_channels) const;

  std::int64_t out_channels_;
  std::int64_t kernel_h_;
  std::int64_t kernel_w_;
  std::int64_t stride_;
  std::int64_t pad_h_;
  std::int64_t pad_w_;
  std::int64_t groups_;
  bool bias_;
};

class DenseLayer final : public Layer {
 public:
  DenseLayer(std::int64_t out_features, bool bias)
      : out_features_(out_features), bias_(bias) {}
  [[nodiscard]] LayerKind kind() const override { return LayerKind::kDense; }
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] TensorShape infer(std::span<const TensorShape> inputs) const override;
  [[nodiscard]] double flops(std::span<const TensorShape> inputs, const TensorShape& output) const override;
  [[nodiscard]] std::uint64_t param_count(std::span<const TensorShape> inputs, const TensorShape& output) const override;
  [[nodiscard]] std::int64_t out_features() const { return out_features_; }

 private:
  std::int64_t out_features_;
  bool bias_;
};

class Pool2dLayer final : public Layer {
 public:
  Pool2dLayer(PoolKind pool_kind, std::int64_t kernel, std::int64_t stride,
              std::int64_t padding);
  [[nodiscard]] LayerKind kind() const override { return LayerKind::kPool2d; }
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] TensorShape infer(std::span<const TensorShape> inputs) const override;
  [[nodiscard]] double flops(std::span<const TensorShape> inputs, const TensorShape& output) const override;
  [[nodiscard]] std::uint64_t param_count(std::span<const TensorShape>, const TensorShape&) const override { return 0; }
  [[nodiscard]] PoolKind pool_kind() const { return pool_kind_; }
  [[nodiscard]] std::int64_t kernel() const { return kernel_; }
  [[nodiscard]] std::int64_t stride() const { return stride_; }
  [[nodiscard]] std::int64_t padding() const { return padding_; }

 private:
  PoolKind pool_kind_;
  std::int64_t kernel_;
  std::int64_t stride_;
  std::int64_t padding_;
};

class GlobalAvgPoolLayer final : public Layer {
 public:
  [[nodiscard]] LayerKind kind() const override { return LayerKind::kGlobalAvgPool; }
  [[nodiscard]] std::string describe() const override { return "global_avg_pool"; }
  [[nodiscard]] TensorShape infer(std::span<const TensorShape> inputs) const override;
  [[nodiscard]] double flops(std::span<const TensorShape> inputs, const TensorShape& output) const override;
  [[nodiscard]] std::uint64_t param_count(std::span<const TensorShape>, const TensorShape&) const override { return 0; }
};

class FlattenLayer final : public Layer {
 public:
  [[nodiscard]] LayerKind kind() const override { return LayerKind::kFlatten; }
  [[nodiscard]] std::string describe() const override { return "flatten"; }
  [[nodiscard]] TensorShape infer(std::span<const TensorShape> inputs) const override;
  [[nodiscard]] double flops(std::span<const TensorShape>, const TensorShape&) const override { return 0.0; }
  [[nodiscard]] std::uint64_t param_count(std::span<const TensorShape>, const TensorShape&) const override { return 0; }
};

class ActivationLayer final : public Layer {
 public:
  explicit ActivationLayer(ActivationKind a) : act_(a) {}
  [[nodiscard]] LayerKind kind() const override { return LayerKind::kActivation; }
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] TensorShape infer(std::span<const TensorShape> inputs) const override;
  [[nodiscard]] double flops(std::span<const TensorShape> inputs, const TensorShape& output) const override;
  [[nodiscard]] std::uint64_t param_count(std::span<const TensorShape>, const TensorShape&) const override { return 0; }
  [[nodiscard]] ActivationKind activation_kind() const { return act_; }

 private:
  ActivationKind act_;
};

class BatchNormLayer final : public Layer {
 public:
  [[nodiscard]] LayerKind kind() const override { return LayerKind::kBatchNorm; }
  [[nodiscard]] std::string describe() const override { return "batch_norm"; }
  [[nodiscard]] TensorShape infer(std::span<const TensorShape> inputs) const override;
  [[nodiscard]] double flops(std::span<const TensorShape> inputs, const TensorShape& output) const override;
  [[nodiscard]] std::uint64_t param_count(std::span<const TensorShape> inputs, const TensorShape& output) const override;
};

class LRNLayer final : public Layer {
 public:
  explicit LRNLayer(std::int64_t size) : size_(size) {}
  [[nodiscard]] LayerKind kind() const override { return LayerKind::kLRN; }
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] TensorShape infer(std::span<const TensorShape> inputs) const override;
  [[nodiscard]] double flops(std::span<const TensorShape> inputs, const TensorShape& output) const override;
  [[nodiscard]] std::uint64_t param_count(std::span<const TensorShape>, const TensorShape&) const override { return 0; }
  [[nodiscard]] std::int64_t window_size() const { return size_; }

 private:
  std::int64_t size_;
};

class DropoutLayer final : public Layer {
 public:
  [[nodiscard]] LayerKind kind() const override { return LayerKind::kDropout; }
  [[nodiscard]] std::string describe() const override { return "dropout"; }
  [[nodiscard]] TensorShape infer(std::span<const TensorShape> inputs) const override;
  [[nodiscard]] double flops(std::span<const TensorShape>, const TensorShape&) const override { return 0.0; }
  [[nodiscard]] std::uint64_t param_count(std::span<const TensorShape>, const TensorShape&) const override { return 0; }
};

class ConcatLayer final : public Layer {
 public:
  [[nodiscard]] LayerKind kind() const override { return LayerKind::kConcat; }
  [[nodiscard]] std::string describe() const override { return "concat"; }
  [[nodiscard]] TensorShape infer(std::span<const TensorShape> inputs) const override;
  [[nodiscard]] double flops(std::span<const TensorShape>, const TensorShape&) const override { return 0.0; }
  [[nodiscard]] std::uint64_t param_count(std::span<const TensorShape>, const TensorShape&) const override { return 0; }
};

class AddLayer final : public Layer {
 public:
  [[nodiscard]] LayerKind kind() const override { return LayerKind::kAdd; }
  [[nodiscard]] std::string describe() const override { return "add"; }
  [[nodiscard]] TensorShape infer(std::span<const TensorShape> inputs) const override;
  [[nodiscard]] double flops(std::span<const TensorShape> inputs, const TensorShape& output) const override;
  [[nodiscard]] std::uint64_t param_count(std::span<const TensorShape>, const TensorShape&) const override { return 0; }
};

}  // namespace jps::dnn::detail
