#include "dnn/graph.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "check/lint_graph.h"

namespace jps::dnn {

Graph::Graph(std::string name, DType dtype)
    : name_(std::move(name)), dtype_(dtype) {}

NodeId Graph::add(std::unique_ptr<Layer> layer, std::vector<NodeId> inputs,
                  std::string label) {
  if (!layer) throw std::invalid_argument("Graph::add: null layer");
  const NodeId id = nodes_.size();
  for (NodeId in : inputs) {
    if (in >= id) throw std::invalid_argument("Graph::add: input id not yet added");
  }
  if (label.empty()) {
    label = "n" + std::to_string(id) + ":" + layer->describe();
  }
  Node node;
  node.layer = std::move(layer);
  node.inputs = std::move(inputs);
  node.label = std::move(label);
  nodes_.push_back(std::move(node));
  for (NodeId in : nodes_.back().inputs) nodes_[in].outputs.push_back(id);
  inferred_ = false;
  return id;
}

const Layer& Graph::layer(NodeId id) const {
  if (id >= nodes_.size()) throw std::out_of_range("Graph::layer");
  return *nodes_[id].layer;
}

const std::string& Graph::label(NodeId id) const {
  if (id >= nodes_.size()) throw std::out_of_range("Graph::label");
  return nodes_[id].label;
}

const std::vector<NodeId>& Graph::predecessors(NodeId id) const {
  if (id >= nodes_.size()) throw std::out_of_range("Graph::predecessors");
  return nodes_[id].inputs;
}

const std::vector<NodeId>& Graph::successors(NodeId id) const {
  if (id >= nodes_.size()) throw std::out_of_range("Graph::successors");
  return nodes_[id].outputs;
}

void Graph::infer() {
  // Structural admission (G001-G005) runs through the shared graph rule
  // pack, so this runtime gate and the offline `jps_lint` verifier can never
  // disagree — and a broken graph reports ALL its violations at once.
  {
    check::DiagnosticList diagnostics;
    check::lint_graph_structure(*this, diagnostics);
    check::throw_validation_error_if_any(diagnostics, "Graph::infer");
  }

  for (NodeId id = 0; id < nodes_.size(); ++id) {
    Node& n = nodes_[id];
    std::vector<TensorShape> in_shapes;
    in_shapes.reserve(n.inputs.size());
    for (NodeId in : n.inputs) in_shapes.push_back(nodes_[in].info.output_shape);
    try {
      n.info.output_shape = n.layer->infer(in_shapes);
    } catch (const std::exception& e) {
      // G006: same code the lint pack reports for shape-inference failures.
      check::DiagnosticList diagnostics;
      diagnostics.error("G006", "node " + std::to_string(id),
                        "shape inference failed at '" + n.label +
                            "': " + e.what());
      throw check::ValidationError("Graph::infer", diagnostics);
    }
    n.info.flops = n.layer->flops(in_shapes, n.info.output_shape);
    n.info.params = n.layer->param_count(in_shapes, n.info.output_shape);
    n.info.output_bytes = n.info.output_shape.bytes(dtype_);
    n.info.memory_traffic =
        n.layer->memory_traffic_bytes(in_shapes, n.info.output_shape, dtype_);
  }
  inferred_ = true;
}

const NodeInfo& Graph::info(NodeId id) const {
  if (!inferred_) throw std::logic_error("Graph::info: call infer() first");
  if (id >= nodes_.size()) throw std::out_of_range("Graph::info");
  return nodes_[id].info;
}

NodeId Graph::source() const {
  // Node 0 is validated as the unique input by infer(); even before infer(),
  // construction guarantees node 0 has no predecessors.
  if (nodes_.empty()) throw std::logic_error("Graph::source: empty graph");
  return 0;
}

NodeId Graph::sink() const {
  for (NodeId id = nodes_.size(); id-- > 0;) {
    if (nodes_[id].outputs.empty()) return id;
  }
  throw std::logic_error("Graph::sink: no sink");
}

std::vector<NodeId> Graph::topo_order() const {
  std::vector<NodeId> order(nodes_.size());
  std::iota(order.begin(), order.end(), NodeId{0});
  return order;
}

bool Graph::is_line() const {
  for (const auto& n : nodes_) {
    if (n.inputs.size() > 1 || n.outputs.size() > 1) return false;
  }
  return true;
}

double Graph::total_flops() const {
  if (!inferred_) throw std::logic_error("Graph::total_flops: call infer() first");
  double total = 0.0;
  for (const auto& n : nodes_) total += n.info.flops;
  return total;
}

std::uint64_t Graph::total_params() const {
  if (!inferred_) throw std::logic_error("Graph::total_params: call infer() first");
  std::uint64_t total = 0;
  for (const auto& n : nodes_) total += n.info.params;
  return total;
}

std::uint64_t Graph::path_count() const {
  // DP over topological (== insertion) order; saturating addition.
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  std::vector<std::uint64_t> paths(nodes_.size(), 0);
  paths[source()] = 1;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    for (NodeId succ : nodes_[id].outputs) {
      if (paths[succ] > kMax - paths[id]) {
        paths[succ] = kMax;
      } else {
        paths[succ] += paths[id];
      }
    }
  }
  return paths[sink()];
}

std::vector<std::vector<NodeId>> Graph::enumerate_paths(
    std::size_t max_paths) const {
  if (path_count() > max_paths)
    throw std::runtime_error("Graph::enumerate_paths: path count " +
                             std::to_string(path_count()) + " exceeds cap " +
                             std::to_string(max_paths));
  std::vector<std::vector<NodeId>> result;
  std::vector<NodeId> current;
  const NodeId snk = sink();

  // Iterative DFS with explicit branch bookkeeping to avoid deep recursion.
  struct Frame {
    NodeId node;
    std::size_t next_succ;
  };
  std::vector<Frame> stack;
  stack.push_back({source(), 0});
  current.push_back(source());
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.node == snk) {
      result.push_back(current);
      stack.pop_back();
      current.pop_back();
      continue;
    }
    const auto& succs = nodes_[top.node].outputs;
    if (top.next_succ >= succs.size()) {
      stack.pop_back();
      current.pop_back();
      continue;
    }
    const NodeId next = succs[top.next_succ++];
    stack.push_back({next, 0});
    current.push_back(next);
  }
  return result;
}

std::vector<NodeId> Graph::articulation_nodes() const {
  // v lies on every path iff paths(src->v) * paths(v->sink) == total paths.
  // Use long double products to dodge overflow; exactness is irrelevant for
  // the equality check because articulation nodes satisfy it exactly and
  // non-articulation nodes miss by at least a factor covering one branch.
  std::vector<long double> fwd(nodes_.size(), 0.0L);
  std::vector<long double> bwd(nodes_.size(), 0.0L);
  fwd[source()] = 1.0L;
  for (NodeId id = 0; id < nodes_.size(); ++id)
    for (NodeId succ : nodes_[id].outputs) fwd[succ] += fwd[id];
  bwd[sink()] = 1.0L;
  for (NodeId id = nodes_.size(); id-- > 0;)
    for (NodeId succ : nodes_[id].outputs) bwd[id] += bwd[succ];

  const long double total = fwd[sink()];
  std::vector<NodeId> result;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const long double through = fwd[id] * bwd[id];
    if (through >= total * 0.999999L && through <= total * 1.000001L)
      result.push_back(id);
  }
  return result;  // already in topological order
}

std::vector<NodeId> ancestors_inclusive(const Graph& g, NodeId node) {
  if (node >= g.size()) throw std::out_of_range("ancestors_inclusive");
  std::vector<char> mark(g.size(), 0);
  std::vector<NodeId> stack{node};
  mark[node] = 1;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    for (NodeId p : g.predecessors(v)) {
      if (!mark[p]) {
        mark[p] = 1;
        stack.push_back(p);
      }
    }
  }
  std::vector<NodeId> result;
  for (NodeId id = 0; id < g.size(); ++id)
    if (mark[id]) result.push_back(id);
  return result;  // ascending ids == topological order
}

}  // namespace jps::dnn
