// Conv2d (regular, grouped, depthwise) and Dense layer implementations.
#include <sstream>
#include <stdexcept>

#include "dnn/layer_impl.h"

namespace jps::dnn::detail {

// InputLayer ------------------------------------------------------------------

std::string InputLayer::describe() const { return "input " + shape_.str(); }

TensorShape InputLayer::infer(std::span<const TensorShape> inputs) const {
  expect_arity(inputs, 0, "input");
  return shape_;
}

// Conv2dLayer -----------------------------------------------------------------

Conv2dLayer::Conv2dLayer(std::int64_t out_channels, std::int64_t kernel_h,
                         std::int64_t kernel_w, std::int64_t stride,
                         std::int64_t pad_h, std::int64_t pad_w,
                         std::int64_t groups, bool bias)
    : out_channels_(out_channels),
      kernel_h_(kernel_h),
      kernel_w_(kernel_w),
      stride_(stride),
      pad_h_(pad_h),
      pad_w_(pad_w),
      groups_(groups),
      bias_(bias) {
  if (kernel_h_ < 1 || kernel_w_ < 1 || stride_ < 1 || pad_h_ < 0 || pad_w_ < 0)
    throw std::invalid_argument("conv2d: bad kernel/stride/padding");
  if (groups_ < 0) throw std::invalid_argument("conv2d: bad groups");
  if (groups_ != 0 && out_channels_ % groups_ != 0)
    throw std::invalid_argument("conv2d: out_channels must divide by groups");
}

std::int64_t Conv2dLayer::effective_groups(std::int64_t in_channels) const {
  return depthwise() ? in_channels : groups_;
}

std::string Conv2dLayer::describe() const {
  std::ostringstream os;
  if (depthwise()) {
    os << "dwconv " << kernel_h_ << 'x' << kernel_w_ << '/' << stride_ << " p"
       << pad_h_;
  } else {
    os << "conv " << kernel_h_ << 'x' << kernel_w_ << '/' << stride_;
    if (pad_h_ == pad_w_) {
      os << " p" << pad_h_;
    } else {
      os << " p" << pad_h_ << 'x' << pad_w_;
    }
    os << " x" << out_channels_;
    if (groups_ > 1) os << " g" << groups_;
  }
  return os.str();
}

TensorShape Conv2dLayer::infer(std::span<const TensorShape> inputs) const {
  expect_arity(inputs, 1, "conv2d");
  expect_chw(inputs[0], "conv2d");
  const std::int64_t cin = inputs[0].channels();
  const std::int64_t groups = effective_groups(cin);
  if (cin % groups != 0)
    throw std::invalid_argument("conv2d: in_channels must divide by groups");
  const std::int64_t cout = depthwise() ? cin : out_channels_;
  return TensorShape::chw(
      cout,
      conv_out_dim(inputs[0].height(), kernel_h_, stride_, pad_h_, "conv2d"),
      conv_out_dim(inputs[0].width(), kernel_w_, stride_, pad_w_, "conv2d"));
}

double Conv2dLayer::flops(std::span<const TensorShape> inputs,
                          const TensorShape& output) const {
  const std::int64_t cin = inputs[0].channels();
  const std::int64_t groups = effective_groups(cin);
  // Each output element accumulates (cin/groups * kh * kw) MACs.
  const double macs_per_out = static_cast<double>(cin / groups) *
                              static_cast<double>(kernel_h_ * kernel_w_);
  double fl = 2.0 * macs_per_out * static_cast<double>(output.elements());
  if (bias_) fl += static_cast<double>(output.elements());
  return fl;
}

std::uint64_t Conv2dLayer::param_count(std::span<const TensorShape> inputs,
                                       const TensorShape& output) const {
  const std::int64_t cin = inputs[0].channels();
  const std::int64_t groups = effective_groups(cin);
  const std::int64_t cout = output.channels();
  std::uint64_t params = static_cast<std::uint64_t>(cout) *
                         static_cast<std::uint64_t>(cin / groups) *
                         static_cast<std::uint64_t>(kernel_h_ * kernel_w_);
  if (bias_) params += static_cast<std::uint64_t>(cout);
  return params;
}

// DenseLayer ------------------------------------------------------------------

std::string DenseLayer::describe() const {
  return "dense x" + std::to_string(out_features_);
}

TensorShape DenseLayer::infer(std::span<const TensorShape> inputs) const {
  expect_arity(inputs, 1, "dense");
  if (inputs[0].rank() != 1)
    throw std::invalid_argument("dense: expected flat input (flatten first)");
  return TensorShape::flat(out_features_);
}

double DenseLayer::flops(std::span<const TensorShape> inputs,
                         const TensorShape& output) const {
  double fl = 2.0 * static_cast<double>(inputs[0].elements()) *
              static_cast<double>(output.elements());
  if (bias_) fl += static_cast<double>(output.elements());
  return fl;
}

std::uint64_t DenseLayer::param_count(std::span<const TensorShape> inputs,
                                      const TensorShape& output) const {
  std::uint64_t params = static_cast<std::uint64_t>(inputs[0].elements()) *
                         static_cast<std::uint64_t>(output.elements());
  if (bias_) params += static_cast<std::uint64_t>(output.elements());
  return params;
}

}  // namespace jps::dnn::detail
