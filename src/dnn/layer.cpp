#include "dnn/layer.h"

#include <stdexcept>

#include "dnn/layer_impl.h"

namespace jps::dnn {

const char* layer_kind_name(LayerKind k) {
  switch (k) {
    case LayerKind::kInput: return "input";
    case LayerKind::kConv2d: return "conv2d";
    case LayerKind::kPool2d: return "pool2d";
    case LayerKind::kGlobalAvgPool: return "global_avg_pool";
    case LayerKind::kDense: return "dense";
    case LayerKind::kActivation: return "activation";
    case LayerKind::kBatchNorm: return "batch_norm";
    case LayerKind::kLRN: return "lrn";
    case LayerKind::kDropout: return "dropout";
    case LayerKind::kFlatten: return "flatten";
    case LayerKind::kConcat: return "concat";
    case LayerKind::kAdd: return "add";
  }
  return "?";
}

std::uint64_t Layer::memory_traffic_bytes(std::span<const TensorShape> inputs,
                                          const TensorShape& output,
                                          DType dtype) const {
  std::uint64_t bytes = output.bytes(dtype);
  for (const auto& in : inputs) bytes += in.bytes(dtype);
  bytes += param_count(inputs, output) * dtype_size(dtype);
  return bytes;
}

namespace detail {

void expect_arity(std::span<const TensorShape> inputs, std::size_t n,
                  const char* layer_name) {
  if (inputs.size() != n) {
    throw std::invalid_argument(std::string(layer_name) + ": expected " +
                                std::to_string(n) + " inputs, got " +
                                std::to_string(inputs.size()));
  }
}

void expect_chw(const TensorShape& s, const char* layer_name) {
  if (s.rank() != 3) {
    throw std::invalid_argument(std::string(layer_name) +
                                ": expected CHW input, got rank " +
                                std::to_string(s.rank()));
  }
}

std::int64_t conv_out_dim(std::int64_t in, std::int64_t kernel,
                          std::int64_t stride, std::int64_t pad,
                          const char* layer_name) {
  const std::int64_t out = (in + 2 * pad - kernel) / stride + 1;
  if (out < 1) {
    throw std::invalid_argument(std::string(layer_name) +
                                ": window larger than padded input");
  }
  return out;
}

}  // namespace detail

// Factory functions -----------------------------------------------------------

std::unique_ptr<Layer> input(TensorShape shape) {
  return std::make_unique<detail::InputLayer>(std::move(shape));
}

std::unique_ptr<Layer> conv2d(std::int64_t out_channels, std::int64_t kernel,
                              std::int64_t stride, std::int64_t padding,
                              std::int64_t groups, bool bias) {
  return std::make_unique<detail::Conv2dLayer>(out_channels, kernel, kernel,
                                               stride, padding, padding,
                                               groups, bias);
}

std::unique_ptr<Layer> conv2d_rect(std::int64_t out_channels,
                                   std::int64_t kernel_h, std::int64_t kernel_w,
                                   std::int64_t padding_h,
                                   std::int64_t padding_w, bool bias) {
  // Negative padding means "same" for odd kernels: (k-1)/2 per axis.
  if (padding_h < 0) padding_h = (kernel_h - 1) / 2;
  if (padding_w < 0) padding_w = (kernel_w - 1) / 2;
  return std::make_unique<detail::Conv2dLayer>(out_channels, kernel_h,
                                               kernel_w, /*stride=*/1,
                                               padding_h, padding_w,
                                               /*groups=*/1, bias);
}

std::unique_ptr<Layer> depthwise_conv2d(std::int64_t kernel, std::int64_t stride,
                                        std::int64_t padding) {
  // groups == 0 is the internal encoding for "bind to in_channels";
  // out_channels is likewise bound at inference time.
  return std::make_unique<detail::Conv2dLayer>(/*out_channels=*/0, kernel,
                                               kernel, stride, padding,
                                               padding, /*groups=*/0,
                                               /*bias=*/false);
}

std::unique_ptr<Layer> pool2d(PoolKind kind, std::int64_t kernel,
                              std::int64_t stride, std::int64_t padding) {
  return std::make_unique<detail::Pool2dLayer>(kind, kernel, stride, padding);
}

std::unique_ptr<Layer> global_avg_pool() {
  return std::make_unique<detail::GlobalAvgPoolLayer>();
}

std::unique_ptr<Layer> dense(std::int64_t out_features, bool bias) {
  return std::make_unique<detail::DenseLayer>(out_features, bias);
}

std::unique_ptr<Layer> activation(ActivationKind kind) {
  return std::make_unique<detail::ActivationLayer>(kind);
}

std::unique_ptr<Layer> batch_norm() {
  return std::make_unique<detail::BatchNormLayer>();
}

std::unique_ptr<Layer> lrn(std::int64_t size) {
  return std::make_unique<detail::LRNLayer>(size);
}

std::unique_ptr<Layer> dropout() { return std::make_unique<detail::DropoutLayer>(); }

std::unique_ptr<Layer> flatten() { return std::make_unique<detail::FlattenLayer>(); }

std::unique_ptr<Layer> concat() { return std::make_unique<detail::ConcatLayer>(); }

std::unique_ptr<Layer> add() { return std::make_unique<detail::AddLayer>(); }

}  // namespace jps::dnn
