#include "dnn/tensor_shape.h"

#include <cassert>
#include <sstream>
#include <stdexcept>

namespace jps::dnn {

const char* dtype_name(DType t) {
  switch (t) {
    case DType::kFloat32: return "f32";
    case DType::kFloat16: return "f16";
    case DType::kInt8: return "i8";
  }
  return "?";
}

namespace {
void validate(const std::vector<std::int64_t>& dims) {
  for (std::int64_t d : dims) {
    if (d < 1) throw std::invalid_argument("TensorShape: dims must be >= 1");
  }
}
}  // namespace

TensorShape::TensorShape(std::initializer_list<std::int64_t> dims)
    : dims_(dims) {
  validate(dims_);
}

TensorShape::TensorShape(std::vector<std::int64_t> dims)
    : dims_(std::move(dims)) {
  validate(dims_);
}

TensorShape TensorShape::chw(std::int64_t c, std::int64_t h, std::int64_t w) {
  return TensorShape{c, h, w};
}

TensorShape TensorShape::flat(std::int64_t f) { return TensorShape{f}; }

std::int64_t TensorShape::dim(std::size_t i) const {
  if (i >= dims_.size()) throw std::out_of_range("TensorShape::dim");
  return dims_[i];
}

std::int64_t TensorShape::channels() const {
  assert(rank() == 3);
  return dims_[0];
}

std::int64_t TensorShape::height() const {
  assert(rank() == 3);
  return dims_[1];
}

std::int64_t TensorShape::width() const {
  assert(rank() == 3);
  return dims_[2];
}

std::int64_t TensorShape::elements() const {
  if (dims_.empty()) return 0;
  std::int64_t n = 1;
  for (std::int64_t d : dims_) n *= d;
  return n;
}

std::uint64_t TensorShape::bytes(DType t) const {
  return static_cast<std::uint64_t>(elements()) * dtype_size(t);
}

std::string TensorShape::str() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i) os << 'x';
    os << dims_[i];
  }
  return os.str();
}

}  // namespace jps::dnn
