// Element-wise, normalization and join layers.
#include <stdexcept>

#include "dnn/layer_impl.h"

namespace jps::dnn::detail {

// ActivationLayer -------------------------------------------------------------

std::string ActivationLayer::describe() const {
  switch (act_) {
    case ActivationKind::kReLU: return "relu";
    case ActivationKind::kReLU6: return "relu6";
    case ActivationKind::kSigmoid: return "sigmoid";
    case ActivationKind::kTanh: return "tanh";
    case ActivationKind::kSoftmax: return "softmax";
  }
  return "activation";
}

TensorShape ActivationLayer::infer(std::span<const TensorShape> inputs) const {
  expect_arity(inputs, 1, "activation");
  return inputs[0];
}

double ActivationLayer::flops(std::span<const TensorShape> inputs,
                              const TensorShape&) const {
  // One (or a few, for transcendental kinds) ops per element; a single FLOP
  // per element is the standard accounting and the difference never matters
  // next to conv/dense costs.
  return static_cast<double>(inputs[0].elements());
}

// BatchNormLayer --------------------------------------------------------------

TensorShape BatchNormLayer::infer(std::span<const TensorShape> inputs) const {
  expect_arity(inputs, 1, "batch_norm");
  return inputs[0];
}

double BatchNormLayer::flops(std::span<const TensorShape> inputs,
                             const TensorShape&) const {
  // Inference-mode BN folds to one multiply + one add per element.
  return 2.0 * static_cast<double>(inputs[0].elements());
}

std::uint64_t BatchNormLayer::param_count(std::span<const TensorShape> inputs,
                                          const TensorShape&) const {
  if (inputs.empty() || inputs[0].rank() < 1) return 0;
  // gamma + beta per channel (running stats folded in at inference).
  const std::int64_t channels =
      inputs[0].rank() == 3 ? inputs[0].channels() : inputs[0].elements();
  return 2ull * static_cast<std::uint64_t>(channels);
}

// LRNLayer --------------------------------------------------------------------

std::string LRNLayer::describe() const { return "lrn n" + std::to_string(size_); }

TensorShape LRNLayer::infer(std::span<const TensorShape> inputs) const {
  expect_arity(inputs, 1, "lrn");
  expect_chw(inputs[0], "lrn");
  return inputs[0];
}

double LRNLayer::flops(std::span<const TensorShape> inputs,
                       const TensorShape&) const {
  // `size_` squares + adds in the window, plus normalization per element.
  return static_cast<double>(inputs[0].elements()) *
         (2.0 * static_cast<double>(size_) + 3.0);
}

// DropoutLayer ----------------------------------------------------------------

TensorShape DropoutLayer::infer(std::span<const TensorShape> inputs) const {
  expect_arity(inputs, 1, "dropout");
  return inputs[0];  // identity at inference time
}

// ConcatLayer -----------------------------------------------------------------

TensorShape ConcatLayer::infer(std::span<const TensorShape> inputs) const {
  if (inputs.size() < 2)
    throw std::invalid_argument("concat: needs at least 2 inputs");
  expect_chw(inputs[0], "concat");
  std::int64_t channels = 0;
  for (const auto& in : inputs) {
    expect_chw(in, "concat");
    if (in.height() != inputs[0].height() || in.width() != inputs[0].width())
      throw std::invalid_argument("concat: spatial dims must match");
    channels += in.channels();
  }
  return TensorShape::chw(channels, inputs[0].height(), inputs[0].width());
}

// AddLayer --------------------------------------------------------------------

TensorShape AddLayer::infer(std::span<const TensorShape> inputs) const {
  expect_arity(inputs, 2, "add");
  if (!(inputs[0] == inputs[1]))
    throw std::invalid_argument("add: input shapes must match");
  return inputs[0];
}

double AddLayer::flops(std::span<const TensorShape> inputs,
                       const TensorShape&) const {
  return static_cast<double>(inputs[0].elements());
}

}  // namespace jps::dnn::detail
