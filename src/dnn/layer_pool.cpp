// Pooling and reshaping layers.
#include <sstream>
#include <stdexcept>

#include "dnn/layer_impl.h"

namespace jps::dnn::detail {

// Pool2dLayer -----------------------------------------------------------------

Pool2dLayer::Pool2dLayer(PoolKind pool_kind, std::int64_t kernel,
                         std::int64_t stride, std::int64_t padding)
    : pool_kind_(pool_kind), kernel_(kernel), stride_(stride), padding_(padding) {
  if (kernel_ < 1 || stride_ < 1 || padding_ < 0)
    throw std::invalid_argument("pool2d: bad kernel/stride/padding");
}

std::string Pool2dLayer::describe() const {
  std::ostringstream os;
  os << (pool_kind_ == PoolKind::kMax ? "maxpool " : "avgpool ") << kernel_
     << 'x' << kernel_ << '/' << stride_;
  if (padding_ > 0) os << " p" << padding_;
  return os.str();
}

TensorShape Pool2dLayer::infer(std::span<const TensorShape> inputs) const {
  expect_arity(inputs, 1, "pool2d");
  expect_chw(inputs[0], "pool2d");
  return TensorShape::chw(
      inputs[0].channels(),
      conv_out_dim(inputs[0].height(), kernel_, stride_, padding_, "pool2d"),
      conv_out_dim(inputs[0].width(), kernel_, stride_, padding_, "pool2d"));
}

double Pool2dLayer::flops(std::span<const TensorShape>,
                          const TensorShape& output) const {
  // One compare/add per window element per output element.
  return static_cast<double>(output.elements()) *
         static_cast<double>(kernel_ * kernel_);
}

// GlobalAvgPoolLayer ----------------------------------------------------------

TensorShape GlobalAvgPoolLayer::infer(std::span<const TensorShape> inputs) const {
  expect_arity(inputs, 1, "global_avg_pool");
  expect_chw(inputs[0], "global_avg_pool");
  return TensorShape::chw(inputs[0].channels(), 1, 1);
}

double GlobalAvgPoolLayer::flops(std::span<const TensorShape> inputs,
                                 const TensorShape&) const {
  return static_cast<double>(inputs[0].elements());  // one add per element
}

// FlattenLayer ----------------------------------------------------------------

TensorShape FlattenLayer::infer(std::span<const TensorShape> inputs) const {
  expect_arity(inputs, 1, "flatten");
  return TensorShape::flat(inputs[0].elements());
}

}  // namespace jps::dnn::detail
