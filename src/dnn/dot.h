// Graphviz DOT export for debugging and documentation.
#pragma once

#include <string>

#include "dnn/graph.h"

namespace jps::dnn {

/// Render the graph in DOT syntax.  When infer() has run, nodes are annotated
/// with output shapes and edges with transfer sizes.
[[nodiscard]] std::string to_dot(const Graph& g);

}  // namespace jps::dnn
