// Layer-level DAG model of a DNN (§3.1 of the paper).
//
// Nodes are layers; edges carry the intermediate tensors whose byte sizes are
// the offloading communication volumes.  Construction is append-only and
// every edge must point to an existing node, so the graph is acyclic by
// construction and insertion order is a valid topological order.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dnn/layer.h"
#include "dnn/tensor_shape.h"

namespace jps::dnn {

/// Index of a node within its Graph.
using NodeId = std::size_t;

/// Per-node results of shape/cost inference (filled by Graph::infer()).
struct NodeInfo {
  TensorShape output_shape;
  double flops = 0.0;
  std::uint64_t params = 0;
  /// Bytes of this node's output tensor — the offload volume if we cut here.
  std::uint64_t output_bytes = 0;
  /// Bytes moved through memory executing the node (inputs+output+params).
  std::uint64_t memory_traffic = 0;
};

/// A DNN computation graph.  Movable, non-copyable (owns layers).
class Graph {
 public:
  /// Create an empty graph. `dtype` sets activation/parameter element size.
  explicit Graph(std::string name, DType dtype = DType::kFloat32);

  Graph(Graph&&) noexcept = default;
  Graph& operator=(Graph&&) noexcept = default;
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;

  /// Append a node computing `layer` from the outputs of `inputs`.
  /// All input ids must already exist.  Returns the new node's id.
  /// `label` overrides the auto-generated display name.
  NodeId add(std::unique_ptr<Layer> layer, std::vector<NodeId> inputs = {},
             std::string label = {});

  /// Number of nodes.
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }

  /// Model name ("alexnet", ...).
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Element type of activations and parameters.
  [[nodiscard]] DType dtype() const { return dtype_; }

  /// Switch the activation/parameter element type (e.g. to model quantized
  /// offloading, where intermediate tensors ship as f16/i8).  Invalidates
  /// inference results; call infer() again before using info().
  void set_dtype(DType dtype) {
    dtype_ = dtype;
    inferred_ = false;
  }

  /// The layer at `id`.
  [[nodiscard]] const Layer& layer(NodeId id) const;

  /// Display label of node `id`.
  [[nodiscard]] const std::string& label(NodeId id) const;

  /// Predecessors (edge sources) of `id`, in declaration order.
  [[nodiscard]] const std::vector<NodeId>& predecessors(NodeId id) const;

  /// Successors of `id`, in declaration order.
  [[nodiscard]] const std::vector<NodeId>& successors(NodeId id) const;

  /// Run shape inference over the whole graph, filling per-node NodeInfo.
  /// Validates: exactly one Input node, it is node 0's only source, exactly
  /// one sink, every non-input node has >= 1 predecessor.
  /// Throws std::invalid_argument on violation.  Idempotent.
  void infer();

  /// True once infer() has completed successfully.
  [[nodiscard]] bool inferred() const { return inferred_; }

  /// Inference results for node `id` (infer() must have run).
  [[nodiscard]] const NodeInfo& info(NodeId id) const;

  /// The unique node with no predecessors (validated by infer()).
  [[nodiscard]] NodeId source() const;

  /// The unique node with no successors (validated by infer()).
  [[nodiscard]] NodeId sink() const;

  /// Ids in a valid topological order (== insertion order by construction).
  [[nodiscard]] std::vector<NodeId> topo_order() const;

  /// True when every node has at most one predecessor and one successor,
  /// i.e. the DAG is a simple chain (the paper's "line-structure").
  [[nodiscard]] bool is_line() const;

  /// Sum of flops over all nodes (infer() required).
  [[nodiscard]] double total_flops() const;

  /// Sum of parameter counts over all nodes (infer() required).
  [[nodiscard]] std::uint64_t total_params() const;

  /// Number of distinct source->sink paths (infer() not required).
  /// Saturates at std::numeric_limits<uint64_t>::max() on overflow.
  [[nodiscard]] std::uint64_t path_count() const;

  /// All source->sink paths as node-id sequences.  Throws
  /// std::runtime_error when the count exceeds `max_paths` — callers dealing
  /// with combinatorial DAGs must use articulation decomposition instead.
  [[nodiscard]] std::vector<std::vector<NodeId>> enumerate_paths(
      std::size_t max_paths = 4096) const;

  /// Nodes every source->sink path passes through, in topological order
  /// (always includes source and sink).  These are the "trunk" nodes between
  /// which parallel branches live.
  [[nodiscard]] std::vector<NodeId> articulation_nodes() const;

 private:
  struct Node {
    std::unique_ptr<Layer> layer;
    std::vector<NodeId> inputs;
    std::vector<NodeId> outputs;
    std::string label;
    NodeInfo info;
  };

  std::string name_;
  DType dtype_;
  std::vector<Node> nodes_;
  bool inferred_ = false;
};

/// Ancestor closure of `node`, including `node` itself, in topological
/// order.  These are exactly the nodes that must run on the mobile device
/// when `node` is a cut-point (§3.1: "all computation nodes v in P_j and
/// their predecessors are processed on mobile devices").
[[nodiscard]] std::vector<NodeId> ancestors_inclusive(const Graph& g,
                                                      NodeId node);

}  // namespace jps::dnn
