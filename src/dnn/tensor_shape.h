// Tensor shapes for layer-level DNN modeling.
//
// The partition algorithms only ever need two things from a tensor: its
// element count (for FLOP and memory-traffic accounting) and its byte size
// (for the offloading communication volume g).  Shapes model a single
// inference sample (no batch dimension) in CHW layout for images and {F} for
// flattened feature vectors, matching the paper's per-frame jobs.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace jps::dnn {

/// Bytes per element for the data types the zoo uses.
enum class DType : std::uint8_t {
  kFloat32,
  kFloat16,
  kInt8,
};

/// Size of one element of `t` in bytes.
[[nodiscard]] constexpr std::uint64_t dtype_size(DType t) {
  switch (t) {
    case DType::kFloat32: return 4;
    case DType::kFloat16: return 2;
    case DType::kInt8: return 1;
  }
  return 4;
}

/// Human-readable dtype name ("f32", ...).
[[nodiscard]] const char* dtype_name(DType t);

/// Immutable-ish dimension vector with CHW convenience accessors.
class TensorShape {
 public:
  TensorShape() = default;

  /// Arbitrary-rank shape; every dim must be >= 1 (validated).
  TensorShape(std::initializer_list<std::int64_t> dims);
  explicit TensorShape(std::vector<std::int64_t> dims);

  /// CHW image shape.
  static TensorShape chw(std::int64_t c, std::int64_t h, std::int64_t w);

  /// Flat feature vector of `f` features.
  static TensorShape flat(std::int64_t f);

  /// Number of dimensions (0 for a default-constructed empty shape).
  [[nodiscard]] std::size_t rank() const { return dims_.size(); }

  /// True when no dims have been set; used as "shape not inferred yet".
  [[nodiscard]] bool empty() const { return dims_.empty(); }

  /// Dimension i (bounds-checked).
  [[nodiscard]] std::int64_t dim(std::size_t i) const;

  /// Channels / height / width of a rank-3 CHW shape (asserts rank 3).
  [[nodiscard]] std::int64_t channels() const;
  [[nodiscard]] std::int64_t height() const;
  [[nodiscard]] std::int64_t width() const;

  /// Product of all dims; 0 for an empty shape.
  [[nodiscard]] std::int64_t elements() const;

  /// elements() * dtype_size(t).
  [[nodiscard]] std::uint64_t bytes(DType t = DType::kFloat32) const;

  /// "24x56x56" style rendering.
  [[nodiscard]] std::string str() const;

  [[nodiscard]] const std::vector<std::int64_t>& dims() const { return dims_; }

  friend bool operator==(const TensorShape& a, const TensorShape& b) = default;

 private:
  std::vector<std::int64_t> dims_;
};

}  // namespace jps::dnn
