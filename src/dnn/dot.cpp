#include "dnn/dot.h"

#include <sstream>

#include "util/table.h"

namespace jps::dnn {

namespace {
// DOT-escape a label (quotes and backslashes).
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}
}  // namespace

std::string to_dot(const Graph& g) {
  std::ostringstream os;
  os << "digraph \"" << escape(g.name()) << "\" {\n";
  os << "  rankdir=TB;\n  node [shape=box, fontsize=10];\n";
  for (NodeId id = 0; id < g.size(); ++id) {
    os << "  n" << id << " [label=\"" << escape(g.label(id));
    if (g.inferred()) os << "\\n" << g.info(id).output_shape.str();
    os << "\"];\n";
  }
  for (NodeId id = 0; id < g.size(); ++id) {
    for (NodeId succ : g.successors(id)) {
      os << "  n" << id << " -> n" << succ;
      if (g.inferred())
        os << " [label=\"" << util::format_bytes(g.info(id).output_bytes)
           << "\"]";
      os << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace jps::dnn
