// Layer taxonomy with shape inference, FLOP and parameter accounting.
//
// The partition problem is layer-granular (§3.1: "each node represents a
// layer ... instead of a neuron"), so a layer only needs to expose:
//   * its output shape given input shapes        -> communication volume g
//   * its FLOP count and memory traffic          -> computation time f
//   * its parameter count                        -> device memory accounting
// Multiply-accumulate operations are counted as 2 FLOPs throughout.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "dnn/tensor_shape.h"

namespace jps::dnn {

/// Discriminator for quick checks without dynamic_cast.
enum class LayerKind : std::uint8_t {
  kInput,
  kConv2d,
  kPool2d,
  kGlobalAvgPool,
  kDense,
  kActivation,
  kBatchNorm,
  kLRN,
  kDropout,
  kFlatten,
  kConcat,
  kAdd,
};

/// Human-readable kind name ("conv2d", ...).
[[nodiscard]] const char* layer_kind_name(LayerKind k);

/// Abstract layer. Concrete layers are immutable after construction; the
/// Graph owns them through unique_ptr.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Discriminator for this layer.
  [[nodiscard]] virtual LayerKind kind() const = 0;

  /// Short human-readable description, e.g. "conv 3x3/1 p1 x64".
  [[nodiscard]] virtual std::string describe() const = 0;

  /// Output shape from the given input shapes. Throws std::invalid_argument
  /// when arity or shapes are incompatible with the layer.
  [[nodiscard]] virtual TensorShape infer(
      std::span<const TensorShape> inputs) const = 0;

  /// FLOPs to produce `output` from `inputs` (MAC = 2 FLOPs).
  [[nodiscard]] virtual double flops(std::span<const TensorShape> inputs,
                                     const TensorShape& output) const = 0;

  /// Number of learned parameters (weights + biases).
  [[nodiscard]] virtual std::uint64_t param_count(
      std::span<const TensorShape> inputs, const TensorShape& output) const = 0;

  /// Bytes moved through memory to execute the layer: inputs + output +
  /// parameters.  Used to model memory-bound layers (pooling, depthwise
  /// conv) whose time is not FLOP-dominated.
  [[nodiscard]] std::uint64_t memory_traffic_bytes(
      std::span<const TensorShape> inputs, const TensorShape& output,
      DType dtype = DType::kFloat32) const;
};

/// Nonlinearity variants (cost-wise identical; kept for model fidelity).
enum class ActivationKind : std::uint8_t { kReLU, kReLU6, kSigmoid, kTanh, kSoftmax };

/// Pooling variants.
enum class PoolKind : std::uint8_t { kMax, kAvg };

// ---------------------------------------------------------------------------
// Factory functions (the public way to create layers).
// ---------------------------------------------------------------------------

/// Graph entry point carrying the sample shape (e.g. 3x224x224).
[[nodiscard]] std::unique_ptr<Layer> input(TensorShape shape);

/// 2-D convolution. `groups` divides channels; groups == in_channels gives a
/// depthwise convolution. Square kernel/stride/padding shorthand.
[[nodiscard]] std::unique_ptr<Layer> conv2d(std::int64_t out_channels,
                                            std::int64_t kernel,
                                            std::int64_t stride = 1,
                                            std::int64_t padding = 0,
                                            std::int64_t groups = 1,
                                            bool bias = true);

/// Rectangular-kernel convolution (stride 1): Inception's factorized 7x1 /
/// 1x7 / 3x1 / 1x3 layers.  Padding defaults to "same" ((k-1)/2 per axis)
/// for odd kernels, which is how those factorized layers are always used.
[[nodiscard]] std::unique_ptr<Layer> conv2d_rect(std::int64_t out_channels,
                                                 std::int64_t kernel_h,
                                                 std::int64_t kernel_w,
                                                 std::int64_t padding_h = -1,
                                                 std::int64_t padding_w = -1,
                                                 bool bias = true);

/// Depthwise convolution: groups bound to the input channel count.
[[nodiscard]] std::unique_ptr<Layer> depthwise_conv2d(std::int64_t kernel,
                                                      std::int64_t stride = 1,
                                                      std::int64_t padding = 0);

/// Max/avg pooling window.
[[nodiscard]] std::unique_ptr<Layer> pool2d(PoolKind kind, std::int64_t kernel,
                                            std::int64_t stride,
                                            std::int64_t padding = 0);

/// Global average pooling: CxHxW -> Cx1x1.
[[nodiscard]] std::unique_ptr<Layer> global_avg_pool();

/// Fully-connected layer on a flat input.
[[nodiscard]] std::unique_ptr<Layer> dense(std::int64_t out_features,
                                           bool bias = true);

/// Element-wise nonlinearity.
[[nodiscard]] std::unique_ptr<Layer> activation(ActivationKind kind);

/// Channel-wise batch normalization (inference mode: scale + shift).
[[nodiscard]] std::unique_ptr<Layer> batch_norm();

/// Local response normalization (AlexNet-era).
[[nodiscard]] std::unique_ptr<Layer> lrn(std::int64_t size = 5);

/// Dropout is a no-op at inference; kept so layer indices match papers.
[[nodiscard]] std::unique_ptr<Layer> dropout();

/// Flatten CxHxW to a feature vector.
[[nodiscard]] std::unique_ptr<Layer> flatten();

/// Channel-axis concatenation of >= 2 inputs (inception joins).
[[nodiscard]] std::unique_ptr<Layer> concat();

/// Element-wise addition of two same-shape inputs (residual joins).
[[nodiscard]] std::unique_ptr<Layer> add();

}  // namespace jps::dnn
