// Chaos transport: a ByteStream decorator that injects scripted faults.
//
// FaultyByteStream wraps any ByteStream and perturbs its traffic according
// to the net_* events of a fault::FaultSpec (the same "jps-faults v1" text
// format the device-side fault executor consumes, so one artifact language
// scripts both halves of the system):
//
//   net_delay   <start_b> <end_b> <ms>   ops starting in the window sleep
//   net_short   <start_b> <end_b>        reads/writes clipped to 1 byte
//   net_drop    <start_b> <end_b>        stream dies at offset <start_b>
//   net_corrupt <start_b> <end_b> <mask> read bytes XORed with <mask>
//
// Windows are BYTE OFFSETS into this endpoint's own streams (reads and
// writes each keep their own monotone offset; a window applies to both
// directions).  Byte-addressed faults fire at exactly the same place in the
// conversation every run, regardless of scheduling or timing — that
// determinism is what lets `jps_serve selfcheck --chaos` assert bit-exact
// replies under injected failure.
//
// Fault semantics:
//   * delay    — an op whose starting offset lies in a window sleeps
//                value ms (once per read()/write() call, not per byte).
//   * short    — an op starting in a window transfers at most 1 byte
//                (writes still complete by looping; reads return short, so
//                the frame layer's read_exact loop is exercised for real).
//   * drop     — once EITHER direction's offset reaches start_b, the
//                stream behaves like a dead peer: reads EOF, writes throw.
//                Mid-frame death (after a length prefix, before the body)
//                is scripted by dropping at the prefix boundary.
//   * corrupt  — bytes READ whose offset lies in a window are XORed with
//                the mask (1..255).  Reads only: corrupting our own writes
//                would test the peer, not us.
//
// The decorator is as thread-safe as the wrapped stream for one reader +
// one writer thread (offsets are per-direction); per-op stats are atomics.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "fault/fault_spec.h"
#include "serve/transport.h"

namespace jps::serve {

struct ChaosStats {
  std::uint64_t delayed_ops = 0;
  std::uint64_t short_ops = 0;
  std::uint64_t corrupted_bytes = 0;
  /// The scripted drop fired (the stream is dead from the caller's view).
  bool dropped = false;
};

class FaultyByteStream final : public ByteStream {
 public:
  /// Wraps `inner`; only net_* events of `spec` are consulted (timeline
  /// kinds are ignored, symmetric with FaultTimeline ignoring net_*).
  /// `delay_scale` multiplies every scripted delay (benches dial chaos
  /// sleeps down under quick mode without editing the spec).
  FaultyByteStream(std::unique_ptr<ByteStream> inner,
                   const fault::FaultSpec& spec, double delay_scale = 1.0);
  ~FaultyByteStream() override;

  [[nodiscard]] std::size_t read(char* out, std::size_t max) override;
  void write(const char* data, std::size_t size) override;
  void shutdown_read() override;
  void close() override;
  void set_read_timeout_ms(double ms) override;

  [[nodiscard]] ChaosStats stats() const;

 private:
  struct Window {
    std::uint64_t start = 0;
    std::uint64_t end = 0;
    double value = 0.0;
  };

  /// First window containing `offset`, or nullptr.
  [[nodiscard]] static const Window* find(const std::vector<Window>& windows,
                                          std::uint64_t offset);
  /// True (and latches `dropped_`) once `offset` reached any drop window.
  [[nodiscard]] bool drop_fired(std::uint64_t offset);
  void sleep_for_ms(double ms);

  std::unique_ptr<ByteStream> inner_;
  double delay_scale_ = 1.0;
  std::vector<Window> delay_;    // sorted by start
  std::vector<Window> shorten_;  // sorted by start
  std::vector<Window> corrupt_;  // sorted by start
  std::vector<Window> drop_;     // sorted by start

  std::uint64_t read_offset_ = 0;   // owned by the reading thread
  std::uint64_t write_offset_ = 0;  // owned by the writing thread
  std::atomic<bool> dropped_{false};

  std::atomic<std::uint64_t> delayed_ops_{0};
  std::atomic<std::uint64_t> short_ops_{0};
  std::atomic<std::uint64_t> corrupted_bytes_{0};
};

}  // namespace jps::serve
