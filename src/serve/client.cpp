#include "serve/client.h"

#include <utility>

namespace jps::serve {

Client::Client(std::unique_ptr<ByteStream> stream)
    : stream_(std::move(stream)) {
  if (!stream_) throw ProtocolError("serve: Client needs a stream");
}

PlanReply Client::plan(const PlanRequest& request) {
  write_frame(*stream_, encode_plan_request(request));
  const std::optional<std::string> payload = read_frame(*stream_);
  if (!payload)
    throw ProtocolError("serve: connection closed before plan reply");
  return decode_plan_reply(*payload);
}

bool Client::ping() {
  write_frame(*stream_, encode_ping());
  const std::optional<std::string> payload = read_frame(*stream_);
  if (!payload) return false;
  return peek_op(*payload) == Op::kPingReply;
}

void Client::close() {
  if (stream_) stream_->close();
}

}  // namespace jps::serve
