#include "serve/client.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "obs/trace_context.h"

namespace jps::serve {

namespace {

constexpr std::size_t kLatencyWindow = 64;

double steady_now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Client::Client(std::unique_ptr<ByteStream> stream)
    : Client(std::move(stream), ClientRetryOptions{}, {}) {}

Client::Client(std::unique_ptr<ByteStream> stream, ClientRetryOptions options,
               StreamFactory reconnect)
    : stream_(std::move(stream)),
      options_(options),
      factory_(std::move(reconnect)),
      rng_(options.seed) {
  if (!stream_) throw ProtocolError("serve: Client needs a stream");
  options_.max_attempts = std::max(1, options_.max_attempts);
}

PlanReply Client::plan_once(const PlanRequest& request, double timeout_ms) {
  stream_->set_read_timeout_ms(timeout_ms);
  write_frame(*stream_, encode_plan_request(request));
  const std::optional<std::string> payload = read_frame(*stream_);
  if (!payload)
    throw TransportError("serve: connection closed before plan reply");
  return decode_plan_reply(*payload);
}

bool Client::reconnect() {
  if (!factory_) return false;
  std::unique_ptr<ByteStream> fresh;
  try {
    fresh = factory_();
  } catch (const std::exception&) {
    return false;
  }
  if (!fresh) return false;
  stream_->close();
  stream_ = std::move(fresh);
  ++stats_.reconnects;
  return true;
}

void Client::record_latency(double ms) {
  if (latencies_.size() < kLatencyWindow) {
    latencies_.push_back(ms);
  } else {
    latencies_[latency_pos_] = ms;
    latency_pos_ = (latency_pos_ + 1) % kLatencyWindow;
  }
}

double Client::latency_p95() const {
  if (latencies_.size() < options_.hedge_min_samples) return 0.0;
  std::vector<double> sorted = latencies_;
  const auto nth =
      sorted.begin() +
      static_cast<std::ptrdiff_t>((sorted.size() * 95) / 100);
  const auto pos = nth == sorted.end() ? sorted.end() - 1 : nth;
  std::nth_element(sorted.begin(), pos, sorted.end());
  return *pos;
}

PlanReply Client::plan(const PlanRequest& original) {
  PlanRequest request = original;
  if ((request.trace_hi | request.trace_lo) == 0) {
    // Propagate the caller's trace so the server's spans join its tree.
    const obs::TraceContext context = obs::TraceContext::current();
    if (context.valid()) {
      request.trace_hi = context.trace_hi;
      request.trace_lo = context.trace_lo;
      request.trace_parent_span = context.span_id;
    }
  }
  for (int attempt = 1;; ++attempt) {
    // The hedge deadline (a fraction of the hard timeout, adapted to the
    // observed p95) arms only while a fresh connection is available to
    // resend on.
    double hedge_deadline = 0.0;
    if (options_.hedge && factory_) {
      const double p95 = latency_p95();
      if (p95 > 0.0)
        hedge_deadline =
            std::max(options_.hedge_min_ms, options_.hedge_multiplier * p95);
      if (options_.read_timeout_ms > 0.0 &&
          (hedge_deadline <= 0.0 || hedge_deadline > options_.read_timeout_ms))
        hedge_deadline = 0.0;  // the hard deadline fires first anyway
    }

    ++stats_.attempts;
    try {
      const double started = steady_now_ms();
      PlanReply reply;
      if (hedge_deadline > 0.0) {
        try {
          reply = plan_once(request, hedge_deadline);
        } catch (const TransportTimeout&) {
          // Tail read: abandon the (now desynchronized) connection and
          // resend once on a fresh one, with only the hard deadline armed.
          ++stats_.hedges;
          if (!reconnect()) throw;
          ++stats_.attempts;
          reply = plan_once(request, options_.read_timeout_ms);
        }
      } else {
        reply = plan_once(request, options_.read_timeout_ms);
      }
      record_latency(steady_now_ms() - started);
      if (!status_is_retryable(reply.status) ||
          attempt >= options_.max_attempts)
        return reply;
      // Retryable status; the connection is still in sync — no reconnect.
    } catch (const TransportTimeout&) {
      ++stats_.timeouts;
      // A timed-out stream is desynchronized (the late reply would answer
      // the NEXT request): retrying requires a fresh connection.
      if (attempt >= options_.max_attempts || !reconnect()) throw;
    } catch (const TransportError&) {
      if (attempt >= options_.max_attempts || !reconnect()) throw;
    } catch (const ProtocolError&) {
      throw;  // decode error: the peer will be just as wrong next time
    } catch (const std::runtime_error& e) {
      // Write-side transport failure (broken pipe, chaos drop).
      if (attempt >= options_.max_attempts || !reconnect())
        throw TransportError(std::string("serve: send failed: ") + e.what());
    }

    ++stats_.retries;
    const double delay_ms = fault::backoff_delay_ms(
        options_.backoff, attempt, rng_, options_.full_jitter);
    if (delay_ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(delay_ms));
    }
  }
}

bool Client::ping() {
  try {
    stream_->set_read_timeout_ms(options_.read_timeout_ms);
    write_frame(*stream_, encode_ping());
    const std::optional<std::string> payload = read_frame(*stream_);
    if (!payload) return false;
    return peek_op(*payload) == Op::kPingReply;
  } catch (const TransportTimeout&) {
    ++stats_.timeouts;
    return false;
  }
}

StatsReply Client::scrape_stats() {
  stream_->set_read_timeout_ms(options_.read_timeout_ms);
  write_frame(*stream_, encode_stats_request());
  const std::optional<std::string> payload = read_frame(*stream_);
  if (!payload)
    throw TransportError("serve: connection closed before stats reply");
  return decode_stats_reply(*payload);
}

TraceDumpReply Client::trace_dump(std::uint32_t max) {
  stream_->set_read_timeout_ms(options_.read_timeout_ms);
  write_frame(*stream_, encode_trace_dump_request(max));
  const std::optional<std::string> payload = read_frame(*stream_);
  if (!payload)
    throw TransportError("serve: connection closed before trace dump");
  return decode_trace_dump_reply(*payload);
}

void Client::close() {
  if (stream_) stream_->close();
}

}  // namespace jps::serve
