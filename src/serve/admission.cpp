#include "serve/admission.h"

#include <algorithm>

namespace jps::serve {

TokenBucket::TokenBucket(double rate_per_sec, double burst)
    : rate_per_sec_(rate_per_sec),
      burst_(std::max(1.0, burst)),
      tokens_(burst_) {}

void TokenBucket::refill(double now_ms) {
  if (!started_) {
    started_ = true;
    last_ms_ = now_ms;
    return;
  }
  const double elapsed_ms = now_ms - last_ms_;
  if (elapsed_ms <= 0.0) return;  // non-monotone caller clock: no refill
  last_ms_ = now_ms;
  tokens_ = std::min(burst_, tokens_ + rate_per_sec_ * elapsed_ms / 1000.0);
}

bool TokenBucket::try_acquire(double now_ms, double tokens) {
  if (rate_per_sec_ <= 0.0) return true;  // limiting disabled
  refill(now_ms);
  if (tokens_ < tokens) return false;
  tokens_ -= tokens;
  return true;
}

double TokenBucket::available(double now_ms) {
  refill(now_ms);
  return tokens_;
}

TenantAdmission::TenantAdmission(double rate_per_sec, double burst)
    : rate_per_sec_(rate_per_sec), burst_(burst) {}

bool TenantAdmission::admit(const std::string& tenant, double now_ms) {
  if (rate_per_sec_ <= 0.0) return true;
  util::MutexLock lock(mutex_);
  auto it = buckets_.find(tenant);
  if (it == buckets_.end()) {
    it = buckets_.emplace(tenant, TokenBucket(rate_per_sec_, burst_)).first;
  }
  return it->second.try_acquire(now_ms);
}

std::size_t TenantAdmission::tenant_count() const {
  util::MutexLock lock(mutex_);
  return buckets_.size();
}

}  // namespace jps::serve
