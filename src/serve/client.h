// Blocking client for the plan server: one request, one reply, in order.
//
// A Client owns one ByteStream (in-process pipe end or connected socket)
// and is NOT thread-safe — the protocol has no request ids, so replies are
// matched to requests purely by order.  Use one Client per thread; the
// server multiplexes across connections, not within one.
//
// Resilience (opt-in via ClientRetryOptions; the defaults change nothing):
//   * Read deadlines — read_timeout_ms arms the stream's read timeout, so a
//     silent server throws TransportTimeout instead of blocking forever.
//   * Retries — up to max_attempts tries per plan() call.  Transport
//     failures (peer died, timeout) and retryable reply statuses
//     (UNAVAILABLE, DEADLINE_EXCEEDED) retry after a capped-exponential
//     backoff with FULL jitter (uniform(0, capped]) so a fleet retrying one
//     outage de-synchronizes; decode errors (ProtocolError proper) never
//     retry — a peer speaking garbage will speak garbage again.
//   * Reconnects — a StreamFactory lets retries open a fresh connection.
//     After a timeout the old stream is DESYNCHRONIZED (the late reply may
//     still arrive and would be matched to the wrong request), so timeout
//     retries require a factory; without one the timeout propagates.
//   * Hedging — after enough latency samples, a read exceeding
//     hedge_multiplier * observed p95 abandons the connection and resends
//     once on a fresh one immediately (no backoff), bounding tail latency
//     without the double-send race a shared-connection hedge would cause.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "fault/fault_executor.h"
#include "serve/protocol.h"
#include "serve/transport.h"
#include "util/rng.h"

namespace jps::serve {

/// Opens a fresh connection to the same server (retry / hedge path).
/// Returning nullptr or throwing means "cannot reconnect right now".
using StreamFactory = std::function<std::unique_ptr<ByteStream>()>;

struct ClientRetryOptions {
  /// Total attempts per plan() call; 1 = no retries (the default keeps the
  /// pre-resilience behavior exactly).
  int max_attempts = 1;
  /// Backoff schedule between attempts (budget is ignored — max_attempts
  /// governs; base/factor/max shape the delay).
  fault::RetryPolicy backoff{};
  /// Redraw each backoff as uniform(0, capped] (AWS-style full jitter)
  /// instead of the simulator's stretch-by-jitter_frac.
  bool full_jitter = true;
  /// > 0: arm the stream's read deadline; a reply slower than this throws
  /// TransportTimeout (retryable when a StreamFactory is set).
  double read_timeout_ms = 0.0;
  /// Hedge tail reads: after hedge_min_samples successful replies, a read
  /// slower than max(hedge_min_ms, hedge_multiplier * p95) reconnects and
  /// resends once immediately.  Requires a StreamFactory.
  bool hedge = false;
  std::size_t hedge_min_samples = 8;
  double hedge_multiplier = 2.0;
  double hedge_min_ms = 1.0;
  /// Seed for the backoff jitter Rng (deterministic tests).
  std::uint64_t seed = 0x5EEDC11E47ull;
};

/// Per-client counters (the client is single-threaded; so are these).
struct ClientStats {
  std::uint64_t attempts = 0;    // plan() sends, including retries/hedges
  std::uint64_t retries = 0;     // backed-off re-sends
  std::uint64_t hedges = 0;      // p95-triggered immediate re-sends
  std::uint64_t timeouts = 0;    // reads that hit a deadline
  std::uint64_t reconnects = 0;  // fresh streams opened by retry/hedge
};

class Client {
 public:
  /// Takes ownership of the stream; the connection closes with the Client.
  explicit Client(std::unique_ptr<ByteStream> stream);

  /// Resilient client: `reconnect` (may be empty) opens replacement
  /// connections for retry and hedge paths.
  Client(std::unique_ptr<ByteStream> stream, ClientRetryOptions options,
         StreamFactory reconnect = {});

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Send one plan request and block for the reply, retrying per the
  /// options.  Transport failures that outlive the retry budget throw
  /// TransportError (or TransportTimeout for deadlines); malformed replies
  /// throw ProtocolError; application-level failures come back as non-OK
  /// statuses in the reply itself.
  ///
  /// When the request carries no trace context and the calling thread does
  /// (obs::TraceContext), the thread's context is stamped onto the wire
  /// request, so the server's spans join the caller's trace.
  [[nodiscard]] PlanReply plan(const PlanRequest& request);

  /// Liveness probe: true when the server answered the ping (a read
  /// timeout counts as "no").
  [[nodiscard]] bool ping();

  /// Live introspection (protocol v3, single attempt, read timeout from the
  /// options): scrape the server's current metrics snapshot as JSON.
  [[nodiscard]] StatsReply scrape_stats();

  /// Drain up to `max` traces (0 = server's batch cap) from the server's
  /// flight recorder.  reply.remaining > 0 means more batches are queued.
  [[nodiscard]] TraceDumpReply trace_dump(std::uint32_t max = 0);

  /// Close the connection (also happens at destruction).
  void close();

  [[nodiscard]] const ClientStats& stats() const { return stats_; }

 private:
  /// One send/receive on the current stream with `timeout_ms` armed.
  [[nodiscard]] PlanReply plan_once(const PlanRequest& request,
                                    double timeout_ms);
  /// Swap in a fresh stream from the factory; false when impossible.
  bool reconnect();
  void record_latency(double ms);
  /// Observed p95 of recent reply latencies; 0 until enough samples.
  [[nodiscard]] double latency_p95() const;

  std::unique_ptr<ByteStream> stream_;
  ClientRetryOptions options_;
  StreamFactory factory_;
  util::Rng rng_;
  std::vector<double> latencies_;  // ring of recent reply latencies (ms)
  std::size_t latency_pos_ = 0;
  ClientStats stats_;
};

}  // namespace jps::serve
