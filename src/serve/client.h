// Blocking client for the plan server: one request, one reply, in order.
//
// A Client owns one ByteStream (in-process pipe end or connected socket)
// and is NOT thread-safe — the protocol has no request ids, so replies are
// matched to requests purely by order.  Use one Client per thread; the
// server multiplexes across connections, not within one.
#pragma once

#include <memory>

#include "serve/protocol.h"
#include "serve/transport.h"

namespace jps::serve {

class Client {
 public:
  /// Takes ownership of the stream; the connection closes with the Client.
  explicit Client(std::unique_ptr<ByteStream> stream);

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Send one plan request and block for the reply.  Transport failures
  /// (connection closed before a reply) and malformed replies throw
  /// ProtocolError; application-level failures come back as non-OK
  /// statuses in the reply itself.
  [[nodiscard]] PlanReply plan(const PlanRequest& request);

  /// Liveness probe: true when the server answered the ping.
  [[nodiscard]] bool ping();

  /// Close the connection (also happens at destruction).
  void close();

 private:
  std::unique_ptr<ByteStream> stream_;
};

}  // namespace jps::serve
