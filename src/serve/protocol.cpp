#include "serve/protocol.h"

#include <bit>
#include <cstring>

namespace jps::serve {

namespace {

constexpr std::uint8_t kFlagCoalesced = 1u << 0;
constexpr std::uint8_t kFlagCacheHit = 1u << 1;
constexpr std::uint8_t kFlagStale = 1u << 2;

void check_version_arg(std::uint8_t version) {
  if (version < kMinVersion || version > kVersion)
    throw ProtocolError("serve: cannot encode protocol version " +
                        std::to_string(version));
}

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8)
    out.push_back(static_cast<char>((v >> shift) & 0xFF));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8)
    out.push_back(static_cast<char>((v >> shift) & 0xFF));
}

void put_f64(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_str16(std::string& out, const std::string& s) {
  if (s.size() > 0xFFFF)
    throw ProtocolError("serve: string field exceeds 65535 bytes");
  put_u16(out, static_cast<std::uint16_t>(s.size()));
  out += s;
}

// Long string (JSON bodies): bounded only by the frame cap, which
// write_frame enforces.
void put_str32(std::string& out, const std::string& s) {
  if (s.size() > kMaxFrameBytes)
    throw ProtocolError("serve: string field exceeds frame cap");
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out += s;
}

// Bounds-checked cursor over a received payload.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  std::uint16_t u16() {
    need(2);
    const auto lo = static_cast<std::uint16_t>(
        static_cast<std::uint8_t>(data_[pos_]));
    const auto hi = static_cast<std::uint16_t>(
        static_cast<std::uint8_t>(data_[pos_ + 1]));
    pos_ += 2;
    return static_cast<std::uint16_t>(lo | (hi << 8));
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(data_[pos_ + i]))
           << (8 * i);
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t bits = 0;
    for (int i = 0; i < 8; ++i)
      bits |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(data_[pos_ + i]))
              << (8 * i);
    pos_ += 8;
    return bits;
  }

  double f64() { return std::bit_cast<double>(u64()); }

  std::string str16() {
    const std::uint16_t len = u16();
    need(len);
    std::string s(data_.substr(pos_, len));
    pos_ += len;
    return s;
  }

  std::string str32() {
    const std::uint32_t len = u32();
    need(len);
    std::string s(data_.substr(pos_, len));
    pos_ += len;
    return s;
  }

  void expect_done() const {
    if (pos_ != data_.size())
      throw ProtocolError("serve: trailing bytes after payload");
  }

 private:
  void need(std::size_t n) const {
    if (data_.size() - pos_ < n)
      throw ProtocolError("serve: truncated payload");
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

std::string header(Op op, std::uint8_t version = kVersion) {
  std::string out;
  put_u8(out, kMagic);
  put_u8(out, version);
  put_u8(out, static_cast<std::uint8_t>(op));
  return out;
}

struct Header {
  std::uint8_t version = kVersion;
  Op op = Op::kPing;
};

Header check_header(Reader& reader) {
  if (reader.u8() != kMagic) throw ProtocolError("serve: bad magic byte");
  Header h;
  h.version = reader.u8();
  if (h.version < kMinVersion || h.version > kVersion)
    throw ProtocolError("serve: unsupported protocol version " +
                        std::to_string(h.version));
  const std::uint8_t op = reader.u8();
  switch (static_cast<Op>(op)) {
    case Op::kPlan:
    case Op::kPing:
    case Op::kStats:
    case Op::kTraceDump:
    case Op::kPlanReply:
    case Op::kPingReply:
    case Op::kStatsReply:
    case Op::kTraceDumpReply:
      h.op = static_cast<Op>(op);
      return h;
  }
  throw ProtocolError("serve: unknown op " + std::to_string(op));
}

// The introspection ops did not exist before v3; an older version byte on
// one of their frames means a broken peer, not an old one.
void require_v3(std::uint8_t version, const char* what) {
  if (version < 3)
    throw ProtocolError(std::string("serve: ") + what +
                        " requires protocol version 3 (got " +
                        std::to_string(version) + ")");
}

// Read exactly `size` bytes or fail.  `any` reports whether anything had
// been read before EOF — the caller distinguishes clean EOF (nothing) from
// a frame truncated mid-way.
bool read_exact(ByteStream& stream, char* out, std::size_t size, bool* any) {
  std::size_t got = 0;
  while (got < size) {
    const std::size_t n = stream.read(out + got, size - got);
    if (n == 0) {
      if (any != nullptr) *any = got > 0;
      return false;
    }
    got += n;
  }
  if (any != nullptr) *any = got > 0;
  return true;
}

}  // namespace

const char* status_name(Status status) {
  switch (status) {
    case Status::kOk: return "OK";
    case Status::kInvalidArgument: return "INVALID_ARGUMENT";
    case Status::kNotFound: return "NOT_FOUND";
    case Status::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case Status::kUnavailable: return "UNAVAILABLE";
    case Status::kInternal: return "INTERNAL";
    case Status::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case Status::kOkStale: return "OK_STALE";
  }
  return "UNKNOWN";
}

bool status_is_retryable(Status status) {
  return status == Status::kUnavailable ||
         status == Status::kDeadlineExceeded;
}

std::string encode_plan_request(const PlanRequest& request,
                                std::uint8_t version) {
  check_version_arg(version);
  std::string out = header(Op::kPlan, version);
  put_str16(out, request.tenant);
  put_str16(out, request.model);
  put_f64(out, request.bandwidth_mbps);
  put_u8(out, static_cast<std::uint8_t>(request.strategy));
  put_u32(out, static_cast<std::uint32_t>(request.n_jobs));
  if (version >= 2) put_f64(out, request.deadline_ms);
  if (version >= 3) {
    put_u64(out, request.trace_hi);
    put_u64(out, request.trace_lo);
    put_u64(out, request.trace_parent_span);
  }
  return out;
}

std::string encode_plan_reply(const PlanReply& reply, std::uint8_t version) {
  check_version_arg(version);
  std::string out = header(Op::kPlanReply, version);
  Status status = reply.status;
  if (version < 2) {
    // Downgrade v2-only statuses for old decoders.  kOkStale stays a
    // usable plan (the stale flag bit below preserves the distinction);
    // kDeadlineExceeded becomes the closest "retry later" a v1 client knows.
    if (status == Status::kOkStale) status = Status::kOk;
    if (status == Status::kDeadlineExceeded) status = Status::kUnavailable;
  }
  put_u8(out, static_cast<std::uint8_t>(status));
  std::uint8_t flags = 0;
  if (reply.coalesced) flags |= kFlagCoalesced;
  if (reply.cache_hit) flags |= kFlagCacheHit;
  if (reply.stale || reply.status == Status::kOkStale) flags |= kFlagStale;
  put_u8(out, flags);
  put_str16(out, reply.message);
  put_f64(out, reply.bandwidth_bucket_mbps);
  put_f64(out, reply.makespan_ms);
  put_u32(out, static_cast<std::uint32_t>(reply.mix.size()));
  for (const CutMix& m : reply.mix) {
    put_u32(out, m.cut);
    put_u32(out, m.count);
  }
  return out;
}

std::string encode_ping() { return header(Op::kPing); }

std::string encode_ping_reply() { return header(Op::kPingReply); }

std::string encode_stats_request(std::uint8_t version) {
  check_version_arg(version);
  require_v3(version, "kStats");
  return header(Op::kStats, version);
}

std::string encode_stats_reply(const StatsReply& reply,
                               std::uint8_t version) {
  check_version_arg(version);
  require_v3(version, "kStatsReply");
  std::string out = header(Op::kStatsReply, version);
  put_u8(out, static_cast<std::uint8_t>(reply.status));
  put_str32(out, reply.json);
  return out;
}

std::string encode_trace_dump_request(std::uint32_t max_traces,
                                      std::uint8_t version) {
  check_version_arg(version);
  require_v3(version, "kTraceDump");
  std::string out = header(Op::kTraceDump, version);
  put_u32(out, max_traces);
  return out;
}

std::string encode_trace_dump_reply(const TraceDumpReply& reply,
                                    std::uint8_t version) {
  check_version_arg(version);
  require_v3(version, "kTraceDumpReply");
  std::string out = header(Op::kTraceDumpReply, version);
  put_u8(out, static_cast<std::uint8_t>(reply.status));
  put_u32(out, reply.remaining);
  put_str32(out, reply.json);
  return out;
}

Op peek_op(std::string_view payload) {
  Reader reader(payload);
  return check_header(reader).op;
}

std::uint8_t peek_version(std::string_view payload) {
  Reader reader(payload);
  return check_header(reader).version;
}

PlanRequest decode_plan_request(std::string_view payload) {
  Reader reader(payload);
  const Header h = check_header(reader);
  if (h.op != Op::kPlan)
    throw ProtocolError("serve: payload is not a plan request");
  PlanRequest request;
  request.tenant = reader.str16();
  request.model = reader.str16();
  request.bandwidth_mbps = reader.f64();
  const std::uint8_t strategy = reader.u8();
  if (strategy > static_cast<std::uint8_t>(core::Strategy::kRobust))
    throw ProtocolError("serve: unknown strategy code " +
                        std::to_string(strategy));
  request.strategy = static_cast<core::Strategy>(strategy);
  const std::uint32_t n_jobs = reader.u32();
  if (n_jobs > 0x7FFFFFFFu)
    throw ProtocolError("serve: n_jobs out of range");
  request.n_jobs = static_cast<std::int32_t>(n_jobs);
  if (h.version >= 2) request.deadline_ms = reader.f64();
  if (h.version >= 3) {
    request.trace_hi = reader.u64();
    request.trace_lo = reader.u64();
    request.trace_parent_span = reader.u64();
  }
  reader.expect_done();
  return request;
}

PlanReply decode_plan_reply(std::string_view payload) {
  Reader reader(payload);
  if (check_header(reader).op != Op::kPlanReply)
    throw ProtocolError("serve: payload is not a plan reply");
  PlanReply reply;
  const std::uint8_t status = reader.u8();
  if (status > static_cast<std::uint8_t>(Status::kOkStale))
    throw ProtocolError("serve: unknown status code " + std::to_string(status));
  reply.status = static_cast<Status>(status);
  const std::uint8_t flags = reader.u8();
  reply.coalesced = (flags & kFlagCoalesced) != 0;
  reply.cache_hit = (flags & kFlagCacheHit) != 0;
  reply.stale = (flags & kFlagStale) != 0;
  reply.message = reader.str16();
  reply.bandwidth_bucket_mbps = reader.f64();
  reply.makespan_ms = reader.f64();
  const std::uint32_t mix_count = reader.u32();
  // 8 bytes per entry: a count this large cannot fit the bounded payload.
  if (mix_count > kMaxFrameBytes / 8)
    throw ProtocolError("serve: mix count too large");
  reply.mix.reserve(mix_count);
  for (std::uint32_t i = 0; i < mix_count; ++i) {
    CutMix m;
    m.cut = reader.u32();
    m.count = reader.u32();
    reply.mix.push_back(m);
  }
  reader.expect_done();
  return reply;
}

namespace {

Status read_status(Reader& reader) {
  const std::uint8_t status = reader.u8();
  if (status > static_cast<std::uint8_t>(Status::kOkStale))
    throw ProtocolError("serve: unknown status code " + std::to_string(status));
  return static_cast<Status>(status);
}

}  // namespace

void decode_stats_request(std::string_view payload) {
  Reader reader(payload);
  const Header h = check_header(reader);
  if (h.op != Op::kStats)
    throw ProtocolError("serve: payload is not a stats request");
  require_v3(h.version, "kStats");
  reader.expect_done();
}

std::uint32_t decode_trace_dump_request(std::string_view payload) {
  Reader reader(payload);
  const Header h = check_header(reader);
  if (h.op != Op::kTraceDump)
    throw ProtocolError("serve: payload is not a trace-dump request");
  require_v3(h.version, "kTraceDump");
  const std::uint32_t max_traces = reader.u32();
  reader.expect_done();
  return max_traces;
}

StatsReply decode_stats_reply(std::string_view payload) {
  Reader reader(payload);
  const Header h = check_header(reader);
  if (h.op != Op::kStatsReply)
    throw ProtocolError("serve: payload is not a stats reply");
  require_v3(h.version, "kStatsReply");
  StatsReply reply;
  reply.status = read_status(reader);
  reply.json = reader.str32();
  reader.expect_done();
  return reply;
}

TraceDumpReply decode_trace_dump_reply(std::string_view payload) {
  Reader reader(payload);
  const Header h = check_header(reader);
  if (h.op != Op::kTraceDumpReply)
    throw ProtocolError("serve: payload is not a trace-dump reply");
  require_v3(h.version, "kTraceDumpReply");
  TraceDumpReply reply;
  reply.status = read_status(reader);
  reply.remaining = reader.u32();
  reply.json = reader.str32();
  reader.expect_done();
  return reply;
}

void write_frame(ByteStream& stream, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes)
    throw ProtocolError("serve: frame exceeds kMaxFrameBytes");
  std::string wire;
  wire.reserve(4 + payload.size());
  put_u32(wire, static_cast<std::uint32_t>(payload.size()));
  wire.append(payload);
  stream.write(wire.data(), wire.size());
}

std::optional<std::string> read_frame(ByteStream& stream) {
  char prefix[4];
  bool any = false;
  if (!read_exact(stream, prefix, sizeof(prefix), &any)) {
    if (any) throw TransportError("serve: truncated length prefix");
    return std::nullopt;  // clean EOF at a frame boundary
  }
  std::uint32_t length = 0;
  for (int i = 0; i < 4; ++i)
    length |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(prefix[i]))
              << (8 * i);
  if (length > kMaxFrameBytes)
    throw ProtocolError("serve: frame length " + std::to_string(length) +
                        " exceeds cap " + std::to_string(kMaxFrameBytes));
  std::string payload(length, '\0');
  if (length > 0 && !read_exact(stream, payload.data(), length, nullptr))
    throw TransportError("serve: truncated frame payload");
  return payload;
}

}  // namespace jps::serve
